// Per-figure benchmarks: every table/figure of the paper's evaluation
// (§4) has one testing.B target that regenerates its series at bench
// scale (600 hosts, 8h warmup, smaller message batches) and reports the
// headline numbers via b.ReportMetric. The full-scale regeneration
// (1442 hosts, 24h warmup, 5×50 messages) lives in cmd/avmemsim; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Ablation benchmarks at the bottom sweep the design parameters that
// DESIGN.md calls out: ε, c1/c2, cushion, gossip fanout, and coarse
// view size.
package avmem_test

import (
	"math"
	"strconv"
	"testing"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/exp"
	"avmem/internal/ids"
	"avmem/internal/obs"
	"avmem/internal/ops"
	"avmem/internal/scenario"
	"avmem/internal/trace"
)

// benchWorld builds the bench-scale world: 600 hosts, 2-minute protocol
// period, 8-hour warmup. Setup cost is excluded by b.ResetTimer in the
// callers.
func benchWorld(b *testing.B, seed int64, mutate func(*exp.WorldConfig)) *exp.World {
	b.Helper()
	gen := trace.DefaultGenConfig(seed)
	gen.Hosts = 600
	tr, err := trace.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.WorldConfig{
		Seed:           seed,
		Trace:          tr,
		ProtocolPeriod: 2 * time.Minute,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := exp.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w.Warmup(8 * time.Hour)
	return w
}

func benchAnycastSpec(name string, policy ops.Policy, flavor core.Flavor, target ops.Target, bandLo, bandHi float64, retry int) exp.AnycastSpec {
	return exp.AnycastSpec{
		Name:   name,
		BandLo: bandLo, BandHi: bandHi,
		Target: target,
		Opts:   ops.AnycastOptions{Policy: policy, Flavor: flavor, TTL: 6, Retry: retry},
		Runs:   1, PerRun: 10,
	}
}

func BenchmarkFig2OverlaySnapshot(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var snap exp.OverlaySnapshot
	for i := 0; i < b.N; i++ {
		snap = exp.SnapshotOverlay(w)
	}
	b.ReportMetric(float64(snap.OnlineCount), "online-nodes")
	b.ReportMetric(median(snap.HSMedian), "HS-median")
	b.ReportMetric(median(snap.VSMedian), "VS-median")
}

func BenchmarkFig3HorizontalScaling(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = exp.ScanHorizontalScaling(w).SublinearityRatio()
	}
	b.ReportMetric(ratio, "sublinearity-ratio")
}

func BenchmarkFig4VerticalInDegree(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var deg exp.VSInDegree
	for i := 0; i < b.N; i++ {
		deg = exp.ScanVSInDegree(w)
	}
	// Uniformity: spread of per-node in-degree across interior buckets.
	min, max := math.Inf(1), 0.0
	for bkt := 1; bkt < 9; bkt++ {
		if deg.Population[bkt] == 0 {
			continue
		}
		v := deg.PerBucket[bkt] / float64(deg.Population[bkt])
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if !math.IsInf(min, 1) && min > 0 {
		b.ReportMetric(max/min, "indegree-max/min")
	}
}

func BenchmarkFig5FloodingAttack(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var r0, r1 exp.AttackResult
	for i := 0; i < b.N; i++ {
		r0 = exp.FloodingAttack(w, 0)
		r1 = exp.FloodingAttack(w, 0.1)
	}
	b.ReportMetric(r0.Overall, "accept-cushion0")
	b.ReportMetric(r1.Overall, "accept-cushion0.1")
}

func BenchmarkFig6LegitimateRejection(b *testing.B) {
	w := benchWorld(b, 1, func(cfg *exp.WorldConfig) {
		cfg.MonitorErr = 0.05
		cfg.MonitorStaleness = 20 * time.Minute
	})
	b.ResetTimer()
	var r0, r1 exp.AttackResult
	for i := 0; i < b.N; i++ {
		r0 = exp.LegitimateRejection(w, 0)
		r1 = exp.LegitimateRejection(w, 0.1)
	}
	b.ReportMetric(r0.Overall, "reject-cushion0")
	b.ReportMetric(r1.Overall, "reject-cushion0.1")
}

func BenchmarkFig7AnycastHops(b *testing.B) {
	w := benchWorld(b, 1, nil)
	target := ops.Target{Lo: 0.85, Hi: 0.95}
	b.ResetTimer()
	var delivered, oneHop float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAnycasts(w, benchAnycastSpec(
			"HS+VS", ops.Greedy, core.HSVS, target, 1.0/3, 2.0/3, 0))
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.FractionDelivered()
		if cdf := res.HopsCDF(); len(cdf) > 1 {
			oneHop = cdf[1]
		}
	}
	b.ReportMetric(delivered, "delivered")
	b.ReportMetric(oneHop, "within-1-hop")
}

func BenchmarkFig8AnycastHarsh(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var easy, mid, harsh float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			tgt ops.Target
			out *float64
		}{
			{ops.Target{Lo: 0.85, Hi: 0.95}, &easy},
			{ops.Target{Lo: 0.44, Hi: 0.54}, &mid},
			{ops.Target{Lo: 0.15, Hi: 0.25}, &harsh},
		} {
			res, err := exp.RunAnycasts(w, benchAnycastSpec(
				"HS+VS", ops.Greedy, core.HSVS, tc.tgt, 2.0/3, 1.01, 0))
			if err != nil {
				b.Fatal(err)
			}
			*tc.out = res.FractionDelivered()
		}
	}
	b.ReportMetric(easy, "delivered-0.85-0.95")
	b.ReportMetric(mid, "delivered-0.44-0.54")
	b.ReportMetric(harsh, "delivered-0.15-0.25")
}

func BenchmarkFig9RetriedGreedy(b *testing.B) {
	w := benchWorld(b, 1, nil)
	target := ops.Target{Lo: 0.15, Hi: 0.25}
	b.ResetTimer()
	var d2, d8 float64
	var lat8 time.Duration
	for i := 0; i < b.N; i++ {
		r2, err := exp.RunAnycasts(w, benchAnycastSpec(
			"retry2", ops.RetriedGreedy, core.HSVS, target, 2.0/3, 1.01, 2))
		if err != nil {
			b.Fatal(err)
		}
		r8, err := exp.RunAnycasts(w, benchAnycastSpec(
			"retry8", ops.RetriedGreedy, core.HSVS, target, 2.0/3, 1.01, 8))
		if err != nil {
			b.Fatal(err)
		}
		d2, d8, lat8 = r2.FractionDelivered(), r8.FractionDelivered(), r8.MeanLatency()
	}
	b.ReportMetric(d2, "delivered-retry2")
	b.ReportMetric(d8, "delivered-retry8")
	b.ReportMetric(float64(lat8.Milliseconds()), "latency-ms-retry8")
}

func BenchmarkFig10RandomOverlay(b *testing.B) {
	gen := trace.DefaultGenConfig(1)
	gen.Hosts = 600
	tr, err := trace.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	w, err := exp.NewRandomWorld(exp.WorldConfig{
		Seed:           1,
		Trace:          tr,
		ProtocolPeriod: 2 * time.Minute,
	}, 2*math.Log(tr.MeanOnline()))
	if err != nil {
		b.Fatal(err)
	}
	w.Warmup(8 * time.Hour)
	target := ops.Target{Lo: 0.15, Hi: 0.25}
	b.ResetTimer()
	var d8 float64
	for i := 0; i < b.N; i++ {
		r8, err := exp.RunAnycasts(w, benchAnycastSpec(
			"retry8", ops.RetriedGreedy, core.HSVS, target, 2.0/3, 1.01, 8))
		if err != nil {
			b.Fatal(err)
		}
		d8 = r8.FractionDelivered()
	}
	b.ReportMetric(d8, "delivered-retry8-random")
}

func benchMulticast(b *testing.B, w *exp.World, mode ops.Mode) exp.MulticastResult {
	b.Helper()
	spec := exp.MulticastSpec{
		Name:   "bench",
		BandLo: 2.0 / 3, BandHi: 1.01,
		Target: ops.Target{Lo: 0.9, Hi: 1},
		Mode:   mode, Flavor: core.HSVS,
		Fanout: 5, Rounds: 2, Period: time.Second,
		Runs: 1, PerRun: 8,
	}
	res, err := exp.RunMulticasts(w, spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig11MulticastLatency(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var flood, gossip exp.MulticastResult
	for i := 0; i < b.N; i++ {
		flood = benchMulticast(b, w, ops.Flood)
		gossip = benchMulticast(b, w, ops.Gossip)
	}
	b.ReportMetric(float64(flood.MaxWorstLatency().Milliseconds()), "flood-max-ms")
	b.ReportMetric(float64(gossip.MaxWorstLatency().Milliseconds()), "gossip-max-ms")
}

func BenchmarkFig12MulticastSpam(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var flood exp.MulticastResult
	for i := 0; i < b.N; i++ {
		flood = benchMulticast(b, w, ops.Flood)
	}
	b.ReportMetric(flood.MeanSpamRatio(), "flood-spam-ratio")
}

func BenchmarkFig13MulticastReliability(b *testing.B) {
	w := benchWorld(b, 1, nil)
	b.ResetTimer()
	var flood, gossip exp.MulticastResult
	for i := 0; i < b.N; i++ {
		flood = benchMulticast(b, w, ops.Flood)
		gossip = benchMulticast(b, w, ops.Gossip)
	}
	b.ReportMetric(flood.MeanReliability(), "flood-reliability")
	b.ReportMetric(gossip.MeanReliability(), "gossip-reliability")
}

// --- Hot-path micro-benchmarks -------------------------------------------

// benchMembership builds a membership with roughly n neighbors from a
// permissive predicate over synthetic hosts.
func benchMembership(b *testing.B, n int) *core.Membership {
	b.Helper()
	monitor := avmon.Static{}
	self := ids.Synthetic(0)
	monitor[self] = 0.5
	candidates := make([]ids.NodeID, n)
	for i := range candidates {
		candidates[i] = ids.Synthetic(i + 1)
		monitor[candidates[i]] = float64(i%100) / 100
	}
	pred, err := core.NewPredicate(0.1, core.ConstantHorizontal{Fraction: 1}, core.UniformRandom{P: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMembership(self, core.Config{
		Predicate: pred,
		Monitor:   monitor,
		Clock:     func() time.Duration { return 0 },
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Discover(candidates)
	if m.Size() == 0 {
		b.Fatal("benchmark membership is empty")
	}
	return m
}

// BenchmarkNeighborsView measures the membership fast path the router
// hits on every forwarded hop. With the incrementally-maintained
// per-sliver indexes this is a cached-view return: zero allocations,
// no sorting.
func BenchmarkNeighborsView(b *testing.B) {
	m := benchMembership(b, 500)
	flavors := []core.Flavor{core.HSOnly, core.VSOnly, core.HSVS}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(m.Neighbors(flavors[i%len(flavors)]))
	}
	if total == 0 {
		b.Fatal("views were empty")
	}
}

// BenchmarkDiscoverRound measures one full discovery round — predicate
// evaluation plus incremental insertion into the sorted indexes — over
// a 500-candidate coarse view.
func BenchmarkDiscoverRound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		monitor := avmon.Static{}
		self := ids.Synthetic(0)
		monitor[self] = 0.5
		candidates := make([]ids.NodeID, 500)
		for j := range candidates {
			candidates[j] = ids.Synthetic(j + 1)
			monitor[candidates[j]] = float64(j%100) / 100
		}
		pred, err := core.NewPredicate(0.1, core.ConstantHorizontal{Fraction: 1}, core.UniformRandom{P: 1})
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.NewMembership(self, core.Config{
			Predicate: pred,
			Monitor:   monitor,
			Clock:     func() time.Duration { return 0 },
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if added := m.Discover(candidates); added == 0 {
			b.Fatal("discovery admitted nothing")
		}
	}
}

// spec2000 is the 2000-host mixed-workload benchmark scenario shared
// by the plain and observability-enabled variants.
func spec2000() *scenario.Spec {
	return &scenario.Spec{
		Name: "bench-2000",
		Seed: 1,
		Fleet: scenario.Fleet{
			Hosts:          2000,
			Days:           1,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
		},
		Warmup: scenario.Duration(3 * time.Hour),
		Events: []scenario.Event{
			{At: 0, ChurnBurst: &scenario.ChurnBurst{
				Fraction: 0.25, Duration: scenario.Duration(30 * time.Minute)}},
			{At: scenario.Duration(2 * time.Minute), AnycastBatch: &scenario.AnycastBatch{
				Count: 30, BandLo: 0, BandHi: 1.01, TargetLo: 0.85, TargetHi: 0.95}},
			{At: scenario.Duration(5 * time.Minute), MulticastBatch: &scenario.MulticastBatch{
				Count: 10, BandLo: 0.66, BandHi: 1.01, TargetLo: 0.7, TargetHi: 1}},
		},
	}
}

// BenchmarkScenario2000Hosts runs a complete declarative scenario —
// 2000 hosts, a churn burst, and a mixed anycast/multicast workload —
// end to end, the scale the allocation-lean core is built for.
func BenchmarkScenario2000Hosts(b *testing.B) {
	spec := spec2000()
	b.ReportAllocs()
	b.ResetTimer()
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.Options{})
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.Metrics["anycast_delivery_rate"]
	}
	b.ReportMetric(delivered, "delivered")
}

// BenchmarkScenario2000HostsObs is BenchmarkScenario2000Hosts with the
// full observability stack armed — metrics registry and op tracer —
// guarding the enabled-path cost budget (DESIGN.md §15: ≤5% over the
// plain run; the disabled path is a nil check and is covered by the
// plain benchmark staying on its recorded baseline).
func BenchmarkScenario2000HostsObs(b *testing.B) {
	spec := spec2000()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := scenario.Options{Metrics: obs.NewRegistry(), OpTrace: obs.NewTracer(0)}
		if _, err := scenario.Run(spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioMemnet600Hosts runs a complete declarative scenario
// on the memnet backend: 600 real node.Node agents — live CYCLON
// shuffle, per-node timers, transport-level messaging — executing on
// the virtual clock over the deterministic memnet. The sim-vs-memnet
// cost ratio is the price of exercising the shipped node code instead
// of the deployment engine's cohort drivers.
func BenchmarkScenarioMemnet600Hosts(b *testing.B) {
	spec := &scenario.Spec{
		Name: "bench-memnet-600",
		Seed: 1,
		Fleet: scenario.Fleet{
			Hosts:          600,
			Days:           1,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
		},
		Warmup: scenario.Duration(3 * time.Hour),
		Events: []scenario.Event{
			{At: 0, ChurnBurst: &scenario.ChurnBurst{
				Fraction: 0.25, Duration: scenario.Duration(30 * time.Minute)}},
			{At: scenario.Duration(2 * time.Minute), AnycastBatch: &scenario.AnycastBatch{
				Count: 30, BandLo: 0, BandHi: 1.01, TargetLo: 0.85, TargetHi: 0.95}},
			{At: scenario.Duration(5 * time.Minute), MulticastBatch: &scenario.MulticastBatch{
				Count: 10, BandLo: 0.66, BandHi: 1.01, TargetLo: 0.7, TargetHi: 1}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.Options{Backend: scenario.BackendMemnet})
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.Metrics["anycast_delivery_rate"]
	}
	b.ReportMetric(delivered, "delivered")
}

// scaleSpec builds the scaling-series scenario (EXPERIMENTS.md §"Scaling"):
// the mixed churn + anycast + multicast workload of BenchmarkScenario2000Hosts,
// parameterized by population. Trace length and warmup shrink as the
// population grows so the series probes per-event engine cost, not just
// total virtual time; view_size is pinned at the 10k value past 10k
// hosts because the default √N view makes per-tick discovery itself
// grow with N and would conflate protocol scaling with engine scaling.
func scaleSpec(hosts int, days float64, warmup time.Duration, shards int) (*scenario.Spec, scenario.Options) {
	spec := &scenario.Spec{
		Name: "bench-scale",
		Seed: 1,
		Fleet: scenario.Fleet{
			Hosts:          hosts,
			Days:           days,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
		},
		Warmup: scenario.Duration(warmup),
		Events: []scenario.Event{
			{At: 0, ChurnBurst: &scenario.ChurnBurst{
				Fraction: 0.25, Duration: scenario.Duration(30 * time.Minute)}},
			{At: scenario.Duration(2 * time.Minute), AnycastBatch: &scenario.AnycastBatch{
				Count: 30, BandLo: 0, BandHi: 1.01, TargetLo: 0.85, TargetHi: 0.95}},
			{At: scenario.Duration(5 * time.Minute), MulticastBatch: &scenario.MulticastBatch{
				Count: 10, BandLo: 0.66, BandHi: 1.01, TargetLo: 0.7, TargetHi: 1}},
		},
	}
	if hosts > 10000 {
		spec.Fleet.ViewSize = 100
	}
	return spec, scenario.Options{Shards: shards}
}

func benchScale(b *testing.B, hosts int, days float64, warmup time.Duration, shards int) {
	benchScaleThreads(b, hosts, days, warmup, shards, 0)
}

// benchScaleThreads is benchScale on the thread-parallel engine:
// the same sharded world driven by the given number of worker threads
// (0 or 1 never enters the parallel executor, so those rungs measure
// the serial tournament baseline the speedups are quoted against).
func benchScaleThreads(b *testing.B, hosts int, days float64, warmup time.Duration, shards, threads int) {
	spec, opts := scaleSpec(hosts, days, warmup, shards)
	opts.ShardThreads = threads
	b.ReportAllocs()
	b.ResetTimer()
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.Metrics["anycast_delivery_rate"]
	}
	b.ReportMetric(delivered, "delivered")
}

// BenchmarkScenario10kHosts is the mid rung of the scaling series.
func BenchmarkScenario10kHosts(b *testing.B) {
	benchScale(b, 10000, 0.5, 2*time.Hour, 8)
}

// BenchmarkScenario50kHosts is the third rung of the scaling series.
// Skipped under -short like the 100k run.
func BenchmarkScenario50kHosts(b *testing.B) {
	if testing.Short() {
		b.Skip("50k-host scale run; use scripts/bench.sh or run without -short")
	}
	benchScale(b, 50000, 0.25, 90*time.Minute, 16)
}

// BenchmarkScenario100kHosts is the tentpole scale target: a 100k-host
// fleet through churn and a mixed workload on the sharded engine.
// Skipped under -short (the CI bench smoke); run it explicitly or via
// scripts/bench.sh.
func BenchmarkScenario100kHosts(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-host scale run; use scripts/bench.sh or run without -short")
	}
	benchScale(b, 100000, 0.25, 90*time.Minute, 16)
}

// benchThreadSweep runs the worker-thread scaling series (1/2/4/8
// threads over a fixed shard count) as sub-benchmarks, so one bench.sh
// recording captures the whole curve. threads=1 is the serial-engine
// rung: the parallel executor requires at least two workers, so that
// sub-benchmark falls back to the tournament merge and anchors the
// speedup ratios.
func benchThreadSweep(b *testing.B, hosts int, days float64, warmup time.Duration, shards int) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run("threads="+strconv.Itoa(threads), func(b *testing.B) {
			benchScaleThreads(b, hosts, days, warmup, shards, threads)
		})
	}
}

// BenchmarkScenario10kHostsParallel is the thread-scaling sweep on the
// 10k rung. Skipped under -short: the sweep is four full scenario runs.
func BenchmarkScenario10kHostsParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("thread-scaling sweep; use scripts/bench.sh or run without -short")
	}
	benchThreadSweep(b, 10000, 0.5, 2*time.Hour, 8)
}

// BenchmarkScenario50kHostsParallel is the thread-scaling sweep on the
// 50k rung.
func BenchmarkScenario50kHostsParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("thread-scaling sweep; use scripts/bench.sh or run without -short")
	}
	benchThreadSweep(b, 50000, 0.25, 90*time.Minute, 16)
}

// BenchmarkScenario100kHostsParallel is the headline thread-scaling
// sweep: the BenchmarkScenario100kHosts world at 1/2/4/8 worker
// threads. The CI bench smoke runs only the threads=8 sub-benchmark
// (the tentpole configuration); the full sweep is recorded by
// scripts/bench.sh into BENCH_<n>.json.
func BenchmarkScenario100kHostsParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-host thread-scaling sweep; use scripts/bench.sh or run without -short")
	}
	benchThreadSweep(b, 100000, 0.25, 90*time.Minute, 16)
}

// BenchmarkScenarioEclipse600Hosts runs a full adversary-and-audit
// scenario — 600 hosts, a 22% eclipse + selective-forwarding cohort,
// every node auditing — end to end on the simulator engine: the cost
// of the Byzantine machinery (behavior interception, claim stamping,
// per-message audit checks, blacklist filtering) on top of the honest
// protocol.
func BenchmarkScenarioEclipse600Hosts(b *testing.B) {
	spec := &scenario.Spec{
		Name: "bench-eclipse-600",
		Seed: 1,
		Fleet: scenario.Fleet{
			Hosts:          600,
			Days:           1,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
			Audit:          &scenario.AuditSpec{},
		},
		Adversaries: &scenario.AdversariesSpec{
			Fraction:  0.22,
			BandLo:    0.3,
			BandHi:    0.8,
			Behaviors: []string{"eclipse", "selective-forward"},
			DropRate:  0.6,
		},
		Warmup: scenario.Duration(3 * time.Hour),
		Events: []scenario.Event{
			{At: 0, Adversary: &scenario.AdversaryEvent{Active: true}},
			{At: scenario.Duration(2 * time.Hour), BiasProbe: &scenario.BiasProbe{}},
			{At: scenario.Duration(2*time.Hour + 2*time.Minute), AnycastBatch: &scenario.AnycastBatch{
				Count: 30, BandLo: 0.66, BandHi: 1.01, TargetLo: 0.85, TargetHi: 0.95}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var evicted float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.Options{})
		if err != nil {
			b.Fatal(err)
		}
		evicted = res.Metrics["audit_eviction_rate"]
	}
	b.ReportMetric(evicted, "evicted")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationEpsilon sweeps the horizontal sliver half-width: a
// wider ε grows the horizontal sliver (more memory) and shortens
// within-band routes.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		eps := eps
		b.Run(nameOfFloat("eps", eps), func(b *testing.B) {
			w := benchWorld(b, 1, func(cfg *exp.WorldConfig) { cfg.Epsilon = eps })
			b.ResetTimer()
			var degree, delivered float64
			for i := 0; i < b.N; i++ {
				degree = w.MeanDegree()
				res, err := exp.RunAnycasts(w, benchAnycastSpec(
					"HS+VS", ops.Greedy, core.HSVS,
					ops.Target{Lo: 0.85, Hi: 0.95}, 1.0/3, 2.0/3, 0))
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.FractionDelivered()
			}
			b.ReportMetric(degree, "mean-degree")
			b.ReportMetric(delivered, "delivered")
		})
	}
}

// BenchmarkAblationConstants sweeps c1=c2: the degree/reliability
// trade-off of the predicate constants.
func BenchmarkAblationConstants(b *testing.B) {
	for _, c := range []float64{1, 3, 6} {
		c := c
		b.Run(nameOfFloat("c", c), func(b *testing.B) {
			w := benchWorld(b, 1, func(cfg *exp.WorldConfig) { cfg.C1, cfg.C2 = c, c })
			b.ResetTimer()
			var degree, delivered float64
			for i := 0; i < b.N; i++ {
				degree = w.MeanDegree()
				res, err := exp.RunAnycasts(w, benchAnycastSpec(
					"HS+VS", ops.Greedy, core.HSVS,
					ops.Target{Lo: 0.15, Hi: 0.25}, 2.0/3, 1.01, 0))
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.FractionDelivered()
			}
			b.ReportMetric(degree, "mean-degree")
			b.ReportMetric(delivered, "delivered-harsh")
		})
	}
}

// BenchmarkAblationCushion sweeps the verification cushion: the
// attack-acceptance vs legitimate-rejection trade-off of §4.1.
func BenchmarkAblationCushion(b *testing.B) {
	w := benchWorld(b, 1, func(cfg *exp.WorldConfig) {
		cfg.MonitorErr = 0.05
		cfg.MonitorStaleness = 20 * time.Minute
	})
	for _, cushion := range []float64{0, 0.05, 0.1, 0.2} {
		cushion := cushion
		b.Run(nameOfFloat("cushion", cushion), func(b *testing.B) {
			b.ResetTimer()
			var accept, reject float64
			for i := 0; i < b.N; i++ {
				accept = exp.FloodingAttack(w, cushion).Overall
				reject = exp.LegitimateRejection(w, cushion).Overall
			}
			b.ReportMetric(accept, "attack-accept")
			b.ReportMetric(reject, "legit-reject")
		})
	}
}

// BenchmarkAblationGossipFanout sweeps the gossip fanout at fixed
// Ng=2: reliability and latency vs message budget.
func BenchmarkAblationGossipFanout(b *testing.B) {
	w := benchWorld(b, 1, nil)
	for _, fanout := range []int{2, 5, 8} {
		fanout := fanout
		b.Run(nameOfInt("fanout", fanout), func(b *testing.B) {
			b.ResetTimer()
			var rel float64
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				spec := exp.MulticastSpec{
					Name:   "ablation",
					BandLo: 2.0 / 3, BandHi: 1.01,
					Target: ops.Target{Lo: 0.9, Hi: 1},
					Mode:   ops.Gossip, Flavor: core.HSVS,
					Fanout: fanout, Rounds: 2, Period: time.Second,
					Runs: 1, PerRun: 8,
				}
				res, err := exp.RunMulticasts(w, spec)
				if err != nil {
					b.Fatal(err)
				}
				rel = res.MeanReliability()
				lat = res.MaxWorstLatency()
			}
			b.ReportMetric(rel, "reliability")
			b.ReportMetric(float64(lat.Milliseconds()), "max-latency-ms")
		})
	}
}

// BenchmarkAblationViewSize sweeps the coarse view size v around the
// √N optimum of §3.1: discovery progress after a fixed warmup.
func BenchmarkAblationViewSize(b *testing.B) {
	for _, v := range []int{6, 24, 48} {
		v := v
		b.Run(nameOfInt("view", v), func(b *testing.B) {
			w := benchWorld(b, 1, func(cfg *exp.WorldConfig) { cfg.ViewSize = v })
			b.ResetTimer()
			var degree float64
			for i := 0; i < b.N; i++ {
				degree = w.MeanDegree()
			}
			b.ReportMetric(degree, "mean-degree-after-8h")
		})
	}
}

func median(values []float64) float64 {
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return 0
	}
	// Insertion into sorted order; the slices are tiny.
	for i := 1; i < len(clean); i++ {
		for j := i; j > 0 && clean[j] < clean[j-1]; j-- {
			clean[j], clean[j-1] = clean[j-1], clean[j]
		}
	}
	return clean[len(clean)/2]
}

func nameOfFloat(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}

func nameOfInt(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// BenchmarkAblationVerticalPredicate compares the paper's canonical
// I.B vertical sliver against the Pastry-like I.C (logarithmic-
// decreasing) variant: I.C concentrates links near one's own
// availability, so long-distance anycasts need more hops, while near
// targets stay cheap — the routing-table trade-off Corollary 1.1
// describes.
func BenchmarkAblationVerticalPredicate(b *testing.B) {
	build := func(b *testing.B, decreasing bool) *exp.World {
		b.Helper()
		gen := trace.DefaultGenConfig(1)
		gen.Hosts = 600
		tr, err := trace.Generate(gen)
		if err != nil {
			b.Fatal(err)
		}
		cfg := exp.WorldConfig{Seed: 1, Trace: tr, ProtocolPeriod: 2 * time.Minute}
		if decreasing {
			// Mirror exp.NewWorld's predicate assembly with I.C swapped
			// in for I.B.
			probe, err := exp.NewWorld(cfg)
			if err != nil {
				b.Fatal(err)
			}
			hs, err := core.NewCachedByX(core.LogConstantHorizontal{
				C2: 3, NStar: probe.NStar, Epsilon: 0.1, PDF: probe.PDF,
			})
			if err != nil {
				b.Fatal(err)
			}
			pred, err := core.NewPredicate(0.1, hs,
				core.LogDecreasingVertical{C1: 3, NStar: probe.NStar, PDF: probe.PDF})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Predicate = pred
		}
		w, err := exp.NewWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w.Warmup(8 * time.Hour)
		return w
	}
	for _, variant := range []struct {
		name       string
		decreasing bool
	}{
		{"IB-uniform", false},
		{"IC-decreasing", true},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			w := build(b, variant.decreasing)
			target := ops.Target{Lo: 0.85, Hi: 0.95}
			b.ResetTimer()
			var delivered, meanHops float64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunAnycasts(w, benchAnycastSpec(
					"far", ops.Greedy, core.VSOnly, target, 0, 1.0/3, 0))
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.FractionDelivered()
				if res.Delivered > 0 {
					total := 0
					for h, n := range res.HopsHist {
						total += h * n
					}
					meanHops = float64(total) / float64(res.Delivered)
				}
			}
			b.ReportMetric(delivered, "delivered-far")
			b.ReportMetric(meanHops, "mean-hops-far")
		})
	}
}

// BenchmarkAblationMonitor compares the idealized oracle against the
// AVMON-style distributed ping-based monitor: how much routing quality
// costs when availability estimates are empirical.
func BenchmarkAblationMonitor(b *testing.B) {
	for _, variant := range []struct {
		name        string
		distributed bool
	}{
		{"oracle", false},
		{"distributed", true},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			w := benchWorld(b, 1, func(cfg *exp.WorldConfig) {
				cfg.DistributedMonitor = variant.distributed
			})
			target := ops.Target{Lo: 0.85, Hi: 0.95}
			b.ResetTimer()
			var delivered float64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunAnycasts(w, benchAnycastSpec(
					"mon", ops.Greedy, core.HSVS, target, 0, 1.01, 0))
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.FractionDelivered()
			}
			b.ReportMetric(delivered, "delivered")
			b.ReportMetric(w.MeanDegree(), "mean-degree")
		})
	}
}

// BenchmarkScenarioByzantineCensus600Hosts runs the full aggregation
// defense stack — redundancy-3 disjoint trees, per-instance result
// binding, PDF sanity checks on every merged partial, and an 18%
// agg-lie/agg-mangle/agg-forge cohort attacking it — end to end on
// the simulator engine: the cost of Byzantine-resilient censuses on
// top of the honest protocol.
func BenchmarkScenarioByzantineCensus600Hosts(b *testing.B) {
	spec := &scenario.Spec{
		Name: "bench-byzantine-census-600",
		Seed: 1,
		Fleet: scenario.Fleet{
			Hosts:          600,
			Days:           1,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
			Audit:          &scenario.AuditSpec{},
		},
		Adversaries: &scenario.AdversariesSpec{
			Fraction:  0.18,
			Behaviors: []string{"agg-lie", "agg-mangle", "agg-forge"},
		},
		Warmup: scenario.Duration(3 * time.Hour),
		Events: []scenario.Event{
			{At: 0, Adversary: &scenario.AdversaryEvent{Active: true}},
			{At: scenario.Duration(2 * time.Minute), Aggregate: &scenario.AggregateBatch{
				Count: 10, Op: "avg", BandLo: 0.33, TargetLo: 0.5, TargetHi: 1,
				Redundancy: 3}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var accuracy, forged float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.Options{})
		if err != nil {
			b.Fatal(err)
		}
		accuracy = res.Metrics["agg_accuracy"]
		forged = res.Metrics["agg_forgery_accepted"]
	}
	b.ReportMetric(accuracy, "accuracy")
	b.ReportMetric(forged, "forged-accepted")
}
