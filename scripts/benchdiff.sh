#!/usr/bin/env bash
# benchdiff.sh — guard against performance regressions of the headline
# scenario benchmarks.
#
# Extracts the recorded s/op of each gated benchmark from the newest
# BENCH_<n>.json baseline, reruns it fresh, and fails when the fresh
# run is more than THRESHOLD_PCT slower than the recording (default
# 20%). A benchstat-style one-line comparison is printed either way.
# A gated benchmark absent from the baseline is skipped with a notice
# (older recordings predate it), never silently. The same applies in
# the other direction: a baseline benchmark the current tree no longer
# produces (renamed or retired since the recording) logs a warning and
# is skipped — the gate only compares benchmarks both sides have.
#
# Usage:
#   scripts/benchdiff.sh                      # compare vs newest BENCH_<n>.json
#   scripts/benchdiff.sh BENCH_1.json        # compare vs a specific baseline
#   THRESHOLD_PCT=35 scripts/benchdiff.sh    # looser gate (noisy CI runners)
set -euo pipefail
cd "$(dirname "$0")/.."

benches="BenchmarkScenario2000Hosts BenchmarkScenarioByzantineCensus600Hosts"
threshold="${THRESHOLD_PCT:-20}"

baseline="${1:-}"
if [ -z "${baseline}" ]; then
  n=0
  while [ -e "BENCH_$((n + 1)).json" ]; do n=$((n + 1)); done
  baseline="BENCH_${n}.json"
fi
if [ ! -e "${baseline}" ]; then
  echo "benchdiff: no baseline recording found (run scripts/bench.sh first)" >&2
  exit 2
fi

# The recording is a `go test -json` stream whose "Output" records carry
# fragments of the plain benchmark text; stitch them back together.
# The name and the "N ns/op ..." numbers may land on separate lines
# (test2json splits exactly as the text stream flushed), so the parser
# takes the numbers either from the name's own line or the next line
# carrying ns/op.
extract_ns() { # extract_ns <bench-name>  (reads plain bench text on stdin)
  awk -v b="$1" '
    index($0, b) == 1 { armed = 1 }
    armed && / ns\/op/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") { print $i; exit }
    }'
}

baseline_text=$(grep -o '"Output":"[^"]*"' "${baseline}" \
  | sed 's/^"Output":"//; s/"$//' | tr -d '\n' \
  | sed 's/\\n/\n/g; s/\\t/\t/g')

failed=0
for bench in ${benches}; do
  old_ns=$(echo "${baseline_text}" | extract_ns "${bench}")
  if [ -z "${old_ns}" ]; then
    echo "benchdiff: ${bench} not in ${baseline} (predates it?); skipping" >&2
    continue
  fi

  echo "baseline ${baseline}: ${bench} $(awk -v ns="${old_ns}" 'BEGIN { printf "%.3f", ns / 1e9 }') s/op; rerunning..." >&2
  fresh=$(go test -run=NONE -bench="^${bench}\$" -benchtime=3x .)
  echo "${fresh}" >&2
  new_ns=$(echo "${fresh}" | extract_ns "${bench}")
  if [ -z "${new_ns}" ]; then
    echo "benchdiff: WARNING: fresh run produced no ${bench} result (renamed or retired since ${baseline}?); skipping" >&2
    continue
  fi

  awk -v old="${old_ns}" -v new="${new_ns}" -v limit="${threshold}" -v bench="${bench}" 'BEGIN {
    delta = (new - old) / old * 100
    printf "%s: %.3f s/op -> %.3f s/op (%+.1f%%, gate +%s%%)\n", bench, old / 1e9, new / 1e9, delta, limit
    if (delta > limit) {
      printf "REGRESSION: %s is %.1f%% slower than the recorded baseline\n", bench, delta
      exit 1
    }
  }' || failed=1
done
exit "${failed}"
