#!/usr/bin/env bash
# bench.sh — record a benchmark run as BENCH_<n>.json in the repo root,
# so the performance trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench.sh                  # key benchmarks, next free BENCH_<n>.json
#   scripts/bench.sh 'Scenario|Fig7'  # custom -bench regex
#   BENCHTIME=5x scripts/bench.sh     # custom -benchtime
#
# The file is the `go test -json` (test2json) stream, which embeds the
# standard benchmark text lines in "output" records. To feed a pair of
# recordings to benchstat:
#
#   jq -r 'select(.Action=="output") | .Output' BENCH_0.json > /tmp/old.txt
#   jq -r 'select(.Action=="output") | .Output' BENCH_1.json > /tmp/new.txt
#   benchstat /tmp/old.txt /tmp/new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

regex="${1:-BenchmarkScenario2000Hosts|BenchmarkScenario10kHosts|BenchmarkScenario50kHosts|BenchmarkScenario100kHosts|BenchmarkScenarioMemnet600Hosts|BenchmarkScenarioEclipse600Hosts|BenchmarkScenarioByzantineCensus600Hosts|BenchmarkDiscoverRound|BenchmarkFig7AnycastHops|BenchmarkSchedulerReschedule}"
benchtime="${BENCHTIME:-3x}"

n=0
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"

echo "recording -bench='${regex}' -benchtime=${benchtime} -> ${out}" >&2
status=0
go test -run=NONE -bench="${regex}" -benchtime="${benchtime}" -benchmem -json ./... > "${out}" || status=$?
grep -o '"Output":"\(Benchmark\| *[0-9]\)[^"]*' "${out}" | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true
if [ "${status}" -ne 0 ]; then
  # Keep the stream for debugging, but never let a broken run pose as a
  # recorded baseline.
  mv "${out}" "${out}.failed"
  echo "bench run FAILED (exit ${status}); stream kept at ${out}.failed" >&2
  exit "${status}"
fi
echo "recorded ${out}" >&2
