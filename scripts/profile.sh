#!/usr/bin/env bash
# profile.sh — profile a scenario run end to end.
#
# Builds cmd/avmemsim and executes one scenario with the profiler flags
# (-cpuprofile / -memprofile / -trace) turned on, dropping the artifacts
# under profiles/. This is the deployment-engine view: world build,
# warmup, drivers, workload — everything `avmemsim run` does, which is
# also exactly what the BenchmarkScenario* targets measure.
#
# Usage:
#   scripts/profile.sh                              # scenarios/mixed-workload.json
#   scripts/profile.sh scenarios/churn-storm.json   # another scenario
#   scripts/profile.sh scenarios/mixed-workload.json -shards 8
#                                                   # extra run flags pass through
#   scripts/profile.sh scenarios/mixed-workload.json -shards 8 -shard-threads 4
#                                                   # thread-parallel engine; the mutex/block
#                                                   # profiles show barrier + shared-cache cost
#
# Inspect with:
#   go tool pprof -top profiles/cpu.pprof
#   go tool pprof -top -sample_index=alloc_space profiles/mem.pprof
#   go tool pprof -top profiles/mutex.pprof
#   go tool pprof -top profiles/block.pprof
#   go tool trace profiles/exec.trace
set -euo pipefail
cd "$(dirname "$0")/.."

scenario="${1:-scenarios/mixed-workload.json}"
shift $(( $# > 0 ? 1 : 0 ))

mkdir -p profiles
go build -o profiles/avmemsim ./cmd/avmemsim
profiles/avmemsim run -q \
  -cpuprofile profiles/cpu.pprof \
  -memprofile profiles/mem.pprof \
  -mutexprofile profiles/mutex.pprof \
  -blockprofile profiles/block.pprof \
  -trace profiles/exec.trace \
  "$@" "${scenario}"
echo "wrote profiles/{cpu,mem,mutex,block}.pprof profiles/exec.trace" >&2
echo "try: go tool pprof -top profiles/cpu.pprof" >&2
