package avmem_test

import (
	"testing"
	"time"

	"avmem"
)

func newSmallSim(t testing.TB) *avmem.Sim {
	t.Helper()
	sim, err := avmem.NewSim(avmem.SimConfig{
		Hosts:          220,
		Days:           2,
		Seed:           1,
		ProtocolPeriod: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Warmup(6 * time.Hour)
	return sim
}

func TestSimLifecycle(t *testing.T) {
	sim := newSmallSim(t)
	if got := len(sim.Nodes()); got != 220 {
		t.Errorf("Nodes = %d, want 220", got)
	}
	online := sim.OnlineNodes()
	if len(online) == 0 {
		t.Fatal("nobody online after warmup")
	}
	for _, id := range online[:3] {
		if !sim.Online(id) {
			t.Errorf("OnlineNodes returned offline node %v", id)
		}
		av := sim.Availability(id)
		if av < 0 || av > 1 {
			t.Errorf("availability out of range: %v", av)
		}
	}
	if sim.MeanDegree() <= 0 {
		t.Error("mean degree zero after warmup")
	}
	if sim.Now() != 6*time.Hour {
		t.Errorf("Now = %v, want 6h", sim.Now())
	}
}

func TestSimAnycastAuto(t *testing.T) {
	sim := newSmallSim(t)
	target, err := avmem.NewRange(0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Eligible(target) == 0 {
		t.Skip("no eligible nodes in small sim")
	}
	rec, err := sim.Anycast(avmem.AutoInitiator, target, avmem.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != avmem.OutcomeDelivered {
		t.Errorf("outcome = %v, want delivered", rec.Outcome)
	}
	if rec.Latency < 0 {
		t.Errorf("negative latency %v", rec.Latency)
	}
}

func TestSimAnycastExplicitInitiator(t *testing.T) {
	sim := newSmallSim(t)
	from, ok := sim.PickNode(0, 0.5)
	if !ok {
		t.Skip("no low-availability node online")
	}
	target, _ := avmem.NewThreshold(0.6)
	if sim.Eligible(target) == 0 {
		t.Skip("no eligible nodes")
	}
	rec, err := sim.Anycast(from, target, avmem.AnycastOptions{
		Policy: avmem.RetriedGreedy,
		Flavor: avmem.HSVS,
		TTL:    6,
		Retry:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome == avmem.OutcomePending {
		t.Error("retried-greedy anycast ended pending")
	}
}

func TestSimAnycastUnknownInitiator(t *testing.T) {
	sim := newSmallSim(t)
	target, _ := avmem.NewThreshold(0.5)
	if _, err := sim.Anycast("ghost", target, avmem.DefaultAnycastOptions()); err == nil {
		t.Error("want error for unknown initiator")
	}
}

func TestSimMulticastFlood(t *testing.T) {
	sim := newSmallSim(t)
	target, _ := avmem.NewThreshold(0.5)
	if sim.Eligible(target) < 3 {
		t.Skip("target too sparse")
	}
	rec, err := sim.Multicast(avmem.AutoInitiator, target, avmem.DefaultMulticastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.EnteredRange {
		t.Error("multicast never entered range")
	}
	if rec.Reliability() < 0.5 {
		t.Errorf("flood reliability = %v, want high", rec.Reliability())
	}
}

func TestSimMulticastGossip(t *testing.T) {
	sim := newSmallSim(t)
	target, _ := avmem.NewThreshold(0.5)
	if sim.Eligible(target) < 3 {
		t.Skip("target too sparse")
	}
	opts := avmem.MulticastOptions{
		Anycast: avmem.DefaultAnycastOptions(),
		Mode:    avmem.Gossip,
		Flavor:  avmem.HSVS,
		Fanout:  5,
		Rounds:  2,
		Period:  time.Second,
	}
	rec, err := sim.Multicast(avmem.AutoInitiator, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Delivered) == 0 {
		t.Error("gossip delivered nothing")
	}
}

func TestSimSliversAndNeighbors(t *testing.T) {
	sim := newSmallSim(t)
	var checked bool
	for _, id := range sim.OnlineNodes() {
		hs, vs := sim.SliverSizes(id)
		nbs := sim.Neighbors(id, avmem.HSVS)
		if hs+vs != len(nbs) {
			t.Fatalf("sliver sizes %d+%d != neighbor count %d", hs, vs, len(nbs))
		}
		if len(nbs) > 0 {
			checked = true
			if got := len(sim.Neighbors(id, avmem.HSOnly)); got != hs {
				t.Errorf("HSOnly neighbors = %d, want %d", got, hs)
			}
		}
	}
	if !checked {
		t.Error("no node had neighbors")
	}
	if hs, vs := sim.SliverSizes("ghost"); hs != 0 || vs != 0 {
		t.Error("unknown node has slivers")
	}
	if nbs := sim.Neighbors("ghost", avmem.HSVS); nbs != nil {
		t.Error("unknown node has neighbors")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := avmem.NewSim(avmem.SimConfig{Hosts: -1, Seed: 1}); err == nil {
		t.Error("want error for negative hosts")
	}
}

func TestTargetHelpers(t *testing.T) {
	if _, err := avmem.NewRange(0.5, 0.2); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := avmem.NewThreshold(1.5); err == nil {
		t.Error("want error for threshold out of range")
	}
	tgt, err := avmem.NewThreshold(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !tgt.Contains(0.95) || tgt.Contains(0.85) {
		t.Error("threshold target misbehaves")
	}
}

func TestPredicateHelpers(t *testing.T) {
	pdf := avmem.OvernetPDF()
	pred, err := avmem.NewPaperPredicate(0.1, 3, 3, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Epsilon != 0.1 {
		t.Errorf("epsilon = %v", pred.Epsilon)
	}
	if _, err := avmem.NewPaperPredicate(0.1, 3, 3, 442, nil); err == nil {
		t.Error("want error for nil PDF")
	}
	rnd, err := avmem.NewRandomPredicate(0.1, 12, 442)
	if err != nil {
		t.Fatal(err)
	}
	if got := rnd.Threshold(0.1, 0.9); got <= 0 {
		t.Errorf("random predicate threshold = %v", got)
	}
	if _, err := avmem.PDFFromSamples([]float64{0.2, 0.5, 0.9}); err != nil {
		t.Errorf("PDFFromSamples: %v", err)
	}
	if _, err := avmem.PDFFromSamples(nil); err == nil {
		t.Error("want error for no samples")
	}
	if avmem.UniformPDF().Density(0.5) <= 0 {
		t.Error("uniform PDF density zero")
	}
}

func TestLiveFacade(t *testing.T) {
	tr := avmem.NewMemoryTransport(0, 0)
	defer tr.Close()
	monitor := avmem.StaticMonitor{
		"a": 0.5,
		"b": 0.9,
	}
	pdf := avmem.UniformPDF()
	pred, err := avmem.NewPaperPredicate(0.1, 5, 5, 2, pdf)
	if err != nil {
		t.Fatal(err)
	}
	peers := avmem.PeerFunc(func(self avmem.NodeID) []avmem.NodeID {
		if self == "a" {
			return []avmem.NodeID{"b"}
		}
		return []avmem.NodeID{"a"}
	})
	var nodes []*avmem.Node
	for _, id := range []avmem.NodeID{"a", "b"} {
		n, err := avmem.NewNode(avmem.NodeConfig{
			Self:           id,
			Predicate:      pred,
			Monitor:        monitor,
			Peers:          peers,
			Transport:      tr,
			ProtocolPeriod: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	deadline := time.After(3 * time.Second)
	for {
		if _, vs := nodes[0].SliverSizes(); vs >= 1 {
			return // node a discovered node b as a vertical neighbor
		}
		select {
		case <-deadline:
			hs, vs := nodes[0].SliverSizes()
			t.Fatalf("live discovery failed: hs=%d vs=%d", hs, vs)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestSimMemnetBackend(t *testing.T) {
	sim, err := avmem.NewSim(avmem.SimConfig{
		Hosts:          120,
		Days:           1,
		Seed:           1,
		ProtocolPeriod: 2 * time.Minute,
		Backend:        "memnet",
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Warmup(3 * time.Hour)
	if len(sim.OnlineNodes()) == 0 {
		t.Fatal("nobody online after warmup on memnet backend")
	}
	if sim.MeanDegree() <= 0 {
		t.Error("overlay never formed on memnet backend")
	}
	target, err := avmem.NewRange(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Eligible(target) == 0 {
		t.Skip("no eligible nodes in small cluster")
	}
	rec, err := sim.Anycast(avmem.AutoInitiator, target, avmem.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != avmem.OutcomeDelivered {
		t.Errorf("memnet anycast outcome = %v, want delivered", rec.Outcome)
	}
}

func TestNewSimRejectsUnknownBackend(t *testing.T) {
	if _, err := avmem.NewSim(avmem.SimConfig{Backend: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
