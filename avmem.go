// Package avmem is an availability-aware overlay for management
// operations in non-cooperative distributed systems — a complete Go
// implementation of AVMEM (Cho, Morales, Gupta; ACM/IFIP/USENIX
// Middleware 2007).
//
// AVMEM gives every node two small membership lists chosen by a random
// and consistent predicate over node identifiers and availabilities:
// a horizontal sliver (peers with similar availability) and a vertical
// sliver (a uniform sample across the availability space). On top of
// the overlay it executes four availability-based management
// operations: threshold-anycast, range-anycast, threshold-multicast,
// and range-multicast — e.g. "select a supernode with availability
// above 0.9" or "multicast to every node between 20% and 30% uptime".
// Because the predicate is consistent (any third party can re-evaluate
// it from public information), selfish nodes gain almost nothing by
// spraying messages at non-neighbors: receivers verify and reject.
//
// The package offers two execution modes sharing the same core:
//
//   - Sim: a deterministic trace-driven simulation of a whole
//     deployment (the paper's evaluation environment). Use it to
//     explore parameters and regenerate the paper's figures.
//   - Node: a live runtime driving one real node over a pluggable
//     transport (in-memory for single-process clusters, TCP for real
//     ones).
//
// Quick start:
//
//	sim, err := avmem.NewSim(avmem.SimConfig{Hosts: 600, Seed: 1})
//	if err != nil { ... }
//	sim.Warmup(24 * time.Hour)
//	target, _ := avmem.NewRange(0.85, 0.95)
//	res, err := sim.Anycast(avmem.AutoInitiator, target, avmem.DefaultAnycastOptions())
//	fmt.Println(res.Outcome, res.Hops, res.Latency)
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-vs-measured record.
package avmem

import (
	"time"

	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/node"
	"avmem/internal/ops"
	"avmem/internal/trace"
	"avmem/internal/transport"
)

// Core identity and operation types, aliased from the implementation
// packages so their methods come along.
type (
	// NodeID identifies a node (host:port for TCP deployments).
	NodeID = ids.NodeID
	// Target is an availability interval an operation addresses.
	Target = ops.Target
	// Policy selects the anycast forwarding algorithm.
	Policy = ops.Policy
	// Mode selects the multicast dissemination algorithm.
	Mode = ops.Mode
	// Flavor selects which sliver lists an operation may use.
	Flavor = core.Flavor
	// AnycastOptions parameterizes anycasts.
	AnycastOptions = ops.AnycastOptions
	// MulticastOptions parameterizes multicasts.
	MulticastOptions = ops.MulticastOptions
	// MsgID identifies one operation instance.
	MsgID = ops.MsgID
	// AnycastRecord is the outcome of one anycast.
	AnycastRecord = ops.AnycastRecord
	// MulticastRecord is the outcome of one multicast.
	MulticastRecord = ops.MulticastRecord
	// Outcome is an anycast's terminal state.
	Outcome = ops.AnycastOutcome
	// Neighbor is one AVMEM membership entry.
	Neighbor = core.Neighbor
	// Predicate is a full AVMEM membership predicate.
	Predicate = core.Predicate
	// SubPredicate computes the threshold f for one sliver kind.
	SubPredicate = core.SubPredicate
	// PDF is a discretized availability distribution.
	PDF = avdist.PDF
	// Trace is a churn trace (per-host uptime per 20-minute epoch).
	Trace = trace.Trace
)

// Forwarding policies (paper §3.2.I).
const (
	Greedy        = ops.Greedy
	RetriedGreedy = ops.RetriedGreedy
	Annealing     = ops.Annealing
)

// Dissemination modes (paper §3.2.II).
const (
	Flood  = ops.Flood
	Gossip = ops.Gossip
)

// Sliver flavors.
const (
	HSOnly = core.HSOnly
	VSOnly = core.VSOnly
	HSVS   = core.HSVS
)

// Anycast outcomes.
const (
	OutcomePending      = ops.OutcomePending
	OutcomeDelivered    = ops.OutcomeDelivered
	OutcomeTTLExpired   = ops.OutcomeTTLExpired
	OutcomeRetryExpired = ops.OutcomeRetryExpired
)

// NewRange builds a range target [lo, hi] (range-anycast/-multicast).
func NewRange(lo, hi float64) (Target, error) { return ops.Range(lo, hi) }

// NewThreshold builds a threshold target: nodes with availability > b.
func NewThreshold(b float64) (Target, error) { return ops.Threshold(b) }

// DefaultAnycastOptions returns the paper's defaults: greedy, HS+VS,
// TTL 6.
func DefaultAnycastOptions() AnycastOptions { return ops.DefaultAnycastOptions() }

// DefaultMulticastOptions returns the paper's defaults: greedy HS+VS
// entry anycast, flooding dissemination.
func DefaultMulticastOptions() MulticastOptions { return ops.DefaultMulticastOptions() }

// NewPaperPredicate builds the paper's canonical predicate —
// Logarithmic Vertical Sliver (I.B) + Logarithmic-Constant Horizontal
// Sliver (II.B) — over the given availability PDF and stable system
// size nStar.
func NewPaperPredicate(epsilon, c1, c2, nStar float64, pdf *PDF) (*Predicate, error) {
	return core.PaperPredicate(epsilon, c1, c2, nStar, pdf)
}

// NewRandomPredicate builds a consistent random-overlay predicate with
// the given expected degree (the Figure-10 baseline).
func NewRandomPredicate(epsilon, degree, nStar float64) (*Predicate, error) {
	return core.RandomPredicate(epsilon, degree, nStar)
}

// OvernetPDF returns the built-in Overnet-like skewed availability
// model (≈50% of hosts below 0.3 availability).
func OvernetPDF() *PDF { return avdist.Overnet(avdist.DefaultBuckets) }

// UniformPDF returns the uniform availability model.
func UniformPDF() *PDF { return avdist.Uniform(avdist.DefaultBuckets) }

// PDFFromSamples estimates an availability PDF from crawled samples.
func PDFFromSamples(samples []float64) (*PDF, error) {
	return avdist.FromSamples(samples, avdist.DefaultBuckets)
}

// Live-deployment building blocks.
type (
	// Node is a live AVMEM agent.
	Node = node.Node
	// NodeConfig assembles a live node.
	NodeConfig = node.Config
	// PeerSource supplies discovery candidates to a live node.
	PeerSource = node.PeerSource
	// PeerFunc adapts a function to PeerSource.
	PeerFunc = node.PeerFunc
	// Transport moves operation messages between live nodes.
	Transport = transport.Transport
	// Monitor answers availability queries.
	Monitor = avmon.Service
	// StaticMonitor is a fixed map-backed Monitor (small deployments,
	// tests, crawler dumps).
	StaticMonitor = avmon.Static
)

// NewNode builds a live node (call Start to run it).
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// NewMemoryTransport returns an in-process transport with per-message
// latency drawn from [min, max].
func NewMemoryTransport(min, max time.Duration) Transport {
	return transport.NewMemory(min, max)
}

// NewTCPTransport returns the TCP transport (host:port NodeIDs).
func NewTCPTransport(dialTimeout, ackTimeout time.Duration) Transport {
	return transport.NewTCP(dialTimeout, ackTimeout)
}
