package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"avmem/internal/ids"
)

// The text codec serializes traces in a simple line format so synthetic
// traces can be archived and real measurement data can be imported:
//
//	# avmem-trace v1
//	hosts 1442 epochs 504 epoch_seconds 1200
//	10.0.0.0:4000 0110111...   (one 0/1 rune per epoch)
//	10.0.0.1:4001 1111000...
//
// Lines starting with '#' are comments and ignored on read.

const codecHeader = "# avmem-trace v1"

// Write serializes the trace to w in the avmem-trace v1 text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, codecHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "hosts %d epochs %d epoch_seconds %d\n",
		t.Hosts(), t.Epochs(), int(t.EpochLength().Seconds())); err != nil {
		return fmt.Errorf("trace: write dimensions: %w", err)
	}
	row := make([]byte, t.Epochs())
	for h := 0; h < t.Hosts(); h++ {
		for e := 0; e < t.Epochs(); e++ {
			if t.Up(h, e) {
				row[e] = '1'
			} else {
				row[e] = '0'
			}
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", t.HostID(h), row); err != nil {
			return fmt.Errorf("trace: write host %d: %w", h, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read parses a trace in the avmem-trace v1 text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if line != codecHeader {
		return nil, fmt.Errorf("trace: bad header %q, want %q", line, codecHeader)
	}

	line, err = nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("trace: read dimensions: %w", err)
	}
	var hosts, epochs, epochSeconds int
	if _, err := fmt.Sscanf(line, "hosts %d epochs %d epoch_seconds %d",
		&hosts, &epochs, &epochSeconds); err != nil {
		return nil, fmt.Errorf("trace: parse dimensions %q: %w", line, err)
	}
	if hosts <= 0 || epochs <= 0 || epochSeconds <= 0 {
		return nil, fmt.Errorf("trace: non-positive dimensions in %q", line)
	}

	// Cap the preallocation: hosts comes from an untrusted header, and
	// honoring a huge claim would allocate gigabytes before a single
	// row is read. The slices grow to the real row count regardless.
	prealloc := hosts
	if prealloc > 4096 {
		prealloc = 4096
	}
	hostIDs := make([]ids.NodeID, 0, prealloc)
	rows := make([]string, 0, prealloc)
	for i := 0; i < hosts; i++ {
		line, err = nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("trace: read host row %d: %w", i, err)
		}
		id, bits, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("trace: malformed host row %d: %q", i, line)
		}
		if len(bits) != epochs {
			return nil, fmt.Errorf("trace: host %q has %d epochs, want %d", id, len(bits), epochs)
		}
		hostIDs = append(hostIDs, ids.NodeID(id))
		rows = append(rows, bits)
	}

	t, err := New(hostIDs, epochs, time.Duration(epochSeconds)*time.Second)
	if err != nil {
		return nil, err
	}
	for h, bits := range rows {
		for e := 0; e < epochs; e++ {
			switch bits[e] {
			case '1':
				t.SetUp(h, e, true)
			case '0':
				// already offline
			default:
				return nil, fmt.Errorf("trace: host %q epoch %d: invalid bit %q", hostIDs[h], e, bits[e])
			}
		}
	}
	return t, nil
}

// nextLine returns the next meaningful line: blank lines and comments
// are skipped, except the version header itself (which begins with '#'
// but is significant).
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") && line != codecHeader {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
