// Package trace models host churn traces: per-host uptime sampled at
// fixed epochs, the shape of the Overnet measurement data (Bhagwan et
// al., IPTPS 2003) the paper injects into its simulator — a fixed
// population of 1442 hosts probed every 20 minutes for 7 days.
//
// The package provides the trace container with availability queries
// (raw and exponentially aged), a text codec so real traces can be
// loaded and synthetic ones archived, and a synthetic generator that
// reproduces the published Overnet availability statistics (see the
// default-fleet table in DESIGN.md §8 for the substitution argument).
package trace

import (
	"fmt"
	"time"

	"avmem/internal/ids"
)

// DefaultEpoch is the probing interval of the Overnet traces.
const DefaultEpoch = 20 * time.Minute

// Overnet trace dimensions used throughout the paper's evaluation.
const (
	OvernetHosts  = 1442
	OvernetDays   = 7
	OvernetEpochs = OvernetDays * 24 * 3 // 20-minute epochs
)

// Trace is an immutable-by-convention uptime matrix: Up(h, e) reports
// whether host h was online during epoch e. Uptime is stored as packed
// bitsets, ~90 KB for the full Overnet dimensions.
type Trace struct {
	hosts  []ids.NodeID
	index  map[ids.NodeID]int
	epochs int
	epoch  time.Duration
	words  int // uint64 words per host row
	bits   []uint64
}

// New creates an all-offline trace for the given hosts and epoch count.
// epoch <= 0 selects DefaultEpoch. It returns an error on duplicate or
// nil host IDs or non-positive epochs.
func New(hosts []ids.NodeID, epochs int, epoch time.Duration) (*Trace, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("trace: no hosts")
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("trace: epochs must be positive, got %d", epochs)
	}
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	index := make(map[ids.NodeID]int, len(hosts))
	for i, h := range hosts {
		if h.IsNil() {
			return nil, fmt.Errorf("trace: nil host id at index %d", i)
		}
		if _, dup := index[h]; dup {
			return nil, fmt.Errorf("trace: duplicate host id %q", h)
		}
		index[h] = i
	}
	words := (epochs + 63) / 64
	t := &Trace{
		hosts:  append([]ids.NodeID(nil), hosts...),
		index:  index,
		epochs: epochs,
		epoch:  epoch,
		words:  words,
		bits:   make([]uint64, words*len(hosts)),
	}
	return t, nil
}

// Hosts returns the number of hosts in the trace.
func (t *Trace) Hosts() int { return len(t.hosts) }

// Epochs returns the number of epochs in the trace.
func (t *Trace) Epochs() int { return t.epochs }

// EpochLength returns the duration of one epoch.
func (t *Trace) EpochLength() time.Duration { return t.epoch }

// Duration returns the total wall-clock span of the trace.
func (t *Trace) Duration() time.Duration { return time.Duration(t.epochs) * t.epoch }

// HostID returns the NodeID of host index h.
func (t *Trace) HostID(h int) ids.NodeID { return t.hosts[h] }

// HostIndex returns the index for a NodeID, or -1 if unknown.
func (t *Trace) HostIndex(id ids.NodeID) int {
	if i, ok := t.index[id]; ok {
		return i
	}
	return -1
}

// HostIDs returns a copy of all host identifiers in index order.
func (t *Trace) HostIDs() []ids.NodeID {
	return append([]ids.NodeID(nil), t.hosts...)
}

// SetUp marks host h online (up=true) or offline during epoch e.
func (t *Trace) SetUp(h, e int, up bool) {
	t.checkBounds(h, e)
	w := h*t.words + e/64
	mask := uint64(1) << uint(e%64)
	if up {
		t.bits[w] |= mask
	} else {
		t.bits[w] &^= mask
	}
}

// Up reports whether host h was online during epoch e.
func (t *Trace) Up(h, e int) bool {
	t.checkBounds(h, e)
	return t.bits[h*t.words+e/64]&(uint64(1)<<uint(e%64)) != 0
}

// EpochAt maps an instant (time since trace start) to an epoch index,
// clamped into [0, Epochs-1].
func (t *Trace) EpochAt(at time.Duration) int {
	if at < 0 {
		return 0
	}
	e := int(at / t.epoch)
	if e >= t.epochs {
		e = t.epochs - 1
	}
	return e
}

// UpAt reports whether host h is online at the given instant.
func (t *Trace) UpAt(h int, at time.Duration) bool { return t.Up(h, t.EpochAt(at)) }

// UpAtIndex is the hot-path liveness probe: like UpAt but tolerant of
// out-of-range host indexes (reported offline instead of panicking), so
// deployment-wide liveness checks — executed once per node per delivery,
// tick, and ping — are a pure bitset read with no map lookups. Index h
// is the host's row in this trace (HostIndex / HostID order).
func (t *Trace) UpAtIndex(h int, at time.Duration) bool {
	if h < 0 || h >= len(t.hosts) {
		return false
	}
	return t.Up(h, t.EpochAt(at))
}

// OnlineCount returns how many hosts are online during epoch e.
func (t *Trace) OnlineCount(e int) int {
	n := 0
	for h := range t.hosts {
		if t.Up(h, e) {
			n++
		}
	}
	return n
}

// OnlineHosts returns the indices of hosts online during epoch e.
func (t *Trace) OnlineHosts(e int) []int {
	out := make([]int, 0, len(t.hosts)/2)
	for h := range t.hosts {
		if t.Up(h, e) {
			out = append(out, h)
		}
	}
	return out
}

// Availability returns host h's long-term availability measured from
// epoch 0 through epoch upto inclusive: the fraction of those epochs the
// host was online. This is the "raw" availability the paper's
// monitoring service reports.
func (t *Trace) Availability(h, upto int) float64 {
	t.checkBounds(h, 0)
	if upto < 0 {
		return 0
	}
	if upto >= t.epochs {
		upto = t.epochs - 1
	}
	up := 0
	for e := 0; e <= upto; e++ {
		if t.Up(h, e) {
			up++
		}
	}
	return float64(up) / float64(upto+1)
}

// WindowAvailability returns the fraction of epochs in [from, to]
// (clamped, inclusive) during which host h was online.
func (t *Trace) WindowAvailability(h, from, to int) float64 {
	t.checkBounds(h, 0)
	if from < 0 {
		from = 0
	}
	if to >= t.epochs {
		to = t.epochs - 1
	}
	if to < from {
		return 0
	}
	up := 0
	for e := from; e <= to; e++ {
		if t.Up(h, e) {
			up++
		}
	}
	return float64(up) / float64(to-from+1)
}

// AgedAvailability returns an exponentially aged availability at epoch
// upto: av_e = alpha*up_e + (1-alpha)*av_{e-1}, which weighs recent
// behaviour more heavily (the "aged" variant mentioned in §3.1).
// alpha must lie in (0, 1].
func (t *Trace) AgedAvailability(h, upto int, alpha float64) float64 {
	t.checkBounds(h, 0)
	if alpha <= 0 || alpha > 1 {
		return 0
	}
	if upto >= t.epochs {
		upto = t.epochs - 1
	}
	av := 0.0
	if t.Up(h, 0) {
		av = 1.0
	}
	for e := 1; e <= upto; e++ {
		obs := 0.0
		if t.Up(h, e) {
			obs = 1.0
		}
		av = alpha*obs + (1-alpha)*av
	}
	return av
}

// Availabilities returns every host's long-term availability through
// epoch upto, indexed by host.
func (t *Trace) Availabilities(upto int) []float64 {
	out := make([]float64, len(t.hosts))
	for h := range t.hosts {
		out[h] = t.Availability(h, upto)
	}
	return out
}

// MeanOnline returns the mean number of online hosts per epoch across
// the whole trace — an estimator for the paper's stable system size N*.
func (t *Trace) MeanOnline() float64 {
	var sum int
	for e := 0; e < t.epochs; e++ {
		sum += t.OnlineCount(e)
	}
	return float64(sum) / float64(t.epochs)
}

func (t *Trace) checkBounds(h, e int) {
	if h < 0 || h >= len(t.hosts) {
		panic(fmt.Sprintf("trace: host index %d out of range [0,%d)", h, len(t.hosts)))
	}
	if e < 0 || e >= t.epochs {
		panic(fmt.Sprintf("trace: epoch %d out of range [0,%d)", e, t.epochs))
	}
}

// SmoothedAvailability returns the add-one (Laplace) estimate of host
// h's long-term availability through epoch upto: (up+1)/(n+2). This is
// what a monitoring service should report: early in a host's lifetime
// the raw ratio sits at the degenerate extremes (exactly 0.0 or 1.0 for
// hosts that have been always-off or always-on so far), where no
// population mass lives; the smoothed estimator keeps reports inside
// the calibrated range and converges to the raw ratio as epochs
// accumulate.
func (t *Trace) SmoothedAvailability(h, upto int) float64 {
	t.checkBounds(h, 0)
	if upto < 0 {
		return 0.5 // no observations: uninformative prior
	}
	if upto >= t.epochs {
		upto = t.epochs - 1
	}
	up := 0
	for e := 0; e <= upto; e++ {
		if t.Up(h, e) {
			up++
		}
	}
	return float64(up+1) / float64(upto+3)
}

// SmoothedAvailabilities returns every host's smoothed availability
// through epoch upto, indexed by host.
func (t *Trace) SmoothedAvailabilities(upto int) []float64 {
	out := make([]float64, len(t.hosts))
	for h := range t.hosts {
		out[h] = t.SmoothedAvailability(h, upto)
	}
	return out
}

// SessionStats summarizes host h's online sessions across the whole
// trace: how many distinct sessions it had and their mean length in
// epochs. Zero sessions yield (0, 0).
func (t *Trace) SessionStats(h int) (sessions int, meanEpochs float64) {
	t.checkBounds(h, 0)
	upEpochs := 0
	inSession := false
	for e := 0; e < t.epochs; e++ {
		if t.Up(h, e) {
			upEpochs++
			if !inSession {
				sessions++
				inSession = true
			}
		} else {
			inSession = false
		}
	}
	if sessions == 0 {
		return 0, 0
	}
	return sessions, float64(upEpochs) / float64(sessions)
}
