package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/ids"
)

// GenConfig parameterizes the synthetic Overnet-like churn generator.
// The zero value is not usable; start from DefaultGenConfig.
type GenConfig struct {
	// Hosts is the population size (fixed over the trace, as in the
	// Overnet measurement).
	Hosts int
	// Epochs is the trace length in epochs.
	Epochs int
	// Epoch is the probing interval.
	Epoch time.Duration
	// Seed seeds the deterministic generator.
	Seed int64
	// PDF is the target long-term availability distribution hosts are
	// drawn from. Nil selects avdist.Overnet.
	PDF *avdist.PDF
	// MeanSessionEpochs is the mean online-session length, in epochs,
	// for a host with availability 0.5. Session lengths scale with
	// availability. Must be >= 1.
	MeanSessionEpochs float64
	// DiurnalAmplitude modulates the per-epoch availability target with
	// a daily sine wave of this amplitude (0 disables). The Overnet
	// trace shows mild diurnal behaviour; 0.1 is a reasonable setting.
	DiurnalAmplitude float64
}

// DefaultGenConfig returns the configuration matching the paper's trace:
// 1442 hosts, 7 days at 20-minute epochs, Overnet-like availability
// distribution, mild diurnal modulation.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Hosts:             OvernetHosts,
		Epochs:            OvernetEpochs,
		Epoch:             DefaultEpoch,
		Seed:              seed,
		PDF:               nil, // Overnet by default
		MeanSessionEpochs: 9,   // 3 hours at 20-minute epochs
		DiurnalAmplitude:  0.1,
	}
}

// Generate synthesizes a churn trace whose per-host long-term
// availabilities follow cfg.PDF and whose epoch-scale on/off dynamics
// come from a per-host two-state Markov chain with geometric session and
// absence lengths, optionally modulated by a diurnal wave.
//
// For a host with availability target a, the chain uses
//
//	P(up→down) = q = 1/meanUp,   P(down→up) = r = q·a/(1−a),
//
// whose stationary online fraction is exactly a. meanUp grows with a so
// stable hosts have long sessions, matching the measured correlation
// between availability and session length.
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("trace: Hosts must be positive, got %d", cfg.Hosts)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("trace: Epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.MeanSessionEpochs < 1 {
		return nil, fmt.Errorf("trace: MeanSessionEpochs must be >= 1, got %v", cfg.MeanSessionEpochs)
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude > 0.5 {
		return nil, fmt.Errorf("trace: DiurnalAmplitude must be in [0,0.5], got %v", cfg.DiurnalAmplitude)
	}
	pdf := cfg.PDF
	if pdf == nil {
		pdf = avdist.Overnet(avdist.DefaultBuckets)
	}
	hosts := make([]ids.NodeID, cfg.Hosts)
	for i := range hosts {
		hosts[i] = ids.Synthetic(i)
	}
	tr, err := New(hosts, cfg.Epochs, cfg.Epoch)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	epochsPerDay := int(24 * time.Hour / tr.EpochLength())
	if epochsPerDay < 1 {
		epochsPerDay = 1
	}
	for h := 0; h < cfg.Hosts; h++ {
		target := clampAvail(pdf.Sample(rng))
		phase := rng.Float64() * 2 * math.Pi
		up := rng.Float64() < target
		for e := 0; e < cfg.Epochs; e++ {
			a := target
			if cfg.DiurnalAmplitude > 0 {
				dayFrac := float64(e%epochsPerDay) / float64(epochsPerDay)
				a = clampAvail(target + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*dayFrac+phase))
			}
			// Session length scales like a/(1−a): a host at availability
			// 0.5 averages MeanSessionEpochs per session, while a 0.99
			// host stays up for days at a time (matching the measured
			// correlation between availability and session length) and a
			// 0.1 host cycles with short sessions and long gaps.
			meanUp := cfg.MeanSessionEpochs * a / (1 - a)
			if meanUp < 1 {
				meanUp = 1
			}
			q := 1 / meanUp
			r := q * a / (1 - a)
			if r > 1 {
				r = 1
			}
			if up {
				tr.SetUp(h, e, true)
				if rng.Float64() < q {
					up = false
				}
			} else if rng.Float64() < r {
				up = true
			}
		}
	}
	return tr, nil
}

// clampAvail keeps availability targets strictly inside (0,1) so the
// Markov transition rates stay finite. The floor also mirrors reality:
// a host that never appears in a trace would not be in the population.
func clampAvail(a float64) float64 {
	const lo, hi = 0.02, 0.995
	if a < lo {
		return lo
	}
	if a > hi {
		return hi
	}
	return a
}
