package trace

import (
	"testing"
	"time"

	"avmem/internal/ids"
)

func mustNew(t *testing.T, hosts int, epochs int) *Trace {
	t.Helper()
	hs := make([]ids.NodeID, hosts)
	for i := range hs {
		hs[i] = ids.Synthetic(i)
	}
	tr, err := New(hs, epochs, DefaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 10, 0); err == nil {
		t.Error("want error for no hosts")
	}
	if _, err := New([]ids.NodeID{"a"}, 0, 0); err == nil {
		t.Error("want error for zero epochs")
	}
	if _, err := New([]ids.NodeID{"a", "a"}, 10, 0); err == nil {
		t.Error("want error for duplicate hosts")
	}
	if _, err := New([]ids.NodeID{""}, 10, 0); err == nil {
		t.Error("want error for nil host id")
	}
}

func TestDefaultEpochSelected(t *testing.T) {
	tr, err := New([]ids.NodeID{"a"}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EpochLength() != DefaultEpoch {
		t.Errorf("EpochLength = %v, want %v", tr.EpochLength(), DefaultEpoch)
	}
}

func TestSetUpAndUp(t *testing.T) {
	tr := mustNew(t, 3, 100)
	if tr.Up(1, 50) {
		t.Error("fresh trace should be offline")
	}
	tr.SetUp(1, 50, true)
	if !tr.Up(1, 50) {
		t.Error("Up after SetUp(true) = false")
	}
	if tr.Up(1, 49) || tr.Up(1, 51) || tr.Up(0, 50) || tr.Up(2, 50) {
		t.Error("SetUp leaked to neighboring cells")
	}
	tr.SetUp(1, 50, false)
	if tr.Up(1, 50) {
		t.Error("Up after SetUp(false) = true")
	}
}

func TestBitBoundaries(t *testing.T) {
	tr := mustNew(t, 2, 200)
	// Exercise word boundaries at 63/64/127/128.
	for _, e := range []int{0, 63, 64, 127, 128, 199} {
		tr.SetUp(1, e, true)
	}
	for _, e := range []int{0, 63, 64, 127, 128, 199} {
		if !tr.Up(1, e) {
			t.Errorf("epoch %d not set", e)
		}
	}
	if tr.Up(1, 1) || tr.Up(1, 62) || tr.Up(1, 65) || tr.Up(1, 129) {
		t.Error("unexpected epochs set")
	}
	if tr.Up(0, 63) {
		t.Error("host 0 contaminated")
	}
}

func TestBoundsPanic(t *testing.T) {
	tr := mustNew(t, 2, 10)
	for _, fn := range []func(){
		func() { tr.Up(-1, 0) },
		func() { tr.Up(2, 0) },
		func() { tr.Up(0, -1) },
		func() { tr.Up(0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestHostLookup(t *testing.T) {
	tr := mustNew(t, 5, 10)
	for h := 0; h < 5; h++ {
		id := tr.HostID(h)
		if tr.HostIndex(id) != h {
			t.Errorf("HostIndex(HostID(%d)) = %d", h, tr.HostIndex(id))
		}
	}
	if tr.HostIndex("unknown") != -1 {
		t.Error("HostIndex(unknown) != -1")
	}
	idsCopy := tr.HostIDs()
	if len(idsCopy) != 5 {
		t.Fatalf("HostIDs len = %d", len(idsCopy))
	}
	idsCopy[0] = "mutated"
	if tr.HostID(0) == "mutated" {
		t.Error("HostIDs returned internal slice")
	}
}

func TestEpochAt(t *testing.T) {
	tr := mustNew(t, 1, 10) // 10 epochs of 20 min
	tests := []struct {
		at   time.Duration
		want int
	}{
		{-time.Minute, 0},
		{0, 0},
		{19 * time.Minute, 0},
		{20 * time.Minute, 1},
		{199 * time.Minute, 9},
		{500 * time.Minute, 9}, // clamped
	}
	for _, tc := range tests {
		if got := tr.EpochAt(tc.at); got != tc.want {
			t.Errorf("EpochAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestUpAt(t *testing.T) {
	tr := mustNew(t, 1, 10)
	tr.SetUp(0, 3, true)
	if !tr.UpAt(0, 61*time.Minute) {
		t.Error("UpAt inside epoch 3 = false")
	}
	if tr.UpAt(0, 30*time.Minute) {
		t.Error("UpAt inside epoch 1 = true")
	}
}

func TestOnlineCountAndHosts(t *testing.T) {
	tr := mustNew(t, 4, 5)
	tr.SetUp(0, 2, true)
	tr.SetUp(3, 2, true)
	if got := tr.OnlineCount(2); got != 2 {
		t.Errorf("OnlineCount = %d, want 2", got)
	}
	hosts := tr.OnlineHosts(2)
	if len(hosts) != 2 || hosts[0] != 0 || hosts[1] != 3 {
		t.Errorf("OnlineHosts = %v, want [0 3]", hosts)
	}
	if got := tr.OnlineCount(0); got != 0 {
		t.Errorf("OnlineCount(0) = %d, want 0", got)
	}
}

func TestAvailability(t *testing.T) {
	tr := mustNew(t, 1, 10)
	for e := 0; e < 5; e++ {
		tr.SetUp(0, e, true)
	}
	if got := tr.Availability(0, 9); got != 0.5 {
		t.Errorf("Availability(0,9) = %v, want 0.5", got)
	}
	if got := tr.Availability(0, 4); got != 1.0 {
		t.Errorf("Availability(0,4) = %v, want 1", got)
	}
	if got := tr.Availability(0, 100); got != 0.5 {
		t.Errorf("Availability clamps upto: got %v", got)
	}
	if got := tr.Availability(0, -1); got != 0 {
		t.Errorf("Availability(upto<0) = %v, want 0", got)
	}
}

func TestWindowAvailability(t *testing.T) {
	tr := mustNew(t, 1, 10)
	tr.SetUp(0, 4, true)
	tr.SetUp(0, 5, true)
	if got := tr.WindowAvailability(0, 4, 5); got != 1.0 {
		t.Errorf("WindowAvailability(4,5) = %v, want 1", got)
	}
	if got := tr.WindowAvailability(0, 0, 9); got != 0.2 {
		t.Errorf("WindowAvailability(0,9) = %v, want 0.2", got)
	}
	if got := tr.WindowAvailability(0, 8, 2); got != 0 {
		t.Errorf("inverted window = %v, want 0", got)
	}
	if got := tr.WindowAvailability(0, -5, 100); got != 0.2 {
		t.Errorf("clamped window = %v, want 0.2", got)
	}
}

func TestAgedAvailability(t *testing.T) {
	tr := mustNew(t, 1, 10)
	// Host down for epochs 0..8, up at 9: aged availability must exceed
	// raw (0.1 raw; aged with alpha=0.5 gives 0.5).
	tr.SetUp(0, 9, true)
	raw := tr.Availability(0, 9)
	aged := tr.AgedAvailability(0, 9, 0.5)
	if aged <= raw {
		t.Errorf("aged = %v should exceed raw = %v for recent uptime", aged, raw)
	}
	if got := tr.AgedAvailability(0, 9, 0); got != 0 {
		t.Errorf("alpha=0 should yield 0, got %v", got)
	}
	if got := tr.AgedAvailability(0, 9, 1); got != 1 {
		t.Errorf("alpha=1 tracks the last observation, got %v", got)
	}
}

func TestAvailabilities(t *testing.T) {
	tr := mustNew(t, 3, 4)
	tr.SetUp(1, 0, true)
	tr.SetUp(1, 1, true)
	av := tr.Availabilities(3)
	if av[0] != 0 || av[1] != 0.5 || av[2] != 0 {
		t.Errorf("Availabilities = %v", av)
	}
}

func TestMeanOnline(t *testing.T) {
	tr := mustNew(t, 2, 4)
	tr.SetUp(0, 0, true)
	tr.SetUp(0, 1, true)
	tr.SetUp(1, 0, true)
	// online counts: 2,1,0,0 → mean 0.75
	if got := tr.MeanOnline(); got != 0.75 {
		t.Errorf("MeanOnline = %v, want 0.75", got)
	}
}

func TestDuration(t *testing.T) {
	tr := mustNew(t, 1, 504)
	if got := tr.Duration(); got != 7*24*time.Hour {
		t.Errorf("Duration = %v, want 168h", got)
	}
}

func TestSmoothedAvailability(t *testing.T) {
	tr := mustNew(t, 2, 10)
	for e := 0; e < 5; e++ {
		tr.SetUp(0, e, true)
	}
	// Host 0: 5/10 up → (5+1)/(10+2) = 0.5.
	if got := tr.SmoothedAvailability(0, 9); got != 0.5 {
		t.Errorf("SmoothedAvailability = %v, want 0.5", got)
	}
	// Host 1 always off: 1/12, never exactly 0.
	if got := tr.SmoothedAvailability(1, 9); got != 1.0/12.0 {
		t.Errorf("always-off smoothed = %v, want 1/12", got)
	}
	// No observations yet: uninformative prior.
	if got := tr.SmoothedAvailability(0, -1); got != 0.5 {
		t.Errorf("prior = %v, want 0.5", got)
	}
	// Clamps upto.
	if got := tr.SmoothedAvailability(0, 99); got != 0.5 {
		t.Errorf("clamped = %v, want 0.5", got)
	}
	// Early always-on host: (1+1)/(1+2) = 2/3, not 1.0.
	if got := tr.SmoothedAvailability(0, 0); got != 2.0/3.0 {
		t.Errorf("early smoothed = %v, want 2/3", got)
	}
}

func TestSmoothedAvailabilities(t *testing.T) {
	tr := mustNew(t, 3, 4)
	tr.SetUp(1, 0, true)
	tr.SetUp(1, 1, true)
	av := tr.SmoothedAvailabilities(3)
	if av[0] != 1.0/6.0 || av[1] != 0.5 || av[2] != 1.0/6.0 {
		t.Errorf("SmoothedAvailabilities = %v", av)
	}
}

func TestSessionStats(t *testing.T) {
	tr := mustNew(t, 2, 10)
	// Host 0: sessions [0,1], [4], [7,8,9] → 3 sessions, mean 2.
	for _, e := range []int{0, 1, 4, 7, 8, 9} {
		tr.SetUp(0, e, true)
	}
	sessions, mean := tr.SessionStats(0)
	if sessions != 3 || mean != 2 {
		t.Errorf("SessionStats = (%d, %v), want (3, 2)", sessions, mean)
	}
	// Host 1 never up.
	sessions, mean = tr.SessionStats(1)
	if sessions != 0 || mean != 0 {
		t.Errorf("empty SessionStats = (%d, %v)", sessions, mean)
	}
}
