package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig(9)
	cfg.Hosts = 40
	cfg.Epochs = 120
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hosts() != orig.Hosts() || got.Epochs() != orig.Epochs() {
		t.Fatalf("dimensions changed: %dx%d -> %dx%d",
			orig.Hosts(), orig.Epochs(), got.Hosts(), got.Epochs())
	}
	if got.EpochLength() != orig.EpochLength() {
		t.Errorf("epoch length changed: %v -> %v", orig.EpochLength(), got.EpochLength())
	}
	for h := 0; h < orig.Hosts(); h++ {
		if got.HostID(h) != orig.HostID(h) {
			t.Fatalf("host %d id changed: %q -> %q", h, orig.HostID(h), got.HostID(h))
		}
		for e := 0; e < orig.Epochs(); e++ {
			if got.Up(h, e) != orig.Up(h, e) {
				t.Fatalf("bit changed at host %d epoch %d", h, e)
			}
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := `# avmem-trace v1
# a comment

hosts 2 epochs 3 epoch_seconds 1200
# another comment
a:1 010
b:2 111
`
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hosts() != 2 || tr.Epochs() != 3 {
		t.Fatalf("dimensions = %dx%d", tr.Hosts(), tr.Epochs())
	}
	if tr.Up(0, 0) || !tr.Up(0, 1) || tr.Up(0, 2) {
		t.Error("host a bits wrong")
	}
	if !tr.Up(1, 0) || !tr.Up(1, 1) || !tr.Up(1, 2) {
		t.Error("host b bits wrong")
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "not a trace\n"},
		{"bad dims", "# avmem-trace v1\nhosts x epochs 3 epoch_seconds 1200\n"},
		{"negative dims", "# avmem-trace v1\nhosts -1 epochs 3 epoch_seconds 1200\n"},
		{"missing rows", "# avmem-trace v1\nhosts 2 epochs 3 epoch_seconds 1200\na:1 010\n"},
		{"row wrong length", "# avmem-trace v1\nhosts 1 epochs 3 epoch_seconds 1200\na:1 01\n"},
		{"bad bit", "# avmem-trace v1\nhosts 1 epochs 3 epoch_seconds 1200\na:1 01x\n"},
		{"no space", "# avmem-trace v1\nhosts 1 epochs 3 epoch_seconds 1200\nnospacebits\n"},
		{"dup host", "# avmem-trace v1\nhosts 2 epochs 1 epoch_seconds 1200\na:1 0\na:1 1\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.input)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestWriteFormat(t *testing.T) {
	tr := mustNew(t, 1, 3)
	tr.SetUp(0, 1, true)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, codecHeader+"\n") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "hosts 1 epochs 3 epoch_seconds 1200") {
		t.Errorf("missing dimension line:\n%s", out)
	}
	if !strings.Contains(out, " 010") {
		t.Errorf("missing bit row:\n%s", out)
	}
}
