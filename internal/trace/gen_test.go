package trace

import (
	"math"
	"testing"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	base := DefaultGenConfig(1)
	tests := []struct {
		name   string
		mutate func(*GenConfig)
	}{
		{"zero hosts", func(c *GenConfig) { c.Hosts = 0 }},
		{"zero epochs", func(c *GenConfig) { c.Epochs = 0 }},
		{"short sessions", func(c *GenConfig) { c.MeanSessionEpochs = 0.5 }},
		{"negative diurnal", func(c *GenConfig) { c.DiurnalAmplitude = -0.1 }},
		{"huge diurnal", func(c *GenConfig) { c.DiurnalAmplitude = 0.9 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(42)
	cfg.Hosts = 50
	cfg.Epochs = 100
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < cfg.Hosts; h++ {
		for e := 0; e < cfg.Epochs; e++ {
			if a.Up(h, e) != b.Up(h, e) {
				t.Fatalf("traces differ at host %d epoch %d", h, e)
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for h := 0; h < cfg.Hosts && same; h++ {
		for e := 0; e < cfg.Epochs; e++ {
			if a.Up(h, e) != c.Up(h, e) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateDimensions(t *testing.T) {
	cfg := DefaultGenConfig(7)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hosts() != OvernetHosts {
		t.Errorf("Hosts = %d, want %d", tr.Hosts(), OvernetHosts)
	}
	if tr.Epochs() != OvernetEpochs {
		t.Errorf("Epochs = %d, want %d", tr.Epochs(), OvernetEpochs)
	}
	if tr.Duration() != 7*24*time.Hour {
		t.Errorf("Duration = %v, want 168h", tr.Duration())
	}
}

// TestGenerateMatchesOvernetStatistics is the substitution check
// behind the default fleet (DESIGN.md §8): the synthetic trace must
// reproduce the published Overnet availability statistics the
// experiments depend on.
func TestGenerateMatchesOvernetStatistics(t *testing.T) {
	tr, err := Generate(DefaultGenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	av := tr.Availabilities(tr.Epochs() - 1)

	// ~50% of hosts below 0.3 availability (paper: "50% of hosts have a
	// 10-day availability lower than 30%").
	below := stats.FractionBelow(av, 0.3)
	if below < 0.38 || below > 0.62 {
		t.Errorf("fraction below 0.3 = %v, want ≈0.5", below)
	}

	// Skew: far more hosts in the low band than the mid band.
	var lo, mid, hi int
	for _, a := range av {
		switch {
		case a < 1.0/3:
			lo++
		case a < 2.0/3:
			mid++
		default:
			hi++
		}
	}
	if lo <= mid {
		t.Errorf("distribution not skewed low: lo=%d mid=%d hi=%d", lo, mid, hi)
	}
	if hi == 0 {
		t.Error("no high-availability cohort")
	}

	// A meaningful fraction of the population is online at any time; the
	// paper's 24h snapshot has 442/1442 ≈ 0.31 online.
	frac := tr.MeanOnline() / float64(tr.Hosts())
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("mean online fraction = %v, want ≈0.3", frac)
	}
}

func TestGenerateTracksTargetPDF(t *testing.T) {
	cfg := DefaultGenConfig(3)
	cfg.Hosts = 600
	cfg.Epochs = 504
	cfg.DiurnalAmplitude = 0
	cfg.PDF = avdist.Uniform(100)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	av := tr.Availabilities(tr.Epochs() - 1)
	// Mean of a uniform draw is 0.5; Markov noise over 504 epochs is small.
	if m := stats.Mean(av); math.Abs(m-0.5) > 0.06 {
		t.Errorf("mean availability = %v, want ≈0.5", m)
	}
}

func TestGenerateChurnIsEpochScale(t *testing.T) {
	// Hosts must actually churn: the number of distinct up/down
	// transitions should be substantial, not a single session.
	cfg := DefaultGenConfig(5)
	cfg.Hosts = 100
	cfg.Epochs = 504
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalTransitions := 0
	for h := 0; h < tr.Hosts(); h++ {
		for e := 1; e < tr.Epochs(); e++ {
			if tr.Up(h, e) != tr.Up(h, e-1) {
				totalTransitions++
			}
		}
	}
	perHost := float64(totalTransitions) / float64(tr.Hosts())
	if perHost < 4 {
		t.Errorf("mean transitions per host over 7 days = %v, want >= 4", perHost)
	}
}

func TestGenerateSessionLengthGrowsWithAvailability(t *testing.T) {
	cfg := DefaultGenConfig(11)
	cfg.Hosts = 400
	cfg.DiurnalAmplitude = 0
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var loSessions, loUp, hiSessions, hiUp float64
	for h := 0; h < tr.Hosts(); h++ {
		a := tr.Availability(h, tr.Epochs()-1)
		sessions, upEpochs := 0, 0
		inSession := false
		for e := 0; e < tr.Epochs(); e++ {
			if tr.Up(h, e) {
				upEpochs++
				if !inSession {
					sessions++
					inSession = true
				}
			} else {
				inSession = false
			}
		}
		if sessions == 0 {
			continue
		}
		if a < 0.3 {
			loSessions += float64(sessions)
			loUp += float64(upEpochs)
		} else if a > 0.7 {
			hiSessions += float64(sessions)
			hiUp += float64(upEpochs)
		}
	}
	if loSessions == 0 || hiSessions == 0 {
		t.Skip("not enough hosts in either band")
	}
	loMean := loUp / loSessions
	hiMean := hiUp / hiSessions
	if hiMean <= loMean {
		t.Errorf("high-availability sessions (%v epochs) not longer than low (%v)", hiMean, loMean)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultGenConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
