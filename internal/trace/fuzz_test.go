package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead throws arbitrary bytes at the avmem-trace text parser: it
// must never panic or allocate proportionally to untrusted header
// claims, and everything it accepts must survive a Write/Read
// round-trip bit-for-bit.
func FuzzRead(f *testing.F) {
	f.Add([]byte("# avmem-trace v1\nhosts 2 epochs 3 epoch_seconds 60\nn0 010\nn1 111\n"))
	f.Add([]byte("# avmem-trace v1\nhosts 1 epochs 1 epoch_seconds 1200\n# comment\na:1 1\n"))
	f.Add([]byte("# avmem-trace v1\nhosts 999999999 epochs 504 epoch_seconds 1200\n"))
	f.Add([]byte("hosts 2 epochs 3 epoch_seconds 60\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized trace failed to reparse: %v", err)
		}
		if back.Hosts() != tr.Hosts() || back.Epochs() != tr.Epochs() || back.EpochLength() != tr.EpochLength() {
			t.Fatalf("round-trip changed dimensions: %d/%d/%v vs %d/%d/%v",
				tr.Hosts(), tr.Epochs(), tr.EpochLength(), back.Hosts(), back.Epochs(), back.EpochLength())
		}
		for h := 0; h < tr.Hosts(); h++ {
			if back.HostID(h) != tr.HostID(h) {
				t.Fatalf("round-trip changed host %d id: %q vs %q", h, tr.HostID(h), back.HostID(h))
			}
			for e := 0; e < tr.Epochs(); e++ {
				if back.Up(h, e) != tr.Up(h, e) {
					t.Fatalf("round-trip flipped host %d epoch %d", h, e)
				}
			}
		}
	})
}

// TestReadCapsHeaderPrealloc pins the untrusted-header fix: a file
// claiming a huge host count but carrying no rows must fail fast with
// a parse error instead of allocating gigabytes up front (found while
// seeding the FuzzRead corpus).
func TestReadCapsHeaderPrealloc(t *testing.T) {
	in := "# avmem-trace v1\nhosts 999999999 epochs 504 epoch_seconds 1200\nn0 1\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("trace with a bogus host count parsed")
	}
}
