// Package agg implements in-overlay partial aggregation — the third
// management-operation family next to anycast and multicast (DESIGN.md
// §13). An aggregation operation computes count/sum/min/max/avg of a
// node-local value over every node whose availability lies in a
// half-open band, without any central collection point: the request
// disseminates through the availability-filtered sliver lists, forming
// an implicit spanning tree (each node's parent is the peer it first
// heard the request from), and partial aggregates flow back up the tree
// with per-hop combining, so no node ever sees more than its children's
// partials.
//
// The package is transport-agnostic: Partial is the pure combining
// algebra, and Station is the per-node state machine — duplicate
// suppression by operation id, child-partial absorption, and
// convergence detection (a pending aggregation finalizes as soon as
// every forwarded-to child is accounted for by a partial, a decline, or
// a delivery failure, with a depth-staggered wave deadline as the hard
// backstop for children lost mid-operation). ops.Router owns a Station
// and binds it to the wire messages; internal/exp supplies ground truth
// and accuracy accounting.
package agg

import (
	"fmt"
	"math"
	"time"
)

// Op selects the aggregate an operation computes.
type Op int

// Aggregation operators.
const (
	// Count counts the contributing nodes.
	Count Op = iota + 1
	// Sum adds the node-local values.
	Sum
	// Min takes the smallest node-local value.
	Min
	// Max takes the largest node-local value.
	Max
	// Avg divides Sum by Count.
	Avg
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Validate checks the operator is known.
func (o Op) Validate() error {
	switch o {
	case Count, Sum, Min, Max, Avg:
		return nil
	default:
		return fmt.Errorf("agg: invalid op %v", o)
	}
}

// Partial is a combinable partial aggregate. It carries every moment
// the supported operators need, so one wire struct serves all five and
// merging is associative and commutative — the order children report
// in cannot change the result (Sum up to floating-point rounding; the
// discrete moments exactly). Within one engine run the report order is
// itself deterministic, so scenario results stay bit-reproducible.
type Partial struct {
	// N counts contributing nodes.
	N int
	// Sum, Min, Max fold the contributed values (Min/Max are only
	// meaningful when N > 0).
	Sum float64
	Min float64
	Max float64
	// Depth is the maximum tree depth over all contributors — the
	// operation's hop radius, reported for the agg_mean_hops metric.
	Depth int
}

// Observe folds one node-local value contributed at the given tree
// depth into the partial.
func (p *Partial) Observe(v float64, depth int) {
	if p.N == 0 || v < p.Min {
		p.Min = v
	}
	if p.N == 0 || v > p.Max {
		p.Max = v
	}
	p.N++
	p.Sum += v
	if depth > p.Depth {
		p.Depth = depth
	}
}

// Merge folds a child partial into this one.
func (p *Partial) Merge(q Partial) {
	if q.N == 0 {
		return
	}
	if p.N == 0 || q.Min < p.Min {
		p.Min = q.Min
	}
	if p.N == 0 || q.Max > p.Max {
		p.Max = q.Max
	}
	p.N += q.N
	p.Sum += q.Sum
	if q.Depth > p.Depth {
		p.Depth = q.Depth
	}
}

// Value extracts the aggregate for op. An empty partial (no
// contributors) yields NaN for the value operators and 0 for Count.
func (p Partial) Value(op Op) float64 {
	switch op {
	case Count:
		return float64(p.N)
	case Sum:
		return p.Sum
	case Min:
		if p.N == 0 {
			return math.NaN()
		}
		return p.Min
	case Max:
		if p.N == 0 {
			return math.NaN()
		}
		return p.Max
	case Avg:
		if p.N == 0 {
			return math.NaN()
		}
		return p.Sum / float64(p.N)
	default:
		return math.NaN()
	}
}

// Params tunes the aggregation wave timing. The zero value takes the
// defaults.
type Params struct {
	// Wave is the per-level hold quantum of the deadline backstop: a
	// node at depth d finalizes no later than Wave×(MaxDepth−d+1) after
	// it joined the tree, so children (deeper, hence shorter budgets)
	// hit their deadlines before their parents do. Default 1s —
	// comfortably above the per-hop latency model, so a child's partial
	// beats its parent's deadline even on the slowest link.
	Wave time.Duration
	// MaxDepth bounds the dissemination tree; nodes at MaxDepth stop
	// forwarding (default 8, ≈ overlay diameter at paper scale).
	MaxDepth int
}

// withDefaults resolves zero fields.
func (p Params) withDefaults() Params {
	if p.Wave == 0 {
		p.Wave = time.Second
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 8
	}
	return p
}

// Validate rejects nonsensical timing.
func (p Params) Validate() error {
	if p.Wave < 0 || p.MaxDepth < 0 {
		return fmt.Errorf("agg: negative params %+v", p)
	}
	return nil
}

// maxDone bounds the finished-operation suppression set; like the
// router's seen set, aggregations are short-lived so a full reset on
// overflow is harmless.
const maxDone = 1 << 14

// pending is one in-flight aggregation at this node.
type pending struct {
	acc      Partial
	finalize func(Partial)
	// outstanding counts forwarded-to children not yet accounted for;
	// expected flips once Expect ran, so an aggregation cannot converge
	// before the caller even forwarded the request.
	outstanding int
	expected    bool
	// waves counts deadline ticks so far; deadline is the tick budget
	// (depth-staggered hard stop for children lost mid-operation).
	waves    int
	deadline int
}

// Station is the per-node aggregation state machine. It owns no wire
// format and no locks: the caller (ops.Router under the simulator's
// single thread, or node.Node under its gate) serializes access and
// supplies the clockwork through After.
type Station[K comparable] struct {
	params Params
	after  func(d time.Duration, fn func())

	open map[K]*pending
	done map[K]bool
}

// NewStation builds a Station; after schedules the deadline waves (the
// host Env's timer).
func NewStation[K comparable](params Params, after func(d time.Duration, fn func())) (*Station[K], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if after == nil {
		return nil, fmt.Errorf("agg: after scheduler is required")
	}
	// open/done are allocated lazily: most stations in a large world
	// never participate in an aggregation.
	return &Station[K]{
		params: params.withDefaults(),
		after:  after,
	}, nil
}

// Params returns the station's resolved timing parameters.
func (s *Station[K]) Params() Params { return s.params }

// Seen reports whether the station already holds (or held) operation
// id — the duplicate-suppression test a receiver consults before
// joining the tree (a duplicate receiver declines instead).
func (s *Station[K]) Seen(id K) bool {
	if s.done[id] {
		return true
	}
	_, ok := s.open[id]
	return ok
}

// Open starts a pending aggregation for id at the given tree depth.
// When contribute is true, local is folded in as this node's own value
// (an out-of-band tree root relays without contributing). finalize is
// called exactly once — at convergence or the deadline — with the
// combined partial; the caller sends it to the parent, or to the
// origin at the tree root. Open returns false for a duplicate id, in
// which case nothing was started and the caller must decline rather
// than forward again.
func (s *Station[K]) Open(id K, depth int, local float64, contribute bool, finalize func(Partial)) bool {
	if s.Seen(id) {
		return false
	}
	levels := s.params.MaxDepth - depth
	if levels < 0 {
		levels = 0
	}
	p := &pending{finalize: finalize, deadline: levels + 1}
	if contribute {
		p.acc.Observe(local, depth)
	}
	if s.open == nil {
		s.open = make(map[K]*pending, 8)
	}
	s.open[id] = p
	s.tick(id, p)
	return true
}

// Expect records how many children the caller forwarded the request
// to, arming convergence detection: once every child is accounted for
// by Absorb or Decline, the aggregation finalizes without waiting for
// the deadline. A leaf (children == 0) finalizes immediately. The
// count is added, not assigned, so a delivery failure that nacked
// synchronously during forwarding (before Expect ran) stays accounted.
func (s *Station[K]) Expect(id K, children int) {
	p, ok := s.open[id]
	if !ok || p.expected {
		return
	}
	p.expected = true
	p.outstanding += children
	s.maybeConverge(id, p)
}

// Absorb folds a child partial into a pending aggregation and marks
// one child accounted for. Partials for unknown or finished operations
// are dropped — late stragglers after the deadline, or duplicates
// after an overflow reset.
func (s *Station[K]) Absorb(id K, q Partial) {
	p, ok := s.open[id]
	if !ok {
		return
	}
	p.acc.Merge(q)
	p.outstanding--
	s.maybeConverge(id, p)
}

// Decline marks one child accounted for without a contribution: the
// child was already in the tree through another parent, lies outside
// the band, or was unreachable (the forwarding SendCall nacked).
func (s *Station[K]) Decline(id K) {
	p, ok := s.open[id]
	if !ok {
		return
	}
	p.outstanding--
	s.maybeConverge(id, p)
}

// Pending returns the number of in-flight aggregations (tests and
// debugging).
func (s *Station[K]) Pending() int { return len(s.open) }

// maybeConverge finalizes once every forwarded-to child is accounted
// for.
func (s *Station[K]) maybeConverge(id K, p *pending) {
	if !p.expected || p.outstanding > 0 {
		return
	}
	s.conclude(id, p)
}

// conclude retires the aggregation and reports its combined partial.
func (s *Station[K]) conclude(id K, p *pending) {
	delete(s.open, id)
	if s.done == nil || len(s.done) >= maxDone {
		s.done = make(map[K]bool, 64)
	}
	s.done[id] = true
	p.finalize(p.acc)
}

// tick arms the next deadline wave for id.
func (s *Station[K]) tick(id K, p *pending) {
	s.after(s.params.Wave, func() {
		cur, ok := s.open[id]
		if !ok || cur != p {
			return
		}
		p.waves++
		if p.waves >= p.deadline {
			s.conclude(id, p)
			return
		}
		s.tick(id, p)
	})
}
