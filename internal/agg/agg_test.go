package agg

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a minimal deterministic scheduler: After queues, Fire
// runs everything due at the next timestamp.
type fakeClock struct {
	now    time.Duration
	queue  []timer
	serial int
}

type timer struct {
	at     time.Duration
	serial int
	fn     func()
}

func (c *fakeClock) After(d time.Duration, fn func()) {
	c.serial++
	c.queue = append(c.queue, timer{at: c.now + d, serial: c.serial, fn: fn})
}

// advance runs all timers due within d, in (at, serial) order.
func (c *fakeClock) advance(d time.Duration) {
	end := c.now + d
	for {
		best := -1
		for i, t := range c.queue {
			if t.at > end {
				continue
			}
			if best < 0 || t.at < c.queue[best].at ||
				(t.at == c.queue[best].at && t.serial < c.queue[best].serial) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		t := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		c.now = t.at
		t.fn()
	}
	c.now = end
}

func TestPartialObserveAndValue(t *testing.T) {
	var p Partial
	for op, want := range map[Op]float64{Sum: 0, Count: 0} {
		if got := p.Value(op); got != want {
			t.Errorf("empty %v = %v, want %v", op, got, want)
		}
	}
	for _, op := range []Op{Min, Max, Avg} {
		if got := p.Value(op); !math.IsNaN(got) {
			t.Errorf("empty %v = %v, want NaN", op, got)
		}
	}
	p.Observe(0.5, 0)
	p.Observe(0.2, 1)
	p.Observe(0.8, 2)
	cases := map[Op]float64{Count: 3, Sum: 1.5, Min: 0.2, Max: 0.8, Avg: 0.5}
	for op, want := range cases {
		if got := p.Value(op); math.Abs(got-want) > 1e-12 {
			t.Errorf("%v = %v, want %v", op, got, want)
		}
	}
	if p.Depth != 2 {
		t.Errorf("Depth = %d, want 2", p.Depth)
	}
}

// TestPartialMergeOrderIndependent is the algebra contract: merging in
// any order yields the same combined partial, so tree shape cannot
// change the result.
func TestPartialMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts := make([]Partial, 8)
	for i := range parts {
		for j := 0; j < rng.Intn(4); j++ {
			parts[i].Observe(rng.Float64(), rng.Intn(5))
		}
	}
	var ref Partial
	for _, q := range parts {
		ref.Merge(q)
	}
	for trial := 0; trial < 20; trial++ {
		var got Partial
		for _, i := range rng.Perm(len(parts)) {
			got.Merge(parts[i])
		}
		// Sum is order-independent only up to floating-point rounding;
		// the discrete moments must match exactly.
		if got.N != ref.N || got.Min != ref.Min || got.Max != ref.Max || got.Depth != ref.Depth {
			t.Fatalf("merge order changed the result: %+v vs %+v", got, ref)
		}
		if math.Abs(got.Sum-ref.Sum) > 1e-9 {
			t.Fatalf("merge order moved Sum beyond rounding: %v vs %v", got.Sum, ref.Sum)
		}
	}
}

func TestPartialMergeEmpty(t *testing.T) {
	var p, q Partial
	p.Observe(0.4, 1)
	before := p
	p.Merge(q) // empty right operand
	if p != before {
		t.Errorf("merging empty changed %+v to %+v", before, p)
	}
	q.Merge(before) // empty left operand
	if q != before {
		t.Errorf("merge into empty = %+v, want %+v", q, before)
	}
}

func TestOpValidateAndString(t *testing.T) {
	for _, op := range []Op{Count, Sum, Min, Max, Avg} {
		if err := op.Validate(); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
	if err := Op(0).Validate(); err == nil {
		t.Error("want error for zero op")
	}
	if Count.String() != "count" || Avg.String() != "avg" {
		t.Errorf("unexpected strings %q %q", Count, Avg)
	}
}

func newTestStation(t *testing.T, clk *fakeClock) *Station[int] {
	t.Helper()
	s, err := NewStation[int](Params{Wave: time.Second, MaxDepth: 4}, clk.After)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStationConvergesOnAccounting: once every forwarded-to child is
// accounted for (partial or decline), the aggregation finalizes
// without waiting for the wave deadline.
func TestStationConvergesOnAccounting(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	var got *Partial
	if !s.Open(1, 0, 0.5, true, func(p Partial) { got = &p }) {
		t.Fatal("Open returned false for a fresh id")
	}
	s.Expect(1, 2)
	var child Partial
	child.Observe(0.7, 1)
	s.Absorb(1, child)
	if got != nil {
		t.Fatal("finalized before all children accounted")
	}
	s.Decline(1)
	if got == nil {
		t.Fatal("did not finalize once all children accounted")
	}
	if got.N != 2 || math.Abs(got.Sum-1.2) > 1e-12 {
		t.Errorf("combined = %+v, want N=2 Sum=1.2", *got)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after convergence", s.Pending())
	}
}

// TestStationLeafFinalizesImmediately: a node with no in-band
// neighbors reports its own value without any wave delay.
func TestStationLeafFinalizesImmediately(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	var got *Partial
	s.Open(7, 3, 0.9, true, func(p Partial) { got = &p })
	s.Expect(7, 0)
	if got == nil {
		t.Fatal("leaf did not finalize on Expect")
	}
	if got.N != 1 || got.Depth != 3 {
		t.Errorf("leaf partial = %+v", *got)
	}
}

// TestStationDeadlineBackstop: a child that never answers (crashed
// after delivery) cannot hold the aggregation open past the
// depth-staggered deadline.
func TestStationDeadlineBackstop(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	var got *Partial
	s.Open(1, 0, 0.5, true, func(p Partial) { got = &p })
	s.Expect(1, 1) // the child never responds
	// Depth 0 with MaxDepth 4 → deadline 5 waves.
	clk.advance(4 * time.Second)
	if got != nil {
		t.Fatal("finalized before the deadline")
	}
	clk.advance(time.Second)
	if got == nil {
		t.Fatal("deadline did not fire")
	}
	if got.N != 1 {
		t.Errorf("partial = %+v, want own value only", *got)
	}
	// A straggler partial after the deadline is dropped silently.
	var late Partial
	late.Observe(0.9, 1)
	s.Absorb(1, late)
	if got.N != 1 {
		t.Error("straggler mutated a finalized result")
	}
}

// TestStationDeeperNodesHaveShorterDeadlines pins the stagger: a
// deeper node's deadline fires before its parent's, so the partial
// still climbs the whole tree even when accounting never converges.
func TestStationDeeperNodesHaveShorterDeadlines(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	var order []int
	s.Open(1, 0, 0.1, true, func(Partial) { order = append(order, 0) })
	s.Expect(1, 1)
	s.Open(2, 3, 0.2, true, func(Partial) { order = append(order, 3) })
	s.Expect(2, 1)
	clk.advance(10 * time.Second)
	if len(order) != 2 || order[0] != 3 || order[1] != 0 {
		t.Fatalf("finalize order = %v, want deeper (3) before root (0)", order)
	}
}

// TestStationDuplicateSuppression: an id can be opened once; later
// opens — even after completion — report duplicate.
func TestStationDuplicateSuppression(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	s.Open(1, 0, 0.5, true, func(Partial) {})
	if s.Open(1, 1, 0.6, true, func(Partial) {}) {
		t.Error("reopened an in-flight id")
	}
	if !s.Seen(1) {
		t.Error("open id not seen")
	}
	s.Expect(1, 0) // finalize
	if s.Open(1, 1, 0.6, true, func(Partial) {}) {
		t.Error("reopened a finished id")
	}
	if !s.Seen(1) {
		t.Error("finished id not seen")
	}
}

// TestStationNonContributingRoot: an out-of-band relay root combines
// children without adding its own value.
func TestStationNonContributingRoot(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	var got *Partial
	s.Open(1, 0, 0.95, false, func(p Partial) { got = &p })
	s.Expect(1, 1)
	var child Partial
	child.Observe(0.3, 1)
	s.Absorb(1, child)
	if got == nil {
		t.Fatal("did not finalize")
	}
	if got.N != 1 || got.Sum != 0.3 {
		t.Errorf("relay root contributed its own value: %+v", *got)
	}
}

// TestStationDoneSetBounded: the suppression set resets rather than
// growing without bound.
func TestStationDoneSetBounded(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	for i := 0; i < maxDone+10; i++ {
		s.Open(i, 0, 0.5, true, func(Partial) {})
		s.Expect(i, 0)
	}
	if len(s.done) > maxDone {
		t.Errorf("done set grew to %d (bound %d)", len(s.done), maxDone)
	}
}

func TestNewStationValidation(t *testing.T) {
	clk := &fakeClock{}
	if _, err := NewStation[int](Params{Wave: -1}, clk.After); err == nil {
		t.Error("want error for negative wave")
	}
	if _, err := NewStation[int](Params{}, nil); err == nil {
		t.Error("want error for nil scheduler")
	}
	s, err := NewStation[int](Params{}, clk.After)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Params(); p.Wave != time.Second || p.MaxDepth != 8 {
		t.Errorf("defaults = %+v", p)
	}
}

// TestStationBeyondMaxDepthBackstop pins the depth clamp: a node that
// joins deeper than MaxDepth (a tree that outgrew the bound through
// relaying) still gets the one-wave minimum deadline instead of a zero
// or negative budget, so its partial always climbs out.
func TestStationBeyondMaxDepthBackstop(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk) // MaxDepth 4
	var got *Partial
	s.Open(1, 7, 0.5, true, func(p Partial) { got = &p })
	s.Expect(1, 1) // the child never responds
	clk.advance(999 * time.Millisecond)
	if got != nil {
		t.Fatal("finalized before the one-wave backstop")
	}
	clk.advance(time.Millisecond)
	if got == nil {
		t.Fatal("one-wave backstop did not fire at depth > MaxDepth")
	}
	if got.N != 1 || got.Depth != 7 {
		t.Errorf("partial = %+v, want own value at depth 7", *got)
	}
}

// TestStationLateChildAfterConvergenceIgnored: a duplicate or late
// child reply after accounting already converged must neither refire
// finalize nor double-count — the id is retired, not pending.
func TestStationLateChildAfterConvergenceIgnored(t *testing.T) {
	clk := &fakeClock{}
	s := newTestStation(t, clk)
	fired := 0
	var got Partial
	s.Open(1, 0, 0.5, true, func(p Partial) { fired++; got = p })
	s.Expect(1, 2)
	var child Partial
	child.Observe(0.3, 1)
	s.Absorb(1, child)
	s.Decline(1)
	if fired != 1 {
		t.Fatalf("finalize fired %d times after convergence, want 1", fired)
	}
	if got.N != 2 {
		t.Fatalf("partial = %+v, want 2 contributions", got)
	}
	// The same child replaying its partial — and a stale deadline wave —
	// must leave the concluded result alone.
	s.Absorb(1, child)
	s.Decline(1)
	clk.advance(10 * time.Second)
	if fired != 1 {
		t.Errorf("finalize refired (%d) on late replies", fired)
	}
	if !s.Seen(1) {
		t.Error("concluded id no longer marked seen")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}
