// Package core implements AVMEM itself: the random-and-consistent
// membership predicate framework of equation (1),
//
//	M(x,y) = 1  iff  H(id(x), id(y)) <= f(av(x), av(y)),
//
// the family of horizontal- and vertical-sliver sub-predicates from
// paper §2.1, and the Discovery/Refresh membership-maintenance
// sub-protocols from §3.1 with cached availabilities and cushioned
// in-neighbor verification (§4.1).
//
// Architecture: DESIGN.md §3 (membership core: allocation-lean sliver
// indexes).
package core

import (
	"fmt"
	"math"
	"sync"

	"avmem/internal/avdist"
	"avmem/internal/ids"
)

// NodeInfo pairs a node identifier with its (believed) availability.
// Which party's belief it is depends on context: predicates are always
// evaluated against some party's cached view of availabilities.
type NodeInfo struct {
	ID           ids.NodeID
	Availability float64
}

// Sliver distinguishes the two AVMEM membership lists.
type Sliver int

// Sliver kinds. SliverNone classifies the self-pair (x,x), which is
// never a membership relation.
const (
	SliverNone Sliver = iota
	SliverHorizontal
	SliverVertical
)

// String implements fmt.Stringer.
func (s Sliver) String() string {
	switch s {
	case SliverHorizontal:
		return "HS"
	case SliverVertical:
		return "VS"
	default:
		return "none"
	}
}

// SubPredicate computes the probability threshold f for one sliver
// kind. Implementations must be pure functions of the two
// availabilities (plus construction-time parameters such as the PDF and
// N*): that purity is what makes the overall predicate consistent and
// third-party verifiable.
type SubPredicate interface {
	// Threshold returns f(avX, avY) in [0,1].
	Threshold(avX, avY float64) float64
	// Name identifies the sub-predicate in reports and logs.
	Name() string
}

// Predicate is a full AVMEM predicate: an ε-band that splits pairs into
// horizontal and vertical candidates, plus one sub-predicate for each.
type Predicate struct {
	// Epsilon is the horizontal-sliver half width; pairs with
	// |av(x) − av(y)| < Epsilon are horizontal candidates (paper: 0.1).
	Epsilon float64
	// Horizontal and Vertical are the sliver sub-predicates.
	Horizontal SubPredicate
	Vertical   SubPredicate
}

// NewPredicate validates and builds a Predicate.
func NewPredicate(epsilon float64, horizontal, vertical SubPredicate) (*Predicate, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon must be in (0,1], got %v", epsilon)
	}
	if horizontal == nil || vertical == nil {
		return nil, fmt.Errorf("core: both sub-predicates are required")
	}
	return &Predicate{Epsilon: epsilon, Horizontal: horizontal, Vertical: vertical}, nil
}

// Classify reports which sliver the pair (x,y) would belong to, based
// on availabilities alone.
func (p *Predicate) Classify(avX, avY float64) Sliver {
	if math.Abs(avX-avY) < p.Epsilon {
		return SliverHorizontal
	}
	return SliverVertical
}

// Threshold returns f(av(x), av(y)) — the right-hand side of eq. (1).
func (p *Predicate) Threshold(avX, avY float64) float64 {
	if p.Classify(avX, avY) == SliverHorizontal {
		return ids.Clamp01(p.Horizontal.Threshold(avX, avY))
	}
	return ids.Clamp01(p.Vertical.Threshold(avX, avY))
}

// Eval decides M(x,y) from the pair hash and both availabilities.
// cushion adds slack to f (paper §4.1): verification with a positive
// cushion tolerates modest disagreement about availabilities between
// the evaluating parties. Pass cushion 0 for the canonical predicate.
func (p *Predicate) Eval(hash, avX, avY, cushion float64) (bool, Sliver) {
	kind := p.Classify(avX, avY)
	thr := ids.Clamp01(p.Threshold(avX, avY) + cushion)
	return hash <= thr, kind
}

// EvalNodes is Eval with the hash computed from the pair of node infos.
func (p *Predicate) EvalNodes(x, y NodeInfo, cushion float64, cache *ids.HashCache) (bool, Sliver) {
	if x.ID == y.ID {
		return false, SliverNone
	}
	var h float64
	if cache != nil {
		h = cache.Pair(x.ID, y.ID)
	} else {
		h = ids.PairHash(x.ID, y.ID)
	}
	return p.Eval(h, x.Availability, y.Availability, cushion)
}

// logFloor guards log() against degenerate counts: expected-node counts
// below 2 would give zero or negative logarithms.
func logFloor(n float64) float64 {
	if n < 2 {
		n = 2
	}
	return math.Log(n)
}

// ConstantVertical is sub-predicate I.A: an availability-independent
// vertical threshold sized to give D1 = c·log(N*) expected vertical
// neighbors, i.e. f = min(D1/N*, 1). Best suited to uniform
// availability PDFs (paper discussion).
type ConstantVertical struct {
	// D1 is the target expected vertical-sliver size, O(log N*).
	D1 float64
	// NStar is the stable system size.
	NStar float64
}

var _ SubPredicate = ConstantVertical{}

// Threshold implements SubPredicate.
func (c ConstantVertical) Threshold(_, _ float64) float64 {
	if c.NStar <= 0 {
		return 1
	}
	return ids.Clamp01(c.D1 / c.NStar)
}

// Name implements SubPredicate.
func (c ConstantVertical) Name() string { return "constant-vertical(I.A)" }

// LogVertical is sub-predicate I.B, the paper's canonical vertical
// sliver: f = min(c1·log(N*) / (N*·p(av(y))), 1). Theorem 1 proves it
// covers the availability space uniformly: the expected number of
// vertical neighbors in any fixed-width availability interval is
// independent of where the interval lies.
type LogVertical struct {
	C1    float64
	NStar float64
	PDF   *avdist.PDF
}

var _ SubPredicate = LogVertical{}

// Threshold implements SubPredicate.
func (l LogVertical) Threshold(_, avY float64) float64 {
	if l.NStar <= 0 || l.PDF == nil {
		return 1
	}
	density := l.PDF.Density(avY)
	if density <= 0 {
		// No population mass at av(y): accept such (rare) nodes freely;
		// they cannot inflate anyone's sliver because there are
		// essentially none of them.
		return 1
	}
	return ids.Clamp01(l.C1 * logFloor(l.NStar) / (l.NStar * density))
}

// Name implements SubPredicate.
func (l LogVertical) Name() string { return "logarithmic-vertical(I.B)" }

// LogDecreasingVertical is sub-predicate I.C: like I.B but the density
// of selected neighbors decays with availability distance,
// f = min(c1·log(N*) / (N*·p(av(y))·|av(y)−av(x)|), 1), yielding
// exponentially spaced long links akin to Pastry/Chord routing tables
// (Corollary 1.1).
type LogDecreasingVertical struct {
	C1    float64
	NStar float64
	PDF   *avdist.PDF
}

var _ SubPredicate = LogDecreasingVertical{}

// Threshold implements SubPredicate.
func (l LogDecreasingVertical) Threshold(avX, avY float64) float64 {
	if l.NStar <= 0 || l.PDF == nil {
		return 1
	}
	density := l.PDF.Density(avY)
	dist := math.Abs(avY - avX)
	if density <= 0 || dist <= 0 {
		return 1
	}
	return ids.Clamp01(l.C1 * logFloor(l.NStar) / (l.NStar * density * dist))
}

// Name implements SubPredicate.
func (l LogDecreasingVertical) Name() string { return "logarithmic-decreasing-vertical(I.C)" }

// ConstantHorizontal is sub-predicate II.A: every pair within the
// ε-band is accepted with the same fixed probability Fraction. Sized
// for the worst (sparsest) band, it wastes memory in dense bands —
// the motivation for II.B.
type ConstantHorizontal struct {
	// Fraction is the constant acceptance probability d2.
	Fraction float64
}

var _ SubPredicate = ConstantHorizontal{}

// Threshold implements SubPredicate.
func (c ConstantHorizontal) Threshold(_, _ float64) float64 {
	return ids.Clamp01(c.Fraction)
}

// Name implements SubPredicate.
func (c ConstantHorizontal) Name() string { return "constant-horizontal(II.A)" }

// LogConstantHorizontal is sub-predicate II.B, the paper's canonical
// horizontal sliver: f = min(c2·log(N*_av(x)) / N*min_av(x), 1), where
// N*_av(x) is the expected online population of x's ε-band and
// N*min_av(x) the minimum expected population over ε-windows inside the
// band. Theorems 2–3: the band's sub-overlay stays connected w.h.p.
// with only O(log) neighbors when the PDF is not too skewed.
type LogConstantHorizontal struct {
	C2      float64
	NStar   float64
	Epsilon float64
	PDF     *avdist.PDF
}

var _ SubPredicate = LogConstantHorizontal{}

// Threshold implements SubPredicate.
func (l LogConstantHorizontal) Threshold(avX, _ float64) float64 {
	if l.NStar <= 0 || l.PDF == nil || l.Epsilon <= 0 {
		return 1
	}
	nav := l.PDF.NStarAv(avX, l.Epsilon, l.NStar)
	nmin := l.PDF.NStarMin(avX, l.Epsilon, l.NStar)
	if nmin <= 0 {
		return 1
	}
	return ids.Clamp01(l.C2 * logFloor(nav) / nmin)
}

// Name implements SubPredicate.
func (l LogConstantHorizontal) Name() string { return "logarithmic-constant-horizontal(II.B)" }

// UniformRandom makes f a constant everywhere, which degenerates AVMEM
// into a consistent random overlay — the SCAMP/CYCLON-like baseline
// the paper compares against in Figure 10. Use the same value for both
// sliver positions.
type UniformRandom struct {
	// P is the constant acceptance probability.
	P float64
}

var _ SubPredicate = UniformRandom{}

// Threshold implements SubPredicate.
func (u UniformRandom) Threshold(_, _ float64) float64 { return ids.Clamp01(u.P) }

// Name implements SubPredicate.
func (u UniformRandom) Name() string { return "uniform-random(baseline)" }

// PaperPredicate builds the default predicate used throughout the
// paper's evaluation (§4): Logarithmic Vertical Sliver (I.B) +
// Logarithmic-Constant Horizontal Sliver (II.B) with the given
// constants over the supplied PDF and stable size.
func PaperPredicate(epsilon, c1, c2, nStar float64, pdf *avdist.PDF) (*Predicate, error) {
	if pdf == nil {
		return nil, fmt.Errorf("core: nil PDF")
	}
	if nStar <= 0 {
		return nil, fmt.Errorf("core: nStar must be positive, got %v", nStar)
	}
	if c1 <= 0 || c2 <= 0 {
		return nil, fmt.Errorf("core: c1 and c2 must be positive, got %v, %v", c1, c2)
	}
	return NewPredicate(epsilon,
		LogConstantHorizontal{C2: c2, NStar: nStar, Epsilon: epsilon, PDF: pdf},
		LogVertical{C1: c1, NStar: nStar, PDF: pdf},
	)
}

// RandomPredicate builds the Figure-10 baseline: a consistent random
// overlay whose expected degree matches degree (f = degree/N* on both
// slivers).
func RandomPredicate(epsilon, degree, nStar float64) (*Predicate, error) {
	if nStar <= 0 {
		return nil, fmt.Errorf("core: nStar must be positive, got %v", nStar)
	}
	p := ids.Clamp01(degree / nStar)
	return NewPredicate(epsilon, UniformRandom{P: p}, UniformRandom{P: p})
}

// CachedByX memoizes a sub-predicate whose threshold depends only on
// av(x) — true for II.A and II.B, whose f ignores av(y). The horizontal
// threshold of II.B performs an O(buckets) PDF scan; discovery evaluates
// it once per coarse-view candidate per protocol period, so memoizing by
// the (slowly changing) av(x) value removes almost all of that work.
//
// CachedByX must NOT wrap sub-predicates that read av(y); its
// constructor cannot check that, so misuse silently changes predicate
// semantics. It is not safe for concurrent use unless Shared is called.
type CachedByX struct {
	inner SubPredicate
	memo  map[float64]float64
	// mu guards memo when the memo is shared between worker threads
	// (Shared). Thresholds are pure functions of avX, so the lock
	// changes contention, never results.
	mu     sync.RWMutex
	locked bool
}

// Shared marks the memo as shared between worker threads: every
// subsequent Threshold call takes the lock. The thread-parallel
// deployment engine calls this once at world assembly.
func (c *CachedByX) Shared() { c.locked = true }

var _ SubPredicate = (*CachedByX)(nil)

// NewCachedByX wraps inner, which must ignore av(y).
func NewCachedByX(inner SubPredicate) (*CachedByX, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner sub-predicate")
	}
	return &CachedByX{inner: inner, memo: make(map[float64]float64, 1024)}, nil
}

// Threshold implements SubPredicate.
func (c *CachedByX) Threshold(avX, _ float64) float64 {
	if c.locked {
		return c.thresholdLocked(avX)
	}
	if v, ok := c.memo[avX]; ok {
		return v
	}
	// Bound the memo: availabilities are epoch fractions, so the key
	// space is finite in simulation, but live deployments could feed
	// arbitrary floats.
	if len(c.memo) >= 1<<20 {
		c.memo = make(map[float64]float64, 1024)
	}
	v := c.inner.Threshold(avX, 0)
	c.memo[avX] = v
	return v
}

// thresholdLocked is Threshold under the shared-memo lock.
func (c *CachedByX) thresholdLocked(avX float64) float64 {
	c.mu.RLock()
	v, ok := c.memo[avX]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = c.inner.Threshold(avX, 0)
	c.mu.Lock()
	if len(c.memo) >= 1<<20 {
		c.memo = make(map[float64]float64, 1024)
	}
	c.memo[avX] = v
	c.mu.Unlock()
	return v
}

// Name implements SubPredicate.
func (c *CachedByX) Name() string { return c.inner.Name() + "+memo" }
