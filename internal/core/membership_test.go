package core

import (
	"testing"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/ids"
)

// testWorld bundles the pieces a membership test needs: a static
// monitor, a mutable clock, and a permissive predicate.
type testWorld struct {
	monitor avmon.Static
	now     time.Duration
}

func (w *testWorld) clock() time.Duration { return w.now }

func newTestMembership(t *testing.T, self ids.NodeID, pred *Predicate, cushion float64) (*Membership, *testWorld) {
	t.Helper()
	w := &testWorld{monitor: avmon.Static{}}
	w.monitor[self] = 0.5
	m, err := NewMembership(self, Config{
		Predicate:     pred,
		Monitor:       w.monitor,
		Clock:         w.clock,
		VerifyCushion: cushion,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

func acceptAll(t *testing.T) *Predicate {
	t.Helper()
	p, err := NewPredicate(0.1, ConstantHorizontal{Fraction: 1}, UniformRandom{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func rejectAll(t *testing.T) *Predicate {
	t.Helper()
	p, err := NewPredicate(0.1, ConstantHorizontal{Fraction: 0}, UniformRandom{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewMembershipValidation(t *testing.T) {
	pred := acceptAll(t)
	mon := avmon.Static{}
	clock := func() time.Duration { return 0 }
	cases := []struct {
		name string
		self ids.NodeID
		cfg  Config
	}{
		{"nil self", ids.Nil, Config{Predicate: pred, Monitor: mon, Clock: clock}},
		{"nil predicate", "a", Config{Monitor: mon, Clock: clock}},
		{"nil monitor", "a", Config{Predicate: pred, Clock: clock}},
		{"nil clock", "a", Config{Predicate: pred, Monitor: mon}},
		{"bad cushion", "a", Config{Predicate: pred, Monitor: mon, Clock: clock, VerifyCushion: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMembership(tc.self, tc.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestDiscoverAdmitsBySliver(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	// Self availability 0.5. One horizontal candidate, one vertical.
	h := ids.Synthetic(1)
	v := ids.Synthetic(2)
	w.monitor[h] = 0.55
	w.monitor[v] = 0.9
	added := m.Discover([]ids.NodeID{h, v})
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	nb, ok := m.Lookup(h)
	if !ok || nb.Sliver != SliverHorizontal || nb.Availability != 0.55 {
		t.Errorf("horizontal neighbor = %+v, ok=%v", nb, ok)
	}
	nb, ok = m.Lookup(v)
	if !ok || nb.Sliver != SliverVertical || nb.Availability != 0.9 {
		t.Errorf("vertical neighbor = %+v, ok=%v", nb, ok)
	}
	if m.Size() != 2 || m.SliverSize(SliverHorizontal) != 1 || m.SliverSize(SliverVertical) != 1 {
		t.Errorf("sizes: total=%d hs=%d vs=%d", m.Size(), m.SliverSize(SliverHorizontal), m.SliverSize(SliverVertical))
	}
}

func TestDiscoverSkipsSelfNilUnknownAndExisting(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	y := ids.Synthetic(1)
	w.monitor[y] = 0.5
	if added := m.Discover([]ids.NodeID{self, ids.Nil, "stranger", y}); added != 1 {
		t.Errorf("added = %d, want 1 (only y)", added)
	}
	if added := m.Discover([]ids.NodeID{y}); added != 0 {
		t.Errorf("re-discovery added = %d, want 0", added)
	}
}

func TestDiscoverRespectsPredicate(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, rejectAll(t), 0)
	y := ids.Synthetic(1)
	w.monitor[y] = 0.5
	if added := m.Discover([]ids.NodeID{y}); added != 0 {
		t.Errorf("reject-all predicate admitted %d", added)
	}
}

func TestRefreshEvictsOnPredicateFailure(t *testing.T) {
	self := ids.Synthetic(0)
	// Horizontal-only predicate: accepts while |Δav| < ε, rejects after
	// availabilities drift apart (vertical rejects everything).
	p, err := NewPredicate(0.1, ConstantHorizontal{Fraction: 1}, UniformRandom{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, w := newTestMembership(t, self, p, 0)
	y := ids.Synthetic(1)
	w.monitor[y] = 0.52
	if added := m.Discover([]ids.NodeID{y}); added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	// y's availability drifts out of the ε-band; the pair becomes a
	// vertical candidate, and the vertical sub-predicate rejects it.
	w.monitor[y] = 0.9
	if evicted := m.Refresh(); evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	if m.Contains(y) {
		t.Error("neighbor survived predicate failure")
	}
}

func TestRefreshReclassifiesSliver(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	y := ids.Synthetic(1)
	w.monitor[y] = 0.52 // horizontal
	m.Discover([]ids.NodeID{y})
	w.monitor[y] = 0.95 // now vertical; accept-all keeps it
	w.now = 20 * time.Minute
	if evicted := m.Refresh(); evicted != 0 {
		t.Fatalf("evicted = %d, want 0", evicted)
	}
	nb, _ := m.Lookup(y)
	if nb.Sliver != SliverVertical {
		t.Errorf("sliver = %v, want VS after drift", nb.Sliver)
	}
	if nb.Availability != 0.95 {
		t.Errorf("cached availability = %v, want refreshed 0.95", nb.Availability)
	}
	if nb.FetchedAt != 20*time.Minute {
		t.Errorf("FetchedAt = %v, want 20m", nb.FetchedAt)
	}
}

func TestRefreshEvictsUnknownNodes(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	y := ids.Synthetic(1)
	w.monitor[y] = 0.5
	m.Discover([]ids.NodeID{y})
	delete(w.monitor, y) // monitoring service lost the node
	if evicted := m.Refresh(); evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
}

func TestRefreshSelfTracksMonitor(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	if m.SelfInfo().Availability != 0.5 {
		t.Fatalf("initial self availability = %v", m.SelfInfo().Availability)
	}
	w.monitor[self] = 0.8
	if got := m.RefreshSelf(); got != 0.8 {
		t.Errorf("RefreshSelf = %v, want 0.8", got)
	}
	// Monitor losing self keeps the last cached value.
	delete(w.monitor, self)
	if got := m.RefreshSelf(); got != 0.8 {
		t.Errorf("RefreshSelf after loss = %v, want cached 0.8", got)
	}
}

func TestNeighborsFlavors(t *testing.T) {
	self := ids.Synthetic(0)
	m, w := newTestMembership(t, self, acceptAll(t), 0)
	h1, h2, v1 := ids.Synthetic(1), ids.Synthetic(2), ids.Synthetic(3)
	w.monitor[h1] = 0.5
	w.monitor[h2] = 0.58
	w.monitor[v1] = 0.05
	m.Discover([]ids.NodeID{h1, h2, v1})
	if got := len(m.Neighbors(HSOnly)); got != 2 {
		t.Errorf("HS-only = %d, want 2", got)
	}
	if got := len(m.Neighbors(VSOnly)); got != 1 {
		t.Errorf("VS-only = %d, want 1", got)
	}
	if got := len(m.Neighbors(HSVS)); got != 3 {
		t.Errorf("HS+VS = %d, want 3", got)
	}
	if got := len(m.Neighbors(Flavor(0))); got != 0 {
		t.Errorf("invalid flavor = %d, want 0", got)
	}
	// Sorted by ID for determinism.
	all := m.Neighbors(HSVS)
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("neighbors not sorted: %v", all)
		}
	}
}

func TestVerifyInbound(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 1, 1, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	selfID := ids.Synthetic(0)
	receiver, w := newTestMembership(t, selfID, pred, 0)
	w.monitor[selfID] = 0.5
	receiver.RefreshSelf()

	// Find a sender that IS a legitimate in-neighbor (M(sender, self))
	// and one that is not, under identical availabilities.
	var legit, illegit ids.NodeID
	for i := 1; i < 5000 && (legit.IsNil() || illegit.IsNil()); i++ {
		cand := ids.Synthetic(i)
		w.monitor[cand] = 0.9
		ok, _ := pred.EvalNodes(
			NodeInfo{ID: cand, Availability: 0.9},
			NodeInfo{ID: selfID, Availability: 0.5}, 0, nil)
		if ok && legit.IsNil() {
			legit = cand
		}
		if !ok && illegit.IsNil() {
			illegit = cand
		}
	}
	if legit.IsNil() || illegit.IsNil() {
		t.Fatal("could not find both a legitimate and an illegitimate sender")
	}
	if !receiver.VerifyInbound(legit) {
		t.Error("legitimate in-neighbor rejected")
	}
	if receiver.VerifyInbound(illegit) {
		t.Error("illegitimate sender accepted")
	}
	if receiver.VerifyInbound(selfID) {
		t.Error("self accepted as sender")
	}
	if receiver.VerifyInbound(ids.Nil) {
		t.Error("nil sender accepted")
	}
	if receiver.VerifyInbound("unknown-to-monitor") {
		t.Error("unverifiable sender accepted")
	}
}

func TestVerifyInboundCushionToleratesStaleness(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 1, 1, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	selfID := ids.Synthetic(0)

	// Find a boundary pair: accepted at the true availability but
	// rejected when the receiver believes a slightly different value.
	for i := 1; i < 20000; i++ {
		sender := ids.Synthetic(i)
		trueAv, staleAv := 0.90, 0.70
		okTrue, _ := pred.EvalNodes(
			NodeInfo{ID: sender, Availability: trueAv},
			NodeInfo{ID: selfID, Availability: 0.5}, 0, nil)
		okStale, _ := pred.EvalNodes(
			NodeInfo{ID: sender, Availability: staleAv},
			NodeInfo{ID: selfID, Availability: 0.5}, 0, nil)
		okStaleCushion, _ := pred.EvalNodes(
			NodeInfo{ID: sender, Availability: staleAv},
			NodeInfo{ID: selfID, Availability: 0.5}, 0.1, nil)
		if okTrue && !okStale && okStaleCushion {
			// The cushion rescues this legitimate relationship.
			mNoCushion, w1 := newTestMembership(t, selfID, pred, 0)
			w1.monitor[sender] = staleAv
			mCushion, w2 := newTestMembership(t, selfID, pred, 0.1)
			w2.monitor[sender] = staleAv
			if mNoCushion.VerifyInbound(sender) {
				t.Error("expected rejection without cushion")
			}
			if !mCushion.VerifyInbound(sender) {
				t.Error("expected acceptance with cushion")
			}
			return
		}
	}
	t.Skip("no boundary pair found; predicate landscape too coarse")
}

func TestSelfAccessors(t *testing.T) {
	self := ids.Synthetic(0)
	m, _ := newTestMembership(t, self, acceptAll(t), 0)
	if m.Self() != self {
		t.Errorf("Self = %v", m.Self())
	}
	if m.Predicate() == nil {
		t.Error("Predicate = nil")
	}
	info := m.SelfInfo()
	if info.ID != self || info.Availability != 0.5 {
		t.Errorf("SelfInfo = %+v", info)
	}
}
