package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/ids"
)

// TestCushionMonotoneProperty: the accept set can only grow with the
// cushion — for any pair and any pair of cushions c1 <= c2, acceptance
// under c1 implies acceptance under c2.
func TestCushionMonotoneProperty(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 2, 2, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(i, j uint16, rawAvX, rawAvY, rawC1, rawC2 float64) bool {
		x := NodeInfo{ID: ids.Synthetic(int(i)), Availability: mod1(rawAvX)}
		y := NodeInfo{ID: ids.Synthetic(int(j) + 70000), Availability: mod1(rawAvY)}
		c1, c2 := mod1(rawC1), mod1(rawC2)
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		ok1, _ := pred.EvalNodes(x, y, c1, nil)
		ok2, _ := pred.EvalNodes(x, y, c2, nil)
		return !ok1 || ok2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestConsistencyAcrossEvaluatorsProperty: M(x,y) is the same no matter
// who evaluates it — with or without a shared hash cache, in any order.
func TestConsistencyAcrossEvaluatorsProperty(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 2, 2, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	cacheA := ids.NewHashCache(0)
	cacheB := ids.NewHashCache(0)
	prop := func(i, j uint16, rawAvX, rawAvY float64) bool {
		x := NodeInfo{ID: ids.Synthetic(int(i)), Availability: mod1(rawAvX)}
		y := NodeInfo{ID: ids.Synthetic(int(j) + 70000), Availability: mod1(rawAvY)}
		direct, kindD := pred.EvalNodes(x, y, 0, nil)
		viaA, kindA := pred.EvalNodes(x, y, 0, cacheA)
		viaB, kindB := pred.EvalNodes(x, y, 0, cacheB)
		return direct == viaA && viaA == viaB && kindD == kindA && kindA == kindB
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRefreshIdempotent: refreshing twice with an unchanged world
// evicts nothing the second time and leaves the lists identical.
func TestRefreshIdempotent(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 3, 3, 200, pdf)
	if err != nil {
		t.Fatal(err)
	}
	monitor := avmon.Static{}
	self := ids.Synthetic(0)
	monitor[self] = 0.5
	candidates := make([]ids.NodeID, 200)
	for i := range candidates {
		candidates[i] = ids.Synthetic(i + 1)
		monitor[candidates[i]] = float64(i%100) / 100
	}
	m, err := NewMembership(self, Config{
		Predicate: pred,
		Monitor:   monitor,
		Clock:     func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Discover(candidates)
	if m.Size() == 0 {
		t.Fatal("nothing discovered")
	}
	// Snapshot, not the live view: Refresh rebuilds the cached slices in
	// place, so comparing the view against itself would prove nothing.
	before := m.CopyNeighbors(HSVS)
	if evicted := m.Refresh(); evicted != 0 {
		t.Errorf("first refresh evicted %d in an unchanged world", evicted)
	}
	if evicted := m.Refresh(); evicted != 0 {
		t.Errorf("second refresh evicted %d", evicted)
	}
	after := m.Neighbors(HSVS)
	if len(before) != len(after) {
		t.Fatalf("refresh changed list size: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Sliver != after[i].Sliver {
			t.Fatalf("refresh changed entry %d: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestDiscoverRefreshAgreement: every entry admitted by Discover
// satisfies the predicate under its stored (cached) availability — the
// membership's core invariant.
func TestDiscoverRefreshAgreement(t *testing.T) {
	pdf := avdist.Overnet(100)
	pred, err := PaperPredicate(0.1, 3, 3, 200, pdf)
	if err != nil {
		t.Fatal(err)
	}
	monitor := avmon.Static{}
	self := ids.Synthetic(0)
	monitor[self] = 0.42
	candidates := make([]ids.NodeID, 300)
	for i := range candidates {
		candidates[i] = ids.Synthetic(i + 1)
		monitor[candidates[i]] = float64((i*37)%100) / 100
	}
	m, err := NewMembership(self, Config{
		Predicate: pred,
		Monitor:   monitor,
		Clock:     func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Discover(candidates)
	selfInfo := m.SelfInfo()
	for _, nb := range m.Neighbors(HSVS) {
		ok, kind := pred.EvalNodes(selfInfo, NodeInfo{ID: nb.ID, Availability: nb.Availability}, 0, nil)
		if !ok {
			t.Errorf("stored neighbor %v violates predicate", nb.ID)
		}
		if kind != nb.Sliver {
			t.Errorf("stored sliver %v != classified %v for %v", nb.Sliver, kind, nb.ID)
		}
	}
}

// TestMonitorOutageEvictsEverything: if the monitoring service loses
// all knowledge, Refresh evicts every neighbor (fail-closed) and
// Discover admits nothing new.
func TestMonitorOutageEvictsEverything(t *testing.T) {
	monitor := avmon.Static{}
	self := ids.Synthetic(0)
	monitor[self] = 0.5
	y := ids.Synthetic(1)
	monitor[y] = 0.55
	p, err := NewPredicate(0.1, ConstantHorizontal{Fraction: 1}, UniformRandom{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMembership(self, Config{
		Predicate: p,
		Monitor:   monitor,
		Clock:     func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Discover([]ids.NodeID{y})
	if m.Size() != 1 {
		t.Fatal("setup failed")
	}
	// Total monitor outage.
	delete(monitor, y)
	delete(monitor, self)
	if evicted := m.Refresh(); evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	if added := m.Discover([]ids.NodeID{y}); added != 0 {
		t.Errorf("discovered %d with a dead monitor", added)
	}
}

func mod1(v float64) float64 {
	v = math.Abs(math.Mod(v, 1))
	if math.IsNaN(v) {
		return 0
	}
	return v
}
