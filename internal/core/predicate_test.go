package core

import (
	"math"
	"testing"
	"testing/quick"

	"avmem/internal/avdist"
	"avmem/internal/ids"
)

func TestNewPredicateValidation(t *testing.T) {
	hs := ConstantHorizontal{Fraction: 0.5}
	vs := ConstantVertical{D1: 8, NStar: 100}
	if _, err := NewPredicate(0, hs, vs); err == nil {
		t.Error("want error for epsilon 0")
	}
	if _, err := NewPredicate(1.5, hs, vs); err == nil {
		t.Error("want error for epsilon > 1")
	}
	if _, err := NewPredicate(0.1, nil, vs); err == nil {
		t.Error("want error for nil horizontal")
	}
	if _, err := NewPredicate(0.1, hs, nil); err == nil {
		t.Error("want error for nil vertical")
	}
	if _, err := NewPredicate(0.1, hs, vs); err != nil {
		t.Errorf("valid predicate rejected: %v", err)
	}
}

func TestClassify(t *testing.T) {
	p, err := NewPredicate(0.1, ConstantHorizontal{0.5}, ConstantVertical{8, 100})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		avX, avY float64
		want     Sliver
	}{
		{0.5, 0.55, SliverHorizontal},
		{0.5, 0.45, SliverHorizontal},
		{0.5, 0.5, SliverHorizontal},
		{0.5, 0.61, SliverVertical},
		{0.5, 0.75, SliverVertical},
		{0.1, 0.9, SliverVertical},
	}
	for _, tc := range tests {
		if got := p.Classify(tc.avX, tc.avY); got != tc.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", tc.avX, tc.avY, got, tc.want)
		}
	}
}

func TestClassifyStrictBoundary(t *testing.T) {
	// ε = 0.125 is exactly representable, so the strict-< boundary can
	// be probed without floating-point fuzz.
	p, err := NewPredicate(0.125, ConstantHorizontal{0.5}, ConstantVertical{8, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Classify(0.25, 0.375); got != SliverVertical {
		t.Errorf("exactly ε apart = %v, want VS (strict <)", got)
	}
	if got := p.Classify(0.25, 0.3749999); got != SliverHorizontal {
		t.Errorf("just inside ε = %v, want HS", got)
	}
}

func TestEvalConsistency(t *testing.T) {
	pdf := avdist.Overnet(100)
	p, err := PaperPredicate(0.1, 1, 1, 1000, pdf)
	if err != nil {
		t.Fatal(err)
	}
	x := NodeInfo{ID: ids.Synthetic(1), Availability: 0.4}
	y := NodeInfo{ID: ids.Synthetic(2), Availability: 0.8}
	first, kind := p.EvalNodes(x, y, 0, nil)
	for i := 0; i < 20; i++ {
		got, k := p.EvalNodes(x, y, 0, nil)
		if got != first || k != kind {
			t.Fatal("EvalNodes not consistent across evaluations")
		}
	}
	// Third-party evaluation (with a cache) gives the same answer.
	cache := ids.NewHashCache(0)
	got, k := p.EvalNodes(x, y, 0, cache)
	if got != first || k != kind {
		t.Error("cached evaluation disagrees with direct evaluation")
	}
}

func TestEvalSelfPair(t *testing.T) {
	p, _ := NewPredicate(0.1, ConstantHorizontal{1}, ConstantVertical{1000, 1})
	x := NodeInfo{ID: ids.Synthetic(1), Availability: 0.4}
	ok, kind := p.EvalNodes(x, x, 0, nil)
	if ok || kind != SliverNone {
		t.Errorf("self pair = (%v,%v), want (false,none)", ok, kind)
	}
}

func TestCushionWidensAcceptance(t *testing.T) {
	pdf := avdist.Overnet(100)
	p, err := PaperPredicate(0.1, 1, 1, 1000, pdf)
	if err != nil {
		t.Fatal(err)
	}
	// With cushion 1.0 everything passes; with cushion 0 only a subset.
	accepted0, accepted1 := 0, 0
	for i := 0; i < 500; i++ {
		x := NodeInfo{ID: ids.Synthetic(i), Availability: 0.3}
		y := NodeInfo{ID: ids.Synthetic(i + 1000), Availability: 0.7}
		if ok, _ := p.EvalNodes(x, y, 0, nil); ok {
			accepted0++
		}
		if ok, _ := p.EvalNodes(x, y, 1.0, nil); ok {
			accepted1++
		}
	}
	if accepted1 != 500 {
		t.Errorf("cushion=1 accepted %d/500, want all", accepted1)
	}
	if accepted0 >= accepted1 {
		t.Errorf("cushion had no effect: %d vs %d", accepted0, accepted1)
	}
}

func TestConstantVertical(t *testing.T) {
	c := ConstantVertical{D1: 10, NStar: 1000}
	if got := c.Threshold(0.1, 0.9); got != 0.01 {
		t.Errorf("Threshold = %v, want 0.01", got)
	}
	// Degenerate N*.
	if got := (ConstantVertical{D1: 10, NStar: 0}).Threshold(0, 0); got != 1 {
		t.Errorf("zero NStar threshold = %v, want 1", got)
	}
	// Saturates at 1.
	if got := (ConstantVertical{D1: 10, NStar: 5}).Threshold(0, 0); got != 1 {
		t.Errorf("saturated threshold = %v, want 1", got)
	}
}

// TestLogVerticalUniformCoverage is Theorem 1 in test form: under I.B
// the expected number of vertical neighbors per availability interval
// is independent of where the interval lies.
func TestLogVerticalUniformCoverage(t *testing.T) {
	pdf := avdist.Overnet(100)
	nStar := 1000.0
	l := LogVertical{C1: 1, NStar: nStar, PDF: pdf}
	// Expected neighbors in [b, b+0.1] = Σ over buckets of
	// threshold(av) × population(av). Compare two disjoint intervals.
	expected := func(lo float64) float64 {
		sum := 0.0
		const steps = 100
		w := 0.1 / steps
		for i := 0; i < steps; i++ {
			a := lo + (float64(i)+0.5)*w
			pop := nStar * pdf.Density(a) * w
			sum += l.Threshold(0.99, a) * pop
		}
		return sum
	}
	e1, e2 := expected(0.15), expected(0.55)
	if e1 <= 0 || e2 <= 0 {
		t.Fatalf("degenerate expectations: %v %v", e1, e2)
	}
	// Thresholds can clip at 1.0 in near-empty buckets; allow modest slack.
	if ratio := e1 / e2; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("coverage not uniform: E[0.15..0.25]=%v E[0.55..0.65]=%v", e1, e2)
	}
}

func TestLogVerticalDegenerate(t *testing.T) {
	if got := (LogVertical{C1: 1, NStar: 0, PDF: avdist.Uniform(10)}).Threshold(0, 0.5); got != 1 {
		t.Errorf("zero NStar = %v, want 1", got)
	}
	if got := (LogVertical{C1: 1, NStar: 100, PDF: nil}).Threshold(0, 0.5); got != 1 {
		t.Errorf("nil PDF = %v, want 1", got)
	}
	// Zero-density bucket: threshold 1 by design.
	pdf, err := avdist.FromWeights([]float64{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := (LogVertical{C1: 1, NStar: 100, PDF: pdf}).Threshold(0, 0.3); got != 1 {
		t.Errorf("zero-density threshold = %v, want 1", got)
	}
}

// TestLogDecreasingVerticalDecays is Corollary 1.1 in test form: under
// a uniform PDF, the I.C threshold decreases with availability distance.
func TestLogDecreasingVerticalDecays(t *testing.T) {
	pdf := avdist.Uniform(100)
	l := LogDecreasingVertical{C1: 0.2, NStar: 10000, PDF: pdf}
	t1 := l.Threshold(0.1, 0.3)
	t2 := l.Threshold(0.1, 0.6)
	t3 := l.Threshold(0.1, 0.95)
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("thresholds not decaying with distance: %v %v %v", t1, t2, t3)
	}
	// Scale check: halving distance doubles the threshold.
	if ratio := l.Threshold(0.1, 0.2) / l.Threshold(0.1, 0.3); math.Abs(ratio-2) > 0.01 {
		t.Errorf("inverse-distance scaling broken: ratio = %v", ratio)
	}
}

func TestLogDecreasingVerticalDegenerate(t *testing.T) {
	pdf := avdist.Uniform(10)
	l := LogDecreasingVertical{C1: 1, NStar: 100, PDF: pdf}
	if got := l.Threshold(0.5, 0.5); got != 1 {
		t.Errorf("zero distance = %v, want 1", got)
	}
	if got := (LogDecreasingVertical{C1: 1, NStar: 0, PDF: pdf}).Threshold(0, 1); got != 1 {
		t.Errorf("zero NStar = %v, want 1", got)
	}
}

func TestConstantHorizontal(t *testing.T) {
	if got := (ConstantHorizontal{Fraction: 0.3}).Threshold(0, 0); got != 0.3 {
		t.Errorf("Threshold = %v, want 0.3", got)
	}
	if got := (ConstantHorizontal{Fraction: 1.7}).Threshold(0, 0); got != 1 {
		t.Errorf("clamped = %v, want 1", got)
	}
}

func TestLogConstantHorizontalDependsOnlyOnX(t *testing.T) {
	pdf := avdist.Overnet(100)
	l := LogConstantHorizontal{C2: 1, NStar: 1000, Epsilon: 0.1, PDF: pdf}
	a, b := l.Threshold(0.5, 0.45), l.Threshold(0.5, 0.58)
	if a != b {
		t.Errorf("II.B threshold varies with av(y): %v != %v", a, b)
	}
}

// TestLogConstantHorizontalExpectedDegree is Theorem 2's core step: a
// node's expected horizontal-sliver size within its band is at least
// c2·log(N*_av) — enough for connectivity w.h.p.
func TestLogConstantHorizontalExpectedDegree(t *testing.T) {
	pdf := avdist.Overnet(100)
	nStar := 1000.0
	eps := 0.1
	l := LogConstantHorizontal{C2: 1, NStar: nStar, Epsilon: eps, PDF: pdf}
	for _, av := range []float64{0.2, 0.5, 0.8} {
		thr := l.Threshold(av, av)
		band := pdf.NStarAv(av, eps, nStar)
		expDegree := thr * band
		needed := math.Log(band)
		// With threshold possibly clipped at 1, the degree is
		// min(band, ...) — either way it must be ≥ log(band).
		if expDegree < needed-1e-9 && thr < 1 {
			t.Errorf("av=%v: expected degree %v < log band %v", av, expDegree, needed)
		}
	}
}

func TestLogConstantHorizontalDegenerate(t *testing.T) {
	pdf := avdist.Uniform(10)
	if got := (LogConstantHorizontal{C2: 1, NStar: 0, Epsilon: 0.1, PDF: pdf}).Threshold(0.5, 0.5); got != 1 {
		t.Errorf("zero NStar = %v, want 1", got)
	}
	if got := (LogConstantHorizontal{C2: 1, NStar: 100, Epsilon: 0, PDF: pdf}).Threshold(0.5, 0.5); got != 1 {
		t.Errorf("zero epsilon = %v, want 1", got)
	}
	if got := (LogConstantHorizontal{C2: 1, NStar: 100, Epsilon: 0.1, PDF: nil}).Threshold(0.5, 0.5); got != 1 {
		t.Errorf("nil PDF = %v, want 1", got)
	}
}

func TestUniformRandom(t *testing.T) {
	u := UniformRandom{P: 0.02}
	if got := u.Threshold(0.1, 0.9); got != 0.02 {
		t.Errorf("Threshold = %v", got)
	}
}

func TestPaperPredicateValidation(t *testing.T) {
	pdf := avdist.Overnet(100)
	if _, err := PaperPredicate(0.1, 1, 1, 1000, nil); err == nil {
		t.Error("want error for nil pdf")
	}
	if _, err := PaperPredicate(0.1, 1, 1, 0, pdf); err == nil {
		t.Error("want error for zero nStar")
	}
	if _, err := PaperPredicate(0.1, 0, 1, 1000, pdf); err == nil {
		t.Error("want error for zero c1")
	}
	if _, err := PaperPredicate(0.1, 1, -1, 1000, pdf); err == nil {
		t.Error("want error for negative c2")
	}
	p, err := PaperPredicate(0.1, 1, 1, 1000, pdf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Horizontal.Name() != (LogConstantHorizontal{}).Name() {
		t.Errorf("horizontal sub-predicate = %v", p.Horizontal.Name())
	}
	if p.Vertical.Name() != (LogVertical{}).Name() {
		t.Errorf("vertical sub-predicate = %v", p.Vertical.Name())
	}
}

func TestRandomPredicate(t *testing.T) {
	p, err := RandomPredicate(0.1, 20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threshold(0.1, 0.9); got != 0.02 {
		t.Errorf("vertical threshold = %v, want 0.02", got)
	}
	if got := p.Threshold(0.5, 0.52); got != 0.02 {
		t.Errorf("horizontal threshold = %v, want 0.02", got)
	}
	if _, err := RandomPredicate(0.1, 20, 0); err == nil {
		t.Error("want error for zero nStar")
	}
}

func TestThresholdAlwaysInUnitIntervalProperty(t *testing.T) {
	pdf := avdist.Overnet(100)
	p, err := PaperPredicate(0.1, 1.5, 2.0, 442, pdf)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawX, rawY float64) bool {
		avX := math.Abs(math.Mod(rawX, 1))
		avY := math.Abs(math.Mod(rawY, 1))
		thr := p.Threshold(avX, avY)
		return thr >= 0 && thr <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInConstantsProperty(t *testing.T) {
	pdf := avdist.Overnet(100)
	small := LogVertical{C1: 0.5, NStar: 1000, PDF: pdf}
	large := LogVertical{C1: 2.0, NStar: 1000, PDF: pdf}
	prop := func(rawY float64) bool {
		avY := math.Abs(math.Mod(rawY, 1))
		return small.Threshold(0.5, avY) <= large.Threshold(0.5, avY)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSliverString(t *testing.T) {
	if SliverHorizontal.String() != "HS" || SliverVertical.String() != "VS" || SliverNone.String() != "none" {
		t.Error("sliver strings wrong")
	}
}

func TestFlavorString(t *testing.T) {
	if HSOnly.String() != "HS-only" || VSOnly.String() != "VS-only" || HSVS.String() != "HS+VS" {
		t.Error("flavor strings wrong")
	}
	if Flavor(9).String() != "Flavor(9)" {
		t.Errorf("unknown flavor = %q", Flavor(9).String())
	}
}
