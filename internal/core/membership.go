package core

import (
	"fmt"
	"sort"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/ids"
)

// Flavor selects which sliver lists an operation may use — the paper
// evaluates every anycast/multicast algorithm in HS-only, VS-only, and
// HS+VS variants.
type Flavor int

// Operation flavors.
const (
	HSOnly Flavor = iota + 1
	VSOnly
	HSVS
)

// String implements fmt.Stringer.
func (f Flavor) String() string {
	switch f {
	case HSOnly:
		return "HS-only"
	case VSOnly:
		return "VS-only"
	case HSVS:
		return "HS+VS"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// Neighbor is one entry of a node's AVMEM membership list, with the
// availability value cached at the last discovery/refresh — operations
// deliberately use these cached values rather than re-querying the
// monitoring service per message (paper §3.2).
type Neighbor struct {
	ID           ids.NodeID
	Availability float64
	Sliver       Sliver
	// FetchedAt records when the cached availability was obtained.
	FetchedAt time.Duration
}

// Config wires a Membership to its dependencies.
type Config struct {
	// Predicate is the application-specified AVMEM predicate.
	Predicate *Predicate
	// Monitor answers availability queries (the black-box service).
	Monitor avmon.Service
	// Hashes optionally shares a memoized pair-hash cache across nodes
	// of one simulation; nil computes hashes directly.
	Hashes *ids.HashCache
	// Clock supplies the current (virtual or real) time.
	Clock func() time.Duration
	// VerifyCushion is added to f during in-neighbor verification to
	// tolerate stale or inconsistent availability views (paper §4.1
	// evaluates cushion 0 and 0.1).
	VerifyCushion float64
}

func (c Config) validate() error {
	if c.Predicate == nil {
		return fmt.Errorf("core: Config.Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("core: Config.Monitor is required")
	}
	if c.Clock == nil {
		return fmt.Errorf("core: Config.Clock is required")
	}
	if c.VerifyCushion < 0 || c.VerifyCushion > 1 {
		return fmt.Errorf("core: Config.VerifyCushion must be in [0,1], got %v", c.VerifyCushion)
	}
	return nil
}

// Membership is one node's AVMEM state: its horizontal and vertical
// slivers plus the cached availabilities backing them. It is driven
// externally: the owner calls Discover once per protocol period with
// the current coarse view, and Refresh once per refresh period.
// Membership is not safe for concurrent use.
type Membership struct {
	cfg       Config
	self      ids.NodeID
	selfAvail float64
	selfKnown bool
	neighbors map[ids.NodeID]*Neighbor
}

// NewMembership creates the membership state for node self.
func NewMembership(self ids.NodeID, cfg Config) (*Membership, error) {
	if self.IsNil() {
		return nil, fmt.Errorf("core: nil self id")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Membership{
		cfg:       cfg,
		self:      self,
		neighbors: make(map[ids.NodeID]*Neighbor, 64),
	}
	m.RefreshSelf()
	return m, nil
}

// Self returns this node's identifier.
func (m *Membership) Self() ids.NodeID { return m.self }

// SelfInfo returns this node's identity with its cached availability.
func (m *Membership) SelfInfo() NodeInfo {
	return NodeInfo{ID: m.self, Availability: m.selfAvail}
}

// Predicate exposes the configured predicate (read-only use).
func (m *Membership) Predicate() *Predicate { return m.cfg.Predicate }

// RefreshSelf re-queries the monitoring service for this node's own
// availability. Returns the cached value.
func (m *Membership) RefreshSelf() float64 {
	if v, ok := m.cfg.Monitor.Availability(m.self); ok {
		m.selfAvail = v
		m.selfKnown = true
	}
	return m.selfAvail
}

// Discover runs one round of the discovery sub-protocol (paper §3.1.I):
// it iterates the supplied coarse-view candidates, queries the
// availability of each one not already a neighbor, evaluates the AVMEM
// predicate, and admits those for which M(self, y) = 1. It returns the
// number of neighbors added.
func (m *Membership) Discover(candidates []ids.NodeID) int {
	if !m.selfKnown {
		m.RefreshSelf()
	}
	now := m.cfg.Clock()
	added := 0
	for _, y := range candidates {
		if y == m.self || y.IsNil() {
			continue
		}
		if _, exists := m.neighbors[y]; exists {
			continue
		}
		avY, ok := m.cfg.Monitor.Availability(y)
		if !ok {
			continue
		}
		match, kind := m.cfg.Predicate.EvalNodes(
			NodeInfo{ID: m.self, Availability: m.selfAvail},
			NodeInfo{ID: y, Availability: avY},
			0, m.cfg.Hashes)
		if !match {
			continue
		}
		m.neighbors[y] = &Neighbor{ID: y, Availability: avY, Sliver: kind, FetchedAt: now}
		added++
	}
	return added
}

// Refresh runs one round of the refresh sub-protocol (paper §3.1.II):
// it re-fetches the availability of every current neighbor, re-evaluates
// the predicate, evicts entries whose M(self, y) became 0, and
// reclassifies entries whose sliver changed. It returns the number of
// evicted neighbors.
func (m *Membership) Refresh() int {
	m.RefreshSelf()
	now := m.cfg.Clock()
	evicted := 0
	for id, nb := range m.neighbors {
		avY, ok := m.cfg.Monitor.Availability(id)
		if !ok {
			delete(m.neighbors, id)
			evicted++
			continue
		}
		match, kind := m.cfg.Predicate.EvalNodes(
			NodeInfo{ID: m.self, Availability: m.selfAvail},
			NodeInfo{ID: id, Availability: avY},
			0, m.cfg.Hashes)
		if !match {
			delete(m.neighbors, id)
			evicted++
			continue
		}
		nb.Availability = avY
		nb.Sliver = kind
		nb.FetchedAt = now
	}
	return evicted
}

// Contains reports whether id is currently a neighbor (either sliver).
func (m *Membership) Contains(id ids.NodeID) bool {
	_, ok := m.neighbors[id]
	return ok
}

// Lookup returns the neighbor entry for id, if present.
func (m *Membership) Lookup(id ids.NodeID) (Neighbor, bool) {
	nb, ok := m.neighbors[id]
	if !ok {
		return Neighbor{}, false
	}
	return *nb, true
}

// Size returns the total number of neighbors (both slivers).
func (m *Membership) Size() int { return len(m.neighbors) }

// SliverSize returns the number of neighbors in one sliver.
func (m *Membership) SliverSize(s Sliver) int {
	n := 0
	for _, nb := range m.neighbors {
		if nb.Sliver == s {
			n++
		}
	}
	return n
}

// Neighbors returns the neighbor entries selected by flavor, sorted by
// identifier for determinism. The slice is freshly allocated.
func (m *Membership) Neighbors(f Flavor) []Neighbor {
	out := make([]Neighbor, 0, len(m.neighbors))
	for _, nb := range m.neighbors {
		switch f {
		case HSOnly:
			if nb.Sliver != SliverHorizontal {
				continue
			}
		case VSOnly:
			if nb.Sliver != SliverVertical {
				continue
			}
		case HSVS:
			// keep all
		default:
			continue
		}
		out = append(out, *nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VerifyInbound is the receiving-side defense against selfish senders
// (paper §4.1): node self, having received a message from sender,
// checks whether it is legitimately an AVMEM neighbor of the sender —
// that is, whether M(sender, self) holds — using self's own (possibly
// stale) information: the monitoring service's availability for the
// sender and self's cached own availability. The configured
// VerifyCushion widens f to absorb benign staleness.
//
// It returns false when the sender's availability is unknown: an
// unverifiable sender is rejected, never trusted.
func (m *Membership) VerifyInbound(sender ids.NodeID) bool {
	if sender == m.self || sender.IsNil() {
		return false
	}
	avSender, ok := m.cfg.Monitor.Availability(sender)
	if !ok {
		return false
	}
	match, _ := m.cfg.Predicate.EvalNodes(
		NodeInfo{ID: sender, Availability: avSender},
		NodeInfo{ID: m.self, Availability: m.selfAvail},
		m.cfg.VerifyCushion, m.cfg.Hashes)
	return match
}
