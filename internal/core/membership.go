package core

import (
	"fmt"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/ids"
)

// Flavor selects which sliver lists an operation may use — the paper
// evaluates every anycast/multicast algorithm in HS-only, VS-only, and
// HS+VS variants.
type Flavor int

// Operation flavors.
const (
	HSOnly Flavor = iota + 1
	VSOnly
	HSVS
)

// String implements fmt.Stringer.
func (f Flavor) String() string {
	switch f {
	case HSOnly:
		return "HS-only"
	case VSOnly:
		return "VS-only"
	case HSVS:
		return "HS+VS"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// Neighbor is one entry of a node's AVMEM membership list, with the
// availability value cached at the last discovery/refresh — operations
// deliberately use these cached values rather than re-querying the
// monitoring service per message (paper §3.2).
type Neighbor struct {
	ID           ids.NodeID
	Availability float64
	Sliver       Sliver
	// FetchedAt records when the cached availability was obtained.
	FetchedAt time.Duration
	// idx1 is the neighbor's dense host index plus one when known
	// (zero = unknown), carried so Refresh and the indexed discovery
	// path never resolve identifiers.
	idx1 int32
}

// Config wires a Membership to its dependencies.
type Config struct {
	// Predicate is the application-specified AVMEM predicate.
	Predicate *Predicate
	// Monitor answers availability queries (the black-box service).
	Monitor avmon.Service
	// Hashes optionally shares a memoized pair-hash cache across nodes
	// of one simulation; nil computes hashes directly.
	Hashes *ids.HashCache
	// Clock supplies the current (virtual or real) time.
	Clock func() time.Duration
	// VerifyCushion is added to f during in-neighbor verification to
	// tolerate stale or inconsistent availability views (paper §4.1
	// evaluates cushion 0 and 0.1).
	VerifyCushion float64
	// Blocked, when non-nil, reports peers the owner's audit layer has
	// evicted: Discover never admits them and Refresh drops them, so an
	// audited-out node falls out of both slivers for good.
	Blocked func(ids.NodeID) bool

	// PairIdx, when non-nil, enables the index-keyed fast path: pair
	// hashes are memoized in this (deployment-shared) cache keyed by
	// dense host index, and candidates fed through DiscoverIdx skip all
	// identifier-keyed lookups. SelfIdx must then be this node's index
	// in the cache's universe.
	PairIdx *ids.PairIndexCache
	SelfIdx int32
	// MonitorIdx optionally answers availability queries by host index
	// (the same service as Monitor, minus the identifier lookup).
	MonitorIdx avmon.IndexedService
	// MonitorEpoch, when set, reports the monitor's current epoch and
	// whether its availability answers are pure, epoch-constant reads
	// (true for a noiseless oracle; false when queries draw noise RNG
	// or reflect live ping rounds). While stable, discovery caches
	// predicate rejections for the epoch: the protocol period is much
	// shorter than an epoch, so most ticks re-evaluate identical
	// (hash, selfAvail, avY) triples.
	MonitorEpoch func() (epoch int, stable bool)
}

func (c Config) validate() error {
	if c.Predicate == nil {
		return fmt.Errorf("core: Config.Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("core: Config.Monitor is required")
	}
	if c.Clock == nil {
		return fmt.Errorf("core: Config.Clock is required")
	}
	if c.VerifyCushion < 0 || c.VerifyCushion > 1 {
		return fmt.Errorf("core: Config.VerifyCushion must be in [0,1], got %v", c.VerifyCushion)
	}
	return nil
}

// Membership is one node's AVMEM state: its horizontal and vertical
// slivers plus the cached availabilities backing them. It is driven
// externally: the owner calls Discover once per protocol period with
// the current coarse view, and Refresh once per refresh period.
// Membership is not safe for concurrent use.
//
// Storage is three incrementally-maintained slices sorted by node ID —
// the full list plus one per sliver — so Neighbors can hand out a
// cached read-only view without allocating or sorting per call, and
// SliverSize is O(1). The map mirrors membership for O(1) duplicate
// checks during discovery.
type Membership struct {
	cfg       Config
	self      ids.NodeID
	selfAvail float64
	selfKnown bool
	// sliver records each neighbor's current classification.
	sliver map[ids.NodeID]Sliver
	// all, hs, vs are the cached views, each sorted by ID. Entries are
	// duplicated between all and their sliver list; Refresh keeps the
	// copies coherent.
	all []Neighbor
	hs  []Neighbor
	vs  []Neighbor
	// pairMemo memoizes H(self, y) per candidate. The hash depends only
	// on the two identifiers, and discovery re-tests the same candidates
	// every protocol period, so a single-id-keyed memo beats both
	// recomputing SHA-256 and the shared two-id-keyed cache on this
	// path. Bounded by pairMemoMax with full reset (the SHA recompute
	// after a reset is cheap and allocation-free). Unused (and never
	// allocated) when the index-keyed fast path is configured.
	pairMemo map[ids.NodeID]float64
	// sliverIdx mirrors sliver keyed by dense host index, so the
	// indexed discovery path's duplicate check never hashes a string.
	// Populated only when cfg.PairIdx is set.
	sliverIdx map[int32]Sliver
	// hasUnindexed records that at least one neighbor was admitted
	// without a known index; the indexed duplicate check then falls
	// back to the identifier map (correctness net, not a hot path).
	hasUnindexed bool

	// rej caches predicate-rejected candidate indexes (biased +1, 0 =
	// empty slot) for one (epoch, self-claim) regime — see
	// Config.MonitorEpoch. rejVer pairs with selfVer, bumped whenever
	// the self claim is refreshed.
	rej      []int32
	rejUsed  int
	rejEpoch int
	rejVer   uint64
	selfVer  uint64
}

// pairMemoMax bounds the per-membership hash memo; enough for every
// peer of a multi-thousand-host deployment to stay memoized for good.
const pairMemoMax = 1 << 13

// pairHash returns the memoized consistent hash H(self, y).
func (m *Membership) pairHash(y ids.NodeID) float64 {
	if h, ok := m.pairMemo[y]; ok {
		return h
	}
	h := ids.PairHash(m.self, y)
	if m.pairMemo == nil {
		m.pairMemo = make(map[ids.NodeID]float64, 64)
	} else if len(m.pairMemo) >= pairMemoMax {
		m.pairMemo = make(map[ids.NodeID]float64, 64)
	}
	m.pairMemo[y] = h
	return h
}

// availability queries the monitor, preferring the indexed service when
// the peer's index is known (yi >= 0).
func (m *Membership) availability(y ids.NodeID, yi int32) (float64, bool) {
	if m.cfg.MonitorIdx != nil && yi >= 0 {
		return m.cfg.MonitorIdx.AvailabilityIdx(int(yi))
	}
	return m.cfg.Monitor.Availability(y)
}

// NewMembership creates the membership state for node self.
func NewMembership(self ids.NodeID, cfg Config) (*Membership, error) {
	if self.IsNil() {
		return nil, fmt.Errorf("core: nil self id")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Membership{
		cfg:    cfg,
		self:   self,
		sliver: make(map[ids.NodeID]Sliver, 8),
	}
	if cfg.PairIdx != nil {
		if cfg.SelfIdx < 0 || int(cfg.SelfIdx) >= cfg.PairIdx.Hosts() {
			return nil, fmt.Errorf("core: SelfIdx %d outside pair-cache universe (%d hosts)",
				cfg.SelfIdx, cfg.PairIdx.Hosts())
		}
		if cfg.PairIdx.ID(cfg.SelfIdx) != self {
			return nil, fmt.Errorf("core: SelfIdx %d names %q, not self %q",
				cfg.SelfIdx, cfg.PairIdx.ID(cfg.SelfIdx), self)
		}
		m.sliverIdx = make(map[int32]Sliver, 8)
	}
	m.RefreshSelf()
	return m, nil
}

// searchNeighbors returns the position of id in the ID-sorted list, or
// the insertion point keeping the list sorted.
func searchNeighbors(list []Neighbor, id ids.NodeID) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertNeighbor splices nb into the ID-sorted list.
func insertNeighbor(list []Neighbor, nb Neighbor) []Neighbor {
	i := searchNeighbors(list, nb.ID)
	list = append(list, Neighbor{})
	copy(list[i+1:], list[i:])
	list[i] = nb
	return list
}

// sliverView returns the sliver list nb belongs to.
func (m *Membership) sliverView(s Sliver) *[]Neighbor {
	if s == SliverHorizontal {
		return &m.hs
	}
	return &m.vs
}

// Self returns this node's identifier.
func (m *Membership) Self() ids.NodeID { return m.self }

// SelfInfo returns this node's identity with its cached availability.
func (m *Membership) SelfInfo() NodeInfo {
	return NodeInfo{ID: m.self, Availability: m.selfAvail}
}

// Predicate exposes the configured predicate (read-only use).
func (m *Membership) Predicate() *Predicate { return m.cfg.Predicate }

// SelfClaim returns the monitoring service's current answer for this
// node itself — the availability an honest node claims on outbound
// protocol traffic. Unlike RefreshSelf it does not update the cached
// selfAvail the predicate consumes, so claims stay as fresh as the
// monitor (the audit layer cross-checks them against the same service)
// without perturbing membership decisions. Falls back to the cached
// value when the monitor does not answer.
func (m *Membership) SelfClaim() float64 {
	if v, ok := m.cfg.Monitor.Availability(m.self); ok {
		return v
	}
	return m.selfAvail
}

// RefreshSelf re-queries the monitoring service for this node's own
// availability. Returns the cached value.
func (m *Membership) RefreshSelf() float64 {
	yi := int32(-1)
	if m.cfg.PairIdx != nil {
		yi = m.cfg.SelfIdx
	}
	if v, ok := m.availability(m.self, yi); ok {
		if v != m.selfAvail || !m.selfKnown {
			m.selfVer++
		}
		m.selfAvail = v
		m.selfKnown = true
	}
	return m.selfAvail
}

// Discover runs one round of the discovery sub-protocol (paper §3.1.I):
// it iterates the supplied coarse-view candidates, queries the
// availability of each one not already a neighbor, evaluates the AVMEM
// predicate, and admits those for which M(self, y) = 1. It returns the
// number of neighbors added.
func (m *Membership) Discover(candidates []ids.NodeID) int {
	if !m.selfKnown {
		m.RefreshSelf()
	}
	now := m.cfg.Clock()
	added := 0
	for _, y := range candidates {
		if y == m.self || y.IsNil() {
			continue
		}
		if _, exists := m.sliver[y]; exists {
			continue
		}
		if m.cfg.Blocked != nil && m.cfg.Blocked(y) {
			continue
		}
		avY, ok := m.cfg.Monitor.Availability(y)
		if !ok {
			continue
		}
		match, kind := m.cfg.Predicate.Eval(m.pairHash(y), m.selfAvail, avY, 0)
		if !match {
			continue
		}
		nb := Neighbor{ID: y, Availability: avY, Sliver: kind, FetchedAt: now}
		m.admit(nb, kind)
		added++
	}
	return added
}

// admit inserts a new neighbor into all views and both duplicate maps.
func (m *Membership) admit(nb Neighbor, kind Sliver) {
	m.sliver[nb.ID] = kind
	if m.sliverIdx != nil {
		if nb.idx1 > 0 {
			m.sliverIdx[nb.idx1-1] = kind
		} else {
			m.hasUnindexed = true
		}
	}
	m.all = insertNeighbor(m.all, nb)
	view := m.sliverView(kind)
	*view = insertNeighbor(*view, nb)
}

// DiscoverIdx is Discover for candidates that carry their dense host
// index (idxs parallel to candidates; a negative index means unknown).
// With Config.PairIdx and MonitorIdx configured, the per-candidate cost
// is two integer-keyed map probes and two array reads — no identifier
// is hashed anywhere on the admit-nothing path, which is the common
// case once the overlay has converged.
func (m *Membership) DiscoverIdx(candidates []ids.NodeID, idxs []int32) int {
	if len(idxs) != len(candidates) {
		return m.Discover(candidates)
	}
	if !m.selfKnown {
		m.RefreshSelf()
	}
	selfIdx := int32(-1)
	if m.cfg.PairIdx != nil {
		selfIdx = m.cfg.SelfIdx
	}
	caching := false
	if m.cfg.MonitorEpoch != nil && m.sliverIdx != nil {
		if ep, stable := m.cfg.MonitorEpoch(); stable {
			caching = true
			m.prepRejCache(ep)
		}
	}
	now := m.cfg.Clock()
	added := 0
	for j, y := range candidates {
		yi := idxs[j]
		if yi < 0 || m.sliverIdx == nil {
			// Unknown index (or unindexed membership): identifier path.
			if m.discoverOne(y, now) {
				added++
			}
			continue
		}
		if yi == selfIdx || y.IsNil() {
			continue
		}
		if _, exists := m.sliverIdx[yi]; exists {
			continue
		}
		if m.hasUnindexed {
			if _, exists := m.sliver[y]; exists {
				continue
			}
		}
		if m.cfg.Blocked != nil && m.cfg.Blocked(y) {
			continue
		}
		if caching && m.rejHas(yi) {
			continue
		}
		avY, ok := m.availability(y, yi)
		if !ok {
			continue
		}
		// The pair hash is computed directly: the rejection cache already
		// absorbs within-epoch repeats, so most candidates reaching this
		// point are first-time pairs a memo could not have served — and a
		// deployment-wide memo table outgrows the CPU cache, making the
		// probe cost more than one short SHA-256.
		h := ids.PairHash(m.self, y)
		match, kind := m.cfg.Predicate.Eval(h, m.selfAvail, avY, 0)
		if !match {
			if caching {
				m.rejAdd(yi)
			}
			continue
		}
		m.admit(Neighbor{ID: y, Availability: avY, Sliver: kind, FetchedAt: now, idx1: yi + 1}, kind)
		added++
	}
	return added
}

// prepRejCache readies the rejection cache for the given monitor epoch,
// clearing it when the (epoch, self-claim) regime moved on.
func (m *Membership) prepRejCache(epoch int) {
	if m.rej == nil {
		m.rej = make([]int32, 512)
		m.rejEpoch = epoch - 1 // force the clear below to set versions
	}
	if epoch != m.rejEpoch || m.rejVer != m.selfVer {
		clear(m.rej)
		m.rejUsed = 0
		m.rejEpoch = epoch
		m.rejVer = m.selfVer
	}
}

// rejHas reports whether candidate index yi was predicate-rejected this
// regime.
func (m *Membership) rejHas(yi int32) bool {
	mask := uint32(len(m.rej)) - 1
	k := yi + 1
	for i := (uint32(yi) * 2654435761) & mask; ; i = (i + 1) & mask {
		switch m.rej[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// rejAdd records a predicate rejection. A full table is cleared rather
// than grown — the cache is advisory, and the per-epoch candidate set
// is normally far smaller than the table.
func (m *Membership) rejAdd(yi int32) {
	if (m.rejUsed+1)*4 >= len(m.rej)*3 {
		clear(m.rej)
		m.rejUsed = 0
	}
	mask := uint32(len(m.rej)) - 1
	i := (uint32(yi) * 2654435761) & mask
	for m.rej[i] != 0 {
		if m.rej[i] == yi+1 {
			return
		}
		i = (i + 1) & mask
	}
	m.rej[i] = yi + 1
	m.rejUsed++
}

// discoverOne runs the identifier-keyed discovery test for a single
// candidate, reporting whether it was admitted.
func (m *Membership) discoverOne(y ids.NodeID, now time.Duration) bool {
	if y == m.self || y.IsNil() {
		return false
	}
	if _, exists := m.sliver[y]; exists {
		return false
	}
	if m.cfg.Blocked != nil && m.cfg.Blocked(y) {
		return false
	}
	avY, ok := m.cfg.Monitor.Availability(y)
	if !ok {
		return false
	}
	match, kind := m.cfg.Predicate.Eval(m.pairHash(y), m.selfAvail, avY, 0)
	if !match {
		return false
	}
	m.admit(Neighbor{ID: y, Availability: avY, Sliver: kind, FetchedAt: now}, kind)
	return true
}

// Refresh runs one round of the refresh sub-protocol (paper §3.1.II):
// it re-fetches the availability of every current neighbor, re-evaluates
// the predicate, evicts entries whose M(self, y) became 0, and
// reclassifies entries whose sliver changed. It returns the number of
// evicted neighbors.
func (m *Membership) Refresh() int {
	m.RefreshSelf()
	now := m.cfg.Clock()
	evicted := 0
	// Compact the full list in place (the write index never passes the
	// read index), then rebuild the sliver views from it — still sorted,
	// since the full list is. Buffer capacity is reused across rounds.
	keep := m.all[:0]
	for i := range m.all {
		nb := m.all[i]
		if m.cfg.Blocked != nil && m.cfg.Blocked(nb.ID) {
			m.drop(&nb)
			evicted++
			continue
		}
		avY, ok := m.availability(nb.ID, nb.idx1-1)
		if !ok {
			m.drop(&nb)
			evicted++
			continue
		}
		var h float64
		if m.cfg.PairIdx != nil && nb.idx1 > 0 {
			h = m.cfg.PairIdx.Pair(m.cfg.SelfIdx, nb.idx1-1)
		} else {
			h = m.pairHash(nb.ID)
		}
		match, kind := m.cfg.Predicate.Eval(h, m.selfAvail, avY, 0)
		if !match {
			m.drop(&nb)
			evicted++
			continue
		}
		nb.Availability = avY
		nb.Sliver = kind
		nb.FetchedAt = now
		m.sliver[nb.ID] = kind
		if m.sliverIdx != nil && nb.idx1 > 0 {
			m.sliverIdx[nb.idx1-1] = kind
		}
		keep = append(keep, nb)
	}
	for i := len(keep); i < len(m.all); i++ {
		m.all[i] = Neighbor{}
	}
	m.all = keep
	m.hs = m.hs[:0]
	m.vs = m.vs[:0]
	for i := range m.all {
		view := m.sliverView(m.all[i].Sliver)
		*view = append(*view, m.all[i])
	}
	return evicted
}

// drop removes a neighbor from both duplicate maps.
func (m *Membership) drop(nb *Neighbor) {
	delete(m.sliver, nb.ID)
	if m.sliverIdx != nil && nb.idx1 > 0 {
		delete(m.sliverIdx, nb.idx1-1)
	}
}

// Contains reports whether id is currently a neighbor (either sliver).
func (m *Membership) Contains(id ids.NodeID) bool {
	_, ok := m.sliver[id]
	return ok
}

// Lookup returns the neighbor entry for id, if present.
func (m *Membership) Lookup(id ids.NodeID) (Neighbor, bool) {
	i := searchNeighbors(m.all, id)
	if i < len(m.all) && m.all[i].ID == id {
		return m.all[i], true
	}
	return Neighbor{}, false
}

// Size returns the total number of neighbors (both slivers).
func (m *Membership) Size() int { return len(m.all) }

// SliverSize returns the number of neighbors in one sliver.
func (m *Membership) SliverSize(s Sliver) int {
	return len(*m.sliverView(s))
}

// Neighbors returns the neighbor entries selected by flavor, sorted by
// identifier for determinism. The returned slice is a cached view —
// it is valid until the next Discover or Refresh and must not be
// modified. It is rebuilt incrementally, so calling Neighbors performs
// no allocation and no sorting; callers needing a stable snapshot use
// CopyNeighbors.
func (m *Membership) Neighbors(f Flavor) []Neighbor {
	switch f {
	case HSOnly:
		return m.hs
	case VSOnly:
		return m.vs
	case HSVS:
		return m.all
	default:
		return nil
	}
}

// CopyNeighbors returns a freshly allocated snapshot of Neighbors(f)
// that survives later Discover/Refresh rounds.
func (m *Membership) CopyNeighbors(f Flavor) []Neighbor {
	view := m.Neighbors(f)
	if len(view) == 0 {
		return nil
	}
	out := make([]Neighbor, len(view))
	copy(out, view)
	return out
}

// VerifyInbound is the receiving-side defense against selfish senders
// (paper §4.1): node self, having received a message from sender,
// checks whether it is legitimately an AVMEM neighbor of the sender —
// that is, whether M(sender, self) holds — using self's own (possibly
// stale) information: the monitoring service's availability for the
// sender and self's cached own availability. The configured
// VerifyCushion widens f to absorb benign staleness.
//
// It returns false when the sender's availability is unknown: an
// unverifiable sender is rejected, never trusted.
func (m *Membership) VerifyInbound(sender ids.NodeID) bool {
	if sender == m.self || sender.IsNil() {
		return false
	}
	avSender, ok := m.cfg.Monitor.Availability(sender)
	if !ok {
		return false
	}
	match, _ := m.cfg.Predicate.EvalNodes(
		NodeInfo{ID: sender, Availability: avSender},
		NodeInfo{ID: m.self, Availability: m.selfAvail},
		m.cfg.VerifyCushion, m.cfg.Hashes)
	return match
}
