package core

import (
	"fmt"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/ids"
)

// Flavor selects which sliver lists an operation may use — the paper
// evaluates every anycast/multicast algorithm in HS-only, VS-only, and
// HS+VS variants.
type Flavor int

// Operation flavors.
const (
	HSOnly Flavor = iota + 1
	VSOnly
	HSVS
)

// String implements fmt.Stringer.
func (f Flavor) String() string {
	switch f {
	case HSOnly:
		return "HS-only"
	case VSOnly:
		return "VS-only"
	case HSVS:
		return "HS+VS"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// Neighbor is one entry of a node's AVMEM membership list, with the
// availability value cached at the last discovery/refresh — operations
// deliberately use these cached values rather than re-querying the
// monitoring service per message (paper §3.2).
type Neighbor struct {
	ID           ids.NodeID
	Availability float64
	Sliver       Sliver
	// FetchedAt records when the cached availability was obtained.
	FetchedAt time.Duration
}

// Config wires a Membership to its dependencies.
type Config struct {
	// Predicate is the application-specified AVMEM predicate.
	Predicate *Predicate
	// Monitor answers availability queries (the black-box service).
	Monitor avmon.Service
	// Hashes optionally shares a memoized pair-hash cache across nodes
	// of one simulation; nil computes hashes directly.
	Hashes *ids.HashCache
	// Clock supplies the current (virtual or real) time.
	Clock func() time.Duration
	// VerifyCushion is added to f during in-neighbor verification to
	// tolerate stale or inconsistent availability views (paper §4.1
	// evaluates cushion 0 and 0.1).
	VerifyCushion float64
	// Blocked, when non-nil, reports peers the owner's audit layer has
	// evicted: Discover never admits them and Refresh drops them, so an
	// audited-out node falls out of both slivers for good.
	Blocked func(ids.NodeID) bool
}

func (c Config) validate() error {
	if c.Predicate == nil {
		return fmt.Errorf("core: Config.Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("core: Config.Monitor is required")
	}
	if c.Clock == nil {
		return fmt.Errorf("core: Config.Clock is required")
	}
	if c.VerifyCushion < 0 || c.VerifyCushion > 1 {
		return fmt.Errorf("core: Config.VerifyCushion must be in [0,1], got %v", c.VerifyCushion)
	}
	return nil
}

// Membership is one node's AVMEM state: its horizontal and vertical
// slivers plus the cached availabilities backing them. It is driven
// externally: the owner calls Discover once per protocol period with
// the current coarse view, and Refresh once per refresh period.
// Membership is not safe for concurrent use.
//
// Storage is three incrementally-maintained slices sorted by node ID —
// the full list plus one per sliver — so Neighbors can hand out a
// cached read-only view without allocating or sorting per call, and
// SliverSize is O(1). The map mirrors membership for O(1) duplicate
// checks during discovery.
type Membership struct {
	cfg       Config
	self      ids.NodeID
	selfAvail float64
	selfKnown bool
	// sliver records each neighbor's current classification.
	sliver map[ids.NodeID]Sliver
	// all, hs, vs are the cached views, each sorted by ID. Entries are
	// duplicated between all and their sliver list; Refresh keeps the
	// copies coherent.
	all []Neighbor
	hs  []Neighbor
	vs  []Neighbor
	// pairMemo memoizes H(self, y) per candidate. The hash depends only
	// on the two identifiers, and discovery re-tests the same candidates
	// every protocol period, so a single-id-keyed memo beats both
	// recomputing SHA-256 and the shared two-id-keyed cache on this
	// path. Bounded by pairMemoMax with full reset (the SHA recompute
	// after a reset is cheap and allocation-free).
	pairMemo map[ids.NodeID]float64
}

// pairMemoMax bounds the per-membership hash memo; enough for every
// peer of a multi-thousand-host deployment to stay memoized for good.
const pairMemoMax = 1 << 13

// pairHash returns the memoized consistent hash H(self, y).
func (m *Membership) pairHash(y ids.NodeID) float64 {
	if h, ok := m.pairMemo[y]; ok {
		return h
	}
	h := ids.PairHash(m.self, y)
	if len(m.pairMemo) >= pairMemoMax {
		m.pairMemo = make(map[ids.NodeID]float64, 64)
	}
	m.pairMemo[y] = h
	return h
}

// NewMembership creates the membership state for node self.
func NewMembership(self ids.NodeID, cfg Config) (*Membership, error) {
	if self.IsNil() {
		return nil, fmt.Errorf("core: nil self id")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Membership{
		cfg:      cfg,
		self:     self,
		sliver:   make(map[ids.NodeID]Sliver, 64),
		pairMemo: make(map[ids.NodeID]float64, 64),
	}
	m.RefreshSelf()
	return m, nil
}

// searchNeighbors returns the position of id in the ID-sorted list, or
// the insertion point keeping the list sorted.
func searchNeighbors(list []Neighbor, id ids.NodeID) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertNeighbor splices nb into the ID-sorted list.
func insertNeighbor(list []Neighbor, nb Neighbor) []Neighbor {
	i := searchNeighbors(list, nb.ID)
	list = append(list, Neighbor{})
	copy(list[i+1:], list[i:])
	list[i] = nb
	return list
}

// sliverView returns the sliver list nb belongs to.
func (m *Membership) sliverView(s Sliver) *[]Neighbor {
	if s == SliverHorizontal {
		return &m.hs
	}
	return &m.vs
}

// Self returns this node's identifier.
func (m *Membership) Self() ids.NodeID { return m.self }

// SelfInfo returns this node's identity with its cached availability.
func (m *Membership) SelfInfo() NodeInfo {
	return NodeInfo{ID: m.self, Availability: m.selfAvail}
}

// Predicate exposes the configured predicate (read-only use).
func (m *Membership) Predicate() *Predicate { return m.cfg.Predicate }

// SelfClaim returns the monitoring service's current answer for this
// node itself — the availability an honest node claims on outbound
// protocol traffic. Unlike RefreshSelf it does not update the cached
// selfAvail the predicate consumes, so claims stay as fresh as the
// monitor (the audit layer cross-checks them against the same service)
// without perturbing membership decisions. Falls back to the cached
// value when the monitor does not answer.
func (m *Membership) SelfClaim() float64 {
	if v, ok := m.cfg.Monitor.Availability(m.self); ok {
		return v
	}
	return m.selfAvail
}

// RefreshSelf re-queries the monitoring service for this node's own
// availability. Returns the cached value.
func (m *Membership) RefreshSelf() float64 {
	if v, ok := m.cfg.Monitor.Availability(m.self); ok {
		m.selfAvail = v
		m.selfKnown = true
	}
	return m.selfAvail
}

// Discover runs one round of the discovery sub-protocol (paper §3.1.I):
// it iterates the supplied coarse-view candidates, queries the
// availability of each one not already a neighbor, evaluates the AVMEM
// predicate, and admits those for which M(self, y) = 1. It returns the
// number of neighbors added.
func (m *Membership) Discover(candidates []ids.NodeID) int {
	if !m.selfKnown {
		m.RefreshSelf()
	}
	now := m.cfg.Clock()
	added := 0
	for _, y := range candidates {
		if y == m.self || y.IsNil() {
			continue
		}
		if _, exists := m.sliver[y]; exists {
			continue
		}
		if m.cfg.Blocked != nil && m.cfg.Blocked(y) {
			continue
		}
		avY, ok := m.cfg.Monitor.Availability(y)
		if !ok {
			continue
		}
		match, kind := m.cfg.Predicate.Eval(m.pairHash(y), m.selfAvail, avY, 0)
		if !match {
			continue
		}
		nb := Neighbor{ID: y, Availability: avY, Sliver: kind, FetchedAt: now}
		m.sliver[y] = kind
		m.all = insertNeighbor(m.all, nb)
		view := m.sliverView(kind)
		*view = insertNeighbor(*view, nb)
		added++
	}
	return added
}

// Refresh runs one round of the refresh sub-protocol (paper §3.1.II):
// it re-fetches the availability of every current neighbor, re-evaluates
// the predicate, evicts entries whose M(self, y) became 0, and
// reclassifies entries whose sliver changed. It returns the number of
// evicted neighbors.
func (m *Membership) Refresh() int {
	m.RefreshSelf()
	now := m.cfg.Clock()
	evicted := 0
	// Compact the full list in place (the write index never passes the
	// read index), then rebuild the sliver views from it — still sorted,
	// since the full list is. Buffer capacity is reused across rounds.
	keep := m.all[:0]
	for i := range m.all {
		nb := m.all[i]
		if m.cfg.Blocked != nil && m.cfg.Blocked(nb.ID) {
			delete(m.sliver, nb.ID)
			evicted++
			continue
		}
		avY, ok := m.cfg.Monitor.Availability(nb.ID)
		if !ok {
			delete(m.sliver, nb.ID)
			evicted++
			continue
		}
		match, kind := m.cfg.Predicate.Eval(m.pairHash(nb.ID), m.selfAvail, avY, 0)
		if !match {
			delete(m.sliver, nb.ID)
			evicted++
			continue
		}
		nb.Availability = avY
		nb.Sliver = kind
		nb.FetchedAt = now
		m.sliver[nb.ID] = kind
		keep = append(keep, nb)
	}
	for i := len(keep); i < len(m.all); i++ {
		m.all[i] = Neighbor{}
	}
	m.all = keep
	m.hs = m.hs[:0]
	m.vs = m.vs[:0]
	for i := range m.all {
		view := m.sliverView(m.all[i].Sliver)
		*view = append(*view, m.all[i])
	}
	return evicted
}

// Contains reports whether id is currently a neighbor (either sliver).
func (m *Membership) Contains(id ids.NodeID) bool {
	_, ok := m.sliver[id]
	return ok
}

// Lookup returns the neighbor entry for id, if present.
func (m *Membership) Lookup(id ids.NodeID) (Neighbor, bool) {
	i := searchNeighbors(m.all, id)
	if i < len(m.all) && m.all[i].ID == id {
		return m.all[i], true
	}
	return Neighbor{}, false
}

// Size returns the total number of neighbors (both slivers).
func (m *Membership) Size() int { return len(m.all) }

// SliverSize returns the number of neighbors in one sliver.
func (m *Membership) SliverSize(s Sliver) int {
	return len(*m.sliverView(s))
}

// Neighbors returns the neighbor entries selected by flavor, sorted by
// identifier for determinism. The returned slice is a cached view —
// it is valid until the next Discover or Refresh and must not be
// modified. It is rebuilt incrementally, so calling Neighbors performs
// no allocation and no sorting; callers needing a stable snapshot use
// CopyNeighbors.
func (m *Membership) Neighbors(f Flavor) []Neighbor {
	switch f {
	case HSOnly:
		return m.hs
	case VSOnly:
		return m.vs
	case HSVS:
		return m.all
	default:
		return nil
	}
}

// CopyNeighbors returns a freshly allocated snapshot of Neighbors(f)
// that survives later Discover/Refresh rounds.
func (m *Membership) CopyNeighbors(f Flavor) []Neighbor {
	view := m.Neighbors(f)
	if len(view) == 0 {
		return nil
	}
	out := make([]Neighbor, len(view))
	copy(out, view)
	return out
}

// VerifyInbound is the receiving-side defense against selfish senders
// (paper §4.1): node self, having received a message from sender,
// checks whether it is legitimately an AVMEM neighbor of the sender —
// that is, whether M(sender, self) holds — using self's own (possibly
// stale) information: the monitoring service's availability for the
// sender and self's cached own availability. The configured
// VerifyCushion widens f to absorb benign staleness.
//
// It returns false when the sender's availability is unknown: an
// unverifiable sender is rejected, never trusted.
func (m *Membership) VerifyInbound(sender ids.NodeID) bool {
	if sender == m.self || sender.IsNil() {
		return false
	}
	avSender, ok := m.cfg.Monitor.Availability(sender)
	if !ok {
		return false
	}
	match, _ := m.cfg.Predicate.EvalNodes(
		NodeInfo{ID: sender, Availability: avSender},
		NodeInfo{ID: m.self, Availability: m.selfAvail},
		m.cfg.VerifyCushion, m.cfg.Hashes)
	return match
}
