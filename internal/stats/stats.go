// Package stats provides the small statistics toolkit the experiment
// harness uses to turn raw simulation measurements into exactly the
// series the paper's figures plot: empirical CDFs, availability-bucketed
// means, scatter series, histograms, and summary statistics.
//
// Architecture: DESIGN.md §9 (deployment engines and the scenario
// layer — reporting).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual scalar descriptors of a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary over values. An empty input yields a
// zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(values)))
	s.Median = Percentile(values, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It copies and sorts internally.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// CDFPoint is one step of an empirical CDF: Fraction of samples <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical CDF of values as a step series, one point
// per distinct value, suitable for direct plotting (the paper's Figures
// 7 and 11–13 are CDFs).
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		points = append(points, CDFPoint{Value: sorted[i], Fraction: float64(j) / n})
		i = j
	}
	return points
}

// CDFAt evaluates an empirical CDF series at x: the fraction of samples
// with value <= x.
func CDFAt(points []CDFPoint, x float64) float64 {
	frac := 0.0
	for _, p := range points {
		if p.Value > x {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// ScatterPoint is one (x, y) observation, e.g. (availability, sliver size).
type ScatterPoint struct {
	X float64
	Y float64
}

// Histogram counts values into equal-width buckets over [lo, hi]. Values
// outside the range are clamped into the edge buckets. It returns the
// per-bucket counts; bucket i covers [lo + i*w, lo + (i+1)*w).
func Histogram(values []float64, lo, hi float64, buckets int) []int {
	if buckets <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, buckets)
	w := (hi - lo) / float64(buckets)
	for _, v := range values {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	return counts
}

// BucketedMean groups scatter points by X into equal-width buckets over
// [0,1] and returns the mean Y per non-empty bucket. The paper's Figures
// 5 and 6 average across 0.1-wide availability ranges; width 0.1 and 10
// buckets reproduce that. Empty buckets yield NaN.
func BucketedMean(points []ScatterPoint, buckets int) []float64 {
	if buckets <= 0 {
		return nil
	}
	sums := make([]float64, buckets)
	counts := make([]int, buckets)
	for _, p := range points {
		i := int(p.X * float64(buckets))
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		sums[i] += p.Y
		counts[i]++
	}
	out := make([]float64, buckets)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// BucketedMedian is BucketedMean's robust sibling: the median Y per
// non-empty X bucket (the paper reads medians off Figures 2b/2c).
func BucketedMedian(points []ScatterPoint, buckets int) []float64 {
	if buckets <= 0 {
		return nil
	}
	groups := make([][]float64, buckets)
	for _, p := range points {
		i := int(p.X * float64(buckets))
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		groups[i] = append(groups[i], p.Y)
	}
	out := make([]float64, buckets)
	for i, g := range groups {
		if len(g) == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = Percentile(g, 50)
		}
	}
	return out
}

// Series is a named sequence of (x, y) pairs — one plotted line.
type Series struct {
	Name   string
	Points []ScatterPoint
}

// Table renders one or more series as an aligned text table with a
// header, the form the harness prints for every figure.
func Table(xLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	// Collect the union of x values in order.
	xsSeen := make(map[float64]bool)
	xs := make([]float64, 0, 16)
	for _, s := range series {
		for _, p := range s.Points {
			if !xsSeen[p.X] {
				xsSeen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, s := range series {
			y, ok := lookupX(s.Points, x)
			if !ok || math.IsNaN(y) {
				fmt.Fprintf(&b, " %16s", "-")
			} else {
				fmt.Fprintf(&b, " %16.4g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupX(points []ScatterPoint, x float64) (float64, bool) {
	for _, p := range points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// FractionBelow returns the fraction of values <= threshold.
func FractionBelow(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// Correlation returns the Pearson correlation coefficient of the
// points' X and Y coordinates, or 0 when undefined (fewer than two
// points or zero variance). The harness uses it to quantify
// "uncorrelated" claims such as Figure 2(c)'s.
func Correlation(points []ScatterPoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for _, p := range points {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for _, p := range points {
		dx, dy := p.X-mx, p.Y-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
