package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Median != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{100, 40},
		{50, 25},
		{25, 17.5},
		{-5, 10},
		{150, 40},
	}
	for _, tc := range tests {
		if got := Percentile(vals, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("Percentile mutated input: %v", vals)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(points) != len(want) {
		t.Fatalf("CDF len = %d, want %d: %v", len(points), len(want), points)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, points[i], want[i])
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	if got := CDF(nil); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFAt(t *testing.T) {
	points := CDF([]float64{1, 2, 3, 4})
	tests := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{10, 1},
	}
	for _, tc := range tests {
		if got := CDFAt(points, tc.x); got != tc.want {
			t.Errorf("CDFAt(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		points := CDF(raw)
		last := 0.0
		for _, p := range points {
			if p.Fraction < last {
				return false
			}
			last = p.Fraction
		}
		return math.Abs(points[len(points)-1].Fraction-1.0) < 1e-12 &&
			sort.SliceIsSorted(points, func(i, j int) bool { return points[i].Value < points[j].Value })
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.05, 0.15, 0.15, 0.95, -1, 2}, 0, 1, 10)
	if counts[0] != 2 { // 0.05 and clamped -1
		t.Errorf("bucket 0 = %d, want 2", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bucket 1 = %d, want 2", counts[1])
	}
	if counts[9] != 2 { // 0.95 and clamped 2
		t.Errorf("bucket 9 = %d, want 2", counts[9])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if got := Histogram([]float64{1}, 0, 1, 0); got != nil {
		t.Errorf("Histogram with 0 buckets = %v, want nil", got)
	}
	if got := Histogram([]float64{1}, 1, 0, 10); got != nil {
		t.Errorf("Histogram with inverted range = %v, want nil", got)
	}
}

func TestBucketedMean(t *testing.T) {
	points := []ScatterPoint{
		{0.05, 10}, {0.07, 20}, // bucket 0 -> mean 15
		{0.55, 4}, // bucket 5 -> 4
		{1.0, 8},  // clamps into bucket 9
	}
	means := BucketedMean(points, 10)
	if means[0] != 15 {
		t.Errorf("bucket 0 mean = %v, want 15", means[0])
	}
	if means[5] != 4 {
		t.Errorf("bucket 5 mean = %v, want 4", means[5])
	}
	if means[9] != 8 {
		t.Errorf("bucket 9 mean = %v, want 8", means[9])
	}
	if !math.IsNaN(means[3]) {
		t.Errorf("empty bucket mean = %v, want NaN", means[3])
	}
}

func TestBucketedMedian(t *testing.T) {
	points := []ScatterPoint{
		{0.15, 1}, {0.16, 100}, {0.17, 3},
	}
	medians := BucketedMedian(points, 10)
	if medians[1] != 3 {
		t.Errorf("bucket 1 median = %v, want 3", medians[1])
	}
}

func TestBucketedDegenerate(t *testing.T) {
	if got := BucketedMean(nil, 0); got != nil {
		t.Errorf("BucketedMean 0 buckets = %v", got)
	}
	if got := BucketedMedian(nil, 0); got != nil {
		t.Errorf("BucketedMedian 0 buckets = %v", got)
	}
}

func TestTable(t *testing.T) {
	out := Table("x",
		Series{Name: "a", Points: []ScatterPoint{{1, 10}, {2, 20}}},
		Series{Name: "b", Points: []ScatterPoint{{1, 0.5}}},
	)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("Table missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 x rows
		t.Errorf("Table rows = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("missing value not rendered as '-':\n%s", out)
	}
}

func TestFractionBelow(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := FractionBelow(vals, 2); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(nil, 2); got != 0 {
		t.Errorf("FractionBelow(nil) = %v, want 0", got)
	}
}

func TestCorrelation(t *testing.T) {
	perfect := []ScatterPoint{{1, 2}, {2, 4}, {3, 6}}
	if got := Correlation(perfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	inverse := []ScatterPoint{{1, 6}, {2, 4}, {3, 2}}
	if got := Correlation(inverse); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	flat := []ScatterPoint{{1, 5}, {2, 5}, {3, 5}}
	if got := Correlation(flat); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Correlation(nil); got != 0 {
		t.Errorf("empty correlation = %v, want 0", got)
	}
	if got := Correlation([]ScatterPoint{{1, 1}}); got != 0 {
		t.Errorf("single-point correlation = %v, want 0", got)
	}
}
