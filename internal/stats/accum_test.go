package stats

import (
	"math"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	vals := []float64{3, -1, 7, 7, 0.5, 12, -4.25}
	var a Accumulator
	for _, v := range vals {
		a.Add(v)
	}
	want := Summarize(vals)
	if a.Count() != want.Count || a.Mean() != want.Mean || a.Min() != want.Min || a.Max() != want.Max {
		t.Fatalf("accumulator %+v disagrees with Summarize %+v", a, want)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatalf("empty accumulator should report NaN summaries, got %+v", a)
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	var vals []float64
	for i := 0; i < 50; i++ {
		v := float64((i * 37) % 50)
		vals = append(vals, v)
		r.Add(v)
	}
	for _, p := range []float64{0, 25, 50, 90, 100} {
		if got, want := r.Percentile(p), Percentile(vals, p); got != want {
			t.Fatalf("p%.0f = %v, want %v (exact regime)", p, got, want)
		}
	}
}

func TestReservoirDeterministicAndApproximate(t *testing.T) {
	run := func() float64 {
		r := NewReservoir(256, 9)
		for i := 0; i < 20000; i++ {
			r.Add(float64(i))
		}
		if r.Count() != 20000 {
			t.Fatalf("count = %d", r.Count())
		}
		return r.Percentile(50)
	}
	p1, p2 := run(), run()
	if p1 != p2 {
		t.Fatalf("reservoir not deterministic: %v vs %v", p1, p2)
	}
	// The true median is 9999.5; a 256-sample sketch should land within
	// a generous tolerance of it.
	if math.Abs(p1-9999.5) > 2000 {
		t.Fatalf("median estimate %v too far from 9999.5", p1)
	}
}

func TestReservoirEmpty(t *testing.T) {
	if !math.IsNaN(NewReservoir(8, 0).Percentile(50)) {
		t.Fatal("empty reservoir should report NaN")
	}
}
