package stats

import (
	"math"
	"sort"
)

// Accumulator is an incremental summary: running count, sum, min, and
// max over a stream of observations. It replaces the materialize-then-
// Summarize pattern for probes that would otherwise build an O(n) slice
// just to reduce it — at 100k hosts those slices were the dominant
// per-probe allocation. The zero value is ready to use.
type Accumulator struct {
	n        int
	sum      float64
	min, max float64
}

// Add folds one observation into the summary.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// Count returns the number of observations.
func (a *Accumulator) Count() int { return a.n }

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the running mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest observation (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Reservoir is a bounded-memory streaming quantile sketch: classic
// reservoir sampling (Vitter's algorithm R) over at most K observations,
// with quantiles read off the sample. Randomness comes from a private
// seeded splitmix64 stream, so a Reservoir is deterministic for a given
// (seed, input sequence) and never perturbs any simulation RNG.
type Reservoir struct {
	k     int
	n     int64
	buf   []float64
	state uint64
}

// NewReservoir creates a sketch keeping at most k samples (k <= 0
// defaults to 1024).
func NewReservoir(k int, seed int64) *Reservoir {
	if k <= 0 {
		k = 1024
	}
	return &Reservoir{k: k, state: uint64(seed)*0x9E3779B97F4A7C15 + 1}
}

// next is splitmix64, the same mixer the trace generator trusts.
func (r *Reservoir) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Add offers one observation to the sketch.
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, v)
		return
	}
	// Replace a random kept sample with probability k/n.
	if j := int64(r.next() % uint64(r.n)); j < int64(r.k) {
		r.buf[j] = v
	}
}

// Count returns the number of observations offered (not kept).
func (r *Reservoir) Count() int64 { return r.n }

// Percentile returns the p-th percentile (0..100) of the kept sample,
// with linear interpolation; NaN when empty. For n <= K the sample is
// exact, beyond that it is a uniform subsample.
func (r *Reservoir) Percentile(p float64) float64 {
	if len(r.buf) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(r.buf))
	copy(s, r.buf)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
