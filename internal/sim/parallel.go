package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file is the thread-parallel executor: a conservative-window
// parallel discrete-event engine (Chandy–Misra–Bryant style) layered on
// the sharded queue of shard.go. Each shard becomes a *lane* with its
// own heap, clock, sequence counter, RNG stream, and per-destination
// outboxes; a coordinator repeatedly picks the globally minimal pending
// event and — when the lookahead permits — lets every lane drain its
// own heap up to `base + lookahead` on its own worker thread. Cross-lane
// sends travel through per-(src,dst) outbox queues that the coordinator
// drains at window barriers in deterministic lane order, so the merged
// schedule is a pure function of (trace, seed, shards, lookahead) — the
// relaxed determinism contract of DESIGN.md §14: bit-identical across
// repeated runs and any GOMAXPROCS or worker-thread count ≥ 2, but a
// *different* (still deterministic) canonical order than the serial
// tournament of shards with threads ≤ 1.

// seqCtxBits is the width of the scheduling-context tag packed into the
// low bits of every sequence number once SetParallel is configured:
// lanes 0..maxShards-1, plus one global context. Counters live in the
// high bits, so each context's events stay FIFO among themselves and
// the (at, seq) key remains a total order across contexts.
const seqCtxBits = 7

// ctxGlobal tags events scheduled from the coordinator/quiesced context
// (At/After/Every and unbound senders).
const ctxGlobal = maxShards

// lane is the per-shard execution context of the parallel engine. All
// fields are owned by the lane's worker while a window is running and
// by the coordinator between windows; the window barrier (channel send
// + WaitGroup wait) publishes every write.
type lane struct {
	// now is the lane-local clock: the timestamp of the last event this
	// lane fired. The lane's effective clock is max(now, World.now).
	now time.Duration
	// seq counts the lane's scheduled events (high bits of the seq key).
	seq uint64
	// rng is the lane's private deterministic stream, splitmix64-remixed
	// from the world seed so handlers stop contending on the world RNG.
	rng *rand.Rand
	// out[dst] buffers events this lane scheduled onto lane dst during
	// the current window; the coordinator drains them at the barrier in
	// (src, dst, append) order.
	out [][]event
	// deferred holds operations that touch cross-lane shared state
	// (Defer); they run serially at the barrier in (at, seq) order.
	deferred []deferredOp
	// dirty marks that out or deferred is non-empty.
	dirty bool
	// stats is the lane's slice of the network counters.
	stats NetworkStats
	// processed counts events fired by this lane (windows only).
	processed uint64
	// drainNs accumulates wall nanoseconds this lane spent draining in
	// the current window (only timed when the world is instrumented);
	// the coordinator folds it into the obs lane counters at the
	// barrier. Wall-clock reads never influence event order.
	drainNs int64

	_ [16]byte // pad to 128 bytes: lanes are adjacent in one slice
}

// deferredOp is a barrier-deferred operation with its deterministic
// ordering key.
type deferredOp struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// parallelExec is the window/barrier machinery attached to a World by
// SetParallel.
type parallelExec struct {
	w         *World
	threads   int
	lookahead time.Duration
	// enabled gates window execution; DisableParallel clears it and the
	// engine falls back to the serial merged order (same seq encoding,
	// so the fallback point is itself deterministic).
	enabled bool
	// inWindow is true while workers are draining lanes; Defer consults
	// it to decide between immediate and barrier execution.
	inWindow bool
	lanes    []lane
	// hook, when set, runs at the start of every window with the window
	// base time (the deployment layer prefills epoch caches here).
	hook func(base time.Duration)
	// windows counts executed parallel windows (test/diagnostic probe).
	windows uint64

	// Worker plumbing: one persistent goroutine per thread, striped over
	// the lanes (worker j owns lanes j, j+threads, …), signaled per
	// window through its own channel and joined through runWg.
	drainTo time.Duration
	start   []chan struct{}
	runWg   sync.WaitGroup
	wg      sync.WaitGroup
	quit    chan struct{}
	started bool
	closed  bool

	defBuf []deferredOp
}

// splitmix64 is the SplitMix64 finalizer; it remixes (seed, lane) into
// statistically independent per-lane RNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SetParallel upgrades a sharded world to thread-parallel execution:
// threads worker goroutines drain the shard heaps concurrently inside
// conservative windows of length lookahead (the minimum cross-shard
// delivery latency — see BoundedLatency). It must be called once, after
// SetShards and before anything is scheduled, because it switches the
// sequence-number encoding (and therefore the canonical event order)
// for the whole run. threads is clamped to the shard count. The caller
// owns teardown: Close stops the workers.
func (w *World) SetParallel(threads int, lookahead time.Duration) error {
	if w.par != nil {
		return fmt.Errorf("sim: parallel execution already configured")
	}
	if w.sh == nil {
		return fmt.Errorf("sim: SetParallel requires a sharded queue (call SetShards first)")
	}
	if threads < 2 {
		return fmt.Errorf("sim: SetParallel needs at least 2 threads, got %d", threads)
	}
	if lookahead <= 0 {
		return fmt.Errorf("sim: lookahead must be positive, got %v", lookahead)
	}
	if w.sh.pending() > 0 || len(w.events.evs) > 0 {
		return fmt.Errorf("sim: SetParallel must be called before scheduling events")
	}
	n := len(w.sh.shards)
	if threads > n {
		threads = n
	}
	p := &parallelExec{
		w:         w,
		threads:   threads,
		lookahead: lookahead,
		enabled:   true,
		lanes:     make([]lane, n),
		start:     make([]chan struct{}, threads),
		quit:      make(chan struct{}),
	}
	for i := range p.lanes {
		ln := &p.lanes[i]
		ln.rng = rand.New(rand.NewSource(int64(splitmix64(uint64(w.seed) ^ uint64(i+1)*0x9E3779B97F4A7C15))))
		ln.out = make([][]event, n)
	}
	w.par = p
	return nil
}

// ParallelActive reports whether conservative-window parallel execution
// is configured and still enabled (DisableParallel clears it).
func (w *World) ParallelActive() bool { return w.par != nil && w.par.enabled }

// ParallelWindows reports how many parallel windows have executed — the
// probe tests use to assert the engine actually ran multi-threaded.
func (w *World) ParallelWindows() uint64 {
	if w.par == nil {
		return 0
	}
	return w.par.windows
}

// DisableParallel permanently falls back to serial merged execution
// (the deployment layer calls this when a mid-run reconfiguration —
// e.g. a monitor-noise ramp — introduces state the lanes cannot touch
// concurrently). The sequence encoding is unchanged, so the run stays
// deterministic; it just stops using windows. Must be called from
// quiesced context (never from inside a running window).
func (w *World) DisableParallel() {
	if w.par != nil {
		if w.par.enabled && w.obs != nil {
			w.obs.disabled.Inc()
		}
		w.par.enabled = false
	}
}

// SetWindowHook registers fn to run at the start of every parallel
// window with the window's base time, before any lane starts draining.
// The deployment layer uses it to prefill per-epoch caches so window
// reads stay pure.
func (w *World) SetWindowHook(fn func(base time.Duration)) {
	if w.par != nil {
		w.par.hook = fn
	}
}

// Close stops the worker goroutines. Idempotent; a no-op for worlds
// without parallel execution. The world must be quiesced (no Run in
// progress).
func (w *World) Close() {
	p := w.par
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.started {
		close(p.quit)
		p.wg.Wait()
	}
}

// laneFor maps a host index onto its owning lane (host mod shards —
// the same placement shardedQueue.push uses for host-owned events).
func (p *parallelExec) laneFor(host int32) int {
	return int(uint32(host)) % len(p.lanes)
}

// laneNow is lane l's effective clock: its local clock, floored by the
// world clock (the current window base, or the quiesced time).
func (p *parallelExec) laneNow(l int) time.Duration {
	if t := p.lanes[l].now; t > p.w.now {
		return t
	}
	return p.w.now
}

// laneSeq allocates the next (counter, lane) sequence key for lane l.
// Must be called from l's own context (its worker during a window, or
// the coordinator between windows).
func (p *parallelExec) laneSeq(l int) uint64 {
	ln := &p.lanes[l]
	ln.seq++
	return ln.seq<<seqCtxBits | uint64(l)
}

// globalSeq allocates the next global-context sequence key.
func (w *World) globalSeq() uint64 {
	w.seq++
	return w.seq<<seqCtxBits | ctxGlobal
}

// pushFrom schedules ev — created in lane src's context — onto lane
// dst: same-lane events go straight into the lane's heap, cross-lane
// events into the src→dst outbox with their timestamp clamped to at
// least one lookahead past src's clock (the conservative-safety bound;
// network latencies already respect it, the clamp is defensive).
func (p *parallelExec) pushFrom(src, dst int, ev event) {
	if dst == src {
		p.w.sh.shards[dst].push(ev)
		return
	}
	ln := &p.lanes[src]
	if min := p.laneNow(src) + p.lookahead; ev.at < min {
		ev.at = min
	}
	ln.out[dst] = append(ln.out[dst], ev)
	ln.dirty = true
}

// HostScheduler is a host-affine clock/timer facade over the world: in
// a parallel world, Now is the host's lane clock and After schedules on
// the host's lane, so per-host protocol code runs entirely inside its
// lane. In a serial world both degrade to the world clock and heap. It
// satisfies the runtime layer's Scheduler contract.
type HostScheduler struct {
	w    *World
	host int32
}

// HostScheduler returns the host-affine scheduler facade for host.
func (w *World) HostScheduler(host int32) *HostScheduler {
	return &HostScheduler{w: w, host: host}
}

// Now returns the host's effective clock.
func (s *HostScheduler) Now() time.Duration { return s.w.hostNow(s.host) }

// After schedules fn on the host's lane, d past the host's clock.
func (s *HostScheduler) After(d time.Duration, fn func()) { s.w.AfterHost(d, s.host, fn) }

// hostNow returns host's effective clock: its lane clock in a parallel
// world, the world clock otherwise.
func (w *World) hostNow(host int32) time.Duration {
	if w.par == nil {
		return w.now
	}
	return w.par.laneNow(w.par.laneFor(host))
}

// AtHost schedules fn at virtual time at, on host's lane in a parallel
// world (falling back to At otherwise). In a parallel world it may only
// be called from the owning lane's context or while the world is
// quiesced — the lane's heap, clock, and sequence counter are touched
// without locks.
func (w *World) AtHost(at time.Duration, host int32, fn func()) {
	if fn == nil {
		return
	}
	p := w.par
	if p == nil {
		w.At(at, fn)
		return
	}
	l := p.laneFor(host)
	if hnow := p.laneNow(l); at < hnow {
		at = hnow
	}
	w.sh.shards[l].push(event{at: at, seq: p.laneSeq(l), fn: fn})
}

// AfterHost schedules fn d past host's effective clock, on host's lane.
// Same context rules as AtHost.
func (w *World) AfterHost(d time.Duration, host int32, fn func()) {
	w.AtHost(w.hostNow(host)+d, host, fn)
}

// EveryHost is Every with lane affinity: the periodic tick lives on
// host's lane and reschedules itself against the lane clock, so a
// cohort driver keyed to one lane runs inside parallel windows without
// touching any other lane's state.
func (w *World) EveryHost(offset, period time.Duration, host int32, stop func() bool, fn func()) error {
	if period <= 0 {
		return fmt.Errorf("sim: period must be positive, got %v", period)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil periodic function")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		w.AfterHost(period, host, tick)
	}
	w.AfterHost(offset, host, tick)
	return nil
}

// Defer runs fn serially at the next window barrier when called from
// inside a parallel window, and immediately otherwise. Lane code uses
// it for operations that touch state owned by other lanes (the central
// shuffle's view exchanges, rejoin bootstraps). Barrier execution order
// is the deterministic (at, seq) order of the deferring events. host
// names the calling lane (the code must actually be running on it).
func (w *World) Defer(host int32, fn func()) {
	p := w.par
	if p == nil || !p.inWindow {
		fn()
		return
	}
	l := p.laneFor(host)
	ln := &p.lanes[l]
	at := p.laneNow(l)
	ln.deferred = append(ln.deferred, deferredOp{at: at, seq: p.laneSeq(l), fn: fn})
	ln.dirty = true
}

// LaneRand returns the deterministic RNG stream for host's lane (the
// world RNG in a serial world). Lane streams may only be used from
// their own lane's context.
func (w *World) LaneRand(host int32) *rand.Rand {
	if w.par == nil {
		return w.rng
	}
	return w.par.lanes[w.par.laneFor(host)].rng
}

// spawnWorkers starts the persistent worker pool: thread j drains lanes
// j, j+threads, … each window. Lazy — only worlds that actually execute
// a window pay for goroutines.
func (p *parallelExec) spawnWorkers() {
	p.started = true
	for j := 0; j < p.threads; j++ {
		ch := make(chan struct{}, 1)
		p.start[j] = ch
		p.wg.Add(1)
		go func(j int, ch chan struct{}) {
			defer p.wg.Done()
			for {
				select {
				case <-p.quit:
					return
				case <-ch:
					for l := j; l < len(p.lanes); l += p.threads {
						p.drainLane(l)
					}
					p.runWg.Done()
				}
			}
		}(j, ch)
	}
}

// drainLane fires lane l's events with at < drainTo, advancing the
// lane clock. Runs on the lane's worker.
func (p *parallelExec) drainLane(l int) {
	ln := &p.lanes[l]
	h := &p.w.sh.shards[l]
	drainTo := p.drainTo
	var t0 time.Time
	if p.w.obs != nil {
		t0 = time.Now()
	}
	for len(h.evs) > 0 && h.evs[0].at < drainTo {
		ev := h.pop()
		ln.now = ev.at
		ev.fire()
		ln.processed++
	}
	if p.w.obs != nil {
		ln.drainNs += time.Since(t0).Nanoseconds()
	}
}

// drainBarrier flushes every lane's outboxes into the destination heaps
// (src-major, then dst, then FIFO — a deterministic order) and runs the
// deferred operations in (at, seq) order. Called by the coordinator
// between windows and before head selection.
func (p *parallelExec) drainBarrier() {
	nDef := 0
	for s := range p.lanes {
		ls := &p.lanes[s]
		if !ls.dirty {
			continue
		}
		ls.dirty = false
		for d := range ls.out {
			box := ls.out[d]
			if len(box) == 0 {
				continue
			}
			if o := p.w.obs; o != nil {
				o.outboxFlush.Observe(float64(len(box)))
			}
			for i := range box {
				p.w.sh.shards[d].push(box[i])
				box[i] = event{}
			}
			ls.out[d] = box[:0]
		}
		nDef += len(ls.deferred)
	}
	if nDef == 0 {
		return
	}
	buf := p.defBuf[:0]
	for s := range p.lanes {
		ls := &p.lanes[s]
		buf = append(buf, ls.deferred...)
		for i := range ls.deferred {
			ls.deferred[i] = deferredOp{}
		}
		ls.deferred = ls.deferred[:0]
	}
	sort.Slice(buf, func(a, b int) bool {
		if buf[a].at != buf[b].at {
			return buf[a].at < buf[b].at
		}
		return buf[a].seq < buf[b].seq
	})
	for i := range buf {
		buf[i].fn()
		buf[i].fn = nil
	}
	p.defBuf = buf[:0]
}

// runParallel is the coordinator loop behind Run and RunAll for a
// parallel-configured world. Each iteration drains the barrier, finds
// the globally minimal pending event, and either fires it serially
// (global-context events, or when the lookahead window would be empty
// or windows are disabled) or launches one conservative window: all
// lanes drain concurrently up to min(base+lookahead, next global event,
// until). maxEvents (<= 0: unbounded) is checked between windows, so a
// window may overshoot it slightly.
func (w *World) runParallel(until time.Duration, maxEvents int) int {
	p := w.par
	n := 0
	for {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		p.drainBarrier()
		var ghead, lhead *event
		if len(w.events.evs) > 0 {
			ghead = &w.events.evs[0]
		}
		li := -1
		for i := range w.sh.shards {
			evs := w.sh.shards[i].evs
			if len(evs) == 0 {
				continue
			}
			if lhead == nil || w.events.less(&evs[0], lhead) {
				lhead = &evs[0]
				li = i
			}
		}
		if ghead != nil && (lhead == nil || w.events.less(ghead, lhead)) {
			// Global-context event is globally minimal: fire serially.
			if ghead.at > until {
				break
			}
			ev := w.events.pop()
			w.now = ev.at
			ev.fire()
			n++
			if w.obs != nil {
				w.obs.serialSteps.Inc()
				w.obs.step(w.now)
			}
			continue
		}
		if lhead == nil || lhead.at > until {
			break
		}
		base := lhead.at
		end := base + p.lookahead
		if end < base {
			end = maxDuration // overflow guard (RunAll horizon)
		}
		if ghead != nil && ghead.at < end {
			end = ghead.at
		}
		if until < maxDuration && until+1 < end {
			end = until + 1 // events at exactly `until` must still fire
		}
		if !p.enabled || end <= base {
			// Serial step on the winning lane: the window would be empty
			// (a global event shares the base timestamp) or windows are
			// disabled — the tournament-merge fallback.
			ev := w.sh.shards[li].pop()
			w.now = ev.at
			p.lanes[li].now = ev.at
			ev.fire()
			n++
			if w.obs != nil {
				w.obs.serialSteps.Inc()
				w.obs.step(w.now)
			}
			continue
		}
		// One conservative window [base, end).
		w.now = base
		if p.hook != nil {
			p.hook(base)
		}
		if !p.started {
			p.spawnWorkers()
		}
		p.drainTo = end
		p.inWindow = true
		var wstart time.Time
		if w.obs != nil {
			wstart = time.Now()
		}
		p.runWg.Add(p.threads)
		for j := range p.start {
			p.start[j] <- struct{}{}
		}
		p.runWg.Wait()
		p.inWindow = false
		p.windows++
		if w.obs != nil {
			w.obs.flush(w.now)
			w.obs.windowDone(w.now, p.lanes, time.Since(wstart).Nanoseconds())
		}
		for i := range p.lanes {
			n += int(p.lanes[i].processed)
			p.lanes[i].processed = 0
		}
	}
	if until < maxDuration && until > w.now {
		w.now = until
	}
	if w.obs != nil {
		w.obs.flush(w.now)
	}
	return n
}

// maxDuration is the RunAll horizon sentinel.
const maxDuration = time.Duration(1<<63 - 1)

// BoundedLatency is a LatencyModel with a guaranteed lower bound on
// every sample — the lookahead of the parallel engine.
type BoundedLatency interface {
	LatencyModel
	// MinLatency returns a value no Sample call will go below.
	MinLatency() time.Duration
}

// MinLatency implements BoundedLatency.
func (u UniformLatency) MinLatency() time.Duration { return u.Min }

// MinLatency implements BoundedLatency.
func (f FixedLatency) MinLatency() time.Duration { return time.Duration(f) }

// LookaheadOf returns the conservative lookahead a latency model
// guarantees: its minimum one-way latency, or 0 when the model declares
// no bound (which disables window parallelism).
func LookaheadOf(m LatencyModel) time.Duration {
	if b, ok := m.(BoundedLatency); ok {
		return b.MinLatency()
	}
	return 0
}
