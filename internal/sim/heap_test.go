package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHeapPopsInAtSeqOrder drives the value heap through random
// insert/pop interleavings and checks every pop returns exactly the
// (at, seq)-minimum of what a reference model says is pending.
func TestHeapPopsInAtSeqOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h eventHeap
		var model []event // unordered reference of pending events
		seq := uint64(0)
		for step := 0; step < 400; step++ {
			if len(model) == 0 || rng.Intn(3) != 0 {
				// Duplicate deadlines are common (same-tick events), so
				// draw from a small range to force seq tie-breaks.
				seq++
				ev := event{at: time.Duration(rng.Intn(20)), seq: seq, fn: func() {}}
				h.push(ev)
				model = append(model, ev)
				continue
			}
			sort.Slice(model, func(i, j int) bool {
				if model[i].at != model[j].at {
					return model[i].at < model[j].at
				}
				return model[i].seq < model[j].seq
			})
			want := model[0]
			model = model[1:]
			ev := h.pop()
			if ev.at != want.at {
				t.Fatalf("trial %d step %d: popped at=%v, want %v", trial, step, ev.at, want.at)
			}
			if ev.fn == nil {
				t.Fatalf("trial %d step %d: popped nil fn", trial, step)
			}
			if got := h.evs; len(got) != len(model) {
				t.Fatalf("trial %d step %d: heap len %d, model len %d", trial, step, len(got), len(model))
			}
		}
		// Drain: remaining events must come out fully sorted.
		var last event
		for i := 0; len(h.evs) > 0; i++ {
			cur := h.evs[0]
			h.pop()
			if i > 0 && (cur.at < last.at || (cur.at == last.at && cur.seq < last.seq)) {
				t.Fatalf("trial %d: drain out of order: %v/%d after %v/%d", trial, cur.at, cur.seq, last.at, last.seq)
			}
			last = cur
		}
	}
}

// TestHeapSeqTieBreakExhaustive pushes many events at one identical
// deadline and checks strict FIFO pops.
func TestHeapSeqTieBreakExhaustive(t *testing.T) {
	w := NewWorld(1)
	const n = 257 // spans several 4-ary levels
	got := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		w.At(time.Millisecond, func() { got = append(got, i) })
	}
	w.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-deadline pop order broken at %d: got %d", i, v)
		}
	}
}

// BenchmarkSchedulerReschedule measures the periodic-driver hot cycle:
// pop the due event, push its successor one period out — the pattern
// every cohort tick and ping round executes. The pushed deadline is the
// queue's latest, so the push fast path (one parent comparison, no
// swaps) should dominate and the whole cycle should not allocate.
func BenchmarkSchedulerReschedule(b *testing.B) {
	w := NewWorld(1)
	const drivers = 1024
	period := time.Minute
	var tick func()
	tick = func() { w.After(period, tick) }
	for i := 0; i < drivers; i++ {
		w.At(time.Duration(i)*time.Second, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := w.events.pop()
		w.now = ev.at
		ev.fire()
	}
}
