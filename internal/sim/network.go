package sim

import (
	"time"

	"avmem/internal/ids"
)

// Handler consumes a message delivered to a node.
type Handler func(from ids.NodeID, msg any)

// OnlineFunc reports whether a node is currently online. The network
// consults it at delivery time, so a node that goes offline while a
// message is in flight misses the delivery — the same semantics a churn
// trace imposes on a real system.
type OnlineFunc func(id ids.NodeID) bool

// NetworkStats counts network activity for overhead and spam metrics.
type NetworkStats struct {
	Sent      int // messages handed to the network
	Delivered int // messages that reached an online handler
	Dropped   int // messages lost to offline or unregistered targets
}

// Network is the simulated message fabric: unicast with per-hop latency,
// delivery only to online nodes, and optional delivery acknowledgments
// for failure detection (retried-greedy forwarding needs them).
type Network struct {
	world   *World
	latency LatencyModel
	online  OnlineFunc
	// ackTimeout is how long a caller of SendCall waits before declaring
	// the attempt failed when no ack arrives.
	ackTimeout time.Duration
	handlers   map[ids.NodeID]Handler
	stats      NetworkStats

	// Indexed fast path, populated by Bind: a fixed host universe gets a
	// dense handler table and an index-based liveness probe, so a
	// delivery resolves the target once (one map hit) and the rest is
	// array reads. Hosts outside the bound universe fall back to the
	// map + OnlineFunc path.
	idx      map[ids.NodeID]int32
	byIdx    []Handler
	onlineAt func(i int) bool
}

// NewNetwork creates a network on the world. latency defaults to the
// paper's U[20,80] ms model; online defaults to "always online";
// ackTimeout <= 0 defaults to 2× the worst-case paper latency (160 ms).
func NewNetwork(w *World, latency LatencyModel, online OnlineFunc, ackTimeout time.Duration) *Network {
	if latency == nil {
		latency = PaperLatency()
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	if ackTimeout <= 0 {
		ackTimeout = 160 * time.Millisecond
	}
	return &Network{
		world:      w,
		latency:    latency,
		online:     online,
		ackTimeout: ackTimeout,
		handlers:   make(map[ids.NodeID]Handler, 1024),
	}
}

// Bind declares the fixed host universe and its index-based liveness
// probe: hosts[i] is online iff onlineAt(i). Handlers registered for
// bound hosts live in a dense table and deliveries to them skip the
// OnlineFunc entirely. Handlers registered before the call are migrated
// into the table, so Bind and Register compose in either order;
// typically hosts is the churn trace's population in trace-index order.
func (n *Network) Bind(hosts []ids.NodeID, onlineAt func(i int) bool) {
	if len(hosts) == 0 || onlineAt == nil {
		return
	}
	n.idx = make(map[ids.NodeID]int32, len(hosts))
	n.byIdx = make([]Handler, len(hosts))
	for i, id := range hosts {
		n.idx[id] = int32(i)
		if h, ok := n.handlers[id]; ok {
			n.byIdx[i] = h
			delete(n.handlers, id)
		}
	}
	n.onlineAt = onlineAt
}

// Register installs the message handler for a node. A nil handler
// unregisters the node.
func (n *Network) Register(id ids.NodeID, h Handler) {
	if i, ok := n.idx[id]; ok {
		n.byIdx[i] = h
		return
	}
	if h == nil {
		delete(n.handlers, id)
		return
	}
	n.handlers[id] = h
}

// Stats returns a copy of the activity counters. In a parallel world
// the per-lane slices are folded in (quiesced context only).
func (n *Network) Stats() NetworkStats {
	s := n.stats
	if p := n.world.par; p != nil {
		for i := range p.lanes {
			st := &p.lanes[i].stats
			s.Sent += st.Sent
			s.Delivered += st.Delivered
			s.Dropped += st.Dropped
		}
	}
	return s
}

// ResetStats zeroes the activity counters (used between experiment
// phases so warmup traffic does not pollute measurements).
func (n *Network) ResetStats() {
	n.stats = NetworkStats{}
	if p := n.world.par; p != nil {
		for i := range p.lanes {
			p.lanes[i].stats = NetworkStats{}
		}
	}
}

// laneIdx resolves id's lane in a parallel world, or -1 for hosts
// outside the bound universe.
func (n *Network) laneIdx(p *parallelExec, id ids.NodeID) int {
	if i, ok := n.idx[id]; ok {
		return p.laneFor(i)
	}
	return -1
}

// statsFor picks the counter slice a delivery-side event should write:
// the target's lane, the sender's lane for unbound targets (the event
// runs on the sender's lane then), or the global counters.
func (n *Network) statsFor(from, to ids.NodeID) *NetworkStats {
	p := n.world.par
	if p == nil {
		return &n.stats
	}
	if l := n.laneIdx(p, to); l >= 0 {
		return &p.lanes[l].stats
	}
	if l := n.laneIdx(p, from); l >= 0 {
		return &p.lanes[l].stats
	}
	return &n.stats
}

// Online reports whether the network considers id online right now.
func (n *Network) Online(id ids.NodeID) bool {
	if i, ok := n.idx[id]; ok {
		return n.onlineAt(int(i))
	}
	return n.online(id)
}

// handlerFor resolves the live handler for a delivery: nil when the
// target is unregistered or offline right now.
func (n *Network) handlerFor(to ids.NodeID) Handler {
	if i, ok := n.idx[to]; ok {
		if h := n.byIdx[i]; h != nil && n.onlineAt(int(i)) {
			return h
		}
		return nil
	}
	if h, ok := n.handlers[to]; ok && n.online(to) {
		return h
	}
	return nil
}

// deliver hands a message to the target's handler at delivery time,
// counting drops for offline or unregistered targets. It is the firing
// half of Send, invoked by the scheduler's value events.
func (n *Network) deliver(from, to ids.NodeID, msg any) {
	st := &n.stats
	if n.world.par != nil {
		st = n.statsFor(from, to)
	}
	h := n.handlerFor(to)
	if h == nil {
		st.Dropped++
		return
	}
	st.Delivered++
	h(from, msg)
}

// Send delivers msg to to after one sampled hop latency, if the target
// is online and registered at delivery time. Offline targets silently
// drop the message (counted in stats). The delivery is scheduled as a
// closure-free value event.
func (n *Network) Send(from, to ids.NodeID, msg any) {
	if p := n.world.par; p != nil {
		n.sendLane(p, from, to, msg)
		return
	}
	n.stats.Sent++
	lat := n.latency.Sample(n.world.Rand())
	host := int32(-1)
	if n.world.sh != nil {
		// Resolve the target's host index only when the queue is
		// sharded — it routes the delivery to the owning shard's heap.
		if i, ok := n.idx[to]; ok {
			host = i
		}
	}
	n.world.atDelivery(n.world.now+lat, n, from, to, msg, host)
}

// sendLane is Send in a parallel world: the latency draw, sequence
// number, and Sent counter all come from the sender's lane, and the
// delivery lands on the target's lane — directly for same-lane sends,
// through the deterministic src→dst outbox otherwise. Senders outside
// the bound universe use the coordinator context (quiesced callers
// only).
func (n *Network) sendLane(p *parallelExec, from, to ids.NodeID, msg any) {
	w := n.world
	sl := n.laneIdx(p, from)
	if sl < 0 {
		n.stats.Sent++
		lat := n.latency.Sample(w.rng)
		ev := event{at: w.now + lat, seq: w.globalSeq(), net: n, from: from, to: to, msg: msg}
		if tl := n.laneIdx(p, to); tl >= 0 {
			w.sh.shards[tl].push(ev)
		} else {
			w.events.push(ev)
		}
		return
	}
	ls := &p.lanes[sl]
	ls.stats.Sent++
	lat := n.latency.Sample(ls.rng)
	tl := n.laneIdx(p, to)
	if tl < 0 {
		// Unbound target: deliver on the sender's own lane via the
		// handler-map path.
		tl = sl
	}
	ev := event{at: p.laneNow(sl) + lat, seq: p.laneSeq(sl), net: n, from: from, to: to, msg: msg}
	p.pushFrom(sl, tl, ev)
}

// SendCall delivers msg like Send but also reports the outcome to the
// sender: onResult(true) fires when the target acknowledged (one
// round-trip after sending), onResult(false) fires after ackTimeout when
// the target was offline or unregistered. This models the paper's
// "each next-hop node is required to acknowledge receipt" rule.
func (n *Network) SendCall(from, to ids.NodeID, msg any, onResult func(ok bool)) {
	if p := n.world.par; p != nil {
		if sl := n.laneIdx(p, from); sl >= 0 {
			n.callLane(p, sl, from, to, msg, onResult)
			return
		}
		// Unbound sender: fall through to the serial path, which runs in
		// coordinator context (quiesced callers only) — After and the
		// world RNG are coordinator-owned there.
	}
	n.stats.Sent++
	out := n.latency.Sample(n.world.Rand())
	back := n.latency.Sample(n.world.Rand())
	n.world.After(out, func() {
		h := n.handlerFor(to)
		if h == nil {
			n.stats.Dropped++
			if onResult != nil {
				// Failure is detected only after the ack timeout expires.
				n.world.After(n.ackTimeout-out, func() { onResult(false) })
			}
			return
		}
		n.stats.Delivered++
		h(from, msg)
		if onResult != nil {
			n.world.After(back, func() { onResult(true) })
		}
	})
}

// callLane is SendCall in a parallel world. Both latency draws come
// from the sender's lane at send time (mirroring the serial path); the
// delivery closure runs on the target's lane, and the ack / timeout
// closures hop back to the sender's lane through the outboxes. Every
// cross-lane hop is at least one lookahead long (out ≥ lookahead,
// back ≥ lookahead, and the failure report fires ackTimeout − out ≥
// lookahead after the delivery attempt), so the conservative window
// invariant holds on every edge.
func (n *Network) callLane(p *parallelExec, sl int, from, to ids.NodeID, msg any, onResult func(ok bool)) {
	ls := &p.lanes[sl]
	ls.stats.Sent++
	out := n.latency.Sample(ls.rng)
	back := n.latency.Sample(ls.rng)
	t0 := p.laneNow(sl)
	tl := n.laneIdx(p, to)
	if tl < 0 {
		tl = sl
	}
	attempt := func() {
		// Runs on lane tl at t0+out.
		h := n.handlerFor(to)
		st := &p.lanes[tl].stats
		if h == nil {
			st.Dropped++
			if onResult != nil {
				// Failure is detected only after the ack timeout expires,
				// back on the sender's lane.
				fail := event{at: t0 + n.ackTimeout, seq: p.laneSeq(tl), fn: func() { onResult(false) }}
				p.pushFrom(tl, sl, fail)
			}
			return
		}
		st.Delivered++
		h(from, msg)
		if onResult != nil {
			ack := event{at: p.laneNow(tl) + back, seq: p.laneSeq(tl), fn: func() { onResult(true) }}
			p.pushFrom(tl, sl, ack)
		}
	}
	p.pushFrom(sl, tl, event{at: t0 + out, seq: p.laneSeq(sl), fn: attempt})
}
