package sim

import (
	"fmt"
	"time"
)

// shardedQueue partitions the event queue across n per-shard 4-ary
// heaps. Delivery events land in the heap of the shard that owns their
// target host (hostShard = host mod n) — a cross-shard send is nothing
// more than a push into the destination shard's heap, which doubles as
// that shard's deterministic inbox. Closure events (timers, drivers)
// have no host affinity and are spread round-robin by sequence number.
//
// The scheduler advances all shards in lockstep under the shared
// virtual clock: each step is a tournament over the shard heads that
// selects the globally minimal (at, seq) key. Because seq is assigned
// from one world-global counter at scheduling time, that key is a total
// order over all events, and the merged pop sequence is *identical* to
// a single global heap's — for any shard count, including one. That is
// the whole determinism argument: shard placement only decides which
// heap holds an event, never when it fires, so a (trace, seed) pair
// produces bit-identical output for shards ∈ {1, 2, 8, …} and the
// unsharded engine alike. See DESIGN.md §14.
//
// What sharding buys is structural, not scheduling-related: each heap
// holds ~1/n of the queue, so push/pop sift depth shrinks and the hot
// top levels of every heap stay cache-resident even at 100k-host queue
// sizes where one global heap's upper tree thrashes. The tournament
// costs an n-way scan of the shard heads per pop, so small n (4–16)
// is the useful range.
type shardedQueue struct {
	shards []eventHeap
}

// push places ev in its shard: host-owned events by host index, the
// rest round-robin by sequence number. Placement is a pure function of
// the event, so it is reproducible — but note it does not need to be
// for determinism (see the type comment); any placement yields the
// same merged order.
func (q *shardedQueue) push(ev event, host int32) {
	n := uint64(len(q.shards))
	var i uint64
	if host >= 0 {
		i = uint64(host) % n
	} else {
		i = ev.seq % n
	}
	q.shards[i].push(ev)
}

// next returns the index of the shard whose head carries the globally
// minimal (at, seq) key, or -1 when every shard is empty.
func (q *shardedQueue) next() int {
	best := -1
	for i := range q.shards {
		evs := q.shards[i].evs
		if len(evs) == 0 {
			continue
		}
		if best < 0 || q.shards[best].less(&evs[0], &q.shards[best].evs[0]) {
			best = i
		}
	}
	return best
}

// pending counts queued events across all shards.
func (q *shardedQueue) pending() int {
	n := 0
	for i := range q.shards {
		n += len(q.shards[i].evs)
	}
	return n
}

// SetShards switches the world between the single global event heap
// (n <= 1) and a sharded queue of n per-shard heaps. Already-queued
// events migrate to the new layout; because the merged order is the
// global (at, seq) order either way, switching never changes what the
// world executes — only the shape of the queue. Typically called once,
// right after NewWorld, before the deployment schedules anything.
func (w *World) SetShards(n int) error {
	if n > maxShards {
		return fmt.Errorf("sim: shard count %d exceeds max %d", n, maxShards)
	}
	if w.par != nil {
		return fmt.Errorf("sim: cannot reshape the queue after SetParallel")
	}
	var old []event
	old = append(old, w.events.evs...)
	if w.sh != nil {
		for i := range w.sh.shards {
			old = append(old, w.sh.shards[i].evs...)
		}
	}
	w.events.evs = nil
	if n <= 1 {
		w.sh = nil
		for _, ev := range old {
			w.events.push(ev)
		}
		return nil
	}
	w.sh = &shardedQueue{shards: make([]eventHeap, n)}
	for _, ev := range old {
		// Host affinity is not tracked post-hoc; round-robin migration
		// is fine — placement never affects order.
		w.sh.push(ev, -1)
	}
	return nil
}

// maxShards bounds the tournament width: beyond this the n-way head
// scan per pop costs more than the shallower sifts save.
const maxShards = 64

// Shards reports the configured shard count (1 = single global heap).
func (w *World) Shards() int {
	if w.sh == nil {
		return 1
	}
	return len(w.sh.shards)
}

// runSharded is Run over the sharded queue: pop the tournament winner,
// fire, repeat — the merged (at, seq) order.
func (w *World) runSharded(until time.Duration) int {
	n := 0
	for {
		s := w.sh.next()
		if s < 0 || w.sh.shards[s].evs[0].at > until {
			break
		}
		ev := w.sh.shards[s].pop()
		w.now = ev.at
		ev.fire()
		n++
		if w.obs != nil {
			w.obs.step(w.now)
		}
	}
	if w.obs != nil {
		w.obs.flush(w.now)
	}
	return n
}

// runAllSharded is RunAll over the sharded queue.
func (w *World) runAllSharded(maxEvents int) int {
	n := 0
	for {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		s := w.sh.next()
		if s < 0 {
			break
		}
		ev := w.sh.shards[s].pop()
		w.now = ev.at
		ev.fire()
		n++
		if w.obs != nil {
			w.obs.step(w.now)
		}
	}
	if w.obs != nil {
		w.obs.flush(w.now)
	}
	return n
}
