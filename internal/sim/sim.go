// Package sim is a deterministic discrete-event simulator: a virtual
// clock, an event heap, seeded randomness, and a message-passing network
// with a configurable per-hop latency model and online/offline delivery
// semantics.
//
// All of the paper's experiments execute on this engine. Determinism is
// a design goal (DESIGN.md §5): the world is single-threaded and events
// with equal timestamps fire in scheduling order, so a (trace, seed)
// pair regenerates every figure bit-identically.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// World is the simulation universe: clock, event queue, and RNG.
// Create one with NewWorld; the zero value is not usable.
type World struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
}

// NewWorld creates a world at time zero with a deterministic RNG.
func NewWorld(seed int64) *World {
	return &World{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.now }

// Rand returns the world's deterministic random source.
func (w *World) Rand() *rand.Rand { return w.rng }

// At schedules fn to run at virtual time at. Times in the past run at
// the current instant (never before already-queued same-time events).
func (w *World) At(at time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if at < w.now {
		at = w.now
	}
	w.seq++
	heap.Push(&w.events, &event{at: at, seq: w.seq, fn: fn})
}

// After schedules fn to run d from now.
func (w *World) After(d time.Duration, fn func()) { w.At(w.now+d, fn) }

// Every schedules fn to run now+offset, then every period thereafter,
// until stop returns true (checked before each run). period must be
// positive.
func (w *World) Every(offset, period time.Duration, stop func() bool, fn func()) error {
	if period <= 0 {
		return fmt.Errorf("sim: period must be positive, got %v", period)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil periodic function")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		w.After(period, tick)
	}
	w.After(offset, tick)
	return nil
}

// Run processes all events with timestamp <= until, advancing the clock
// event by event, and leaves the clock at until. It returns the number
// of events processed.
func (w *World) Run(until time.Duration) int {
	n := 0
	for len(w.events) > 0 && w.events[0].at <= until {
		ev := heap.Pop(&w.events).(*event)
		w.now = ev.at
		ev.fn()
		n++
	}
	if until > w.now {
		w.now = until
	}
	return n
}

// RunAll drains the event queue completely. Periodic schedules created
// with Every never drain; use Run with a horizon for those. maxEvents
// bounds runaway execution (<= 0 means no bound). It returns the number
// of events processed.
func (w *World) RunAll(maxEvents int) int {
	n := 0
	for len(w.events) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		ev := heap.Pop(&w.events).(*event)
		w.now = ev.at
		ev.fn()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (w *World) Pending() int { return len(w.events) }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// LatencyModel samples one-way message latencies.
type LatencyModel interface {
	// Sample draws one latency using the provided RNG.
	Sample(rng *rand.Rand) time.Duration
}

// UniformLatency samples uniformly from [Min, Max], the paper's
// per-virtual-hop model ("selected uniformly at random from the
// interval [20ms, 80ms]").
type UniformLatency struct {
	Min time.Duration
	Max time.Duration
}

var _ LatencyModel = UniformLatency{}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// FixedLatency always returns the same latency; handy in tests.
type FixedLatency time.Duration

var _ LatencyModel = FixedLatency(0)

// Sample implements LatencyModel.
func (f FixedLatency) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// PaperLatency is the paper's U[20ms, 80ms] virtual-hop model.
func PaperLatency() LatencyModel {
	return UniformLatency{Min: 20 * time.Millisecond, Max: 80 * time.Millisecond}
}
