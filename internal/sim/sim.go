// Package sim is a deterministic discrete-event simulator: a virtual
// clock, an event heap, seeded randomness, and a message-passing network
// with a configurable per-hop latency model and online/offline delivery
// semantics.
//
// All of the paper's experiments execute on this engine. Determinism is
// a design goal (DESIGN.md §5): by default the world is single-threaded
// and events with equal timestamps fire in scheduling order, so a
// (trace, seed) pair regenerates every figure bit-identically.
//
// Worlds upgraded with SetShards + SetParallel execute under the
// conservative-window thread-parallel engine (parallel.go): per-shard
// worker threads drain their own heaps inside lookahead-bounded windows.
// That engine keeps a relaxed determinism contract — bit-identical for a
// fixed (trace, seed, shards, lookahead) across repeated runs and any
// GOMAXPROCS, but a different canonical order than the serial engine.
// See DESIGN.md §14.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"avmem/internal/ids"
)

// World is the simulation universe: clock, event queue, and RNG.
// Create one with NewWorld; the zero value is not usable.
type World struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	seed   int64
	rng    *rand.Rand
	// sh, when non-nil, replaces the single global heap with per-shard
	// heaps merged in (at, seq) order (SetShards; shard.go). The merged
	// schedule is identical either way — sharding changes the queue's
	// shape, never its order.
	sh *shardedQueue
	// par, when non-nil, is the conservative-window thread-parallel
	// executor (SetParallel; parallel.go). The shard heaps become lanes,
	// the global heap keeps coordinator-context events, and sequence
	// numbers carry a context tag — a different (still deterministic)
	// canonical order than the serial engines.
	par *parallelExec
	// obs, when non-nil, is the metrics instrumentation installed by
	// Instrument (instrument.go). Determinism-neutral: the run loops
	// only record what they already computed.
	obs *simObs
}

// NewWorld creates a world at time zero with a deterministic RNG.
func NewWorld(seed int64) *World {
	return &World{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.now }

// Rand returns the world's deterministic random source.
func (w *World) Rand() *rand.Rand { return w.rng }

// At schedules fn to run at virtual time at. Times in the past run at
// the current instant (never before already-queued same-time events).
// In a parallel world, At is coordinator-context: it may only be called
// while the world is quiesced or from a global/deferred callback, never
// from lane code inside a window (lane code uses AtHost).
func (w *World) At(at time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if at < w.now {
		at = w.now
	}
	if w.par != nil {
		w.events.push(event{at: at, seq: w.globalSeq(), fn: fn})
		return
	}
	w.seq++
	ev := event{at: at, seq: w.seq, fn: fn}
	if w.sh != nil {
		w.sh.push(ev, -1)
		return
	}
	w.events.push(ev)
}

// atDelivery schedules a network delivery as a value event: the heap
// entry carries the message inline instead of a per-send closure, which
// removes the dominant allocation of a gossip-heavy run (one closure
// per Network.Send). Ordering is identical to At — same (at, seq) key,
// same push order. host is the target's dense host index when the
// sender knows it (sharded worlds use it to land the event in the
// owning shard's heap), or -1.
func (w *World) atDelivery(at time.Duration, n *Network, from, to ids.NodeID, msg any, host int32) {
	if at < w.now {
		at = w.now
	}
	w.seq++
	ev := event{at: at, seq: w.seq, net: n, from: from, to: to, msg: msg}
	if w.sh != nil {
		w.sh.push(ev, host)
		return
	}
	w.events.push(ev)
}

// After schedules fn to run d from now.
func (w *World) After(d time.Duration, fn func()) { w.At(w.now+d, fn) }

// Every schedules fn to run now+offset, then every period thereafter,
// until stop returns true (checked before each run). period must be
// positive.
func (w *World) Every(offset, period time.Duration, stop func() bool, fn func()) error {
	if period <= 0 {
		return fmt.Errorf("sim: period must be positive, got %v", period)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil periodic function")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		w.After(period, tick)
	}
	w.After(offset, tick)
	return nil
}

// Run processes all events with timestamp <= until, advancing the clock
// event by event, and leaves the clock at until. It returns the number
// of events processed.
func (w *World) Run(until time.Duration) int {
	if w.par != nil {
		return w.runParallel(until, 0)
	}
	if w.sh != nil {
		n := w.runSharded(until)
		if until > w.now {
			w.now = until
		}
		return n
	}
	n := 0
	for len(w.events.evs) > 0 && w.events.evs[0].at <= until {
		ev := w.events.pop()
		w.now = ev.at
		ev.fire()
		n++
		if w.obs != nil {
			w.obs.step(w.now)
		}
	}
	if until > w.now {
		w.now = until
	}
	if w.obs != nil {
		w.obs.flush(w.now)
	}
	return n
}

// RunAll drains the event queue completely. Periodic schedules created
// with Every never drain; use Run with a horizon for those. maxEvents
// bounds runaway execution (<= 0 means no bound). It returns the number
// of events processed.
func (w *World) RunAll(maxEvents int) int {
	if w.par != nil {
		return w.runParallel(maxDuration, maxEvents)
	}
	if w.sh != nil {
		return w.runAllSharded(maxEvents)
	}
	n := 0
	for len(w.events.evs) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		ev := w.events.pop()
		w.now = ev.at
		ev.fire()
		n++
		if w.obs != nil {
			w.obs.step(w.now)
		}
	}
	if w.obs != nil {
		w.obs.flush(w.now)
	}
	return n
}

// Pending returns the number of queued events.
func (w *World) Pending() int {
	if w.sh != nil {
		// A parallel world keeps coordinator-context events in the
		// global heap alongside the lane heaps (empty otherwise).
		return w.sh.pending() + len(w.events.evs)
	}
	return len(w.events.evs)
}

// event is a value type: the queue stores events inline, so scheduling
// neither boxes through an interface nor allocates per event (only the
// backing array grows, amortized). Two shapes share the struct: a
// closure event (fn set) and a network delivery (net set), which keeps
// the per-send payload inline instead of closed over.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()

	net      *Network
	from, to ids.NodeID
	msg      any
}

// fire executes the event.
func (ev *event) fire() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.net.deliver(ev.from, ev.to, ev.msg)
}

// eventHeap is an index-based 4-ary min-heap ordered by (at, seq):
// earliest deadline first, FIFO among equal deadlines. A 4-ary layout
// halves the tree depth of a binary heap, which matters on push — the
// dominant operation in a periodic-reschedule workload, where a pushed
// event almost always carries a deadline at least one protocol period in
// the future and therefore settles after a single parent comparison (the
// fast path BenchmarkSchedulerReschedule measures).
type eventHeap struct {
	evs []event
}

// less orders events by (at, seq).
func (h *eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up from the last leaf.
func (h *eventHeap) push(ev event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(&h.evs[i], &h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

// pop removes and returns the minimum event, sifting the displaced last
// leaf down. The vacated slot is cleared so the closure or message can
// be collected.
func (h *eventHeap) pop() event {
	evs := h.evs
	top := evs[0]
	last := len(evs) - 1
	evs[0] = evs[last]
	evs[last] = event{}
	evs = evs[:last]
	h.evs = evs
	// Sift down: promote the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h.less(&evs[c], &evs[min]) {
				min = c
			}
		}
		if !h.less(&evs[min], &evs[i]) {
			break
		}
		evs[i], evs[min] = evs[min], evs[i]
		i = min
	}
	return top
}

// LatencyModel samples one-way message latencies.
type LatencyModel interface {
	// Sample draws one latency using the provided RNG.
	Sample(rng *rand.Rand) time.Duration
}

// UniformLatency samples uniformly from [Min, Max], the paper's
// per-virtual-hop model ("selected uniformly at random from the
// interval [20ms, 80ms]").
type UniformLatency struct {
	Min time.Duration
	Max time.Duration
}

var _ LatencyModel = UniformLatency{}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// FixedLatency always returns the same latency; handy in tests.
type FixedLatency time.Duration

var _ LatencyModel = FixedLatency(0)

// Sample implements LatencyModel.
func (f FixedLatency) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// PaperLatency is the paper's U[20ms, 80ms] virtual-hop model.
func PaperLatency() LatencyModel {
	return UniformLatency{Min: 20 * time.Millisecond, Max: 80 * time.Millisecond}
}
