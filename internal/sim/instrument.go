package sim

import (
	"fmt"
	"time"

	"avmem/internal/obs"
)

// This file wires the engine into the obs metrics registry. The
// instrumentation is determinism-neutral by construction: it records
// values the engine already computed (event counts, virtual
// timestamps, outbox sizes) into atomic instruments, and its only
// wall-clock reads time worker drains — which cannot influence event
// order. Counter updates commute, so totals are identical regardless
// of thread interleaving. An uninstrumented world (w.obs == nil) pays
// one predictable nil check per event.

// obsFlushEvery is how many fired events the serial loops batch
// locally before flushing to the shared atomic counter. Batching keeps
// the per-event cost to an increment-and-compare; the live /metrics
// and -progress readers see totals at most one batch stale.
const obsFlushEvery = 4096

// simObs is the engine's instrument set. Scalar batch state is owned
// by whichever goroutine runs the event loop (coordinator in parallel
// worlds); everything shared is an atomic obs instrument.
type simObs struct {
	events *obs.Counter // sim_events_total
	vtime  *obs.Gauge   // sim_virtual_time_seconds
	batch  int          // serial-loop local event count since last flush

	serialSteps  *obs.Counter   // sim_parallel_serial_steps_total
	disabled     *obs.Counter   // sim_parallel_disabled_total
	windows      *obs.Counter   // sim_parallel_windows_total
	windowEvents *obs.Histogram // sim_parallel_window_lane_events
	outboxFlush  *obs.Histogram // sim_parallel_outbox_flush_events
	laneEvents   []*obs.Counter // sim_lane_events_total{lane="i"}
	laneStallNs  []*obs.Counter // sim_lane_stall_nanoseconds_total{lane="i"}
	laneBusyNs   []*obs.Counter // sim_lane_busy_nanoseconds_total{lane="i"}
}

// Instrument registers the engine's metrics in reg and starts
// recording into them. Call it after SetShards/SetParallel (lane
// instruments are sized from the configured topology) and before the
// first Run. A nil registry leaves the world uninstrumented.
func (w *World) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o := &simObs{
		events: reg.Counter("sim_events_total"),
		vtime:  reg.Gauge("sim_virtual_time_seconds"),
	}
	if w.par != nil {
		o.serialSteps = reg.Counter("sim_parallel_serial_steps_total")
		o.disabled = reg.Counter("sim_parallel_disabled_total")
		o.windows = reg.Counter("sim_parallel_windows_total")
		o.windowEvents = reg.Histogram("sim_parallel_window_lane_events",
			1, 4, 16, 64, 256, 1024, 4096)
		o.outboxFlush = reg.Histogram("sim_parallel_outbox_flush_events",
			1, 4, 16, 64, 256, 1024, 4096)
		nl := len(w.par.lanes)
		o.laneEvents = make([]*obs.Counter, nl)
		o.laneStallNs = make([]*obs.Counter, nl)
		o.laneBusyNs = make([]*obs.Counter, nl)
		for i := 0; i < nl; i++ {
			o.laneEvents[i] = reg.Counter(fmt.Sprintf(`sim_lane_events_total{lane="%d"}`, i))
			o.laneStallNs[i] = reg.Counter(fmt.Sprintf(`sim_lane_stall_nanoseconds_total{lane="%d"}`, i))
			o.laneBusyNs[i] = reg.Counter(fmt.Sprintf(`sim_lane_busy_nanoseconds_total{lane="%d"}`, i))
		}
	}
	w.obs = o
}

// step accounts one event fired by a serial loop.
func (o *simObs) step(now time.Duration) {
	o.batch++
	if o.batch >= obsFlushEvery {
		o.flush(now)
	}
}

// flush publishes the local batch and the clock to the shared
// instruments. Called at batch boundaries and on loop exit.
func (o *simObs) flush(now time.Duration) {
	if o.batch > 0 {
		o.events.Add(int64(o.batch))
		o.batch = 0
	}
	o.vtime.Set(now.Seconds())
}

// windowDone accounts one finished parallel window: per-lane event
// counts and per-lane busy/stall wall time (stall = window wall time
// the lane spent waiting at the barrier rather than draining). Called
// by the coordinator with the lanes quiesced, before the processed
// counters are folded and reset.
func (o *simObs) windowDone(now time.Duration, lanes []lane, wallNs int64) {
	total := int64(0)
	for i := range lanes {
		p := int64(lanes[i].processed)
		total += p
		o.laneEvents[i].Add(p)
		o.windowEvents.Observe(float64(p))
		busy := lanes[i].drainNs
		lanes[i].drainNs = 0
		o.laneBusyNs[i].Add(busy)
		if wallNs > busy {
			o.laneStallNs[i].Add(wallNs - busy)
		}
	}
	o.windows.Inc()
	o.events.Add(total)
	o.vtime.Set(now.Seconds())
}
