package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	w := NewWorld(1)
	var order []int
	w.At(30*time.Millisecond, func() { order = append(order, 3) })
	w.At(10*time.Millisecond, func() { order = append(order, 1) })
	w.At(20*time.Millisecond, func() { order = append(order, 2) })
	if n := w.Run(time.Second); n != 3 {
		t.Fatalf("Run processed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	w := NewWorld(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		w.At(time.Millisecond, func() { order = append(order, i) })
	}
	w.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	w := NewWorld(1)
	var seen time.Duration
	w.At(42*time.Millisecond, func() { seen = w.Now() })
	w.Run(100 * time.Millisecond)
	if seen != 42*time.Millisecond {
		t.Errorf("Now inside event = %v, want 42ms", seen)
	}
	if w.Now() != 100*time.Millisecond {
		t.Errorf("Now after Run = %v, want 100ms", w.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	w := NewWorld(1)
	fired := false
	w.At(2*time.Second, func() { fired = true })
	w.Run(time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if w.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", w.Pending())
	}
	w.Run(3 * time.Second)
	if !fired {
		t.Error("event never fired")
	}
}

func TestPastEventRunsNow(t *testing.T) {
	w := NewWorld(1)
	w.Run(time.Second)
	fired := false
	w.At(0, func() { fired = true })
	w.Run(time.Second) // horizon equals now
	if !fired {
		t.Error("past-scheduled event did not run")
	}
	if w.Now() != time.Second {
		t.Errorf("clock moved backwards: %v", w.Now())
	}
}

func TestNilEventIgnored(t *testing.T) {
	w := NewWorld(1)
	w.At(time.Millisecond, nil)
	if w.Pending() != 0 {
		t.Error("nil event queued")
	}
}

func TestAfter(t *testing.T) {
	w := NewWorld(1)
	var at time.Duration
	w.At(time.Second, func() {
		w.After(500*time.Millisecond, func() { at = w.Now() })
	})
	w.Run(10 * time.Second)
	if at != 1500*time.Millisecond {
		t.Errorf("After fired at %v, want 1.5s", at)
	}
}

func TestEvery(t *testing.T) {
	w := NewWorld(1)
	var ticks []time.Duration
	stop := func() bool { return len(ticks) >= 3 }
	if err := w.Every(100*time.Millisecond, time.Second, stop, func() {
		ticks = append(ticks, w.Now())
	}); err != nil {
		t.Fatal(err)
	}
	w.Run(time.Minute)
	want := []time.Duration{100 * time.Millisecond, 1100 * time.Millisecond, 2100 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryValidation(t *testing.T) {
	w := NewWorld(1)
	if err := w.Every(0, 0, nil, func() {}); err == nil {
		t.Error("want error for zero period")
	}
	if err := w.Every(0, time.Second, nil, nil); err == nil {
		t.Error("want error for nil fn")
	}
}

func TestRunAllBound(t *testing.T) {
	w := NewWorld(1)
	// Self-perpetuating event chain.
	var tick func()
	n := 0
	tick = func() { n++; w.After(time.Millisecond, tick) }
	w.After(0, tick)
	processed := w.RunAll(50)
	if processed != 50 || n != 50 {
		t.Errorf("RunAll processed %d (%d ticks), want 50", processed, n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		w := NewWorld(99)
		lat := PaperLatency()
		var out []time.Duration
		for i := 0; i < 100; i++ {
			out = append(out, lat.Sample(w.Rand()))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	w := NewWorld(5)
	u := UniformLatency{Min: 20 * time.Millisecond, Max: 80 * time.Millisecond}
	seenLow, seenHigh := false, false
	for i := 0; i < 10000; i++ {
		l := u.Sample(w.Rand())
		if l < u.Min || l > u.Max {
			t.Fatalf("latency %v out of [%v,%v]", l, u.Min, u.Max)
		}
		if l < 30*time.Millisecond {
			seenLow = true
		}
		if l > 70*time.Millisecond {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Error("uniform latency not spanning its range")
	}
}

func TestUniformLatencyDegenerate(t *testing.T) {
	w := NewWorld(1)
	u := UniformLatency{Min: 50 * time.Millisecond, Max: 50 * time.Millisecond}
	if got := u.Sample(w.Rand()); got != 50*time.Millisecond {
		t.Errorf("degenerate uniform = %v", got)
	}
	inverted := UniformLatency{Min: 80 * time.Millisecond, Max: 20 * time.Millisecond}
	if got := inverted.Sample(w.Rand()); got != 80*time.Millisecond {
		t.Errorf("inverted uniform = %v, want Min", got)
	}
}

func TestFixedLatency(t *testing.T) {
	if got := FixedLatency(time.Second).Sample(nil); got != time.Second {
		t.Errorf("FixedLatency = %v", got)
	}
}
