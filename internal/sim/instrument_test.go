package sim

import (
	"testing"
	"time"

	"avmem/internal/obs"
)

// TestInstrumentSerialCounts pins the serial loop's event accounting:
// the events counter equals the Run return value and the virtual-time
// gauge tracks the clock.
func TestInstrumentSerialCounts(t *testing.T) {
	w := NewWorld(1)
	reg := obs.NewRegistry()
	w.Instrument(reg)
	fired := 0
	for i := 0; i < 10; i++ {
		w.At(time.Duration(i)*time.Second, func() { fired++ })
	}
	n := w.Run(time.Minute)
	if n != 10 || fired != 10 {
		t.Fatalf("n=%d fired=%d", n, fired)
	}
	if got := reg.Counter("sim_events_total").Value(); got != 10 {
		t.Fatalf("sim_events_total=%d, want 10", got)
	}
	if got := reg.Gauge("sim_virtual_time_seconds").Value(); got != 60 {
		t.Fatalf("sim_virtual_time_seconds=%v, want 60", got)
	}
}

// TestInstrumentNeutralTranscript is the engine-level determinism
// guarantee: an instrumented parallel world produces exactly the
// transcript of an uninstrumented one.
func TestInstrumentNeutralTranscript(t *testing.T) {
	want := runPingTranscript(t, 7, 8, 4)

	w, tr := parallelPingWorld(t, 7, 8, 4)
	defer w.Close()
	reg := obs.NewRegistry()
	w.Instrument(reg)
	n := w.Run(30 * time.Second)
	if !equalTranscripts(*tr, want) {
		t.Fatal("instrumentation changed the event transcript")
	}

	// The window accounting must agree with the run: lane events plus
	// serial steps equal the total, and the total matches Run's count.
	if got := reg.Counter("sim_events_total").Value(); got != int64(n) {
		t.Fatalf("sim_events_total=%d, Run returned %d", got, n)
	}
	if reg.Counter("sim_parallel_windows_total").Value() == 0 {
		t.Fatal("no parallel windows recorded")
	}
	var lanes int64
	for i := 0; i < 8; i++ {
		lanes += reg.Counter(laneCounterName("sim_lane_events_total", i)).Value()
	}
	serial := reg.Counter("sim_parallel_serial_steps_total").Value()
	if lanes+serial != int64(n) {
		t.Fatalf("lane events %d + serial %d != total %d", lanes, serial, n)
	}
}

func laneCounterName(fam string, lane int) string {
	return fam + `{lane="` + string(rune('0'+lane)) + `"}`
}

// TestInstrumentDisabledFallbackCounted pins the serial-fallback trip
// counter.
func TestInstrumentDisabledFallbackCounted(t *testing.T) {
	w, _ := parallelPingWorld(t, 3, 4, 2)
	defer w.Close()
	reg := obs.NewRegistry()
	w.Instrument(reg)
	w.Run(2 * time.Second)
	w.DisableParallel()
	w.DisableParallel() // idempotent: only the first transition counts
	w.Run(4 * time.Second)
	if got := reg.Counter("sim_parallel_disabled_total").Value(); got != 1 {
		t.Fatalf("sim_parallel_disabled_total=%d, want 1", got)
	}
}
