package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"avmem/internal/ids"
)

// fireLog runs a deterministic pseudo-random schedule — timers and
// network sends, with deliberate same-timestamp collisions — on a world
// with the given shard count and returns the observed fire order.
func fireLog(t *testing.T, shards int) []string {
	t.Helper()
	w := NewWorld(42)
	if err := w.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	hosts := make([]ids.NodeID, 16)
	for i := range hosts {
		hosts[i] = ids.NodeID(fmt.Sprintf("h%02d", i))
	}
	net := NewNetwork(w, UniformLatency{Min: 0, Max: 10 * time.Millisecond}, nil, 0)
	net.Bind(hosts, func(int) bool { return true })
	var log []string
	for i, id := range hosts {
		i, id := i, id
		net.Register(id, func(from ids.NodeID, msg any) {
			log = append(log, fmt.Sprintf("deliver h%02d<-%s %v @%v", i, from, msg, w.Now()))
		})
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		i := i
		// Coarse timestamps force plenty of (at) ties; order among them
		// must follow scheduling order (seq) regardless of shard count.
		at := time.Duration(rng.Intn(20)) * time.Millisecond
		switch i % 3 {
		case 0:
			w.At(at, func() { log = append(log, fmt.Sprintf("timer %d @%v", i, w.Now())) })
		case 1:
			from, to := hosts[rng.Intn(16)], hosts[rng.Intn(16)]
			w.At(at, func() { net.Send(from, to, i) })
		case 2:
			from, to := hosts[rng.Intn(16)], hosts[rng.Intn(16)]
			w.At(at, func() {
				net.SendCall(from, to, i, func(ok bool) {
					log = append(log, fmt.Sprintf("result %d %v @%v", i, ok, w.Now()))
				})
			})
		}
	}
	w.Run(time.Second)
	return log
}

// TestShardedOrderIdentical pins the tentpole determinism claim: the
// merged (at, seq) schedule is bit-identical for every shard count,
// including the unsharded engine.
func TestShardedOrderIdentical(t *testing.T) {
	want := fireLog(t, 1)
	if len(want) == 0 {
		t.Fatal("empty fire log")
	}
	for _, n := range []int{2, 3, 8, 64} {
		got := fireLog(t, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d diverged from unsharded order (len %d vs %d)", n, len(got), len(want))
		}
	}
}

// TestShardedZeroLatencyCrossShard exercises the edge the shard barrier
// must get right: zero-latency sends between hosts owned by different
// shards still deliver at the send instant, in send (seq) order.
func TestShardedZeroLatencyCrossShard(t *testing.T) {
	w := NewWorld(1)
	if err := w.SetShards(4); err != nil {
		t.Fatal(err)
	}
	hosts := []ids.NodeID{"a", "b", "c", "d", "e"}
	net := NewNetwork(w, FixedLatency(0), nil, 0)
	net.Bind(hosts, func(int) bool { return true })
	var got []string
	for i, id := range hosts {
		i := i
		net.Register(id, func(from ids.NodeID, msg any) {
			got = append(got, fmt.Sprintf("%d<-%v@%v", i, msg, w.Now()))
		})
	}
	w.At(5*time.Millisecond, func() {
		// hosts 0..4 map to shards 0..3,0 under shards=4: every send
		// below crosses a shard boundary except the last.
		net.Send(hosts[0], hosts[1], "x")
		net.Send(hosts[1], hosts[2], "y")
		net.Send(hosts[3], hosts[4], "z")
	})
	w.Run(time.Second)
	want := []string{"1<-x@5ms", "2<-y@5ms", "4<-z@5ms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestSetShardsMigration re-layouts a half-scheduled world and checks
// the schedule survives: switching 1 → 8 → 1 shards mid-stream never
// reorders queued events.
func TestSetShardsMigration(t *testing.T) {
	run := func(migrate bool) []int {
		w := NewWorld(3)
		var got []int
		for i := 0; i < 100; i++ {
			i := i
			w.At(time.Duration(i%10)*time.Millisecond, func() { got = append(got, i) })
		}
		if migrate {
			if err := w.SetShards(8); err != nil {
				t.Fatal(err)
			}
		}
		w.Run(4 * time.Millisecond)
		if migrate {
			if err := w.SetShards(1); err != nil {
				t.Fatal(err)
			}
			if w.Shards() != 1 {
				t.Fatalf("Shards() = %d after reset", w.Shards())
			}
		}
		w.Run(time.Second)
		return got
	}
	if want, got := run(false), run(true); !reflect.DeepEqual(got, want) {
		t.Fatalf("migration reordered events")
	}
}

// TestSetShardsBounds rejects absurd widths.
func TestSetShardsBounds(t *testing.T) {
	w := NewWorld(1)
	if err := w.SetShards(maxShards + 1); err == nil {
		t.Fatal("want error for oversized shard count")
	}
	if err := w.SetShards(0); err != nil || w.Shards() != 1 {
		t.Fatalf("SetShards(0): err=%v shards=%d", err, w.Shards())
	}
}
