package sim

import (
	"testing"
	"time"

	"avmem/internal/ids"
)

func TestSendDelivers(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(50*time.Millisecond), nil, 0)
	var got any
	var gotFrom ids.NodeID
	var at time.Duration
	n.Register("b", func(from ids.NodeID, msg any) {
		got, gotFrom, at = msg, from, w.Now()
	})
	n.Send("a", "b", "hello")
	w.Run(time.Second)
	if got != "hello" || gotFrom != "a" {
		t.Errorf("delivery = (%v, %v)", got, gotFrom)
	}
	if at != 50*time.Millisecond {
		t.Errorf("delivered at %v, want 50ms", at)
	}
	if s := n.Stats(); s.Sent != 1 || s.Delivered != 1 || s.Dropped != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSendToOfflineDrops(t *testing.T) {
	w := NewWorld(1)
	online := map[ids.NodeID]bool{"a": true}
	n := NewNetwork(w, FixedLatency(time.Millisecond), func(id ids.NodeID) bool { return online[id] }, 0)
	delivered := false
	n.Register("b", func(ids.NodeID, any) { delivered = true })
	n.Send("a", "b", "x")
	w.Run(time.Second)
	if delivered {
		t.Error("message delivered to offline node")
	}
	if s := n.Stats(); s.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 drop", s)
	}
}

func TestSendToUnregisteredDrops(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(time.Millisecond), nil, 0)
	n.Send("a", "ghost", "x")
	w.Run(time.Second)
	if s := n.Stats(); s.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 drop", s)
	}
}

func TestOnlineAtDeliveryTimeMatters(t *testing.T) {
	w := NewWorld(1)
	up := true
	n := NewNetwork(w, FixedLatency(100*time.Millisecond), func(ids.NodeID) bool { return up }, 0)
	delivered := false
	n.Register("b", func(ids.NodeID, any) { delivered = true })
	n.Send("a", "b", "x") // in flight for 100ms
	w.At(50*time.Millisecond, func() { up = false })
	w.Run(time.Second)
	if delivered {
		t.Error("message delivered despite target going offline mid-flight")
	}
}

func TestSendCallAck(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(30*time.Millisecond), nil, 0)
	n.Register("b", func(ids.NodeID, any) {})
	var result *bool
	var at time.Duration
	n.SendCall("a", "b", "x", func(ok bool) { result = &ok; at = w.Now() })
	w.Run(time.Second)
	if result == nil || !*result {
		t.Fatal("want ack true")
	}
	if at != 60*time.Millisecond { // out + back
		t.Errorf("ack at %v, want 60ms", at)
	}
}

func TestSendCallFailureAfterTimeout(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(30*time.Millisecond), nil, 200*time.Millisecond)
	// "b" never registered → offline.
	var result *bool
	var at time.Duration
	n.SendCall("a", "b", "x", func(ok bool) { result = &ok; at = w.Now() })
	w.Run(time.Second)
	if result == nil || *result {
		t.Fatal("want nack")
	}
	if at != 200*time.Millisecond {
		t.Errorf("nack at %v, want ackTimeout 200ms", at)
	}
}

func TestSendCallNilCallback(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(time.Millisecond), nil, 0)
	n.Register("b", func(ids.NodeID, any) {})
	n.SendCall("a", "b", "x", nil) // must not panic
	n.SendCall("a", "ghost", "x", nil)
	w.Run(time.Second)
}

func TestRegisterNilUnregisters(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(time.Millisecond), nil, 0)
	delivered := 0
	n.Register("b", func(ids.NodeID, any) { delivered++ })
	n.Send("a", "b", "1")
	w.Run(time.Second)
	n.Register("b", nil)
	n.Send("a", "b", "2")
	w.Run(2 * time.Second)
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestResetStats(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, FixedLatency(time.Millisecond), nil, 0)
	n.Register("b", func(ids.NodeID, any) {})
	n.Send("a", "b", "x")
	w.Run(time.Second)
	n.ResetStats()
	if s := n.Stats(); s != (NetworkStats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestNetworkDefaults(t *testing.T) {
	w := NewWorld(1)
	n := NewNetwork(w, nil, nil, 0)
	if !n.Online("anyone") {
		t.Error("default online func should return true")
	}
	got := false
	n.Register("b", func(ids.NodeID, any) { got = true })
	n.Send("a", "b", "x")
	w.Run(time.Second)
	if !got {
		t.Error("default latency model failed to deliver")
	}
}
