package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"avmem/internal/ids"
)

// parallelPingWorld builds a sharded+parallel world with a bound host
// universe and lane-affine periodic traffic: every host pings its
// successor each period through the network (cross-lane by
// construction), and every delivery appends to a shared transcript from
// the receiving lane's Defer (barrier-serialized, so the transcript
// order is part of the deterministic contract).
func parallelPingWorld(t *testing.T, seed int64, shards, threads int) (*World, *[]string) {
	t.Helper()
	w := NewWorld(seed)
	if err := w.SetShards(shards); err != nil {
		t.Fatal(err)
	}
	if threads > 1 {
		if err := w.SetParallel(threads, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	const n = 24
	hosts := make([]ids.NodeID, n)
	for i := range hosts {
		hosts[i] = ids.Synthetic(i)
	}
	net := NewNetwork(w, PaperLatency(), nil, 0)
	net.Bind(hosts, func(int) bool { return true })
	transcript := &[]string{}
	for i := range hosts {
		i := i
		net.Register(hosts[i], func(from ids.NodeID, msg any) {
			w.Defer(int32(i), func() {
				*transcript = append(*transcript,
					fmt.Sprintf("%v %s->%s %v", w.Now(), from, hosts[i], msg))
			})
			// Every third ping answers with a lane-RNG-jittered call.
			if msg.(int)%3 == 0 {
				d := time.Duration(w.LaneRand(int32(i)).Intn(50)) * time.Millisecond
				w.AfterHost(d, int32(i), func() {
					net.Send(hosts[i], from, -1)
				})
			}
		})
	}
	for i := range hosts {
		i := i
		k := 0
		err := w.EveryHost(time.Duration(i)*7*time.Millisecond, 250*time.Millisecond,
			int32(i), nil, func() {
				k++
				net.Send(hosts[i], hosts[(i+1)%n], k)
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	return w, transcript
}

// runPingTranscript runs the ping world for 30s of virtual time and
// returns the transcript.
func runPingTranscript(t *testing.T, seed int64, shards, threads int) []string {
	t.Helper()
	w, tr := parallelPingWorld(t, seed, shards, threads)
	defer w.Close()
	w.Run(30 * time.Second)
	return *tr
}

func equalTranscripts(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelReproducible pins the relaxed determinism contract at the
// engine level: a fixed (seed, shards, lookahead) produces an identical
// event transcript across repeated runs, any worker-thread count >= 2,
// and any GOMAXPROCS.
func TestParallelReproducible(t *testing.T) {
	want := runPingTranscript(t, 7, 8, 2)
	if len(want) == 0 {
		t.Fatal("empty transcript")
	}
	if got := runPingTranscript(t, 7, 8, 2); !equalTranscripts(got, want) {
		t.Fatal("repeated run diverged")
	}
	if got := runPingTranscript(t, 7, 8, 8); !equalTranscripts(got, want) {
		t.Fatal("threads=8 diverged from threads=2")
	}
	old := runtime.GOMAXPROCS(1)
	got := runPingTranscript(t, 7, 8, 4)
	runtime.GOMAXPROCS(old)
	if !equalTranscripts(got, want) {
		t.Fatal("GOMAXPROCS=1 diverged")
	}
}

// TestParallelExecutesWindows makes sure the contract test above
// actually exercises window execution rather than the serial fallback.
func TestParallelExecutesWindows(t *testing.T) {
	w, _ := parallelPingWorld(t, 7, 8, 2)
	defer w.Close()
	w.Run(30 * time.Second)
	if w.ParallelWindows() == 0 {
		t.Fatal("no parallel windows executed")
	}
}

// TestParallelDisableFallsBackDeterministically pins that disabling
// windows mid-run keeps the run going (serial merged order) and stops
// window execution.
func TestParallelDisableFallsBackDeterministically(t *testing.T) {
	run := func() ([]string, uint64) {
		w, tr := parallelPingWorld(t, 9, 4, 2)
		defer w.Close()
		w.Run(10 * time.Second)
		w.DisableParallel()
		w.Run(20 * time.Second)
		return *tr, w.ParallelWindows()
	}
	a, wa := run()
	b, wb := run()
	if !equalTranscripts(a, b) {
		t.Fatal("disable-mid-run runs diverged")
	}
	if wa != wb {
		t.Fatalf("window counts diverged: %d vs %d", wa, wb)
	}
	if len(a) == 0 || wa == 0 {
		t.Fatal("test exercised nothing")
	}
}

// TestWorldCloseStopsWorkers pins that Close tears the worker pool down
// completely: the goroutine count returns to its pre-world baseline.
func TestWorldCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	w, _ := parallelPingWorld(t, 3, 8, 4)
	w.Run(5 * time.Second)
	if w.ParallelWindows() == 0 {
		t.Fatal("no windows, workers never spawned")
	}
	w.Close()
	w.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after Close: %d before, %d after", before, got)
	}
}

// TestSetParallelValidation pins the configuration errors.
func TestSetParallelValidation(t *testing.T) {
	w := NewWorld(1)
	if err := w.SetParallel(4, 20*time.Millisecond); err == nil {
		t.Fatal("want error without SetShards")
	}
	if err := w.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if err := w.SetParallel(1, 20*time.Millisecond); err == nil {
		t.Fatal("want error for threads < 2")
	}
	if err := w.SetParallel(4, 0); err == nil {
		t.Fatal("want error for zero lookahead")
	}
	if err := w.SetParallel(4, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := w.SetParallel(4, 20*time.Millisecond); err == nil {
		t.Fatal("want error for double SetParallel")
	}
	if err := w.SetShards(8); err == nil {
		t.Fatal("want error reshaping the queue after SetParallel")
	}
	w2 := NewWorld(1)
	if err := w2.SetShards(2); err != nil {
		t.Fatal(err)
	}
	w2.At(time.Second, func() {})
	if err := w2.SetParallel(2, 20*time.Millisecond); err == nil {
		t.Fatal("want error with events already scheduled")
	}
}

// TestLookaheadOf pins the latency-model lookahead derivation.
func TestLookaheadOf(t *testing.T) {
	if got := LookaheadOf(PaperLatency()); got != 20*time.Millisecond {
		t.Fatalf("PaperLatency lookahead = %v, want 20ms", got)
	}
	if got := LookaheadOf(FixedLatency(5 * time.Millisecond)); got != 5*time.Millisecond {
		t.Fatalf("FixedLatency lookahead = %v, want 5ms", got)
	}
	var unbounded LatencyModel = latencyFunc(func() time.Duration { return 0 })
	if got := LookaheadOf(unbounded); got != 0 {
		t.Fatalf("unbounded model lookahead = %v, want 0", got)
	}
}

// latencyFunc is a minimal LatencyModel without a bound.
type latencyFunc func() time.Duration

func (f latencyFunc) Sample(*rand.Rand) time.Duration { return f() }
