package avdist

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzPDF derives a PDF from arbitrary fuzz bytes: each byte becomes a
// bucket weight. Returns nil when the bytes cannot form a distribution
// (FromWeights rejects them).
func fuzzPDF(data []byte) *PDF {
	if len(data) == 0 || len(data) > 512 {
		return nil
	}
	weights := make([]float64, len(data))
	for i, b := range data {
		weights[i] = float64(b)
	}
	p, err := FromWeights(weights)
	if err != nil {
		return nil
	}
	return p
}

// FuzzQuantile feeds arbitrary bucket weights through the PDF algebra
// and checks the laws every caller leans on: quantiles stay in [0,1]
// and are monotone in q, CDF is the (approximate) inverse, the total
// mass is 1, and sampling never escapes the unit interval.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1}, 0.5)
	f.Add([]byte{0, 0, 255}, 0.0)
	f.Add([]byte{10, 20, 30, 40}, 1.0)
	f.Add([]byte{255, 0, 0, 0, 1}, 0.999)
	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		p := fuzzPDF(data)
		if p == nil {
			return
		}
		const eps = 1e-9
		if m := p.IntervalMass(0, 1); math.Abs(m-1) > 1e-6 {
			t.Fatalf("total mass = %v, want 1", m)
		}
		if mean := p.Mean(); mean < -eps || mean > 1+eps {
			t.Fatalf("Mean = %v outside [0,1]", mean)
		}
		if !math.IsNaN(q) && q >= 0 && q <= 1 {
			v := p.Quantile(q)
			if v < -eps || v > 1+eps {
				t.Fatalf("Quantile(%v) = %v outside [0,1]", q, v)
			}
			// CDF must recover at least q at the quantile's bucket edge
			// (quantiles interpolate inside a bucket, so allow one
			// bucket of slack).
			if c := p.CDF(math.Min(1, v+p.BucketWidth())); c+1e-6 < q {
				t.Fatalf("CDF(Quantile(%v)+w) = %v < q", q, c)
			}
		}
		// Monotonicity across a q grid.
		prev := math.Inf(-1)
		for _, qq := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := p.Quantile(qq)
			if v < prev-eps {
				t.Fatalf("Quantile not monotone: Quantile(%v)=%v < previous %v", qq, v, prev)
			}
			prev = v
		}
		// Sampling is quantile evaluation and must stay in bounds.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 16; i++ {
			if s := p.Sample(rng); s < 0 || s > 1 {
				t.Fatalf("Sample escaped [0,1]: %v", s)
			}
		}
	})
}

// FuzzIntervalMass checks the measure laws on arbitrary intervals:
// non-negative, bounded by total mass, additive at a split point, and
// consistent with CDF.
func FuzzIntervalMass(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 0.2, 0.8)
	f.Add([]byte{5}, 0.0, 1.0)
	f.Add([]byte{9, 9}, 0.7, 0.3)
	f.Fuzz(func(t *testing.T, data []byte, lo, hi float64) {
		p := fuzzPDF(data)
		if p == nil || math.IsNaN(lo) || math.IsNaN(hi) {
			return
		}
		const eps = 1e-6
		m := p.IntervalMass(lo, hi)
		if m < -eps || m > 1+eps {
			t.Fatalf("IntervalMass(%v,%v) = %v outside [0,1]", lo, hi, m)
		}
		if lo <= hi {
			mid := lo + (hi-lo)/2
			split := p.IntervalMass(lo, mid) + p.IntervalMass(mid, hi)
			if math.Abs(split-m) > eps {
				t.Fatalf("IntervalMass not additive: [%v,%v]=%v but split at %v sums to %v", lo, hi, m, mid, split)
			}
			if d := p.CDF(hi) - p.CDF(lo); lo >= 0 && hi <= 1 && math.Abs(d-m) > eps {
				t.Fatalf("CDF difference %v disagrees with IntervalMass %v", d, m)
			}
		}
	})
}
