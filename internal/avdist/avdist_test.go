package avdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromWeightsErrors(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1, 1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"zero total", []float64{0, 0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromWeights(tc.weights); err == nil {
				t.Errorf("FromWeights(%v): want error, got nil", tc.weights)
			}
		})
	}
}

func TestFromWeightsNormalizes(t *testing.T) {
	p, err := FromWeights([]float64{2, 6, 2})
	if err != nil {
		t.Fatal(err)
	}
	mass := p.Mass()
	want := []float64{0.2, 0.6, 0.2}
	for i := range want {
		if !almostEqual(mass[i], want[i], 1e-12) {
			t.Errorf("mass[%d] = %v, want %v", i, mass[i], want[i])
		}
	}
	if !almostEqual(p.CDF(1), 1, 1e-12) {
		t.Errorf("CDF(1) = %v, want 1", p.CDF(1))
	}
}

func TestUniformDensity(t *testing.T) {
	p := Uniform(50)
	for _, a := range []float64{0, 0.25, 0.5, 0.999, 1} {
		if !almostEqual(p.Density(a), 1.0, 1e-9) {
			t.Errorf("uniform Density(%v) = %v, want 1", a, p.Density(a))
		}
	}
}

func TestIntervalMass(t *testing.T) {
	p := Uniform(100)
	tests := []struct {
		lo, hi, want float64
	}{
		{0, 1, 1},
		{0, 0.5, 0.5},
		{0.25, 0.75, 0.5},
		{0.5, 0.5, 0},
		{0.7, 0.2, 0},         // inverted
		{-1, 0.5, 0.5},        // clamped low
		{0.5, 2, 0.5},         // clamped high
		{0.105, 0.115, 0.01},  // sub-bucket interval spanning a boundary
		{0.101, 0.104, 0.003}, // interval within one bucket
	}
	for _, tc := range tests {
		if got := p.IntervalMass(tc.lo, tc.hi); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("IntervalMass(%v,%v) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestIntervalMassNonUniform(t *testing.T) {
	// Buckets: [0,0.25)=0.1, [0.25,0.5)=0.4, [0.5,0.75)=0.4, [0.75,1]=0.1
	p, err := FromWeights([]float64{1, 4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.IntervalMass(0, 0.25); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("mass of first bucket = %v, want 0.1", got)
	}
	if got := p.IntervalMass(0.125, 0.375); !almostEqual(got, 0.05+0.2, 1e-12) {
		t.Errorf("straddling mass = %v, want 0.25", got)
	}
	if got := p.IntervalMass(0.2, 0.8); !almostEqual(got, 0.02+0.8+0.02, 1e-12) {
		t.Errorf("wide mass = %v, want 0.84", got)
	}
}

func TestMassConservationProperty(t *testing.T) {
	p := Overnet(100)
	prop := func(rawLo, rawHi float64) bool {
		lo := clamp01(math.Abs(math.Mod(rawLo, 1)))
		hi := clamp01(math.Abs(math.Mod(rawHi, 1)))
		if lo > hi {
			lo, hi = hi, lo
		}
		mid := (lo + hi) / 2
		split := p.IntervalMass(lo, mid) + p.IntervalMass(mid, hi)
		return almostEqual(split, p.IntervalMass(lo, hi), 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	p := Overnet(100)
	prop := func(a, b float64) bool {
		a = clamp01(math.Abs(math.Mod(a, 1)))
		b = clamp01(math.Abs(math.Mod(b, 1)))
		if a > b {
			a, b = b, a
		}
		return p.CDF(a) <= p.CDF(b)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, p := range []*PDF{Uniform(100), Overnet(100)} {
		for q := 0.0; q <= 1.0; q += 0.05 {
			a := p.Quantile(q)
			if got := p.CDF(a); !almostEqual(got, q, 0.02) {
				t.Errorf("CDF(Quantile(%v)) = %v", q, got)
			}
		}
	}
}

func TestOvernetShape(t *testing.T) {
	p := Overnet(100)
	// The paper's motivating statistic: ~50% of hosts below 0.3.
	if c := p.CDF(0.3); c < 0.42 || c > 0.62 {
		t.Errorf("Overnet CDF(0.3) = %v, want ≈0.5", c)
	}
	// Skew: much more mass in [0,0.2] than [0.4,0.6].
	if lo, mid := p.IntervalMass(0, 0.2), p.IntervalMass(0.4, 0.6); lo <= mid {
		t.Errorf("Overnet not skewed: mass[0,0.2]=%v <= mass[0.4,0.6]=%v", lo, mid)
	}
	// A visible always-on cohort.
	if hi := p.IntervalMass(0.9, 1.0); hi < 0.02 {
		t.Errorf("Overnet high-availability cohort too small: %v", hi)
	}
}

func TestBimodal(t *testing.T) {
	p, err := Bimodal(100, 0.2, 0.9, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Density(0.2) < p.Density(0.55) {
		t.Errorf("low mode not denser than valley")
	}
	if p.Density(0.9) < p.Density(0.55) {
		t.Errorf("high mode not denser than valley")
	}
}

func TestBimodalErrors(t *testing.T) {
	if _, err := Bimodal(10, -0.1, 0.9, 0.5); err == nil {
		t.Error("want error for loMode < 0")
	}
	if _, err := Bimodal(10, 0.1, 1.9, 0.5); err == nil {
		t.Error("want error for hiMode > 1")
	}
	if _, err := Bimodal(10, 0.1, 0.9, 1.5); err == nil {
		t.Error("want error for hiFrac > 1")
	}
}

func TestFromSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := Overnet(100)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = src.Sample(rng)
	}
	est, err := FromSamples(samples, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The empirical CDF should track the source closely.
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if !almostEqual(est.CDF(a), src.CDF(a), 0.03) {
			t.Errorf("empirical CDF(%v) = %v, source %v", a, est.CDF(a), src.CDF(a))
		}
	}
}

func TestFromSamplesErrors(t *testing.T) {
	if _, err := FromSamples(nil, 10); err == nil {
		t.Error("want error for empty samples")
	}
}

func TestFromSamplesClamps(t *testing.T) {
	p, err := FromSamples([]float64{-5, 0.5, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// One sample in the bottom bucket, one mid, one top.
	m := p.Mass()
	if !almostEqual(m[0], 1.0/3, 1e-12) || !almostEqual(m[9], 1.0/3, 1e-12) {
		t.Errorf("clamped masses = %v", m)
	}
}

func TestNStarAv(t *testing.T) {
	p := Uniform(100)
	// Uniform: N*_a = N* * 2ε in the interior.
	if got := p.NStarAv(0.5, 0.1, 1000); !almostEqual(got, 200, 1e-6) {
		t.Errorf("NStarAv interior = %v, want 200", got)
	}
	// At the edge the window clamps to width ε.
	if got := p.NStarAv(0, 0.1, 1000); !almostEqual(got, 100, 1e-6) {
		t.Errorf("NStarAv at 0 = %v, want 100", got)
	}
}

func TestNStarMinUniform(t *testing.T) {
	p := Uniform(100)
	// Uniform: every ε-window has mass ε.
	if got := p.NStarMin(0.5, 0.1, 1000); !almostEqual(got, 100, 1e-6) {
		t.Errorf("NStarMin uniform = %v, want 100", got)
	}
}

func TestNStarMinSkewed(t *testing.T) {
	// Density rises sharply: min window within [a-ε, a+ε] must be the
	// lowest-density end.
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	p, err := FromWeights(weights)
	if err != nil {
		t.Fatal(err)
	}
	a, eps, n := 0.5, 0.1, 1000.0
	min := p.NStarMin(a, eps, n)
	left := n * p.IntervalMass(a-eps, a-eps+eps)
	right := n * p.IntervalMass(a+eps-eps, a+eps)
	if min > left+1e-9 || min > right+1e-9 {
		t.Errorf("NStarMin=%v exceeds a window: left=%v right=%v", min, left, right)
	}
	if !almostEqual(min, left, 1e-9) {
		t.Errorf("NStarMin=%v, want left window %v for increasing density", min, left)
	}
}

func TestNStarMinNeverExceedsAnyWindowProperty(t *testing.T) {
	p := Overnet(100)
	prop := func(rawA, rawV float64) bool {
		a := clamp01(math.Abs(math.Mod(rawA, 1)))
		const eps = 0.1
		lo, hi := clamp01(a-eps), clamp01(a+eps)
		if hi-lo < eps {
			return true // degenerate handled separately
		}
		// Any ε-window within [lo,hi] must have at least NStarMin mass.
		v := lo + clamp01(math.Abs(math.Mod(rawV, 1)))*(hi-eps-lo)
		window := p.IntervalMass(v, v+eps)
		return p.NStarMin(a, eps, 1) <= window+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNStarMinDegenerate(t *testing.T) {
	p := Uniform(100)
	// a=0, ε=0.1: range [0,0.1] has width exactly ε — single window.
	if got := p.NStarMin(0, 0.1, 1000); !almostEqual(got, 100, 1e-6) {
		t.Errorf("NStarMin(0) = %v, want 100", got)
	}
}

func TestMean(t *testing.T) {
	if got := Uniform(100).Mean(); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("uniform mean = %v, want 0.5", got)
	}
	if got := Overnet(100).Mean(); got < 0.2 || got > 0.45 {
		t.Errorf("Overnet mean = %v, want skewed low", got)
	}
}

func TestSampleWithinBounds(t *testing.T) {
	p := Overnet(100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		s := p.Sample(rng)
		if s < 0 || s > 1 {
			t.Fatalf("sample out of range: %v", s)
		}
	}
}

func TestBucketsAndWidth(t *testing.T) {
	p := Uniform(40)
	if p.Buckets() != 40 {
		t.Errorf("Buckets = %d, want 40", p.Buckets())
	}
	if !almostEqual(p.BucketWidth(), 0.025, 1e-12) {
		t.Errorf("BucketWidth = %v, want 0.025", p.BucketWidth())
	}
}

func TestDefaultBucketSelection(t *testing.T) {
	if Uniform(0).Buckets() != DefaultBuckets {
		t.Errorf("Uniform(0) buckets = %d, want %d", Uniform(0).Buckets(), DefaultBuckets)
	}
	if Overnet(-5).Buckets() != DefaultBuckets {
		t.Errorf("Overnet(-5) buckets = %d", Overnet(-5).Buckets())
	}
	p, err := FromSamples([]float64{0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Buckets() != DefaultBuckets {
		t.Errorf("FromSamples default buckets = %d", p.Buckets())
	}
}

func BenchmarkIntervalMass(b *testing.B) {
	p := Overnet(100)
	for i := 0; i < b.N; i++ {
		p.IntervalMass(0.2, 0.4)
	}
}

func BenchmarkNStarMin(b *testing.B) {
	p := Overnet(100)
	for i := 0; i < b.N; i++ {
		p.NStarMin(0.5, 0.1, 1442)
	}
}
