package avdist

import (
	"math"
	"testing"
)

// TestEmptyDistributionRejected pins the empty-input contracts: an
// empty weight vector, an all-zero weight vector, and an empty sample
// set all fail construction rather than producing a degenerate PDF.
func TestEmptyDistributionRejected(t *testing.T) {
	if _, err := FromWeights(nil); err == nil {
		t.Error("FromWeights(nil) accepted")
	}
	if _, err := FromWeights([]float64{}); err == nil {
		t.Error("FromWeights(empty) accepted")
	}
	if _, err := FromWeights([]float64{0, 0, 0}); err == nil {
		t.Error("FromWeights(all-zero) accepted")
	}
	if _, err := FromSamples(nil, 10); err == nil {
		t.Error("FromSamples(nil) accepted")
	}
	if _, err := FromSamples([]float64{}, 10); err == nil {
		t.Error("FromSamples(empty) accepted")
	}
}

// TestSingleSampleQuantiles: one observation concentrates all mass in
// one bucket; every quantile must land inside that bucket, the CDF must
// step from 0 to 1 across it, and no quantile may be NaN.
func TestSingleSampleQuantiles(t *testing.T) {
	p, err := FromSamples([]float64{0.37}, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.37, 0.38 // the bucket holding the sample
	// Quantile(0) is the smallest a with CDF(a) >= 0, which is 0 by
	// definition; every positive quantile lands inside the mass bucket.
	if v := p.Quantile(0); v != 0 {
		t.Errorf("Quantile(0) = %v, want 0", v)
	}
	for _, q := range []float64{0.001, 0.25, 0.5, 0.75, 1} {
		v := p.Quantile(q)
		if math.IsNaN(v) {
			t.Fatalf("Quantile(%v) is NaN", q)
		}
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Errorf("Quantile(%v) = %v, want inside the single-mass bucket [%v,%v]", q, v, lo, hi)
		}
	}
	if got := p.CDF(0.3); got != 0 {
		t.Errorf("CDF(0.3) = %v, want 0", got)
	}
	if got := p.CDF(0.5); got != 1 {
		t.Errorf("CDF(0.5) = %v, want 1", got)
	}
	// A single-bucket PDF still has unit mass.
	if got := p.IntervalMass(0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("total mass = %v, want 1", got)
	}
}

// TestOutOfRangeQuantileRequests: quantile arguments are clamped into
// [0,1] — q below zero behaves like 0, q above one like 1, and NaN is
// treated as 0 (the documented Clamp01 funnel), never panicking and
// never escaping the unit interval.
func TestOutOfRangeQuantileRequests(t *testing.T) {
	p := Uniform(10)
	cases := []struct {
		q, want float64
	}{
		{-1, p.Quantile(0)},
		{-0.0001, p.Quantile(0)},
		{1.5, p.Quantile(1)},
		{math.Inf(1), p.Quantile(1)},
		{math.Inf(-1), p.Quantile(0)},
		{math.NaN(), p.Quantile(0)},
	}
	for _, tc := range cases {
		got := p.Quantile(tc.q)
		if got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
		if got < 0 || got > 1 {
			t.Errorf("Quantile(%v) = %v escapes [0,1]", tc.q, got)
		}
	}
	// The skewed model obeys the same clamp: an out-of-range request is
	// exactly the boundary request.
	ov := Overnet(50)
	if got, want := ov.Quantile(2), ov.Quantile(1); got != want {
		t.Errorf("Overnet Quantile(2) = %v, want Quantile(1) = %v", got, want)
	}
	if got := ov.Quantile(-3); got < 0 || got > ov.Quantile(0)+1e-12 {
		t.Errorf("Overnet Quantile(-3) = %v, want clamped to Quantile(0)", got)
	}
}

// TestZeroMassBucketQuantile: a quantile landing exactly on a zero-mass
// bucket resolves to the bucket edge without division blowups.
func TestZeroMassBucketQuantile(t *testing.T) {
	p, err := FromWeights([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	v := p.Quantile(0.5)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("Quantile(0.5) over a zero-mass bucket = %v", v)
	}
	if v < 1.0/3-1e-9 || v > 2.0/3+1e-9 {
		t.Errorf("Quantile(0.5) = %v, want within the middle (zero-mass) bucket span", v)
	}
}
