// Package avdist models availability probability-density functions.
//
// AVMEM predicates (paper §2.1) consume the availability PDF p(·) of the
// system, together with the stable system size N*, both computed offline
// (by a crawler, in the paper's deployment story) and communicated to all
// nodes at pre-run-time. This package provides that object: a discretized
// PDF over [0,1] that can answer
//
//   - the density p(a),
//   - the interval mass ∫_lo^hi p(a) da,
//   - the derived predicate quantities N*_a (expected online nodes within
//     ±ε of a) and N*min_a (minimum expected online nodes in any ε-window
//     wholly inside [a−ε, a+ε]),
//   - quantiles and random sampling (used by the synthetic trace
//     generator).
//
// Built-in models include the Overnet-like skewed distribution used by the
// paper's evaluation (≈50% of hosts with availability below 0.3), a
// uniform model, and a bimodal model. Arbitrary empirical PDFs can be
// estimated from sample sets.
//
// Architecture: DESIGN.md §7 (monitoring and shuffling services) and
// §8 (parameter defaults).
package avdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// DefaultBuckets is the default discretization granularity. 100 buckets
// give a 0.01-wide availability resolution, ten sub-buckets per ε=0.1
// sliver width.
const DefaultBuckets = 100

// PDF is a discretized probability density over availabilities in [0,1].
// Bucket i covers [i*w, (i+1)*w) with w = 1/len(mass); the final bucket
// is closed at 1.0. The mass slice always sums to 1 (within rounding).
//
// PDF values are immutable after construction and safe for concurrent
// readers.
type PDF struct {
	mass []float64 // probability mass per bucket; sums to 1
	cum  []float64 // cum[i] = sum(mass[0..i]) for O(1) interval queries
}

// FromWeights builds a PDF from non-negative per-bucket weights,
// normalizing them to total mass 1. It returns an error if weights is
// empty, contains a negative or non-finite entry, or sums to zero.
func FromWeights(weights []float64) (*PDF, error) {
	if len(weights) == 0 {
		return nil, errors.New("avdist: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("avdist: invalid weight %v at bucket %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("avdist: zero total weight")
	}
	mass := make([]float64, len(weights))
	cum := make([]float64, len(weights))
	run := 0.0
	for i, w := range weights {
		mass[i] = w / total
		run += mass[i]
		cum[i] = run
	}
	cum[len(cum)-1] = 1 // kill rounding drift at the top
	return &PDF{mass: mass, cum: cum}, nil
}

// FromSamples estimates an empirical PDF from observed availabilities,
// e.g. a crawler's sample set. Samples outside [0,1] are clamped.
// buckets <= 0 selects DefaultBuckets.
func FromSamples(samples []float64, buckets int) (*PDF, error) {
	if len(samples) == 0 {
		return nil, errors.New("avdist: no samples")
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	weights := make([]float64, buckets)
	for _, s := range samples {
		weights[bucketOf(clamp01(s), buckets)]++
	}
	return FromWeights(weights)
}

// Uniform returns the uniform availability PDF with the given bucket
// count (<= 0 selects DefaultBuckets). Under a uniform PDF the constant
// sub-predicates I.A/II.A behave identically to the logarithmic ones.
func Uniform(buckets int) *PDF {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	weights := make([]float64, buckets)
	for i := range weights {
		weights[i] = 1
	}
	p, err := FromWeights(weights)
	if err != nil {
		// Cannot happen: weights are fixed and valid.
		panic(err)
	}
	return p
}

// Overnet returns the skewed availability model matching the published
// Overnet measurements that drive the paper's evaluation (Bhagwan et al.,
// IPTPS 2003): about half the hosts have long-term availability below
// 0.3, the density decreases through the middle of the range, and a small
// cohort of nearly-always-on hosts adds mass near 1.0.
//
// The model is a mixture:
//   - 92%: Beta(0.55, 1.45) — the heavy low-availability body,
//   - 8%:  Beta(8, 1.5)     — the stable, high-availability cohort.
func Overnet(buckets int) *PDF {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	weights := make([]float64, buckets)
	w := 1.0 / float64(buckets)
	for i := range weights {
		a := (float64(i) + 0.5) * w
		weights[i] = 0.92*betaDensity(a, 0.55, 1.45) + 0.08*betaDensity(a, 8, 1.5)
	}
	p, err := FromWeights(weights)
	if err != nil {
		panic(err) // fixed valid weights
	}
	return p
}

// Bimodal returns a two-population model: a low-availability mode around
// loMode and a high-availability mode around hiMode, mixed by hiFrac mass
// in the high mode. Useful for exercising predicates on non-Overnet
// shapes (e.g. Grid-like populations).
func Bimodal(buckets int, loMode, hiMode, hiFrac float64) (*PDF, error) {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if loMode < 0 || loMode > 1 || hiMode < 0 || hiMode > 1 {
		return nil, fmt.Errorf("avdist: modes must be in [0,1]: lo=%v hi=%v", loMode, hiMode)
	}
	if hiFrac < 0 || hiFrac > 1 {
		return nil, fmt.Errorf("avdist: hiFrac must be in [0,1]: %v", hiFrac)
	}
	const sigma = 0.08
	weights := make([]float64, buckets)
	w := 1.0 / float64(buckets)
	for i := range weights {
		a := (float64(i) + 0.5) * w
		lo := math.Exp(-((a - loMode) * (a - loMode)) / (2 * sigma * sigma))
		hi := math.Exp(-((a - hiMode) * (a - hiMode)) / (2 * sigma * sigma))
		weights[i] = (1-hiFrac)*lo + hiFrac*hi
	}
	return FromWeights(weights)
}

// Buckets returns the number of discretization buckets.
func (p *PDF) Buckets() int { return len(p.mass) }

// BucketWidth returns the availability width of one bucket.
func (p *PDF) BucketWidth() float64 { return 1.0 / float64(len(p.mass)) }

// Mass returns a copy of the per-bucket probability masses.
func (p *PDF) Mass() []float64 {
	out := make([]float64, len(p.mass))
	copy(out, p.mass)
	return out
}

// Density returns the probability density p(a) at availability a: the
// bucket mass divided by the bucket width. Inputs outside [0,1] are
// clamped.
func (p *PDF) Density(a float64) float64 {
	i := bucketOf(clamp01(a), len(p.mass))
	return p.mass[i] / p.BucketWidth()
}

// IntervalMass returns ∫_lo^hi p(a) da for the clamped interval
// [lo, hi] ∩ [0,1]. Partial buckets contribute proportionally (the
// density is piecewise constant). An empty or inverted interval has
// mass 0.
func (p *PDF) IntervalMass(lo, hi float64) float64 {
	lo, hi = clamp01(lo), clamp01(hi)
	if hi <= lo {
		return 0
	}
	w := p.BucketWidth()
	iLo := bucketOf(lo, len(p.mass))
	iHi := bucketOf(hi, len(p.mass))
	if iLo == iHi {
		return p.mass[iLo] * (hi - lo) / w
	}
	// First partial bucket.
	total := p.mass[iLo] * ((float64(iLo+1))*w - lo) / w
	// Middle whole buckets via the cumulative array.
	if iHi-1 >= iLo+1 {
		total += p.cum[iHi-1] - p.cum[iLo]
	}
	// Last partial bucket.
	total += p.mass[iHi] * (hi - float64(iHi)*w) / w
	return total
}

// CDF returns P(availability <= a).
func (p *PDF) CDF(a float64) float64 { return p.IntervalMass(0, a) }

// Quantile returns the smallest availability a with CDF(a) >= q, for
// q in [0,1]. Within a bucket the answer is interpolated linearly.
func (p *PDF) Quantile(q float64) float64 {
	q = clamp01(q)
	w := p.BucketWidth()
	prev := 0.0
	for i, c := range p.cum {
		if c >= q {
			if p.mass[i] == 0 {
				return float64(i) * w
			}
			frac := (q - prev) / p.mass[i]
			return clamp01((float64(i) + frac) * w)
		}
		prev = c
	}
	return 1
}

// Sample draws one availability from the distribution using rng.
func (p *PDF) Sample(rng *rand.Rand) float64 { return p.Quantile(rng.Float64()) }

// NStarAv returns N*_a: the expected number of online nodes with
// availability in [a−ε, a+ε] (clamped to [0,1]), for stable system size
// nStar. This is the N*_av(x) of sub-predicate II.B.
func (p *PDF) NStarAv(a, eps float64, nStar float64) float64 {
	return nStar * p.IntervalMass(a-eps, a+eps)
}

// NStarMin returns N*min_a: the minimum expected number of online nodes
// over all availability windows of width ε wholly contained in
// [a−ε, a+ε] ∩ [0,1]. This is the N*min_av(x) of sub-predicate II.B.
//
// The interval mass as a function of the window start is piecewise
// linear with breakpoints where either window edge crosses a bucket
// boundary, so the minimum is attained at a breakpoint; we evaluate all
// of them exactly.
func (p *PDF) NStarMin(a, eps float64, nStar float64) float64 {
	lo, hi := clamp01(a-eps), clamp01(a+eps)
	if hi-lo < eps {
		// Degenerate clamped range: the only window is [lo, hi] itself.
		return nStar * p.IntervalMass(lo, hi)
	}
	maxStart := hi - eps
	minMass := math.Inf(1)
	consider := func(v float64) {
		if v < lo || v > maxStart {
			return
		}
		if m := p.IntervalMass(v, v+eps); m < minMass {
			minMass = m
		}
	}
	consider(lo)
	consider(maxStart)
	w := p.BucketWidth()
	for i := 0; i <= len(p.mass); i++ {
		edge := float64(i) * w
		consider(edge)       // window start at a bucket edge
		consider(edge - eps) // window end at a bucket edge
	}
	return nStar * minMass
}

// Mean returns the expected availability under the PDF.
func (p *PDF) Mean() float64 {
	w := p.BucketWidth()
	var m float64
	for i, q := range p.mass {
		m += q * (float64(i) + 0.5) * w
	}
	return m
}

// betaDensity evaluates the Beta(alpha, beta) density at a ∈ (0,1).
// Endpoints are nudged inward to keep the density finite under
// discretized evaluation.
func betaDensity(a, alpha, beta float64) float64 {
	const edge = 1e-6
	if a < edge {
		a = edge
	}
	if a > 1-edge {
		a = 1 - edge
	}
	lg := lgamma(alpha+beta) - lgamma(alpha) - lgamma(beta)
	return math.Exp(lg + (alpha-1)*math.Log(a) + (beta-1)*math.Log(1-a))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func bucketOf(a float64, buckets int) int {
	i := int(a * float64(buckets))
	if i >= buckets {
		i = buckets - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

func clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v), v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
