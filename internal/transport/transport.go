// Package transport carries AVMEM operation messages between live
// nodes. Two implementations are provided: an in-process memory
// transport for tests, examples, and single-process clusters, and a
// TCP transport for real deployments.
//
// The simulation path (internal/sim) does not use this package; it has
// its own virtual-time network. Both expose the same send semantics so
// internal/ops runs unchanged on either.
//
// Architecture: DESIGN.md §11 (live runtime) and §6 (the Runtime/Env
// contract — Memnet is the deterministic fabric behind the memnet
// engine).
package transport

import (
	"encoding/json"
	"fmt"

	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
)

// Handler consumes a message delivered to a node.
type Handler func(from ids.NodeID, msg any)

// Transport moves operation messages between nodes.
type Transport interface {
	// Register binds self to the transport and installs its message
	// handler. It must be called before Send.
	Register(self ids.NodeID, h Handler) error
	// Send delivers msg to the target, best effort.
	Send(from, to ids.NodeID, msg any)
	// SendCall delivers msg and reports the outcome: true once the
	// target acknowledged, false when it was unreachable.
	SendCall(from, to ids.NodeID, msg any, onResult func(ok bool))
	// Unregister removes self from the transport.
	Unregister(self ids.NodeID)
	// Close releases transport resources.
	Close() error
}

// Envelope is the wire representation of one message.
type Envelope struct {
	From ids.NodeID      `json:"from"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// Message kinds on the wire.
const (
	KindAnycast        = "anycast"
	KindMulticast      = "multicast"
	KindDelivered      = "delivered"
	KindShuffleRequest = "shuffle-request"
	KindShuffleReply   = "shuffle-reply"
)

// Encode wraps an operation message into an Envelope.
func Encode(from ids.NodeID, msg any) (Envelope, error) {
	var kind string
	switch msg.(type) {
	case ops.AnycastMsg:
		kind = KindAnycast
	case ops.MulticastMsg:
		kind = KindMulticast
	case ops.DeliveredMsg:
		kind = KindDelivered
	case shuffle.Request:
		kind = KindShuffleRequest
	case shuffle.Reply:
		kind = KindShuffleReply
	default:
		return Envelope{}, fmt.Errorf("transport: unsupported message type %T", msg)
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return Envelope{}, fmt.Errorf("transport: encoding %s: %w", kind, err)
	}
	return Envelope{From: from, Kind: kind, Body: body}, nil
}

// Decode unwraps an Envelope back into an operation message.
func Decode(env Envelope) (any, error) {
	switch env.Kind {
	case KindAnycast:
		var m ops.AnycastMsg
		if err := json.Unmarshal(env.Body, &m); err != nil {
			return nil, fmt.Errorf("transport: decoding anycast: %w", err)
		}
		return m, nil
	case KindMulticast:
		var m ops.MulticastMsg
		if err := json.Unmarshal(env.Body, &m); err != nil {
			return nil, fmt.Errorf("transport: decoding multicast: %w", err)
		}
		return m, nil
	case KindDelivered:
		var m ops.DeliveredMsg
		if err := json.Unmarshal(env.Body, &m); err != nil {
			return nil, fmt.Errorf("transport: decoding delivered: %w", err)
		}
		return m, nil
	case KindShuffleRequest:
		var m shuffle.Request
		if err := json.Unmarshal(env.Body, &m); err != nil {
			return nil, fmt.Errorf("transport: decoding shuffle request: %w", err)
		}
		return m, nil
	case KindShuffleReply:
		var m shuffle.Reply
		if err := json.Unmarshal(env.Body, &m); err != nil {
			return nil, fmt.Errorf("transport: decoding shuffle reply: %w", err)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("transport: unknown message kind %q", env.Kind)
	}
}
