package transport

import (
	"math/rand"
	"testing"
	"time"

	"avmem/internal/ids"
	"avmem/internal/sim"
)

// virtualMemnet builds a memnet on a fresh virtual clock.
func virtualMemnet(seed int64, cfg MemnetConfig) (*sim.World, *Memnet) {
	w := sim.NewWorld(seed)
	cfg.After = w.After
	cfg.Seed = seed
	return w, NewMemnet(cfg)
}

func TestMemnetVirtualDelivery(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{
		Latency: UniformLatencyFn(20*time.Millisecond, 80*time.Millisecond),
	})
	var gotAt time.Duration
	if err := m.Register("b", func(from ids.NodeID, msg any) {
		gotAt = w.Now()
	}); err != nil {
		t.Fatal(err)
	}
	m.Send("a", "b", sampleAnycast())
	w.RunAll(0)
	if gotAt < 20*time.Millisecond || gotAt > 80*time.Millisecond {
		t.Errorf("delivered at %v, want within [20ms, 80ms]", gotAt)
	}
	st := m.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMemnetDeterministicPerSeed(t *testing.T) {
	record := func(seed int64) []time.Duration {
		w, m := virtualMemnet(seed, MemnetConfig{
			Latency: UniformLatencyFn(20*time.Millisecond, 80*time.Millisecond),
		})
		var times []time.Duration
		if err := m.Register("b", func(ids.NodeID, any) {
			times = append(times, w.Now())
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			m.Send("a", "b", sampleAnycast())
		}
		w.RunAll(0)
		return times
	}
	a, b := record(7), record(7)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("deliveries lost: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: same seed must replay identically", i, a[i], b[i])
		}
	}
	c := record(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical latency sequences")
	}
}

func TestMemnetKillRestart(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{})
	delivered := 0
	if err := m.Register("b", func(ids.NodeID, any) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	m.Kill("b")
	var ok1 *bool
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) { ok1 = &ok })
	w.RunAll(0)
	if delivered != 0 || ok1 == nil || *ok1 {
		t.Fatalf("killed node reachable: delivered=%d ok=%v", delivered, ok1)
	}
	m.Restart("b")
	var ok2 *bool
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) { ok2 = &ok })
	w.RunAll(0)
	if delivered != 1 || ok2 == nil || !*ok2 {
		t.Fatalf("restarted node unreachable: delivered=%d ok=%v", delivered, ok2)
	}
}

func TestMemnetPartitionHeal(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{})
	got := map[ids.NodeID]int{}
	for _, id := range []ids.NodeID{"a", "b", "c"} {
		id := id
		if err := m.Register(id, func(ids.NodeID, any) { got[id]++ }); err != nil {
			t.Fatal(err)
		}
	}
	// {a} | {b}; c is in the implicit island of unlisted nodes.
	m.Partition([]ids.NodeID{"a"}, []ids.NodeID{"b"})
	m.Send("a", "b", sampleAnycast()) // cross-island: dropped
	m.Send("b", "a", sampleAnycast()) // cross-island: dropped
	m.Send("a", "c", sampleAnycast()) // cross-island: dropped
	w.RunAll(0)
	if got["a"]+got["b"]+got["c"] != 0 {
		t.Fatalf("partitioned traffic delivered: %v", got)
	}
	m.Heal()
	m.Send("a", "b", sampleAnycast())
	m.Send("a", "c", sampleAnycast())
	w.RunAll(0)
	if got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("healed traffic lost: %v", got)
	}
}

func TestMemnetLinkFaults(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{})
	delivered := map[ids.NodeID]int{}
	for _, id := range []ids.NodeID{"b", "c"} {
		id := id
		if err := m.Register(id, func(ids.NodeID, any) { delivered[id]++ }); err != nil {
			t.Fatal(err)
		}
	}
	// a→b always drops; a→c gets a fixed 1s latency.
	m.SetLinkDrop("a", "b", 1)
	m.SetLinkLatency("a", "c", func(*rand.Rand) time.Duration { return time.Second })
	m.Send("a", "b", sampleAnycast())
	m.Send("a", "c", sampleAnycast())
	w.Run(500 * time.Millisecond)
	if delivered["c"] != 0 {
		t.Error("link latency override ignored: delivery arrived early")
	}
	w.RunAll(0)
	if delivered["b"] != 0 {
		t.Error("drop-1.0 link delivered")
	}
	if delivered["c"] != 1 {
		t.Error("latency-overridden link lost the message")
	}
	// Clearing the overrides restores the (instantaneous) global model.
	m.SetLinkDrop("a", "b", -1)
	m.SetLinkLatency("a", "c", nil)
	m.Send("a", "b", sampleAnycast())
	w.RunAll(0)
	if delivered["b"] != 1 {
		t.Error("cleared drop override still dropping")
	}
}

func TestMemnetAckRidesReverseLink(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{})
	if err := m.Register("b", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	// Outbound a→b instantaneous; the ack's return leg b→a takes 1s.
	m.SetLinkLatency("b", "a", func(*rand.Rand) time.Duration { return time.Second })
	var ackAt time.Duration
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) {
		if !ok {
			t.Error("delivered call nacked")
		}
		ackAt = w.Now()
	})
	w.RunAll(0)
	if ackAt != time.Second {
		t.Errorf("ack arrived at %v, want 1s (reverse-link override)", ackAt)
	}
}

func TestMemnetLostAckNacksAtTimeout(t *testing.T) {
	w, m := virtualMemnet(1, MemnetConfig{AckTimeout: 160 * time.Millisecond})
	delivered := 0
	if err := m.Register("b", func(ids.NodeID, any) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	// The outbound a→b leg is clean; every ack on the reverse b→a link
	// is lost. The message must arrive, yet the sender must conclude
	// failure at the ack timeout.
	m.SetLinkDrop("b", "a", 1)
	var failedAt time.Duration
	gotResult := false
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) {
		if ok {
			t.Error("lost ack reported success")
		}
		gotResult = true
		failedAt = w.Now()
	})
	w.RunAll(0)
	if delivered != 1 {
		t.Fatalf("message not delivered: %d", delivered)
	}
	if !gotResult {
		t.Fatal("onResult never fired")
	}
	if failedAt != 160*time.Millisecond {
		t.Errorf("failure detected at %v, want the 160ms ack timeout", failedAt)
	}
}

func TestMemnetOfflineTargetNacks(t *testing.T) {
	online := true
	w, m := virtualMemnet(1, MemnetConfig{
		AckTimeout: 160 * time.Millisecond,
		Online:     func(ids.NodeID) bool { return online },
	})
	if err := m.Register("b", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	online = false
	var failedAt time.Duration
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) {
		if ok {
			t.Error("offline target acknowledged")
		}
		failedAt = w.Now()
	})
	w.RunAll(0)
	if failedAt != 160*time.Millisecond {
		t.Errorf("failure detected at %v, want the 160ms ack timeout", failedAt)
	}
}
