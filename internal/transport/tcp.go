package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"avmem/internal/ids"
)

// TCP is the deployable transport: each node listens on its NodeID's
// host:port; messages are length-prefixed JSON envelopes; SendCall
// waits for a one-byte acknowledgment. Connections are per-message —
// simple, stateless, and adequate for management-plane traffic rates
// (AVMEM operations are occasional, not a data plane).
//
// TCP is safe for concurrent use.
type TCP struct {
	dialTimeout time.Duration
	ackTimeout  time.Duration

	mu        sync.Mutex
	listeners map[ids.NodeID]net.Listener
	wg        sync.WaitGroup
	closed    bool
}

var _ Transport = (*TCP)(nil)

// maxFrame bounds a wire frame; operation messages are tiny, so this
// mostly guards against garbage.
const maxFrame = 1 << 20

// NewTCP creates the TCP transport. Zero timeouts default to 2 s dial
// and 5 s acknowledgment.
func NewTCP(dialTimeout, ackTimeout time.Duration) *TCP {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if ackTimeout <= 0 {
		ackTimeout = 5 * time.Second
	}
	return &TCP{
		dialTimeout: dialTimeout,
		ackTimeout:  ackTimeout,
		listeners:   make(map[ids.NodeID]net.Listener, 4),
	}
}

// Register implements Transport: it binds a listener on self
// (interpreted as a host:port address) and serves inbound messages to
// h, one goroutine per connection.
func (t *TCP) Register(self ids.NodeID, h Handler) error {
	if h == nil {
		return errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", self.String())
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", self, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return errors.New("transport: closed")
	}
	t.listeners[self] = ln
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.serve(conn, h)
			}()
		}
	}()
	return nil
}

// serve handles one inbound connection: read a frame, dispatch, ack.
func (t *TCP) serve(conn net.Conn, h Handler) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(t.ackTimeout))
	env, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return
	}
	msg, err := Decode(env)
	if err != nil {
		return
	}
	// Acknowledge before dispatching: receipt is what the sender's
	// failure detector needs to know, and the handler may take a while.
	_ = conn.SetWriteDeadline(time.Now().Add(t.ackTimeout))
	if _, err := conn.Write([]byte{1}); err != nil {
		return
	}
	h(env.From, msg)
}

// Unregister implements Transport.
func (t *TCP) Unregister(self ids.NodeID) {
	t.mu.Lock()
	ln, ok := t.listeners[self]
	delete(t.listeners, self)
	t.mu.Unlock()
	if ok {
		ln.Close()
	}
}

// Close implements Transport: stops all listeners and waits for served
// connections to finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	for id, ln := range t.listeners {
		ln.Close()
		delete(t.listeners, id)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// send dials, writes one frame, and optionally waits for the ack byte.
func (t *TCP) send(from, to ids.NodeID, msg any, wantAck bool) bool {
	env, err := Encode(from, msg)
	if err != nil {
		return false
	}
	conn, err := net.DialTimeout("tcp", to.String(), t.dialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(t.ackTimeout))
	if err := writeFrame(conn, env); err != nil {
		return false
	}
	if !wantAck {
		return true
	}
	_ = conn.SetReadDeadline(time.Now().Add(t.ackTimeout))
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return false
	}
	return ack[0] == 1
}

// Send implements Transport.
func (t *TCP) Send(from, to ids.NodeID, msg any) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.send(from, to, msg, false)
	}()
}

// SendCall implements Transport.
func (t *TCP) SendCall(from, to ids.NodeID, msg any, onResult func(ok bool)) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ok := t.send(from, to, msg, true)
		if onResult != nil {
			onResult(ok)
		}
	}()
}

// writeFrame emits a 4-byte big-endian length followed by the JSON
// envelope.
func writeFrame(w io.Writer, env Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(body))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame parses one length-prefixed JSON envelope.
func readFrame(r io.Reader) (Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return Envelope{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Envelope{}, fmt.Errorf("transport: bad envelope: %w", err)
	}
	return env, nil
}
