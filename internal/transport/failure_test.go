package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avmem/internal/ids"
)

// Satellite coverage for transport failure semantics: a SendCall to a
// dead or unregistered peer must invoke onResult(false) exactly once on
// every transport, and Unregister racing in-flight traffic must be
// safe.

// expectExactlyOnceFailure sends one SendCall to a dead peer and
// asserts onResult fires exactly once, with false.
func expectExactlyOnceFailure(t *testing.T, tr Transport, from, to ids.NodeID) {
	t.Helper()
	var calls atomic.Int32
	var sawOK atomic.Bool
	done := make(chan struct{}, 1)
	tr.SendCall(from, to, sampleAnycast(), func(ok bool) {
		if ok {
			sawOK.Store(true)
		}
		if calls.Add(1) == 1 {
			done <- struct{}{}
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("onResult never fired for dead peer")
	}
	// Give a double invocation time to surface before counting.
	time.Sleep(50 * time.Millisecond)
	if got := calls.Load(); got != 1 {
		t.Fatalf("onResult fired %d times, want exactly 1", got)
	}
	if sawOK.Load() {
		t.Fatal("dead peer acknowledged: want onResult(false)")
	}
}

func TestMemorySendCallDeadPeerExactlyOnce(t *testing.T) {
	m := NewMemory(0, 0)
	defer m.Close()
	expectExactlyOnceFailure(t, m, "a", "ghost")
}

func TestMemnetSendCallDeadPeerExactlyOnce(t *testing.T) {
	m := NewMemnet(MemnetConfig{AckTimeout: 20 * time.Millisecond})
	defer m.Close()
	expectExactlyOnceFailure(t, m, "a", "ghost")
}

func TestTCPSendCallDeadPeerExactlyOnce(t *testing.T) {
	tr := NewTCP(200*time.Millisecond, time.Second)
	defer tr.Close()
	// Nothing listens on the target port.
	expectExactlyOnceFailure(t, tr, "127.0.0.1:39410", "127.0.0.1:39411")
}

// stressUnregister hammers a transport with SendCall traffic while the
// target registers and unregisters concurrently: no panic, and every
// call reports exactly once. Run under -race in CI.
func stressUnregister(t *testing.T, tr Transport, self ids.NodeID, senders int) {
	t.Helper()
	const perSender = 50
	var results atomic.Int32
	handler := func(ids.NodeID, any) {}
	if err := tr.Register(self, handler); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				tr.SendCall("sender", self, sampleAnycast(), func(bool) {
					results.Add(1)
				})
			}
		}()
	}
	// Flap the registration while traffic is in flight.
	for i := 0; i < 20; i++ {
		tr.Unregister(self)
		time.Sleep(time.Millisecond)
		if err := tr.Register(self, handler); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	want := int32(senders * perSender)
	deadline := time.After(10 * time.Second)
	for results.Load() < want {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d SendCall results arrived", results.Load(), want)
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := results.Load(); got != want {
		t.Fatalf("%d results for %d calls: callbacks must fire exactly once", got, want)
	}
}

func TestMemoryUnregisterMidFlight(t *testing.T) {
	m := NewMemory(0, 0)
	defer m.Close()
	stressUnregister(t, m, "flappy", 8)
}

func TestMemnetUnregisterMidFlight(t *testing.T) {
	m := NewMemnet(MemnetConfig{AckTimeout: 5 * time.Millisecond})
	defer m.Close()
	stressUnregister(t, m, "flappy", 8)
}

func TestMemnetFaultInjectionRaces(t *testing.T) {
	// Kill/Restart, partitions, and link faults flapping while traffic
	// flows: the memnet must stay consistent (callbacks exactly once).
	m := NewMemnet(MemnetConfig{AckTimeout: 5 * time.Millisecond})
	defer m.Close()
	if err := m.Register("peer", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	var results atomic.Int32
	var wg sync.WaitGroup
	const calls = 200
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < calls; i++ {
			m.SendCall("sender", "peer", sampleAnycast(), func(bool) { results.Add(1) })
		}
	}()
	for i := 0; i < 20; i++ {
		m.Kill("peer")
		m.Partition([]ids.NodeID{"peer"}, []ids.NodeID{"sender"})
		m.SetLinkDrop("sender", "peer", 0.5)
		time.Sleep(time.Millisecond)
		m.Restart("peer")
		m.Heal()
		m.SetLinkDrop("sender", "peer", -1)
	}
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for results.Load() < calls {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d results arrived", results.Load(), calls)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestTCPUnregisterMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	tr := NewTCP(200*time.Millisecond, time.Second)
	defer tr.Close()
	self := ids.NodeID("127.0.0.1:39412")
	handler := func(ids.NodeID, any) {}
	if err := tr.Register(self, handler); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				done := make(chan struct{})
				tr.SendCall("127.0.0.1:39413", self, sampleAnycast(), func(bool) { close(done) })
				<-done
			}
		}()
	}
	// Flap the listener while calls are in flight; rebinding the port
	// can transiently fail while the old listener drains, so retry.
	for i := 0; i < 10; i++ {
		tr.Unregister(self)
		time.Sleep(2 * time.Millisecond)
		for try := 0; try < 50; try++ {
			if err := tr.Register(self, handler); err == nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wg.Wait()
}
