package transport

import (
	"math/rand"
	"sync"
	"time"

	"avmem/internal/ids"
)

// Memory is the in-process wall-clock transport: all nodes live in one
// process, messages hop between goroutines with an optional simulated
// latency. It is safe for concurrent use. The zero value is not usable;
// create with NewMemory or NewMemorySeeded.
//
// Memory trades determinism for realism — deliveries ride real
// goroutines and real timers. For reproducible in-process clusters use
// Memnet, which schedules deliveries on an injected (virtual) clock.
type Memory struct {
	minLatency time.Duration
	maxLatency time.Duration

	mu       sync.RWMutex
	handlers map[ids.NodeID]Handler
	rng      *rand.Rand
	closed   bool
	wg       sync.WaitGroup
}

var _ Transport = (*Memory)(nil)

// NewMemory creates an in-process transport with per-message latency
// drawn uniformly from [minLatency, maxLatency] (both zero disables
// artificial latency). The latency jitter is seeded from the wall
// clock; use NewMemorySeeded when runs must be comparable.
func NewMemory(minLatency, maxLatency time.Duration) *Memory {
	return NewMemorySeeded(minLatency, maxLatency, time.Now().UnixNano())
}

// NewMemorySeeded is NewMemory with injected latency-jitter randomness
// instead of ambient wall-clock state.
func NewMemorySeeded(minLatency, maxLatency time.Duration, seed int64) *Memory {
	if maxLatency < minLatency {
		maxLatency = minLatency
	}
	return &Memory{
		minLatency: minLatency,
		maxLatency: maxLatency,
		handlers:   make(map[ids.NodeID]Handler, 64),
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Register implements Transport.
func (m *Memory) Register(self ids.NodeID, h Handler) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[self] = h
	return nil
}

// Unregister implements Transport.
func (m *Memory) Unregister(self ids.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, self)
}

// Close implements Transport. In-flight deliveries are drained.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.closed = true
	m.handlers = make(map[ids.NodeID]Handler)
	m.mu.Unlock()
	m.wg.Wait()
	return nil
}

func (m *Memory) latency() time.Duration {
	if m.maxLatency == 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	span := int64(m.maxLatency - m.minLatency)
	if span <= 0 {
		return m.minLatency
	}
	return m.minLatency + time.Duration(m.rng.Int63n(span+1))
}

// deliver looks up the target handler and invokes it after the
// simulated latency. It reports whether the target was registered at
// delivery time.
func (m *Memory) deliver(from, to ids.NodeID, msg any) bool {
	if d := m.latency(); d > 0 {
		time.Sleep(d)
	}
	m.mu.RLock()
	h, ok := m.handlers[to]
	closed := m.closed
	m.mu.RUnlock()
	if !ok || closed {
		return false
	}
	h(from, msg)
	return true
}

// Send implements Transport.
func (m *Memory) Send(from, to ids.NodeID, msg any) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.deliver(from, to, msg)
	}()
}

// SendCall implements Transport.
func (m *Memory) SendCall(from, to ids.NodeID, msg any, onResult func(ok bool)) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ok := m.deliver(from, to, msg)
		if onResult != nil {
			onResult(ok)
		}
	}()
}
