package transport

import (
	"math/rand"
	"sync"
	"time"

	"avmem/internal/ids"
)

// LatencyFn samples a one-way message latency. It runs under the
// memnet's lock with the memnet's seeded RNG, so draws happen in a
// deterministic order.
type LatencyFn func(rng *rand.Rand) time.Duration

// UniformLatencyFn samples uniformly from [min, max] — the paper's
// per-virtual-hop model when given 20ms and 80ms.
func UniformLatencyFn(min, max time.Duration) LatencyFn {
	return func(rng *rand.Rand) time.Duration {
		if max <= min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)+1))
	}
}

// MemnetStats counts memnet activity.
type MemnetStats struct {
	Sent      int // messages handed to the memnet
	Delivered int // messages that reached a live handler
	Dropped   int // messages lost to faults, partitions, or dead targets
}

// MemnetConfig assembles a deterministic in-process network.
type MemnetConfig struct {
	// After defers fn by d. nil uses wall-clock timers (time.AfterFunc);
	// the scenario engine injects the virtual-time simulator's scheduler
	// here, which makes every delivery an event on the deterministic
	// virtual clock.
	After func(d time.Duration, fn func())
	// Seed drives all latency and drop sampling.
	Seed int64
	// Latency samples per-message one-way latency (nil = instantaneous).
	Latency LatencyFn
	// AckTimeout is how long a SendCall waits before reporting failure
	// when no acknowledgment arrives (default 160ms, 2× the worst-case
	// paper latency).
	AckTimeout time.Duration
	// Drop is the global message-drop probability in [0,1).
	Drop float64
	// Online gates delivery-time liveness by identity (nil = every
	// registered node is live). The scenario engine points this at the
	// churn trace, so live nodes miss deliveries exactly when their
	// simulated counterparts would.
	Online func(id ids.NodeID) bool
}

// link is a per-directed-link fault overlay.
type link struct {
	latency LatencyFn
	drop    float64
	hasDrop bool
}

// Memnet is the deterministic, seedable in-process network: an
// implementation of Transport whose deliveries are scheduled on an
// injected clock, with fault injection — node kill/restart, per-link
// latency distributions, per-link and global drops, and partitions —
// pushed down into the fabric itself. Driven by a single-threaded
// virtual scheduler it is bit-reproducible per seed; it is nevertheless
// fully locked, so mixed (wall-clock, concurrent) use is safe, merely
// not deterministic.
type Memnet struct {
	after      func(d time.Duration, fn func())
	ackTimeout time.Duration
	online     func(id ids.NodeID) bool
	// ownClock marks the built-in wall-clock timer; its callbacks are
	// tracked in wg so Close can drain in-flight deliveries (injected
	// virtual schedulers drain by construction — their owner pumps the
	// event queue on one goroutine, where waiting would deadlock).
	ownClock bool
	wg       sync.WaitGroup

	mu       sync.Mutex
	rng      *rand.Rand
	latency  LatencyFn
	drop     float64
	handlers map[ids.NodeID]Handler
	killed   map[ids.NodeID]bool
	islands  map[ids.NodeID]int
	links    map[[2]ids.NodeID]link
	stats    MemnetStats
	closed   bool
}

var _ Transport = (*Memnet)(nil)

// NewMemnet creates a deterministic in-process network.
func NewMemnet(cfg MemnetConfig) *Memnet {
	after := cfg.After
	own := false
	if after == nil {
		own = true
		after = func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 160 * time.Millisecond
	}
	return &Memnet{
		after:      after,
		ownClock:   own,
		ackTimeout: cfg.AckTimeout,
		online:     cfg.Online,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		latency:    cfg.Latency,
		drop:       cfg.Drop,
		handlers:   make(map[ids.NodeID]Handler, 64),
		killed:     make(map[ids.NodeID]bool),
		links:      make(map[[2]ids.NodeID]link),
	}
}

// Register implements Transport.
func (m *Memnet) Register(self ids.NodeID, h Handler) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[self] = h
	return nil
}

// Unregister implements Transport.
func (m *Memnet) Unregister(self ids.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, self)
}

// Close implements Transport: further deliveries are suppressed, and
// on the built-in wall clock in-flight deliveries are drained before
// returning.
func (m *Memnet) Close() error {
	m.mu.Lock()
	m.closed = true
	m.handlers = make(map[ids.NodeID]Handler)
	m.mu.Unlock()
	if m.ownClock {
		m.wg.Wait()
	}
	return nil
}

// schedule defers fn on the memnet clock, tracking the callback on the
// built-in wall clock so Close can drain it.
func (m *Memnet) schedule(d time.Duration, fn func()) {
	if !m.ownClock {
		m.after(d, fn)
		return
	}
	m.wg.Add(1)
	m.after(d, func() { defer m.wg.Done(); fn() })
}

// Kill makes a node unreachable (and its handler inert) until Restart —
// the fault-injection face of a node crash. Unlike Unregister, the
// node's registration survives, so Restart restores delivery without
// the node's cooperation.
func (m *Memnet) Kill(id ids.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.killed[id] = true
}

// Restart lifts a Kill.
func (m *Memnet) Restart(id ids.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.killed, id)
}

// Partition splits the network into islands: traffic crosses island
// boundaries only to be dropped. Nodes not named in any group share one
// implicit extra island. Heal removes the partition.
func (m *Memnet) Partition(groups ...[]ids.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.islands = make(map[ids.NodeID]int, 64)
	for g, group := range groups {
		for _, id := range group {
			m.islands[id] = g + 1
		}
	}
}

// Heal removes any partition.
func (m *Memnet) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.islands = nil
}

// SetLinkLatency overrides the latency distribution of the directed
// link from→to (nil restores the global model).
func (m *Memnet) SetLinkLatency(from, to ids.NodeID, fn LatencyFn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := [2]ids.NodeID{from, to}
	l := m.links[k]
	l.latency = fn
	m.setLink(k, l)
}

// SetLinkDrop overrides the drop probability of the directed link
// from→to (negative restores the global probability).
func (m *Memnet) SetLinkDrop(from, to ids.NodeID, p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := [2]ids.NodeID{from, to}
	l := m.links[k]
	l.drop = p
	l.hasDrop = p >= 0
	m.setLink(k, l)
}

// setLink stores or clears a link overlay. Caller holds m.mu.
func (m *Memnet) setLink(k [2]ids.NodeID, l link) {
	if l.latency == nil && !l.hasDrop {
		delete(m.links, k)
		return
	}
	m.links[k] = l
}

// Stats returns a copy of the activity counters.
func (m *Memnet) Stats() MemnetStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// plan samples one send's fate under the lock: its latency and whether
// a fault (global or per-link drop) consumes it. Sampling happens at
// send time in call order, which is what keeps runs deterministic.
func (m *Memnet) plan(from, to ids.NodeID) (lat time.Duration, dropped bool) {
	m.stats.Sent++
	return m.sampleLatency(from, to), m.sampleDrop(from, to)
}

// sampleLatency draws one latency for the directed link from→to,
// honoring a per-link override. Caller holds m.mu.
func (m *Memnet) sampleLatency(from, to ids.NodeID) time.Duration {
	latFn := m.latency
	if l, ok := m.links[[2]ids.NodeID{from, to}]; ok && l.latency != nil {
		latFn = l.latency
	}
	if latFn == nil {
		return 0
	}
	return latFn(m.rng)
}

// sampleDrop decides whether a message on the directed link from→to is
// consumed by a fault, honoring a per-link override. No RNG draw is
// spent when the effective probability is zero, so fault-free runs keep
// their random sequences. Caller holds m.mu.
func (m *Memnet) sampleDrop(from, to ids.NodeID) bool {
	p := m.drop
	if l, ok := m.links[[2]ids.NodeID{from, to}]; ok && l.hasDrop {
		p = l.drop
	}
	if p <= 0 {
		return false
	}
	return m.rng.Float64() < p
}

// handlerFor resolves the live handler for a delivery attempt: nil when
// the target is unregistered, killed, partitioned away from the sender,
// offline, or the memnet is closed. Caller holds m.mu.
func (m *Memnet) handlerFor(from, to ids.NodeID) Handler {
	if m.closed || m.killed[to] || m.killed[from] {
		return nil
	}
	if m.islands != nil && m.islands[from] != m.islands[to] {
		return nil
	}
	h, ok := m.handlers[to]
	if !ok {
		return nil
	}
	if m.online != nil && !m.online(to) {
		return nil
	}
	return h
}

// Send implements Transport.
func (m *Memnet) Send(from, to ids.NodeID, msg any) {
	m.mu.Lock()
	lat, dropped := m.plan(from, to)
	m.mu.Unlock()
	m.schedule(lat, func() {
		m.mu.Lock()
		h := m.handlerFor(from, to)
		if dropped {
			h = nil
		}
		if h == nil {
			m.stats.Dropped++
		} else {
			m.stats.Delivered++
		}
		m.mu.Unlock()
		if h != nil {
			h(from, msg)
		}
	})
}

// SendCall implements Transport: onResult(true) fires one round-trip
// after sending when the target processed the message (the return leg
// rides the reverse to→from link, honoring its overrides);
// onResult(false) fires once the AckTimeout expires when it did not.
// The callback is invoked exactly once either way.
//
// Failure detection mirrors sim.Network, the reference model the
// engines are compared under: the nack fires at the later of AckTimeout
// and the attempt's (possibly fault-inflated) one-way latency — a
// link-latency override larger than the timeout delays detection with
// it.
func (m *Memnet) SendCall(from, to ids.NodeID, msg any, onResult func(ok bool)) {
	m.mu.Lock()
	out, dropped := m.plan(from, to)
	back := m.sampleLatency(to, from)
	backDropped := m.sampleDrop(to, from)
	m.mu.Unlock()
	m.schedule(out, func() {
		m.mu.Lock()
		h := m.handlerFor(from, to)
		if dropped {
			h = nil
		}
		if h == nil {
			m.stats.Dropped++
		} else {
			m.stats.Delivered++
		}
		m.mu.Unlock()
		nack := func() {
			wait := m.ackTimeout - out
			if wait < 0 {
				wait = 0
			}
			m.schedule(wait, func() { onResult(false) })
		}
		if h == nil {
			if onResult != nil {
				nack()
			}
			return
		}
		h(from, msg)
		if onResult == nil {
			return
		}
		if backDropped {
			// The message arrived but its acknowledgment was lost: the
			// sender can only conclude failure once the timeout expires.
			nack()
			return
		}
		m.schedule(back, func() { onResult(true) })
	})
}
