package transport

import (
	"sync"
	"testing"
	"time"

	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
)

func sampleAnycast() ops.AnycastMsg {
	return ops.AnycastMsg{
		ID:     ops.MsgID{Origin: "10.0.0.1:4000", Seq: 7},
		Target: ops.Target{Lo: 0.85, Hi: 0.95},
		Policy: ops.RetriedGreedy,
		Flavor: core.HSVS,
		TTL:    6,
		Retry:  8,
		Hops:   2,
		SentAt: 1500 * time.Millisecond,
	}
}

func sampleMulticast() ops.MulticastMsg {
	return ops.MulticastMsg{
		ID:     ops.MsgID{Origin: "10.0.0.2:4000", Seq: 3},
		Target: ops.Target{Lo: 0.2, Hi: 1},
		Spec: ops.MulticastSpec{
			Mode: ops.Gossip, Flavor: core.HSVS,
			Fanout: 5, Rounds: 2, Period: time.Second,
		},
		SentAt: time.Second,
	}
}

func TestCodecRoundTripAnycast(t *testing.T) {
	in := sampleAnycast()
	env, err := Encode("sender", in)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindAnycast || env.From != "sender" {
		t.Fatalf("envelope = %+v", env)
	}
	out, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(ops.AnycastMsg)
	if !ok {
		t.Fatalf("decoded type %T", out)
	}
	if got != in {
		t.Errorf("round trip changed message:\n in %+v\nout %+v", in, got)
	}
}

func TestCodecRoundTripAnycastWithMulticastSpec(t *testing.T) {
	in := sampleAnycast()
	spec := ops.MulticastSpec{Mode: ops.Flood, Flavor: core.VSOnly}
	in.Multicast = &spec
	env, err := Encode("sender", in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(ops.AnycastMsg)
	if got.Multicast == nil || *got.Multicast != spec {
		t.Errorf("multicast spec lost: %+v", got.Multicast)
	}
}

func TestCodecRoundTripMulticast(t *testing.T) {
	in := sampleMulticast()
	env, err := Encode("sender", in)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindMulticast {
		t.Fatalf("kind = %q", env.Kind)
	}
	out, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(ops.MulticastMsg); got != in {
		t.Errorf("round trip changed message:\n in %+v\nout %+v", in, got)
	}
}

func TestCodecRejectsUnknown(t *testing.T) {
	if _, err := Encode("s", 42); err == nil {
		t.Error("want error for unsupported type")
	}
	if _, err := Decode(Envelope{Kind: "bogus"}); err == nil {
		t.Error("want error for unknown kind")
	}
	if _, err := Decode(Envelope{Kind: KindAnycast, Body: []byte("{bad")}); err == nil {
		t.Error("want error for bad body")
	}
}

func TestMemoryDelivery(t *testing.T) {
	m := NewMemory(0, 0)
	defer m.Close()
	var mu sync.Mutex
	var got []any
	if err := m.Register("b", func(from ids.NodeID, msg any) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, msg)
	}); err != nil {
		t.Fatal(err)
	}
	m.Send("a", "b", sampleAnycast())
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message never delivered")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestMemorySendCall(t *testing.T) {
	m := NewMemory(0, 0)
	defer m.Close()
	if err := m.Register("b", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	result := make(chan bool, 2)
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) { result <- ok })
	if ok := <-result; !ok {
		t.Error("want ack for registered target")
	}
	m.SendCall("a", "ghost", sampleAnycast(), func(ok bool) { result <- ok })
	if ok := <-result; ok {
		t.Error("want nack for unregistered target")
	}
}

func TestMemoryUnregister(t *testing.T) {
	m := NewMemory(0, 0)
	defer m.Close()
	if err := m.Register("b", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	m.Unregister("b")
	result := make(chan bool, 1)
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) { result <- ok })
	if ok := <-result; ok {
		t.Error("want nack after unregister")
	}
}

func TestMemoryLatency(t *testing.T) {
	m := NewMemory(20*time.Millisecond, 30*time.Millisecond)
	defer m.Close()
	if err := m.Register("b", func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	result := make(chan bool, 1)
	m.SendCall("a", "b", sampleAnycast(), func(ok bool) { result <- ok })
	<-result
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("delivery took %v, want >= 20ms latency", elapsed)
	}
}

func TestTCPDelivery(t *testing.T) {
	tr := NewTCP(time.Second, 2*time.Second)
	defer tr.Close()
	self := ids.NodeID("127.0.0.1:39401")
	received := make(chan any, 1)
	if err := tr.Register(self, func(from ids.NodeID, msg any) {
		received <- msg
	}); err != nil {
		t.Fatal(err)
	}
	result := make(chan bool, 1)
	tr.SendCall("127.0.0.1:39402", self, sampleAnycast(), func(ok bool) { result <- ok })
	if ok := <-result; !ok {
		t.Fatal("want ack over TCP")
	}
	select {
	case msg := <-received:
		if got := msg.(ops.AnycastMsg); got.ID.Seq != 7 {
			t.Errorf("message corrupted: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never dispatched")
	}
}

func TestTCPUnreachable(t *testing.T) {
	tr := NewTCP(200*time.Millisecond, time.Second)
	defer tr.Close()
	result := make(chan bool, 1)
	// Nothing listens on this port.
	tr.SendCall("127.0.0.1:39403", "127.0.0.1:39404", sampleAnycast(), func(ok bool) { result <- ok })
	select {
	case ok := <-result:
		if ok {
			t.Error("want nack for unreachable target")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("failure never reported")
	}
}

func TestTCPRegisterValidation(t *testing.T) {
	tr := NewTCP(0, 0)
	defer tr.Close()
	if err := tr.Register("127.0.0.1:39405", nil); err == nil {
		t.Error("want error for nil handler")
	}
	if err := tr.Register("not-an-address", func(ids.NodeID, any) {}); err == nil {
		t.Error("want error for bad address")
	}
}

func TestTCPUnregisterStopsListener(t *testing.T) {
	tr := NewTCP(200*time.Millisecond, time.Second)
	defer tr.Close()
	self := ids.NodeID("127.0.0.1:39406")
	if err := tr.Register(self, func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	tr.Unregister(self)
	result := make(chan bool, 1)
	tr.SendCall("127.0.0.1:39407", self, sampleAnycast(), func(ok bool) { result <- ok })
	if ok := <-result; ok {
		t.Error("want nack after unregister")
	}
}
