// Package ids provides node identities and the consistent, normalized
// pair hash H(id(x), id(y)) ∈ [0,1) that underlies every AVMEM predicate
// (equation 1 of the paper).
//
// Consistency means that any party — the sender, the receiver, or a third
// node — evaluating H over the same pair of identifiers obtains the same
// value, with no dependence on system size, churn, or any other external
// state. We realize H as a SHA-256 digest of the ordered concatenation of
// the two identifiers, truncated to 64 bits and scaled into [0,1).
//
// Architecture: DESIGN.md §3 (predicate evaluation) and §4
// (hash-ordered dissemination).
package ids

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"strconv"
	"sync"
)

// NodeID identifies a node by its network address (IP:port in the paper's
// model) or any other stable string. Two nodes are the same node if and
// only if their NodeIDs are equal.
type NodeID string

// Nil is the zero NodeID, used to signal "no node".
const Nil NodeID = ""

// IsNil reports whether the ID is the zero identifier.
func (id NodeID) IsNil() bool { return id == Nil }

// String returns the identifier verbatim.
func (id NodeID) String() string { return string(id) }

// FromHostPort builds a NodeID from an address and port, in the canonical
// "host:port" form used throughout the library.
func FromHostPort(host string, port int) NodeID {
	return NodeID(net.JoinHostPort(host, strconv.Itoa(port)))
}

// Synthetic returns a deterministic NodeID for the i-th simulated node.
// Simulated identities are drawn from the 10.0.0.0/8 space so that they
// can never collide with real deployments yet still parse as host:port.
func Synthetic(i int) NodeID {
	// 10.a.b.c:4000+k spreads 16M+ ids; enough for any simulation here.
	a := (i >> 16) & 0xff
	b := (i >> 8) & 0xff
	c := i & 0xff
	return NodeID(fmt.Sprintf("10.%d.%d.%d:%d", a, b, c, 4000+(i%1000)))
}

// two63 is 2^63 as a float64; PairHash keeps 63 bits so the ratio is < 1.
const two63 = float64(1 << 63)

// PairHash computes the normalized consistent hash H(id(x), id(y)) ∈ [0,1).
//
// The concatenation is ordered and length-prefixed, so H(x,y) and H(y,x)
// are independent uniform draws and no two distinct pairs can collide by
// boundary ambiguity. The function is pure: it depends only on the two
// identifiers.
func PairHash(x, y NodeID) float64 {
	// One-shot digest over a stack buffer: identical byte stream (and
	// therefore identical hash values) to the streaming construction,
	// without the per-call digest and sum allocations. Simulated and
	// host:port identifiers fit the array; oversized ones fall back.
	var arr [128]byte
	var buf []byte
	if n := 8 + len(x) + len(y); n <= len(arr) {
		buf = arr[:0]
	} else {
		buf = make([]byte, 0, n)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
	buf = append(buf, x...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(y)))
	buf = append(buf, y...)
	sum := sha256.Sum256(buf)
	// Keep 63 bits: guarantees a value strictly below 1.0 after division.
	v := binary.BigEndian.Uint64(sum[:8]) >> 1
	return float64(v) / two63
}

// SelfHash returns a normalized hash of a single identifier in [0,1).
// It is used where a node needs a consistent private coin, e.g. tie
// breaking that must not be influenced by peers.
func SelfHash(x NodeID) float64 {
	sum := sha256.Sum256([]byte(x))
	v := binary.BigEndian.Uint64(sum[:8]) >> 1
	return float64(v) / two63
}

// HashCache memoizes PairHash values. Predicate evaluation during
// discovery re-tests the same (x,y) pairs every protocol period, so a
// small map-backed cache removes nearly all SHA-256 work from the hot
// path. The zero value is ready to use. HashCache is not safe for
// concurrent use unless Shared is called; each simulated world or live
// node owns its own.
type HashCache struct {
	m   map[pairKey]float64
	max int
	// mu guards m when the cache is shared between worker threads
	// (Shared). The memoized values are pure functions of the key, so
	// locking changes contention, never results.
	mu     sync.RWMutex
	locked bool
}

// Shared marks the cache as shared between worker threads: every
// subsequent Pair call takes the cache lock. The thread-parallel
// deployment engine calls this once at world assembly; single-threaded
// worlds skip the locks entirely.
func (c *HashCache) Shared() { c.locked = true }

type pairKey struct{ x, y NodeID }

// NewHashCache returns a cache bounded to at most max entries
// (max <= 0 means a default of 4M entries, enough for a 2000-node world).
func NewHashCache(max int) *HashCache {
	if max <= 0 {
		max = 4 << 20
	}
	return &HashCache{m: make(map[pairKey]float64, 1024), max: max}
}

// Pair returns H(x,y), computing and memoizing it on first use.
func (c *HashCache) Pair(x, y NodeID) float64 {
	if c.locked {
		return c.pairLocked(x, y)
	}
	if c.m == nil {
		c.m = make(map[pairKey]float64, 1024)
	}
	k := pairKey{x, y}
	if v, ok := c.m[k]; ok {
		return v
	}
	v := PairHash(x, y)
	if c.max > 0 && len(c.m) >= c.max {
		// Simple full reset: the working set is periodic, so a rebuild
		// costs one discovery round and keeps memory bounded.
		c.m = make(map[pairKey]float64, 1024)
	}
	c.m[k] = v
	return v
}

// pairLocked is Pair under the shared-cache lock: read-locked lookup,
// write-locked fill on miss.
func (c *HashCache) pairLocked(x, y NodeID) float64 {
	k := pairKey{x, y}
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = PairHash(x, y)
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[pairKey]float64, 1024)
	}
	if c.max > 0 && len(c.m) >= c.max {
		c.m = make(map[pairKey]float64, 1024)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// Len reports the number of memoized pairs.
func (c *HashCache) Len() int { return len(c.m) }

// Band classifies availabilities into the paper's initiator bands:
// LOW [0, 1/3), MID [1/3, 2/3), HIGH [2/3, 1].
type Band int

// Initiator bands used throughout the evaluation section.
const (
	BandLow Band = iota
	BandMid
	BandHigh
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "LOW"
	case BandMid:
		return "MID"
	case BandHigh:
		return "HIGH"
	default:
		return "Band(" + strconv.Itoa(int(b)) + ")"
	}
}

// BandOf returns the band containing availability a.
func BandOf(a float64) Band {
	switch {
	case a < 1.0/3.0:
		return BandLow
	case a < 2.0/3.0:
		return BandMid
	default:
		return BandHigh
	}
}

// BandInterval returns the availability interval [lo, hi) spanned by b
// (hi is 1.0 inclusive for BandHigh; callers treat it as a closed end).
func BandInterval(b Band) (lo, hi float64) {
	switch b {
	case BandLow:
		return 0, 1.0 / 3.0
	case BandMid:
		return 1.0 / 3.0, 2.0 / 3.0
	default:
		return 2.0 / 3.0, 1.0
	}
}

// Clamp01 clamps v into [0,1]. Availabilities and predicate outputs live
// in the unit interval; every boundary computation funnels through here.
func Clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v), v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
