package ids

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairHashRange(t *testing.T) {
	pairs := [][2]NodeID{
		{"a", "b"},
		{"10.0.0.1:4000", "10.0.0.2:4001"},
		{"", ""},
		{"x", ""},
		{"", "x"},
		{"long-identifier-with-lots-of-text", "another-one"},
	}
	for _, p := range pairs {
		h := PairHash(p[0], p[1])
		if h < 0 || h >= 1 {
			t.Errorf("PairHash(%q,%q) = %v, want in [0,1)", p[0], p[1], h)
		}
	}
}

func TestPairHashConsistency(t *testing.T) {
	x, y := NodeID("10.1.2.3:4000"), NodeID("10.4.5.6:4001")
	first := PairHash(x, y)
	for i := 0; i < 10; i++ {
		if got := PairHash(x, y); got != first {
			t.Fatalf("PairHash not consistent: got %v want %v", got, first)
		}
	}
}

func TestPairHashOrderDependent(t *testing.T) {
	x, y := NodeID("10.1.2.3:4000"), NodeID("10.4.5.6:4001")
	if PairHash(x, y) == PairHash(y, x) {
		t.Errorf("PairHash(x,y) == PairHash(y,x); expected independent draws")
	}
}

func TestPairHashNoBoundaryCollision(t *testing.T) {
	// ("ab","c") must differ from ("a","bc"): length prefixing at work.
	if PairHash("ab", "c") == PairHash("a", "bc") {
		t.Errorf(`PairHash("ab","c") == PairHash("a","bc"); boundary ambiguity`)
	}
}

func TestPairHashUniformity(t *testing.T) {
	// Mean of many hashes should be near 0.5 and buckets roughly equal.
	const n = 20000
	const buckets = 10
	var sum float64
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		h := PairHash(Synthetic(i), Synthetic(i+1))
		sum += h
		b := int(h * buckets)
		if b == buckets {
			b--
		}
		counts[b]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean hash = %v, want ~0.5", mean)
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", b, frac)
		}
	}
}

func TestPairHashQuickProperties(t *testing.T) {
	prop := func(x, y string) bool {
		h := PairHash(NodeID(x), NodeID(y))
		return h >= 0 && h < 1 && h == PairHash(NodeID(x), NodeID(y))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSelfHash(t *testing.T) {
	h1 := SelfHash("10.0.0.1:4000")
	h2 := SelfHash("10.0.0.1:4000")
	h3 := SelfHash("10.0.0.2:4000")
	if h1 != h2 {
		t.Errorf("SelfHash not consistent")
	}
	if h1 == h3 {
		t.Errorf("SelfHash collision for distinct ids (vanishingly unlikely)")
	}
	if h1 < 0 || h1 >= 1 {
		t.Errorf("SelfHash out of range: %v", h1)
	}
}

func TestSynthetic(t *testing.T) {
	seen := make(map[NodeID]bool)
	for i := 0; i < 5000; i++ {
		id := Synthetic(i)
		if seen[id] {
			t.Fatalf("Synthetic(%d) = %q collides with an earlier id", i, id)
		}
		seen[id] = true
	}
}

func TestFromHostPort(t *testing.T) {
	tests := []struct {
		host string
		port int
		want NodeID
	}{
		{"10.0.0.1", 4000, "10.0.0.1:4000"},
		{"example.com", 80, "example.com:80"},
		{"::1", 9000, "[::1]:9000"},
	}
	for _, tc := range tests {
		if got := FromHostPort(tc.host, tc.port); got != tc.want {
			t.Errorf("FromHostPort(%q,%d) = %q, want %q", tc.host, tc.port, got, tc.want)
		}
	}
}

func TestHashCache(t *testing.T) {
	c := NewHashCache(0)
	x, y := Synthetic(1), Synthetic(2)
	direct := PairHash(x, y)
	if got := c.Pair(x, y); got != direct {
		t.Errorf("cache miss value = %v, want %v", got, direct)
	}
	if got := c.Pair(x, y); got != direct {
		t.Errorf("cache hit value = %v, want %v", got, direct)
	}
	if c.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", c.Len())
	}
}

func TestHashCacheZeroValue(t *testing.T) {
	var c HashCache
	if got, want := c.Pair("a", "b"), PairHash("a", "b"); got != want {
		t.Errorf("zero-value cache Pair = %v, want %v", got, want)
	}
}

func TestHashCacheEviction(t *testing.T) {
	c := NewHashCache(4)
	for i := 0; i < 20; i++ {
		c.Pair(Synthetic(i), Synthetic(i+1))
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded bound: len=%d", c.Len())
	}
	// Values must still be correct after eviction.
	if got, want := c.Pair(Synthetic(0), Synthetic(1)), PairHash(Synthetic(0), Synthetic(1)); got != want {
		t.Errorf("post-eviction value = %v, want %v", got, want)
	}
}

func TestBandOf(t *testing.T) {
	tests := []struct {
		a    float64
		want Band
	}{
		{0, BandLow},
		{0.3332, BandLow},
		{1.0 / 3.0, BandMid},
		{0.5, BandMid},
		{0.6665, BandMid},
		{2.0 / 3.0, BandHigh},
		{0.9, BandHigh},
		{1.0, BandHigh},
	}
	for _, tc := range tests {
		if got := BandOf(tc.a); got != tc.want {
			t.Errorf("BandOf(%v) = %v, want %v", tc.a, got, tc.want)
		}
	}
}

func TestBandInterval(t *testing.T) {
	for _, b := range []Band{BandLow, BandMid, BandHigh} {
		lo, hi := BandInterval(b)
		if lo >= hi {
			t.Errorf("BandInterval(%v) = [%v,%v), degenerate", b, lo, hi)
		}
		mid := (lo + hi) / 2
		if got := BandOf(mid); got != b {
			t.Errorf("BandOf(midpoint of %v) = %v", b, got)
		}
	}
}

func TestBandString(t *testing.T) {
	if BandLow.String() != "LOW" || BandMid.String() != "MID" || BandHigh.String() != "HIGH" {
		t.Errorf("band strings wrong: %v %v %v", BandLow, BandMid, BandHigh)
	}
	if Band(42).String() != "Band(42)" {
		t.Errorf("unknown band string = %q", Band(42).String())
	}
}

func TestClamp01(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{-1, 0},
		{0, 0},
		{0.5, 0.5},
		{1, 1},
		{2, 1},
		{math.NaN(), 0},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
	}
	for _, tc := range tests {
		if got := Clamp01(tc.in); got != tc.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNodeIDNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Synthetic(0).IsNil() {
		t.Error("Synthetic(0).IsNil() = true")
	}
	if Nil.String() != "" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
}

func BenchmarkPairHash(b *testing.B) {
	x, y := Synthetic(1), Synthetic(2)
	for i := 0; i < b.N; i++ {
		PairHash(x, y)
	}
}

func BenchmarkHashCachePair(b *testing.B) {
	c := NewHashCache(0)
	x, y := Synthetic(1), Synthetic(2)
	c.Pair(x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Pair(x, y)
	}
}
