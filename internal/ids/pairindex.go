package ids

import (
	"fmt"
	"math/bits"
	"sync"
)

// PairIndexCache memoizes PairHash over a fixed host universe, keyed by
// dense host index instead of identifier strings. Discovery evaluates
// H(self, y) for the same pairs every protocol period; with string keys
// the memo lookup itself (hashing two identifiers per probe) dominates
// the round. The memo is a flat open-addressing table (linear probing,
// Fibonacci hashing) rather than a Go map: the packed integer key is
// already uniform enough that one multiply beats the generic map
// machinery, and a probe touches two adjacent slices instead of
// bucket metadata.
//
// Values are identical to PairHash(hosts[x], hosts[y]) — the cache only
// changes where the memo lives, never what H evaluates to.
//
// PairIndexCache is not safe for concurrent use unless Shared is
// called; each world (or shard) owns its own.
type PairIndexCache struct {
	hosts []NodeID
	// keys holds packed pair keys biased by +1 so 0 means "empty slot"
	// (both halves are int32 indexes, so the bias never overflows).
	keys  []uint64
	vals  []float64
	used  int
	max   int
	shift uint
	// mu guards the table when the cache is shared between worker
	// threads (Shared). Values are pure functions of the key, so the
	// lock changes contention, never results.
	mu     sync.RWMutex
	locked bool
}

// Shared marks the cache as shared between worker threads: every
// subsequent Pair call takes the table lock. The thread-parallel
// deployment engine calls this once at world assembly.
func (c *PairIndexCache) Shared() { c.locked = true }

const pairIdxInitSlots = 1 << 12

// fibMix is 2^64 / phi, the Fibonacci-hashing multiplier.
const fibMix = 0x9E3779B97F4A7C15

// NewPairIndexCache builds a cache over the host universe (index order
// must match the indexes later passed to Pair). max bounds the entry
// count (<= 0 means a default of 4M entries).
func NewPairIndexCache(hosts []NodeID, max int) (*PairIndexCache, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("ids: empty host universe")
	}
	if max <= 0 {
		max = 4 << 20
	}
	c := &PairIndexCache{hosts: hosts, max: max}
	c.reset(pairIdxInitSlots)
	return c, nil
}

// reset reinitializes the table with the given power-of-two slot count.
func (c *PairIndexCache) reset(slots int) {
	c.keys = make([]uint64, slots)
	c.vals = make([]float64, slots)
	c.used = 0
	c.shift = uint(64 - bits.TrailingZeros(uint(slots)))
}

// Hosts returns the universe size.
func (c *PairIndexCache) Hosts() int { return len(c.hosts) }

// ID returns the identifier at index i.
func (c *PairIndexCache) ID(i int32) NodeID { return c.hosts[i] }

// Pair returns H(hosts[x], hosts[y]), computing and memoizing it on
// first use. PairHash is ordered (H(x,y) and H(y,x) are independent),
// so the key preserves argument order.
func (c *PairIndexCache) Pair(x, y int32) float64 {
	k := (uint64(uint32(x))<<32 | uint64(uint32(y))) + 1
	if c.locked {
		return c.pairLocked(k, x, y)
	}
	mask := uint64(len(c.keys)) - 1
	i := (k * fibMix) >> c.shift
	for {
		switch c.keys[i] {
		case k:
			return c.vals[i]
		case 0:
			v := PairHash(c.hosts[x], c.hosts[y])
			c.store(k, v, i)
			return v
		}
		i = (i + 1) & mask
	}
}

// pairLocked is Pair under the shared-cache lock: a read-locked probe,
// then a write-locked re-probe + insert on miss (the table may have
// been grown or reset by another thread in between, so the miss path
// restarts the probe from scratch under the exclusive lock).
func (c *PairIndexCache) pairLocked(k uint64, x, y int32) float64 {
	c.mu.RLock()
	mask := uint64(len(c.keys)) - 1
	i := (k * fibMix) >> c.shift
	for {
		kk := c.keys[i]
		if kk == k {
			v := c.vals[i]
			c.mu.RUnlock()
			return v
		}
		if kk == 0 {
			break
		}
		i = (i + 1) & mask
	}
	c.mu.RUnlock()
	v := PairHash(c.hosts[x], c.hosts[y])
	c.mu.Lock()
	mask = uint64(len(c.keys)) - 1
	i = (k * fibMix) >> c.shift
	for {
		kk := c.keys[i]
		if kk == k {
			v = c.vals[i]
			break
		}
		if kk == 0 {
			c.store(k, v, i)
			break
		}
		i = (i + 1) & mask
	}
	c.mu.Unlock()
	return v
}

// store writes a new entry at slot (known empty), growing — or, at the
// entry bound, fully resetting like HashCache — first when the table
// would exceed 3/4 load. The working set is periodic, so a reset costs
// one discovery round and keeps memory bounded.
func (c *PairIndexCache) store(k uint64, v float64, slot uint64) {
	if (c.used+1)*4 >= len(c.keys)*3 {
		if c.used >= c.max {
			c.reset(pairIdxInitSlots)
		} else {
			old, oldVals := c.keys, c.vals
			c.reset(len(c.keys) * 2)
			for j, kk := range old {
				if kk != 0 {
					c.place(kk, oldVals[j])
				}
			}
		}
		mask := uint64(len(c.keys)) - 1
		slot = (k * fibMix) >> c.shift
		for c.keys[slot] != 0 {
			slot = (slot + 1) & mask
		}
	}
	c.keys[slot] = k
	c.vals[slot] = v
	c.used++
}

// place inserts into the first free probe slot (rehash path; the key is
// known absent).
func (c *PairIndexCache) place(k uint64, v float64) {
	mask := uint64(len(c.keys)) - 1
	i := (k * fibMix) >> c.shift
	for c.keys[i] != 0 {
		i = (i + 1) & mask
	}
	c.keys[i] = k
	c.vals[i] = v
	c.used++
}

// Len reports the number of memoized pairs.
func (c *PairIndexCache) Len() int { return c.used }
