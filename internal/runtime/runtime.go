// Package runtime is the execution contract between AVMEM's protocol
// logic and the engine that hosts it. One interface — Env — names
// everything a node needs from its surroundings (a clock, one-shot and
// periodic timers, messaging with acknowledgment semantics, a liveness
// probe, private randomness, and a registration point on the message
// fabric), and two families of implementations bind it:
//
//   - Virtual: a deterministic Env on the discrete-event simulator's
//     clock. Many Virtual envs share one Scheduler and one Fabric, so a
//     whole cluster of real nodes executes single-threaded in virtual
//     time — fast, reproducible per seed, and race-free by construction.
//   - Live: a wall-clock Env over a transport.Transport. Timers are real
//     timers, messages cross a real (TCP or in-process) network, and the
//     owning node serializes asynchronous callbacks through a gate.
//
// core, ops, avmon, and shuffle drivers are written once against this
// contract; internal/node runs on any Env, and internal/exp binds the
// same node code to either engine. ops.Env is the structural subset the
// operation router consumes — every runtime Env satisfies it.
//
// Architecture: DESIGN.md §6 (the Runtime/Env layer).
package runtime

import (
	"time"

	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/transport"
)

// Env is the single host-environment contract of the AVMEM runtime.
// It embeds ops.Env (clock, one-shot timers, uniform randomness,
// messaging with ack semantics, self-liveness) and adds the node-level
// surface: periodic timers for protocol drivers, integer randomness,
// identity, and fabric registration.
//
// Callback discipline: After, Every, and SendCall callbacks fire on the
// engine's thread (the simulator's event loop, or a timer/transport
// goroutine in live mode). Owners that need mutual exclusion wrap the
// Env with Gated rather than locking inside every callback.
type Env interface {
	ops.Env

	// Self returns the identity this Env is bound to.
	Self() ids.NodeID
	// Every schedules fn at now+offset and every period thereafter until
	// the returned stop function is called. period must be positive.
	Every(offset, period time.Duration, fn func()) (stop func())
	// RandIntn returns a uniform int in [0, n); n must be positive.
	RandIntn(n int) int
	// Register binds the Env's identity to the message fabric and
	// installs the inbound handler. It must precede Send/SendCall.
	Register(h transport.Handler) error
	// Unregister removes the identity from the fabric.
	Unregister()
}

// Scheduler is the time source of a virtual Env: the discrete-event
// simulator's clock and deferred-execution queue. sim.World implements
// it.
type Scheduler interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// After schedules fn to run d from now.
	After(d time.Duration, fn func())
}

// Fabric moves messages between identities. transport.Transport
// implementations (TCP, Memory, Memnet) satisfy it directly; sim.Network
// is adapted by NetFabric.
type Fabric interface {
	// Register installs the message handler for self.
	Register(self ids.NodeID, h transport.Handler) error
	// Unregister removes self from the fabric.
	Unregister(self ids.NodeID)
	// Send delivers msg to the target, best effort.
	Send(from, to ids.NodeID, msg any)
	// SendCall delivers msg and reports the outcome exactly once:
	// onResult(true) after the target acknowledged, onResult(false) when
	// it was unreachable.
	SendCall(from, to ids.NodeID, msg any, onResult func(ok bool))
}

// Stopper is implemented by Envs whose timers outlive a node and must be
// cancelled on shutdown (both Virtual and Live implement it). Owners
// call it from their Stop path; a stopped Env suppresses every pending
// and future callback.
type Stopper interface {
	Stop()
}
