package runtime

import (
	"sync"
	"testing"
	"time"

	"avmem/internal/ids"
	"avmem/internal/sim"
	"avmem/internal/transport"
)

func newVirtualPair(t *testing.T) (*sim.World, *transport.Memnet, *Virtual, *Virtual) {
	t.Helper()
	w := sim.NewWorld(1)
	net := transport.NewMemnet(transport.MemnetConfig{After: w.After, Seed: 1})
	mk := func(self ids.NodeID) *Virtual {
		env, err := NewVirtual(VirtualConfig{Self: self, Scheduler: w, Fabric: net, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	return w, net, mk("a"), mk("b")
}

func TestVirtualEnvMessaging(t *testing.T) {
	w, _, a, b := newVirtualPair(t)
	var got []any
	if err := b.Register(func(from ids.NodeID, msg any) {
		if from != "a" {
			t.Errorf("from = %v", from)
		}
		got = append(got, msg)
	}); err != nil {
		t.Fatal(err)
	}
	a.Send("b", "hello")
	acked := false
	a.SendCall("b", "call", func(ok bool) { acked = ok })
	w.RunAll(0)
	if len(got) != 2 || !acked {
		t.Fatalf("messages=%d acked=%v", len(got), acked)
	}
	b.Unregister()
	nacked := false
	a.SendCall("b", "call2", func(ok bool) { nacked = !ok })
	w.RunAll(0)
	if !nacked {
		t.Error("unregistered peer acknowledged")
	}
}

func TestVirtualEnvTimers(t *testing.T) {
	w, _, a, _ := newVirtualPair(t)
	var ticks []time.Duration
	stop := a.Every(10*time.Millisecond, 20*time.Millisecond, func() {
		ticks = append(ticks, a.Now())
		if len(ticks) == 3 {
			// Stopping from inside a tick must halt the chain.
			a.stopSelfForTest()
		}
	})
	defer stop()
	fired := false
	a.After(5*time.Millisecond, func() { fired = true })
	w.Run(200 * time.Millisecond)
	if !fired {
		t.Error("After never fired")
	}
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

// stopSelfForTest exercises Stop from inside a callback.
func (e *Virtual) stopSelfForTest() { e.Stop() }

func TestVirtualEveryStopFunc(t *testing.T) {
	w, _, a, _ := newVirtualPair(t)
	count := 0
	stop := a.Every(0, 10*time.Millisecond, func() { count++ })
	w.Run(25 * time.Millisecond)
	stop()
	w.Run(200 * time.Millisecond)
	if count != 3 {
		t.Errorf("ticks after stop: count = %d, want 3", count)
	}
}

func TestGatedSerializesCallbacks(t *testing.T) {
	w, _, a, b := newVirtualPair(t)
	var mu sync.Mutex
	inGate := 0
	gate := func(fn func()) {
		mu.Lock()
		defer mu.Unlock()
		inGate++
		fn()
	}
	g := Gated(a, gate)
	if err := b.Register(func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	results := 0
	g.After(time.Millisecond, func() { results++ })
	g.SendCall("b", "x", func(ok bool) {
		if ok {
			results++
		}
	})
	stop := g.Every(0, time.Millisecond, func() { results++ })
	w.Run(2 * time.Millisecond)
	stop()
	if inGate < 3 {
		t.Errorf("gate saw %d callbacks, want >= 3", inGate)
	}
	if results < 3 {
		t.Errorf("callbacks ran %d times, want >= 3", results)
	}
	if Gated(a, nil) != Env(a) {
		t.Error("nil gate must return the env unchanged")
	}
}

func TestLiveEnvLifecycle(t *testing.T) {
	tr := transport.NewMemorySeeded(0, 0, 1)
	defer tr.Close()
	mkLive := func(self ids.NodeID) *Live {
		env, err := NewLive(LiveConfig{Self: self, Transport: tr, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	a, b := mkLive("a"), mkLive("b")
	got := make(chan any, 4)
	if err := b.Register(func(from ids.NodeID, msg any) { got <- msg }); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(func(ids.NodeID, any) {}); err != nil {
		t.Fatal(err)
	}
	if a.Now() < 0 {
		t.Error("clock went backwards")
	}
	a.Send("b", "hi")
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("live delivery lost")
	}
	acks := make(chan bool, 1)
	a.SendCall("b", "call", func(ok bool) { acks <- ok })
	if ok := <-acks; !ok {
		t.Fatal("live ack lost")
	}

	fired := make(chan struct{}, 8)
	stop := a.Every(time.Millisecond, time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("live periodic timer never fired")
	}
	stop()

	// After Stop, timers and ack callbacks are suppressed.
	a.Stop()
	a.After(time.Millisecond, func() { t.Error("timer fired after Stop") })
	a.SendCall("b", "late", func(bool) { t.Error("ack fired after Stop") })
	if a.Online() {
		t.Error("stopped env reports online")
	}
	time.Sleep(50 * time.Millisecond)
	b.Stop()
}

func TestNewValidation(t *testing.T) {
	w := sim.NewWorld(1)
	net := transport.NewMemnet(transport.MemnetConfig{After: w.After})
	if _, err := NewVirtual(VirtualConfig{Scheduler: w, Fabric: net}); err == nil {
		t.Error("want error for missing identity")
	}
	if _, err := NewVirtual(VirtualConfig{Self: "a", Fabric: net}); err == nil {
		t.Error("want error for missing scheduler")
	}
	if _, err := NewVirtual(VirtualConfig{Self: "a", Scheduler: w}); err == nil {
		t.Error("want error for missing fabric")
	}
	if _, err := NewLive(LiveConfig{Transport: net}); err == nil {
		t.Error("want error for missing identity")
	}
	if _, err := NewLive(LiveConfig{Self: "a"}); err == nil {
		t.Error("want error for missing transport")
	}
}

func TestNetFabricAdapter(t *testing.T) {
	w := sim.NewWorld(1)
	net := sim.NewNetwork(w, sim.FixedLatency(time.Millisecond), nil, 0)
	f := NetFabric(net)
	env, err := NewVirtual(VirtualConfig{Self: "a", Scheduler: w, Fabric: f, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	if err := f.Register("b", func(from ids.NodeID, msg any) { got++ }); err != nil {
		t.Fatal(err)
	}
	env.Send("b", "x")
	okCh := false
	env.SendCall("b", "y", func(ok bool) { okCh = ok })
	w.RunAll(0)
	if got != 2 || !okCh {
		t.Fatalf("deliveries=%d ack=%v", got, okCh)
	}
	f.Unregister("b")
	env.Send("b", "z")
	w.RunAll(0)
	if got != 2 {
		t.Error("unregistered sim handler still receiving")
	}
}
