package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"avmem/internal/ids"
	"avmem/internal/sim"
	"avmem/internal/transport"
)

// VirtualConfig assembles a virtual-time Env. Many virtual Envs share
// one Scheduler and one Fabric — that sharing is what makes a memnet
// cluster of real nodes deterministic: every timer and delivery is an
// event on the single virtual clock, executed on one goroutine in a
// reproducible order.
type VirtualConfig struct {
	// Self is the identity the Env is bound to.
	Self ids.NodeID
	// Scheduler supplies virtual time and deferred execution
	// (typically a sim.World).
	Scheduler Scheduler
	// Fabric moves messages (a sim.Network via NetFabric, or a
	// transport implementation such as the deterministic Memnet).
	Fabric Fabric
	// Online reports this node's current liveness (nil = always online).
	Online func() bool
	// RNG is the Env's private randomness. Exactly one of RNG and Seed
	// is used: a non-nil RNG is shared as given (the simulator passes
	// its world RNG), otherwise a private source is seeded from Seed.
	RNG *rand.Rand
	// Seed seeds a private RNG when RNG is nil.
	Seed int64
}

// Virtual is the deterministic Env: virtual clock, scheduler-driven
// timers, fabric messaging. It is single-threaded by contract — all
// calls and callbacks happen on the scheduler's goroutine — and
// therefore needs no locking.
type Virtual struct {
	cfg     VirtualConfig
	rng     *rand.Rand
	stopped bool
}

var _ Env = (*Virtual)(nil)
var _ Stopper = (*Virtual)(nil)

// NewVirtual builds a virtual-time Env.
func NewVirtual(cfg VirtualConfig) (*Virtual, error) {
	if cfg.Self.IsNil() {
		return nil, fmt.Errorf("runtime: Virtual needs an identity")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("runtime: Virtual needs a Scheduler")
	}
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("runtime: Virtual needs a Fabric")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Virtual{cfg: cfg, rng: rng}, nil
}

// Self implements Env.
func (e *Virtual) Self() ids.NodeID { return e.cfg.Self }

// Now implements Env.
func (e *Virtual) Now() time.Duration { return e.cfg.Scheduler.Now() }

// After implements Env. Callbacks of a stopped Env are suppressed.
func (e *Virtual) After(d time.Duration, fn func()) {
	e.cfg.Scheduler.After(d, func() {
		if e.stopped {
			return
		}
		fn()
	})
}

// Every implements Env.
func (e *Virtual) Every(offset, period time.Duration, fn func()) (stop func()) {
	if period <= 0 || fn == nil {
		return func() {}
	}
	running := true
	var tick func()
	tick = func() {
		if !running {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(offset, tick)
	return func() { running = false }
}

// RandFloat implements Env.
func (e *Virtual) RandFloat() float64 { return e.rng.Float64() }

// RandIntn implements Env.
func (e *Virtual) RandIntn(n int) int { return e.rng.Intn(n) }

// Register implements Env.
func (e *Virtual) Register(h transport.Handler) error {
	return e.cfg.Fabric.Register(e.cfg.Self, h)
}

// Unregister implements Env.
func (e *Virtual) Unregister() { e.cfg.Fabric.Unregister(e.cfg.Self) }

// Send implements Env.
func (e *Virtual) Send(to ids.NodeID, msg any) {
	e.cfg.Fabric.Send(e.cfg.Self, to, msg)
}

// SendCall implements Env.
func (e *Virtual) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	e.cfg.Fabric.SendCall(e.cfg.Self, to, msg, onResult)
}

// Online implements Env.
func (e *Virtual) Online() bool {
	if e.stopped {
		return false
	}
	if e.cfg.Online == nil {
		return true
	}
	return e.cfg.Online()
}

// Stop implements Stopper: pending and future timer callbacks are
// suppressed. Messaging is left registered; owners Unregister
// separately.
func (e *Virtual) Stop() { e.stopped = true }

// netFabric adapts the simulator's network to the Fabric contract.
type netFabric struct{ net *sim.Network }

// NetFabric wraps a sim.Network as a Fabric, so virtual Envs bind the
// simulator's message fabric through the same seam the live transports
// use.
func NetFabric(n *sim.Network) Fabric { return netFabric{net: n} }

// Register implements Fabric.
func (f netFabric) Register(self ids.NodeID, h transport.Handler) error {
	f.net.Register(self, sim.Handler(h))
	return nil
}

// Unregister implements Fabric.
func (f netFabric) Unregister(self ids.NodeID) { f.net.Register(self, nil) }

// Send implements Fabric.
func (f netFabric) Send(from, to ids.NodeID, msg any) { f.net.Send(from, to, msg) }

// SendCall implements Fabric.
func (f netFabric) SendCall(from, to ids.NodeID, msg any, onResult func(ok bool)) {
	f.net.SendCall(from, to, msg, onResult)
}
