package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"avmem/internal/ids"
	"avmem/internal/transport"
)

// LiveConfig assembles a wall-clock Env over a real transport.
type LiveConfig struct {
	// Self is the identity the Env is bound to; for the TCP transport it
	// must be the host:port to listen on.
	Self ids.NodeID
	// Transport moves messages.
	Transport transport.Transport
	// Seed seeds the Env's private randomness.
	Seed int64
	// Online reports the owner's liveness (nil = online until Stop).
	Online func() bool
}

// Live is the wall-clock Env: real timers, real transport, goroutine
// callbacks. It is safe for concurrent use; owners that need callbacks
// serialized against their own state wrap it with Gated.
type Live struct {
	cfg LiveConfig

	mu      sync.Mutex
	rng     *rand.Rand
	started time.Time
	timers  map[int]*time.Timer
	timerID int
	stopped bool
}

var _ Env = (*Live)(nil)
var _ Stopper = (*Live)(nil)

// NewLive builds a live Env (its clock starts at Register).
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Self.IsNil() {
		return nil, fmt.Errorf("runtime: Live needs an identity")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("runtime: Live needs a Transport")
	}
	return &Live{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		timers: make(map[int]*time.Timer, 8),
	}, nil
}

// Self implements Env.
func (e *Live) Self() ids.NodeID { return e.cfg.Self }

// Now implements Env: time since Register (zero before it).
func (e *Live) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started.IsZero() {
		return 0
	}
	return time.Since(e.started)
}

// afterLocked schedules fn on a tracked timer. Caller holds e.mu.
func (e *Live) afterLocked(d time.Duration, fn func()) {
	if e.stopped {
		return
	}
	id := e.timerID
	e.timerID++
	e.timers[id] = time.AfterFunc(d, func() {
		e.mu.Lock()
		delete(e.timers, id)
		dead := e.stopped
		e.mu.Unlock()
		if dead {
			return
		}
		fn()
	})
}

// After implements Env.
func (e *Live) After(d time.Duration, fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.afterLocked(d, fn)
}

// Every implements Env.
func (e *Live) Every(offset, period time.Duration, fn func()) (stop func()) {
	if period <= 0 || fn == nil {
		return func() {}
	}
	var mu sync.Mutex
	running := true
	var tick func()
	tick = func() {
		mu.Lock()
		alive := running
		mu.Unlock()
		if !alive {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(offset, tick)
	return func() {
		mu.Lock()
		running = false
		mu.Unlock()
	}
}

// RandFloat implements Env.
func (e *Live) RandFloat() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.Float64()
}

// RandIntn implements Env.
func (e *Live) RandIntn(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.Intn(n)
}

// Register implements Env and starts the Env's clock.
func (e *Live) Register(h transport.Handler) error {
	if err := e.cfg.Transport.Register(e.cfg.Self, h); err != nil {
		return err
	}
	e.mu.Lock()
	if e.started.IsZero() {
		e.started = time.Now()
	}
	e.mu.Unlock()
	return nil
}

// Unregister implements Env.
func (e *Live) Unregister() { e.cfg.Transport.Unregister(e.cfg.Self) }

// Send implements Env.
func (e *Live) Send(to ids.NodeID, msg any) {
	e.cfg.Transport.Send(e.cfg.Self, to, msg)
}

// SendCall implements Env.
func (e *Live) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	e.cfg.Transport.SendCall(e.cfg.Self, to, msg, func(ok bool) {
		e.mu.Lock()
		dead := e.stopped
		e.mu.Unlock()
		if dead || onResult == nil {
			return
		}
		onResult(ok)
	})
}

// Online implements Env.
func (e *Live) Online() bool {
	e.mu.Lock()
	dead := e.stopped
	e.mu.Unlock()
	if dead {
		return false
	}
	if e.cfg.Online == nil {
		return true
	}
	return e.cfg.Online()
}

// Stop implements Stopper: cancels every pending timer and suppresses
// late callbacks (including in-flight SendCall results).
func (e *Live) Stop() {
	e.mu.Lock()
	e.stopped = true
	for id, t := range e.timers {
		t.Stop()
		delete(e.timers, id)
	}
	e.mu.Unlock()
}
