package runtime

import (
	"time"

	"avmem/internal/ids"
	"avmem/internal/transport"
)

// gated decorates an Env so every asynchronous callback — one-shot
// timers, periodic ticks, and SendCall results — runs through a gate.
// The owning node's gate takes its state lock and drops callbacks that
// arrive after shutdown, which is exactly the serialization the live
// engine needs; under a virtual Env the gate is an uncontended lock on
// the single scheduler goroutine, so determinism is unaffected.
type gated struct {
	env  Env
	gate func(fn func())
}

var _ Env = (*gated)(nil)

// Gated wraps env with a callback gate. A nil gate returns env
// unchanged.
func Gated(env Env, gate func(fn func())) Env {
	if gate == nil {
		return env
	}
	return &gated{env: env, gate: gate}
}

// Self implements Env.
func (g *gated) Self() ids.NodeID { return g.env.Self() }

// Now implements Env.
func (g *gated) Now() time.Duration { return g.env.Now() }

// After implements Env: fn fires inside the gate.
func (g *gated) After(d time.Duration, fn func()) {
	g.env.After(d, func() { g.gate(fn) })
}

// Every implements Env: each tick fires inside the gate.
func (g *gated) Every(offset, period time.Duration, fn func()) (stop func()) {
	return g.env.Every(offset, period, func() { g.gate(fn) })
}

// RandFloat implements Env.
func (g *gated) RandFloat() float64 { return g.env.RandFloat() }

// RandIntn implements Env.
func (g *gated) RandIntn(n int) int { return g.env.RandIntn(n) }

// Register implements Env. The inbound handler is not gated: handlers
// manage their own locking (shuffle traffic must not serialize behind
// operation handling).
func (g *gated) Register(h transport.Handler) error {
	return g.env.Register(h)
}

// Unregister implements Env.
func (g *gated) Unregister() { g.env.Unregister() }

// Send implements Env.
func (g *gated) Send(to ids.NodeID, msg any) { g.env.Send(to, msg) }

// SendCall implements Env: the result callback fires inside the gate.
func (g *gated) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	if onResult == nil {
		g.env.SendCall(to, msg, nil)
		return
	}
	g.env.SendCall(to, msg, func(ok bool) {
		g.gate(func() { onResult(ok) })
	})
}

// Online implements Env.
func (g *gated) Online() bool { return g.env.Online() }
