package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the live telemetry
// surface: /metrics (Prometheus text exposition of reg), /healthz,
// and /debug/pprof. Every endpoint only *reads* snapshots — serving
// a request never mutates simulation state, so the surface is safe to
// scrape while a run is in flight.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry listener. Close shuts it down.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Serve starts the telemetry surface on addr in a background
// goroutine and returns once the listener is bound. The server shares
// nothing mutable with the simulation: handlers read atomic snapshots
// from reg only.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the listener and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
