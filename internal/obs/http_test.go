package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeEndpoints boots the telemetry surface on an ephemeral port
// and exercises /metrics, /healthz, and /debug/pprof end to end.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_events_total").Add(42)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("metrics content-type %q lacks exposition version", ctype)
	}
	if !strings.Contains(body, "# TYPE sim_events_total counter\nsim_events_total 42\n") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("healthz body %q", body)
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles:\n%.200s", body)
	}

	// Scrapes observe live counter updates (read-only snapshot path).
	reg.Counter("sim_events_total").Add(8)
	if body, _ := get("/metrics"); !strings.Contains(body, "sim_events_total 50") {
		t.Errorf("metrics not live:\n%s", body)
	}
}
