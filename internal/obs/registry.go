package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument. All
// methods are safe for concurrent use and no-op on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n to the counter. Negative deltas are ignored: counters
// only move forward.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float instrument that can move in either direction.
// All methods are safe for concurrent use and no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution instrument. Bucket bounds
// are set at registration and never change; observations land in the
// first bucket whose upper bound is >= the value, or in the implicit
// +Inf bucket. All methods are safe for concurrent use and no-op on a
// nil receiver.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the bucket upper bounds and the per-bucket
// (non-cumulative) counts, including the trailing +Inf bucket count.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// Registry holds named instruments. Names follow Prometheus
// conventions and may carry a label suffix (`sim_lane_events_total` or
// `sim_lane_events_total{lane="3"}`); everything up to the first '{'
// is the metric family. Registration is idempotent: asking for an
// existing name returns the existing instrument, so independent layers
// can share counters without coordination. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use
// and no-op (returning nil instruments) on a nil receiver.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given sorted upper bounds on first use. Later calls return
// the existing instrument and ignore bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// family returns the metric family of a registered name: everything up
// to the label block, if any.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labeled splits a registered name into the family and a label block
// to splice extra labels into ("" when unlabeled, `lane="3"` when
// labeled).
func labeled(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4). Output is fully sorted — by
// family, then by instance name — so successive dumps of the same
// state are byte-identical regardless of registration order or map
// iteration. This is also the registry's canonical end-of-run dump
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type inst struct {
		name string
		kind string // "counter", "gauge", "histogram"
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	var all []inst
	for n, c := range r.counters {
		all = append(all, inst{name: n, kind: "counter", c: c})
	}
	for n, g := range r.gauges {
		all = append(all, inst{name: n, kind: "gauge", g: g})
	}
	for n, h := range r.histograms {
		all = append(all, inst{name: n, kind: "histogram", h: h})
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		fi, fj := family(all[i].name), family(all[j].name)
		if fi != fj {
			return fi < fj
		}
		return all[i].name < all[j].name
	})

	var b strings.Builder
	lastFam := ""
	for _, in := range all {
		fam := family(in.name)
		if fam != lastFam {
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, in.kind)
			lastFam = fam
		}
		switch in.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", in.name, in.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", in.name, formatFloat(in.g.Value()))
		case "histogram":
			writeHistogram(&b, in.name, in.h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	fam, labels := labeled(name)
	bounds, counts := h.Buckets()
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", fam, labels, sep, formatFloat(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", fam, labels, sep, h.Count())
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", fam, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", fam, labels, h.Count())
}
