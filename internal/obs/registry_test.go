package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", 1, 2)
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Record(Span{})
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("events_total")
	b := reg.Counter("events_total")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter: got %d, want 3", b.Value())
	}
	h1 := reg.Histogram("lat", 1, 2, 4)
	h2 := reg.Histogram("lat", 9, 9, 9) // bounds ignored on re-registration
	if h1 != h2 {
		t.Fatal("same name must return same histogram")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hops", 1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// le-semantics: 0.5 and 1 land in le=1; 1.5 and 2 in le=2; 3 in
	// le=4; 100 in +Inf.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 || h.Sum() != 108 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestWritePrometheusSorted pins the exposition format: families
// sorted, # TYPE lines present, labeled instances grouped under one
// family, histograms expanded with cumulative le buckets.
func TestWritePrometheusSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`lane_events_total{lane="1"}`).Add(7)
	reg.Counter(`lane_events_total{lane="0"}`).Add(5)
	reg.Counter("events_total").Add(12)
	reg.Gauge("virtual_time_seconds").Set(3600)
	h := reg.Histogram("anycast_hops", 1, 2, 4)
	h.Observe(1)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		`# TYPE anycast_hops histogram`,
		`anycast_hops_bucket{le="1"} 1`,
		`anycast_hops_bucket{le="2"} 1`,
		`anycast_hops_bucket{le="4"} 2`,
		`anycast_hops_bucket{le="+Inf"} 2`,
		`anycast_hops_sum 4`,
		`anycast_hops_count 2`,
		`# TYPE events_total counter`,
		`events_total 12`,
		`# TYPE lane_events_total counter`,
		`lane_events_total{lane="0"} 5`,
		`lane_events_total{lane="1"} 7`,
		`# TYPE virtual_time_seconds gauge`,
		`virtual_time_seconds 3600`,
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Dumps must be byte-stable across calls (map order independence).
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two dumps of the same state differ")
	}
}

func TestCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	h := reg.Histogram("d", 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter: got %d want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count: got %d want 8000", h.Count())
	}
}
