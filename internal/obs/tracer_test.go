package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	return []Span{
		{At: 10 * time.Millisecond, Op: "h1#1", Kind: "anycast", Ev: "init", Dst: "h1"},
		{At: 40 * time.Millisecond, Op: "h1#1", Kind: "anycast", Ev: "hop", Hop: 1, Src: "h1", Dst: "h7"},
		{At: 90 * time.Millisecond, Op: "h1#1", Kind: "anycast", Ev: "deliver", Hop: 2, Src: "h7", Dst: "h3"},
		{At: 20 * time.Millisecond, Op: "h2#1", Kind: "rangecast", Ev: "init", Dst: "h2"},
	}
}

func TestSnapshotSortedAndOrderIndependent(t *testing.T) {
	a := NewTracer(16)
	b := NewTracer(16)
	spans := sampleSpans()
	for _, s := range spans {
		a.Record(s)
	}
	// Reverse arrival order into b — snapshot must still agree.
	for i := len(spans) - 1; i >= 0; i-- {
		b.Record(spans[i])
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(spans) {
		t.Fatalf("snapshot lost spans: %d", len(sa))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("snapshot order depends on arrival order at %d: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	for i := 1; i < len(sa); i++ {
		if sa[i].At < sa[i-1].At {
			t.Fatal("snapshot not sorted by virtual time")
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{At: time.Duration(i), Op: "x"})
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring held %d spans, want 4", len(snap))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", tr.Dropped())
	}
	if snap[0].At != 6 || snap[3].At != 9 {
		t.Fatalf("ring kept wrong spans: %+v", snap)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(16)
	for _, s := range sampleSpans() {
		tr.Record(s)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("got %d JSONL lines, want 4", lines)
	}
}

// TestChromeTraceRoundTrip writes a trace and validates it with the
// same schema check CI uses; also pins the async begin/end pairing
// per op id that makes Perfetto render one track per operation.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	for _, s := range sampleSpans() {
		tr.Record(s)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 3-span op → b, n, e; 1-span op → b + synthesized e.
	if n != 5 {
		t.Fatalf("got %d trace events, want 5", n)
	}
	var container struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &container); err != nil {
		t.Fatal(err)
	}
	phases := map[string][]string{}
	for _, ev := range container.TraceEvents {
		phases[ev.ID] = append(phases[ev.ID], ev.Phase)
	}
	if got := strings.Join(phases["h1#1"], ""); got != "bne" {
		t.Fatalf("h1#1 phases=%v", phases["h1#1"])
	}
	if got := strings.Join(phases["h2#1"], ""); got != "be" {
		t.Fatalf("h2#1 phases=%v", phases["h2#1"])
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []string{
		`{}`,
		`{"traceEvents":[{"ph":"b","ts":1}]}`,
		`{"traceEvents":[{"name":"x","ts":1}]}`,
		`{"traceEvents":[{"name":"x","ph":"b"}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted invalid trace %q", c)
		}
	}
}
