// Package obs is the deterministic observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms addressable by
// name), a causal per-operation tracer with virtual timestamps, and a
// live HTTP telemetry surface (/metrics, /healthz, /debug/pprof).
//
// The package is deliberately a leaf: it imports only the standard
// library, so every layer of the system — the simulator core, the op
// router, the audit subsystem, the scenario engine — can be
// instrumented without import cycles.
//
// Determinism contract: nothing in this package draws randomness,
// schedules events, or reads wall clocks on behalf of the code it
// observes. Instruments record values the instrumented code already
// computed (virtual timestamps, event counts, hop counts), so enabling
// observability cannot perturb event order — scenario reports are
// byte-identical with the layer on or off. All instrument methods are
// safe on nil receivers and no-op there, which is the disabled fast
// path: an uninstrumented hot loop pays one predictable nil check.
package obs
