package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one causal step of a management operation: a message hop, a
// delivery, a partial-aggregate merge. Timestamps are virtual (the
// simulated clock), never wall time, so traces from the same seed are
// identical run to run.
type Span struct {
	At   time.Duration `json:"at"`   // virtual time of the step
	Op   string        `json:"op"`   // operation id (origin#seq)
	Kind string        `json:"kind"` // anycast | multicast | rangecast | aggregate
	Ev   string        `json:"ev"`   // init | hop | deliver | result | reply | decline | spam
	Hop  int           `json:"hop"`  // hop count or tree depth at this step
	Src  string        `json:"src"`  // sending node ("" at initiation)
	Dst  string        `json:"dst"`  // node recording the step
}

// Tracer collects Spans into a bounded ring buffer. Recording is
// cheap (one mutex acquisition, no allocation beyond the ring slot)
// and safe for concurrent use; a nil Tracer no-ops, which is the
// disabled fast path. When more than cap spans are recorded the
// oldest are dropped — Dropped reports how many.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int // ring write cursor
	n       int // spans currently held (≤ len(ring))
	dropped int64
}

// DefaultTraceCap is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCap = 1 << 18

// NewTracer returns a tracer holding at most cap spans.
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{ring: make([]Span, cap)}
}

// Record appends one span, evicting the oldest if the ring is full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Dropped returns how many spans were evicted from a full ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the held spans in deterministic order: by virtual
// time, then op id, then event fields. Sorting here (rather than
// relying on arrival order) keeps exports byte-identical even when
// worker threads raced to record within one window.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Ev != b.Ev {
			return a.Ev < b.Ev
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out
}

// WriteJSONL writes the snapshot as JSON Lines, one span per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format
// (catapult "JSON Array Format" inside an object container), the
// subset Perfetto renders: async begin (b) / instant (n) / end (e)
// events grouped by id share one per-op track.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds on the virtual-time axis
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	ID    string            `json:"id"`
	Scope string            `json:"scope,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the snapshot in Chrome trace-event format.
// Each operation becomes one async track (keyed by op id): a begin
// event at its first span, an instant event per intermediate span, and
// an end event at its last span. Load the file in Perfetto
// (ui.perfetto.dev) or chrome://tracing; the time axis is virtual
// time in microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	first := make(map[string]int, 64)
	last := make(map[string]int, 64)
	for i, s := range spans {
		if _, ok := first[s.Op]; !ok {
			first[s.Op] = i
		}
		last[s.Op] = i
	}
	events := make([]chromeEvent, 0, len(spans))
	for i, s := range spans {
		ph := "n"
		switch {
		case first[s.Op] == i && last[s.Op] == i:
			// Single-span op: emit begin and end at the same ts so the
			// track still renders.
			ph = "b"
		case first[s.Op] == i:
			ph = "b"
		case last[s.Op] == i:
			ph = "e"
		}
		ev := chromeEvent{
			Name:  s.Kind + "/" + s.Op,
			Cat:   s.Kind,
			Phase: ph,
			TS:    float64(s.At) / float64(time.Microsecond),
			PID:   1,
			TID:   1,
			ID:    s.Op,
			Args: map[string]string{
				"ev":  s.Ev,
				"hop": fmt.Sprint(s.Hop),
				"src": s.Src,
				"dst": s.Dst,
			},
		}
		events = append(events, ev)
		if first[s.Op] == i && last[s.Op] == i {
			end := ev
			end.Phase = "e"
			events = append(events, end)
		}
	}
	container := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(container); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace checks that r holds a structurally valid Chrome
// trace-event file: a JSON object with a traceEvents array whose every
// entry carries a name, a phase, and a numeric ts. Returns the event
// count. This is the minimal schema gate CI runs over emitted traces.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var container struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&container); err != nil {
		return 0, fmt.Errorf("parse trace container: %w", err)
	}
	if container.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	for i, ev := range container.TraceEvents {
		if _, ok := ev["name"].(string); !ok {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return 0, fmt.Errorf("event %d: missing ph", i)
		}
		if _, ok := ev["ts"].(float64); !ok {
			return 0, fmt.Errorf("event %d: missing numeric ts", i)
		}
	}
	return len(container.TraceEvents), nil
}
