// Package node is the live AVMEM runtime: an agent that maintains its
// slivers with periodic timers and executes management operations over
// a message fabric. The same core and ops packages the simulator
// exercises run here unchanged — the node binds them to a runtime.Env,
// and the Env decides which engine executes the node: the default is
// the wall-clock Env over a real transport (TCP or in-process), and the
// scenario engine injects virtual-time Envs to run whole clusters of
// real nodes deterministically inside the simulator's clock.
//
// Architecture: DESIGN.md §11 (live runtime) and §6 (the Runtime/Env
// contract).
package node

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"avmem/internal/adversary"
	"avmem/internal/agg"
	"avmem/internal/audit"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/obs"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/shuffle"
	"avmem/internal/transport"

	"sync"
)

// PeerSource supplies coarse-view candidates for discovery — the live
// counterpart of the shuffling membership service. Implementations may
// be a static seed list, a shared in-process shuffler, or a client of
// an external membership service. Peers is called outside the node's
// internal lock.
type PeerSource interface {
	// Peers returns current coarse-view candidates for self.
	Peers(self ids.NodeID) []ids.NodeID
}

// PeerFunc adapts a function to PeerSource.
type PeerFunc func(self ids.NodeID) []ids.NodeID

// Peers implements PeerSource.
func (f PeerFunc) Peers(self ids.NodeID) []ids.NodeID { return f(self) }

// Config assembles a live node.
type Config struct {
	// Self is this node's identity; for the TCP transport it must be
	// the host:port to listen on.
	Self ids.NodeID
	// Predicate is the AVMEM predicate shared by the deployment.
	Predicate *core.Predicate
	// Monitor answers availability queries.
	Monitor avmon.Service
	// Peers supplies discovery candidates. Exactly one of Peers and
	// Seeds must be set.
	Peers PeerSource
	// Seeds bootstraps the node's built-in shuffling coarse view (the
	// live CYCLON agent): give a few known peers and the view fills
	// itself through periodic exchanges. Use instead of Peers when no
	// external membership service exists.
	Seeds []ids.NodeID
	// ViewSize bounds the built-in coarse view (default 16; only used
	// with Seeds).
	ViewSize int
	// ShuffleLen is the per-exchange entry count (default ViewSize/4,
	// min 3; only used with Seeds).
	ShuffleLen int
	// Transport moves operation messages. Required unless Env is set.
	Transport transport.Transport
	// Env overrides the node's host environment entirely — clock,
	// timers, messaging, randomness. Leave nil for the default live
	// (wall-clock) Env over Transport; the deployment engine injects
	// virtual-time Envs here to run real nodes inside the simulator.
	Env runtime.Env
	// Collector receives operation outcomes. Leave nil for a private
	// collector (each node sees only its own operations); a deployment
	// harness shares one collector across nodes for cluster-wide
	// accounting.
	Collector *ops.Collector
	// Hashes optionally shares a memoized pair-hash cache across nodes
	// of an in-process deployment.
	Hashes *ids.HashCache
	// ProtocolPeriod is the discovery period (default 1 min).
	ProtocolPeriod time.Duration
	// RefreshPeriod is the refresh period (default 20 min).
	RefreshPeriod time.Duration
	// VerifyInbound enables the in-neighbor check on received messages.
	VerifyInbound bool
	// Cushion is the verification cushion.
	Cushion float64
	// Seed seeds all of the node's private randomness — the shuffle
	// agent's sampling and (in the default live Env) the annealing RNG —
	// so a fixed (Seed, Env) pair replays the same local decisions.
	// 0 derives a seed from Self.
	Seed int64
	// Behavior, when non-nil, makes this node misbehave: the host Env is
	// wrapped with the adversary interceptor, so the node's outbound and
	// inbound traffic passes through the behavior on either engine.
	Behavior adversary.Behavior
	// Audit, when non-nil, enables the receiving-side audit layer: the
	// node scores every sender, evicts provable or persistent
	// misbehavers from its membership, and stops routing to them.
	Audit *audit.Params
	// AuditTrail optionally shares a deployment-wide eviction registry
	// across nodes (detection-latency and false-positive metrics).
	AuditTrail *audit.Trail
	// BandCensus, when non-nil, estimates the deployment's expected
	// online population inside an availability band [lo, hi) and arms
	// the router's PDF sanity checks on merged aggregation partials
	// (see ops.RouterConfig.BandCensus). Deployment harnesses derive it
	// from the trace's availability PDF and N*.
	BandCensus func(lo, hi float64) float64
	// AuditObs optionally shares deployment-wide audit instruments
	// (suspicion/eviction counters); nil leaves auditing unmetered.
	AuditObs *audit.Instruments
	// OpTrace optionally records causal op spans from this node's
	// router into a deployment-shared tracer.
	OpTrace *obs.Tracer
}

func (c *Config) validate() error {
	if c.Self.IsNil() {
		return fmt.Errorf("node: Self is required")
	}
	if c.Predicate == nil {
		return fmt.Errorf("node: Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("node: Monitor is required")
	}
	if c.Peers == nil && len(c.Seeds) == 0 {
		return fmt.Errorf("node: either Peers or Seeds is required")
	}
	if c.Peers != nil && len(c.Seeds) > 0 {
		return fmt.Errorf("node: Peers and Seeds are mutually exclusive")
	}
	if c.Transport == nil && c.Env == nil {
		return fmt.Errorf("node: either Transport or Env is required")
	}
	if c.ViewSize == 0 {
		c.ViewSize = 16
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = c.ViewSize / 4
	}
	if c.ShuffleLen < 3 {
		c.ShuffleLen = 3
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	if c.ProtocolPeriod == 0 {
		c.ProtocolPeriod = time.Minute
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = 20 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = int64(ids.SelfHash(c.Self) * (1 << 62))
	}
	return nil
}

// Node is a live AVMEM agent. Create with New, then Start; all exported
// methods are safe for concurrent use.
type Node struct {
	cfg Config

	// base is the raw host environment; env is base with every
	// asynchronous callback gated through the node's lock and shutdown
	// check. The router and the periodic drivers see only env.
	base runtime.Env
	env  runtime.Env

	mu      sync.Mutex
	mem     *core.Membership
	router  *ops.Router
	col     *ops.Collector
	stops   []func()
	stopped chan struct{}
	running bool
	// agent is the built-in live CYCLON (Seeds mode); nil in Peers mode.
	agent *shuffle.Agent
	// auditor is the receiving-side audit layer (nil when Audit unset).
	auditor *audit.Auditor
	// claimBits/claimAt cache the node's own availability claim (float
	// bits) and its stamp time for the lock-free shuffle reply path. A
	// cache the discovery driver has not refreshed recently (e.g. right
	// after an outage) yields no claim rather than a stale one.
	claimBits atomic.Uint64
	claimAt   atomic.Int64
}

// New builds a live node (not yet started).
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		col:     cfg.Collector,
		stopped: make(chan struct{}),
	}
	if n.col == nil {
		n.col = ops.NewCollector()
	}
	n.base = cfg.Env
	if n.base == nil {
		// The stopped channel (not the node lock) reports liveness, so
		// the router may ask while the lock is held.
		live, err := runtime.NewLive(runtime.LiveConfig{
			Self:      cfg.Self,
			Transport: cfg.Transport,
			Seed:      cfg.Seed + 1,
			Online: func() bool {
				select {
				case <-n.stopped:
					return false
				default:
					return true
				}
			},
		})
		if err != nil {
			return nil, err
		}
		n.base = live
	}
	// The adversary interceptor sits directly on the host Env: protocol
	// code above it stays honest-looking while its traffic is rewritten.
	n.base = adversary.Wrap(n.base, cfg.Behavior)
	n.env = runtime.Gated(n.base, n.gate)
	if cfg.Audit != nil {
		auditor, err := audit.New(audit.Config{
			Self:      cfg.Self,
			Params:    *cfg.Audit,
			Predicate: cfg.Predicate,
			Monitor:   cfg.Monitor,
			SelfInfo:  func() core.NodeInfo { return n.mem.SelfInfo() },
			Clock:     n.env.Now,
			Hashes:    cfg.Hashes,
			Trail:     cfg.AuditTrail,
			Obs:       cfg.AuditObs,
		})
		if err != nil {
			return nil, err
		}
		n.auditor = auditor
	}
	if len(cfg.Seeds) > 0 {
		agent, err := shuffle.NewAgent(cfg.Self, cfg.ViewSize, cfg.ShuffleLen, cfg.Seed)
		if err != nil {
			return nil, err
		}
		agent.Seed(cfg.Seeds)
		n.agent = agent
	}
	memCfg := core.Config{
		Predicate:     cfg.Predicate,
		Monitor:       cfg.Monitor,
		Hashes:        cfg.Hashes,
		Clock:         n.env.Now,
		VerifyCushion: cfg.Cushion,
	}
	if n.auditor != nil {
		memCfg.Blocked = n.auditor.Blocked
	}
	mem, err := core.NewMembership(cfg.Self, memCfg)
	if err != nil {
		return nil, err
	}
	n.mem = mem
	n.cacheClaim()
	routerCfg := ops.RouterConfig{
		Membership:    mem,
		Env:           n.env,
		Collector:     n.col,
		VerifyInbound: cfg.VerifyInbound,
		Hashes:        cfg.Hashes,
		BandCensus:    cfg.BandCensus,
		OpTrace:       cfg.OpTrace,
	}
	if n.auditor != nil {
		routerCfg.Auditor = n.auditor
	}
	router, err := ops.NewRouter(routerCfg)
	if err != nil {
		return nil, err
	}
	n.router = router
	return n, nil
}

// cacheClaim snapshots the node's current self-availability claim (a
// fresh monitor answer) for the lock-free shuffle reply path. Called
// under the node lock from the discovery/refresh drivers, so the claim
// is at most one protocol period stale.
func (n *Node) cacheClaim() {
	n.claimBits.Store(math.Float64bits(n.mem.SelfClaim()))
	n.claimAt.Store(int64(n.env.Now()))
}

// selfClaim returns the cached availability claim, or zero ("no
// claim") when the cache has gone stale — a node answering traffic
// right after rejoining must not claim its pre-outage availability.
func (n *Node) selfClaim() float64 {
	age := time.Duration(int64(n.env.Now()) - n.claimAt.Load())
	if age > 2*n.cfg.ProtocolPeriod {
		return 0
	}
	return math.Float64frombits(n.claimBits.Load())
}

// gate serializes asynchronous Env callbacks (timer ticks, ack results)
// against the node's state and drops them after Stop.
func (n *Node) gate(fn func()) {
	select {
	case <-n.stopped:
		return
	default:
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.running {
		return
	}
	fn()
}

// Self returns the node's identity.
func (n *Node) Self() ids.NodeID { return n.cfg.Self }

// Start registers with the message fabric and launches the periodic
// discovery and refresh drivers (the first discovery runs immediately).
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return fmt.Errorf("node: already started")
	}
	if err := n.env.Register(n.handleMessage); err != nil {
		return err
	}
	n.running = true
	// The discovery driver runs on the ungated env: its first phase (an
	// external PeerSource fetch) must not hold the node lock, so the
	// round does its own gating in phase two.
	n.stops = append(n.stops,
		n.base.Every(0, n.cfg.ProtocolPeriod, func() { n.discoverRound(true) }),
		n.env.Every(n.cfg.RefreshPeriod, n.cfg.RefreshPeriod, n.refreshTick),
	)
	return nil
}

// Stop halts the drivers and unregisters from the fabric.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	n.running = false
	close(n.stopped)
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	n.mu.Unlock()
	if s, ok := n.base.(runtime.Stopper); ok {
		s.Stop()
	}
	n.env.Unregister()
}

// discoverRound runs one discovery round in two phases: the external
// candidate fetch (PeerSource) happens outside the node lock — a
// PeerSource may call back into the node — and the membership update
// happens under it. requireRunning gates the periodic driver;
// DiscoverNow passes false so it also works on a built-but-unstarted
// node.
func (n *Node) discoverRound(requireRunning bool) {
	select {
	case <-n.stopped:
		return
	default:
	}
	var external []ids.NodeID
	if n.agent == nil {
		external = n.cfg.Peers.Peers(n.cfg.Self)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if requireRunning && !n.running {
		return
	}
	n.discoverLocked(external)
}

// discoverLocked applies one discovery round; caller holds n.mu. A node
// whose Env reports it offline (a trace-driven outage in a virtual
// cluster) skips protocol work entirely, like its simulated
// counterpart.
func (n *Node) discoverLocked(external []ids.NodeID) {
	if !n.base.Online() {
		return
	}
	candidates := external
	n.cacheClaim()
	if n.agent != nil {
		if peer, req, ok := n.agent.Tick(); ok {
			req.SenderAvail = n.selfClaim()
			n.env.Send(peer, req)
			// Tick removes the shuffle partner from the view pending its
			// reply, but the partner is still the freshest-known peer —
			// keep it as a discovery candidate (in a two-node deployment
			// the view would otherwise be empty at every tick).
			candidates = append(n.agent.View(), peer)
		} else {
			n.agent.Seed(n.cfg.Seeds) // view emptied: re-bootstrap
			candidates = n.agent.View()
		}
	}
	n.mem.Discover(candidates)
}

// refreshTick runs one refresh round; the gate holds n.mu.
func (n *Node) refreshTick() {
	if !n.base.Online() {
		return
	}
	n.mem.Refresh()
	n.cacheClaim()
}

// handleMessage is the fabric callback.
func (n *Node) handleMessage(from ids.NodeID, msg any) {
	// Shuffle traffic goes to the agent (it has its own lock and must
	// not wait on operation handling). The audit layer inspects it
	// first: a poisoned or lying exchange raises the sender's suspicion,
	// and traffic from audited-out peers is discarded. Auditing shuffle
	// traffic takes the node lock (auditor state is not its own monitor),
	// but never calls back out, so the agent stays uncontended.
	switch m := msg.(type) {
	case shuffle.Request:
		if n.agent == nil {
			return
		}
		if !n.observeShuffle(from, msg) {
			return
		}
		reply := n.agent.HandleRequest(from, m)
		reply.SenderAvail = n.selfClaim()
		n.env.Send(from, reply)
		return
	case shuffle.Reply:
		if n.agent == nil {
			return
		}
		if !n.observeShuffle(from, msg) {
			return
		}
		n.agent.HandleReply(from, m)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.router.HandleMessage(from, msg)
}

// observeShuffle audits one inbound shuffle message; false means drop
// (the sender is, or just became, blacklisted).
func (n *Node) observeShuffle(from ids.NodeID, msg any) bool {
	if n.auditor == nil {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.auditor.ObserveInbound(from, msg)
}

// CoarseView returns the node's current coarse view (Seeds mode only;
// nil in Peers mode).
func (n *Node) CoarseView() []ids.NodeID {
	if n.agent == nil {
		return nil
	}
	return n.agent.View()
}

// Anycast initiates an anycast and returns its operation ID.
func (n *Node) Anycast(target ops.Target, opts ops.AnycastOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Anycast(target, opts)
}

// Multicast initiates a multicast and returns its operation ID.
func (n *Node) Multicast(target ops.Target, opts ops.MulticastOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Multicast(target, opts)
}

// Rangecast initiates a range-cast: payload delivery to every node
// whose availability lies in the half-open band [lo, hi).
func (n *Node) Rangecast(lo, hi float64, payload string, opts ops.RangecastOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Rangecast(lo, hi, payload, opts)
}

// Aggregate initiates an in-overlay aggregation of op over the local
// values of every node in [lo, hi) and returns its operation ID; the
// combined result materializes in this node's AggregateResult once the
// tree converges.
func (n *Node) Aggregate(op agg.Op, lo, hi float64, opts ops.AggregateOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Aggregate(op, lo, hi, opts)
}

// AnycastResult returns the current record of an anycast this node
// initiated.
func (n *Node) AnycastResult(id ops.MsgID) (ops.AnycastRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Anycast(id)
	if !ok {
		return ops.AnycastRecord{}, false
	}
	return *r, true
}

// MulticastResult returns the current record of a multicast this node
// initiated. The Delivered map reflects only deliveries observed by
// this node's collector (its own receipt) unless the deployment shares
// a collector through Config.Collector.
func (n *Node) MulticastResult(id ops.MsgID) (ops.MulticastRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Multicast(id)
	if !ok {
		return ops.MulticastRecord{}, false
	}
	return *r, true
}

// RangecastResult returns the current record of a range-cast this node
// initiated (see MulticastResult for collector-sharing semantics).
func (n *Node) RangecastResult(id ops.MsgID) (ops.RangecastRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Rangecast(id)
	if !ok {
		return ops.RangecastRecord{}, false
	}
	return *r, true
}

// AggregateResult returns the current record of an aggregation this
// node initiated; Done flips once the tree's combined partial came
// back from the root.
func (n *Node) AggregateResult(id ops.MsgID) (ops.AggregateRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Aggregate(id)
	if !ok {
		return ops.AggregateRecord{}, false
	}
	return *r, true
}

// Neighbors returns a snapshot of the node's current AVMEM neighbors.
func (n *Node) Neighbors(f core.Flavor) []core.Neighbor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.CopyNeighbors(f)
}

// SliverSizes returns the current horizontal and vertical sliver sizes.
func (n *Node) SliverSizes() (hs, vs int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.SliverSize(core.SliverHorizontal), n.mem.SliverSize(core.SliverVertical)
}

// Membership exposes the node's membership state to deployment
// harnesses (ground-truth queries, attack probes). The returned value
// is shared, not a copy: callers outside a single-threaded harness must
// treat it as read-only and tolerate concurrent updates, or use the
// snapshot accessors (Neighbors, SliverSizes) instead.
func (n *Node) Membership() *core.Membership {
	return n.mem
}

// Auditor exposes the node's audit layer (nil when auditing is off).
// Like Membership, the returned value is shared, not a copy.
func (n *Node) Auditor() *audit.Auditor { return n.auditor }

// DiscoverNow forces an immediate discovery round (useful in tests and
// demos; production nodes rely on the periodic driver). It works on a
// built-but-unstarted node too; only a stopped node ignores it.
func (n *Node) DiscoverNow() { n.discoverRound(false) }
