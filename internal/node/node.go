// Package node is the live AVMEM runtime: a real-time agent that
// maintains its slivers with wall-clock timers and executes management
// operations over a transport. The same core and ops packages that the
// simulator exercises run here unchanged — Node supplies the Env
// (real time, real goroutines) instead of the simulator.
package node

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
	"avmem/internal/transport"
)

// PeerSource supplies coarse-view candidates for discovery — the live
// counterpart of the shuffling membership service. Implementations may
// be a static seed list, a shared in-process shuffler, or a client of
// an external membership service.
type PeerSource interface {
	// Peers returns current coarse-view candidates for self.
	Peers(self ids.NodeID) []ids.NodeID
}

// PeerFunc adapts a function to PeerSource.
type PeerFunc func(self ids.NodeID) []ids.NodeID

// Peers implements PeerSource.
func (f PeerFunc) Peers(self ids.NodeID) []ids.NodeID { return f(self) }

// Config assembles a live node.
type Config struct {
	// Self is this node's identity; for the TCP transport it must be
	// the host:port to listen on.
	Self ids.NodeID
	// Predicate is the AVMEM predicate shared by the deployment.
	Predicate *core.Predicate
	// Monitor answers availability queries.
	Monitor avmon.Service
	// Peers supplies discovery candidates. Exactly one of Peers and
	// Seeds must be set.
	Peers PeerSource
	// Seeds bootstraps the node's built-in shuffling coarse view (the
	// live CYCLON agent): give a few known peers and the view fills
	// itself through periodic exchanges. Use instead of Peers when no
	// external membership service exists.
	Seeds []ids.NodeID
	// ViewSize bounds the built-in coarse view (default 16; only used
	// with Seeds).
	ViewSize int
	// ShuffleLen is the per-exchange entry count (default ViewSize/4,
	// min 3; only used with Seeds).
	ShuffleLen int
	// Transport moves operation messages.
	Transport transport.Transport
	// ProtocolPeriod is the discovery period (default 1 min).
	ProtocolPeriod time.Duration
	// RefreshPeriod is the refresh period (default 20 min).
	RefreshPeriod time.Duration
	// VerifyInbound enables the in-neighbor check on received messages.
	VerifyInbound bool
	// Cushion is the verification cushion.
	Cushion float64
	// Seed seeds the node's private randomness (annealing); 0 derives
	// one from Self.
	Seed int64
}

func (c *Config) validate() error {
	if c.Self.IsNil() {
		return fmt.Errorf("node: Self is required")
	}
	if c.Predicate == nil {
		return fmt.Errorf("node: Predicate is required")
	}
	if c.Monitor == nil {
		return fmt.Errorf("node: Monitor is required")
	}
	if c.Peers == nil && len(c.Seeds) == 0 {
		return fmt.Errorf("node: either Peers or Seeds is required")
	}
	if c.Peers != nil && len(c.Seeds) > 0 {
		return fmt.Errorf("node: Peers and Seeds are mutually exclusive")
	}
	if c.Transport == nil {
		return fmt.Errorf("node: Transport is required")
	}
	if c.ViewSize == 0 {
		c.ViewSize = 16
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = c.ViewSize / 4
	}
	if c.ShuffleLen < 3 {
		c.ShuffleLen = 3
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	if c.ProtocolPeriod == 0 {
		c.ProtocolPeriod = time.Minute
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = 20 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = int64(ids.SelfHash(c.Self) * (1 << 62))
	}
	return nil
}

// Node is a live AVMEM agent. Create with New, then Start; all exported
// methods are safe for concurrent use.
type Node struct {
	cfg Config

	mu      sync.Mutex
	mem     *core.Membership
	router  *ops.Router
	col     *ops.Collector
	rng     *rand.Rand
	started time.Time
	timers  []*time.Timer
	stopped chan struct{}
	running bool
	// agent is the built-in live CYCLON (Seeds mode); nil in Peers mode.
	agent *shuffle.Agent
}

// New builds a live node (not yet started).
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		col:     ops.NewCollector(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stopped: make(chan struct{}),
	}
	if len(cfg.Seeds) > 0 {
		agent, err := shuffle.NewAgent(cfg.Self, cfg.ViewSize, cfg.ShuffleLen, cfg.Seed)
		if err != nil {
			return nil, err
		}
		agent.Seed(cfg.Seeds)
		n.agent = agent
	}
	mem, err := core.NewMembership(cfg.Self, core.Config{
		Predicate:     cfg.Predicate,
		Monitor:       cfg.Monitor,
		Clock:         n.now,
		VerifyCushion: cfg.Cushion,
	})
	if err != nil {
		return nil, err
	}
	n.mem = mem
	router, err := ops.NewRouter(ops.RouterConfig{
		Membership:    mem,
		Env:           (*liveEnv)(n),
		Collector:     n.col,
		VerifyInbound: cfg.VerifyInbound,
	})
	if err != nil {
		return nil, err
	}
	n.router = router
	return n, nil
}

// now returns time since Start (zero before starting).
func (n *Node) now() time.Duration {
	if n.started.IsZero() {
		return 0
	}
	return time.Since(n.started)
}

// Self returns the node's identity.
func (n *Node) Self() ids.NodeID { return n.cfg.Self }

// Start registers with the transport and launches the periodic
// discovery and refresh loops.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return fmt.Errorf("node: already started")
	}
	n.started = time.Now()
	if err := n.cfg.Transport.Register(n.cfg.Self, n.handleMessage); err != nil {
		return err
	}
	n.running = true
	n.loop(n.cfg.ProtocolPeriod, n.discoverOnce)
	n.loop(n.cfg.RefreshPeriod, n.refreshOnce)
	// Run one discovery immediately so the node is useful right away.
	go n.discoverOnce()
	return nil
}

// loop schedules fn every period until Stop. Caller holds n.mu.
func (n *Node) loop(period time.Duration, fn func()) {
	var schedule func()
	schedule = func() {
		t := time.AfterFunc(period, func() {
			select {
			case <-n.stopped:
				return
			default:
			}
			fn()
			n.mu.Lock()
			if n.running {
				schedule()
			}
			n.mu.Unlock()
		})
		n.timers = append(n.timers, t)
	}
	schedule()
}

// Stop halts the loops and unregisters from the transport.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	n.running = false
	close(n.stopped)
	for _, t := range n.timers {
		t.Stop()
	}
	n.timers = nil
	n.mu.Unlock()
	n.cfg.Transport.Unregister(n.cfg.Self)
}

// discoverOnce runs one discovery round: in Seeds mode it first
// initiates a shuffle exchange, then discovers over the current coarse
// view; in Peers mode it asks the external source.
func (n *Node) discoverOnce() {
	var candidates []ids.NodeID
	if n.agent != nil {
		if peer, req, ok := n.agent.Tick(); ok {
			n.cfg.Transport.Send(n.cfg.Self, peer, req)
		} else {
			n.agent.Seed(n.cfg.Seeds) // view emptied: re-bootstrap
		}
		candidates = n.agent.View()
	} else {
		candidates = n.cfg.Peers.Peers(n.cfg.Self)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mem.Discover(candidates)
}

// refreshOnce runs one refresh round.
func (n *Node) refreshOnce() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mem.Refresh()
}

// handleMessage is the transport callback.
func (n *Node) handleMessage(from ids.NodeID, msg any) {
	// Shuffle traffic goes to the agent (it has its own lock and must
	// not wait on operation handling).
	switch m := msg.(type) {
	case shuffle.Request:
		if n.agent != nil {
			reply := n.agent.HandleRequest(from, m)
			n.cfg.Transport.Send(n.cfg.Self, from, reply)
		}
		return
	case shuffle.Reply:
		if n.agent != nil {
			n.agent.HandleReply(from, m)
		}
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.router.HandleMessage(from, msg)
}

// CoarseView returns the node's current coarse view (Seeds mode only;
// nil in Peers mode).
func (n *Node) CoarseView() []ids.NodeID {
	if n.agent == nil {
		return nil
	}
	return n.agent.View()
}

// Anycast initiates an anycast and returns its operation ID.
func (n *Node) Anycast(target ops.Target, opts ops.AnycastOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Anycast(target, opts)
}

// Multicast initiates a multicast and returns its operation ID.
func (n *Node) Multicast(target ops.Target, opts ops.MulticastOptions) (ops.MsgID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router.Multicast(target, opts)
}

// AnycastResult returns the current record of an anycast this node
// initiated.
func (n *Node) AnycastResult(id ops.MsgID) (ops.AnycastRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Anycast(id)
	if !ok {
		return ops.AnycastRecord{}, false
	}
	return *r, true
}

// MulticastResult returns the current record of a multicast this node
// initiated. The Delivered map reflects only deliveries observed by
// this node's collector (its own receipt); cluster-wide accounting
// needs a shared collector, which the simulation provides.
func (n *Node) MulticastResult(id ops.MsgID) (ops.MulticastRecord, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.col.Multicast(id)
	if !ok {
		return ops.MulticastRecord{}, false
	}
	return *r, true
}

// Neighbors returns a snapshot of the node's current AVMEM neighbors.
func (n *Node) Neighbors(f core.Flavor) []core.Neighbor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.CopyNeighbors(f)
}

// SliverSizes returns the current horizontal and vertical sliver sizes.
func (n *Node) SliverSizes() (hs, vs int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.SliverSize(core.SliverHorizontal), n.mem.SliverSize(core.SliverVertical)
}

// DiscoverNow forces an immediate discovery round (useful in tests and
// demos; production nodes rely on the periodic loop).
func (n *Node) DiscoverNow() { n.discoverOnce() }

// liveEnv adapts Node to ops.Env. Methods may be called with n.mu held
// (from router code paths), so they must not lock it.
type liveEnv Node

var _ ops.Env = (*liveEnv)(nil)

// Now implements ops.Env.
func (e *liveEnv) Now() time.Duration { return (*Node)(e).now() }

// After implements ops.Env.
func (e *liveEnv) After(d time.Duration, fn func()) {
	n := (*Node)(e)
	time.AfterFunc(d, func() {
		select {
		case <-n.stopped:
			return
		default:
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		fn()
	})
}

// RandFloat implements ops.Env.
func (e *liveEnv) RandFloat() float64 { return e.rng.Float64() }

// Send implements ops.Env.
func (e *liveEnv) Send(to ids.NodeID, msg any) {
	e.cfg.Transport.Send(e.cfg.Self, to, msg)
}

// SendCall implements ops.Env.
func (e *liveEnv) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	n := (*Node)(e)
	e.cfg.Transport.SendCall(e.cfg.Self, to, msg, func(ok bool) {
		// The transport calls back on its own goroutine; re-enter the
		// node under its lock.
		select {
		case <-n.stopped:
			return
		default:
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if onResult != nil {
			onResult(ok)
		}
	})
}

// Online implements ops.Env: a running live node is online by
// definition.
func (e *liveEnv) Online() bool {
	n := (*Node)(e)
	select {
	case <-n.stopped:
		return false
	default:
		return n.running
	}
}
