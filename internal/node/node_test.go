package node

import (
	"testing"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/transport"
)

// liveCluster spins up n live nodes over the in-memory transport with
// the given availabilities, an accept-all predicate (deterministic
// topology), and a static monitor.
func liveCluster(t *testing.T, avails []float64, pred *core.Predicate) ([]*Node, func()) {
	t.Helper()
	tr := transport.NewMemory(0, 0)
	monitor := avmon.Static{}
	idsList := make([]ids.NodeID, len(avails))
	for i, av := range avails {
		idsList[i] = ids.Synthetic(i)
		monitor[idsList[i]] = av
	}
	peers := PeerFunc(func(self ids.NodeID) []ids.NodeID {
		out := make([]ids.NodeID, 0, len(idsList)-1)
		for _, id := range idsList {
			if id != self {
				out = append(out, id)
			}
		}
		return out
	})
	nodes := make([]*Node, 0, len(avails))
	for _, id := range idsList {
		n, err := New(Config{
			Self:           id,
			Predicate:      pred,
			Monitor:        monitor,
			Peers:          peers,
			Transport:      tr,
			ProtocolPeriod: 50 * time.Millisecond,
			RefreshPeriod:  time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	cleanup := func() {
		for _, n := range nodes {
			n.Stop()
		}
		tr.Close()
	}
	return nodes, cleanup
}

func acceptAll(t *testing.T) *core.Predicate {
	t.Helper()
	p, err := core.NewPredicate(0.1, core.ConstantHorizontal{Fraction: 1}, core.UniformRandom{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	pred := acceptAll(t)
	tr := transport.NewMemory(0, 0)
	defer tr.Close()
	mon := avmon.Static{"a": 0.5}
	peers := PeerFunc(func(ids.NodeID) []ids.NodeID { return nil })
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no self", Config{Predicate: pred, Monitor: mon, Peers: peers, Transport: tr}},
		{"no predicate", Config{Self: "a", Monitor: mon, Peers: peers, Transport: tr}},
		{"no monitor", Config{Self: "a", Predicate: pred, Peers: peers, Transport: tr}},
		{"no peers", Config{Self: "a", Predicate: pred, Monitor: mon, Transport: tr}},
		{"no transport", Config{Self: "a", Predicate: pred, Monitor: mon, Peers: peers}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestStartStopLifecycle(t *testing.T) {
	nodes, cleanup := liveCluster(t, []float64{0.5}, acceptAll(t))
	defer cleanup()
	if err := nodes[0].Start(); err == nil {
		t.Error("want error for double start")
	}
	nodes[0].Stop()
	nodes[0].Stop() // idempotent
}

func TestLiveDiscoveryBuildsSlivers(t *testing.T) {
	nodes, cleanup := liveCluster(t, []float64{0.5, 0.55, 0.9}, acceptAll(t))
	defer cleanup()
	deadline := time.After(3 * time.Second)
	for {
		hs, vs := nodes[0].SliverSizes()
		if hs >= 1 && vs >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("slivers never formed: hs=%d vs=%d", hs, vs)
		case <-time.After(10 * time.Millisecond):
		}
	}
	nbs := nodes[0].Neighbors(core.HSVS)
	if len(nbs) != 2 {
		t.Errorf("neighbors = %v, want 2", nbs)
	}
}

func TestLiveAnycastDelivers(t *testing.T) {
	nodes, cleanup := liveCluster(t, []float64{0.5, 0.9}, acceptAll(t))
	defer cleanup()
	// Wait for discovery.
	deadline := time.After(3 * time.Second)
	for {
		if _, vs := nodes[0].SliverSizes(); vs >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("discovery never completed")
		case <-time.After(10 * time.Millisecond):
		}
	}
	target, err := ops.Range(0.85, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nodes[0].Anycast(target, ops.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.After(3 * time.Second)
	for {
		rec, ok := nodes[0].AnycastResult(id)
		if ok && rec.Outcome == ops.OutcomeDelivered {
			if rec.Hops != 1 {
				t.Errorf("hops = %d, want 1", rec.Hops)
			}
			return
		}
		select {
		case <-deadline:
			rec, _ := nodes[0].AnycastResult(id)
			t.Fatalf("anycast never delivered: %+v", rec)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestLiveMulticastReachesInitiatorRange(t *testing.T) {
	nodes, cleanup := liveCluster(t, []float64{0.9, 0.88, 0.86, 0.3}, acceptAll(t))
	defer cleanup()
	deadline := time.After(3 * time.Second)
	for {
		if hs, vs := nodes[0].SliverSizes(); hs+vs >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("discovery never completed")
		case <-time.After(10 * time.Millisecond):
		}
	}
	target, err := ops.Range(0.85, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	opts := ops.DefaultMulticastOptions()
	opts.Eligible = 3
	id, err := nodes[0].Multicast(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The initiator's own collector sees at least its own delivery.
	deadline = time.After(3 * time.Second)
	for {
		rec, ok := nodes[0].MulticastResult(id)
		if ok && rec.EnteredRange && len(rec.Delivered) >= 1 {
			return
		}
		select {
		case <-deadline:
			rec, _ := nodes[0].MulticastResult(id)
			t.Fatalf("multicast made no progress: %+v", rec)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestLiveNodeOverTCP(t *testing.T) {
	tr := NewTCPForTest(t)
	defer tr.Close()
	monitor := avmon.Static{
		"127.0.0.1:39501": 0.5,
		"127.0.0.1:39502": 0.9,
	}
	all := []ids.NodeID{"127.0.0.1:39501", "127.0.0.1:39502"}
	peers := PeerFunc(func(self ids.NodeID) []ids.NodeID {
		out := make([]ids.NodeID, 0, 1)
		for _, id := range all {
			if id != self {
				out = append(out, id)
			}
		}
		return out
	})
	pred := acceptAll(t)
	var nodes []*Node
	for _, id := range all {
		n, err := New(Config{
			Self:           id,
			Predicate:      pred,
			Monitor:        monitor,
			Peers:          peers,
			Transport:      tr,
			ProtocolPeriod: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, vs := nodes[0].SliverSizes(); vs >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("TCP discovery never completed")
		case <-time.After(20 * time.Millisecond):
		}
	}
	target, err := ops.Range(0.85, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nodes[0].Anycast(target, ops.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.After(5 * time.Second)
	for {
		rec, ok := nodes[0].AnycastResult(id)
		if ok && rec.Outcome == ops.OutcomeDelivered {
			return
		}
		select {
		case <-deadline:
			rec, _ := nodes[0].AnycastResult(id)
			t.Fatalf("TCP anycast never delivered: %+v", rec)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// NewTCPForTest builds a TCP transport with short timeouts.
func NewTCPForTest(t *testing.T) transport.Transport {
	t.Helper()
	return transport.NewTCP(500*time.Millisecond, 2*time.Second)
}

func TestLiveSeedsModeShuffleDiscovery(t *testing.T) {
	// Seeds mode: no external PeerSource — nodes bootstrap from a few
	// seeds and fill their coarse views through live CYCLON exchanges.
	tr := transport.NewMemory(0, 0)
	defer tr.Close()
	const n = 12
	monitor := avmon.Static{}
	all := make([]ids.NodeID, n)
	for i := range all {
		all[i] = ids.Synthetic(i)
		monitor[all[i]] = 0.1 + 0.8*float64(i)/float64(n)
	}
	pred := acceptAll(t)
	nodes := make([]*Node, 0, n)
	for i, id := range all {
		nd, err := New(Config{
			Self:           id,
			Predicate:      pred,
			Monitor:        monitor,
			Seeds:          []ids.NodeID{all[(i+1)%n], all[(i+2)%n]},
			ViewSize:       8,
			Transport:      tr,
			ProtocolPeriod: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		defer nd.Stop()
		nodes = append(nodes, nd)
	}
	// Wait until node 0 knows more peers than its 2 seeds and has
	// formed slivers from its coarse view.
	deadline := time.After(5 * time.Second)
	for {
		view := nodes[0].CoarseView()
		hs, vs := nodes[0].SliverSizes()
		if len(view) > 2 && hs+vs >= 3 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("seeds-mode discovery stalled: view=%d hs=%d vs=%d", len(view), hs, vs)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestNewSeedsAndPeersMutuallyExclusive(t *testing.T) {
	tr := transport.NewMemory(0, 0)
	defer tr.Close()
	pred := acceptAll(t)
	mon := avmon.Static{"a": 0.5}
	peers := PeerFunc(func(ids.NodeID) []ids.NodeID { return nil })
	if _, err := New(Config{
		Self: "a", Predicate: pred, Monitor: mon, Transport: tr,
		Peers: peers, Seeds: []ids.NodeID{"b"},
	}); err == nil {
		t.Error("want error for Peers + Seeds together")
	}
}

func TestCoarseViewNilInPeersMode(t *testing.T) {
	nodes, cleanup := liveCluster(t, []float64{0.5}, acceptAll(t))
	defer cleanup()
	if got := nodes[0].CoarseView(); got != nil {
		t.Errorf("CoarseView in Peers mode = %v, want nil", got)
	}
}
