package node

import (
	"testing"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/sim"
	"avmem/internal/transport"
)

// virtualCluster spins up n real nodes on a shared virtual clock and a
// deterministic memnet — the binding the scenario engine's memnet
// backend uses — in Seeds mode with the given availabilities.
func virtualCluster(t *testing.T, avails []float64) (*sim.World, []*Node) {
	t.Helper()
	w := sim.NewWorld(1)
	net := transport.NewMemnet(transport.MemnetConfig{
		After:   w.After,
		Seed:    1,
		Latency: transport.UniformLatencyFn(20*time.Millisecond, 80*time.Millisecond),
	})
	monitor := avmon.Static{}
	all := make([]ids.NodeID, len(avails))
	for i, av := range avails {
		all[i] = ids.Synthetic(i)
		monitor[all[i]] = av
	}
	nodes := make([]*Node, 0, len(avails))
	for i, id := range all {
		env, err := runtime.NewVirtual(runtime.VirtualConfig{
			Self:      id,
			Scheduler: w,
			Fabric:    net,
			Seed:      int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Self:           id,
			Predicate:      acceptAll(t),
			Monitor:        monitor,
			Seeds:          []ids.NodeID{all[(i+1)%len(all)], all[(i+2)%len(all)]},
			ViewSize:       8,
			Env:            env,
			ProtocolPeriod: time.Minute,
			Seed:           int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return w, nodes
}

// TestNodeOnVirtualEnv runs real nodes entirely in virtual time: no
// goroutines, no wall clock — discovery, shuffling, and operations all
// advance with the scheduler.
func TestNodeOnVirtualEnv(t *testing.T) {
	avails := []float64{0.5, 0.55, 0.9, 0.3, 0.7, 0.88}
	w, nodes := virtualCluster(t, avails)
	w.Run(10 * time.Minute)
	hs, vs := nodes[0].SliverSizes()
	if hs+vs < 3 {
		t.Fatalf("slivers never formed in virtual time: hs=%d vs=%d", hs, vs)
	}
	if view := nodes[0].CoarseView(); len(view) <= 2 {
		t.Errorf("coarse view never grew past the seeds: %d", len(view))
	}
	target, err := ops.Range(0.85, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nodes[0].Anycast(target, ops.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	w.Run(w.Now() + time.Minute)
	rec, ok := nodes[0].AnycastResult(id)
	if !ok || rec.Outcome != ops.OutcomeDelivered {
		t.Fatalf("virtual anycast not delivered: ok=%v rec=%+v", ok, rec)
	}
}

// TestNodeVirtualDeterminism replays the virtual cluster and requires
// identical sliver trajectories.
func TestNodeVirtualDeterminism(t *testing.T) {
	run := func() (sizes []int) {
		avails := []float64{0.5, 0.55, 0.9, 0.3, 0.7, 0.88}
		w, nodes := virtualCluster(t, avails)
		w.Run(10 * time.Minute)
		for _, n := range nodes {
			hs, vs := n.SliverSizes()
			sizes = append(sizes, hs, vs)
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sliver sizes diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// TestNodeSharedCollector verifies cluster-wide accounting through an
// injected collector: the deliverer's verdict is visible to the
// initiator's harness immediately.
func TestNodeSharedCollector(t *testing.T) {
	w := sim.NewWorld(1)
	net := transport.NewMemnet(transport.MemnetConfig{After: w.After, Seed: 1})
	monitor := avmon.Static{}
	all := []ids.NodeID{ids.Synthetic(0), ids.Synthetic(1)}
	monitor[all[0]] = 0.5
	monitor[all[1]] = 0.9
	col := ops.NewCollector()
	var nodes []*Node
	for i, id := range all {
		env, err := runtime.NewVirtual(runtime.VirtualConfig{
			Self: id, Scheduler: w, Fabric: net, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Self:      id,
			Predicate: acceptAll(t),
			Monitor:   monitor,
			Seeds:     []ids.NodeID{all[(i+1)%2]},
			Env:       env,
			Collector: col,
			Seed:      int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	w.Run(5 * time.Minute)
	target, err := ops.Range(0.85, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nodes[0].Anycast(target, ops.DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	w.Run(w.Now() + time.Minute)
	rec, ok := col.Anycast(id)
	if !ok || rec.Outcome != ops.OutcomeDelivered {
		t.Fatalf("shared collector missed the delivery: ok=%v rec=%+v", ok, rec)
	}
}
