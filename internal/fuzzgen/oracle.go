package fuzzgen

import (
	"bytes"
	"fmt"
	"runtime/debug"

	"avmem/internal/obs"
	"avmem/internal/scenario"
)

// OracleConfig tunes the invariant layer. The zero value takes the
// defaults noted on each field.
type OracleConfig struct {
	// Shards is the shard count of the shard-invariance oracle
	// (default 4).
	Shards int
	// ShardThreads is the worker count of the thread-parallel
	// reproducibility oracle (default 2; < 2 disables it).
	ShardThreads int
	// MemnetMaxHosts caps the fleet size the memnet cross-engine
	// oracle runs at — real node agents cost real memory (default 300;
	// < 0 disables the oracle).
	MemnetMaxHosts int
	// RunManyMaxHosts caps the fleet size the serial-vs-parallel
	// RunMany oracle runs at (default 300; < 0 disables); it multiplies
	// the run count by 2×RunManySeeds.
	RunManyMaxHosts int
	// RunManySeeds is the sweep width of the RunMany oracle (default 2).
	RunManySeeds int
}

func (c OracleConfig) withDefaults() OracleConfig {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.ShardThreads == 0 {
		c.ShardThreads = 2
	}
	if c.MemnetMaxHosts == 0 {
		c.MemnetMaxHosts = 300
	}
	if c.RunManyMaxHosts == 0 {
		c.RunManyMaxHosts = 300
	}
	if c.RunManySeeds < 2 {
		c.RunManySeeds = 2
	}
	return c
}

// Violation is one broken invariant: which oracle tripped and how.
type Violation struct {
	// Oracle names the invariant: run, determinism, shards, obs,
	// threads, memnet, runmany, semantic.
	Oracle string
	// Detail describes the observed breakage.
	Detail string
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Check runs every metamorphic oracle against the spec and returns all
// violations found (nil means the spec upholds the full contract):
//
//   - run: the spec executes on the sim engine without error or panic.
//   - determinism: two identical sim runs render byte-identical
//     reports (metrics + event log).
//   - shards: sharding the event queue (Shards=k, single thread) is
//     byte-identical to the single-heap run.
//   - obs: arming a metrics registry and op tracer changes nothing.
//   - threads: the thread-parallel engine is reproducible per
//     (spec, shards), and silently serial (byte-identical to the
//     single-thread order) for lane-unsafe specs.
//   - memnet: the live-runtime backend executes the same spec without
//     error, is itself deterministic, and produces the always-present
//     overlay metrics. (Sim and memnet agree on shape and verdicts,
//     not bytes — they are different engines by design.)
//   - runmany: a multi-seed sweep folds to a byte-identical aggregate
//     report at parallelism 1 and N.
//   - semantic: bounds that hold in any world — rates and fractions
//     in [0,1], non-negative counters, the forgery-acceptance
//     tripwire at zero, honest-false-positive and zero-adversary
//     cleanliness bounds.
func Check(spec *scenario.Spec, cfg OracleConfig) []Violation {
	cfg = cfg.withDefaults()
	var vs []Violation
	fail := func(oracle, format string, args ...any) {
		vs = append(vs, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	base, res, err := renderRun(spec, scenario.Options{})
	if err != nil {
		fail("run", "%v", err)
		return vs // nothing downstream is meaningful
	}

	again, _, err := renderRun(spec, scenario.Options{})
	switch {
	case err != nil:
		fail("determinism", "second identical run errored: %v", err)
	case !bytes.Equal(base, again):
		fail("determinism", "two identical sim runs rendered different reports:\n%s", firstDiff(base, again))
	}

	sharded, _, err := renderRun(spec, scenario.Options{Shards: cfg.Shards})
	switch {
	case err != nil:
		fail("shards", "shards=%d run errored: %v", cfg.Shards, err)
	case !bytes.Equal(base, sharded):
		fail("shards", "shards=%d diverged from the single heap:\n%s", cfg.Shards, firstDiff(base, sharded))
	}

	obsRender, _, err := renderRunObserved(spec)
	switch {
	case err != nil:
		fail("obs", "instrumented run errored: %v", err)
	case !bytes.Equal(base, obsRender):
		fail("obs", "metrics+trace instrumentation changed the report:\n%s", firstDiff(base, obsRender))
	}

	if cfg.ShardThreads >= 2 {
		checkThreads(spec, cfg, base, fail)
	}
	if cfg.MemnetMaxHosts >= 0 && specHosts(spec) <= cfg.MemnetMaxHosts {
		checkMemnet(spec, fail)
	}
	if cfg.RunManyMaxHosts >= 0 && specHosts(spec) <= cfg.RunManyMaxHosts {
		checkRunMany(spec, cfg, fail)
	}
	checkSemantics(spec, res, fail)
	return vs
}

// checkThreads pins the thread-parallel contract: reproducible per
// (spec, shards) across repeats and thread counts, and byte-identical
// to the serial order when the configuration rules out lane-safe
// execution (the silent-fallback rule, DESIGN.md §14).
func checkThreads(spec *scenario.Spec, cfg OracleConfig, serial []byte, fail func(string, string, ...any)) {
	opts := scenario.Options{Shards: cfg.Shards, ShardThreads: cfg.ShardThreads}
	a, _, err := renderRun(spec, opts)
	if err != nil {
		fail("threads", "shards=%d threads=%d run errored: %v", cfg.Shards, cfg.ShardThreads, err)
		return
	}
	b, _, err := renderRun(spec, opts)
	switch {
	case err != nil:
		fail("threads", "repeated parallel run errored: %v", err)
	case !bytes.Equal(a, b):
		fail("threads", "repeated parallel run diverged:\n%s", firstDiff(a, b))
	}
	c, _, err := renderRun(spec, scenario.Options{Shards: cfg.Shards, ShardThreads: cfg.ShardThreads + 2})
	switch {
	case err != nil:
		fail("threads", "threads=%d run errored: %v", cfg.ShardThreads+2, err)
	case !bytes.Equal(a, c):
		fail("threads", "threads=%d diverged from threads=%d:\n%s", cfg.ShardThreads+2, cfg.ShardThreads, firstDiff(a, c))
	}
	if laneUnsafe(spec) && !bytes.Equal(serial, a) {
		fail("threads", "lane-unsafe spec did not fall back to the serial order:\n%s", firstDiff(serial, a))
	}
}

// laneUnsafe reports whether the spec's configuration statically rules
// out lane-safe parallel execution, in which case -shard-threads must
// be a byte-level no-op (the executor falls back to the serial
// tournament).
func laneUnsafe(spec *scenario.Spec) bool {
	return spec.Adversaries != nil || spec.Fleet.Audit != nil ||
		spec.Fleet.DistributedMonitor || spec.Fleet.MonitorError > 0 ||
		spec.Fleet.MonitorStaleness > 0
}

// checkMemnet runs the spec on the live runtime: same spec, real
// node.Node agents on the deterministic memnet. The cross-engine
// contract is shape-level, not byte-level.
func checkMemnet(spec *scenario.Spec, fail func(string, string, ...any)) {
	a, res, err := renderRun(spec, scenario.Options{Backend: scenario.BackendMemnet})
	if err != nil {
		fail("memnet", "%v", err)
		return
	}
	b, _, err := renderRun(spec, scenario.Options{Backend: scenario.BackendMemnet})
	switch {
	case err != nil:
		fail("memnet", "second identical run errored: %v", err)
	case !bytes.Equal(a, b):
		fail("memnet", "two identical memnet runs rendered different reports:\n%s", firstDiff(a, b))
	}
	for _, want := range []string{"mean_sliver_size", "max_sliver_size", "online_fraction"} {
		if _, ok := res.Metrics[want]; !ok {
			fail("memnet", "always-present metric %q missing from the memnet run", want)
		}
	}
}

// checkRunMany sweeps a few consecutive seeds serially and in parallel
// and requires byte-identical aggregate reports — determinism per
// world, parallelism across worlds.
func checkRunMany(spec *scenario.Spec, cfg OracleConfig, fail func(string, string, ...any)) {
	seeds := scenario.SeedRange(spec.Seed, cfg.RunManySeeds)
	serial, err := renderRunMany(spec, seeds, 1)
	if err != nil {
		fail("runmany", "serial sweep errored: %v", err)
		return
	}
	parallel, err := renderRunMany(spec, seeds, len(seeds))
	switch {
	case err != nil:
		fail("runmany", "parallel sweep errored: %v", err)
	case !bytes.Equal(serial, parallel):
		fail("runmany", "parallel sweep diverged from serial:\n%s", firstDiff(serial, parallel))
	}
}

// checkSemantics applies the bounds that hold in any world, honest or
// adversarial.
func checkSemantics(spec *scenario.Spec, res *scenario.Result, fail func(string, string, ...any)) {
	const eps = 1e-9
	fractional := []string{
		"anycast_delivery_rate", "anycast_drop_rate",
		"multicast_reliability",
		"rangecast_coverage",
		"agg_accuracy", "agg_coverage", "agg_completion_rate", "agg_divergence",
		"attack_accept_rate", "legit_reject_rate",
		"online_fraction", "adversary_fraction",
		"audit_eviction_rate", "audit_false_positive_rate",
	}
	for _, name := range fractional {
		if v, ok := res.Metrics[name]; ok && (v < -eps || v > 1+eps) {
			fail("semantic", "%s = %v outside [0,1]", name, v)
		}
	}
	for name, v := range res.Metrics {
		if v < -eps {
			fail("semantic", "%s = %v is negative", name, v)
		}
	}
	if d, r := res.Metrics["anycast_delivery_rate"], res.Metrics["anycast_drop_rate"]; d+r > 1+eps {
		fail("semantic", "anycast delivered (%v) + dropped (%v) exceeds 1", d, r)
	}
	// The binding tripwire: an unbound aggregation result must never be
	// accepted, adversaries or not.
	if v := res.Metrics["agg_forgery_accepted"]; v != 0 {
		fail("semantic", "agg_forgery_accepted = %v, want 0 (result binding leaked)", v)
	}
	if spec.Adversaries == nil {
		// Honest worlds must not trip the result-binding defense —
		// forgery verdicts come from tokens, not estimates, so no amount
		// of monitor noise excuses one.
		if v := res.Metrics["agg_forgery_rejected"]; v != 0 {
			fail("semantic", "honest run rejected %v aggregation results as forged", v)
		}
		// The PDF sanity checks compare availability claims against a
		// ±0.1 hull; a degraded monitor (error/staleness) can push an
		// honest claim past it by design, so zero rejections is only a
		// contract for clean-monitor worlds (fuzz-seed40 calibration).
		if v := res.Metrics["agg_rejected_partials"]; v != 0 && quietWorld(spec) {
			fail("semantic", "honest clean-monitor run rejected %v aggregation partials via PDF sanity checks", v)
		}
	} else if _, ok := res.Metrics["audit_false_positive_rate"]; ok {
		// The audit contract: honest nodes stay under ~1% false
		// eviction in the checked-in suite; 5% is the fuzz-wide bound
		// across arbitrary knob mixes.
		if v := res.Metrics["audit_false_positive_rate"]; v > 0.05 {
			fail("semantic", "audit_false_positive_rate = %v > 0.05 (honest-FP contract)", v)
		}
	}
	// Quiet honest worlds (no adversaries, bursts, or degraded
	// monitors) must aggregate accurately once every tree completes AND
	// actually reached the band: for count ops accuracy equals
	// coverage, and a narrow band in a tiny world legitimately builds a
	// sparse tree (fuzz-seed35 calibration) — so the floor only applies
	// when the trees gathered most of the eligible population.
	if spec.Adversaries == nil && quietWorld(spec) {
		done, okDone := res.Metrics["agg_completion_rate"]
		cov, okCov := res.Metrics["agg_coverage"]
		if okDone && done == 1 && okCov && cov >= 0.5 {
			if v := res.Metrics["agg_accuracy"]; v < 0.3 {
				fail("semantic", "quiet honest world completed all aggregations with coverage %v but accuracy %v < 0.3", cov, v)
			}
		}
	}
}

// quietWorld reports whether the spec injects no correlated outages or
// monitor degradation — the regime where accuracy floors are safe to
// assert.
func quietWorld(spec *scenario.Spec) bool {
	if spec.Fleet.MonitorError > 0 || spec.Fleet.MonitorStaleness > 0 || spec.Fleet.DistributedMonitor {
		return false
	}
	for i := range spec.Events {
		if spec.Events[i].ChurnBurst != nil || spec.Events[i].MonitorNoise != nil {
			return false
		}
	}
	return true
}

// specHosts resolves the effective fleet size (the engine default is
// the 1442-host Overnet population).
func specHosts(spec *scenario.Spec) int {
	if spec.Fleet.Hosts > 0 {
		return spec.Fleet.Hosts
	}
	return 1442
}

// renderRun executes the spec with the given engine options and
// renders the full report (metrics, verdicts, event log) to bytes —
// the byte-identity unit every metamorphic oracle compares. Panics are
// converted to errors so one broken world cannot kill a campaign.
func renderRun(spec *scenario.Spec, opts scenario.Options) (out []byte, res *scenario.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	res, err = scenario.Run(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	return render(res), res, nil
}

// renderRunObserved is renderRun with a live metrics registry and op
// tracer armed; it also verifies the instruments actually saw traffic
// (a byte-identity check against a never-wired observability layer
// would be vacuous).
func renderRunObserved(spec *scenario.Spec) (out []byte, res *scenario.Result, err error) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	out, res, err = renderRun(spec, scenario.Options{Metrics: reg, OpTrace: tr})
	if err != nil {
		return nil, nil, err
	}
	if reg.Counter("sim_events_total").Value() == 0 {
		return nil, nil, fmt.Errorf("observability armed but sim_events_total stayed 0")
	}
	return out, res, nil
}

// renderRunMany executes a multi-seed sweep and renders its aggregate
// report, with the same panic containment as renderRun.
func renderRunMany(spec *scenario.Spec, seeds []int64, parallelism int) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	multi, err := scenario.RunMany(spec, seeds, parallelism, scenario.Options{})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	multi.WriteReport(&buf)
	return buf.Bytes(), nil
}

// render serializes a result to the canonical comparison form: the
// sorted metric report plus the ordered event log.
func render(res *scenario.Result) []byte {
	var buf bytes.Buffer
	res.WriteReport(&buf)
	for _, line := range res.EventLog {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// firstDiff renders the first differing line of two reports — enough
// to identify the divergence without dumping two full reports into a
// violation message.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte{'\n'})
	bl := bytes.Split(b, []byte{'\n'})
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("reports differ in length: %d vs %d lines", len(al), len(bl))
}
