package fuzzgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avmem/internal/scenario"
)

// Options tunes a fuzz campaign.
type Options struct {
	// Budget is the wall-clock budget; generation stops when it is
	// spent (default 60s). A scenario in flight when the budget expires
	// finishes its oracle checks.
	Budget time.Duration
	// Seed is the first generator seed; scenario i uses Seed+i.
	Seed int64
	// Max stops the campaign after this many scenarios (0 = unbounded,
	// budget-only).
	Max int
	// Min keeps generating past the budget until this many scenarios
	// ran — the floor that makes a CI gate meaningful on a slow runner.
	Min int
	// SpecTimeout bounds one scenario's full oracle evaluation; a
	// scenario still running after this long is reported as a hang
	// (possible deadlock) and the campaign aborts, leaving the stuck
	// goroutine behind (default 120s).
	SpecTimeout time.Duration
	// ShrinkEvals bounds the shrinker's oracle evaluations per failure
	// (default 60).
	ShrinkEvals int
	// CorpusDir, when non-empty, receives one minimized spec file per
	// failing seed (the scenarios/fuzz-corpus/ convention).
	CorpusDir string
	// Log receives progress lines (nil discards).
	Log io.Writer
	// Gen bounds the generator; Oracle tunes the invariant layer.
	Gen    GenOptions
	Oracle OracleConfig
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 60 * time.Second
	}
	if o.SpecTimeout <= 0 {
		o.SpecTimeout = 120 * time.Second
	}
	if o.ShrinkEvals <= 0 {
		o.ShrinkEvals = 60
	}
	return o
}

// Finding is one failing seed: the generated spec, its violations, and
// the minimized reproduction.
type Finding struct {
	// Seed regenerates the original spec via Generate(Seed).
	Seed int64
	// Violations are the original spec's broken invariants.
	Violations []Violation
	// Minimized is the shrunken reproduction (never nil; at worst the
	// original spec), MinViolations its violation set.
	Minimized     *scenario.Spec
	MinViolations []Violation
	// CorpusPath is where the minimized spec was written ("" when no
	// corpus dir was configured or the write failed).
	CorpusPath string
}

// Report summarizes a campaign.
type Report struct {
	// Ran counts fully checked scenarios; Infeasible counts generated
	// specs whose world could not be built for a benign configuration
	// reason (counted separately so a generator regression shows up).
	Ran, Infeasible int
	// Findings holds one entry per failing seed.
	Findings []Finding
	// Elapsed is the campaign's wall-clock time.
	Elapsed time.Duration
}

// Failed reports whether any scenario violated an oracle.
func (r *Report) Failed() bool { return len(r.Findings) > 0 }

// Campaign generates scenarios from consecutive seeds and runs every
// oracle against each until the budget (and Min), Max, or a hang stops
// it. Failing specs are minimized and, when a corpus dir is set,
// written there for the regression suite to replay forever.
func Campaign(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}
	start := time.Now()
	rep := &Report{}
	for i := 0; ; i++ {
		if opts.Max > 0 && rep.Ran+rep.Infeasible >= opts.Max {
			break
		}
		if time.Since(start) >= opts.Budget && rep.Ran+rep.Infeasible >= opts.Min {
			break
		}
		seed := opts.Seed + int64(i)
		spec := GenerateOpts(seed, opts.Gen)
		vs, hung := checkWithTimeout(spec, opts.Oracle, opts.SpecTimeout)
		if hung {
			rep.Findings = append(rep.Findings, Finding{
				Seed:       seed,
				Violations: []Violation{{Oracle: "run", Detail: fmt.Sprintf("no result after %v (possible deadlock)", opts.SpecTimeout)}},
				Minimized:  spec,
			})
			rep.Elapsed = time.Since(start)
			return rep, fmt.Errorf("fuzzgen: seed %d hung for %v; campaign aborted", seed, opts.SpecTimeout)
		}
		if len(vs) == 1 && vs[0].Oracle == "run" && infeasible(vs[0]) {
			rep.Infeasible++
			fmt.Fprintf(logw, "seed %d: infeasible config (%s)\n", seed, vs[0].Detail)
			continue
		}
		if len(vs) == 0 {
			rep.Ran++
			fmt.Fprintf(logw, "seed %d: ok (%d hosts, %d events)\n", seed, spec.Fleet.Hosts, len(spec.Events))
			continue
		}
		rep.Ran++
		fmt.Fprintf(logw, "seed %d: %d violation(s); shrinking (first: %s)\n", seed, len(vs), vs[0])
		min, minVs := Shrink(spec, opts.Oracle, opts.ShrinkEvals)
		f := Finding{Seed: seed, Violations: vs, Minimized: min, MinViolations: minVs}
		if opts.CorpusDir != "" {
			path, err := WriteCorpus(opts.CorpusDir, seed, min, minVs)
			if err != nil {
				fmt.Fprintf(logw, "seed %d: corpus write failed: %v\n", seed, err)
			} else {
				f.CorpusPath = path
				fmt.Fprintf(logw, "seed %d: minimized to %d hosts, %d events → %s\n",
					seed, min.Fleet.Hosts, len(min.Events), path)
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// checkWithTimeout runs Check on its own goroutine so a deadlocked
// world surfaces as a campaign finding instead of a silent hang.
func checkWithTimeout(spec *scenario.Spec, cfg OracleConfig, timeout time.Duration) (vs []Violation, hung bool) {
	done := make(chan []Violation, 1)
	go func() { done <- Check(spec, cfg) }()
	select {
	case vs = <-done:
		return vs, false
	case <-time.After(timeout):
		return nil, true
	}
}

// infeasible recognizes run errors that condemn the configuration, not
// the engines — the generator avoids them by construction, but a
// random cohort band can still select zero hosts on a small fleet.
func infeasible(v Violation) bool {
	return strings.Contains(v.Detail, "selects no hosts")
}

// WriteCorpus serializes a minimized failing spec into dir as
// fuzz-seed<seed>.json, annotating the description with the violated
// oracles so the file documents why it exists. The regression suite in
// internal/scenario replays every file in the directory.
func WriteCorpus(dir string, seed int64, spec *scenario.Spec, vs []Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	cp := cloneSpec(spec)
	cp.Name = fmt.Sprintf("fuzz-seed%d", seed)
	oracles := make([]string, 0, len(vs))
	for _, v := range vs {
		oracles = append(oracles, v.Oracle)
	}
	cp.Description = fmt.Sprintf(
		"minimized by internal/fuzzgen from seed %d; violated oracle(s): %s",
		seed, strings.Join(oracles, ", "))
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, cp.Name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteReport renders the campaign summary to w.
func (r *Report) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "== fuzz campaign: %d scenario(s) in %v (%d infeasible config(s) skipped) ==\n",
		r.Ran, r.Elapsed.Round(time.Millisecond), r.Infeasible)
	if !r.Failed() {
		fmt.Fprintf(w, "PASS: all invariant oracles held\n")
		return
	}
	for _, f := range r.Findings {
		fmt.Fprintf(w, "FAIL: seed %d\n", f.Seed)
		for _, v := range f.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		if f.CorpusPath != "" {
			fmt.Fprintf(w, "  minimized spec: %s\n", f.CorpusPath)
		}
	}
}
