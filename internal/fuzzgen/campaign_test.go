package fuzzgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avmem/internal/scenario"
)

// fastOptions keeps campaign tests cheap: tiny worlds, the expensive
// cross-engine and sweep oracles disabled.
func fastOptions() Options {
	return Options{
		Budget: time.Millisecond, // Min/Max drive the loop, not the clock
		Gen:    GenOptions{MinHosts: 50, MaxHosts: 80, MaxEvents: 2},
		Oracle: OracleConfig{ShardThreads: -1, MemnetMaxHosts: -1, RunManyMaxHosts: -1},
	}
}

// TestCampaignRunsMinScenarios pins that Min keeps the campaign going
// past an exhausted budget — the CI floor.
func TestCampaignRunsMinScenarios(t *testing.T) {
	opts := fastOptions()
	opts.Seed = 100
	opts.Min = 5
	rep, err := Campaign(opts)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.Ran+rep.Infeasible < 5 {
		t.Fatalf("Min=5 but only %d scenarios ran (%d infeasible)", rep.Ran, rep.Infeasible)
	}
	if rep.Failed() {
		t.Fatalf("healthy campaign reported findings: %+v", rep.Findings)
	}
}

// TestCampaignStopsAtMax pins the scenario ceiling.
func TestCampaignStopsAtMax(t *testing.T) {
	opts := fastOptions()
	opts.Budget = time.Hour // Max must stop it, not the clock
	opts.Max = 3
	rep, err := Campaign(opts)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.Ran+rep.Infeasible != 3 {
		t.Fatalf("Max=3 but %d scenarios ran (%d infeasible)", rep.Ran, rep.Infeasible)
	}
}

// TestWriteCorpusRoundTrips pins the corpus file contract: the written
// spec loads back through the scenario loader with zero problems and
// carries the provenance description.
func TestWriteCorpusRoundTrips(t *testing.T) {
	dir := t.TempDir()
	spec := Generate(42)
	vs := []Violation{{Oracle: "determinism", Detail: "x"}, {Oracle: "semantic", Detail: "y"}}
	path, err := WriteCorpus(dir, 42, spec, vs)
	if err != nil {
		t.Fatalf("WriteCorpus: %v", err)
	}
	if filepath.Base(path) != "fuzz-seed42.json" {
		t.Fatalf("unexpected corpus file name %q", path)
	}
	back, problems := scenario.LoadFileAll(path)
	if len(problems) > 0 {
		t.Fatalf("corpus file has problems: %v", problems)
	}
	if back.Name != "fuzz-seed42" {
		t.Fatalf("corpus spec name %q", back.Name)
	}
	if !strings.Contains(back.Description, "determinism, semantic") {
		t.Fatalf("description lacks oracle provenance: %q", back.Description)
	}
}

// TestCampaignWritesCorpusOnFailure injects a failing oracle via an
// impossible semantic bound… not possible from outside, so instead it
// exercises the corpus path directly through a campaign whose oracle
// layer is replaced by a spec the engines cannot run: a trace path
// that does not exist resolves to a "run" violation (not infeasible),
// which must shrink and land in the corpus dir.
func TestCampaignWritesCorpusOnFailure(t *testing.T) {
	// Campaign generates its own specs, which are healthy by
	// construction; to test the failure path end to end we simulate what
	// Campaign does on a finding, using Shrink + WriteCorpus with a
	// synthetic always-failing oracle.
	dir := t.TempDir()
	spec := Generate(7)
	check := syntheticOracleAlways()
	min, minVs := shrinkWith(spec, check, 50)
	if len(minVs) == 0 {
		t.Fatal("synthetic oracle did not fail")
	}
	path, err := WriteCorpus(dir, 7, min, minVs)
	if err != nil {
		t.Fatalf("WriteCorpus: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corpus file missing: %v", err)
	}
}

func syntheticOracleAlways() func(*scenario.Spec) []Violation {
	return func(*scenario.Spec) []Violation {
		return []Violation{{Oracle: "semantic", Detail: "synthetic"}}
	}
}

// TestInfeasibleClassification pins that only the benign
// config-rejection error is treated as infeasible.
func TestInfeasibleClassification(t *testing.T) {
	if !infeasible(Violation{Oracle: "run", Detail: `exp: adversary band [0.98,0.99) selects no hosts`}) {
		t.Error("adversary-band rejection should be infeasible")
	}
	if infeasible(Violation{Oracle: "run", Detail: "panic: index out of range"}) {
		t.Error("a panic is never infeasible")
	}
}

// TestReportWriteReport smoke-tests both render paths.
func TestReportWriteReport(t *testing.T) {
	var b strings.Builder
	(&Report{Ran: 3, Elapsed: time.Second}).WriteReport(&b)
	if !strings.Contains(b.String(), "PASS") {
		t.Fatalf("clean report lacks PASS: %q", b.String())
	}
	b.Reset()
	rep := &Report{Ran: 1, Findings: []Finding{{
		Seed:       9,
		Violations: []Violation{{Oracle: "shards", Detail: "diverged"}},
		CorpusPath: "scenarios/fuzz-corpus/fuzz-seed9.json",
	}}}
	rep.WriteReport(&b)
	out := b.String()
	if !strings.Contains(out, "FAIL: seed 9") || !strings.Contains(out, "shards: diverged") {
		t.Fatalf("failure report incomplete: %q", out)
	}
}
