package fuzzgen

import (
	"testing"

	"avmem/internal/scenario"
)

// syntheticOracle builds a cheap failure predicate for shrinker tests:
// the "bug" fires iff the fleet has at least minHosts hosts AND the
// spec still carries an aggregate event. Everything else is noise the
// shrinker should strip.
func syntheticOracle(minHosts int) func(*scenario.Spec) []Violation {
	return func(s *scenario.Spec) []Violation {
		if s.Fleet.Hosts < minHosts {
			return nil
		}
		for i := range s.Events {
			if s.Events[i].Aggregate != nil {
				return []Violation{{Oracle: "semantic", Detail: "synthetic bug"}}
			}
		}
		return nil
	}
}

// TestShrinkMinimizes pins that the shrinker converges to a small
// reproduction: a noisy generated spec with an injected aggregate
// "bug" must reduce to few events and the minimum failing host count,
// with adversaries, audit, and fleet extras stripped.
func TestShrinkMinimizes(t *testing.T) {
	// Find a generated spec that is big and busy and contains an
	// aggregate event, so there is something to strip.
	var spec *scenario.Spec
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed)
		if s.Fleet.Hosts < 400 || len(s.Events) < 4 {
			continue
		}
		for i := range s.Events {
			if s.Events[i].Aggregate != nil {
				spec = s
			}
		}
		if spec != nil {
			break
		}
	}
	if spec == nil {
		t.Fatal("no suitable generated spec found in 200 seeds")
	}

	check := syntheticOracle(60)
	min, minVs := shrinkWith(spec, check, 500)

	if len(minVs) == 0 || minVs[0].Oracle != "semantic" {
		t.Fatalf("minimized spec no longer fails the original oracle: %v", minVs)
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized spec is invalid: %v", err)
	}
	if min.Fleet.Hosts > 119 {
		// Halving always lands at or below 2×floor−1 for this oracle.
		t.Errorf("hosts not minimized: %d", min.Fleet.Hosts)
	}
	if len(min.Events) != 1 || min.Events[0].Aggregate == nil {
		t.Errorf("events not minimized to the single trigger: %d events", len(min.Events))
	}
	if min.Adversaries != nil || min.Fleet.Audit != nil {
		t.Errorf("optional structure not stripped: adversaries=%v audit=%v",
			min.Adversaries != nil, min.Fleet.Audit != nil)
	}
}

// TestShrinkKeepsFailingOracle pins that the shrinker never trades the
// original oracle for a different failure while reducing.
func TestShrinkKeepsFailingOracle(t *testing.T) {
	spec := Generate(3)
	spec.Fleet.Hosts = 300
	spec.Events = append(spec.Events, scenario.Event{
		Aggregate: &scenario.AggregateBatch{Count: 1, TargetLo: 0, TargetHi: 1},
	})
	// A predicate that fails "determinism" on big fleets and "semantic"
	// on small ones: the shrinker must refuse the host halving because
	// it changes which oracle trips.
	check := func(s *scenario.Spec) []Violation {
		if s.Fleet.Hosts >= 200 {
			return []Violation{{Oracle: "determinism", Detail: "big-world bug"}}
		}
		return []Violation{{Oracle: "semantic", Detail: "different bug"}}
	}
	min, minVs := shrinkWith(spec, check, 200)
	if minVs[0].Oracle != "determinism" {
		t.Fatalf("shrinker switched oracle: %v", minVs)
	}
	if min.Fleet.Hosts < 200 {
		t.Fatalf("adopted a candidate that fails a different oracle (hosts=%d)", min.Fleet.Hosts)
	}
}

// TestShrinkPassingSpecIsNoop pins the not-failing contract.
func TestShrinkPassingSpecIsNoop(t *testing.T) {
	spec := Generate(5)
	min, vs := shrinkWith(spec, func(*scenario.Spec) []Violation { return nil }, 10)
	if vs != nil {
		t.Fatalf("want nil violations for a passing spec, got %v", vs)
	}
	if min == nil {
		t.Fatal("want the (cloned) input back, got nil")
	}
}

// TestShrinkRespectsEvalBudget pins that the shrinker stops at the
// evaluation ceiling instead of grinding arbitrarily long.
func TestShrinkRespectsEvalBudget(t *testing.T) {
	spec := Generate(11)
	spec.Events = append(spec.Events, scenario.Event{
		Aggregate: &scenario.AggregateBatch{Count: 1, TargetLo: 0, TargetHi: 1},
	})
	evals := 0
	check := func(s *scenario.Spec) []Violation {
		evals++
		return []Violation{{Oracle: "run", Detail: "always fails"}}
	}
	shrinkWith(spec, check, 5)
	// 1 for the initial classification + at most maxEvals candidates.
	if evals > 6 {
		t.Fatalf("shrinker ran %d evaluations with a budget of 5", evals)
	}
}

// TestCloneSpecIsDeep pins that candidate mutations never alias the
// original spec's pointer graph.
func TestCloneSpecIsDeep(t *testing.T) {
	orig := Generate(17)
	if orig.Adversaries == nil {
		orig.Adversaries = &scenario.AdversariesSpec{Fraction: 0.2, Behaviors: []string{"inflate", "deflate"}}
	}
	cp := cloneSpec(orig)
	cp.Adversaries.Behaviors[0] = "mutated"
	cp.Fleet.Hosts = 1
	for i := range cp.Events {
		e := &cp.Events[i]
		switch {
		case e.Aggregate != nil:
			e.Aggregate.Count = 999999
		case e.AnycastBatch != nil:
			e.AnycastBatch.Count = 999999
		}
	}
	if orig.Adversaries.Behaviors[0] == "mutated" {
		t.Error("behaviors slice is shared with the clone")
	}
	if orig.Fleet.Hosts == 1 {
		t.Error("fleet is shared with the clone")
	}
	for i := range orig.Events {
		e := &orig.Events[i]
		if e.Aggregate != nil && e.Aggregate.Count == 999999 {
			t.Error("aggregate event is shared with the clone")
		}
		if e.AnycastBatch != nil && e.AnycastBatch.Count == 999999 {
			t.Error("anycast event is shared with the clone")
		}
	}
}
