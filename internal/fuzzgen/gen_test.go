package fuzzgen

import (
	"encoding/json"
	"reflect"
	"testing"

	"avmem/internal/scenario"
)

// TestGenerateDeterministic pins that one seed always yields the
// identical spec — a finding reproduces from its seed alone.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n a: %+v\n b: %+v", seed, a, b)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: JSON forms differ", seed)
		}
	}
}

// TestGenerateAlwaysValid sweeps many seeds and requires every
// generated spec to pass full validation — the generator's grammar
// must stay inside the spec's legal space.
func TestGenerateAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		s := Generate(seed)
		if ps := s.Problems(); len(ps) > 0 {
			t.Fatalf("seed %d generated an invalid spec: %v\nspec: %s", seed, ps[0], mustJSON(s))
		}
		if s.Seed != seed {
			t.Fatalf("seed %d: spec carries world seed %d", seed, s.Seed)
		}
	}
}

// TestGenerateRoundTripsThroughJSON pins that a generated spec
// survives the scenario codec — what the corpus writer persists, the
// loader reproduces.
func TestGenerateRoundTripsThroughJSON(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(seed)
		data := mustJSON(s)
		var back scenario.Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if !reflect.DeepEqual(s, &back) {
			t.Fatalf("seed %d: spec did not round-trip:\n a: %+v\n b: %+v", seed, s, &back)
		}
	}
}

// TestGenerateCoversSpace requires the generator to actually explore
// its advertised dimensions across a modest seed budget: every event
// kind, every adversary behavior, every availability shape, audited
// and monitored fleets, big and small worlds.
func TestGenerateCoversSpace(t *testing.T) {
	kinds := map[string]bool{}
	avail := map[string]bool{}
	behaviors := map[string]bool{}
	var sawSmall, sawBig, sawAudit, sawAdv, sawDistMon, sawRedundancy bool
	for seed := int64(0); seed < 400; seed++ {
		s := Generate(seed)
		if s.Fleet.Hosts <= 200 {
			sawSmall = true
		}
		if s.Fleet.Hosts >= 600 {
			sawBig = true
		}
		avail[s.Fleet.Availability] = true
		if s.Fleet.Audit != nil {
			sawAudit = true
		}
		if s.Fleet.DistributedMonitor {
			sawDistMon = true
		}
		if s.Adversaries != nil {
			sawAdv = true
			for _, b := range s.Adversaries.Behaviors {
				behaviors[b] = true
			}
		}
		for i := range s.Events {
			switch e := &s.Events[i]; {
			case e.ChurnBurst != nil:
				kinds["churn_burst"] = true
			case e.Attack != nil:
				kinds["attack"] = true
			case e.MonitorNoise != nil:
				kinds["monitor_noise"] = true
			case e.AnycastBatch != nil:
				kinds["anycast_batch"] = true
			case e.MulticastBatch != nil:
				kinds["multicast_batch"] = true
			case e.Rangecast != nil:
				kinds["rangecast"] = true
			case e.Aggregate != nil:
				kinds["aggregate"] = true
				if e.Aggregate.Redundancy > 1 {
					sawRedundancy = true
				}
			case e.Adversary != nil:
				kinds["adversary"] = true
			case e.BiasProbe != nil:
				kinds["bias_probe"] = true
			}
		}
	}
	for _, k := range []string{"churn_burst", "attack", "monitor_noise", "anycast_batch",
		"multicast_batch", "rangecast", "aggregate", "adversary", "bias_probe"} {
		if !kinds[k] {
			t.Errorf("400 seeds never produced a %s event", k)
		}
	}
	for _, a := range []string{"", "overnet", "uniform", "bimodal"} {
		if !avail[a] {
			t.Errorf("400 seeds never produced availability %q", a)
		}
	}
	for b := range scenario.AdversaryBehaviors {
		if !behaviors[b] {
			t.Errorf("400 seeds never produced adversary behavior %q", b)
		}
	}
	if !sawSmall || !sawBig {
		t.Errorf("fleet sizes did not cover both ends: small=%v big=%v", sawSmall, sawBig)
	}
	if !sawAudit || !sawAdv || !sawDistMon || !sawRedundancy {
		t.Errorf("missing structure coverage: audit=%v adversaries=%v distributed-monitor=%v redundancy=%v",
			sawAudit, sawAdv, sawDistMon, sawRedundancy)
	}
}

// TestGenerateRespectsBounds pins the GenOptions contract.
func TestGenerateRespectsBounds(t *testing.T) {
	o := GenOptions{MinHosts: 50, MaxHosts: 120, MaxEvents: 3}
	for seed := int64(0); seed < 200; seed++ {
		s := GenerateOpts(seed, o)
		if s.Fleet.Hosts < 50 || s.Fleet.Hosts > 120 {
			t.Fatalf("seed %d: hosts %d outside [50,120]", seed, s.Fleet.Hosts)
		}
		if len(s.Events) > 3 {
			t.Fatalf("seed %d: %d events, want <= 3", seed, len(s.Events))
		}
	}
}

func mustJSON(s *scenario.Spec) []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err)
	}
	return data
}
