package fuzzgen

import (
	"time"

	"avmem/internal/scenario"
)

// Shrink minimizes a failing spec by delta debugging: it repeatedly
// applies reductions — drop events, halve the fleet, strip the
// adversary cohort, strip audit, strip fleet extras, halve batch
// counts and warmup — keeping a candidate only when it still violates
// the same oracle, until no reduction applies or the evaluation budget
// runs out. The returned spec is always a valid failing reproduction
// (at worst the input itself); the second result is the violation set
// of the minimized spec.
//
// maxEvals bounds the number of oracle evaluations (<= 0 means 60 —
// every evaluation is a handful of full scenario runs).
func Shrink(spec *scenario.Spec, cfg OracleConfig, maxEvals int) (*scenario.Spec, []Violation) {
	return shrinkWith(spec, func(s *scenario.Spec) []Violation { return Check(s, cfg) }, maxEvals)
}

// shrinkWith is Shrink against an arbitrary failure predicate — the
// delta-debugging engine itself, separated so tests can minimize
// against a cheap synthetic oracle.
func shrinkWith(spec *scenario.Spec, check func(*scenario.Spec) []Violation, maxEvals int) (*scenario.Spec, []Violation) {
	if maxEvals <= 0 {
		maxEvals = 60
	}
	cur := cloneSpec(spec)
	curVs := check(cur)
	if len(curVs) == 0 {
		return cur, nil // not failing: nothing to minimize
	}
	oracle := curVs[0].Oracle
	evals := 0
	// stillFails evaluates a candidate and adopts it when it trips the
	// same oracle.
	stillFails := func(cand *scenario.Spec) bool {
		if evals >= maxEvals {
			return false
		}
		if len(cand.Events) == 0 || cand.Validate() != nil {
			return false
		}
		evals++
		vs := check(cand)
		for _, v := range vs {
			if v.Oracle == oracle {
				cur, curVs = cand, vs
				return true
			}
		}
		return false
	}

	for reduced := true; reduced && evals < maxEvals; {
		reduced = false
		reduced = shrinkEvents(&cur, stillFails) || reduced
		reduced = shrinkHosts(&cur, stillFails) || reduced
		reduced = shrinkStructure(&cur, stillFails) || reduced
	}
	return cur, curVs
}

// shrinkEvents drops event chunks ddmin-style: halves first, then
// single events.
func shrinkEvents(cur **scenario.Spec, stillFails func(*scenario.Spec) bool) bool {
	reduced := false
	for chunk := len((*cur).Events) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len((*cur).Events); {
			cand := cloneSpec(*cur)
			cand.Events = append(append([]scenario.Event{}, cand.Events[:start]...), cand.Events[start+chunk:]...)
			if stillFails(cand) {
				reduced = true
				// cur shrank; retry the same window against it.
				continue
			}
			start++
		}
	}
	return reduced
}

// shrinkHosts halves the fleet toward the 50-host floor.
func shrinkHosts(cur **scenario.Spec, stillFails func(*scenario.Spec) bool) bool {
	reduced := false
	for (*cur).Fleet.Hosts > 50 {
		cand := cloneSpec(*cur)
		cand.Fleet.Hosts /= 2
		if cand.Fleet.Hosts < 50 {
			cand.Fleet.Hosts = 50
		}
		if !stillFails(cand) {
			break
		}
		reduced = true
	}
	return reduced
}

// shrinkStructure strips whole optional blocks and halves the
// remaining magnitudes.
func shrinkStructure(cur **scenario.Spec, stillFails func(*scenario.Spec) bool) bool {
	reduced := false
	try := func(mutate func(*scenario.Spec)) {
		cand := cloneSpec(*cur)
		mutate(cand)
		if stillFails(cand) {
			reduced = true
		}
	}
	if (*cur).Adversaries != nil {
		// Dropping the cohort also drops the events that require it.
		try(func(s *scenario.Spec) {
			s.Adversaries = nil
			kept := s.Events[:0]
			for _, e := range s.Events {
				if e.Adversary == nil && e.BiasProbe == nil {
					kept = append(kept, e)
				}
			}
			s.Events = kept
		})
	}
	if (*cur).Adversaries != nil && len((*cur).Adversaries.Behaviors) > 1 {
		try(func(s *scenario.Spec) { s.Adversaries.Behaviors = s.Adversaries.Behaviors[:1] })
	}
	if (*cur).Fleet.Audit != nil {
		try(func(s *scenario.Spec) { s.Fleet.Audit = nil })
	}
	if f := (*cur).Fleet; f.DistributedMonitor || f.MonitorError > 0 || f.MonitorStaleness > 0 {
		try(func(s *scenario.Spec) {
			s.Fleet.DistributedMonitor = false
			s.Fleet.MonitorError = 0
			s.Fleet.MonitorStaleness = 0
		})
	}
	if f := (*cur).Fleet; f.Availability != "" || f.VerifyInbound || f.Epsilon != 0 || f.ViewSize != 0 {
		try(func(s *scenario.Spec) {
			s.Fleet.Availability = ""
			s.Fleet.VerifyInbound = false
			s.Fleet.Cushion = 0
			s.Fleet.Epsilon = 0
			s.Fleet.C1, s.Fleet.C2 = 0, 0
			s.Fleet.ViewSize = 0
		})
	}
	if (*cur).Warmup.D() > warmupFloor {
		try(func(s *scenario.Spec) { s.Warmup = scenario.Duration((*cur).Warmup.D() / 2) })
	}
	if counts := batchCounts(*cur); counts > len((*cur).Events) {
		try(func(s *scenario.Spec) { halveCounts(s) })
	}
	if hasRedundancy(*cur) {
		try(func(s *scenario.Spec) {
			for i := range s.Events {
				if s.Events[i].Aggregate != nil {
					s.Events[i].Aggregate.Redundancy = 0
				}
			}
		})
	}
	return reduced
}

const warmupFloor = 30 * time.Minute

// batchCounts sums the operation counts across all batch events.
func batchCounts(s *scenario.Spec) int {
	n := 0
	for i := range s.Events {
		switch e := &s.Events[i]; {
		case e.AnycastBatch != nil:
			n += e.AnycastBatch.Count
		case e.MulticastBatch != nil:
			n += e.MulticastBatch.Count
		case e.Rangecast != nil:
			n += e.Rangecast.Count
		case e.Aggregate != nil:
			n += e.Aggregate.Count
		}
	}
	return n
}

// halveCounts halves every batch's operation count (floor 1).
func halveCounts(s *scenario.Spec) {
	half := func(c *int) {
		if *c > 1 {
			*c /= 2
		}
	}
	for i := range s.Events {
		switch e := &s.Events[i]; {
		case e.AnycastBatch != nil:
			half(&e.AnycastBatch.Count)
		case e.MulticastBatch != nil:
			half(&e.MulticastBatch.Count)
		case e.Rangecast != nil:
			half(&e.Rangecast.Count)
		case e.Aggregate != nil:
			half(&e.Aggregate.Count)
		}
	}
}

func hasRedundancy(s *scenario.Spec) bool {
	for i := range s.Events {
		if s.Events[i].Aggregate != nil && s.Events[i].Aggregate.Redundancy > 0 {
			return true
		}
	}
	return false
}

// cloneSpec deep-copies a spec so candidate mutations never alias the
// current best reproduction.
func cloneSpec(s *scenario.Spec) *scenario.Spec {
	cp := *s
	if s.Adversaries != nil {
		a := *s.Adversaries
		a.Behaviors = append([]string(nil), s.Adversaries.Behaviors...)
		cp.Adversaries = &a
	}
	if s.Fleet.Audit != nil {
		au := *s.Fleet.Audit
		cp.Fleet.Audit = &au
	}
	cp.Events = make([]scenario.Event, len(s.Events))
	for i, e := range s.Events {
		ce := e
		if e.ChurnBurst != nil {
			v := *e.ChurnBurst
			ce.ChurnBurst = &v
		}
		if e.Attack != nil {
			v := *e.Attack
			ce.Attack = &v
		}
		if e.MonitorNoise != nil {
			v := *e.MonitorNoise
			ce.MonitorNoise = &v
		}
		if e.AnycastBatch != nil {
			v := *e.AnycastBatch
			ce.AnycastBatch = &v
		}
		if e.MulticastBatch != nil {
			v := *e.MulticastBatch
			ce.MulticastBatch = &v
		}
		if e.Rangecast != nil {
			v := *e.Rangecast
			ce.Rangecast = &v
		}
		if e.Aggregate != nil {
			v := *e.Aggregate
			ce.Aggregate = &v
		}
		if e.Adversary != nil {
			v := *e.Adversary
			ce.Adversary = &v
		}
		if e.BiasProbe != nil {
			v := *e.BiasProbe
			ce.BiasProbe = &v
		}
		cp.Events[i] = ce
	}
	cp.Assertions = append([]scenario.Assertion(nil), s.Assertions...)
	return &cp
}
