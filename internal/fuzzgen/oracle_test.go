package fuzzgen

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"avmem/internal/scenario"
)

// smallSpec returns a fast hand-built spec that exercises several
// oracles without a campaign's cost.
func smallSpec() *scenario.Spec {
	return &scenario.Spec{
		Name: "oracle-small",
		Seed: 7,
		Fleet: scenario.Fleet{
			Hosts:          80,
			Days:           0.5,
			ProtocolPeriod: scenario.Duration(2 * time.Minute),
		},
		Warmup: scenario.Duration(time.Hour),
		Events: []scenario.Event{
			{At: 0, AnycastBatch: &scenario.AnycastBatch{Count: 4, TargetLo: 0.3, TargetHi: 0.9}},
			{At: scenario.Duration(2 * time.Minute), Aggregate: &scenario.AggregateBatch{Count: 2, TargetLo: 0, TargetHi: 1}},
		},
	}
}

// TestCheckPassesOnHealthySpec runs the full oracle battery on a known
// good spec: every invariant must hold.
func TestCheckPassesOnHealthySpec(t *testing.T) {
	if vs := Check(smallSpec(), OracleConfig{}); len(vs) > 0 {
		t.Fatalf("healthy spec tripped oracles: %v", vs)
	}
}

// TestCheckReportsRunErrors pins that an unexecutable spec surfaces as
// a run violation, not a panic or a silent pass.
func TestCheckReportsRunErrors(t *testing.T) {
	s := smallSpec()
	s.Fleet.Trace = "does-not-exist.trace"
	vs := Check(s, OracleConfig{})
	if len(vs) != 1 || vs[0].Oracle != "run" {
		t.Fatalf("want exactly one run violation, got %v", vs)
	}
}

// TestSemanticOracle drives checkSemantics with fabricated results to
// pin each bound.
func TestSemanticOracle(t *testing.T) {
	cases := []struct {
		name    string
		metrics map[string]float64
		adv     bool
		noisy   bool   // degrade the monitor (a non-quiet world)
		want    string // substring of the expected violation ("" = none)
	}{
		{"clean", map[string]float64{"anycast_delivery_rate": 0.9, "online_fraction": 0.5}, false, false, ""},
		{"rate above one", map[string]float64{"rangecast_coverage": 1.2}, false, false, "outside [0,1]"},
		{"negative counter", map[string]float64{"agg_rejected_partials": -1}, true, false, "negative"},
		{"forgery tripwire", map[string]float64{"agg_forgery_accepted": 2}, true, false, "agg_forgery_accepted"},
		{"honest forgery rejection", map[string]float64{"agg_forgery_rejected": 1}, false, false, "honest run rejected"},
		{"honest pdf rejection", map[string]float64{"agg_rejected_partials": 3}, false, false, "PDF sanity"},
		// A degraded monitor can honestly push availability claims past
		// the PDF hull — no violation (fuzz-seed40 calibration) …
		{"noisy-monitor pdf rejection ok", map[string]float64{"agg_rejected_partials": 3}, false, true, ""},
		// … but forgery verdicts come from binding tokens, which noise
		// cannot excuse.
		{"noisy-monitor forgery rejection", map[string]float64{"agg_forgery_rejected": 1}, false, true, "honest run rejected"},
		{"audit fp bound", map[string]float64{"audit_false_positive_rate": 0.2}, true, false, "honest-FP contract"},
		{"delivery plus drop", map[string]float64{"anycast_delivery_rate": 0.8, "anycast_drop_rate": 0.4}, false, false, "exceeds 1"},
		{"quiet accuracy floor", map[string]float64{"agg_completion_rate": 1, "agg_coverage": 0.9, "agg_accuracy": 0.1}, false, false, "accuracy"},
		// Sparse trees in tiny worlds keep accuracy low without being
		// wrong — the floor is gated on coverage (fuzz-seed35
		// calibration).
		{"sparse-tree accuracy ok", map[string]float64{"agg_completion_rate": 1, "agg_coverage": 0.05, "agg_accuracy": 0.05}, false, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallSpec()
			if tc.adv {
				spec.Adversaries = &scenario.AdversariesSpec{Fraction: 0.1, Behaviors: []string{"inflate"}}
			}
			if tc.noisy {
				spec.Fleet.MonitorError = 0.02
				spec.Fleet.MonitorStaleness = scenario.Duration(30 * time.Minute)
			}
			var vs []Violation
			fail := func(oracle, format string, args ...any) {
				vs = append(vs, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
			}
			checkSemantics(spec, &scenario.Result{Metrics: tc.metrics}, fail)
			if tc.want == "" {
				if len(vs) > 0 {
					t.Fatalf("unexpected violations: %v", vs)
				}
				return
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Detail, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want violation containing %q, got %v", tc.want, vs)
			}
		})
	}
}

// TestLaneUnsafeMatchesEngineRule keeps the oracle's static
// eligibility mirror aligned with the engine's (exp.NewWorld): specs
// with adversaries, audit, degraded or distributed monitors must be
// classified lane-unsafe; plain and verify-inbound specs must not.
func TestLaneUnsafeMatchesEngineRule(t *testing.T) {
	s := smallSpec()
	if laneUnsafe(s) {
		t.Error("plain spec classified lane-unsafe")
	}
	s.Fleet.VerifyInbound = true
	if laneUnsafe(s) {
		t.Error("verify-inbound is lane-safe in the engine but classified unsafe")
	}
	s = smallSpec()
	s.Adversaries = &scenario.AdversariesSpec{Fraction: 0.1, Behaviors: []string{"inflate"}}
	if !laneUnsafe(s) {
		t.Error("adversarial spec classified lane-safe")
	}
	s = smallSpec()
	s.Fleet.Audit = &scenario.AuditSpec{}
	if !laneUnsafe(s) {
		t.Error("audited spec classified lane-safe")
	}
	s = smallSpec()
	s.Fleet.MonitorError = 0.05
	if !laneUnsafe(s) {
		t.Error("noisy-monitor spec classified lane-safe")
	}
}
