package adversary

import (
	"sync"
	"testing"
	"time"

	"avmem/internal/agg"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/shuffle"
	"avmem/internal/sim"
	"avmem/internal/transport"
)

func TestInflateRewritesClaims(t *testing.T) {
	b := Inflate{To: 0.98}
	cases := []any{
		ops.AnycastMsg{SenderAvail: 0.3},
		ops.MulticastMsg{SenderAvail: 0.3},
		shuffle.Request{SenderAvail: 0.3},
		shuffle.Reply{SenderAvail: 0.3},
	}
	for _, msg := range cases {
		d := b.Outbound("peer", msg)
		var got float64
		switch m := d.Msg.(type) {
		case ops.AnycastMsg:
			got = m.SenderAvail
		case ops.MulticastMsg:
			got = m.SenderAvail
		case shuffle.Request:
			got = m.SenderAvail
		case shuffle.Reply:
			got = m.SenderAvail
		}
		if got != 0.98 {
			t.Errorf("%T: claim %v, want 0.98", msg, got)
		}
		if d.Drop {
			t.Errorf("%T: inflate dropped the message", msg)
		}
	}
	// Non-claim traffic passes untouched.
	d := b.Outbound("peer", ops.DeliveredMsg{Hops: 2})
	if m, ok := d.Msg.(ops.DeliveredMsg); !ok || m.Hops != 2 {
		t.Errorf("unrelated message rewritten: %#v", d.Msg)
	}
}

func TestEclipsePoisonsShuffleTraffic(t *testing.T) {
	colluders := []ids.NodeID{"adv1", "adv2", "adv3", "self"}
	b := NewEclipse("self", colluders, 7)
	honest := []shuffle.Entry{{ID: "h1", Age: 3}, {ID: "h2", Age: 1}, {ID: "h3"}}
	d := b.Outbound("victim", shuffle.Reply{Entries: honest})
	reply := d.Msg.(shuffle.Reply)
	if len(reply.Entries) == 0 || reply.Entries[0].ID != "self" {
		t.Fatalf("poisoned reply does not lead with self: %v", reply.Entries)
	}
	isColluder := map[ids.NodeID]bool{"adv1": true, "adv2": true, "adv3": true, "self": true}
	for _, e := range reply.Entries {
		if !isColluder[e.ID] {
			t.Errorf("poisoned reply contains non-colluder %s", e.ID)
		}
		if e.ID == "victim" {
			t.Errorf("poisoned reply targets the recipient itself")
		}
		if e.Age != 0 {
			t.Errorf("poisoned entry %s has age %d, want 0 (maximally fresh)", e.ID, e.Age)
		}
	}
	// Determinism per seed.
	b2 := NewEclipse("self", colluders, 7)
	d2 := b2.Outbound("victim", shuffle.Reply{Entries: honest})
	r2 := d2.Msg.(shuffle.Reply)
	if len(r2.Entries) != len(reply.Entries) {
		t.Fatalf("same seed produced different poison: %v vs %v", reply.Entries, r2.Entries)
	}
	for i := range r2.Entries {
		if r2.Entries[i].ID != reply.Entries[i].ID {
			t.Fatalf("same seed produced different poison order")
		}
	}
}

func TestSelectiveForwardDropsOnlyRelays(t *testing.T) {
	b := NewSelectiveForward("self", 1.0, 1) // always drop relays
	own := ops.AnycastMsg{ID: ops.MsgID{Origin: "self", Seq: 1}}
	if d := b.Outbound("peer", own); d.Drop {
		t.Fatal("own operation dropped")
	}
	relay := ops.AnycastMsg{ID: ops.MsgID{Origin: "other", Seq: 1}}
	d := b.Outbound("peer", relay)
	if !d.Drop || !d.FakeAck {
		t.Fatalf("relay not black-holed: %+v", d)
	}
	if d2 := b.Outbound("peer", shuffle.Request{}); d2.Drop {
		t.Fatal("shuffle traffic dropped by selective forwarding")
	}
}

func TestFreeRideIgnoresShuffleRequests(t *testing.T) {
	b := FreeRide{}
	if b.Inbound("peer", shuffle.Request{}) {
		t.Fatal("free-rider answered a shuffle request")
	}
	if !b.Inbound("peer", shuffle.Reply{}) || !b.Inbound("peer", ops.AnycastMsg{}) {
		t.Fatal("free-rider dropped non-request traffic")
	}
}

func TestMixSwitchGatesBehaviors(t *testing.T) {
	sw := NewSwitch(false)
	m := NewMix(sw, Inflate{To: 0.98}, FreeRide{})
	relay := ops.AnycastMsg{SenderAvail: 0.3}
	if d := m.Outbound("peer", relay); d.Msg.(ops.AnycastMsg).SenderAvail != 0.3 {
		t.Fatal("dormant mix rewrote traffic")
	}
	if !m.Inbound("peer", shuffle.Request{}) {
		t.Fatal("dormant mix dropped inbound traffic")
	}
	if m.Engaged() {
		t.Fatal("dormant mix reported engagement")
	}
	sw.Set(true)
	if d := m.Outbound("peer", relay); d.Msg.(ops.AnycastMsg).SenderAvail != 0.98 {
		t.Fatal("armed mix did not rewrite traffic")
	}
	if m.Inbound("peer", shuffle.Request{}) {
		t.Fatal("armed free-riding mix answered a request")
	}
	if !m.Engaged() {
		t.Fatal("armed mix did not report engagement")
	}
}

// TestWrapInterceptsEnv drives a wrapped virtual Env end to end: sends
// pass through the behavior, fake acks arrive asynchronously, and the
// registered handler is filtered.
func TestWrapInterceptsEnv(t *testing.T) {
	w := sim.NewWorld(1)
	net := transport.NewMemnet(transport.MemnetConfig{After: w.After, Seed: 2})
	env, err := runtime.NewVirtual(runtime.VirtualConfig{
		Self: "adv", Scheduler: w, Fabric: net, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwitch(true)
	wrapped := Wrap(env, NewMix(sw,
		NewSelectiveForward("adv", 1.0, 4), Inflate{To: 0.9}))

	// A peer records what actually crosses the fabric.
	var got []any
	peerEnv, err := runtime.NewVirtual(runtime.VirtualConfig{
		Self: "peer", Scheduler: w, Fabric: net, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := peerEnv.Register(func(from ids.NodeID, msg any) { got = append(got, msg) }); err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Register(func(from ids.NodeID, msg any) {}); err != nil {
		t.Fatal(err)
	}

	// A relayed operation is black-holed with a fake ack.
	acked := false
	wrapped.SendCall("peer", ops.AnycastMsg{ID: ops.MsgID{Origin: "other", Seq: 1}}, func(ok bool) {
		acked = ok
	})
	// An own operation crosses, with its claim inflated.
	wrapped.Send("peer", ops.AnycastMsg{ID: ops.MsgID{Origin: "adv", Seq: 1}, SenderAvail: 0.2})
	w.Run(time.Second)

	if !acked {
		t.Fatal("black-holed SendCall did not fake an ack")
	}
	if len(got) != 1 {
		t.Fatalf("peer received %d messages, want 1 (the own operation)", len(got))
	}
	if m := got[0].(ops.AnycastMsg); m.SenderAvail != 0.9 {
		t.Fatalf("claim not inflated in flight: %v", m.SenderAvail)
	}

	// Wrap preserves the Stopper contract.
	if _, ok := wrapped.(runtime.Stopper); !ok {
		t.Fatal("wrapped env lost the Stopper contract")
	}
	// Nil behavior is the identity.
	if Wrap(env, nil) != runtime.Env(env) {
		t.Fatal("Wrap(env, nil) is not the identity")
	}
}

func TestProfileBuild(t *testing.T) {
	if _, err := (Profile{}).Build("x", nil, 1, nil); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := (Profile{InflateTo: 1.5}).Build("x", nil, 1, nil); err == nil {
		t.Fatal("out-of-range InflateTo accepted")
	}
	b, err := Profile{InflateTo: 0.9, Eclipse: true, DropRate: 0.5, FreeRide: true}.
		Build("x", []ids.NodeID{"x", "y"}, 1, NewSwitch(true))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "mix(inflate+eclipse+selective-forward+free-ride)" {
		t.Fatalf("unexpected mix name %q", b.Name())
	}
}

// TestMixComposesAggBehaviors: the three aggregation attacks compose
// in one Mix behind the runtime Switch — dormant they are identities,
// armed the lie and the mangle stack on outbound partials and the
// forge reacts to observed trees with a fabricated origin-addressed
// result (carrying no binding token).
func TestMixComposesAggBehaviors(t *testing.T) {
	sw := NewSwitch(false)
	m := NewMix(sw, AggLie{Value: 100}, AggMangle{}, NewAggForge("adv"))

	var reply agg.Partial
	reply.Observe(0.5, 1)
	reply.Observe(0.7, 2)
	treeMsg := ops.AggMsg{ID: ops.MsgID{Origin: "initiator", Seq: 9}, Depth: 1}

	// Dormant: partials pass untouched, nothing is fabricated.
	if d := m.Outbound("parent", ops.AggReplyMsg{ID: treeMsg.ID, Partial: reply}); d.Msg.(ops.AggReplyMsg).Partial != reply {
		t.Fatal("dormant mix rewrote a partial")
	}
	if fabs := m.React("peer", treeMsg); len(fabs) != 0 {
		t.Fatalf("dormant mix fabricated %v", fabs)
	}
	if m.Engaged() {
		t.Fatal("dormant mix reported engagement")
	}

	sw.Set(true)
	// Armed: the lie rewrites the own contribution to 100, then the
	// mangle scales the (already lied) running sum tenfold.
	d := m.Outbound("parent", ops.AggReplyMsg{ID: treeMsg.ID, Partial: reply})
	got := d.Msg.(ops.AggReplyMsg).Partial
	if got.N != reply.N || got.Min != 100 || got.Max != 100 || got.Sum != 100*float64(reply.N)*aggMangleFactor {
		t.Fatalf("lie+mangle partial = %+v", got)
	}
	// Declines carry no partial and stay untouched.
	if d := m.Outbound("parent", ops.AggReplyMsg{ID: treeMsg.ID, Decline: true}); d.Msg.(ops.AggReplyMsg).Partial.N != 0 {
		t.Fatal("decline rewritten")
	}

	// Armed: an observed tree is raced with one forged result to the
	// origin, exactly once per operation, never for own operations.
	fabs := m.React("peer", treeMsg)
	if len(fabs) != 1 {
		t.Fatalf("React produced %d fabrications, want 1", len(fabs))
	}
	forged, ok := fabs[0].Msg.(ops.AggResultMsg)
	if fabs[0].To != "initiator" || !ok {
		t.Fatalf("fabrication %+v not an origin-addressed result", fabs[0])
	}
	if forged.Token != 0 {
		t.Fatalf("forged result carries token %d — the forger cannot know it", forged.Token)
	}
	if forged.Result.N == 0 || forged.Result.Min < 0 || forged.Result.Max > 1 {
		t.Fatalf("forged result %+v is not plausible", forged.Result)
	}
	if again := m.React("peer", treeMsg); len(again) != 0 {
		t.Fatalf("duplicate tree copy forged again: %v", again)
	}
	own := ops.AggMsg{ID: ops.MsgID{Origin: "adv", Seq: 1}}
	if fabs := m.React("peer", own); len(fabs) != 0 {
		t.Fatalf("forged own operation: %v", fabs)
	}
	if !m.Engaged() {
		t.Fatal("armed mix did not report engagement")
	}
}

// TestMixAggBehaviorsRaceClean hammers the armed/dormant switch while
// other goroutines pump partials and tree observations through the
// mix — the contract `go test -race` checks on the new attack paths.
func TestMixAggBehaviorsRaceClean(t *testing.T) {
	sw := NewSwitch(false)
	m := NewMix(sw, AggLie{Value: 100}, AggMangle{}, NewAggForge("adv"))
	var wg, toggler sync.WaitGroup
	stop := make(chan struct{})
	toggler.Add(1)
	go func() {
		defer toggler.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				sw.Set(i%2 == 0)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var p agg.Partial
			p.Observe(0.5, 1)
			for i := 0; i < 500; i++ {
				id := ops.MsgID{Origin: "initiator", Seq: uint64(g*500 + i)}
				m.Outbound("parent", ops.AggReplyMsg{ID: id, Partial: p})
				m.React("peer", ops.AggMsg{ID: id, Depth: 1})
				m.Inbound("peer", ops.AggMsg{ID: id, Depth: 1})
				m.Engaged()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	toggler.Wait()
}

// TestProfileBuildAggBehaviors: the spec-level profile flags map to
// the three attack behaviors in the mix.
func TestProfileBuildAggBehaviors(t *testing.T) {
	b, err := Profile{AggLie: true, AggMangle: true, AggForge: true}.
		Build("x", nil, 1, NewSwitch(true))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "mix(agg-lie+agg-mangle+agg-forge)" {
		t.Fatalf("unexpected mix name %q", b.Name())
	}
	if _, ok := b.(Reactor); !ok {
		t.Fatal("profile mix lost the Reactor contract")
	}
}
