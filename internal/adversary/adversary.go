// Package adversary injects Byzantine participants into an AVMEM
// deployment. A Behavior describes one way a node misbehaves; Wrap
// interposes it between the node's protocol logic and its runtime.Env,
// so the exact same node code — on the virtual-time simulator or the
// live memnet runtime — transparently lies, drops, and biases on the
// wire while believing itself honest. Behaviors compose through Mix and
// are switched on and off at run time (scenario onset/offset events)
// through a shared Switch; every randomized decision draws from the
// behavior's private, per-seed RNG stream, so adversarial runs stay
// bit-deterministic per seed and honest nodes' randomness is untouched.
//
// The built-in behaviors model the non-cooperative participants the
// paper (and the MPO/Avatar lines of related work) argue overlays must
// survive: availability inflation (lying about one's availability in
// membership and operation exchanges), eclipse-biased discovery
// (poisoning coarse-view exchanges with the adversary cohort), selective
// forwarding (black-holing relayed management operations while
// acknowledging receipt), and free-riding (ignoring shuffle duties).
//
// Architecture: DESIGN.md §10 (adversary & audit subsystem).
package adversary

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"avmem/internal/agg"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/shuffle"
	"avmem/internal/transport"
)

// Decision is a behavior's verdict on one outbound message.
type Decision struct {
	// Msg is the message to send, possibly rewritten.
	Msg any
	// Drop suppresses the send entirely.
	Drop bool
	// FakeAck, with Drop on an acknowledged send, reports success to the
	// sender anyway — the black-hole that defeats retry failover.
	FakeAck bool
	// Delay defers the send (selective delaying rather than dropping).
	Delay time.Duration
}

// Behavior is one node's misbehavior. Methods are called on the
// engine's callback thread (the owning Env serializes them); behaviors
// must draw randomness only from their own stream.
type Behavior interface {
	// Name identifies the behavior in reports.
	Name() string
	// Outbound intercepts one outbound message.
	Outbound(to ids.NodeID, msg any) Decision
	// Inbound intercepts one delivered message; false swallows it (the
	// node never sees it).
	Inbound(from ids.NodeID, msg any) bool
}

// Switch toggles a behavior mix at run time — the scenario engine's
// adversary onset/offset events flip it. Safe for concurrent use (the
// live engine's transports deliver on their own goroutines).
type Switch struct{ on atomic.Bool }

// NewSwitch returns a switch in the given initial state.
func NewSwitch(active bool) *Switch {
	s := &Switch{}
	s.on.Store(active)
	return s
}

// Set flips the switch.
func (s *Switch) Set(active bool) { s.on.Store(active) }

// Active reports the current state.
func (s *Switch) Active() bool { return s.on.Load() }

// Mix composes behaviors behind one Switch: while the switch is off the
// mix is a perfect passthrough; while on, each behavior inspects the
// (possibly already rewritten) message in order, and any drop wins.
// Mix also records whether the node ever emitted traffic while armed —
// the "engaged" denominator detection metrics use (a node offline for
// an entire attack never misbehaved and cannot be observed, let alone
// evicted).
type Mix struct {
	sw        *Switch
	behaviors []Behavior
	engaged   atomic.Bool
}

var _ Behavior = (*Mix)(nil)

// NewMix builds a composite behavior. sw may be nil (always active).
func NewMix(sw *Switch, behaviors ...Behavior) *Mix {
	return &Mix{sw: sw, behaviors: behaviors}
}

// Name implements Behavior.
func (m *Mix) Name() string {
	name := "mix("
	for i, b := range m.behaviors {
		if i > 0 {
			name += "+"
		}
		name += b.Name()
	}
	return name + ")"
}

// active reports whether the mix currently misbehaves.
func (m *Mix) active() bool { return m.sw == nil || m.sw.Active() }

// Engaged reports whether the node sent any message while armed.
func (m *Mix) Engaged() bool { return m.engaged.Load() }

// Outbound implements Behavior.
func (m *Mix) Outbound(to ids.NodeID, msg any) Decision {
	d := Decision{Msg: msg}
	if !m.active() {
		return d
	}
	m.engaged.Store(true)
	for _, b := range m.behaviors {
		next := b.Outbound(to, d.Msg)
		if next.Msg != nil {
			d.Msg = next.Msg
		}
		d.Drop = d.Drop || next.Drop
		d.FakeAck = d.FakeAck || next.FakeAck
		if next.Delay > d.Delay {
			d.Delay = next.Delay
		}
	}
	return d
}

// Inbound implements Behavior.
func (m *Mix) Inbound(from ids.NodeID, msg any) bool {
	if !m.active() {
		return true
	}
	for _, b := range m.behaviors {
		if !b.Inbound(from, msg) {
			return false
		}
	}
	return true
}

// Fabrication is a message an adversary injects of its own volition —
// not a rewrite of something the honest node was about to send.
type Fabrication struct {
	To  ids.NodeID
	Msg any
}

// Reactor is the optional fabrication seam: a behavior implementing it
// gets to emit messages in reaction to inbound traffic (the wrapped
// Env sends them through the underlying transport, bypassing the
// node's honest protocol logic entirely). AggForge uses it to race
// fabricated aggregate results at origins it learned of from tree
// requests.
type Reactor interface {
	React(from ids.NodeID, msg any) []Fabrication
}

var _ Reactor = (*Mix)(nil)

// React implements Reactor: every composed behavior that fabricates
// gets its chance, gated by the mix's switch like everything else.
func (m *Mix) React(from ids.NodeID, msg any) []Fabrication {
	if !m.active() {
		return nil
	}
	var out []Fabrication
	for _, b := range m.behaviors {
		if r, ok := b.(Reactor); ok {
			out = append(out, r.React(from, msg)...)
		}
	}
	if len(out) > 0 {
		m.engaged.Store(true)
	}
	return out
}

// Inflate lies about the node's availability: every availability claim
// on outbound protocol traffic — operation forwards and coarse-view
// exchanges — is rewritten to To (MPO-style self-promotion: a
// low-availability node posing as a stable one).
type Inflate struct {
	// To is the claimed availability (e.g. 0.98).
	To float64
}

var _ Behavior = Inflate{}

// Name implements Behavior.
func (i Inflate) Name() string { return "inflate" }

// Outbound implements Behavior.
func (i Inflate) Outbound(_ ids.NodeID, msg any) Decision {
	switch m := msg.(type) {
	case ops.AnycastMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case ops.MulticastMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case ops.RangecastMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case ops.AggMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case ops.AggReplyMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case ops.AggResultMsg:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case shuffle.Request:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	case shuffle.Reply:
		m.SenderAvail = i.To
		return Decision{Msg: m}
	}
	return Decision{Msg: msg}
}

// Inbound implements Behavior.
func (i Inflate) Inbound(ids.NodeID, any) bool { return true }

// Eclipse poisons coarse-view exchanges: every outbound shuffle message
// advertises the adversary cohort instead of an honest sample, and
// replies lead with the sender itself — the self-promotion that drags
// the whole population's discovery toward the colluders.
type Eclipse struct {
	self      ids.NodeID
	colluders []ids.NodeID
	// mu guards rng: on a live transport the inbound reply path and the
	// gated discovery tick intercept outbound messages from different
	// goroutines (virtual engines are single-threaded; the lock is
	// uncontended there and does not affect determinism).
	mu  sync.Mutex
	rng *rand.Rand
}

var _ Behavior = (*Eclipse)(nil)

// NewEclipse builds the view-poisoning behavior for self, pushing the
// colluder cohort (self may appear in it; it is skipped when sampling).
func NewEclipse(self ids.NodeID, colluders []ids.NodeID, seed int64) *Eclipse {
	return &Eclipse{self: self, colluders: colluders, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Behavior.
func (e *Eclipse) Name() string { return "eclipse" }

// poison builds a poisoned entry list of roughly the honest offer's
// size: fresh (age-0) colluder entries, which win every merge-pressure
// comparison, plus a fresh self-entry.
func (e *Eclipse) poison(to ids.NodeID, n int) []shuffle.Entry {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]shuffle.Entry, 0, n)
	out = append(out, shuffle.Entry{ID: e.self})
	if len(e.colluders) > 0 {
		for _, i := range e.rng.Perm(len(e.colluders)) {
			if len(out) >= n {
				break
			}
			c := e.colluders[i]
			if c == e.self || c == to {
				continue
			}
			out = append(out, shuffle.Entry{ID: c})
		}
	}
	return out
}

// Outbound implements Behavior.
func (e *Eclipse) Outbound(to ids.NodeID, msg any) Decision {
	switch m := msg.(type) {
	case shuffle.Request:
		m.Entries = e.poison(to, len(m.Entries))
		return Decision{Msg: m}
	case shuffle.Reply:
		m.Entries = e.poison(to, len(m.Entries))
		return Decision{Msg: m}
	}
	return Decision{Msg: msg}
}

// Inbound implements Behavior.
func (e *Eclipse) Inbound(ids.NodeID, any) bool { return true }

// SelectiveForward black-holes relayed management operations: an
// operation message this node did not originate is dropped with
// probability Rate — while acknowledging receipt, so the sender's
// retried-greedy failover never fires. Own operations are forwarded
// faithfully (the selfish node still wants its own traffic served).
type SelectiveForward struct {
	self ids.NodeID
	rate float64
	// mu guards rng (see Eclipse.mu).
	mu  sync.Mutex
	rng *rand.Rand
}

var _ Behavior = (*SelectiveForward)(nil)

// NewSelectiveForward builds the relay black hole for self.
func NewSelectiveForward(self ids.NodeID, rate float64, seed int64) *SelectiveForward {
	return &SelectiveForward{self: self, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Behavior.
func (s *SelectiveForward) Name() string { return "selective-forward" }

// Outbound implements Behavior.
func (s *SelectiveForward) Outbound(_ ids.NodeID, msg any) Decision {
	var origin ids.NodeID
	switch m := msg.(type) {
	case ops.AnycastMsg:
		origin = m.ID.Origin
	case ops.MulticastMsg:
		origin = m.ID.Origin
	case ops.RangecastMsg:
		origin = m.ID.Origin
	case ops.AggMsg:
		origin = m.ID.Origin
	default:
		return Decision{Msg: msg}
	}
	if origin == s.self {
		return Decision{Msg: msg}
	}
	s.mu.Lock()
	keep := s.rng.Float64() >= s.rate
	s.mu.Unlock()
	if keep {
		return Decision{Msg: msg}
	}
	return Decision{Msg: msg, Drop: true, FakeAck: true}
}

// Inbound implements Behavior.
func (s *SelectiveForward) Inbound(ids.NodeID, any) bool { return true }

// FreeRide shirks membership duties: inbound shuffle requests are
// ignored (no reply is ever produced), saving the node its share of the
// overlay's maintenance traffic.
type FreeRide struct{}

var _ Behavior = FreeRide{}

// Name implements Behavior.
func (FreeRide) Name() string { return "free-ride" }

// Outbound implements Behavior.
func (FreeRide) Outbound(_ ids.NodeID, msg any) Decision { return Decision{Msg: msg} }

// Inbound implements Behavior.
func (FreeRide) Inbound(_ ids.NodeID, msg any) bool {
	_, isReq := msg.(shuffle.Request)
	return !isReq
}

// AggLie contributes a grossly false value to every aggregation this
// node participates in: outbound aggregation replies (and results,
// when the liar roots a tree) have their value moments rewritten to
// claim Value for all contributors. A Value far outside [0,1] lands
// outside the band hull, so the parent's PDF sanity checks drop the
// whole partial — the lie costs the liar its entire subtree's voice.
type AggLie struct {
	// Value is the claimed per-contributor value (default via Profile:
	// 100, far outside any availability band).
	Value float64
}

var _ Behavior = AggLie{}

// Name implements Behavior.
func (AggLie) Name() string { return "agg-lie" }

// lie rewrites a partial's value moments to claim Value everywhere.
func (l AggLie) lie(p agg.Partial) agg.Partial {
	if p.N <= 0 {
		return p
	}
	p.Sum = l.Value * float64(p.N)
	p.Min = l.Value
	p.Max = l.Value
	return p
}

// Outbound implements Behavior.
func (l AggLie) Outbound(_ ids.NodeID, msg any) Decision {
	switch m := msg.(type) {
	case ops.AggReplyMsg:
		if !m.Decline {
			m.Partial = l.lie(m.Partial)
			return Decision{Msg: m}
		}
	case ops.AggResultMsg:
		m.Result = l.lie(m.Result)
		return Decision{Msg: m}
	}
	return Decision{Msg: msg}
}

// Inbound implements Behavior.
func (AggLie) Inbound(ids.NodeID, any) bool { return true }

// AggMangle corrupts the partials this node relays up its aggregation
// trees: the merged subtree sum is scaled by a constant factor, so the
// data passing through the mangler arrives poisoned even though every
// descendant was honest. The inflated average leaves the band hull and
// the parent's sanity checks drop the partial.
type AggMangle struct{}

var _ Behavior = AggMangle{}

// aggMangleFactor scales the relayed sum; ×10 pushes any in-band
// average far past the hull tolerance.
const aggMangleFactor = 10

// Name implements Behavior.
func (AggMangle) Name() string { return "agg-mangle" }

// Outbound implements Behavior.
func (AggMangle) Outbound(_ ids.NodeID, msg any) Decision {
	switch m := msg.(type) {
	case ops.AggReplyMsg:
		if !m.Decline && m.Partial.N > 0 {
			m.Partial.Sum *= aggMangleFactor
			return Decision{Msg: m}
		}
	case ops.AggResultMsg:
		if m.Result.N > 0 {
			m.Result.Sum *= aggMangleFactor
			return Decision{Msg: m}
		}
	}
	return Decision{Msg: msg}
}

// Inbound implements Behavior.
func (AggMangle) Inbound(ids.NodeID, any) bool { return true }

// AggForge races fabricated aggregate results: receiving a tree
// request teaches the forger an in-flight operation's id and origin,
// and it immediately emits an AggResultMsg claiming a plausible-
// looking census — statistically unremarkable, so only result binding
// stops it. The forger never saw the origin's token (it travels only
// on the entry anycast path and is stripped from tree requests), so
// its forgery carries token zero and the origin's collector rejects
// it; the byzantine scenario asserts exactly that.
type AggForge struct {
	self ids.NodeID
	// mu guards seen (see Eclipse.mu for the live-transport rationale).
	mu   sync.Mutex
	seen map[ops.MsgID]bool
}

var _ Behavior = (*AggForge)(nil)
var _ Reactor = (*AggForge)(nil)

// NewAggForge builds the result forger for self.
func NewAggForge(self ids.NodeID) *AggForge {
	return &AggForge{self: self, seen: make(map[ops.MsgID]bool, 16)}
}

// Name implements Behavior.
func (*AggForge) Name() string { return "agg-forge" }

// Outbound implements Behavior.
func (*AggForge) Outbound(_ ids.NodeID, msg any) Decision { return Decision{Msg: msg} }

// Inbound implements Behavior.
func (*AggForge) Inbound(ids.NodeID, any) bool { return true }

// maxForgeSeen bounds the per-op dedup ledger (operations are
// short-lived; a wholesale reset is harmless).
const maxForgeSeen = 1 << 12

// React implements Reactor: one forgery per learned operation, aimed
// at its origin.
func (f *AggForge) React(_ ids.NodeID, msg any) []Fabrication {
	m, ok := msg.(ops.AggMsg)
	if !ok || m.ID.Origin == f.self {
		return nil
	}
	f.mu.Lock()
	if f.seen[m.ID] {
		f.mu.Unlock()
		return nil
	}
	if len(f.seen) >= maxForgeSeen {
		f.seen = make(map[ops.MsgID]bool, 16)
	}
	f.seen[m.ID] = true
	f.mu.Unlock()
	forged := ops.AggResultMsg{
		ID: m.ID,
		// A plausible high-availability census: nothing a statistical
		// check would flag. Token stays zero — the forger never saw it.
		Result: agg.Partial{N: 40, Sum: 38, Min: 0.9, Max: 0.99, Depth: 2},
		SentAt: m.SentAt,
	}
	return []Fabrication{{To: m.ID.Origin, Msg: forged}}
}

// wrapped interposes a Behavior between protocol logic and the host
// environment. It implements runtime.Stopper unconditionally,
// forwarding to the inner Env when it stops.
type wrapped struct {
	runtime.Env
	b Behavior
}

// Wrap returns env with every outbound message passing through b's
// Outbound hook and every delivered message through its Inbound hook. A
// nil behavior returns env unchanged. The wrapper preserves the
// Stopper contract of the underlying Env.
func Wrap(env runtime.Env, b Behavior) runtime.Env {
	if b == nil {
		return env
	}
	return &wrapped{Env: env, b: b}
}

// Send implements runtime.Env.
func (w *wrapped) Send(to ids.NodeID, msg any) {
	d := w.b.Outbound(to, msg)
	if d.Drop {
		return
	}
	if d.Delay > 0 {
		w.Env.After(d.Delay, func() { w.Env.Send(to, d.Msg) })
		return
	}
	w.Env.Send(to, d.Msg)
}

// SendCall implements runtime.Env.
func (w *wrapped) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	d := w.b.Outbound(to, msg)
	if d.Drop {
		if onResult != nil {
			// The verdict arrives asynchronously, like a real ack/nack.
			w.Env.After(0, func() { onResult(d.FakeAck) })
		}
		return
	}
	if d.Delay > 0 {
		w.Env.After(d.Delay, func() { w.Env.SendCall(to, d.Msg, onResult) })
		return
	}
	w.Env.SendCall(to, d.Msg, onResult)
}

// Register implements runtime.Env: the inbound handler is filtered
// through the behavior, and fabricating behaviors (Reactor) get to
// inject their own traffic in reaction to what was delivered. The
// fabrications go out through the underlying Env directly — they are
// already adversarial and bypass the Outbound rewrite chain.
func (w *wrapped) Register(h transport.Handler) error {
	reactor, _ := w.b.(Reactor)
	return w.Env.Register(func(from ids.NodeID, msg any) {
		if reactor != nil {
			for _, f := range reactor.React(from, msg) {
				w.Env.Send(f.To, f.Msg)
			}
		}
		if !w.b.Inbound(from, msg) {
			return
		}
		h(from, msg)
	})
}

// Stop implements runtime.Stopper.
func (w *wrapped) Stop() {
	if s, ok := w.Env.(runtime.Stopper); ok {
		s.Stop()
	}
}

// Profile is the declarative per-node behavior assignment the
// deployment engines build from a scenario's adversary block.
type Profile struct {
	// InflateTo, when positive, adds availability inflation claiming
	// this value.
	InflateTo float64
	// Eclipse adds coarse-view poisoning toward the colluder cohort.
	Eclipse bool
	// DropRate, when positive, adds selective forwarding at this rate.
	DropRate float64
	// FreeRide adds shuffle-duty shirking.
	FreeRide bool
	// AggLie adds aggregation value-lying claiming defaultAggLieValue.
	AggLie bool
	// AggMangle adds relayed-partial corruption.
	AggMangle bool
	// AggForge adds fabricated aggregate-result racing.
	AggForge bool
}

// defaultAggLieValue is the value AggLie claims per contributor: far
// outside [0,1], so an unchecked census would be wrecked outright.
const defaultAggLieValue = 100

// Empty reports whether the profile assigns no behavior at all.
func (p Profile) Empty() bool {
	return p.InflateTo <= 0 && !p.Eclipse && p.DropRate <= 0 && !p.FreeRide &&
		!p.AggLie && !p.AggMangle && !p.AggForge
}

// Build assembles the composite behavior for one adversary node. seed
// is the node's private stream; colluders is the full adversary cohort;
// sw gates activation (may be nil for always-on).
func (p Profile) Build(self ids.NodeID, colluders []ids.NodeID, seed int64, sw *Switch) (Behavior, error) {
	if p.Empty() {
		return nil, fmt.Errorf("adversary: empty profile for %s", self)
	}
	var bs []Behavior
	if p.InflateTo > 0 {
		if p.InflateTo > 1 {
			return nil, fmt.Errorf("adversary: InflateTo must be in (0,1], got %v", p.InflateTo)
		}
		bs = append(bs, Inflate{To: p.InflateTo})
	}
	if p.Eclipse {
		bs = append(bs, NewEclipse(self, colluders, seed))
	}
	if p.DropRate > 0 {
		if p.DropRate > 1 {
			return nil, fmt.Errorf("adversary: DropRate must be in (0,1], got %v", p.DropRate)
		}
		bs = append(bs, NewSelectiveForward(self, p.DropRate, seed+1))
	}
	if p.FreeRide {
		bs = append(bs, FreeRide{})
	}
	if p.AggLie {
		bs = append(bs, AggLie{Value: defaultAggLieValue})
	}
	if p.AggMangle {
		bs = append(bs, AggMangle{})
	}
	if p.AggForge {
		bs = append(bs, NewAggForge(self))
	}
	return NewMix(sw, bs...), nil
}
