package exp

import (
	"avmem/internal/core"
	"avmem/internal/stats"
)

// OverlaySnapshot is the material of Figures 2(a,b,c): the availability
// distribution of online nodes and the per-node sliver sizes at one
// instant.
type OverlaySnapshot struct {
	// OnlineCount is the number of online nodes at the snapshot (the
	// paper's 24h snapshot has 442 of 1442 online).
	OnlineCount int
	// AvailHistogram counts online nodes per 0.05-wide availability
	// bucket (Figure 2a).
	AvailHistogram []int
	// HS and VS are per-online-node (availability, sliver size) points
	// (Figures 2b and 2c).
	HS []stats.ScatterPoint
	VS []stats.ScatterPoint
	// HSMedian and VSMedian are the per-0.1-bucket median sliver sizes.
	HSMedian []float64
	VSMedian []float64
}

// SnapshotOverlay captures Figures 2(a,b,c) from the current instant.
func SnapshotOverlay(w *World) OverlaySnapshot {
	online := w.OnlineHosts()
	snap := OverlaySnapshot{
		OnlineCount: len(online),
		HS:          make([]stats.ScatterPoint, 0, len(online)),
		VS:          make([]stats.ScatterPoint, 0, len(online)),
	}
	avails := make([]float64, 0, len(online))
	for _, id := range online {
		av := w.TrueAvailability(id)
		avails = append(avails, av)
		m := w.Membership(id)
		snap.HS = append(snap.HS, stats.ScatterPoint{X: av, Y: float64(m.SliverSize(core.SliverHorizontal))})
		snap.VS = append(snap.VS, stats.ScatterPoint{X: av, Y: float64(m.SliverSize(core.SliverVertical))})
	}
	snap.AvailHistogram = stats.Histogram(avails, 0, 1, 20)
	snap.HSMedian = stats.BucketedMedian(snap.HS, 10)
	snap.VSMedian = stats.BucketedMedian(snap.VS, 10)
	return snap
}

// HorizontalScaling is Figure 3: horizontal sliver size as a function
// of the total number of candidate nodes within ±ε availability of the
// node (the whole population, online or not — membership is a long-term
// relation, so slivers legitimately retain currently-offline members).
// The paper's claim: growth is sublinear.
type HorizontalScaling struct {
	// Points are (candidate count, HS size) per online node.
	Points []stats.ScatterPoint
}

// ScanHorizontalScaling captures Figure 3 from the current instant.
func ScanHorizontalScaling(w *World) HorizontalScaling {
	online := w.OnlineHosts()
	all := w.Hosts()
	avails := make(map[string]float64, len(all))
	for _, id := range all {
		avails[string(id)] = w.TrueAvailability(id)
	}
	eps := w.Cfg.Epsilon
	out := HorizontalScaling{Points: make([]stats.ScatterPoint, 0, len(online))}
	for _, id := range online {
		av := avails[string(id)]
		candidates := 0
		for _, other := range all {
			if other == id {
				continue
			}
			diff := avails[string(other)] - av
			if diff < 0 {
				diff = -diff
			}
			if diff < eps {
				candidates++
			}
		}
		hs := w.Membership(id).SliverSize(core.SliverHorizontal)
		out.Points = append(out.Points, stats.ScatterPoint{X: float64(candidates), Y: float64(hs)})
	}
	return out
}

// SublinearityRatio summarizes Figure 3's claim as a single number: the
// mean HS size of the densest-quartile nodes divided by that of the
// sparsest quartile, over the candidate-count ratio of the same
// quartiles. Sublinear growth yields a value well below 1.
func (h HorizontalScaling) SublinearityRatio() float64 {
	if len(h.Points) < 8 {
		return 0
	}
	xs := make([]float64, len(h.Points))
	for i, p := range h.Points {
		xs[i] = p.X
	}
	q1 := stats.Percentile(xs, 25)
	q3 := stats.Percentile(xs, 75)
	if q3 <= q1 {
		return 0
	}
	var loX, loY, hiX, hiY, nLo, nHi float64
	for _, p := range h.Points {
		switch {
		case p.X <= q1:
			loX += p.X
			loY += p.Y
			nLo++
		case p.X >= q3:
			hiX += p.X
			hiY += p.Y
			nHi++
		}
	}
	if nLo == 0 || nHi == 0 || loY == 0 || loX == 0 {
		return 0
	}
	sizeRatio := (hiY / nHi) / (loY / nLo)
	countRatio := (hiX / nHi) / (loX / nLo)
	if countRatio == 0 {
		return 0
	}
	return sizeRatio / countRatio
}

// VSInDegree is Figure 4: the total number of incoming vertical-sliver
// references pointing at nodes in each availability range. The paper's
// claim: uniform across ranges, uncorrelated with the node population.
type VSInDegree struct {
	// PerBucket is the total incoming VS link count per 0.1-wide
	// availability bucket of the referenced node.
	PerBucket []float64
	// Population is the online-node count per bucket (for contrast with
	// Figure 2a's skew).
	Population []int
	// Points are (availability of node, its VS in-degree).
	Points []stats.ScatterPoint
}

// ScanVSInDegree captures Figure 4 from the current instant.
func ScanVSInDegree(w *World) VSInDegree {
	online := w.OnlineHosts()
	indeg := make(map[string]int, len(online))
	for _, id := range online {
		for _, nb := range w.Membership(id).Neighbors(core.VSOnly) {
			indeg[string(nb.ID)]++
		}
	}
	out := VSInDegree{
		PerBucket:  make([]float64, 10),
		Population: make([]int, 10),
		Points:     make([]stats.ScatterPoint, 0, len(online)),
	}
	for _, id := range online {
		av := w.TrueAvailability(id)
		b := int(av * 10)
		if b > 9 {
			b = 9
		}
		d := float64(indeg[string(id)])
		out.PerBucket[b] += d
		out.Population[b]++
		out.Points = append(out.Points, stats.ScatterPoint{X: av, Y: d})
	}
	return out
}
