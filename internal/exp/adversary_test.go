package exp

import (
	"reflect"
	"testing"
	"time"

	"avmem/internal/adversary"
	"avmem/internal/audit"
	"avmem/internal/trace"
)

func advTestConfig(t *testing.T) WorldConfig {
	t.Helper()
	tr, err := trace.Generate(func() trace.GenConfig {
		g := trace.DefaultGenConfig(9)
		g.Hosts, g.Epochs = 120, 72
		return g
	}())
	if err != nil {
		t.Fatal(err)
	}
	return WorldConfig{
		Seed:           9,
		Trace:          tr,
		ProtocolPeriod: 2 * time.Minute,
		Audit:          &audit.Params{},
		Adversary: &AdversaryConfig{
			Fraction: 0.25,
			BandLo:   0.3,
			BandHi:   0.7,
			Profile:  adversary.Profile{InflateTo: 0.98},
			// Select by what the monitor reports when the attack runs
			// (the tests arm the cohort after a 4h warmup).
			SelectAt: 4 * time.Hour,
		},
	}
}

// TestCohortSelectionDeterministicAcrossEngines: both engines must pick
// the identical cohort for one (trace, seed, config), or cross-backend
// scenario comparisons would be meaningless.
func TestCohortSelectionDeterministicAcrossEngines(t *testing.T) {
	cfg := advTestConfig(t)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(w.Adversaries()) == 0 {
		t.Fatal("no cohort selected")
	}
	if !reflect.DeepEqual(w.Adversaries(), c.Adversaries()) {
		t.Fatalf("engines picked different cohorts:\n sim:    %v\n memnet: %v",
			w.Adversaries(), c.Adversaries())
	}
	// The cohort respects the availability band at the selection epoch.
	epoch := cfg.Trace.EpochAt(4 * time.Hour)
	for _, id := range w.Adversaries() {
		h := cfg.Trace.HostIndex(id)
		if av := cfg.Trace.SmoothedAvailability(h, epoch); av < 0.3 || av >= 0.7 {
			t.Errorf("cohort member %s has availability %v outside [0.3,0.7)", id, av)
		}
	}
}

// TestAdversariesDetectedAndEvicted drives the simulator engine with an
// armed inflation cohort and checks the full loop: engagement, trail
// evictions by honest observers, and probe outputs.
func TestAdversariesDetectedAndEvicted(t *testing.T) {
	cfg := advTestConfig(t)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Warmup(4 * time.Hour)
	if got := len(w.EngagedAdversaries()); got != 0 {
		t.Fatalf("%d adversaries engaged while disarmed", got)
	}
	w.SetAdversariesActive(true)
	onset := w.Now()
	w.RunFor(3 * time.Hour)

	if got := len(w.EngagedAdversaries()); got == 0 {
		t.Fatal("no adversary engaged while armed")
	}
	stats := EvictionReport(w, onset)
	if stats.Adversaries != len(w.Adversaries()) {
		t.Errorf("stats.Adversaries = %d, want %d", stats.Adversaries, len(w.Adversaries()))
	}
	if stats.Honest != len(w.Hosts())-len(w.Adversaries()) {
		t.Errorf("stats.Honest = %d, want %d", stats.Honest, len(w.Hosts())-len(w.Adversaries()))
	}
	if stats.Detected == 0 {
		t.Fatal("no adversary detected after 3h of armed inflation")
	}
	if stats.DetectionRate() <= 0.5 {
		t.Errorf("detection rate %v suspiciously low", stats.DetectionRate())
	}
	if stats.FalsePositiveRate() > 0.01 {
		t.Errorf("false-positive rate %v above 1%%", stats.FalsePositiveRate())
	}
	if stats.Detected > 0 && stats.MeanDetection <= 0 {
		t.Errorf("mean detection latency %v not positive", stats.MeanDetection)
	}

	bias := OverlayBias(w)
	if bias.PopulationShare <= 0 {
		t.Errorf("population share %v", bias.PopulationShare)
	}
	if bias.CoarseShare < 0 || bias.CoarseShare > 1 || bias.MembershipShare < 0 || bias.MembershipShare > 1 {
		t.Errorf("probe shares out of range: %+v", bias)
	}
}

// TestHonestDeploymentProbes: probes on an honest deployment are
// well-defined zeros, and the adversary surface is inert.
func TestHonestDeploymentProbes(t *testing.T) {
	cfg := advTestConfig(t)
	cfg.Audit = nil
	cfg.Adversary = nil
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Adversaries() != nil || w.EngagedAdversaries() != nil || w.AuditTrail() != nil {
		t.Fatal("honest deployment exposes adversary state")
	}
	w.SetAdversariesActive(true) // must be a no-op, not a panic
	bias := OverlayBias(w)
	if bias.Bias != 0 || bias.PopulationShare != 0 {
		t.Errorf("honest bias probe = %+v, want zeros", bias)
	}
	stats := EvictionReport(w, 0)
	if stats.Adversaries != 0 || stats.Detected != 0 || stats.DetectionRate() != 0 {
		t.Errorf("honest eviction report = %+v, want zeros", stats)
	}
}

// TestAdversaryConfigValidation pins the config contract.
func TestAdversaryConfigValidation(t *testing.T) {
	tr, err := trace.Generate(func() trace.GenConfig {
		g := trace.DefaultGenConfig(1)
		g.Hosts, g.Epochs = 40, 24
		return g
	}())
	if err != nil {
		t.Fatal(err)
	}
	bad := []AdversaryConfig{
		{Fraction: 0, Profile: adversary.Profile{Eclipse: true}},
		{Fraction: 0.9, Profile: adversary.Profile{Eclipse: true}},
		{Fraction: 0.2, BandLo: 2, Profile: adversary.Profile{Eclipse: true}},
		{Fraction: 0.2, BandLo: 0.5, BandHi: 0.4, Profile: adversary.Profile{Eclipse: true}},
		{Fraction: 0.2}, // empty profile
	}
	for i := range bad {
		if _, err := buildAdversaries(&bad[i], tr, 1); err == nil {
			t.Errorf("case %d: invalid adversary config accepted: %+v", i, bad[i])
		}
	}
	// A band selecting nobody errors out rather than silently running
	// an honest deployment.
	empty := &AdversaryConfig{Fraction: 0.2, BandLo: 0.999, BandHi: 1.0,
		Profile: adversary.Profile{Eclipse: true}}
	if _, err := buildAdversaries(empty, tr, 1); err == nil {
		t.Error("empty-band cohort accepted")
	}
}
