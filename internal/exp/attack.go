package exp

import (
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/stats"
)

// AttackResult holds one cushion setting's outcome for Figures 5 and 6:
// per-0.1-availability-bucket fractions, averaged over sender nodes in
// the bucket.
type AttackResult struct {
	Cushion float64
	// PerBucket is the mean fraction per 0.1-wide availability bucket
	// of the *sending* node (NaN for empty buckets).
	PerBucket []float64
	// Overall is the global mean fraction across all evaluated senders.
	Overall float64
}

// verifyPair evaluates the receiving-side in-neighbor check for a
// message from sender x arriving at receiver y, using y's information:
// the (possibly noisy/stale) monitoring answer for x and y's own cached
// availability.
func verifyPair(w Deployment, x, y ids.NodeID, cushion float64) bool {
	avX, ok := w.MonitorService().Availability(x)
	if !ok {
		return false
	}
	my := w.Membership(y)
	ok2, _ := my.Predicate().EvalNodes(
		core.NodeInfo{ID: x, Availability: avX},
		my.SelfInfo(),
		cushion, w.HashCache())
	return ok2
}

// FloodingAttack is Figure 5: every online node x plays the selfish
// flooder, attempting to message every online node y outside its AVMEM
// neighbor lists; we measure the fraction of those non-neighbors that
// would accept (verify) the message, per availability bucket of x.
// The paper's claim: under 10% regardless of x's availability.
func FloodingAttack(w Deployment, cushion float64) AttackResult {
	online := w.OnlineHosts()
	points := make([]stats.ScatterPoint, 0, len(online))
	var acceptedTotal, pairTotal float64
	for _, x := range online {
		mx := w.Membership(x)
		accepted, pairs := 0, 0
		for _, y := range online {
			if y == x || mx.Contains(y) {
				continue
			}
			pairs++
			if verifyPair(w, x, y, cushion) {
				accepted++
			}
		}
		if pairs == 0 {
			continue
		}
		frac := float64(accepted) / float64(pairs)
		points = append(points, stats.ScatterPoint{X: w.TrueAvailability(x), Y: frac})
		acceptedTotal += float64(accepted)
		pairTotal += float64(pairs)
	}
	res := AttackResult{Cushion: cushion, PerBucket: stats.BucketedMean(points, 10)}
	if pairTotal > 0 {
		res.Overall = acceptedTotal / pairTotal
	}
	return res
}

// LegitimateRejection is Figure 6: every online node x messages each of
// its believed AVMEM neighbors y; we measure the fraction of those
// legitimate messages that y would reject because its own (stale or
// noisy) information disagrees. The paper's claim: below 30% with no
// cushion, below 20% with cushion 0.1.
func LegitimateRejection(w Deployment, cushion float64) AttackResult {
	online := w.OnlineHosts()
	points := make([]stats.ScatterPoint, 0, len(online))
	var rejectedTotal, pairTotal float64
	for _, x := range online {
		mx := w.Membership(x)
		neighbors := mx.Neighbors(core.HSVS)
		rejected, pairs := 0, 0
		for _, nb := range neighbors {
			if !w.Online(nb.ID) {
				continue
			}
			pairs++
			if !verifyPair(w, x, nb.ID, cushion) {
				rejected++
			}
		}
		if pairs == 0 {
			continue
		}
		frac := float64(rejected) / float64(pairs)
		points = append(points, stats.ScatterPoint{X: w.TrueAvailability(x), Y: frac})
		rejectedTotal += float64(rejected)
		pairTotal += float64(pairs)
	}
	res := AttackResult{Cushion: cushion, PerBucket: stats.BucketedMean(points, 10)}
	if pairTotal > 0 {
		res.Overall = rejectedTotal / pairTotal
	}
	return res
}
