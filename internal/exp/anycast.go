package exp

import (
	"fmt"
	"time"

	"avmem/internal/core"
	"avmem/internal/ops"
	"avmem/internal/stats"
)

// AnycastSpec describes one anycast experiment series: a named variant
// (policy + flavor), an initiator availability band, a target, and the
// paper's batching (5 runs × 50 messages).
type AnycastSpec struct {
	Name string
	// BandLo/BandHi bound the initiator's true availability.
	BandLo, BandHi float64
	Target         ops.Target
	Opts           ops.AnycastOptions
	Runs           int
	PerRun         int
	// Gap spaces successive initiations; Settle drains in-flight
	// messages after each run.
	Gap    time.Duration
	Settle time.Duration
}

func (s *AnycastSpec) applyDefaults() {
	if s.Runs == 0 {
		s.Runs = 5
	}
	if s.PerRun == 0 {
		s.PerRun = 50
	}
	if s.Gap == 0 {
		s.Gap = 2 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 30 * time.Second
	}
}

// AnycastResult aggregates one series' outcomes.
type AnycastResult struct {
	Name                                string
	Sent                                int
	Delivered, TTLExpired, RetryExpired int
	// Pending counts messages lost without a terminal verdict (plain
	// greedy forwarding to an offline node loses the message silently).
	Pending int
	// HopsHist[h] counts deliveries that took exactly h hops.
	HopsHist []int
	// Latencies holds delivery latencies.
	Latencies []time.Duration
}

// FractionDelivered returns Delivered/Sent (0 when nothing was sent).
func (r AnycastResult) FractionDelivered() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// FractionTTLExpired returns TTLExpired/Sent.
func (r AnycastResult) FractionTTLExpired() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.TTLExpired) / float64(r.Sent)
}

// FractionRetryExpired returns (RetryExpired+Pending)/Sent: both are
// "dropped inside the overlay" verdicts.
func (r AnycastResult) FractionRetryExpired() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.RetryExpired+r.Pending) / float64(r.Sent)
}

// MeanLatency returns the average delivery latency.
func (r AnycastResult) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// HopsCDF returns, for each hop count 0..TTL, the fraction of delivered
// anycasts that travelled at most that many hops (Figure 7's y-axis).
func (r AnycastResult) HopsCDF() []float64 {
	out := make([]float64, len(r.HopsHist))
	if r.Delivered == 0 {
		return out
	}
	cum := 0
	for h, n := range r.HopsHist {
		cum += n
		out[h] = float64(cum) / float64(r.Delivered)
	}
	return out
}

// RunAnycasts executes one anycast series on a deployment (either
// engine) and aggregates its outcomes.
func RunAnycasts(w Deployment, spec AnycastSpec) (AnycastResult, error) {
	spec.applyDefaults()
	if err := spec.Target.Validate(); err != nil {
		return AnycastResult{}, err
	}
	res := AnycastResult{Name: spec.Name, HopsHist: make([]int, spec.Opts.TTL+1)}
	sent := make([]ops.MsgID, 0, spec.Runs*spec.PerRun)
	for run := 0; run < spec.Runs; run++ {
		for i := 0; i < spec.PerRun; i++ {
			initiator, ok := w.PickInitiator(spec.BandLo, spec.BandHi)
			if !ok {
				continue
			}
			id, err := w.Anycast(initiator, spec.Target, spec.Opts)
			if err != nil {
				return AnycastResult{}, fmt.Errorf("exp: initiating anycast: %w", err)
			}
			sent = append(sent, id)
			w.RunFor(spec.Gap)
		}
		w.RunFor(spec.Settle)
	}
	col := w.Collector()
	for _, id := range sent {
		rec, ok := col.Anycast(id)
		if !ok {
			continue
		}
		res.Sent++
		switch rec.Outcome {
		case ops.OutcomeDelivered:
			res.Delivered++
			if rec.Hops < len(res.HopsHist) {
				res.HopsHist[rec.Hops]++
			}
			res.Latencies = append(res.Latencies, rec.Latency)
		case ops.OutcomeTTLExpired:
			res.TTLExpired++
		case ops.OutcomeRetryExpired:
			res.RetryExpired++
		default:
			res.Pending++
		}
	}
	return res, nil
}

// Fig7Variants returns the four variants plotted in Figure 7: greedy
// forwarding over VS-only, HS+VS, and HS-only, plus simulated annealing
// over HS+VS. TTL 6 everywhere.
func Fig7Variants() []AnycastSpec {
	target := ops.Target{Lo: 0.85, Hi: 0.95}
	mk := func(name string, policy ops.Policy, flavor core.Flavor) AnycastSpec {
		return AnycastSpec{
			Name:   name,
			BandLo: 1.0 / 3.0, BandHi: 2.0 / 3.0, // MID initiators
			Target: target,
			Opts:   ops.AnycastOptions{Policy: policy, Flavor: flavor, TTL: 6},
		}
	}
	return []AnycastSpec{
		mk("VS-only", ops.Greedy, core.VSOnly),
		mk("HS+VS", ops.Greedy, core.HSVS),
		mk("HS-only", ops.Greedy, core.HSOnly),
		mk("sim-annealing", ops.Annealing, core.HSVS),
	}
}

// Fig8Variants returns the 4 variants × 3 targets of Figure 8: range
// anycasts from HIGH initiators into progressively harsher (lower)
// availability ranges.
func Fig8Variants() []AnycastSpec {
	targets := []ops.Target{
		{Lo: 0.85, Hi: 0.95},
		{Lo: 0.44, Hi: 0.54},
		{Lo: 0.15, Hi: 0.25},
	}
	variants := []struct {
		name   string
		policy ops.Policy
		flavor core.Flavor
	}{
		{"sim-annealing", ops.Annealing, core.HSVS},
		{"HS+VS", ops.Greedy, core.HSVS},
		{"VS-only", ops.Greedy, core.VSOnly},
		{"HS-only", ops.Greedy, core.HSOnly},
	}
	specs := make([]AnycastSpec, 0, len(targets)*len(variants))
	for _, tgt := range targets {
		for _, v := range variants {
			specs = append(specs, AnycastSpec{
				Name:   fmt.Sprintf("%s→%s", v.name, tgt),
				BandLo: 2.0 / 3.0, BandHi: 1.01, // HIGH initiators
				Target: tgt,
				Opts:   ops.AnycastOptions{Policy: v.policy, Flavor: v.flavor, TTL: 6},
			})
		}
	}
	return specs
}

// Fig9Specs returns the retried-greedy series of Figure 9: HIGH
// initiators to the harsh [0.15, 0.25] target, retry budgets
// {2,4,8,16}. The same specs over a random-overlay world regenerate
// Figure 10.
func Fig9Specs() []AnycastSpec {
	specs := make([]AnycastSpec, 0, 4)
	for _, retry := range []int{2, 4, 8, 16} {
		specs = append(specs, AnycastSpec{
			Name:   fmt.Sprintf("retry=%d", retry),
			BandLo: 2.0 / 3.0, BandHi: 1.01,
			Target: ops.Target{Lo: 0.15, Hi: 0.25},
			Opts: ops.AnycastOptions{
				Policy: ops.RetriedGreedy,
				Flavor: core.HSVS,
				TTL:    6,
				Retry:  retry,
			},
			Gap: 4 * time.Second, // retried attempts take longer
		})
	}
	return specs
}

// AnycastTable formats results as one row per series.
func AnycastTable(results []AnycastResult) string {
	series := []stats.Series{
		{Name: "delivered"},
		{Name: "ttl-expired"},
		{Name: "retry-expired"},
		{Name: "avg-latency-ms"},
	}
	for i, r := range results {
		x := float64(i)
		series[0].Points = append(series[0].Points, stats.ScatterPoint{X: x, Y: r.FractionDelivered()})
		series[1].Points = append(series[1].Points, stats.ScatterPoint{X: x, Y: r.FractionTTLExpired()})
		series[2].Points = append(series[2].Points, stats.ScatterPoint{X: x, Y: r.FractionRetryExpired()})
		series[3].Points = append(series[3].Points, stats.ScatterPoint{X: x, Y: float64(r.MeanLatency().Milliseconds())})
	}
	return stats.Table("series#", series...)
}
