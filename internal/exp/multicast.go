package exp

import (
	"fmt"
	"time"

	"avmem/internal/core"
	"avmem/internal/ops"
)

// MulticastSpec describes one multicast experiment series.
type MulticastSpec struct {
	Name string
	// BandLo/BandHi bound the initiator's true availability.
	BandLo, BandHi float64
	Target         ops.Target
	Mode           ops.Mode
	Flavor         core.Flavor
	// Fanout/Rounds/Period parameterize gossip (paper: 5 / 2 / 1s).
	Fanout int
	Rounds int
	Period time.Duration
	Runs   int
	PerRun int
	Gap    time.Duration
	Settle time.Duration
}

func (s *MulticastSpec) applyDefaults() {
	if s.Runs == 0 {
		s.Runs = 5
	}
	if s.PerRun == 0 {
		s.PerRun = 50
	}
	if s.Gap == 0 {
		s.Gap = 5 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 30 * time.Second
	}
	if s.Mode == ops.Gossip {
		if s.Fanout == 0 {
			s.Fanout = 5
		}
		if s.Rounds == 0 {
			s.Rounds = 2
		}
		if s.Period == 0 {
			s.Period = time.Second
		}
	}
}

// MulticastResult aggregates one series' outcomes; the three slices are
// the raw materials of the Figure 11/12/13 CDFs.
type MulticastResult struct {
	Name    string
	Sent    int
	Entered int
	// NetworkMessages counts every message the series put on the wire
	// (dissemination, acks excluded) — the bandwidth side of the
	// flood-vs-gossip trade-off. It includes concurrent maintenance
	// traffic: negligible on the sim engine (whose shuffling service is
	// call-based), but on the memnet engine every node's CYCLON
	// request/reply rides the same fabric, so compare overhead numbers
	// within one backend, not across backends.
	NetworkMessages int
	// WorstLatencies holds the last-delivery latency of each multicast
	// that delivered at least once (Figure 11).
	WorstLatencies []time.Duration
	// SpamRatios holds spam/eligible per multicast (Figure 12).
	SpamRatios []float64
	// Reliabilities holds delivered/eligible per multicast (Figure 13).
	Reliabilities []float64
}

// MeanReliability averages the per-multicast reliabilities.
func (r MulticastResult) MeanReliability() float64 {
	if len(r.Reliabilities) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.Reliabilities {
		sum += v
	}
	return sum / float64(len(r.Reliabilities))
}

// MeanSpamRatio averages the per-multicast spam ratios.
func (r MulticastResult) MeanSpamRatio() float64 {
	if len(r.SpamRatios) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.SpamRatios {
		sum += v
	}
	return sum / float64(len(r.SpamRatios))
}

// MaxWorstLatency returns the largest last-delivery latency observed.
func (r MulticastResult) MaxWorstLatency() time.Duration {
	var max time.Duration
	for _, l := range r.WorstLatencies {
		if l > max {
			max = l
		}
	}
	return max
}

// RunMulticasts executes one multicast series on a deployment (either
// engine).
func RunMulticasts(w Deployment, spec MulticastSpec) (MulticastResult, error) {
	spec.applyDefaults()
	if err := spec.Target.Validate(); err != nil {
		return MulticastResult{}, err
	}
	res := MulticastResult{Name: spec.Name}
	sent := make([]ops.MsgID, 0, spec.Runs*spec.PerRun)
	netBefore := w.NetworkSent()
	for run := 0; run < spec.Runs; run++ {
		for i := 0; i < spec.PerRun; i++ {
			initiator, ok := w.PickInitiator(spec.BandLo, spec.BandHi)
			if !ok {
				continue
			}
			opts := ops.MulticastOptions{
				Anycast:  ops.DefaultAnycastOptions(),
				Mode:     spec.Mode,
				Flavor:   spec.Flavor,
				Fanout:   spec.Fanout,
				Rounds:   spec.Rounds,
				Period:   spec.Period,
				Eligible: w.EligibleFor(spec.Target),
			}
			id, err := w.Multicast(initiator, spec.Target, opts)
			if err != nil {
				return MulticastResult{}, fmt.Errorf("exp: initiating multicast: %w", err)
			}
			sent = append(sent, id)
			w.RunFor(spec.Gap)
		}
		w.RunFor(spec.Settle)
	}
	res.NetworkMessages = w.NetworkSent() - netBefore
	col := w.Collector()
	for _, id := range sent {
		rec, ok := col.Multicast(id)
		if !ok {
			continue
		}
		res.Sent++
		if rec.EnteredRange {
			res.Entered++
		}
		res.Reliabilities = append(res.Reliabilities, rec.Reliability())
		res.SpamRatios = append(res.SpamRatios, rec.SpamRatio())
		if len(rec.Delivered) > 0 {
			res.WorstLatencies = append(res.WorstLatencies, rec.WorstLatency())
		}
	}
	return res, nil
}

// Fig11Specs returns the five scenarios plotted in Figures 11–13:
// flooding for HIGH→[0.85,0.95], HIGH→(av>0.90), LOW→(av>0.20), and
// gossip (fanout 5, Ng 2, period 1 s) for the two threshold scenarios.
func Fig11Specs() []MulticastSpec {
	high := [2]float64{2.0 / 3.0, 1.01}
	low := [2]float64{0, 1.0 / 3.0}
	return []MulticastSpec{
		{
			Name:   "flood HIGH→[0.85,0.95]",
			BandLo: high[0], BandHi: high[1],
			Target: ops.Target{Lo: 0.85, Hi: 0.95},
			Mode:   ops.Flood, Flavor: core.HSVS,
		},
		{
			Name:   "flood HIGH→av>0.90",
			BandLo: high[0], BandHi: high[1],
			Target: ops.Target{Lo: 0.90, Hi: 1},
			Mode:   ops.Flood, Flavor: core.HSVS,
		},
		{
			Name:   "flood LOW→av>0.20",
			BandLo: low[0], BandHi: low[1],
			Target: ops.Target{Lo: 0.20, Hi: 1},
			Mode:   ops.Flood, Flavor: core.HSVS,
		},
		{
			Name:   "gossip HIGH→av>0.90",
			BandLo: high[0], BandHi: high[1],
			Target: ops.Target{Lo: 0.90, Hi: 1},
			Mode:   ops.Gossip, Flavor: core.HSVS,
			Fanout: 5, Rounds: 2, Period: time.Second,
		},
		{
			Name:   "gossip LOW→av>0.20",
			BandLo: low[0], BandHi: low[1],
			Target: ops.Target{Lo: 0.20, Hi: 1},
			Mode:   ops.Gossip, Flavor: core.HSVS,
			Fanout: 5, Rounds: 2, Period: time.Second,
		},
	}
}
