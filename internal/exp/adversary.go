package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"avmem/internal/adversary"
	"avmem/internal/audit"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/shuffle"
	"avmem/internal/trace"
)

// This file is the adversary-and-audit wiring shared by both deployment
// engines: cohort selection, per-node behavior construction, the
// simulator's shuffle-exchange tap, and the Deployment-level probes
// (overlay bias, eviction latency) the scenario engine and experiments
// read.

// AdversaryConfig parameterizes the Byzantine cohort of a deployment.
type AdversaryConfig struct {
	// Fraction of the population that misbehaves, in (0, 0.5].
	Fraction float64
	// BandLo/BandHi restrict cohort selection to hosts whose long-term
	// availability lies in [BandLo, BandHi) — attackers are usually
	// modeled as reasonably available nodes (an offline adversary harms
	// nobody). Zero BandHi means no upper bound.
	BandLo, BandHi float64
	// Profile is the behavior mix every cohort member runs.
	Profile adversary.Profile
	// ActiveAtStart arms the behaviors immediately; otherwise they stay
	// dormant until SetAdversariesActive(true) (a scenario onset event).
	ActiveAtStart bool
	// SelectAt is the virtual time whose availability estimates drive
	// band selection (zero = end of trace). The scenario engine passes
	// its warmup end, so the band reflects what the monitor reports
	// while the attack actually runs — availabilities are not
	// stationary across a multi-day trace.
	SelectAt time.Duration
}

func (c *AdversaryConfig) validate() error {
	if c.Fraction <= 0 || c.Fraction > 0.5 {
		return fmt.Errorf("exp: adversary fraction must be in (0,0.5], got %v", c.Fraction)
	}
	if c.BandLo < 0 || c.BandLo > 1 {
		return fmt.Errorf("exp: adversary band_lo must be in [0,1], got %v", c.BandLo)
	}
	if c.BandHi != 0 && (c.BandHi <= c.BandLo || c.BandHi > 1.01) {
		return fmt.Errorf("exp: adversary band_hi %v must exceed band_lo %v and be at most 1.01", c.BandHi, c.BandLo)
	}
	if c.Profile.Empty() {
		return fmt.Errorf("exp: adversary profile assigns no behavior")
	}
	return nil
}

// advState is a deployment's assembled adversary cohort.
type advState struct {
	sw *adversary.Switch
	// ids is the cohort in ascending host-index order.
	ids []ids.NodeID
	// isAdv, byHost, and behaviors are keyed by trace host index
	// (byHost is nil for honest hosts).
	isAdv     []bool
	byHost    []ids.NodeID
	behaviors []adversary.Behavior
}

// advSeedSalt decorrelates behavior RNG streams from the node's own
// agent/env streams derived from the same host seed.
const advSeedSalt = 0x5AD5AD5AD

// buildAdversaries selects the cohort and builds each member's
// composite behavior. Selection depends only on (trace, seed, config),
// so both engines pick the identical cohort for one scenario seed. A
// nil config returns a nil state (the honest deployment).
func buildAdversaries(cfg *AdversaryConfig, tr *trace.Trace, seed int64) (*advState, error) {
	if cfg == nil {
		return nil, nil
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hi := cfg.BandHi
	if hi == 0 {
		hi = 1.01
	}
	epoch := tr.Epochs() - 1
	if cfg.SelectAt > 0 {
		if e := tr.EpochAt(cfg.SelectAt); e < epoch {
			epoch = e
		}
	}
	band := make([]int, 0, tr.Hosts())
	for h := 0; h < tr.Hosts(); h++ {
		av := tr.SmoothedAvailability(h, epoch)
		if av >= cfg.BandLo && av < hi {
			band = append(band, h)
		}
	}
	k := int(cfg.Fraction*float64(tr.Hosts()) + 0.5)
	if k > len(band) {
		k = len(band)
	}
	if k == 0 {
		return nil, fmt.Errorf("exp: adversary band [%v,%v) selects no hosts", cfg.BandLo, hi)
	}
	// A private RNG keeps cohort selection off the engines' world
	// streams: honest runs replay bit-identically with or without this
	// code path ever existing.
	rng := rand.New(rand.NewSource(seed ^ advSeedSalt))
	perm := rng.Perm(len(band))
	chosen := make([]int, k)
	for i := 0; i < k; i++ {
		chosen[i] = band[perm[i]]
	}
	sort.Ints(chosen)

	s := &advState{
		sw:        adversary.NewSwitch(cfg.ActiveAtStart),
		isAdv:     make([]bool, tr.Hosts()),
		byHost:    make([]ids.NodeID, tr.Hosts()),
		behaviors: make([]adversary.Behavior, tr.Hosts()),
	}
	hostIDs := tr.HostIDs()
	s.ids = make([]ids.NodeID, k)
	for i, h := range chosen {
		s.ids[i] = hostIDs[h]
		s.isAdv[h] = true
		s.byHost[h] = hostIDs[h]
	}
	for _, h := range chosen {
		b, err := cfg.Profile.Build(hostIDs[h], s.ids, nodeSeed(seed, h)+advSeedSalt, s.sw)
		if err != nil {
			return nil, err
		}
		s.behaviors[h] = b
	}
	return s, nil
}

// behavior returns the host's behavior (nil for honest hosts or a nil
// state).
func (s *advState) behavior(h int) adversary.Behavior {
	if s == nil || h < 0 || h >= len(s.behaviors) {
		return nil
	}
	return s.behaviors[h]
}

// cohort returns the adversary identities (nil for a nil state).
func (s *advState) cohort() []ids.NodeID {
	if s == nil {
		return nil
	}
	return s.ids
}

// setActive flips every cohort member's behavior switch.
func (s *advState) setActive(active bool) {
	if s != nil {
		s.sw.Set(active)
	}
}

// engagedCohort returns the cohort members that emitted traffic while
// armed — the denominator detection metrics use.
func (s *advState) engagedCohort() []ids.NodeID {
	if s == nil {
		return nil
	}
	out := make([]ids.NodeID, 0, len(s.ids))
	for h, b := range s.behaviors {
		if b == nil {
			continue
		}
		if e, ok := b.(interface{ Engaged() bool }); ok && e.Engaged() {
			out = append(out, s.byHost[h])
		}
	}
	return out
}

// shuffleTap adapts a deployment's behaviors and auditors to the
// central Cyclon's exchange interceptor, so the simulator engine gets
// the same view-poisoning attack surface and audit seam the live
// runtime gets from real shuffle messages. hostIndex resolves
// identities; selfAvail supplies honest claims; auditorAt may return
// nil (no audit layer).
func shuffleTap(adv *advState, hostIndex func(ids.NodeID) int,
	selfAvail func(h int) float64, auditorAt func(h int) *audit.Auditor) *shuffle.Tap {
	return &shuffle.Tap{
		Outbound: func(owner ids.NodeID, reply bool, entries []shuffle.Entry) ([]shuffle.Entry, float64, bool) {
			h := hostIndex(owner)
			claim := selfAvail(h)
			b := adv.behavior(h)
			if b == nil {
				return entries, claim, false
			}
			// Route the offer through the exact message types the live
			// engine intercepts, so one behavior implementation serves
			// both engines — including drop verdicts (delays degrade to
			// passthrough; the central exchange is instantaneous).
			var msg any
			if reply {
				msg = shuffle.Reply{Entries: entries, SenderAvail: claim}
			} else {
				msg = shuffle.Request{Entries: entries, SenderAvail: claim}
			}
			d := b.Outbound(ids.Nil, msg)
			switch m := d.Msg.(type) {
			case shuffle.Reply:
				return m.Entries, m.SenderAvail, d.Drop
			case shuffle.Request:
				return m.Entries, m.SenderAvail, d.Drop
			}
			return entries, claim, d.Drop
		},
		Inbound: func(receiver, sender ids.NodeID, reply bool, entries []shuffle.Entry, claim float64) bool {
			a := auditorAt(hostIndex(receiver))
			if a == nil {
				return true
			}
			var msg any
			if reply {
				msg = shuffle.Reply{Entries: entries, SenderAvail: claim}
			} else {
				msg = shuffle.Request{Entries: entries, SenderAvail: claim}
			}
			return a.ObserveInbound(sender, msg)
		},
		Refuse: func(owner ids.NodeID) bool {
			b := adv.behavior(hostIndex(owner))
			return b != nil && !b.Inbound(ids.Nil, shuffle.Request{})
		},
	}
}

// BiasResult measures how strongly the adversary cohort is
// over-represented in honest nodes' state — the eclipse-success metric.
type BiasResult struct {
	// PopulationShare is the cohort's share of the whole population.
	PopulationShare float64
	// MembershipShare is the cohort's share of all membership (sliver)
	// entries held by honest online nodes.
	MembershipShare float64
	// CoarseShare is the cohort's share of honest online nodes' coarse
	// (shuffling) views — where eclipse poisoning lands first.
	CoarseShare float64
	// Bias is CoarseShare/PopulationShare (1 = unbiased, 0 when
	// undefined).
	Bias float64
}

// OverlayBias probes any deployment for adversary over-representation
// in honest nodes' coarse views and membership lists.
func OverlayBias(w Deployment) BiasResult {
	advs := w.Adversaries()
	res := BiasResult{}
	hosts := w.Hosts()
	if len(hosts) == 0 || len(advs) == 0 {
		return res
	}
	isAdv := make(map[ids.NodeID]bool, len(advs))
	for _, id := range advs {
		isAdv[id] = true
	}
	res.PopulationShare = float64(len(advs)) / float64(len(hosts))
	var memAdv, memAll, viewAdv, viewAll int
	for _, id := range w.OnlineHosts() {
		if isAdv[id] {
			continue
		}
		if m := w.Membership(id); m != nil {
			for _, nb := range m.Neighbors(core.HSVS) {
				memAll++
				if isAdv[nb.ID] {
					memAdv++
				}
			}
		}
		for _, peer := range w.CoarseView(id) {
			viewAll++
			if isAdv[peer] {
				viewAdv++
			}
		}
	}
	if memAll > 0 {
		res.MembershipShare = float64(memAdv) / float64(memAll)
	}
	if viewAll > 0 {
		res.CoarseShare = float64(viewAdv) / float64(viewAll)
	}
	if res.PopulationShare > 0 {
		res.Bias = res.CoarseShare / res.PopulationShare
	}
	return res
}

// EvictionStats summarizes the audit trail of a deployment under
// attack: how much of the cohort honest observers caught, how fast, and
// how many honest nodes were flagged along the way.
type EvictionStats struct {
	// Adversaries is the cohort size; Engaged of them emitted traffic
	// while armed, and Detected of those were evicted by at least one
	// honest observer.
	Adversaries int
	Engaged     int
	Detected    int
	// Honest is the honest population size; FlaggedHonest of them were
	// evicted by at least one honest observer (false positives).
	Honest        int
	FlaggedHonest int
	// MeanDetection is the mean, over detected adversaries, of the time
	// from onset to the first honest eviction.
	MeanDetection time.Duration
}

// DetectionRate returns Detected/Engaged (0 when nothing engaged — a
// cohort that never sent a byte was never caught, and says nothing
// about the audit layer).
func (s EvictionStats) DetectionRate() float64 {
	if s.Engaged == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Engaged)
}

// FalsePositiveRate returns FlaggedHonest/Honest (0 when undefined).
func (s EvictionStats) FalsePositiveRate() float64 {
	if s.Honest == 0 {
		return 0
	}
	return float64(s.FlaggedHonest) / float64(s.Honest)
}

// EvictionReport probes any deployment's audit trail. onset is the
// virtual time the adversaries were switched on (detection latency is
// measured from it; evictions recorded before onset still count).
func EvictionReport(w Deployment, onset time.Duration) EvictionStats {
	advs := w.Adversaries()
	stats := EvictionStats{
		Adversaries: len(advs),
		Engaged:     len(w.EngagedAdversaries()),
		Honest:      len(w.Hosts()) - len(advs),
	}
	trail := w.AuditTrail()
	if trail == nil {
		return stats
	}
	isAdv := make(map[ids.NodeID]bool, len(advs))
	for _, id := range advs {
		isAdv[id] = true
	}
	// First eviction per suspect by an honest observer.
	first := make(map[ids.NodeID]time.Duration, 32)
	for _, e := range trail.Evictions() {
		if isAdv[e.Observer] {
			continue
		}
		if at, ok := first[e.Suspect]; !ok || e.At < at {
			first[e.Suspect] = e.At
		}
	}
	var latencySum time.Duration
	for suspect, at := range first {
		if isAdv[suspect] {
			stats.Detected++
			if at > onset {
				latencySum += at - onset
			}
		} else {
			stats.FlaggedHonest++
		}
	}
	if stats.Detected > 0 {
		stats.MeanDetection = latencySum / time.Duration(stats.Detected)
	}
	return stats
}
