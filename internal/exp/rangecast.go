package exp

import (
	"fmt"
	"time"

	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/stats"
)

// RangecastSpec describes one range-cast experiment series: initiators
// drawn from an availability band deliver a payload to every node in a
// half-open target band.
type RangecastSpec struct {
	Name string
	// BandLo/BandHi bound the initiator's true availability.
	BandLo, BandHi float64
	// Band is the half-open availability interval addressed.
	Band ops.Band
	// Payload is the management payload delivered to every band member.
	Payload string
	// Flavor selects the sliver lists used for dissemination.
	Flavor core.Flavor
	Runs   int
	PerRun int
	Gap    time.Duration
	Settle time.Duration
}

func (s *RangecastSpec) applyDefaults() {
	if s.Flavor == 0 {
		s.Flavor = core.HSVS
	}
	if s.Runs == 0 {
		s.Runs = 5
	}
	if s.PerRun == 0 {
		s.PerRun = 50
	}
	if s.Gap == 0 {
		s.Gap = 5 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 30 * time.Second
	}
}

// RangecastResult aggregates one series' outcomes.
type RangecastResult struct {
	Name string
	Sent int
	// Entered counts range-casts whose entry anycast reached the band.
	Entered int
	// Coverages holds delivered/eligible per range-cast; SpamRatios the
	// out-of-band receptions per eligible node.
	Coverages  []float64
	SpamRatios []float64
	// WorstLatencies holds the last-delivery latency of each range-cast
	// that delivered at least once.
	WorstLatencies []time.Duration
	// MaxDepth is the deepest dissemination hop count across the series.
	MaxDepth int
}

// MeanCoverage averages the per-operation coverages.
func (r RangecastResult) MeanCoverage() float64 { return stats.Mean(r.Coverages) }

// MeanSpamRatio averages the per-operation spam ratios.
func (r RangecastResult) MeanSpamRatio() float64 { return stats.Mean(r.SpamRatios) }

// MaxWorstLatency returns the largest last-delivery latency observed.
func (r RangecastResult) MaxWorstLatency() time.Duration {
	var max time.Duration
	for _, l := range r.WorstLatencies {
		if l > max {
			max = l
		}
	}
	return max
}

// bandEligible returns the online nodes whose true availability lies
// in the half-open band — the ground-truth population range-cast
// coverage and aggregation accuracy are measured against.
func bandEligible(w Deployment, b ops.Band) []ids.NodeID {
	hi := b.Hi
	if hi >= 1 {
		// The band closes its top end at 1; OnlineInBand is half-open,
		// so stretch past every capped estimate.
		hi = 1.01
	}
	return w.OnlineInBand(b.Lo, hi)
}

// RunRangecasts executes one range-cast series on a deployment (either
// engine) and aggregates its outcomes.
func RunRangecasts(w Deployment, spec RangecastSpec) (RangecastResult, error) {
	spec.applyDefaults()
	if err := spec.Band.Validate(); err != nil {
		return RangecastResult{}, err
	}
	res := RangecastResult{Name: spec.Name}
	sent := make([]ops.MsgID, 0, spec.Runs*spec.PerRun)
	for run := 0; run < spec.Runs; run++ {
		for i := 0; i < spec.PerRun; i++ {
			initiator, ok := w.PickInitiator(spec.BandLo, spec.BandHi)
			if !ok {
				continue
			}
			opts := ops.RangecastOptions{
				Anycast:  ops.DefaultAnycastOptions(),
				Flavor:   spec.Flavor,
				Eligible: len(bandEligible(w, spec.Band)),
			}
			id, err := w.Rangecast(initiator, spec.Band.Lo, spec.Band.Hi, spec.Payload, opts)
			if err != nil {
				return RangecastResult{}, fmt.Errorf("exp: initiating rangecast: %w", err)
			}
			sent = append(sent, id)
			w.RunFor(spec.Gap)
		}
		w.RunFor(spec.Settle)
	}
	col := w.Collector()
	for _, id := range sent {
		rec, ok := col.Rangecast(id)
		if !ok {
			continue
		}
		res.Sent++
		if rec.EnteredRange {
			res.Entered++
		}
		res.Coverages = append(res.Coverages, rec.Coverage())
		res.SpamRatios = append(res.SpamRatios, rec.SpamRatio())
		if len(rec.Delivered) > 0 {
			res.WorstLatencies = append(res.WorstLatencies, rec.WorstLatency())
		}
		if rec.MaxDepth > res.MaxDepth {
			res.MaxDepth = rec.MaxDepth
		}
	}
	return res, nil
}
