package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"avmem/internal/agg"
	"avmem/internal/audit"
	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/node"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/sim"
	"avmem/internal/trace"
	"avmem/internal/transport"
)

// Cluster is the second deployment engine: the same churn trace,
// predicate, and monitoring stack as World, but the population consists
// of real node.Node agents — the live runtime with its CYCLON shuffle
// agent, per-node timers, and transport-level messaging — bound to
// virtual-time Envs over a deterministic, seedable memnet. Where World
// answers "what does the protocol do", Cluster answers "what does the
// shipped node binary do": every scenario that runs on the simulator
// runs here against the live code path, reproducibly per seed.
//
// A Cluster executes single-threaded on its virtual clock (like Sim, it
// is not safe for concurrent use), so runs are deterministic and
// race-free even though the node code is the fully locked concurrent
// implementation.
type Cluster struct {
	Cfg   WorldConfig
	Trace *trace.Trace
	// Sched is the virtual clock every node timer and memnet delivery
	// runs on.
	Sched *sim.World
	// Net is the deterministic in-process network carrying all traffic,
	// with fault injection (kill/restart, link faults, partitions)
	// available to harnesses.
	Net     *transport.Memnet
	PDF     *avdist.PDF
	NStar   float64
	Monitor avmon.Service
	Hashes  *ids.HashCache
	Col     *ops.Collector

	hosts []ids.NodeID
	nodes []*node.Node
	mon   *monitorStack
	// forcedDownUntil[h] holds a scenario-injected outage lift time
	// (zero = none); see World.ForceOffline for the sweep discipline.
	forcedDownUntil []time.Duration
	// adv is the Byzantine cohort (nil when honest); trail is the
	// shared eviction registry (nil when auditing is off).
	adv   *advState
	trail *audit.Trail
}

var _ Deployment = (*Cluster)(nil)

// NewCluster assembles a memnet deployment of real nodes and schedules
// their staggered starts within the first protocol period. Nodes run in
// Seeds mode: each bootstraps from a few random peers and fills its
// coarse view through live CYCLON exchanges, the deployed-agent story.
func NewCluster(cfg WorldConfig) (*Cluster, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	tr := cfg.Trace
	c := &Cluster{
		Cfg:             cfg,
		Trace:           tr,
		Sched:           sim.NewWorld(cfg.Seed),
		Hashes:          ids.NewHashCache(0),
		Col:             ops.NewCollector(),
		hosts:           tr.HostIDs(),
		nodes:           make([]*node.Node, tr.Hosts()),
		forcedDownUntil: make([]time.Duration, tr.Hosts()),
	}
	pdf, err := estimatePDF(tr)
	if err != nil {
		return nil, err
	}
	c.PDF = pdf
	c.NStar = tr.MeanOnline()

	pred, _, err := buildPredicate(cfg, c.PDF, c.NStar)
	if err != nil {
		return nil, err
	}
	latency := cfg.Latency
	c.Net = transport.NewMemnet(transport.MemnetConfig{
		After:   c.Sched.After,
		Seed:    cfg.Seed + 1,
		Latency: func(rng *rand.Rand) time.Duration { return latency.Sample(rng) },
		Online:  c.nodeOnline,
	})
	mon, err := buildMonitorStack(cfg, tr, c.hosts, c.Sched, c.nodeOnline, c.onlineAt)
	if err != nil {
		return nil, err
	}
	c.mon = mon
	c.Monitor = mon.monitor
	adv, err := buildAdversaries(cfg.Adversary, tr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c.adv = adv
	if cfg.Audit != nil {
		c.trail = audit.NewTrail()
	}
	var auditIns *audit.Instruments
	if cfg.Metrics != nil {
		c.Sched.Instrument(cfg.Metrics)
		c.Col.Instrument(cfg.Metrics)
		auditIns = audit.NewInstruments(cfg.Metrics)
	}
	// The same band-census estimator the sim engine arms its routers
	// with (see installNodes): keeps the two engines' PDF sanity checks
	// — and therefore their metrics — in lockstep.
	nstar := c.NStar
	bandCensus := func(lo, hi float64) float64 {
		return nstar * pdf.IntervalMass(lo, math.Min(hi, 1))
	}

	for h, id := range c.hosts {
		h := h
		// The env RNG (annealing draws) gets a distinct stream from the
		// node's agent RNG, mirroring the live path's Seed+1 offset.
		env, err := runtime.NewVirtual(runtime.VirtualConfig{
			Self:      id,
			Scheduler: c.Sched,
			Fabric:    c.Net,
			Online:    func() bool { return c.onlineAt(h) },
			Seed:      nodeSeed(cfg.Seed, h) + 1,
		})
		if err != nil {
			return nil, err
		}
		n, err := node.New(node.Config{
			Self:           id,
			Predicate:      pred,
			Monitor:        c.Monitor,
			Seeds:          pickSeeds(c.Sched.Rand(), c.hosts, id, 4),
			ViewSize:       cfg.ViewSize,
			ShuffleLen:     cfg.ShuffleLen,
			Env:            env,
			Collector:      c.Col,
			Hashes:         c.Hashes,
			ProtocolPeriod: cfg.ProtocolPeriod,
			RefreshPeriod:  cfg.RefreshPeriod,
			VerifyInbound:  cfg.VerifyInbound,
			Cushion:        cfg.Cushion,
			Seed:           nodeSeed(cfg.Seed, h),
			Behavior:       c.adv.behavior(h),
			Audit:          cfg.Audit,
			AuditTrail:     c.trail,
			AuditObs:       auditIns,
			BandCensus:     bandCensus,
			OpTrace:        cfg.OpTrace,
		})
		if err != nil {
			return nil, err
		}
		c.nodes[h] = n
		// Stagger node starts across the first protocol period — the
		// live counterpart of the simulator's per-node driver offsets.
		offset := time.Duration(c.Sched.Rand().Int63n(int64(cfg.ProtocolPeriod)))
		c.Sched.After(offset, func() {
			// Registration on a memnet cannot fail; a failure here would
			// be a wiring bug, not an operational condition.
			if err := n.Start(); err != nil {
				panic(fmt.Sprintf("exp: starting cluster node: %v", err))
			}
		})
	}
	return c, nil
}

// nodeSeed derives a node's private RNG seed from the cluster seed and
// the node's trace index (a splitmix-style spread keeps streams
// uncorrelated across nodes and seeds).
func nodeSeed(seed int64, h int) int64 {
	z := uint64(seed) + uint64(h+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Stop shuts every node down (after a run, before discarding the
// cluster).
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
	_ = c.Net.Close()
}

// onlineAt is the hot-path liveness check by trace host index: the
// churn trace overlaid with scenario-forced outages. Pure read, hence
// reentrant from delivery callbacks.
func (c *Cluster) onlineAt(h int) bool {
	now := c.Sched.Now()
	if c.forcedDownUntil[h] > now {
		return false
	}
	return c.Trace.UpAtIndex(h, now)
}

// nodeOnline is the id-keyed liveness check (memnet delivery gates and
// the distributed monitor use it).
func (c *Cluster) nodeOnline(id ids.NodeID) bool {
	h := c.Trace.HostIndex(id)
	return h >= 0 && c.onlineAt(h)
}

// Node returns the live node for an identity (nil if unknown).
func (c *Cluster) Node(id ids.NodeID) *node.Node {
	h := c.Trace.HostIndex(id)
	if h < 0 {
		return nil
	}
	return c.nodes[h]
}

// Hosts implements Deployment.
func (c *Cluster) Hosts() []ids.NodeID { return c.hosts }

// OnlineHosts implements Deployment.
func (c *Cluster) OnlineHosts() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(c.hosts)/2)
	for h, id := range c.hosts {
		if c.onlineAt(h) {
			out = append(out, id)
		}
	}
	return out
}

// Online implements Deployment.
func (c *Cluster) Online(id ids.NodeID) bool { return c.nodeOnline(id) }

// TrueAvailability implements Deployment.
func (c *Cluster) TrueAvailability(id ids.NodeID) float64 {
	h := c.Trace.HostIndex(id)
	if h < 0 {
		return 0
	}
	return c.Trace.SmoothedAvailability(h, c.Trace.EpochAt(c.Sched.Now()))
}

// OnlineInBand implements Deployment.
func (c *Cluster) OnlineInBand(lo, hi float64) []ids.NodeID {
	out := make([]ids.NodeID, 0, 64)
	for _, id := range c.OnlineHosts() {
		av := c.TrueAvailability(id)
		if av >= lo && av < hi {
			out = append(out, id)
		}
	}
	return out
}

// EligibleFor implements Deployment.
func (c *Cluster) EligibleFor(t ops.Target) int {
	n := 0
	for _, id := range c.OnlineHosts() {
		if t.Contains(c.TrueAvailability(id)) {
			n++
		}
	}
	return n
}

// PickInitiator implements Deployment.
func (c *Cluster) PickInitiator(lo, hi float64) (ids.NodeID, bool) {
	band := c.OnlineInBand(lo, hi)
	if len(band) == 0 {
		return ids.Nil, false
	}
	return band[c.Sched.Rand().Intn(len(band))], true
}

// Membership implements Deployment.
func (c *Cluster) Membership(id ids.NodeID) *core.Membership {
	n := c.Node(id)
	if n == nil {
		return nil
	}
	return n.Membership()
}

// MeanDegree implements Deployment.
func (c *Cluster) MeanDegree() float64 {
	online := c.OnlineHosts()
	if len(online) == 0 {
		return 0
	}
	total := 0
	for _, id := range online {
		if m := c.Membership(id); m != nil {
			total += m.Size()
		}
	}
	return float64(total) / float64(len(online))
}

// MonitorService implements Deployment.
func (c *Cluster) MonitorService() avmon.Service { return c.Monitor }

// HashCache implements Deployment.
func (c *Cluster) HashCache() *ids.HashCache { return c.Hashes }

// Collector implements Deployment.
func (c *Cluster) Collector() *ops.Collector { return c.Col }

// Rand implements Deployment.
func (c *Cluster) Rand() *rand.Rand { return c.Sched.Rand() }

// Now implements Deployment.
func (c *Cluster) Now() time.Duration { return c.Sched.Now() }

// RunFor implements Deployment.
func (c *Cluster) RunFor(d time.Duration) { c.Sched.Run(c.Sched.Now() + d) }

// Warmup implements Deployment.
func (c *Cluster) Warmup(d time.Duration) { c.RunFor(d) }

// StableSize implements Deployment.
func (c *Cluster) StableSize() float64 { return c.NStar }

// NetworkSent implements Deployment.
func (c *Cluster) NetworkSent() int { return c.Net.Stats().Sent }

// Anycast implements Deployment.
func (c *Cluster) Anycast(from ids.NodeID, target ops.Target, opts ops.AnycastOptions) (ops.MsgID, error) {
	n := c.Node(from)
	if n == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return n.Anycast(target, opts)
}

// Multicast implements Deployment.
func (c *Cluster) Multicast(from ids.NodeID, target ops.Target, opts ops.MulticastOptions) (ops.MsgID, error) {
	n := c.Node(from)
	if n == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return n.Multicast(target, opts)
}

// Rangecast implements Deployment.
func (c *Cluster) Rangecast(from ids.NodeID, lo, hi float64, payload string, opts ops.RangecastOptions) (ops.MsgID, error) {
	n := c.Node(from)
	if n == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return n.Rangecast(lo, hi, payload, opts)
}

// Aggregate implements Deployment.
func (c *Cluster) Aggregate(from ids.NodeID, op agg.Op, lo, hi float64, opts ops.AggregateOptions) (ops.MsgID, error) {
	n := c.Node(from)
	if n == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return n.Aggregate(op, lo, hi, opts)
}

// ForceOffline implements Deployment: id drops off the memnet and out
// of its own protocol drivers until the given virtual time, regardless
// of its churn trace. The lift-time sweep keeps liveness reads pure
// (see World.ForceOffline).
func (c *Cluster) ForceOffline(id ids.NodeID, until time.Duration) {
	if until <= c.Sched.Now() {
		return
	}
	h := c.Trace.HostIndex(id)
	if h < 0 {
		return
	}
	c.forcedDownUntil[h] = until
	c.Sched.At(until, func() {
		if c.forcedDownUntil[h] == until {
			c.forcedDownUntil[h] = 0
		}
	})
}

// SetMonitorNoise implements Deployment.
func (c *Cluster) SetMonitorNoise(maxErr float64, staleness time.Duration) error {
	return c.mon.setNoise(maxErr, staleness)
}

// CoarseView implements Deployment: the live node's CYCLON agent view.
func (c *Cluster) CoarseView(id ids.NodeID) []ids.NodeID {
	n := c.Node(id)
	if n == nil {
		return nil
	}
	return n.CoarseView()
}

// Adversaries implements Deployment.
func (c *Cluster) Adversaries() []ids.NodeID { return c.adv.cohort() }

// EngagedAdversaries implements Deployment.
func (c *Cluster) EngagedAdversaries() []ids.NodeID { return c.adv.engagedCohort() }

// SetAdversariesActive implements Deployment.
func (c *Cluster) SetAdversariesActive(active bool) { c.adv.setActive(active) }

// AuditTrail implements Deployment.
func (c *Cluster) AuditTrail() *audit.Trail { return c.trail }
