package exp

import (
	"fmt"
	"math/rand"
	"time"

	"avmem/internal/agg"
	"avmem/internal/audit"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
)

// Deployment is the engine-agnostic surface of a running AVMEM
// deployment. The simulated World and the memnet Cluster both implement
// it, so the workload runners (RunAnycasts, RunMulticasts), the attack
// probes, the scenario engine, and the public Sim API drive either
// engine unchanged — the "one protocol core, two engines" contract.
//
// Time methods advance or read the deployment's virtual clock; query
// methods answer from ground truth (the churn trace overlaid with
// scenario-forced outages); operation methods initiate management
// operations at a node and report into the shared Collector.
type Deployment interface {
	// Hosts returns all host identifiers (trace-index order).
	Hosts() []ids.NodeID
	// OnlineHosts returns the currently online host identifiers.
	OnlineHosts() []ids.NodeID
	// Online reports whether a node is online at the current time.
	Online(id ids.NodeID) bool
	// TrueAvailability returns the noiseless long-term availability of a
	// node at the current time (ground truth for bands and eligibility).
	TrueAvailability(id ids.NodeID) float64
	// OnlineInBand returns online nodes with true availability in [lo, hi).
	OnlineInBand(lo, hi float64) []ids.NodeID
	// EligibleFor counts online nodes inside the operation target.
	EligibleFor(t ops.Target) int
	// PickInitiator selects a random online node from [lo, hi).
	PickInitiator(lo, hi float64) (ids.NodeID, bool)
	// Membership returns a node's membership state (nil if unknown).
	Membership(id ids.NodeID) *core.Membership
	// MeanDegree returns the mean AVMEM neighbor count across online
	// nodes.
	MeanDegree() float64
	// MonitorService returns the availability service nodes query —
	// including any active noise layer.
	MonitorService() avmon.Service
	// HashCache returns the deployment's shared pair-hash cache.
	HashCache() *ids.HashCache
	// Collector returns the shared operation-outcome collector.
	Collector() *ops.Collector
	// Rand returns the deployment's seeded randomness (initiator picks,
	// churn-burst sampling).
	Rand() *rand.Rand
	// Now returns the current virtual time.
	Now() time.Duration
	// RunFor advances the deployment by d.
	RunFor(d time.Duration)
	// Warmup advances the deployment by d before measurements.
	Warmup(d time.Duration)
	// StableSize returns N*, the trace's mean online population.
	StableSize() float64
	// NetworkSent returns the cumulative count of messages handed to the
	// deployment's network fabric.
	NetworkSent() int
	// Anycast initiates an anycast at node from.
	Anycast(from ids.NodeID, target ops.Target, opts ops.AnycastOptions) (ops.MsgID, error)
	// Multicast initiates a multicast at node from.
	Multicast(from ids.NodeID, target ops.Target, opts ops.MulticastOptions) (ops.MsgID, error)
	// Rangecast initiates a range-cast at node from: payload delivery
	// to every node with availability in [lo, hi).
	Rangecast(from ids.NodeID, lo, hi float64, payload string, opts ops.RangecastOptions) (ops.MsgID, error)
	// Aggregate initiates an in-overlay aggregation at node from: op
	// over the local values of every node in [lo, hi).
	Aggregate(from ids.NodeID, op agg.Op, lo, hi float64, opts ops.AggregateOptions) (ops.MsgID, error)
	// ForceOffline injects an outage for id until the given virtual time.
	ForceOffline(id ids.NodeID, until time.Duration)
	// SetMonitorNoise swaps the monitor-noise layer mid-run.
	SetMonitorNoise(maxErr float64, staleness time.Duration) error
	// CoarseView returns a node's current shuffling (coarse) view — the
	// surface eclipse attacks poison first.
	CoarseView(id ids.NodeID) []ids.NodeID
	// Adversaries returns the configured Byzantine cohort (nil when the
	// deployment is honest).
	Adversaries() []ids.NodeID
	// EngagedAdversaries returns the cohort members that emitted
	// traffic while armed — the detection-rate denominator (an
	// adversary offline for a whole attack never misbehaved and cannot
	// be observed).
	EngagedAdversaries() []ids.NodeID
	// SetAdversariesActive arms or disarms the cohort's behaviors
	// (scenario onset/offset events).
	SetAdversariesActive(active bool)
	// AuditTrail returns the deployment-wide eviction registry (nil
	// when auditing is off).
	AuditTrail() *audit.Trail
}

var _ Deployment = (*World)(nil)

// Backend names for NewDeployment; the scenario engine and the public
// API both dispatch through these.
const (
	// BackendSim is the virtual-time simulator engine (World).
	BackendSim = "sim"
	// BackendMemnet is the live-runtime engine (Cluster): real
	// node.Node agents on the deterministic in-process memnet.
	BackendMemnet = "memnet"
)

// NewDeployment assembles a deployment on the named backend (empty
// defaults to BackendSim).
func NewDeployment(backend string, cfg WorldConfig) (Deployment, error) {
	switch backend {
	case "", BackendSim:
		return NewWorld(cfg)
	case BackendMemnet:
		return NewCluster(cfg)
	default:
		return nil, fmt.Errorf("exp: unknown backend %q (%s, %s)", backend, BackendSim, BackendMemnet)
	}
}

// unknownNode is the error operation initiation reports for an identity
// outside the deployment.
func unknownNode(id ids.NodeID) error { return fmt.Errorf("exp: unknown node %q", id) }

// Collector implements Deployment.
func (w *World) Collector() *ops.Collector { return w.Col }

// MonitorService implements Deployment.
func (w *World) MonitorService() avmon.Service { return w.Monitor }

// HashCache implements Deployment.
func (w *World) HashCache() *ids.HashCache { return w.Hashes }

// Rand implements Deployment.
func (w *World) Rand() *rand.Rand { return w.Sim.Rand() }

// Now implements Deployment.
func (w *World) Now() time.Duration { return w.Sim.Now() }

// StableSize implements Deployment.
func (w *World) StableSize() float64 { return w.NStar }

// NetworkSent implements Deployment.
func (w *World) NetworkSent() int { return w.Net.Stats().Sent }

// Anycast implements Deployment.
func (w *World) Anycast(from ids.NodeID, target ops.Target, opts ops.AnycastOptions) (ops.MsgID, error) {
	r := w.Router(from)
	if r == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return r.Anycast(target, opts)
}

// Multicast implements Deployment.
func (w *World) Multicast(from ids.NodeID, target ops.Target, opts ops.MulticastOptions) (ops.MsgID, error) {
	r := w.Router(from)
	if r == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return r.Multicast(target, opts)
}

// Rangecast implements Deployment.
func (w *World) Rangecast(from ids.NodeID, lo, hi float64, payload string, opts ops.RangecastOptions) (ops.MsgID, error) {
	r := w.Router(from)
	if r == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return r.Rangecast(lo, hi, payload, opts)
}

// Aggregate implements Deployment.
func (w *World) Aggregate(from ids.NodeID, op agg.Op, lo, hi float64, opts ops.AggregateOptions) (ops.MsgID, error) {
	r := w.Router(from)
	if r == nil {
		return ops.MsgID{}, unknownNode(from)
	}
	return r.Aggregate(op, lo, hi, opts)
}
