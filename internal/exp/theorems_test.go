package exp

import (
	"math"
	"testing"

	"avmem/internal/core"
	"avmem/internal/ids"
)

// TestTheorem2BandConnectivity checks Theorem 2's claim on a built
// overlay: for a node x, the sub-overlay of online nodes with
// availability within ±ε of x stays connected (w.h.p.) through
// horizontal-sliver edges.
func TestTheorem2BandConnectivity(t *testing.T) {
	w := mediumWorld(t, 12)
	eps := w.Cfg.Epsilon

	checked := 0
	for _, center := range []float64{0.2, 0.5, 0.8} {
		// Collect the online band members.
		band := make([]ids.NodeID, 0, 64)
		for _, id := range w.OnlineHosts() {
			av := w.TrueAvailability(id)
			if av >= center-eps && av <= center+eps {
				band = append(band, id)
			}
		}
		if len(band) < 5 {
			continue
		}
		checked++
		// Build the undirected HS graph restricted to the band.
		index := make(map[ids.NodeID]int, len(band))
		for i, id := range band {
			index[id] = i
		}
		adj := make([][]int, len(band))
		for i, id := range band {
			for _, nb := range w.Membership(id).Neighbors(core.HSOnly) {
				if j, ok := index[nb.ID]; ok {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		// BFS from node 0: the giant component should cover nearly the
		// whole band (full connectivity is "w.h.p.", and some members
		// just churned online and have not discovered yet).
		seen := make([]bool, len(band))
		queue := []int{0}
		seen[0] = true
		reached := 1
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					reached++
					queue = append(queue, next)
				}
			}
		}
		frac := float64(reached) / float64(len(band))
		if frac < 0.8 {
			t.Errorf("band around %.1f: giant HS component covers only %.0f%% of %d online members",
				center, frac*100, len(band))
		}
	}
	if checked == 0 {
		t.Skip("no sufficiently populated bands")
	}
}

// TestTheorem3DegreeScale checks Theorem 3's claim: the expected number
// of *online* neighbors is O(N*_av + log N*) — concretely, far below
// the online population.
func TestTheorem3DegreeScale(t *testing.T) {
	w := mediumWorld(t, 13)
	online := w.OnlineHosts()
	if len(online) < 50 {
		t.Skip("too few online nodes")
	}
	onlineSet := make(map[ids.NodeID]bool, len(online))
	for _, id := range online {
		onlineSet[id] = true
	}
	exceeded := 0
	for _, id := range online {
		onlineNeighbors := 0
		for _, nb := range w.Membership(id).Neighbors(core.HSVS) {
			if onlineSet[nb.ID] {
				onlineNeighbors++
			}
		}
		// Theorem 3 part (i): at most N*_av − 1 + c1·log N* in
		// expectation. Evaluate the bound at this node's availability.
		av := w.TrueAvailability(id)
		bound := w.PDF.NStarAv(av, w.Cfg.Epsilon, w.NStar) + w.Cfg.C1*math.Log(w.NStar)
		// Allow 2× slack for variance around the expectation.
		if float64(onlineNeighbors) > 2*bound+10 {
			exceeded++
		}
	}
	if frac := float64(exceeded) / float64(len(online)); frac > 0.05 {
		t.Errorf("%.0f%% of nodes exceed twice the Theorem-3 degree bound", frac*100)
	}
}
