package exp

import (
	"testing"
	"time"

	"avmem/internal/ops"
	"avmem/internal/trace"
)

// testClusterTrace generates a small churn trace shared by the cluster
// tests.
func testClusterTrace(t *testing.T, seed int64, hosts int) *trace.Trace {
	t.Helper()
	gen := trace.DefaultGenConfig(seed)
	gen.Hosts = hosts
	gen.Epochs = 72 // one day
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newTestCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(WorldConfig{
		Seed:           seed,
		Trace:          testClusterTrace(t, seed, 80),
		ProtocolPeriod: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterConvergesAndDelivers(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Warmup(2 * time.Hour)
	online := c.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online nodes after warmup")
	}
	total := 0
	for _, id := range online {
		total += c.Membership(id).Size()
	}
	if mean := float64(total) / float64(len(online)); mean < 2 {
		t.Fatalf("overlay never formed: mean membership size %.1f", mean)
	}
	res, err := RunAnycasts(c, AnycastSpec{
		Name: "cluster-smoke", BandLo: 0, BandHi: 1.01,
		Target: ops.Target{Lo: 0.5, Hi: 1},
		Opts:   ops.DefaultAnycastOptions(),
		Runs:   1, PerRun: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.FractionDelivered() < 0.5 {
		t.Fatalf("cluster anycast broken: %+v", res)
	}
}

func TestClusterDeterministicPerSeed(t *testing.T) {
	run := func() (sizes []int, delivered int) {
		c := newTestCluster(t, 3)
		c.Warmup(90 * time.Minute)
		for _, id := range c.Hosts() {
			sizes = append(sizes, c.Membership(id).Size())
		}
		res, err := RunAnycasts(c, AnycastSpec{
			Name: "det", BandLo: 0, BandHi: 1.01,
			Target: ops.Target{Lo: 0.4, Hi: 1},
			Opts:   ops.DefaultAnycastOptions(),
			Runs:   1, PerRun: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sizes, res.Delivered
	}
	sizesA, delA := run()
	sizesB, delB := run()
	if delA != delB {
		t.Errorf("delivered %d vs %d across identical runs", delA, delB)
	}
	for i := range sizesA {
		if sizesA[i] != sizesB[i] {
			t.Fatalf("host %d membership size %d vs %d: cluster must replay identically",
				i, sizesA[i], sizesB[i])
		}
	}
}

func TestClusterForceOffline(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Warmup(time.Hour)
	online := c.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online nodes")
	}
	victim := online[0]
	until := c.Now() + 30*time.Minute
	c.ForceOffline(victim, until)
	if c.Online(victim) {
		t.Fatal("forced-offline node still online")
	}
	// While down, the memnet drops traffic to the victim.
	ok := true
	c.Net.SendCall("probe", victim, struct{}{}, func(r bool) { ok = r })
	c.RunFor(time.Second)
	if ok {
		t.Error("memnet acknowledged delivery to a forced-offline node")
	}
	// The outage lifts on schedule; the trace resumes control.
	c.RunFor(35 * time.Minute)
	if c.forcedDownUntil[c.Trace.HostIndex(victim)] != 0 {
		t.Error("outage slot never swept")
	}
}

func TestClusterMonitorNoiseSwap(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Warmup(time.Hour)
	id := c.Hosts()[0]
	clean, ok := c.MonitorService().Availability(id)
	if !ok {
		t.Fatal("monitor does not know the host")
	}
	if err := c.SetMonitorNoise(0.2, time.Hour); err != nil {
		t.Fatal(err)
	}
	noisy, ok := c.MonitorService().Availability(id)
	if !ok || noisy < 0 || noisy > 1 {
		t.Fatalf("noisy answer %v ok=%v", noisy, ok)
	}
	if err := c.SetMonitorNoise(0, 0); err != nil {
		t.Fatal(err)
	}
	restored, _ := c.MonitorService().Availability(id)
	if restored != clean {
		t.Errorf("restored availability %v, want clean %v", restored, clean)
	}
}
