package exp

import (
	"fmt"
	"time"

	"avmem/internal/agg"
	"avmem/internal/core"
	"avmem/internal/ops"
	"avmem/internal/stats"
)

// AggregateSpec describes one aggregation experiment series: op over
// the node-local values (availability claims by default) of every node
// in a half-open band.
type AggregateSpec struct {
	Name string
	// BandLo/BandHi bound the initiator's true availability.
	BandLo, BandHi float64
	// Band is the half-open availability interval aggregated over.
	Band ops.Band
	// Op is the aggregate computed (count/sum/min/max/avg).
	Op agg.Op
	// Flavor selects the sliver lists the tree grows along.
	Flavor core.Flavor
	// Redundancy is the number of independent disjoint aggregation
	// trees launched per operation (ops.AggregateOptions.Redundancy);
	// 0 means 1 (single tree, legacy behavior).
	Redundancy int
	Runs       int
	PerRun     int
	Gap        time.Duration
	Settle     time.Duration
}

func (s *AggregateSpec) applyDefaults() {
	if s.Op == 0 {
		s.Op = agg.Count
	}
	if s.Flavor == 0 {
		s.Flavor = core.HSVS
	}
	if s.Runs == 0 {
		s.Runs = 5
	}
	if s.PerRun == 0 {
		s.PerRun = 50
	}
	if s.Gap == 0 {
		// An aggregation converges within MaxDepth+1 waves; default Gap
		// spaces initiations past that so trees do not stack up.
		s.Gap = 10 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 30 * time.Second
	}
}

// AggregateResult aggregates one series' outcomes.
type AggregateResult struct {
	Name string
	Sent int
	// Done counts aggregations whose combined result reached the
	// origin.
	Done int
	// Accuracies holds per-operation result-vs-ground-truth scores
	// (ops.AggregateRecord.Accuracy); Coverages the contributor
	// fraction of the eligible population.
	Accuracies []float64
	Coverages  []float64
	// Depths holds each completed tree's hop radius; Latencies the
	// initiation-to-result times.
	Depths    []int
	Latencies []time.Duration
	// Divergences holds the per-operation fraction of redundant trees
	// that disagreed with the accepted (median) result.
	Divergences []float64
	// RejectedPartials / ForgeryRejected / ForgeryAccepted are the
	// series' deltas of the deployment collector's Byzantine-defense
	// counters (ops.Collector.AggCounters): partials dropped by the PDF
	// sanity checks, results refused by token/sender binding, and
	// unbound results that slipped past the binding tripwire.
	RejectedPartials int
	ForgeryRejected  int
	ForgeryAccepted  int
}

// CompletionRate returns Done/Sent (0 when nothing was sent).
func (r AggregateResult) CompletionRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Done) / float64(r.Sent)
}

// MeanAccuracy averages the per-operation accuracies.
func (r AggregateResult) MeanAccuracy() float64 { return stats.Mean(r.Accuracies) }

// MeanCoverage averages the per-operation contributor fractions.
func (r AggregateResult) MeanCoverage() float64 { return stats.Mean(r.Coverages) }

// MeanDivergence averages the per-operation cross-tree disagreement
// fractions.
func (r AggregateResult) MeanDivergence() float64 { return stats.Mean(r.Divergences) }

// MeanDepth averages the completed trees' hop radii.
func (r AggregateResult) MeanDepth() float64 {
	if len(r.Depths) == 0 {
		return 0
	}
	sum := 0
	for _, d := range r.Depths {
		sum += d
	}
	return float64(sum) / float64(len(r.Depths))
}

// MeanLatency averages the initiation-to-result times.
func (r AggregateResult) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// groundTruth computes the true aggregate over the online in-band
// population at the current instant — what a perfect census would
// report. The returned eligible count doubles as the coverage
// denominator.
func groundTruth(w Deployment, op agg.Op, b ops.Band) (eligible int, truth float64) {
	var p agg.Partial
	for _, id := range bandEligible(w, b) {
		p.Observe(w.TrueAvailability(id), 0)
	}
	return p.N, p.Value(op)
}

// RunAggregates executes one aggregation series on a deployment
// (either engine): each operation's ground truth is frozen at its
// initiation instant, so accuracy measures what the overlay lost —
// not what churn changed underneath it.
func RunAggregates(w Deployment, spec AggregateSpec) (AggregateResult, error) {
	spec.applyDefaults()
	if err := spec.Band.Validate(); err != nil {
		return AggregateResult{}, err
	}
	if err := spec.Op.Validate(); err != nil {
		return AggregateResult{}, err
	}
	res := AggregateResult{Name: spec.Name}
	rej0, forgRej0, forgAcc0 := w.Collector().AggCounters()
	sent := make([]ops.MsgID, 0, spec.Runs*spec.PerRun)
	for run := 0; run < spec.Runs; run++ {
		for i := 0; i < spec.PerRun; i++ {
			initiator, ok := w.PickInitiator(spec.BandLo, spec.BandHi)
			if !ok {
				continue
			}
			eligible, truth := groundTruth(w, spec.Op, spec.Band)
			opts := ops.AggregateOptions{
				Anycast:    ops.DefaultAnycastOptions(),
				Flavor:     spec.Flavor,
				Eligible:   eligible,
				Truth:      truth,
				Redundancy: spec.Redundancy,
			}
			id, err := w.Aggregate(initiator, spec.Op, spec.Band.Lo, spec.Band.Hi, opts)
			if err != nil {
				return AggregateResult{}, fmt.Errorf("exp: initiating aggregate: %w", err)
			}
			sent = append(sent, id)
			w.RunFor(spec.Gap)
		}
		w.RunFor(spec.Settle)
	}
	col := w.Collector()
	for _, id := range sent {
		rec, ok := col.Aggregate(id)
		if !ok {
			continue
		}
		res.Sent++
		res.Accuracies = append(res.Accuracies, rec.Accuracy())
		res.Coverages = append(res.Coverages, rec.Coverage())
		if rec.Done {
			res.Done++
			res.Depths = append(res.Depths, rec.TreeDepth())
			res.Latencies = append(res.Latencies, rec.Latency())
			res.Divergences = append(res.Divergences, rec.Divergence)
		}
	}
	rej1, forgRej1, forgAcc1 := col.AggCounters()
	res.RejectedPartials = rej1 - rej0
	res.ForgeryRejected = forgRej1 - forgRej0
	res.ForgeryAccepted = forgAcc1 - forgAcc0
	return res, nil
}
