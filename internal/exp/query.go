package exp

import (
	"avmem/internal/audit"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
)

// This file is the ground-truth query surface of a deployment: figure
// runners and the scenario engine read the world through it instead of
// reaching into the wiring.

// Hosts returns all host identifiers.
func (w *World) Hosts() []ids.NodeID { return w.hosts }

// Membership returns the membership state of a node (nil if unknown).
func (w *World) Membership(id ids.NodeID) *core.Membership {
	h := w.Trace.HostIndex(id)
	if h < 0 {
		return nil
	}
	return w.members[h]
}

// Router returns the router of a node (nil if unknown).
func (w *World) Router(id ids.NodeID) *ops.Router {
	h := w.Trace.HostIndex(id)
	if h < 0 {
		return nil
	}
	return w.routers[h]
}

// Online reports whether a node is online at the current virtual time
// (churn trace overlaid with scenario-forced outages).
func (w *World) Online(id ids.NodeID) bool { return w.nodeOnline(id) }

// OnlineHosts returns all currently online host identifiers.
func (w *World) OnlineHosts() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(w.hosts)/2)
	for h, id := range w.hosts {
		if w.onlineAt(h) {
			out = append(out, id)
		}
	}
	return out
}

// TrueAvailability returns the noiseless long-term availability of a
// node at the current virtual time (the smoothed estimator an ideal
// monitor reports, regardless of configured monitor noise). Experiments
// use it as ground truth for bands, targets, and eligibility.
func (w *World) TrueAvailability(id ids.NodeID) float64 {
	h := w.Trace.HostIndex(id)
	if h < 0 {
		return 0
	}
	return w.trueAvailabilityIdx(h)
}

// trueAvailabilityIdx is TrueAvailability keyed by host index, memoized
// per epoch: the trace fold behind it is O(epochs) per call and probe
// helpers issue it O(hosts) times per query.
func (w *World) trueAvailabilityIdx(h int) float64 {
	e := w.Trace.EpochAt(w.Sim.Now())
	if e != w.avEpoch {
		for i := range w.avValid {
			w.avValid[i] = false
		}
		w.avEpoch = e
	}
	if !w.avValid[h] {
		w.avMemo[h] = w.Trace.SmoothedAvailability(h, e)
		w.avValid[h] = true
	}
	return w.avMemo[h]
}

// OnlineInBand returns online nodes whose true availability lies in
// [lo, hi).
func (w *World) OnlineInBand(lo, hi float64) []ids.NodeID {
	out := make([]ids.NodeID, 0, 64)
	for h, id := range w.hosts {
		if !w.onlineAt(h) {
			continue
		}
		av := w.trueAvailabilityIdx(h)
		if av >= lo && av < hi {
			out = append(out, id)
		}
	}
	return out
}

// EligibleFor counts online nodes whose true availability lies inside
// the operation target — the reliability/spam denominator.
func (w *World) EligibleFor(t ops.Target) int {
	n := 0
	for h := range w.hosts {
		if w.onlineAt(h) && t.Contains(w.trueAvailabilityIdx(h)) {
			n++
		}
	}
	return n
}

// PickInitiator selects a random online node from the availability band
// [lo, hi); ok is false when the band is empty.
func (w *World) PickInitiator(lo, hi float64) (ids.NodeID, bool) {
	band := w.OnlineInBand(lo, hi)
	if len(band) == 0 {
		return ids.Nil, false
	}
	return band[w.Sim.Rand().Intn(len(band))], true
}

// CoarseView implements Deployment: the node's central-shuffle view.
func (w *World) CoarseView(id ids.NodeID) []ids.NodeID {
	return w.Shuffle.View(id)
}

// Adversaries implements Deployment.
func (w *World) Adversaries() []ids.NodeID { return w.adv.cohort() }

// EngagedAdversaries implements Deployment.
func (w *World) EngagedAdversaries() []ids.NodeID { return w.adv.engagedCohort() }

// SetAdversariesActive implements Deployment.
func (w *World) SetAdversariesActive(active bool) { w.adv.setActive(active) }

// AuditTrail implements Deployment.
func (w *World) AuditTrail() *audit.Trail { return w.trail }

// Auditor returns host id's audit layer (nil if unknown or auditing is
// off) — harnesses inspect suspicion and local blacklists through it.
func (w *World) Auditor(id ids.NodeID) *audit.Auditor {
	return w.auditorAt(w.Trace.HostIndex(id))
}

// MeanDegree returns the mean AVMEM neighbor count across online nodes
// (used to match the random-overlay baseline's degree in Figure 10).
func (w *World) MeanDegree() float64 {
	total, online := 0, 0
	for h := range w.hosts {
		if !w.onlineAt(h) {
			continue
		}
		online++
		total += w.members[h].Size()
	}
	if online == 0 {
		return 0
	}
	return float64(total) / float64(online)
}
