package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"avmem/internal/adversary"
	"avmem/internal/audit"
	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/runtime"
	"avmem/internal/sim"
	"avmem/internal/trace"
)

// This file is the deployment wiring: offline system statistics,
// predicate and monitor assembly, per-node installation, and the
// periodic protocol drivers. The scenario layer perturbs a running
// deployment through ForceOffline and SetMonitorNoise.

// estimatePDF computes the offline system statistics. The predicate PDF
// is the availability distribution of the *online* population — what a
// crawler sampling live nodes measures, and what Theorem 1's proof
// assumes (E[online nodes in da] = N*·p(a)·da). A host with
// availability a is online a fraction a of the time, so it contributes
// weight a to its availability bucket.
//
// Discretization is deliberately coarse (the paper: "a discretized PDF
// distribution created from a small sample set"): a fine-grained
// empirical PDF over ~10³ hosts has holes in its thin tails, and a hole
// means near-zero density, which blows the I.B threshold up to 1 for
// any node whose running availability estimate sweeps through it.
// Coarse buckets plus mild Laplace smoothing keep every density honest.
func estimatePDF(tr *trace.Trace) (*avdist.PDF, error) {
	avail := tr.SmoothedAvailabilities(tr.Epochs() - 1)
	buckets := tr.Hosts() / 25
	if buckets < 10 {
		buckets = 10
	}
	if buckets > 50 {
		buckets = 50
	}
	weights := make([]float64, buckets)
	var total float64
	for _, a := range avail {
		b := int(a * float64(len(weights)))
		if b >= len(weights) {
			b = len(weights) - 1
		}
		weights[b] += a
		total += a
	}
	const smooth = 0.05
	for b := range weights {
		weights[b] += smooth * total / float64(len(weights))
	}
	pdf, err := avdist.FromWeights(weights)
	if err != nil {
		return nil, fmt.Errorf("exp: estimating PDF: %w", err)
	}
	return pdf, nil
}

// buildPredicate assembles the paper's default predicate (I.B + II.B
// with a memoized horizontal threshold) unless the config overrides it.
// The threshold memo is returned alongside (nil for overridden
// predicates) so a thread-parallel world can mark it Shared.
func buildPredicate(cfg WorldConfig, pdf *avdist.PDF, nStar float64) (*core.Predicate, *core.CachedByX, error) {
	if cfg.Predicate != nil {
		return cfg.Predicate, nil, nil
	}
	hs, err := core.NewCachedByX(core.LogConstantHorizontal{
		C2: cfg.C2, NStar: nStar, Epsilon: cfg.Epsilon, PDF: pdf,
	})
	if err != nil {
		return nil, nil, err
	}
	pred, err := core.NewPredicate(cfg.Epsilon, hs,
		core.LogVertical{C1: cfg.C1, NStar: nStar, PDF: pdf})
	if err != nil {
		return nil, nil, err
	}
	return pred, hs, nil
}

// switchMonitor is the monitoring service every node actually holds: a
// stable indirection whose inner service the scenario layer can swap at
// run time (monitor-degradation ramps) without rewiring memberships.
// It forwards the indexed fast path when the inner service supports it
// (innerIdx is refreshed on every swap), falling back to an identifier
// lookup through the host table otherwise.
type switchMonitor struct {
	inner    avmon.Service
	innerIdx avmon.IndexedService // nil when inner is not indexed
	hosts    []ids.NodeID
	// stable reports that the current inner service answers queries as
	// pure, epoch-constant reads (the noiseless oracle) — the gate for
	// discovery's per-epoch rejection cache. Noise wraps and live ping
	// overlays clear it.
	stable bool
}

var _ avmon.IndexedService = (*switchMonitor)(nil)

// swap replaces the inner service, re-deriving the indexed fast path.
func (s *switchMonitor) swap(svc avmon.Service) {
	s.inner = svc
	s.innerIdx, _ = svc.(avmon.IndexedService)
}

// Availability implements avmon.Service.
func (s *switchMonitor) Availability(id ids.NodeID) (float64, bool) {
	return s.inner.Availability(id)
}

// AvailabilityIdx implements avmon.IndexedService.
func (s *switchMonitor) AvailabilityIdx(h int) (float64, bool) {
	if s.innerIdx != nil {
		return s.innerIdx.AvailabilityIdx(h)
	}
	if h < 0 || h >= len(s.hosts) {
		return 0, false
	}
	return s.inner.Availability(s.hosts[h])
}

// monitorStack is the monitoring plumbing both deployment engines (the
// simulated World and the memnet Cluster) own: the switchable service
// handed to every node, the noiseless base service underneath, and the
// clock/randomness a noise layer needs.
type monitorStack struct {
	monitor    *switchMonitor
	base       avmon.Service
	baseStable bool // base answers pure epoch-constant reads (oracle)
	now        func() time.Duration
	rng        *rand.Rand
}

// buildMonitorStack wires the monitoring service: oracle by default,
// optionally noisy/stale, or the full AVMON-style distributed estimator
// — always behind the switchMonitor indirection. sched carries the
// engine's virtual clock, randomness, and the periodic tick the
// distributed monitor's ping overlay runs on.
func buildMonitorStack(cfg WorldConfig, tr *trace.Trace, hosts []ids.NodeID, sched *sim.World,
	nodeOnline func(ids.NodeID) bool, onlineAt func(int) bool) (*monitorStack, error) {
	var base avmon.Service
	if cfg.DistributedMonitor {
		expected := cfg.ExpectedMonitors
		if expected == 0 {
			expected = 8
		}
		dist, err := avmon.NewDistributed(hosts, expected, nodeOnline, 0)
		if err != nil {
			return nil, err
		}
		// hosts is in trace-index order, so the monitor's host indexes
		// coincide with the deployment's liveness indexes.
		dist.UseIndexedLiveness(onlineAt)
		// One event per ping period covers the whole population — the
		// monitoring overlay's cohort tick.
		if err := sched.Every(0, cfg.ProtocolPeriod, nil, dist.TickAll); err != nil {
			return nil, err
		}
		base = dist
	} else {
		oracle, err := avmon.NewOracle(tr, sched.Now)
		if err != nil {
			return nil, err
		}
		base = oracle
	}
	s := &monitorStack{
		monitor:    &switchMonitor{hosts: hosts},
		base:       base,
		baseStable: !cfg.DistributedMonitor,
		now:        sched.Now,
		rng:        sched.Rand(),
	}
	s.monitor.swap(base)
	s.monitor.stable = s.baseStable
	if cfg.MonitorErr > 0 || cfg.MonitorStaleness > 0 {
		if err := s.setNoise(cfg.MonitorErr, cfg.MonitorStaleness); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// setNoise rewraps the base monitoring service with a fresh noise layer
// of the given error half-width and staleness, effective for every
// subsequent query in the deployment. Zero for both restores the
// noiseless base service.
func (s *monitorStack) setNoise(maxErr float64, staleness time.Duration) error {
	if maxErr == 0 && staleness == 0 {
		s.monitor.swap(s.base)
		s.monitor.stable = s.baseStable
		return nil
	}
	noisy, err := avmon.NewNoisy(s.base, maxErr, staleness, s.now, s.rng)
	if err != nil {
		return err
	}
	s.monitor.swap(noisy)
	s.monitor.stable = false
	return nil
}

// SetMonitorNoise swaps the deployment's monitor-noise layer; scenario
// monitor-degradation ramps call this mid-run. A noise layer draws from
// a shared RNG on every query, which lanes cannot do concurrently, so
// installing one in a thread-parallel world permanently falls the
// engine back to serial merged execution (still deterministic — the
// fallback point is itself a pure function of the scenario).
func (w *World) SetMonitorNoise(maxErr float64, staleness time.Duration) error {
	if err := w.mon.setNoise(maxErr, staleness); err != nil {
		return err
	}
	if w.parallel && !w.mon.monitor.stable {
		w.Sim.DisableParallel()
	}
	return nil
}

// ForceOffline injects an outage: id is treated as offline by the
// network, the shuffling service, the monitor overlay, and the protocol
// drivers until the given virtual time, regardless of its churn trace.
// Scenario churn bursts call this; the trace resumes control when the
// outage lifts. A sweep event scheduled at the lift time clears the
// slot, so liveness reads never mutate state (they must be reentrant:
// the parallel scenario runner executes many worlds concurrently and a
// single world queries liveness from deep inside delivery callbacks).
func (w *World) ForceOffline(id ids.NodeID, until time.Duration) {
	if until <= w.Sim.Now() {
		return
	}
	h := w.Trace.HostIndex(id)
	if h < 0 {
		return
	}
	w.forcedDownUntil[h] = until
	w.Sim.At(until, func() {
		// Clear only if no later ForceOffline superseded this outage.
		if w.forcedDownUntil[h] == until {
			w.forcedDownUntil[h] = 0
		}
	})
}

// onlineAt is the hot-path liveness check, by trace host index: the
// churn trace overlaid with scenario-forced outages. Pure read — two
// array probes — and therefore reentrant.
func (w *World) onlineAt(h int) bool {
	now := w.Sim.Now()
	if w.forcedDownUntil[h] > now {
		return false
	}
	return w.Trace.UpAtIndex(h, now)
}

// nodeOnline is the id-keyed liveness check for API-boundary callers;
// hot paths resolve the host index once and use onlineAt.
func (w *World) nodeOnline(id ids.NodeID) bool {
	h := w.Trace.HostIndex(id)
	return h >= 0 && w.onlineAt(h)
}

// installNodes creates per-node state: membership, router, network
// handler, and the bootstrap join. Each node's trace row index is
// resolved here, once, and captured by its liveness closure.
func (w *World) installNodes(pred *core.Predicate) error {
	// One band-census estimator shared by every router: N* × the
	// availability PDF's interval mass, arming the PDF sanity checks on
	// merged aggregation partials.
	pdf, nstar := w.PDF, w.NStar
	bandCensus := func(lo, hi float64) float64 {
		return nstar * pdf.IntervalMass(lo, math.Min(hi, 1))
	}
	for h, id := range w.hosts {
		// In a thread-parallel world every per-node dependency must be
		// lane-affine: the node's clock is its lane clock, its timers land
		// on its lane's heap, and its randomness is its lane's stream.
		var sched runtime.Scheduler = w.Sim
		clock := w.Sim.Now
		rng := w.Sim.Rand()
		if w.parallel {
			hs := w.Sim.HostScheduler(int32(h))
			sched = hs
			clock = hs.Now
			rng = w.Sim.LaneRand(int32(h))
		}
		memCfg := core.Config{
			Predicate:     pred,
			Monitor:       w.Monitor,
			Hashes:        w.Hashes,
			Clock:         clock,
			VerifyCushion: w.Cfg.Cushion,
			PairIdx:       w.PairIdx,
			SelfIdx:       int32(h),
			MonitorIdx:    w.mon.monitor,
			MonitorEpoch:  w.monitorEpoch,
		}
		var auditor *audit.Auditor
		if w.auditors != nil {
			slot := &w.members[h] // the auditor's SelfInfo resolves lazily
			a, err := audit.New(audit.Config{
				Self:      id,
				Params:    *w.Cfg.Audit,
				Predicate: pred,
				Monitor:   w.Monitor,
				SelfInfo:  func() core.NodeInfo { return (*slot).SelfInfo() },
				Clock:     w.Sim.Now,
				Hashes:    w.Hashes,
				Trail:     w.trail,
				Obs:       w.auditIns,
			})
			if err != nil {
				return err
			}
			auditor = a
			w.auditors[h] = a
			memCfg.Blocked = a.Blocked
		}
		m, err := core.NewMembership(id, memCfg)
		if err != nil {
			return err
		}
		w.members[h] = m

		h := h
		env, err := runtime.NewVirtual(runtime.VirtualConfig{
			Self:      id,
			Scheduler: sched,
			Fabric:    runtime.NetFabric(w.Net),
			Online:    func() bool { return w.onlineAt(h) },
			RNG:       rng,
		})
		if err != nil {
			return err
		}
		// The adversary interceptor wraps the env, so a Byzantine host's
		// router misbehaves on the wire exactly like a Byzantine live
		// node (Wrap is the identity for honest hosts).
		wenv := adversary.Wrap(env, w.adv.behavior(h))
		routerCfg := ops.RouterConfig{
			Membership:    m,
			Env:           wenv,
			Collector:     w.Col,
			VerifyInbound: w.Cfg.VerifyInbound,
			Hashes:        w.Hashes,
			BandCensus:    bandCensus,
			OpTrace:       w.Cfg.OpTrace,
		}
		if auditor != nil {
			routerCfg.Auditor = auditor
		}
		r, err := ops.NewRouter(routerCfg)
		if err != nil {
			return err
		}
		w.routers[h] = r
		if err := wenv.Register(r.HandleMessage); err != nil {
			return err
		}

		w.Shuffle.Join(id, w.randomSeeds(id, 4))
	}
	return nil
}

// driverBuckets is the cohort count per protocol period: per-node
// stagger offsets are bucketed to period/driverBuckets granularity, so
// one recurring event drives a whole cohort instead of one event (and
// one closure chain) per node. 64 buckets keep the offered load spread
// to ≤ 1.6% of the period per tick.
const driverBuckets = 64

// startDrivers schedules the periodic protocol work as cohort ticks:
// every node draws a stagger offset exactly as before, but nodes whose
// offsets land in the same bucket share one recurring event that sweeps
// their host indexes. The system still does not tick in lockstep — the
// stagger survives at bucket granularity — while the scheduler carries
// 2×driverBuckets periodic events instead of 2×N.
func (w *World) startDrivers() error {
	cfg := w.Cfg
	disc := make([][]int32, driverBuckets)
	refresh := make([][]int32, driverBuckets)
	for h := range w.hosts {
		d := w.Sim.Rand().Int63n(int64(cfg.ProtocolPeriod))
		b := int(d * driverBuckets / int64(cfg.ProtocolPeriod))
		disc[b] = append(disc[b], int32(h))
		r := w.Sim.Rand().Int63n(int64(cfg.RefreshPeriod))
		rb := int(r * driverBuckets / int64(cfg.RefreshPeriod))
		refresh[rb] = append(refresh[rb], int32(h))
	}
	if w.parallel {
		return w.startDriversParallel(disc, refresh)
	}
	for b, cohort := range disc {
		if len(cohort) == 0 {
			continue
		}
		cohort := cohort
		offset := time.Duration(int64(b) * int64(cfg.ProtocolPeriod) / driverBuckets)
		if err := w.Sim.Every(offset, cfg.ProtocolPeriod, nil, func() {
			w.discoverCohort(cohort)
		}); err != nil {
			return err
		}
	}
	for b, cohort := range refresh {
		if len(cohort) == 0 {
			continue
		}
		cohort := cohort
		offset := time.Duration(int64(b) * int64(cfg.RefreshPeriod) / driverBuckets)
		if err := w.Sim.Every(offset, cfg.RefreshPeriod, nil, func() {
			for _, h := range cohort {
				if w.onlineAt(int(h)) {
					w.members[h].Refresh()
				}
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// startDriversParallel schedules the cohort drivers of a thread-parallel
// world: the stagger draws above are identical to the serial engine's,
// but each (bucket, lane) sub-cohort gets its own lane-affine periodic
// event (EveryHost), so every driver tick runs inside its lane's slice
// of the window and only ever touches lane-owned node state. Shared
// shuffle mutations are funneled through Sim.Defer via per-host
// preallocated closures.
func (w *World) startDriversParallel(disc, refresh [][]int32) error {
	cfg := w.Cfg
	w.tickFns = make([]func(), len(w.hosts))
	w.rejoinFns = make([]func(), len(w.hosts))
	for h := range w.hosts {
		h := h
		id := w.hosts[h]
		w.tickFns[h] = func() { w.Shuffle.TickIdx(h) }
		w.rejoinFns[h] = func() { w.Shuffle.Join(id, w.randomSeeds(id, 4)) }
	}
	lanes := cfg.Shards
	for b, cohort := range disc {
		offset := time.Duration(int64(b) * int64(cfg.ProtocolPeriod) / driverBuckets)
		for _, sub := range splitByLane(cohort, lanes) {
			sub := sub
			lane := int(sub[0]) % lanes
			err := w.Sim.EveryHost(offset, cfg.ProtocolPeriod, sub[0], nil, func() {
				w.discoverCohortLane(lane, sub)
			})
			if err != nil {
				return err
			}
		}
	}
	for b, cohort := range refresh {
		offset := time.Duration(int64(b) * int64(cfg.RefreshPeriod) / driverBuckets)
		for _, sub := range splitByLane(cohort, lanes) {
			sub := sub
			err := w.Sim.EveryHost(offset, cfg.RefreshPeriod, sub[0], nil, func() {
				for _, h := range sub {
					if w.onlineAt(int(h)) {
						w.members[h].Refresh()
					}
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// splitByLane partitions a cohort of host indexes by owning lane
// (host mod lanes), dropping empty groups; order inside each group
// preserves the cohort order.
func splitByLane(cohort []int32, lanes int) [][]int32 {
	groups := make([][]int32, lanes)
	for _, h := range cohort {
		l := int(h) % lanes
		groups[l] = append(groups[l], h)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// laneScratch is one lane's private discovery scratch buffers (the
// parallel analogue of World.viewScratch/idxScratch).
type laneScratch struct {
	view []ids.NodeID
	idx  []int32
}

// discoverCohortLane is discoverCohort for one lane's slice of a cohort,
// running inside a parallel window on the lane's worker. Reading a
// node's own view and resolving its entries is lane-safe (views only
// mutate at barriers); the CYCLON exchange and rejoin bootstrap touch
// other nodes' views and the world RNG, so they are deferred to the
// window barrier, where they run serially in deterministic (at, seq)
// order. Discovery therefore consumes the pre-tick view — a relaxed but
// deterministic schedule (DESIGN.md §14).
func (w *World) discoverCohortLane(lane int, cohort []int32) {
	sc := &w.laneScratch[lane]
	for _, h := range cohort {
		if !w.onlineAt(int(h)) {
			continue
		}
		if w.Shuffle.ViewLenIdx(int(h)) == 0 {
			// Rejoin after an outage emptied the view: bootstrap anew.
			w.Sim.Defer(h, w.rejoinFns[h])
		}
		w.Sim.Defer(h, w.tickFns[h])
		sc.view, sc.idx =
			w.Shuffle.AppendViewCand(sc.view[:0], sc.idx[:0], int(h))
		w.members[h].DiscoverIdx(sc.view, sc.idx)
	}
}

// discoverCohort runs one discovery/shuffle round for every online node
// of a cohort, reusing the world's view scratch buffer across nodes.
func (w *World) discoverCohort(cohort []int32) {
	for _, h := range cohort {
		if !w.onlineAt(int(h)) {
			continue
		}
		if w.Shuffle.ViewLenIdx(int(h)) == 0 {
			// Rejoin after an outage emptied the view: bootstrap anew.
			id := w.hosts[h]
			w.Shuffle.Join(id, w.randomSeeds(id, 4))
		}
		w.Shuffle.TickIdx(int(h))
		w.viewScratch, w.idxScratch =
			w.Shuffle.AppendViewCand(w.viewScratch[:0], w.idxScratch[:0], int(h))
		w.members[h].DiscoverIdx(w.viewScratch, w.idxScratch)
	}
}

// randomSeeds picks up to n distinct random hosts other than self — the
// bootstrap-server story for (re)joining nodes. Draws are rejection-
// sampled with a bounded attempt budget (duplicates and self are
// rejected); if the budget runs dry — tiny populations — the remainder
// is filled by a deterministic scan, so the call can neither return the
// same host twice nor spin.
func (w *World) randomSeeds(self ids.NodeID, n int) []ids.NodeID {
	return pickSeeds(w.Sim.Rand(), w.hosts, self, n)
}

// pickSeeds picks up to n distinct random hosts other than self from
// hosts, using rng; both deployment engines bootstrap (re)joining nodes
// through it.
func pickSeeds(rng *rand.Rand, hosts []ids.NodeID, self ids.NodeID, n int) []ids.NodeID {
	if max := len(hosts) - 1; n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	seeds := make([]ids.NodeID, 0, n)
	contains := func(id ids.NodeID) bool {
		for _, s := range seeds {
			if s == id {
				return true
			}
		}
		return false
	}
	for attempts := 8 * n; len(seeds) < n && attempts > 0; attempts-- {
		cand := hosts[rng.Intn(len(hosts))]
		if cand != self && !contains(cand) {
			seeds = append(seeds, cand)
		}
	}
	for _, cand := range hosts {
		if len(seeds) >= n {
			break
		}
		if cand != self && !contains(cand) {
			seeds = append(seeds, cand)
		}
	}
	return seeds
}
