package exp

import (
	"fmt"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/trace"
)

// This file is the deployment wiring: offline system statistics,
// predicate and monitor assembly, per-node installation, and the
// periodic protocol drivers. The scenario layer perturbs a running
// deployment through ForceOffline and SetMonitorNoise.

// estimatePDF computes the offline system statistics. The predicate PDF
// is the availability distribution of the *online* population — what a
// crawler sampling live nodes measures, and what Theorem 1's proof
// assumes (E[online nodes in da] = N*·p(a)·da). A host with
// availability a is online a fraction a of the time, so it contributes
// weight a to its availability bucket.
//
// Discretization is deliberately coarse (the paper: "a discretized PDF
// distribution created from a small sample set"): a fine-grained
// empirical PDF over ~10³ hosts has holes in its thin tails, and a hole
// means near-zero density, which blows the I.B threshold up to 1 for
// any node whose running availability estimate sweeps through it.
// Coarse buckets plus mild Laplace smoothing keep every density honest.
func estimatePDF(tr *trace.Trace) (*avdist.PDF, error) {
	avail := tr.SmoothedAvailabilities(tr.Epochs() - 1)
	buckets := tr.Hosts() / 25
	if buckets < 10 {
		buckets = 10
	}
	if buckets > 50 {
		buckets = 50
	}
	weights := make([]float64, buckets)
	var total float64
	for _, a := range avail {
		b := int(a * float64(len(weights)))
		if b >= len(weights) {
			b = len(weights) - 1
		}
		weights[b] += a
		total += a
	}
	const smooth = 0.05
	for b := range weights {
		weights[b] += smooth * total / float64(len(weights))
	}
	pdf, err := avdist.FromWeights(weights)
	if err != nil {
		return nil, fmt.Errorf("exp: estimating PDF: %w", err)
	}
	return pdf, nil
}

// buildPredicate assembles the paper's default predicate (I.B + II.B
// with a memoized horizontal threshold) unless the config overrides it.
func buildPredicate(cfg WorldConfig, pdf *avdist.PDF, nStar float64) (*core.Predicate, error) {
	if cfg.Predicate != nil {
		return cfg.Predicate, nil
	}
	hs, err := core.NewCachedByX(core.LogConstantHorizontal{
		C2: cfg.C2, NStar: nStar, Epsilon: cfg.Epsilon, PDF: pdf,
	})
	if err != nil {
		return nil, err
	}
	return core.NewPredicate(cfg.Epsilon, hs,
		core.LogVertical{C1: cfg.C1, NStar: nStar, PDF: pdf})
}

// switchMonitor is the monitoring service every node actually holds: a
// stable indirection whose inner service the scenario layer can swap at
// run time (monitor-degradation ramps) without rewiring memberships.
type switchMonitor struct{ inner avmon.Service }

var _ avmon.Service = (*switchMonitor)(nil)

// Availability implements avmon.Service.
func (s *switchMonitor) Availability(id ids.NodeID) (float64, bool) {
	return s.inner.Availability(id)
}

// buildMonitor wires the monitoring service: oracle by default,
// optionally noisy/stale, or the full AVMON-style distributed
// estimator — always behind the switchMonitor indirection.
func (w *World) buildMonitor() error {
	cfg := w.Cfg
	var base avmon.Service
	if cfg.DistributedMonitor {
		expected := cfg.ExpectedMonitors
		if expected == 0 {
			expected = 8
		}
		dist, err := avmon.NewDistributed(w.hosts, expected, w.nodeOnline, 0)
		if err != nil {
			return err
		}
		if err := w.Sim.Every(0, cfg.ProtocolPeriod, nil, dist.TickAll); err != nil {
			return err
		}
		base = dist
	} else {
		oracle, err := avmon.NewOracle(w.Trace, w.Sim.Now)
		if err != nil {
			return err
		}
		base = oracle
	}
	w.baseMonitor = base
	w.monitor = &switchMonitor{inner: base}
	w.Monitor = w.monitor
	if cfg.MonitorErr > 0 || cfg.MonitorStaleness > 0 {
		if err := w.SetMonitorNoise(cfg.MonitorErr, cfg.MonitorStaleness); err != nil {
			return err
		}
	}
	return nil
}

// SetMonitorNoise rewraps the base monitoring service with a fresh
// noise layer of the given error half-width and staleness, effective
// for every subsequent query in the deployment. Zero for both restores
// the noiseless base service. Scenario monitor-degradation ramps call
// this mid-run.
func (w *World) SetMonitorNoise(maxErr float64, staleness time.Duration) error {
	if maxErr == 0 && staleness == 0 {
		w.monitor.inner = w.baseMonitor
		return nil
	}
	noisy, err := avmon.NewNoisy(w.baseMonitor, maxErr, staleness, w.Sim.Now, w.Sim.Rand())
	if err != nil {
		return err
	}
	w.monitor.inner = noisy
	return nil
}

// ForceOffline injects an outage: id is treated as offline by the
// network, the shuffling service, the monitor overlay, and the protocol
// drivers until the given virtual time, regardless of its churn trace.
// Scenario churn bursts call this; the trace resumes control when the
// outage lifts.
func (w *World) ForceOffline(id ids.NodeID, until time.Duration) {
	if until <= w.Sim.Now() {
		return
	}
	w.forcedDown[id] = until
}

// nodeOnline is the deployment-wide liveness check: the churn trace
// overlaid with scenario-forced outages.
func (w *World) nodeOnline(id ids.NodeID) bool {
	if until, ok := w.forcedDown[id]; ok {
		if w.Sim.Now() < until {
			return false
		}
		delete(w.forcedDown, id)
	}
	h := w.Trace.HostIndex(id)
	return h >= 0 && w.Trace.UpAt(h, w.Sim.Now())
}

// installNodes creates per-node state: membership, router, network
// handler, and the bootstrap join.
func (w *World) installNodes(pred *core.Predicate) error {
	for _, id := range w.hosts {
		m, err := core.NewMembership(id, core.Config{
			Predicate:     pred,
			Monitor:       w.Monitor,
			Hashes:        w.Hashes,
			Clock:         w.Sim.Now,
			VerifyCushion: w.Cfg.Cushion,
		})
		if err != nil {
			return err
		}
		w.members[id] = m

		self := id
		env, err := ops.NewSimEnv(w.Sim, w.Net, id, func() bool { return w.nodeOnline(self) })
		if err != nil {
			return err
		}
		r, err := ops.NewRouter(ops.RouterConfig{
			Membership:    m,
			Env:           env,
			Collector:     w.Col,
			VerifyInbound: w.Cfg.VerifyInbound,
		})
		if err != nil {
			return err
		}
		w.routers[id] = r
		w.Net.Register(id, r.HandleMessage)

		w.Shuffle.Join(id, w.randomSeeds(id, 4))
	}
	return nil
}

// startDrivers schedules the periodic protocol work, staggered per node
// so the system does not tick in lockstep.
func (w *World) startDrivers() error {
	cfg := w.Cfg
	for _, id := range w.hosts {
		self := id
		discOffset := time.Duration(w.Sim.Rand().Int63n(int64(cfg.ProtocolPeriod)))
		if err := w.Sim.Every(discOffset, cfg.ProtocolPeriod, nil, func() {
			if !w.nodeOnline(self) {
				return
			}
			if len(w.Shuffle.View(self)) == 0 {
				// Rejoin after an outage emptied the view: bootstrap anew.
				w.Shuffle.Join(self, w.randomSeeds(self, 4))
			}
			w.Shuffle.Tick(self)
			w.members[self].Discover(w.Shuffle.View(self))
		}); err != nil {
			return err
		}
		refOffset := time.Duration(w.Sim.Rand().Int63n(int64(cfg.RefreshPeriod)))
		if err := w.Sim.Every(refOffset, cfg.RefreshPeriod, nil, func() {
			if !w.nodeOnline(self) {
				return
			}
			w.members[self].Refresh()
		}); err != nil {
			return err
		}
	}
	return nil
}

// randomSeeds picks up to n random hosts other than self — the
// bootstrap-server story for (re)joining nodes.
func (w *World) randomSeeds(self ids.NodeID, n int) []ids.NodeID {
	seeds := make([]ids.NodeID, 0, n)
	for len(seeds) < n && len(w.hosts) > 1 {
		cand := w.hosts[w.Sim.Rand().Intn(len(w.hosts))]
		if cand != self {
			seeds = append(seeds, cand)
		}
	}
	return seeds
}
