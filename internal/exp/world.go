// Package exp is the deployment-engine layer and experiment harness.
// Two engines implement the shared Deployment surface (deployment.go):
// World assembles a deployment inside the discrete-event simulator
// (wiring, clocks, cohort protocol drivers — deploy.go), and Cluster
// deploys real node.Node agents on a deterministic in-process memnet
// (cluster.go). Both answer ground-truth queries (query.go), run the
// workload series and attack probes, and regenerate the figures of the
// paper's evaluation (§4) via one runner per figure. cmd/avmemsim
// exposes the figure runners and both scenario backends on the command
// line, internal/scenario drives arbitrary declarative scenarios on
// either engine, and bench_test.go wraps it all in testing.B
// benchmarks.
//
// Architecture: DESIGN.md §9 (deployment engines and the scenario
// layer).
package exp

import (
	"math"
	"time"

	"avmem/internal/audit"
	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/obs"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
	"avmem/internal/sim"
	"avmem/internal/trace"
)

// WorldConfig parameterizes a simulated AVMEM deployment. Zero fields
// take the paper's defaults (§4, and DESIGN.md §8).
type WorldConfig struct {
	// Seed drives all randomness in the world.
	Seed int64
	// Trace is the churn trace; nil generates the default Overnet-like
	// trace with this Seed.
	Trace *trace.Trace
	// Epsilon is the horizontal sliver half-width (default 0.1).
	Epsilon float64
	// C1, C2 are the predicate constants (default 1.0 each).
	C1, C2 float64
	// Predicate overrides the paper predicate entirely (e.g. the
	// random-overlay baseline of Figure 10). When set, Epsilon/C1/C2
	// are ignored.
	Predicate *core.Predicate
	// ViewSize is the coarse-view bound v (default √N, §3.1).
	ViewSize int
	// ShuffleLen is the CYCLON exchange size (default v/4, min 3).
	ShuffleLen int
	// ProtocolPeriod is the discovery/shuffle period (default 1 min).
	ProtocolPeriod time.Duration
	// RefreshPeriod is the refresh sub-protocol period (default 20 min).
	RefreshPeriod time.Duration
	// MonitorErr and MonitorStaleness wrap the availability oracle in a
	// Noisy layer when either is non-zero (drives Figures 5–6).
	MonitorErr       float64
	MonitorStaleness time.Duration
	// DistributedMonitor replaces the oracle with the AVMON-style
	// monitoring overlay: consistent hash-selected monitors ping their
	// targets every ProtocolPeriod and queries aggregate their
	// empirical estimates — the paper's actual deployment story.
	// Estimates start cold; allow extra warmup.
	DistributedMonitor bool
	// ExpectedMonitors is the mean monitors per target for the
	// distributed monitor (default 8).
	ExpectedMonitors float64
	// VerifyInbound makes every router verify senders (§4.1).
	VerifyInbound bool
	// Cushion is the verification cushion (§4.1; 0 or 0.1 in the paper).
	Cushion float64
	// Latency is the per-hop latency model (default U[20ms, 80ms]).
	Latency sim.LatencyModel
	// Shards partitions the simulator's event queue across this many
	// per-shard heaps merged in deterministic (at, seq) order; 0 or 1
	// keeps the single global heap. Any value produces bit-identical
	// output for a given (trace, seed) — see DESIGN.md §14.
	Shards int
	// ShardThreads > 1 executes the shard heaps on that many worker
	// threads inside conservative lookahead windows (DESIGN.md §14).
	// Output is a pure function of (trace, seed, Shards, Latency) —
	// bit-identical across runs and GOMAXPROCS — but follows a different
	// canonical event order than ShardThreads ≤ 1. The engine silently
	// stays serial when the configuration rules out windows: shards ≤ 1,
	// an unbounded latency model, a custom Predicate, the distributed
	// monitor, monitor noise, adversaries, or auditing.
	ShardThreads int
	// Audit, when non-nil, gives every node the receiving-side audit
	// layer (suspicion scores, blacklist, eviction).
	Audit *audit.Params
	// Adversary, when non-nil, makes a deterministic fraction of the
	// population misbehave (internal/adversary behaviors injected under
	// the Runtime/Env contract).
	Adversary *AdversaryConfig
	// Metrics, when non-nil, instruments the deployment (engine event
	// counters, op outcomes, audit verdicts) into this registry.
	// Determinism-neutral: enabling it cannot change scenario output.
	Metrics *obs.Registry
	// OpTrace, when non-nil, records causal op spans from every router
	// into this shared tracer. Determinism-neutral like Metrics.
	OpTrace *obs.Tracer
}

func (c *WorldConfig) applyDefaults() error {
	if c.Trace == nil {
		tr, err := trace.Generate(trace.DefaultGenConfig(c.Seed))
		if err != nil {
			return err
		}
		c.Trace = tr
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	// The paper leaves c1/c2 unstated; 3.0 calibrates the sliver sizes
	// to the scales of Figures 2(b,c) (VS median ≈ 15–20, HS up to ~30
	// at 442 online) and gives each node an expected ≥1 vertical
	// neighbor per 0.1-wide availability range, which Figure 7's
	// one-hop deliveries require.
	if c.C1 == 0 {
		c.C1 = 3
	}
	if c.C2 == 0 {
		c.C2 = 3
	}
	if c.ViewSize == 0 {
		c.ViewSize = int(math.Round(math.Sqrt(float64(c.Trace.Hosts()))))
	}
	if c.ViewSize < 4 {
		c.ViewSize = 4
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = c.ViewSize / 4
	}
	if c.ShuffleLen < 3 {
		c.ShuffleLen = 3
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	if c.ProtocolPeriod == 0 {
		c.ProtocolPeriod = time.Minute
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = 20 * time.Minute
	}
	if c.Latency == nil {
		c.Latency = sim.PaperLatency()
	}
	return nil
}

// World is a fully wired simulated AVMEM deployment: churn trace,
// monitoring and shuffling services, per-node membership and routers,
// and a shared collector. Deployment wiring lives in deploy.go, the
// ground-truth query surface in query.go.
type World struct {
	Cfg     WorldConfig
	Trace   *trace.Trace
	Sim     *sim.World
	Net     *sim.Network
	PDF     *avdist.PDF
	NStar   float64
	Monitor avmon.Service
	Shuffle *shuffle.Cyclon
	Hashes  *ids.HashCache
	Col     *ops.Collector

	// hosts, members, routers, and forcedDownUntil are parallel slices
	// keyed by trace host index: liveness, drivers, and deliveries run on
	// array probes, with a single id→index map (the trace's) at the API
	// boundary.
	hosts   []ids.NodeID
	members []*core.Membership
	routers []*ops.Router

	// adv is the Byzantine cohort (nil when honest); auditors and trail
	// are the audit layer (nil slices/pointer when auditing is off).
	adv      *advState
	auditors []*audit.Auditor
	trail    *audit.Trail
	// auditIns is the deployment-shared audit instrument set (nil when
	// Cfg.Metrics is nil).
	auditIns *audit.Instruments

	// mon is the monitoring plumbing: the stable indirection the whole
	// deployment queries plus the pre-noise base SetMonitorNoise rewraps.
	mon *monitorStack
	// forcedDownUntil[h] holds a scenario-injected outage: the virtual
	// time host h's outage lifts (zero = none). Reads are pure — expired
	// entries are swept by an event ForceOffline schedules, never by the
	// liveness check itself, so onlineAt is reentrant.
	forcedDownUntil []time.Duration
	// viewScratch and idxScratch are reused across cohort-tick discovery
	// calls (candidate identifiers and their dense host indexes).
	viewScratch []ids.NodeID
	idxScratch  []int32

	// parallel marks a world running the thread-parallel engine; the
	// fields below exist only then. laneScratch is the per-lane analogue
	// of viewScratch/idxScratch (each lane's discovery driver owns its
	// slot). tickFns/rejoinFns are per-host closures handed to Sim.Defer
	// — preallocated so cohort ticks stay allocation-free.
	parallel    bool
	laneScratch []laneScratch
	tickFns     []func()
	rejoinFns   []func()

	// PairIdx memoizes H(x,y) keyed by dense host-index pairs, shared by
	// every membership in the world.
	PairIdx *ids.PairIndexCache

	// avMemo/avValid memoize TrueAvailability per epoch (avEpoch): probe
	// helpers call it O(hosts) times per query, and the underlying trace
	// fold is O(epochs) per call.
	avMemo  []float64
	avValid []bool
	avEpoch int
}

// NewWorld assembles a deployment. The availability PDF handed to the
// predicates is computed from the trace's full-horizon availabilities —
// the "crawler-computed, communicated at pre-run-time" object of §2.1 —
// and N* is the trace's mean online population.
func NewWorld(cfg WorldConfig) (*World, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	tr := cfg.Trace
	w := &World{
		Cfg:             cfg,
		Trace:           tr,
		Sim:             sim.NewWorld(cfg.Seed),
		Hashes:          ids.NewHashCache(0),
		Col:             ops.NewCollector(),
		hosts:           tr.HostIDs(),
		members:         make([]*core.Membership, tr.Hosts()),
		routers:         make([]*ops.Router, tr.Hosts()),
		forcedDownUntil: make([]time.Duration, tr.Hosts()),
		avMemo:          make([]float64, tr.Hosts()),
		avValid:         make([]bool, tr.Hosts()),
		avEpoch:         -1,
	}
	if cfg.Shards > 1 {
		if err := w.Sim.SetShards(cfg.Shards); err != nil {
			return nil, err
		}
	}
	pairIdx, err := ids.NewPairIndexCache(w.hosts, 0)
	if err != nil {
		return nil, err
	}
	w.PairIdx = pairIdx
	pdf, err := estimatePDF(tr)
	if err != nil {
		return nil, err
	}
	w.PDF = pdf
	w.NStar = tr.MeanOnline()

	pred, hs, err := buildPredicate(cfg, w.PDF, w.NStar)
	if err != nil {
		return nil, err
	}
	// Thread-parallel execution: only configurations whose whole event
	// graph is lane-safe qualify (no custom predicate internals, no
	// mid-run RNG-drawing monitor layers, no adversary taps or audit
	// trails), and the latency model must guarantee a positive lookahead.
	if cfg.ShardThreads > 1 && cfg.Shards > 1 &&
		cfg.Predicate == nil && !cfg.DistributedMonitor &&
		cfg.MonitorErr == 0 && cfg.MonitorStaleness == 0 &&
		cfg.Adversary == nil && cfg.Audit == nil {
		if la := sim.LookaheadOf(cfg.Latency); la > 0 {
			if err := w.Sim.SetParallel(cfg.ShardThreads, la); err != nil {
				return nil, err
			}
			w.parallel = true
			w.laneScratch = make([]laneScratch, cfg.Shards)
			// The memo caches become cross-thread shared state.
			w.Hashes.Shared()
			w.PairIdx.Shared()
			hs.Shared()
		}
	}
	w.Net = sim.NewNetwork(w.Sim, cfg.Latency, w.nodeOnline, 0)
	w.Net.Bind(w.hosts, w.onlineAt)
	mon, err := buildMonitorStack(cfg, tr, w.hosts, w.Sim, w.nodeOnline, w.onlineAt)
	if err != nil {
		return nil, err
	}
	w.mon = mon
	if w.parallel {
		if o, ok := mon.base.(*avmon.Oracle); ok {
			// Prefill the availability memo at each epoch boundary so
			// window-time oracle queries are pure reads (the hook runs in
			// coordinator context before any lane starts).
			last := -2
			w.Sim.SetWindowHook(func(base time.Duration) {
				if e := tr.EpochAt(base); e != last {
					last = e
					o.Prefill(e)
				}
			})
		}
	}
	w.Monitor = mon.monitor
	if cfg.Metrics != nil {
		// Instrument after the engine topology (shards, parallel lanes)
		// is final: the lane instruments are sized from it.
		w.Sim.Instrument(cfg.Metrics)
		w.Col.Instrument(cfg.Metrics)
		w.auditIns = audit.NewInstruments(cfg.Metrics)
	}
	cyc, err := shuffle.NewCyclon(cfg.ViewSize, cfg.ShuffleLen, w.nodeOnline, w.Sim.Rand())
	if err != nil {
		return nil, err
	}
	cyc.UseIndex(tr.HostIndex, w.onlineAt)
	w.Shuffle = cyc
	adv, err := buildAdversaries(cfg.Adversary, tr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w.adv = adv
	if cfg.Audit != nil {
		w.trail = audit.NewTrail()
		w.auditors = make([]*audit.Auditor, tr.Hosts())
	}
	if err := w.installNodes(pred); err != nil {
		return nil, err
	}
	if w.adv != nil || w.trail != nil {
		// The central shuffle gets the same attack surface and audit
		// seam real shuffle messages give the live engine.
		w.Shuffle.SetTap(shuffleTap(w.adv, tr.HostIndex,
			func(h int) float64 { return w.members[h].SelfClaim() },
			w.auditorAt))
	}
	if err := w.startDrivers(); err != nil {
		return nil, err
	}
	return w, nil
}

// monitorEpoch implements core.Config.MonitorEpoch: the trace epoch,
// stable only while the active monitor is the noiseless oracle (noise
// wraps draw RNG per query and ping overlays drift between queries, so
// discovery must not cache around them).
func (w *World) monitorEpoch() (int, bool) {
	if !w.mon.monitor.stable {
		return 0, false
	}
	return w.Trace.EpochAt(w.Sim.Now()), true
}

// auditorAt returns host h's audit layer (nil when auditing is off).
func (w *World) auditorAt(h int) *audit.Auditor {
	if w.auditors == nil || h < 0 || h >= len(w.auditors) {
		return nil
	}
	return w.auditors[h]
}

// Warmup advances the simulation by d (the paper warms up for 24 hours
// before taking measurements).
func (w *World) Warmup(d time.Duration) { w.Sim.Run(w.Sim.Now() + d) }

// RunFor advances the simulation by d.
func (w *World) RunFor(d time.Duration) { w.Sim.Run(w.Sim.Now() + d) }

// Stop releases the world's resources — the parallel engine's worker
// goroutines in particular. Idempotent; serial worlds need no teardown
// but callers should not have to care.
func (w *World) Stop() { w.Sim.Close() }

// NewRandomWorld builds the Figure-10 baseline: the same deployment but
// over a consistent random overlay (SCAMP/CYCLON-like) whose expected
// degree matches degree — typically the MeanDegree measured on the
// corresponding AVMEM world after warmup.
func NewRandomWorld(cfg WorldConfig, degree float64) (*World, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nStar := cfg.Trace.MeanOnline()
	pred, err := core.RandomPredicate(cfg.Epsilon, degree, nStar)
	if err != nil {
		return nil, err
	}
	cfg.Predicate = pred
	return NewWorld(cfg)
}
