// Package exp is the experiment harness: it assembles complete AVMEM
// deployments inside the discrete-event simulator and regenerates every
// figure of the paper's evaluation (§4). One runner exists per figure;
// cmd/avmemsim exposes them on the command line and bench_test.go wraps
// them in testing.B benchmarks.
package exp

import (
	"fmt"
	"math"
	"time"

	"avmem/internal/avdist"
	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/ops"
	"avmem/internal/shuffle"
	"avmem/internal/sim"
	"avmem/internal/trace"
)

// WorldConfig parameterizes a simulated AVMEM deployment. Zero fields
// take the paper's defaults (§4, and DESIGN.md §7).
type WorldConfig struct {
	// Seed drives all randomness in the world.
	Seed int64
	// Trace is the churn trace; nil generates the default Overnet-like
	// trace with this Seed.
	Trace *trace.Trace
	// Epsilon is the horizontal sliver half-width (default 0.1).
	Epsilon float64
	// C1, C2 are the predicate constants (default 1.0 each).
	C1, C2 float64
	// Predicate overrides the paper predicate entirely (e.g. the
	// random-overlay baseline of Figure 10). When set, Epsilon/C1/C2
	// are ignored.
	Predicate *core.Predicate
	// ViewSize is the coarse-view bound v (default √N, §3.1).
	ViewSize int
	// ShuffleLen is the CYCLON exchange size (default v/4, min 3).
	ShuffleLen int
	// ProtocolPeriod is the discovery/shuffle period (default 1 min).
	ProtocolPeriod time.Duration
	// RefreshPeriod is the refresh sub-protocol period (default 20 min).
	RefreshPeriod time.Duration
	// MonitorErr and MonitorStaleness wrap the availability oracle in a
	// Noisy layer when either is non-zero (drives Figures 5–6).
	MonitorErr       float64
	MonitorStaleness time.Duration
	// DistributedMonitor replaces the oracle with the AVMON-style
	// monitoring overlay: consistent hash-selected monitors ping their
	// targets every ProtocolPeriod and queries aggregate their
	// empirical estimates — the paper's actual deployment story.
	// Estimates start cold; allow extra warmup.
	DistributedMonitor bool
	// ExpectedMonitors is the mean monitors per target for the
	// distributed monitor (default 8).
	ExpectedMonitors float64
	// VerifyInbound makes every router verify senders (§4.1).
	VerifyInbound bool
	// Cushion is the verification cushion (§4.1; 0 or 0.1 in the paper).
	Cushion float64
	// Latency is the per-hop latency model (default U[20ms, 80ms]).
	Latency sim.LatencyModel
}

func (c *WorldConfig) applyDefaults() error {
	if c.Trace == nil {
		tr, err := trace.Generate(trace.DefaultGenConfig(c.Seed))
		if err != nil {
			return err
		}
		c.Trace = tr
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	// The paper leaves c1/c2 unstated; 3.0 calibrates the sliver sizes
	// to the scales of Figures 2(b,c) (VS median ≈ 15–20, HS up to ~30
	// at 442 online) and gives each node an expected ≥1 vertical
	// neighbor per 0.1-wide availability range, which Figure 7's
	// one-hop deliveries require.
	if c.C1 == 0 {
		c.C1 = 3
	}
	if c.C2 == 0 {
		c.C2 = 3
	}
	if c.ViewSize == 0 {
		c.ViewSize = int(math.Round(math.Sqrt(float64(c.Trace.Hosts()))))
	}
	if c.ViewSize < 4 {
		c.ViewSize = 4
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = c.ViewSize / 4
	}
	if c.ShuffleLen < 3 {
		c.ShuffleLen = 3
	}
	if c.ShuffleLen > c.ViewSize {
		c.ShuffleLen = c.ViewSize
	}
	if c.ProtocolPeriod == 0 {
		c.ProtocolPeriod = time.Minute
	}
	if c.RefreshPeriod == 0 {
		c.RefreshPeriod = 20 * time.Minute
	}
	if c.Latency == nil {
		c.Latency = sim.PaperLatency()
	}
	return nil
}

// World is a fully wired simulated AVMEM deployment: churn trace,
// monitoring and shuffling services, per-node membership and routers,
// and a shared collector.
type World struct {
	Cfg     WorldConfig
	Trace   *trace.Trace
	Sim     *sim.World
	Net     *sim.Network
	PDF     *avdist.PDF
	NStar   float64
	Monitor avmon.Service
	Shuffle *shuffle.Cyclon
	Hashes  *ids.HashCache
	Col     *ops.Collector

	hosts   []ids.NodeID
	members map[ids.NodeID]*core.Membership
	routers map[ids.NodeID]*ops.Router
}

// NewWorld assembles a deployment. The availability PDF handed to the
// predicates is computed from the trace's full-horizon availabilities —
// the "crawler-computed, communicated at pre-run-time" object of §2.1 —
// and N* is the trace's mean online population.
func NewWorld(cfg WorldConfig) (*World, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	tr := cfg.Trace
	w := &World{
		Cfg:     cfg,
		Trace:   tr,
		Sim:     sim.NewWorld(cfg.Seed),
		Hashes:  ids.NewHashCache(0),
		Col:     ops.NewCollector(),
		hosts:   tr.HostIDs(),
		members: make(map[ids.NodeID]*core.Membership, tr.Hosts()),
		routers: make(map[ids.NodeID]*ops.Router, tr.Hosts()),
	}

	// Offline-computed system statistics. The predicate PDF is the
	// availability distribution of the *online* population — what a
	// crawler sampling live nodes measures, and what Theorem 1's proof
	// assumes (E[online nodes in da] = N*·p(a)·da). A host with
	// availability a is online a fraction a of the time, so it
	// contributes weight a to its availability bucket.
	//
	// Discretization is deliberately coarse (the paper: "a discretized
	// PDF distribution created from a small sample set"): a fine-grained
	// empirical PDF over ~10³ hosts has holes in its thin tails, and a
	// hole means near-zero density, which blows the I.B threshold up to
	// 1 for any node whose running availability estimate sweeps through
	// it. Coarse buckets plus mild Laplace smoothing keep every density
	// honest.
	avail := tr.SmoothedAvailabilities(tr.Epochs() - 1)
	buckets := tr.Hosts() / 25
	if buckets < 10 {
		buckets = 10
	}
	if buckets > 50 {
		buckets = 50
	}
	weights := make([]float64, buckets)
	var total float64
	for _, a := range avail {
		b := int(a * float64(len(weights)))
		if b >= len(weights) {
			b = len(weights) - 1
		}
		weights[b] += a
		total += a
	}
	const smooth = 0.05
	for b := range weights {
		weights[b] += smooth * total / float64(len(weights))
	}
	pdf, err := avdist.FromWeights(weights)
	if err != nil {
		return nil, fmt.Errorf("exp: estimating PDF: %w", err)
	}
	w.PDF = pdf
	w.NStar = tr.MeanOnline()

	// Predicate: paper default (I.B + II.B) with a memoized horizontal
	// threshold, unless overridden.
	pred := cfg.Predicate
	if pred == nil {
		hs, err := core.NewCachedByX(core.LogConstantHorizontal{
			C2: cfg.C2, NStar: w.NStar, Epsilon: cfg.Epsilon, PDF: pdf,
		})
		if err != nil {
			return nil, err
		}
		pred, err = core.NewPredicate(cfg.Epsilon, hs,
			core.LogVertical{C1: cfg.C1, NStar: w.NStar, PDF: pdf})
		if err != nil {
			return nil, err
		}
	}

	// Network with churn-driven delivery.
	online := func(id ids.NodeID) bool {
		h := tr.HostIndex(id)
		return h >= 0 && tr.UpAt(h, w.Sim.Now())
	}
	w.Net = sim.NewNetwork(w.Sim, cfg.Latency, online, 0)

	// Monitoring service: oracle by default, optionally noisy/stale, or
	// the full AVMON-style distributed estimator.
	if cfg.DistributedMonitor {
		expected := cfg.ExpectedMonitors
		if expected == 0 {
			expected = 8
		}
		dist, err := avmon.NewDistributed(w.hosts, expected, online, 0)
		if err != nil {
			return nil, err
		}
		if err := w.Sim.Every(0, cfg.ProtocolPeriod, nil, dist.TickAll); err != nil {
			return nil, err
		}
		w.Monitor = dist
	} else {
		oracle, err := avmon.NewOracle(tr, w.Sim.Now)
		if err != nil {
			return nil, err
		}
		w.Monitor = oracle
	}
	if cfg.MonitorErr > 0 || cfg.MonitorStaleness > 0 {
		noisy, err := avmon.NewNoisy(w.Monitor, cfg.MonitorErr, cfg.MonitorStaleness, w.Sim.Now, w.Sim.Rand())
		if err != nil {
			return nil, err
		}
		w.Monitor = noisy
	}

	// Shuffling membership service.
	cyc, err := shuffle.NewCyclon(cfg.ViewSize, cfg.ShuffleLen, online, w.Sim.Rand())
	if err != nil {
		return nil, err
	}
	w.Shuffle = cyc

	// Per-node state: membership, router, network handler, bootstrap.
	for _, id := range w.hosts {
		m, err := core.NewMembership(id, core.Config{
			Predicate:     pred,
			Monitor:       w.Monitor,
			Hashes:        w.Hashes,
			Clock:         w.Sim.Now,
			VerifyCushion: cfg.Cushion,
		})
		if err != nil {
			return nil, err
		}
		w.members[id] = m

		self := id
		env, err := ops.NewSimEnv(w.Sim, w.Net, id, func() bool { return online(self) })
		if err != nil {
			return nil, err
		}
		r, err := ops.NewRouter(ops.RouterConfig{
			Membership:    m,
			Env:           env,
			Collector:     w.Col,
			VerifyInbound: cfg.VerifyInbound,
		})
		if err != nil {
			return nil, err
		}
		w.routers[id] = r
		w.Net.Register(id, r.HandleMessage)

		cyc.Join(id, w.randomSeeds(id, 4))
	}

	// Periodic protocol drivers, staggered per node so the system does
	// not tick in lockstep.
	for _, id := range w.hosts {
		self := id
		discOffset := time.Duration(w.Sim.Rand().Int63n(int64(cfg.ProtocolPeriod)))
		if err := w.Sim.Every(discOffset, cfg.ProtocolPeriod, nil, func() {
			if !online(self) {
				return
			}
			if len(cyc.View(self)) == 0 {
				// Rejoin after an outage emptied the view: bootstrap anew.
				cyc.Join(self, w.randomSeeds(self, 4))
			}
			cyc.Tick(self)
			w.members[self].Discover(cyc.View(self))
		}); err != nil {
			return nil, err
		}
		refOffset := time.Duration(w.Sim.Rand().Int63n(int64(cfg.RefreshPeriod)))
		if err := w.Sim.Every(refOffset, cfg.RefreshPeriod, nil, func() {
			if !online(self) {
				return
			}
			w.members[self].Refresh()
		}); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// randomSeeds picks up to n random hosts other than self — the
// bootstrap-server story for (re)joining nodes.
func (w *World) randomSeeds(self ids.NodeID, n int) []ids.NodeID {
	seeds := make([]ids.NodeID, 0, n)
	for len(seeds) < n && len(w.hosts) > 1 {
		cand := w.hosts[w.Sim.Rand().Intn(len(w.hosts))]
		if cand != self {
			seeds = append(seeds, cand)
		}
	}
	return seeds
}

// Warmup advances the simulation by d (the paper warms up for 24 hours
// before taking measurements).
func (w *World) Warmup(d time.Duration) { w.Sim.Run(w.Sim.Now() + d) }

// RunFor advances the simulation by d.
func (w *World) RunFor(d time.Duration) { w.Sim.Run(w.Sim.Now() + d) }

// Hosts returns all host identifiers.
func (w *World) Hosts() []ids.NodeID { return w.hosts }

// Membership returns the membership state of a node.
func (w *World) Membership(id ids.NodeID) *core.Membership { return w.members[id] }

// Router returns the router of a node.
func (w *World) Router(id ids.NodeID) *ops.Router { return w.routers[id] }

// Online reports whether a node is online at the current virtual time.
func (w *World) Online(id ids.NodeID) bool {
	h := w.Trace.HostIndex(id)
	return h >= 0 && w.Trace.UpAt(h, w.Sim.Now())
}

// OnlineHosts returns all currently online host identifiers.
func (w *World) OnlineHosts() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(w.hosts)/2)
	for _, id := range w.hosts {
		if w.Online(id) {
			out = append(out, id)
		}
	}
	return out
}

// TrueAvailability returns the noiseless long-term availability of a
// node at the current virtual time (the smoothed estimator an ideal
// monitor reports, regardless of configured monitor noise). Experiments
// use it as ground truth for bands, targets, and eligibility.
func (w *World) TrueAvailability(id ids.NodeID) float64 {
	h := w.Trace.HostIndex(id)
	if h < 0 {
		return 0
	}
	return w.Trace.SmoothedAvailability(h, w.Trace.EpochAt(w.Sim.Now()))
}

// OnlineInBand returns online nodes whose true availability lies in
// [lo, hi).
func (w *World) OnlineInBand(lo, hi float64) []ids.NodeID {
	out := make([]ids.NodeID, 0, 64)
	for _, id := range w.OnlineHosts() {
		av := w.TrueAvailability(id)
		if av >= lo && av < hi {
			out = append(out, id)
		}
	}
	return out
}

// EligibleFor counts online nodes whose true availability lies inside
// the operation target — the reliability/spam denominator.
func (w *World) EligibleFor(t ops.Target) int {
	n := 0
	for _, id := range w.OnlineHosts() {
		if t.Contains(w.TrueAvailability(id)) {
			n++
		}
	}
	return n
}

// PickInitiator selects a random online node from the availability band
// [lo, hi); ok is false when the band is empty.
func (w *World) PickInitiator(lo, hi float64) (ids.NodeID, bool) {
	band := w.OnlineInBand(lo, hi)
	if len(band) == 0 {
		return ids.Nil, false
	}
	return band[w.Sim.Rand().Intn(len(band))], true
}

// MeanDegree returns the mean AVMEM neighbor count across online nodes
// (used to match the random-overlay baseline's degree in Figure 10).
func (w *World) MeanDegree() float64 {
	online := w.OnlineHosts()
	if len(online) == 0 {
		return 0
	}
	total := 0
	for _, id := range online {
		total += w.members[id].Size()
	}
	return float64(total) / float64(len(online))
}

// NewRandomWorld builds the Figure-10 baseline: the same deployment but
// over a consistent random overlay (SCAMP/CYCLON-like) whose expected
// degree matches degree — typically the MeanDegree measured on the
// corresponding AVMEM world after warmup.
func NewRandomWorld(cfg WorldConfig, degree float64) (*World, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nStar := cfg.Trace.MeanOnline()
	pred, err := core.RandomPredicate(cfg.Epsilon, degree, nStar)
	if err != nil {
		return nil, err
	}
	cfg.Predicate = pred
	return NewWorld(cfg)
}
