package exp

import (
	"testing"
	"time"

	"avmem/internal/trace"
)

// parallelTestWorld builds a small parallel-eligible deployment.
func parallelTestWorld(t *testing.T, threads int) *World {
	t.Helper()
	cfg := trace.DefaultGenConfig(11)
	cfg.Hosts = 120
	cfg.Epochs = 72 // one day at 20-minute epochs
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{
		Seed:         11,
		Trace:        tr,
		Shards:       4,
		ShardThreads: threads,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelWorldRunsWindows pins that a parallel-eligible
// configuration actually executes conservative windows — the engine
// must not silently degrade to the serial tournament.
func TestParallelWorldRunsWindows(t *testing.T) {
	w := parallelTestWorld(t, 2)
	defer w.Stop()
	if !w.Sim.ParallelActive() {
		t.Fatal("parallel engine not active on an eligible configuration")
	}
	w.RunFor(2 * time.Hour)
	if got := w.Sim.ParallelWindows(); got == 0 {
		t.Fatal("no parallel windows executed in 2h of simulated protocol traffic")
	}
}

// TestParallelNoiseFallback pins the mid-run escape hatch: installing a
// monitor-noise layer must permanently fall the engine back to serial
// execution (noise layers draw shared randomness per query).
func TestParallelNoiseFallback(t *testing.T) {
	w := parallelTestWorld(t, 2)
	defer w.Stop()
	w.RunFor(30 * time.Minute)
	if err := w.SetMonitorNoise(0.2, 0); err != nil {
		t.Fatal(err)
	}
	if w.Sim.ParallelActive() {
		t.Fatal("parallel engine still active after a monitor-noise ramp")
	}
	before := w.Sim.ParallelWindows()
	w.RunFor(30 * time.Minute)
	if got := w.Sim.ParallelWindows(); got != before {
		t.Fatalf("windows advanced after DisableParallel: %d -> %d", before, got)
	}
}
