package exp

import (
	"testing"
	"time"

	"avmem/internal/core"
	"avmem/internal/ops"
)

// TestForceOfflineOverridesTrace: a forced outage makes a node offline
// for exactly its window, regardless of the churn trace, and the trace
// resumes control afterwards.
func TestForceOfflineOverridesTrace(t *testing.T) {
	w := smallWorld(t, 1)
	online := w.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online hosts after warmup")
	}
	id := online[0]
	until := w.Sim.Now() + 30*time.Minute
	w.ForceOffline(id, until)
	if w.Online(id) {
		t.Fatal("forced-down node still online")
	}
	for _, h := range w.OnlineHosts() {
		if h == id {
			t.Fatal("forced-down node listed in OnlineHosts")
		}
	}
	w.RunFor(31 * time.Minute)
	// After the window the trace decides again; the node must at least
	// be *allowed* online (check the raw trace agrees with Online).
	hIdx := w.Trace.HostIndex(id)
	if got, want := w.Online(id), w.Trace.UpAt(hIdx, w.Sim.Now()); got != want {
		t.Errorf("after outage window Online=%v, trace says %v", got, want)
	}
}

// TestForceOfflineExpiredIsNoop: an outage ending in the past does not
// take effect.
func TestForceOfflineExpiredIsNoop(t *testing.T) {
	w := smallWorld(t, 2)
	online := w.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online hosts after warmup")
	}
	id := online[0]
	w.ForceOffline(id, w.Sim.Now())
	if !w.Online(id) {
		t.Error("expired outage took the node down")
	}
}

// TestForceOfflineSweepClearsSlot: the outage slot is cleared by the
// scheduled sweep (not by liveness reads — they must stay pure), and a
// superseding longer outage is not clobbered by the earlier sweep.
func TestForceOfflineSweepClearsSlot(t *testing.T) {
	w := smallWorld(t, 5)
	online := w.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online hosts after warmup")
	}
	id := online[0]
	h := w.Trace.HostIndex(id)
	w.ForceOffline(id, w.Sim.Now()+10*time.Minute)
	w.ForceOffline(id, w.Sim.Now()+40*time.Minute)
	w.RunFor(11 * time.Minute)
	// The first outage's sweep fired; the longer outage must survive it.
	if w.forcedDownUntil[h] == 0 {
		t.Fatal("superseding outage cleared by the earlier sweep")
	}
	if w.Online(id) {
		t.Fatal("node online inside the superseding outage")
	}
	w.RunFor(30 * time.Minute)
	if w.forcedDownUntil[h] != 0 {
		t.Errorf("outage slot not swept after lift: %v", w.forcedDownUntil[h])
	}
}

// TestRandomSeedsDistinctAndBounded: bootstrap seeds never repeat a
// host, never include self, and tiny populations terminate (the seed
// bug: sampling with replacement could return the same host twice and
// spin when n exceeded the distinct-host count).
func TestRandomSeedsDistinctAndBounded(t *testing.T) {
	w := smallWorld(t, 6)
	self := w.Hosts()[0]
	for trial := 0; trial < 50; trial++ {
		seeds := w.randomSeeds(self, 4)
		if len(seeds) != 4 {
			t.Fatalf("got %d seeds, want 4", len(seeds))
		}
		seen := map[string]bool{}
		for _, s := range seeds {
			if s == self {
				t.Fatal("self returned as a bootstrap seed")
			}
			if seen[string(s)] {
				t.Fatalf("duplicate seed %v in %v", s, seeds)
			}
			seen[string(s)] = true
		}
	}
	// n greater than the distinct-host count must cap, not spin.
	if got := w.randomSeeds(self, len(w.Hosts())+10); len(got) != len(w.Hosts())-1 {
		t.Errorf("oversized request returned %d seeds, want %d", len(got), len(w.Hosts())-1)
	}
}

// TestSetMonitorNoisePerturbsAndRestores: injected noise changes what
// the deployment-wide monitor reports, and resetting to zero restores
// the base service exactly.
func TestSetMonitorNoisePerturbsAndRestores(t *testing.T) {
	w := smallWorld(t, 3)
	online := w.OnlineHosts()
	if len(online) == 0 {
		t.Fatal("no online hosts after warmup")
	}
	id := online[0]
	clean, ok := w.Monitor.Availability(id)
	if !ok {
		t.Fatal("monitor does not know an online host")
	}
	if err := w.SetMonitorNoise(0.2, 0); err != nil {
		t.Fatal(err)
	}
	perturbed := false
	for _, h := range online {
		cv, _ := w.Monitor.Availability(h)
		if err := w.SetMonitorNoise(0, 0); err != nil {
			t.Fatal(err)
		}
		bv, _ := w.Monitor.Availability(h)
		if err := w.SetMonitorNoise(0.2, 0); err != nil {
			t.Fatal(err)
		}
		if cv != bv {
			perturbed = true
			break
		}
	}
	if !perturbed {
		t.Error("±0.2 noise never changed any report")
	}
	if err := w.SetMonitorNoise(0, 0); err != nil {
		t.Fatal(err)
	}
	restored, ok := w.Monitor.Availability(id)
	if !ok || restored != clean {
		t.Errorf("restored report %v (ok=%v), want clean %v", restored, ok, clean)
	}
}

// TestChurnBurstRecovery: after a mass forced outage the overlay keeps
// functioning — the remaining online nodes still route anycasts.
func TestChurnBurstRecovery(t *testing.T) {
	w := smallWorld(t, 4)
	online := w.OnlineHosts()
	until := w.Sim.Now() + 40*time.Minute
	for i, id := range online {
		if i%2 == 0 {
			w.ForceOffline(id, until)
		}
	}
	w.RunFor(5 * time.Minute)
	res, err := RunAnycasts(w, AnycastSpec{
		Name:   "storm",
		BandLo: 0, BandHi: 1.01,
		Target: ops.Target{Lo: 0.85, Hi: 0.95},
		Opts:   ops.AnycastOptions{Policy: ops.Greedy, Flavor: core.HSVS, TTL: 6},
		Runs:   1, PerRun: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no anycasts initiated during the storm")
	}
	if res.FractionDelivered() < 0.5 {
		t.Errorf("delivery during 50%% outage = %.2f, want >= 0.5", res.FractionDelivered())
	}
}
