package exp

import (
	"math"
	"testing"
	"time"

	"avmem/internal/core"
	"avmem/internal/ops"
	"avmem/internal/stats"
	"avmem/internal/trace"
)

// smallWorld builds a scaled-down deployment that keeps tests fast:
// 220 hosts over ~2 days, 2-minute protocol period, 6-hour warmup.
func smallWorld(t testing.TB, seed int64) *World {
	t.Helper()
	return worldOf(t, seed, 220, 6*time.Hour)
}

// mediumWorld (600 hosts, 10-hour warmup) is big enough for the
// log(N*)/N* threshold regime that Figures 3 and 5 depend on;
// predicates saturate in tiny worlds and hide those shapes.
func mediumWorld(t testing.TB, seed int64) *World {
	t.Helper()
	return worldOf(t, seed, 600, 10*time.Hour)
}

func worldOf(t testing.TB, seed int64, hosts int, warmup time.Duration) *World {
	t.Helper()
	gen := trace.DefaultGenConfig(seed)
	gen.Hosts = hosts
	gen.Epochs = 150
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{
		Seed:           seed,
		Trace:          tr,
		ProtocolPeriod: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Warmup(warmup)
	return w
}

func TestNewWorldDefaults(t *testing.T) {
	w := smallWorld(t, 1)
	if w.Cfg.Epsilon != 0.1 || w.Cfg.C1 != 3 || w.Cfg.C2 != 3 {
		t.Errorf("defaults wrong: %+v", w.Cfg)
	}
	if w.Cfg.ViewSize != int(math.Round(math.Sqrt(220))) {
		t.Errorf("view size = %d, want √220", w.Cfg.ViewSize)
	}
	if w.NStar <= 0 || w.NStar > 220 {
		t.Errorf("NStar = %v", w.NStar)
	}
}

func TestWarmupBuildsSlivers(t *testing.T) {
	w := smallWorld(t, 1)
	online := w.OnlineHosts()
	if len(online) < 20 {
		t.Fatalf("only %d nodes online after warmup", len(online))
	}
	withNeighbors, totalHS, totalVS := 0, 0, 0
	for _, id := range online {
		m := w.Membership(id)
		if m.Size() > 0 {
			withNeighbors++
		}
		totalHS += m.SliverSize(core.SliverHorizontal)
		totalVS += m.SliverSize(core.SliverVertical)
	}
	if frac := float64(withNeighbors) / float64(len(online)); frac < 0.9 {
		t.Errorf("only %.0f%% of online nodes have neighbors", frac*100)
	}
	if totalHS == 0 || totalVS == 0 {
		t.Errorf("slivers empty: HS=%d VS=%d", totalHS, totalVS)
	}
	// Scalability: mean degree should be modest (O(log N) + band size),
	// not O(N).
	mean := w.MeanDegree()
	if mean <= 1 || mean > 120 {
		t.Errorf("mean degree = %v, implausible", mean)
	}
}

func TestSnapshotOverlayShape(t *testing.T) {
	w := smallWorld(t, 2)
	snap := SnapshotOverlay(w)
	if snap.OnlineCount == 0 {
		t.Fatal("no online nodes in snapshot")
	}
	if len(snap.AvailHistogram) != 20 || len(snap.HSMedian) != 10 || len(snap.VSMedian) != 10 {
		t.Fatalf("series dimensions wrong")
	}
	total := 0
	for _, c := range snap.AvailHistogram {
		total += c
	}
	if total != snap.OnlineCount {
		t.Errorf("histogram total %d != online %d", total, snap.OnlineCount)
	}
	if len(snap.HS) != snap.OnlineCount || len(snap.VS) != snap.OnlineCount {
		t.Errorf("scatter sizes wrong: %d/%d vs %d", len(snap.HS), len(snap.VS), snap.OnlineCount)
	}
}

// TestVSUniformityFig4 checks Figure 4's claim on the small world: the
// vertical-sliver in-degree per availability bucket is roughly uniform
// and uncorrelated with the (skewed) population.
func TestVSUniformityFig4(t *testing.T) {
	w := smallWorld(t, 3)
	deg := ScanVSInDegree(w)
	// Compare non-empty buckets: max/min ratio of incoming VS links
	// should be far smaller than the population skew ratio.
	var minLinks, maxLinks float64 = math.Inf(1), 0
	for b := 1; b < 9; b++ { // interior buckets; edges are noisy
		if deg.Population[b] < 3 {
			continue
		}
		perNode := deg.PerBucket[b] / float64(deg.Population[b])
		if perNode < minLinks {
			minLinks = perNode
		}
		if perNode > maxLinks {
			maxLinks = perNode
		}
	}
	if math.IsInf(minLinks, 1) || minLinks <= 0 {
		t.Skip("not enough populated buckets for uniformity check")
	}
	// Per-node incoming VS references should not vary wildly. Uniform
	// coverage (Theorem 1) predicts equal *totals* per range; per-node
	// values in sparse buckets are noisy, so allow a generous factor.
	if ratio := maxLinks / minLinks; ratio > 25 {
		t.Errorf("VS in-degree ratio across buckets = %v, want small", ratio)
	}
	// And the *total* per bucket must not simply track population.
	if deg.PerBucket[0] == 0 && deg.PerBucket[9] == 0 {
		t.Error("no VS links at either end of the availability space")
	}
}

func TestHorizontalScalingFig3(t *testing.T) {
	w := mediumWorld(t, 4)
	hs := ScanHorizontalScaling(w)
	if len(hs.Points) == 0 {
		t.Fatal("no scaling points")
	}
	ratio := hs.SublinearityRatio()
	if ratio == 0 {
		t.Skip("degenerate quartiles")
	}
	if ratio >= 1.0 {
		t.Errorf("HS growth not sublinear: quartile ratio = %v", ratio)
	}
}

func TestFloodingAttackFig5(t *testing.T) {
	// Predicate thresholds scale as log(N*)/N*, so the paper's <10%
	// acceptance is an N*≈442 property; the 220-host test world (N*≈75)
	// legitimately sits a few times higher. The full-scale number is
	// verified by the harness (EXPERIMENTS.md). Here we check the
	// structural claims: the cushion can only widen acceptance, the
	// level tracks the analytic expectation, and resilience is uniform
	// across the selfish node's availability.
	w := mediumWorld(t, 5)
	res0 := FloodingAttack(w, 0)
	res1 := FloodingAttack(w, 0.1)
	if res0.Overall > res1.Overall {
		t.Errorf("cushion narrowed acceptance: %v (cushion 0) > %v (cushion 0.1)", res0.Overall, res1.Overall)
	}
	if res0.Overall > 0.20 {
		t.Errorf("flooding acceptance without cushion = %v, implausibly high", res0.Overall)
	}
	// The cushion adds at most 0.1 to every threshold, so the overall
	// acceptance can grow by at most ~0.1.
	if res1.Overall-res0.Overall > 0.12 {
		t.Errorf("cushion inflated acceptance by %v, more than the cushion itself",
			res1.Overall-res0.Overall)
	}
	// Uniform attack resilience: no availability bucket of the selfish
	// sender should be wildly more permissive than another.
	var min, max float64 = math.Inf(1), 0
	for _, v := range res0.PerBucket {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if !math.IsInf(min, 1) && max-min > 0.35 {
		t.Errorf("attack acceptance varies too much across sender availability: [%v, %v]", min, max)
	}
}

func TestLegitimateRejectionFig6(t *testing.T) {
	// Noise and staleness in the monitor drive legitimate rejections;
	// the cushion absorbs them.
	gen := trace.DefaultGenConfig(6)
	gen.Hosts = 220
	gen.Epochs = 150
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{
		Seed:             6,
		Trace:            tr,
		ProtocolPeriod:   2 * time.Minute,
		MonitorErr:       0.05,
		MonitorStaleness: 20 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Warmup(6 * time.Hour)
	res0 := LegitimateRejection(w, 0)
	res1 := LegitimateRejection(w, 0.1)
	if res1.Overall > res0.Overall {
		t.Errorf("cushion increased rejections: %v -> %v", res0.Overall, res1.Overall)
	}
	if res0.Overall > 0.5 {
		t.Errorf("rejection rate without cushion = %v, implausibly high", res0.Overall)
	}
}

func TestRunAnycastsDelivers(t *testing.T) {
	w := smallWorld(t, 7)
	spec := AnycastSpec{
		Name:   "test",
		BandLo: 1.0 / 3.0, BandHi: 2.0 / 3.0,
		Target: ops.Target{Lo: 0.85, Hi: 0.95},
		Opts:   ops.AnycastOptions{Policy: ops.Greedy, Flavor: core.HSVS, TTL: 6},
		Runs:   1, PerRun: 20,
	}
	// Make sure the target is populated in this small world.
	if w.EligibleFor(spec.Target) == 0 {
		spec.Target = ops.Target{Lo: 0.7, Hi: 1.0}
	}
	res, err := RunAnycasts(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Skip("no initiators in band")
	}
	if res.FractionDelivered() < 0.6 {
		t.Errorf("delivered %v of %d anycasts, want most", res.FractionDelivered(), res.Sent)
	}
	cdf := res.HopsCDF()
	if len(cdf) != 7 {
		t.Fatalf("hops CDF length = %d", len(cdf))
	}
	if res.Delivered > 0 && cdf[6] < 0.999 {
		t.Errorf("hops CDF does not reach 1: %v", cdf)
	}
	if res.Delivered > 0 && res.MeanLatency() <= 0 {
		t.Error("mean latency not recorded")
	}
}

func TestRunAnycastsRetriedGreedyHarsh(t *testing.T) {
	w := smallWorld(t, 8)
	spec := AnycastSpec{
		Name:   "harsh",
		BandLo: 2.0 / 3.0, BandHi: 1.01,
		Target: ops.Target{Lo: 0.15, Hi: 0.25},
		Opts:   ops.AnycastOptions{Policy: ops.RetriedGreedy, Flavor: core.HSVS, TTL: 6, Retry: 8},
		Runs:   1, PerRun: 15,
		Gap: 4 * time.Second,
	}
	res, err := RunAnycasts(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Skip("no HIGH initiators online")
	}
	// Every message must have a terminal verdict with retried greedy
	// (acknowledgments make losses detectable).
	if res.Pending != 0 {
		t.Errorf("retried greedy left %d pending", res.Pending)
	}
	total := res.Delivered + res.TTLExpired + res.RetryExpired
	if total != res.Sent {
		t.Errorf("outcomes %d != sent %d", total, res.Sent)
	}
}

func TestRunMulticastsFloodAndGossip(t *testing.T) {
	w := smallWorld(t, 9)
	target := ops.Target{Lo: 0.6, Hi: 1.0}
	if w.EligibleFor(target) < 5 {
		t.Skip("target band too sparse in small world")
	}
	flood := MulticastSpec{
		Name:   "flood",
		BandLo: 0, BandHi: 1.01,
		Target: target,
		Mode:   ops.Flood, Flavor: core.HSVS,
		Runs: 1, PerRun: 10,
	}
	fres, err := RunMulticasts(w, flood)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Sent == 0 {
		t.Skip("no initiators")
	}
	if fres.MeanReliability() < 0.5 {
		t.Errorf("flood reliability = %v, want high", fres.MeanReliability())
	}
	gossip := MulticastSpec{
		Name:   "gossip",
		BandLo: 0, BandHi: 1.01,
		Target: target,
		Mode:   ops.Gossip, Flavor: core.HSVS,
		Fanout: 5, Rounds: 2, Period: time.Second,
		Runs: 1, PerRun: 10,
	}
	gres, err := RunMulticasts(w, gossip)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Sent == 0 {
		t.Skip("no initiators")
	}
	// Gossip trades reliability for bandwidth; it should still reach a
	// decent fraction but typically no more than flooding.
	if gres.MeanReliability() < 0.2 {
		t.Errorf("gossip reliability = %v, too low", gres.MeanReliability())
	}
	if fres.MeanSpamRatio() > 0.5 {
		t.Errorf("flood spam ratio = %v, too high", fres.MeanSpamRatio())
	}
}

func TestNewRandomWorldMatchesDegree(t *testing.T) {
	gen := trace.DefaultGenConfig(10)
	gen.Hosts = 220
	gen.Epochs = 150
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewRandomWorld(WorldConfig{
		Seed:           10,
		Trace:          tr,
		ProtocolPeriod: 2 * time.Minute,
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	w.Warmup(6 * time.Hour)
	mean := w.MeanDegree()
	if mean <= 2 {
		t.Errorf("random overlay mean degree = %v, too sparse", mean)
	}
	// Under the uniform predicate, HS/VS classification still happens
	// but acceptance is availability-independent: degree must not
	// correlate strongly with availability. Compare low vs high halves.
	var lo, hi, nLo, nHi float64
	for _, id := range w.OnlineHosts() {
		av := w.TrueAvailability(id)
		d := float64(w.Membership(id).Size())
		if av < 0.5 {
			lo += d
			nLo++
		} else {
			hi += d
			nHi++
		}
	}
	if nLo > 5 && nHi > 5 {
		ratio := (hi / nHi) / (lo / nLo)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("random overlay degree correlates with availability: ratio %v", ratio)
		}
	}
}

func TestAnycastTableFormats(t *testing.T) {
	res := []AnycastResult{{Name: "a", Sent: 10, Delivered: 5}}
	out := AnycastTable(res)
	if out == "" {
		t.Error("empty table")
	}
}

func TestFigSpecGenerators(t *testing.T) {
	if got := len(Fig7Variants()); got != 4 {
		t.Errorf("Fig7Variants = %d, want 4", got)
	}
	if got := len(Fig8Variants()); got != 12 {
		t.Errorf("Fig8Variants = %d, want 12", got)
	}
	if got := len(Fig9Specs()); got != 4 {
		t.Errorf("Fig9Specs = %d, want 4", got)
	}
	if got := len(Fig11Specs()); got != 5 {
		t.Errorf("Fig11Specs = %d, want 5", got)
	}
	for _, s := range Fig8Variants() {
		if err := s.Target.Validate(); err != nil {
			t.Errorf("spec %q has invalid target: %v", s.Name, err)
		}
	}
}

func TestDistributedMonitorWorld(t *testing.T) {
	// End-to-end with the AVMON-style distributed monitor instead of
	// the oracle: estimates are ping-derived, so slivers form a little
	// later but operations still work.
	gen := trace.DefaultGenConfig(14)
	gen.Hosts = 220
	gen.Epochs = 150
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{
		Seed:               14,
		Trace:              tr,
		ProtocolPeriod:     2 * time.Minute,
		DistributedMonitor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Warmup(8 * time.Hour)

	// The distributed estimates should track ground truth reasonably.
	var totalErr float64
	checked := 0
	for _, id := range w.OnlineHosts() {
		est, ok := w.Monitor.Availability(id)
		if !ok {
			continue
		}
		truth := w.TrueAvailability(id)
		totalErr += math.Abs(est - truth)
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d online nodes have estimates", checked)
	}
	if meanErr := totalErr / float64(checked); meanErr > 0.12 {
		t.Errorf("mean estimate error = %v, want small", meanErr)
	}

	// Slivers form and anycasts deliver on ping-derived estimates.
	if w.MeanDegree() < 2 {
		t.Errorf("mean degree = %v; overlay failed to form on distributed estimates", w.MeanDegree())
	}
	target := ops.Target{Lo: 0.6, Hi: 1.0}
	if w.EligibleFor(target) == 0 {
		t.Skip("target empty")
	}
	res, err := RunAnycasts(w, AnycastSpec{
		Name:   "dist-monitor",
		BandLo: 0, BandHi: 1.01,
		Target: target,
		Opts:   ops.AnycastOptions{Policy: ops.Greedy, Flavor: core.HSVS, TTL: 6},
		Runs:   1, PerRun: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent > 0 && res.FractionDelivered() < 0.5 {
		t.Errorf("delivered %v on distributed monitor, want most", res.FractionDelivered())
	}
}

func TestMulticastMessageAccounting(t *testing.T) {
	// Gossip must put fewer messages on the wire than flooding for the
	// same workload — the bandwidth half of the paper's trade-off.
	w := smallWorld(t, 15)
	target := ops.Target{Lo: 0.5, Hi: 1.0}
	if w.EligibleFor(target) < 5 {
		t.Skip("target too sparse")
	}
	mk := func(mode ops.Mode) MulticastSpec {
		return MulticastSpec{
			Name:   mode.String(),
			BandLo: 0, BandHi: 1.01,
			Target: target,
			Mode:   mode, Flavor: core.HSVS,
			Fanout: 3, Rounds: 2, Period: time.Second,
			Runs: 1, PerRun: 10,
		}
	}
	flood, err := RunMulticasts(w, mk(ops.Flood))
	if err != nil {
		t.Fatal(err)
	}
	gossip, err := RunMulticasts(w, mk(ops.Gossip))
	if err != nil {
		t.Fatal(err)
	}
	if flood.NetworkMessages == 0 || gossip.NetworkMessages == 0 {
		t.Fatalf("message accounting empty: flood=%d gossip=%d",
			flood.NetworkMessages, gossip.NetworkMessages)
	}
	if gossip.NetworkMessages >= flood.NetworkMessages {
		t.Errorf("gossip used %d messages, flood %d — gossip should be cheaper",
			gossip.NetworkMessages, flood.NetworkMessages)
	}
}

// TestFig2cCorrelationBounded quantifies Figure 2(c)'s claim with a
// Pearson coefficient. A short-warmup world shows a mild positive
// correlation between VS size and availability — the discovery-rate
// effect documented in EXPERIMENTS.md (nodes discover in proportion to
// their own uptime) — but it must stay far from proportionality, and
// the predicate itself (Fig 4's uniform in-degree) must not amplify it.
func TestFig2cCorrelationBounded(t *testing.T) {
	w := mediumWorld(t, 16)
	snap := SnapshotOverlay(w)
	mid := make([]stats.ScatterPoint, 0, len(snap.VS))
	for _, p := range snap.VS {
		if p.X >= 0.3 && p.X <= 0.9 {
			mid = append(mid, p)
		}
	}
	if len(mid) < 30 {
		t.Skip("too few mid-range nodes")
	}
	if r := stats.Correlation(mid); r > 0.8 || r < -0.3 {
		t.Errorf("VS size vs availability correlation out of expected band: r = %v", r)
	}
}
