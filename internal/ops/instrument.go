package ops

import (
	"time"

	"avmem/internal/obs"
)

// collectorObs is the Collector's instrument set: per-op outcome
// counters and hop/latency distributions. Bumps happen inside the
// collector's existing mutex sections, on the same success/failure
// paths that mutate the records — so the counters are exactly the
// record deltas, and an uninstrumented collector (ins == nil) pays one
// nil check per mutation.
type collectorObs struct {
	anycastDelivered    *obs.Counter   // ops_anycast_delivered_total
	anycastTTLExpired   *obs.Counter   // ops_anycast_ttl_expired_total
	anycastRetryExpired *obs.Counter   // ops_anycast_retry_expired_total
	anycastHops         *obs.Histogram // ops_anycast_hops
	anycastLatencyMs    *obs.Histogram // ops_anycast_latency_ms
	multicastDelivered  *obs.Counter   // ops_multicast_delivered_total
	multicastSpam       *obs.Counter   // ops_multicast_spam_total
	rangecastDelivered  *obs.Counter   // ops_rangecast_delivered_total
	rangecastSpam       *obs.Counter   // ops_rangecast_spam_total
	rangecastDepth      *obs.Histogram // ops_rangecast_depth
	aggResults          *obs.Counter   // ops_agg_results_total
	aggRejectedPartials *obs.Counter   // ops_agg_rejected_partials_total
	aggForgeryRejected  *obs.Counter   // ops_agg_forgery_rejected_total
	aggForgeryAccepted  *obs.Counter   // ops_agg_forgery_accepted_total
}

// Instrument registers the collector's metrics in reg and starts
// recording into them. Safe to call on a collector already in use;
// a nil registry leaves it uninstrumented.
func (c *Collector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ins := &collectorObs{
		anycastDelivered:    reg.Counter("ops_anycast_delivered_total"),
		anycastTTLExpired:   reg.Counter("ops_anycast_ttl_expired_total"),
		anycastRetryExpired: reg.Counter("ops_anycast_retry_expired_total"),
		anycastHops:         reg.Histogram("ops_anycast_hops", 1, 2, 3, 4, 6, 8, 12),
		anycastLatencyMs:    reg.Histogram("ops_anycast_latency_ms", 50, 100, 200, 400, 800, 1600, 3200),
		multicastDelivered:  reg.Counter("ops_multicast_delivered_total"),
		multicastSpam:       reg.Counter("ops_multicast_spam_total"),
		rangecastDelivered:  reg.Counter("ops_rangecast_delivered_total"),
		rangecastSpam:       reg.Counter("ops_rangecast_spam_total"),
		rangecastDepth:      reg.Histogram("ops_rangecast_depth", 1, 2, 3, 4, 6, 8, 12),
		aggResults:          reg.Counter("ops_agg_results_total"),
		aggRejectedPartials: reg.Counter("ops_agg_rejected_partials_total"),
		aggForgeryRejected:  reg.Counter("ops_agg_forgery_rejected_total"),
		aggForgeryAccepted:  reg.Counter("ops_agg_forgery_accepted_total"),
	}
	c.mu.Lock()
	c.ins = ins
	c.mu.Unlock()
}

// obsAnycastLatencyMs converts a virtual latency to the histogram's
// millisecond scale.
func obsAnycastLatencyMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
