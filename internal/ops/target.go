// Package ops implements the four availability-based management
// operations of the paper (§1, §3.2) on top of an AVMEM overlay:
// threshold-anycast, range-anycast, threshold-multicast, and
// range-multicast.
//
// Anycast forwarding supports the three policies of §3.2.I — greedy,
// retried-greedy (with per-message retry budgets and next-hop
// acknowledgments), and simulated annealing — and multicast supports
// the two dissemination modes of §3.2.II — flooding and gossip. Every
// algorithm comes in the three sliver flavors (HS-only, VS-only,
// HS+VS), giving the paper's nine anycast and six multicast variants.
package ops

import (
	"fmt"
	"math"
)

// Target is an availability interval [Lo, Hi] an operation addresses.
// Threshold operations use [b, 1]; range operations use [b, b+δ].
type Target struct {
	Lo float64
	Hi float64
}

// Threshold builds the target of a threshold operation: all nodes with
// availability > b, i.e. the interval (b, 1]. (We represent it as
// [b, 1] with an open test at Lo.)
func Threshold(b float64) (Target, error) {
	if b < 0 || b >= 1 {
		return Target{}, fmt.Errorf("ops: threshold must be in [0,1), got %v", b)
	}
	return Target{Lo: b, Hi: 1}, nil
}

// Range builds the target of a range operation: availability in
// [lo, hi] ⊆ [0,1].
func Range(lo, hi float64) (Target, error) {
	if lo < 0 || hi > 1 || hi < lo {
		return Target{}, fmt.Errorf("ops: invalid range [%v,%v]", lo, hi)
	}
	return Target{Lo: lo, Hi: hi}, nil
}

// Contains reports whether availability av lies in the target.
func (t Target) Contains(av float64) bool { return av >= t.Lo && av <= t.Hi }

// Distance returns how far av lies from the target in availability
// space: 0 inside, otherwise the distance to the nearest edge. This is
// both the greedy forwarding metric and the Δ of simulated annealing.
func (t Target) Distance(av float64) float64 {
	switch {
	case av < t.Lo:
		return t.Lo - av
	case av > t.Hi:
		return av - t.Hi
	default:
		return 0
	}
}

// Width returns the availability width of the target.
func (t Target) Width() float64 { return t.Hi - t.Lo }

// String implements fmt.Stringer.
func (t Target) String() string {
	if t.Hi >= 1 && t.Lo > 0 {
		return fmt.Sprintf("av>%.2f", t.Lo)
	}
	return fmt.Sprintf("[%.2f,%.2f]", t.Lo, t.Hi)
}

// Validate checks the interval is well formed.
func (t Target) Validate() error {
	if math.IsNaN(t.Lo) || math.IsNaN(t.Hi) || t.Lo < 0 || t.Hi > 1 || t.Hi < t.Lo {
		return fmt.Errorf("ops: invalid target %+v", t)
	}
	return nil
}
