// Package ops implements the availability-based management operations
// on top of an AVMEM overlay: the paper's four (§1, §3.2) —
// threshold-anycast, range-anycast, threshold-multicast,
// range-multicast — plus the range-cast & in-overlay aggregation
// family (payload delivery to, and count/sum/min/max/avg over, every
// node in a half-open availability band).
//
// Anycast forwarding supports the three policies of §3.2.I — greedy,
// retried-greedy (with per-message retry budgets and next-hop
// acknowledgments), and simulated annealing — and multicast supports
// the two dissemination modes of §3.2.II — flooding and gossip. Every
// algorithm comes in the three sliver flavors (HS-only, VS-only,
// HS+VS), giving the paper's nine anycast and six multicast variants.
// Range-cast and aggregation reuse the anycast machinery as their
// entry stage and disseminate through band-filtered sliver lists.
//
// Architecture: DESIGN.md §4 (routing with reusable scratch) and §13
// (range-cast & aggregation).
package ops

import (
	"fmt"
	"math"
)

// Target is an availability interval [Lo, Hi] an operation addresses.
// Threshold operations use [b, 1]; range operations use [b, b+δ].
type Target struct {
	Lo float64
	Hi float64
}

// Threshold builds the target of a threshold operation: all nodes with
// availability > b, i.e. the interval (b, 1]. (We represent it as
// [b, 1] with an open test at Lo.)
func Threshold(b float64) (Target, error) {
	if b < 0 || b >= 1 {
		return Target{}, fmt.Errorf("ops: threshold must be in [0,1), got %v", b)
	}
	return Target{Lo: b, Hi: 1}, nil
}

// Range builds the target of a range operation: availability in
// [lo, hi] ⊆ [0,1].
func Range(lo, hi float64) (Target, error) {
	if lo < 0 || hi > 1 || hi < lo {
		return Target{}, fmt.Errorf("ops: invalid range [%v,%v]", lo, hi)
	}
	return Target{Lo: lo, Hi: hi}, nil
}

// Contains reports whether availability av lies in the target.
func (t Target) Contains(av float64) bool { return av >= t.Lo && av <= t.Hi }

// Distance returns how far av lies from the target in availability
// space: 0 inside, otherwise the distance to the nearest edge. This is
// both the greedy forwarding metric and the Δ of simulated annealing.
func (t Target) Distance(av float64) float64 {
	switch {
	case av < t.Lo:
		return t.Lo - av
	case av > t.Hi:
		return av - t.Hi
	default:
		return 0
	}
}

// Width returns the availability width of the target.
func (t Target) Width() float64 { return t.Hi - t.Lo }

// String implements fmt.Stringer.
func (t Target) String() string {
	if t.Hi >= 1 && t.Lo > 0 {
		return fmt.Sprintf("av>%.2f", t.Lo)
	}
	return fmt.Sprintf("[%.2f,%.2f]", t.Lo, t.Hi)
}

// Validate checks the interval is well formed.
func (t Target) Validate() error {
	if math.IsNaN(t.Lo) || math.IsNaN(t.Hi) || t.Lo < 0 || t.Hi > 1 || t.Hi < t.Lo {
		return fmt.Errorf("ops: invalid target %+v", t)
	}
	return nil
}

// Band is a half-open availability interval [Lo, Hi) — the addressing
// mode of the range-cast and aggregation family (DESIGN.md §13).
// Half-open bands tile: adjacent bands [a,b) and [b,c) partition [a,c)
// with no node addressed twice, which is what an availability census
// sweeping band by band needs. A Hi of 1 (or more) closes the top end
// to [Lo, 1], so full-range operations include perfectly available
// nodes. An empty band (Lo == Hi below 1) is valid and addresses no
// one — the operation completes with zero coverage.
type Band struct {
	Lo float64
	Hi float64
}

// Contains reports whether availability av lies in the band.
func (b Band) Contains(av float64) bool {
	if av < b.Lo {
		return false
	}
	if b.Hi >= 1 {
		return av <= 1
	}
	return av < b.Hi
}

// Empty reports whether the band addresses no availability at all.
func (b Band) Empty() bool { return b.Lo >= b.Hi && b.Hi < 1 }

// Target returns the closed interval the entry anycast routes toward:
// greedy forwarding needs a distance metric, and the closed hull of
// the band is the right attractor (a node exactly at Hi is a fine
// entry point even though it will not itself be addressed).
func (b Band) Target() Target { return Target{Lo: b.Lo, Hi: b.Hi} }

// String implements fmt.Stringer.
func (b Band) String() string { return fmt.Sprintf("[%.2f,%.2f)", b.Lo, b.Hi) }

// Validate checks the band is well formed.
func (b Band) Validate() error {
	if math.IsNaN(b.Lo) || math.IsNaN(b.Hi) || b.Lo < 0 || b.Lo > 1 || b.Hi < b.Lo || b.Hi > 1 {
		return fmt.Errorf("ops: invalid band %+v", b)
	}
	return nil
}
