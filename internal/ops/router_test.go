package ops

import (
	"testing"
	"time"

	"avmem/internal/avmon"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/sim"
)

// cluster is a miniature AVMEM world for router tests: a set of nodes
// with chosen availabilities, full predicate-driven membership, a
// fixed-latency network, and a shared collector.
type cluster struct {
	t       *testing.T
	world   *sim.World
	net     *sim.Network
	col     *Collector
	monitor avmon.Static
	online  map[ids.NodeID]bool
	routers map[ids.NodeID]*Router
	members map[ids.NodeID]*core.Membership
	nodes   []ids.NodeID
}

const testHop = 10 * time.Millisecond

// testEnv adapts the test cluster's world + network to Env (the
// production bindings live in internal/runtime, which this package
// cannot import without a cycle).
type testEnv struct {
	world  *sim.World
	net    *sim.Network
	self   ids.NodeID
	online func() bool
}

var _ Env = (*testEnv)(nil)

func newTestEnv(world *sim.World, net *sim.Network, self ids.NodeID, online func() bool) *testEnv {
	if online == nil {
		online = func() bool { return true }
	}
	return &testEnv{world: world, net: net, self: self, online: online}
}

func (e *testEnv) Now() time.Duration               { return e.world.Now() }
func (e *testEnv) After(d time.Duration, fn func()) { e.world.After(d, fn) }
func (e *testEnv) RandFloat() float64               { return e.world.Rand().Float64() }
func (e *testEnv) Send(to ids.NodeID, msg any)      { e.net.Send(e.self, to, msg) }
func (e *testEnv) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	e.net.SendCall(e.self, to, msg, onResult)
}
func (e *testEnv) Online() bool { return e.online() }

// newCluster builds a cluster where node i has availability avails[i].
// The predicate decides the membership graph; every node discovers all
// others.
func newCluster(t *testing.T, pred *core.Predicate, avails []float64, verify bool) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		world:   sim.NewWorld(1),
		col:     NewCollector(),
		monitor: avmon.Static{},
		online:  make(map[ids.NodeID]bool, len(avails)),
		routers: make(map[ids.NodeID]*Router, len(avails)),
		members: make(map[ids.NodeID]*core.Membership, len(avails)),
	}
	c.net = sim.NewNetwork(c.world, sim.FixedLatency(testHop),
		func(id ids.NodeID) bool { return c.online[id] }, 0)
	for i, av := range avails {
		id := ids.Synthetic(i)
		c.nodes = append(c.nodes, id)
		c.monitor[id] = av
		c.online[id] = true
	}
	hashes := ids.NewHashCache(0)
	for _, id := range c.nodes {
		m, err := core.NewMembership(id, core.Config{
			Predicate:     pred,
			Monitor:       c.monitor,
			Hashes:        hashes,
			Clock:         c.world.Now,
			VerifyCushion: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Discover(c.nodes)
		c.members[id] = m

		self := id
		env := newTestEnv(c.world, c.net, id, func() bool { return c.online[self] })
		r, err := NewRouter(RouterConfig{
			Membership:    m,
			Env:           env,
			Collector:     c.col,
			VerifyInbound: verify,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.routers[id] = r
		c.net.Register(id, r.HandleMessage)
	}
	return c
}

func (c *cluster) run() { c.world.Run(c.world.Now() + time.Minute) }

// chainPredicate accepts only horizontal pairs (|Δav| < eps), so the
// overlay is a path graph over sorted availabilities — good for
// multi-hop routing tests.
func chainPredicate(t *testing.T, eps float64) *core.Predicate {
	t.Helper()
	p, err := core.NewPredicate(eps, core.ConstantHorizontal{Fraction: 1}, core.UniformRandom{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fullPredicate accepts every pair.
func fullPredicate(t *testing.T) *core.Predicate {
	t.Helper()
	p, err := core.NewPredicate(0.1, core.ConstantHorizontal{Fraction: 1}, core.UniformRandom{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRouterValidation(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5}, false)
	m := c.members[c.nodes[0]]
	env := newTestEnv(c.world, c.net, c.nodes[0], nil)
	if _, err := NewRouter(RouterConfig{Env: env, Collector: c.col}); err == nil {
		t.Error("want error for nil membership")
	}
	if _, err := NewRouter(RouterConfig{Membership: m, Collector: c.col}); err == nil {
		t.Error("want error for nil env")
	}
	if _, err := NewRouter(RouterConfig{Membership: m, Env: env}); err == nil {
		t.Error("want error for nil collector")
	}
}

func TestAnycastOptionValidation(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	r := c.routers[c.nodes[0]]
	tgt, _ := Range(0.85, 0.95)
	bad := []AnycastOptions{
		{Policy: Policy(0), Flavor: core.HSVS, TTL: 6},
		{Policy: Greedy, Flavor: core.Flavor(0), TTL: 6},
		{Policy: Greedy, Flavor: core.HSVS, TTL: 0},
		{Policy: RetriedGreedy, Flavor: core.HSVS, TTL: 6, Retry: 0},
	}
	for i, o := range bad {
		if _, err := r.Anycast(tgt, o); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := r.Anycast(Target{Lo: 0.5, Hi: 0.1}, DefaultAnycastOptions()); err == nil {
		t.Error("want error for invalid target")
	}
}

func TestAnycastInitiatorInRange(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.9, 0.5}, false)
	tgt, _ := Range(0.85, 0.95)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeDelivered || r.Hops != 0 || r.Latency != 0 {
		t.Errorf("record = %+v, want immediate delivery", r)
	}
}

func TestGreedyAnycastOneHop(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9, 0.3}, false)
	tgt, _ := Range(0.85, 0.95)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if r.Hops != 1 {
		t.Errorf("hops = %d, want 1", r.Hops)
	}
	if r.Latency != testHop {
		t.Errorf("latency = %v, want %v", r.Latency, testHop)
	}
}

func TestGreedyAnycastMultiHopChain(t *testing.T) {
	// Path overlay 0.5–0.6–0.7–0.8–0.9; target reachable only by
	// walking the chain.
	avails := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	c := newCluster(t, chainPredicate(t, 0.15), avails, false)
	tgt, _ := Range(0.88, 0.92)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v, want delivered", r.Outcome)
	}
	if r.Hops != 4 {
		t.Errorf("hops = %d, want 4", r.Hops)
	}
	if r.Latency != 4*testHop {
		t.Errorf("latency = %v, want %v", r.Latency, 4*testHop)
	}
}

func TestAnycastTTLExpires(t *testing.T) {
	avails := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	c := newCluster(t, chainPredicate(t, 0.15), avails, false)
	tgt, _ := Range(0.88, 0.92)
	opts := DefaultAnycastOptions()
	opts.TTL = 2 // needs 4 hops
	id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeTTLExpired {
		t.Errorf("outcome = %v, want ttl-expired", r.Outcome)
	}
}

func TestAnycastNoCandidates(t *testing.T) {
	// A single isolated node outside the target has no next hop.
	c := newCluster(t, fullPredicate(t), []float64{0.5}, false)
	tgt, _ := Range(0.85, 0.95)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeRetryExpired {
		t.Errorf("outcome = %v, want retry-expired (no candidates)", r.Outcome)
	}
}

func TestGreedyFailsOverOnOfflineNextHop(t *testing.T) {
	// Transport failure is observable (a connect to a dead host fails),
	// so plain greedy fails over: with the best candidate offline, the
	// message reaches the second in-range candidate.
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9, 0.92}, false)
	c.online[c.nodes[1]] = false
	tgt, _ := Range(0.85, 0.95)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v, want delivered via failover", r.Outcome)
	}
	if r.Latency <= testHop {
		t.Errorf("latency = %v, should include the failed attempt", r.Latency)
	}
}

func TestGreedyExhaustsCandidates(t *testing.T) {
	// With every candidate offline, greedy fails over until the list is
	// exhausted and the operation fails explicitly.
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	c.online[c.nodes[1]] = false
	tgt, _ := Range(0.85, 0.95)
	id, err := c.routers[c.nodes[0]].Anycast(tgt, DefaultAnycastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeRetryExpired {
		t.Errorf("outcome = %v, want retry-expired after exhausting candidates", r.Outcome)
	}
}

func TestRetriedGreedyFailsOver(t *testing.T) {
	// Two in-range candidates; the greedy-preferred one (closest, then
	// lowest ID — node 1) is offline, so the retry moves to node 2.
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9, 0.9}, false)
	c.online[c.nodes[1]] = false
	tgt, _ := Range(0.85, 0.95)
	opts := AnycastOptions{Policy: RetriedGreedy, Flavor: core.HSVS, TTL: 6, Retry: 4}
	id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeDelivered {
		t.Fatalf("outcome = %v, want delivered via failover", r.Outcome)
	}
	if r.Hops != 1 {
		t.Errorf("hops = %d, want 1", r.Hops)
	}
	// Latency must include the failed attempt's ack timeout (160ms
	// default) plus the successful hop.
	if r.Latency <= testHop {
		t.Errorf("latency = %v, should include failure detection", r.Latency)
	}
}

func TestRetriedGreedyBudgetExhausts(t *testing.T) {
	// All candidates offline: budget burns out → retry-expired.
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9, 0.9, 0.9}, false)
	for _, id := range c.nodes[1:] {
		c.online[id] = false
	}
	tgt, _ := Range(0.85, 0.95)
	opts := AnycastOptions{Policy: RetriedGreedy, Flavor: core.HSVS, TTL: 6, Retry: 2}
	id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome != OutcomeRetryExpired {
		t.Errorf("outcome = %v, want retry-expired", r.Outcome)
	}
}

func TestAnnealingDelivers(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9, 0.2, 0.7}, false)
	tgt, _ := Range(0.85, 0.95)
	opts := AnycastOptions{Policy: Annealing, Flavor: core.HSVS, TTL: 6}
	delivered := 0
	for i := 0; i < 20; i++ {
		id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
		if err != nil {
			t.Fatal(err)
		}
		c.run()
		if r, _ := c.col.Anycast(id); r.Outcome == OutcomeDelivered {
			delivered++
		}
	}
	// Annealing may take random detours but with TTL 6 and an in-range
	// direct neighbor it should deliver most of the time.
	if delivered < 15 {
		t.Errorf("annealing delivered %d/20", delivered)
	}
}

func TestFlavorRestrictsNeighborUse(t *testing.T) {
	// Initiator 0.5; in-range node 0.9 is a vertical neighbor. HS-only
	// forwarding cannot use it.
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	tgt, _ := Range(0.85, 0.95)
	opts := AnycastOptions{Policy: Greedy, Flavor: core.HSOnly, TTL: 6}
	id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Anycast(id)
	if r.Outcome == OutcomeDelivered {
		t.Error("HS-only anycast used a vertical neighbor")
	}
}

func TestMulticastFloodFullCoverage(t *testing.T) {
	// Nodes 1..4 in range; initiator 0 outside. Flood must reach all.
	avails := []float64{0.5, 0.86, 0.88, 0.9, 0.92, 0.3}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	opts := DefaultMulticastOptions()
	opts.Eligible = 4
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Multicast(id)
	if !r.EnteredRange {
		t.Fatal("multicast never entered the range")
	}
	if got := r.Reliability(); got != 1.0 {
		t.Errorf("reliability = %v, want 1.0", got)
	}
	if r.Spam != 0 {
		t.Errorf("spam = %d, want 0", r.Spam)
	}
	if r.WorstLatency() <= 0 {
		t.Error("worst latency not recorded")
	}
}

func TestMulticastInitiatorInsideRange(t *testing.T) {
	avails := []float64{0.9, 0.88, 0.86}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	opts := DefaultMulticastOptions()
	opts.Eligible = 3
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Multicast(id)
	if !r.EnteredRange || r.Reliability() != 1.0 {
		t.Errorf("entered=%v reliability=%v", r.EnteredRange, r.Reliability())
	}
}

func TestMulticastSpamOnStaleCache(t *testing.T) {
	// Node 1's availability dropped out of range, but the other nodes
	// still cache the old in-range value → node 1 receives spam.
	avails := []float64{0.9, 0.88, 0.86}
	c := newCluster(t, fullPredicate(t), avails, false)
	c.monitor[c.nodes[1]] = 0.5     // world changed
	c.members[c.nodes[1]].Refresh() // node 1 refreshes its own view
	// Nodes 0 and 2 did NOT refresh: their cached entry for node 1 is
	// stale (0.88, in range).
	tgt, _ := Range(0.85, 0.95)
	opts := DefaultMulticastOptions()
	opts.Eligible = 2 // truly in range: nodes 0 and 2
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	r, _ := c.col.Multicast(id)
	if r.Spam != 1 {
		t.Errorf("spam = %d, want 1 (stale-cached node 1)", r.Spam)
	}
	if got := r.Reliability(); got != 1.0 {
		t.Errorf("reliability = %v, want 1.0", got)
	}
}

func TestMulticastGossipCoverageAndTermination(t *testing.T) {
	// 8 in-range nodes, fully connected; gossip fanout 3 × 3 rounds.
	avails := []float64{0.86, 0.87, 0.88, 0.89, 0.9, 0.91, 0.92, 0.93}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	opts := MulticastOptions{
		Anycast:  DefaultAnycastOptions(),
		Mode:     Gossip,
		Flavor:   core.HSVS,
		Fanout:   3,
		Rounds:   3,
		Period:   time.Second,
		Eligible: 8,
	}
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Gossip runs over multiple periods: run long enough, then verify
	// the event queue drains (termination).
	c.world.Run(c.world.Now() + time.Minute)
	if c.world.Pending() != 0 {
		t.Errorf("gossip left %d events pending after a minute", c.world.Pending())
	}
	r, _ := c.col.Multicast(id)
	if got := r.Reliability(); got < 0.99 {
		t.Errorf("gossip reliability = %v, want full coverage in a clique", got)
	}
	// Worst latency spans at least one gossip period (multi-round).
	if r.WorstLatency() < time.Second && len(r.Delivered) > 4 {
		t.Logf("note: gossip finished within one period: %v", r.WorstLatency())
	}
}

func TestMulticastGossipRespectsFanout(t *testing.T) {
	// Star-of-clique check at the message level: with fanout 2 and 1
	// round, the initiator gossips to exactly 2 of its 4 in-range
	// neighbors (plus duplicates suppressed).
	avails := []float64{0.9, 0.86, 0.87, 0.88, 0.89}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	opts := MulticastOptions{
		Anycast:  DefaultAnycastOptions(),
		Mode:     Gossip,
		Flavor:   core.HSVS,
		Fanout:   2,
		Rounds:   1,
		Period:   time.Second,
		Eligible: 5,
	}
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.world.Run(c.world.Now() + time.Minute)
	r, _ := c.col.Multicast(id)
	// Initiator + its 2 targets each gossip to 2 more: coverage can
	// reach everyone, but never less than initiator + 2.
	if len(r.Delivered) < 3 {
		t.Errorf("delivered = %d, want >= 3", len(r.Delivered))
	}
	if c.world.Pending() != 0 {
		t.Error("gossip did not terminate")
	}
}

func TestMulticastValidation(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5}, false)
	r := c.routers[c.nodes[0]]
	tgt, _ := Range(0.85, 0.95)
	bad := DefaultMulticastOptions()
	bad.Mode = Gossip // fanout/rounds/period missing
	if _, err := r.Multicast(tgt, bad); err == nil {
		t.Error("want error for gossip without parameters")
	}
	bad2 := DefaultMulticastOptions()
	bad2.Mode = Mode(0)
	if _, err := r.Multicast(tgt, bad2); err == nil {
		t.Error("want error for invalid mode")
	}
	bad3 := DefaultMulticastOptions()
	bad3.Flavor = core.Flavor(0)
	if _, err := r.Multicast(tgt, bad3); err == nil {
		t.Error("want error for invalid flavor")
	}
}

func TestVerifyInboundRejectsNonNeighborSender(t *testing.T) {
	// Reject-all predicate: no node is anyone's neighbor, so any direct
	// send must be rejected by the verifying receiver.
	p, err := core.NewPredicate(0.1, core.ConstantHorizontal{Fraction: 0}, core.UniformRandom{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, p, []float64{0.5, 0.9}, true)
	tgt, _ := Range(0.85, 0.95)
	attacker, victim := c.nodes[0], c.nodes[1]
	msg := AnycastMsg{ID: MsgID{Origin: attacker, Seq: 1}, Target: tgt, Policy: Greedy, Flavor: core.HSVS, TTL: 6}
	c.col.StartAnycast(msg.ID, tgt)
	c.net.Send(attacker, victim, msg)
	c.run()
	if got := c.routers[victim].Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	r, _ := c.col.Anycast(msg.ID)
	if r.Outcome == OutcomeDelivered {
		t.Error("flooded message was accepted")
	}
}

func TestUnknownPayloadIgnored(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	c.net.Send(c.nodes[0], c.nodes[1], "garbage")
	c.run() // must not panic
}

func TestDuplicateMulticastIgnored(t *testing.T) {
	avails := []float64{0.9, 0.88}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	id := MsgID{Origin: c.nodes[0], Seq: 99}
	c.col.StartMulticast(id, tgt, 2, 0)
	m := MulticastMsg{ID: id, Target: tgt, Spec: MulticastSpec{Mode: Flood, Flavor: core.HSVS}}
	c.net.Send(c.nodes[0], c.nodes[1], m)
	c.net.Send(c.nodes[0], c.nodes[1], m)
	c.run()
	r, _ := c.col.Multicast(id)
	if len(r.Delivered) != 2 { // node1 once + node0 via flood-back
		t.Errorf("delivered set = %v", r.Delivered)
	}
}
