package ops

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"avmem/internal/core"
)

// TestGossipSkipsRoundsWhileOffline: a gossiping node that churns
// offline skips its sending rounds but keeps its schedule, resuming if
// it returns — and the world never deadlocks.
func TestGossipSkipsRoundsWhileOffline(t *testing.T) {
	avails := []float64{0.9, 0.88, 0.86, 0.87}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	opts := MulticastOptions{
		Anycast:  DefaultAnycastOptions(),
		Mode:     Gossip,
		Flavor:   core.HSVS,
		Fanout:   1, // slow dissemination so churn matters
		Rounds:   4,
		Period:   time.Second,
		Eligible: 4,
	}
	id, err := c.routers[c.nodes[0]].Multicast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Initiator goes offline after its first round, then returns.
	c.world.At(c.world.Now()+1500*time.Millisecond, func() { c.online[c.nodes[0]] = false })
	c.world.At(c.world.Now()+2500*time.Millisecond, func() { c.online[c.nodes[0]] = true })
	c.world.Run(c.world.Now() + time.Minute)
	if c.world.Pending() != 0 {
		t.Errorf("%d events still pending; gossip schedule leaked", c.world.Pending())
	}
	rec, _ := c.col.Multicast(id)
	if len(rec.Delivered) == 0 {
		t.Error("nothing delivered at all")
	}
}

// TestMidFlightChurnDuringRetriedAnycast: candidates flip offline while
// the message is being retried; the operation still terminates with a
// definite outcome.
func TestMidFlightChurnDuringRetriedAnycast(t *testing.T) {
	avails := []float64{0.5, 0.9, 0.91, 0.92, 0.93}
	c := newCluster(t, fullPredicate(t), avails, false)
	tgt, _ := Range(0.85, 0.95)
	// All in-range candidates start online but churn off rapidly.
	for step, id := range c.nodes[1:] {
		id := id
		c.world.At(time.Duration(step*50)*time.Millisecond, func() { c.online[id] = false })
	}
	opts := AnycastOptions{Policy: RetriedGreedy, Flavor: core.HSVS, TTL: 6, Retry: 16}
	id, err := c.routers[c.nodes[0]].Anycast(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.world.Run(c.world.Now() + time.Minute)
	rec, _ := c.col.Anycast(id)
	if rec.Outcome == OutcomePending {
		t.Errorf("operation never terminated: %+v", rec)
	}
}

// TestAnnealIndexInBoundsProperty: the annealing choice always indexes
// a real candidate regardless of TTL or target geometry.
func TestAnnealIndexInBoundsProperty(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.2, 0.9, 0.7, 0.4}, false)
	r := c.routers[c.nodes[0]]
	prop := func(rawLo, rawHi float64, ttl uint8) bool {
		lo := clampUnit(rawLo)
		hi := clampUnit(rawHi)
		if hi < lo {
			lo, hi = hi, lo
		}
		m := AnycastMsg{
			Target: Target{Lo: lo, Hi: hi},
			Policy: Annealing,
			TTL:    int(ttl % 7),
		}
		candidates := r.candidates("", core.HSVS, m.Target)
		if len(candidates) == 0 {
			return true
		}
		idx := r.annealIndex(candidates, m)
		return idx >= 0 && idx < len(candidates)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCandidatesSortedByGreedyMetricProperty: the candidate list is
// always sorted by availability distance to the target.
func TestCandidatesSortedByGreedyMetricProperty(t *testing.T) {
	avails := []float64{0.5, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9}
	c := newCluster(t, fullPredicate(t), avails, false)
	r := c.routers[c.nodes[0]]
	prop := func(rawLo, rawHi float64) bool {
		lo := clampUnit(rawLo)
		hi := clampUnit(rawHi)
		if hi < lo {
			lo, hi = hi, lo
		}
		tgt := Target{Lo: lo, Hi: hi}
		candidates := r.candidates("", core.HSVS, tgt)
		for i := 1; i < len(candidates); i++ {
			if tgt.Distance(candidates[i-1].Availability) > tgt.Distance(candidates[i].Availability)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDuplicateSuppressionBounded: the seen-set reset keeps memory
// bounded even under a deluge of distinct multicast IDs.
func TestDuplicateSuppressionBounded(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.9, 0.88}, false)
	tgt, _ := Range(0.85, 0.95)
	r := c.routers[c.nodes[1]]
	for i := 0; i < maxSeen+100; i++ {
		r.HandleMessage(c.nodes[0], MulticastMsg{
			ID:     MsgID{Origin: c.nodes[0], Seq: uint64(i)},
			Target: tgt,
			Spec:   MulticastSpec{Mode: Flood, Flavor: core.HSVS},
		})
	}
	if len(r.seen) > maxSeen {
		t.Errorf("seen set grew to %d, bound is %d", len(r.seen), maxSeen)
	}
}

func clampUnit(v float64) float64 {
	v = math.Abs(math.Mod(v, 1))
	if math.IsNaN(v) {
		return 0
	}
	return v
}
