package ops

import (
	"math"
	"testing"
	"time"

	"avmem/internal/agg"
	"avmem/internal/ids"
)

// plausiblePartial builds an in-hull forgery — values a statistical
// check cannot fault, so only result binding stands between it and the
// origin's collector.
func plausiblePartial() agg.Partial {
	return agg.Partial{N: 3, Sum: 2.1, Min: 0.6, Max: 0.8, Depth: 2}
}

// TestAggResultBindingRejectsForgery pins the satellite fix: even at
// redundancy 1, an AggResultMsg that does not echo the origin-minted
// token is rejected and counted — the old first-wins race (forge a
// result the instant a tree is observed, beat the root) is closed.
func TestAggResultBindingRejectsForgery(t *testing.T) {
	avails := []float64{0.1, 0.5, 0.6, 0.7, 0.9}
	c := newCluster(t, fullPredicate(t), avails, false)
	origin := c.nodes[0]
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 3, 3
	id, err := c.routers[origin].Aggregate(agg.Count, 0.4, 0.8, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The forger races the genuine root: its fabricated result reaches
	// the origin before any tree message has even propagated. It never
	// saw the entry anycast's token, so it sends zero.
	c.routers[origin].HandleMessage(c.nodes[4], AggResultMsg{
		ID: id, Result: plausiblePartial(), Token: 0,
	})
	rec, _ := c.col.Aggregate(id)
	if rec.Done {
		t.Fatal("forged result accepted before the tree reported")
	}
	c.runLong()
	rec, _ = c.col.Aggregate(id)
	if !rec.Done {
		t.Fatal("aggregation did not complete")
	}
	if got := rec.Value(); got != 3 {
		t.Errorf("count = %v, want the honest 3", got)
	}
	rej, forgRej, forgAcc := c.col.AggCounters()
	if forgRej < 1 {
		t.Errorf("forgery rejections = %d, want >= 1", forgRej)
	}
	if forgAcc != 0 || rej != 0 {
		t.Errorf("counters = (%d rejected, %d forgery accepted), want 0/0", rej, forgAcc)
	}
}

// TestAggResultBindingRejectsWrongSender: a result echoing the right
// token from the wrong transport-level sender (a replay through a
// different node) is refused — acceptance binds to the recorded root.
func TestAggResultBindingRejectsWrongSender(t *testing.T) {
	col := NewCollector()
	id := MsgID{Origin: "origin", Seq: 1}
	col.StartAggregate(id, agg.Count, Band{Lo: 0.4, Hi: 1}, 3, 3, 0)
	col.addAggInstance(id, id, 5)
	col.aggregateEntered(id, "root")
	honest := plausiblePartial()
	col.aggregateResult(id, "evil", 5, honest, 0)
	_, forgRej, forgAcc := col.AggCounters()
	if forgRej != 1 {
		t.Errorf("wrong-sender result not rejected (forgery rejections = %d)", forgRej)
	}
	if forgAcc != 0 {
		t.Errorf("forgery accepted = %d, want 0", forgAcc)
	}
	rec, _ := col.Aggregate(id)
	if rec.Done || rec.Instances[0].Done {
		t.Fatal("replayed result filled the instance slot")
	}
	// The genuine root's result with the same token is accepted.
	col.aggregateResult(id, "root", 5, honest, 0)
	rec, _ = col.Aggregate(id)
	if !rec.Done {
		t.Fatal("genuine result not accepted after rejected replay")
	}
}

// TestAggRedundantTreesAgree: redundancy k grows k instances that all
// return, agree, and resolve with zero divergence on an honest fleet —
// and the combined result still matches the exact census.
func TestAggRedundantTreesAgree(t *testing.T) {
	avails := []float64{0.1, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultAggregateOptions()
	opts.Redundancy = 3
	opts.Eligible, opts.Truth = 6, 6
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Count, 0.4, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, ok := c.col.Aggregate(id)
	if !ok || !rec.Done {
		t.Fatalf("redundant aggregation did not complete: %+v", rec)
	}
	if len(rec.Instances) != 3 {
		t.Fatalf("instances = %d, want 3", len(rec.Instances))
	}
	for i, inst := range rec.Instances {
		if !inst.Done {
			t.Errorf("instance %d never returned", i)
		}
		if inst.Token == 0 {
			t.Errorf("instance %d minted a zero token", i)
		}
	}
	if rec.Divergence != 0 {
		t.Errorf("divergence = %v on an honest fleet, want 0", rec.Divergence)
	}
	if got := rec.Value(); got != 6 {
		t.Errorf("count = %v, want 6", got)
	}
}

// TestAggRedundancyMedianOutvotesPoisonedTree: with k=3 and one tree
// root Byzantine — its result token-correct and sender-correct but
// wildly wrong — the origin's median acceptance resolves to the honest
// value and reports the outlier as divergence.
func TestAggRedundancyMedianOutvotesPoisonedTree(t *testing.T) {
	col := NewCollector()
	primary := MsgID{Origin: "origin", Seq: 1}
	second := MsgID{Origin: "origin", Seq: 2}
	third := MsgID{Origin: "origin", Seq: 3}
	col.StartAggregate(primary, agg.Count, Band{Lo: 0.4, Hi: 1}, 6, 6, 0)
	for i, inst := range []MsgID{primary, second, third} {
		col.addAggInstance(primary, inst, uint64(10+i))
		col.aggregateEntered(inst, ids.Synthetic(i))
	}
	honest := agg.Partial{N: 6, Sum: 4.2, Min: 0.45, Max: 0.95, Depth: 2}
	poisoned := agg.Partial{N: 60, Sum: 30, Min: 0.4, Max: 0.99, Depth: 1}
	col.aggregateResult(primary, ids.Synthetic(0), 10, honest, 0)
	col.aggregateResult(second, ids.Synthetic(1), 11, poisoned, 0)
	col.aggregateResult(third, ids.Synthetic(2), 12, honest, 0)
	rec, _ := col.Aggregate(primary)
	if !rec.Done {
		t.Fatal("aggregation did not resolve with all instances returned")
	}
	if got := rec.Value(); got != 6 {
		t.Errorf("accepted count = %v, want the honest median 6", got)
	}
	if math.Abs(rec.Divergence-1.0/3) > 1e-12 {
		t.Errorf("divergence = %v, want 1/3 with one poisoned tree", rec.Divergence)
	}
}

// TestPartialSuspectBounds pins the PDF sanity rules: count bounded by
// the band's expected census, order statistics and mean inside the
// band hull with tolerance, empty partials exempt.
func TestPartialSuspectBounds(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	r := c.routers[c.nodes[0]]
	r.bandCensus = func(lo, hi float64) float64 { return 10 * (hi - lo) }
	r.valueChecks = true
	band := Band{Lo: 0.5, Hi: 1}
	cases := []struct {
		name string
		p    agg.Partial
		want string
	}{
		{"honest", agg.Partial{N: 4, Sum: 2.8, Min: 0.6, Max: 0.8}, ""},
		{"empty", agg.Partial{}, ""},
		{"count blowout", agg.Partial{N: 500, Sum: 350, Min: 0.6, Max: 0.8}, "agg-count-bounds"},
		{"value above hull", agg.Partial{N: 2, Sum: 101, Min: 0.7, Max: 100}, "agg-hull-bounds"},
		{"value below hull", agg.Partial{N: 2, Sum: 0.8, Min: 0.1, Max: 0.7}, "agg-hull-bounds"},
		{"avg out of hull", agg.Partial{N: 10, Sum: 3, Min: 0.55, Max: 0.95}, "agg-avg-bounds"},
	}
	for _, tc := range cases {
		if got := r.partialSuspect(band, tc.p); got != tc.want {
			t.Errorf("%s: suspect = %q, want %q", tc.name, got, tc.want)
		}
	}
	// With a caller-supplied value source the hull says nothing about
	// the values; only the count bound applies.
	r.valueChecks = false
	if got := r.partialSuspect(band, agg.Partial{N: 2, Sum: 101, Min: 0.7, Max: 100}); got != "" {
		t.Errorf("value checks applied to non-availability values: %q", got)
	}
}

// TestOriginRejectsOutOfHullResult: the sanity checks guard the
// origin's own doorstep too — a root whose claimed result leaves the
// band hull is dropped and counted as a rejected partial, leaving the
// instance pending for the redundancy deadline.
func TestOriginRejectsOutOfHullResult(t *testing.T) {
	avails := []float64{0.1, 0.5, 0.6, 0.7, 0.9}
	c := newCluster(t, fullPredicate(t), avails, false)
	origin := c.nodes[0]
	r := c.routers[origin]
	r.bandCensus = func(lo, hi float64) float64 { return 5 * (hi - lo) }
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 3, 3
	id, err := r.Aggregate(agg.Count, 0.4, 0.95, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run well short of the origin's redundancy deadline so the sanity
	// tracking for the instance is still armed.
	c.world.Run(c.world.Now() + time.Second)
	rec, _ := c.col.Aggregate(id)
	inst := rec.Instances[0]
	if inst.EnteredBy.IsNil() {
		t.Fatal("root never recorded")
	}
	// The root itself lies: token and sender check out, the value does
	// not — availability 100 is outside any band hull.
	r.HandleMessage(inst.EnteredBy, AggResultMsg{
		ID: id, Token: inst.Token,
		Result: agg.Partial{N: 3, Sum: 300, Min: 100, Max: 100, Depth: 1},
	})
	rej, _, forgAcc := c.col.AggCounters()
	if rej < 1 {
		t.Errorf("out-of-hull root result not counted as rejected partial (%d)", rej)
	}
	if forgAcc != 0 {
		t.Errorf("forgery accepted = %d, want 0", forgAcc)
	}
	rec, _ = c.col.Aggregate(id)
	if rec.Instances[0].Done && rec.Instances[0].Result.Min == 100 {
		t.Error("poisoned result filled the instance slot")
	}
}

// TestSubTargetPartitionsHull: the k entry slices tile the hull
// exactly — no gap, no overlap, exact top end.
func TestSubTargetPartitionsHull(t *testing.T) {
	hull := Target{Lo: 0.2, Hi: 0.9}
	const k = 4
	prev := hull.Lo
	for j := 0; j < k; j++ {
		s := subTarget(hull, j, k)
		if math.Abs(s.Lo-prev) > 1e-12 {
			t.Errorf("slice %d starts at %v, want %v", j, s.Lo, prev)
		}
		if s.Hi <= s.Lo {
			t.Errorf("slice %d is empty: %+v", j, s)
		}
		prev = s.Hi
	}
	if prev != hull.Hi {
		t.Errorf("slices end at %v, want the exact hull top %v", prev, hull.Hi)
	}
	if got := subTarget(hull, 0, 1); got != hull {
		t.Errorf("k=1 slice = %+v, want the whole hull", got)
	}
}

// TestSaltKeyPreservesLegacyOrder: salt 0 is the identity (single-tree
// aggregations, multicast, and rangecast orderings are untouched);
// distinct salts permute scratch order while staying in [0,1).
func TestSaltKeyPreservesLegacyOrder(t *testing.T) {
	keys := []float64{0, 0.25, 0.5, 0.75, 0.999}
	for _, k := range keys {
		if got := saltKey(k, 0); got != k {
			t.Errorf("saltKey(%v, 0) = %v, want identity", k, got)
		}
		s1, s2 := saltKey(k, aggSalt(1)), saltKey(k, aggSalt(2))
		if s1 < 0 || s1 >= 1 || s2 < 0 || s2 >= 1 {
			t.Errorf("salted keys out of [0,1): %v, %v", s1, s2)
		}
		if s1 == s2 {
			t.Errorf("salts 1 and 2 collide on key %v", k)
		}
	}
}
