package ops

import (
	"math"
	"testing"
)

// FuzzBand throws arbitrary float pairs at the band algebra and checks
// the properties the range-cast family is built on: Validate/Empty/
// Contains consistency, the closed-hull Target relationship, and the
// half-open tiling law (adjacent bands partition their union).
func FuzzBand(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(0.2, 0.2)
	f.Add(0.3, 0.7)
	f.Add(0.9999, 1.0)
	f.Add(-1.0, 2.0)
	f.Add(math.NaN(), 0.5)
	f.Fuzz(func(t *testing.T, lo, hi float64) {
		b := Band{Lo: lo, Hi: hi}
		// Contains and Empty must never panic, valid band or not.
		_ = b.Contains(0.5)
		_ = b.Empty()
		_ = b.String()
		if b.Validate() != nil {
			return
		}
		// A valid band's closed hull is a valid anycast target that
		// covers everything the band addresses.
		hull := b.Target()
		if err := hull.Validate(); err != nil {
			t.Fatalf("valid band %v has invalid hull target: %v", b, err)
		}
		samples := []float64{0, lo - 0.01, lo, lo + 1e-9, (lo + hi) / 2, hi - 1e-9, hi, hi + 0.01, 1}
		for _, av := range samples {
			if av < 0 || av > 1 {
				continue
			}
			if b.Contains(av) && !hull.Contains(av) {
				t.Fatalf("band %v contains %v but its hull %v does not", b, av, hull)
			}
			if b.Empty() && b.Contains(av) {
				t.Fatalf("empty band %v contains %v", b, av)
			}
		}
		// Tiling: splitting at an interior point partitions membership.
		// The law only holds for split points strictly below 1 — a Hi of
		// 1 closes a band's top end by design, so splitting the
		// degenerate top-closed point band [1,1] at 1 yields two copies
		// of itself, not a partition (found by this fuzzer; see
		// testdata/fuzz/FuzzBand).
		mid := lo + (hi-lo)/2
		if mid >= 1 {
			return
		}
		left, right := Band{Lo: lo, Hi: mid}, Band{Lo: mid, Hi: hi}
		if left.Validate() != nil || right.Validate() != nil {
			return
		}
		for _, av := range samples {
			if av < 0 || av > 1 {
				continue
			}
			whole := b.Contains(av)
			inLeft, inRight := left.Contains(av), right.Contains(av)
			if inLeft && inRight {
				t.Fatalf("band %v split at %v: %v addressed by both halves", b, mid, av)
			}
			if whole != (inLeft || inRight) {
				t.Fatalf("band %v split at %v: membership of %v not preserved (whole=%v left=%v right=%v)",
					b, mid, av, whole, inLeft, inRight)
			}
		}
	})
}

// FuzzTarget checks the closed-interval algebra: Contains agrees with
// Distance == 0, and Distance is the gap to the nearest edge.
func FuzzTarget(f *testing.F) {
	f.Add(0.0, 1.0, 0.5)
	f.Add(0.3, 0.3, 0.3)
	f.Add(0.8, 0.9, 0.2)
	f.Fuzz(func(t *testing.T, lo, hi, av float64) {
		tg := Target{Lo: lo, Hi: hi}
		_ = tg.Contains(av)
		_ = tg.Distance(av)
		_ = tg.String()
		if tg.Validate() != nil || math.IsNaN(av) {
			return
		}
		d := tg.Distance(av)
		if d < 0 {
			t.Fatalf("target %v: negative distance %v to %v", tg, d, av)
		}
		if tg.Contains(av) != (d == 0) {
			t.Fatalf("target %v: Contains(%v)=%v but Distance=%v", tg, av, tg.Contains(av), d)
		}
		if !tg.Contains(av) {
			want := math.Min(math.Abs(av-tg.Lo), math.Abs(av-tg.Hi))
			if math.Abs(d-want) > 1e-12 {
				t.Fatalf("target %v: Distance(%v)=%v, want gap to nearest edge %v", tg, av, d, want)
			}
		}
	})
}
