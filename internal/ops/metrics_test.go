package ops

import (
	"testing"
	"time"
)

func TestCollectorAnycastLifecycle(t *testing.T) {
	c := NewCollector()
	id := MsgID{Origin: "a", Seq: 1}
	tgt, _ := Range(0.8, 0.9)
	c.StartAnycast(id, tgt)
	r, ok := c.Anycast(id)
	if !ok || r.Outcome != OutcomePending {
		t.Fatalf("record = %+v ok=%v", r, ok)
	}
	c.anycastDelivered(id, 3, 150*time.Millisecond)
	if r.Outcome != OutcomeDelivered || r.Hops != 3 || r.Latency != 150*time.Millisecond {
		t.Errorf("after delivery = %+v", r)
	}
	// Terminal states are sticky.
	c.anycastFailed(id, OutcomeTTLExpired)
	if r.Outcome != OutcomeDelivered {
		t.Error("failure overwrote delivery")
	}
	c.anycastDelivered(id, 9, time.Second)
	if r.Hops != 3 {
		t.Error("second delivery overwrote the first")
	}
}

func TestCollectorAnycastFailure(t *testing.T) {
	c := NewCollector()
	id := MsgID{Origin: "a", Seq: 1}
	tgt, _ := Range(0.8, 0.9)
	c.StartAnycast(id, tgt)
	c.anycastFailed(id, OutcomeRetryExpired)
	r, _ := c.Anycast(id)
	if r.Outcome != OutcomeRetryExpired {
		t.Errorf("outcome = %v", r.Outcome)
	}
	// Late delivery cannot resurrect a failed operation.
	c.anycastDelivered(id, 1, time.Millisecond)
	if r.Outcome != OutcomeRetryExpired {
		t.Error("delivery overwrote failure")
	}
}

func TestCollectorUnknownIDsIgnored(t *testing.T) {
	c := NewCollector()
	id := MsgID{Origin: "ghost", Seq: 1}
	c.anycastDelivered(id, 1, time.Millisecond) // must not panic
	c.anycastFailed(id, OutcomeTTLExpired)
	c.multicastEntered(id)
	c.multicastDelivered(id, "n", time.Millisecond, true)
	if _, ok := c.Anycast(id); ok {
		t.Error("unregistered anycast materialized")
	}
	if _, ok := c.Multicast(id); ok {
		t.Error("unregistered multicast materialized")
	}
}

func TestMulticastRecordMetrics(t *testing.T) {
	c := NewCollector()
	id := MsgID{Origin: "a", Seq: 1}
	tgt, _ := Range(0.8, 0.9)
	c.StartMulticast(id, tgt, 4, 100*time.Millisecond)
	c.multicastEntered(id)
	c.multicastDelivered(id, "n1", 150*time.Millisecond, true)
	c.multicastDelivered(id, "n2", 300*time.Millisecond, true)
	c.multicastDelivered(id, "n1", 999*time.Millisecond, true) // duplicate
	c.multicastDelivered(id, "out", 200*time.Millisecond, false)

	r, ok := c.Multicast(id)
	if !ok {
		t.Fatal("record missing")
	}
	if !r.EnteredRange {
		t.Error("EnteredRange = false")
	}
	if got := r.Reliability(); got != 0.5 {
		t.Errorf("Reliability = %v, want 0.5 (2/4)", got)
	}
	if got := r.SpamRatio(); got != 0.25 {
		t.Errorf("SpamRatio = %v, want 0.25 (1/4)", got)
	}
	if got := r.WorstLatency(); got != 200*time.Millisecond {
		t.Errorf("WorstLatency = %v, want 200ms (300-100)", got)
	}
	if r.Delivered["n1"] != 150*time.Millisecond {
		t.Error("duplicate overwrote first delivery time")
	}
}

func TestMulticastRecordZeroEligible(t *testing.T) {
	r := &MulticastRecord{}
	if r.Reliability() != 0 || r.SpamRatio() != 0 || r.WorstLatency() != 0 {
		t.Error("zero-eligible record not all-zero")
	}
}

func TestCollectorEnumeration(t *testing.T) {
	c := NewCollector()
	tgt, _ := Range(0, 1)
	for i := 0; i < 5; i++ {
		c.StartAnycast(MsgID{Origin: "a", Seq: uint64(i)}, tgt)
	}
	for i := 0; i < 3; i++ {
		c.StartMulticast(MsgID{Origin: "m", Seq: uint64(i)}, tgt, 1, 0)
	}
	if got := len(c.Anycasts()); got != 5 {
		t.Errorf("Anycasts len = %d", got)
	}
	if got := len(c.Multicasts()); got != 3 {
		t.Errorf("Multicasts len = %d", got)
	}
}

// TestCoverageCapsAtOne: Eligible is an initiation-time snapshot while
// Delivered integrates over the dissemination, so churn can push the
// raw ratio past 1 — the metrics must cap there (found by the scenario
// fuzzer: scenarios/fuzz-corpus/fuzz-seed14.json).
func TestCoverageCapsAtOne(t *testing.T) {
	rc := &RangecastRecord{
		Eligible: 2,
		Delivered: map[string]time.Duration{
			"n1": 1, "n2": 2, "n3": 3, // n3 drifted into the band mid-flight
		},
	}
	if got := rc.Coverage(); got != 1 {
		t.Errorf("rangecast Coverage = %v, want capped 1", got)
	}
	mc := &MulticastRecord{
		Eligible:  2,
		Delivered: map[string]time.Duration{"n1": 1, "n2": 2, "n3": 3},
	}
	if got := mc.Reliability(); got != 1 {
		t.Errorf("multicast Reliability = %v, want capped 1", got)
	}
	ag := &AggregateRecord{Eligible: 2}
	ag.Result.N = 3
	if got := ag.Coverage(); got != 1 {
		t.Errorf("aggregate Coverage = %v, want capped 1", got)
	}
	// The uncapped regime is untouched.
	rc.Eligible = 6
	if got := rc.Coverage(); got != 0.5 {
		t.Errorf("rangecast Coverage = %v, want 0.5", got)
	}
}
