package ops

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"avmem/internal/ids"
	"avmem/internal/obs"
)

// TestCollectorConcurrentAccess hammers one instrumented Collector from
// writer goroutines (the shape of parallel worker lanes delivering ops
// concurrently) while reader goroutines take snapshot views and scrape
// the registry mid-flight. Run under -race (the CI race job covers this
// package) it pins that instrumented bump sites and snapshot reads
// never observe torn state.
func TestCollectorConcurrentAccess(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector()
	c.Instrument(reg)

	const writers, opsPer = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshot views plus a full Prometheus scrape, in a loop
	// until the writers finish — the mid-window read pattern.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range c.Anycasts() {
					_ = rec.ID
				}
				_ = len(c.Multicasts())
				_ = len(c.Rangecasts())
				_ = len(c.Aggregates())
				c.AggCounters()
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}

	// Writers: the full anycast + multicast lifecycle, one origin per
	// goroutine so MsgIDs never collide.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			origin := ids.NodeID(fmt.Sprintf("10.0.0.%d:400%d", w, w))
			for i := 0; i < opsPer; i++ {
				id := MsgID{Origin: origin, Seq: uint64(i)}
				c.StartAnycast(id, Target{Lo: 0.5, Hi: 1})
				switch i % 3 {
				case 0:
					c.anycastDelivered(id, i%7, time.Duration(i)*time.Millisecond)
				case 1:
					c.anycastFailed(id, OutcomeTTLExpired)
				default:
					c.anycastFailed(id, OutcomeRetryExpired)
				}
				mid := MsgID{Origin: origin, Seq: uint64(opsPer + i)}
				c.StartMulticast(mid, Target{Lo: 0.5, Hi: 1}, 4, 0)
				c.multicastDelivered(mid, string(origin), time.Duration(i), true)
			}
		}(w)
	}

	// Wait for writers only, then release the readers.
	doneWriters := make(chan struct{})
	go func() {
		wg.Wait()
		close(doneWriters)
	}()
	// The writer goroutines are a strict subset of wg; close stop once
	// every op is in so readers drain. Writers finish fast, so poll the
	// delivered counter instead of adding a second WaitGroup.
	want := int64(writers * opsPer / 3)
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("ops_anycast_delivered_total").Value() < want {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-doneWriters

	if got := len(c.Anycasts()); got != writers*opsPer {
		t.Fatalf("anycast records = %d, want %d", got, writers*opsPer)
	}
	delivered := reg.Counter("ops_anycast_delivered_total").Value()
	ttl := reg.Counter("ops_anycast_ttl_expired_total").Value()
	retry := reg.Counter("ops_anycast_retry_expired_total").Value()
	if delivered+ttl+retry != int64(writers*opsPer) {
		t.Fatalf("outcome counters %d+%d+%d don't sum to %d ops",
			delivered, ttl, retry, writers*opsPer)
	}
	if got := reg.Counter("ops_multicast_delivered_total").Value(); got != int64(writers*opsPer) {
		t.Fatalf("multicast delivered counter = %d, want %d", got, writers*opsPer)
	}
}
