package ops

import (
	"time"
)

// AnycastOutcome is the terminal state of one anycast operation.
type AnycastOutcome int

// Anycast outcomes. Pending operations have OutcomePending.
const (
	OutcomePending AnycastOutcome = iota
	// OutcomeDelivered: the message reached a node inside the target.
	OutcomeDelivered
	// OutcomeTTLExpired: the TTL ran out before reaching the target.
	OutcomeTTLExpired
	// OutcomeRetryExpired: the retry budget ran out (RetriedGreedy) or
	// no next hop existed.
	OutcomeRetryExpired
)

// String implements fmt.Stringer.
func (o AnycastOutcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeTTLExpired:
		return "ttl-expired"
	case OutcomeRetryExpired:
		return "retry-expired"
	default:
		return "pending"
	}
}

// AnycastRecord accumulates the result of one anycast.
type AnycastRecord struct {
	ID      MsgID
	Target  Target
	Outcome AnycastOutcome
	// Hops is the virtual hop count at delivery.
	Hops int
	// Latency is the time from initiation to delivery.
	Latency time.Duration
}

// MulticastRecord accumulates the result of one multicast.
type MulticastRecord struct {
	ID     MsgID
	Target Target
	// Eligible is the number of online in-range nodes at initiation
	// (set by the experiment; denominators for reliability and spam).
	Eligible int
	// Delivered maps in-range receivers to their first delivery time.
	Delivered map[string]time.Duration
	// Spam counts first deliveries to nodes outside the target.
	Spam int
	// EnteredRange reports whether stage one (the anycast) succeeded.
	EnteredRange bool
	// SentAt is the initiation time.
	SentAt time.Duration
	// LastDelivery is the latest first-delivery time observed.
	LastDelivery time.Duration
}

// Reliability returns delivered/eligible in [0,1].
func (r *MulticastRecord) Reliability() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(len(r.Delivered)) / float64(r.Eligible)
}

// SpamRatio returns spam receptions per eligible node.
func (r *MulticastRecord) SpamRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Spam) / float64(r.Eligible)
}

// WorstLatency returns the time from initiation to the last first
// delivery — the paper's multicast latency metric ("the time of the
// last receiving node obtaining the multicast"). Zero if nothing was
// delivered.
func (r *MulticastRecord) WorstLatency() time.Duration {
	if len(r.Delivered) == 0 {
		return 0
	}
	return r.LastDelivery - r.SentAt
}

// Collector aggregates operation outcomes across an experiment run.
// The Router reports into it; experiments read it after the run.
// Collector is not safe for concurrent use (the simulator is
// single-threaded; the live runtime wraps it).
type Collector struct {
	anycasts   map[MsgID]*AnycastRecord
	multicasts map[MsgID]*MulticastRecord
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		anycasts:   make(map[MsgID]*AnycastRecord, 256),
		multicasts: make(map[MsgID]*MulticastRecord, 64),
	}
}

// StartAnycast registers an anycast before initiation.
func (c *Collector) StartAnycast(id MsgID, target Target) {
	c.anycasts[id] = &AnycastRecord{ID: id, Target: target, Outcome: OutcomePending}
}

// StartMulticast registers a multicast before initiation. eligible is
// the online in-range population at initiation.
func (c *Collector) StartMulticast(id MsgID, target Target, eligible int, sentAt time.Duration) {
	c.multicasts[id] = &MulticastRecord{
		ID:        id,
		Target:    target,
		Eligible:  eligible,
		Delivered: make(map[string]time.Duration, eligible),
		SentAt:    sentAt,
	}
}

// Anycast returns the record for id, if registered.
func (c *Collector) Anycast(id MsgID) (*AnycastRecord, bool) {
	r, ok := c.anycasts[id]
	return r, ok
}

// Multicast returns the record for id, if registered.
func (c *Collector) Multicast(id MsgID) (*MulticastRecord, bool) {
	r, ok := c.multicasts[id]
	return r, ok
}

// Anycasts returns all anycast records (map iteration order; callers
// aggregate, never enumerate positionally).
func (c *Collector) Anycasts() []*AnycastRecord {
	out := make([]*AnycastRecord, 0, len(c.anycasts))
	for _, r := range c.anycasts {
		out = append(out, r)
	}
	return out
}

// Multicasts returns all multicast records.
func (c *Collector) Multicasts() []*MulticastRecord {
	out := make([]*MulticastRecord, 0, len(c.multicasts))
	for _, r := range c.multicasts {
		out = append(out, r)
	}
	return out
}

// anycastDelivered records the terminal delivered state (first success
// wins; later duplicates are ignored).
func (c *Collector) anycastDelivered(id MsgID, hops int, latency time.Duration) {
	r, ok := c.anycasts[id]
	if !ok || r.Outcome != OutcomePending {
		return
	}
	r.Outcome = OutcomeDelivered
	r.Hops = hops
	r.Latency = latency
}

// anycastFailed records a terminal failure if the operation is still
// pending. An anycast that already succeeded stays delivered.
func (c *Collector) anycastFailed(id MsgID, outcome AnycastOutcome) {
	r, ok := c.anycasts[id]
	if !ok || r.Outcome != OutcomePending {
		return
	}
	r.Outcome = outcome
}

// multicastEntered flags stage-one success.
func (c *Collector) multicastEntered(id MsgID) {
	if r, ok := c.multicasts[id]; ok {
		r.EnteredRange = true
	}
}

// multicastDelivered records a first delivery at node, inRange or spam.
func (c *Collector) multicastDelivered(id MsgID, node string, at time.Duration, inRange bool) {
	r, ok := c.multicasts[id]
	if !ok {
		return
	}
	if !inRange {
		r.Spam++
		return
	}
	if _, seen := r.Delivered[node]; seen {
		return
	}
	r.Delivered[node] = at
	if at > r.LastDelivery {
		r.LastDelivery = at
	}
}
