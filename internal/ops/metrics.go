package ops

import (
	"math"
	"sort"
	"sync"
	"time"

	"avmem/internal/agg"
	"avmem/internal/ids"
)

// AnycastOutcome is the terminal state of one anycast operation.
type AnycastOutcome int

// Anycast outcomes. Pending operations have OutcomePending.
const (
	OutcomePending AnycastOutcome = iota
	// OutcomeDelivered: the message reached a node inside the target.
	OutcomeDelivered
	// OutcomeTTLExpired: the TTL ran out before reaching the target.
	OutcomeTTLExpired
	// OutcomeRetryExpired: the retry budget ran out (RetriedGreedy) or
	// no next hop existed.
	OutcomeRetryExpired
)

// String implements fmt.Stringer.
func (o AnycastOutcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeTTLExpired:
		return "ttl-expired"
	case OutcomeRetryExpired:
		return "retry-expired"
	default:
		return "pending"
	}
}

// AnycastRecord accumulates the result of one anycast.
type AnycastRecord struct {
	ID      MsgID
	Target  Target
	Outcome AnycastOutcome
	// Hops is the virtual hop count at delivery.
	Hops int
	// Latency is the time from initiation to delivery.
	Latency time.Duration
}

// MulticastRecord accumulates the result of one multicast.
type MulticastRecord struct {
	ID     MsgID
	Target Target
	// Eligible is the number of online in-range nodes at initiation
	// (set by the experiment; denominators for reliability and spam).
	Eligible int
	// Delivered maps in-range receivers to their first delivery time.
	Delivered map[string]time.Duration
	// Spam counts first deliveries to nodes outside the target.
	Spam int
	// EnteredRange reports whether stage one (the anycast) succeeded.
	EnteredRange bool
	// SentAt is the initiation time.
	SentAt time.Duration
	// LastDelivery is the latest first-delivery time observed.
	LastDelivery time.Duration
}

// Reliability returns delivered/eligible, capped at 1: Eligible is an
// initiation-time snapshot while Delivered integrates over the whole
// dissemination, so churn drifting extra nodes into the target can
// deliver to more in-range receivers than the snapshot counted.
func (r *MulticastRecord) Reliability() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return math.Min(1, float64(len(r.Delivered))/float64(r.Eligible))
}

// SpamRatio returns spam receptions per eligible node.
func (r *MulticastRecord) SpamRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Spam) / float64(r.Eligible)
}

// WorstLatency returns the time from initiation to the last first
// delivery — the paper's multicast latency metric ("the time of the
// last receiving node obtaining the multicast"). Zero if nothing was
// delivered.
func (r *MulticastRecord) WorstLatency() time.Duration {
	if len(r.Delivered) == 0 {
		return 0
	}
	return r.LastDelivery - r.SentAt
}

// RangecastRecord accumulates the result of one range-cast.
type RangecastRecord struct {
	ID   MsgID
	Band Band
	// Eligible is the number of online in-band nodes at initiation
	// (set by the experiment; the coverage denominator).
	Eligible int
	// Delivered maps in-band receivers to their first delivery time.
	Delivered map[string]time.Duration
	// Spam counts first deliveries to nodes outside the band.
	Spam int
	// EnteredRange reports whether stage one (the anycast) reached the
	// band.
	EnteredRange bool
	// SentAt is the initiation time; LastDelivery the latest first
	// delivery observed.
	SentAt       time.Duration
	LastDelivery time.Duration
	// MaxDepth is the deepest dissemination hop count observed.
	MaxDepth int
}

// Coverage returns delivered/eligible, capped at 1: Eligible is an
// initiation-time snapshot while Delivered integrates over the whole
// dissemination, so churn drifting extra nodes into the band can
// deliver to more in-band receivers than the snapshot counted.
func (r *RangecastRecord) Coverage() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return math.Min(1, float64(len(r.Delivered))/float64(r.Eligible))
}

// SpamRatio returns out-of-band receptions per eligible node.
func (r *RangecastRecord) SpamRatio() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Spam) / float64(r.Eligible)
}

// WorstLatency returns the time from initiation to the last first
// delivery (zero if nothing was delivered).
func (r *RangecastRecord) WorstLatency() time.Duration {
	if len(r.Delivered) == 0 {
		return 0
	}
	return r.LastDelivery - r.SentAt
}

// AggInstance is one redundant tree of a logical aggregation: its own
// operation id, the origin-minted binding token, and the slot the
// bound result lands in. Instance 0 reuses the logical operation's id.
type AggInstance struct {
	ID MsgID
	// Token is the origin-chosen binding secret (AggregateSpec.Token).
	Token uint64
	// EnteredBy is the entry node that became this tree's root, recorded
	// when the root flags stage-one success. Nil until then (and forever
	// in deployments where origin and root keep separate collectors).
	EnteredBy ids.NodeID
	// Done, Result, CompletedAt form the per-instance result slot.
	Done        bool
	Result      agg.Partial
	CompletedAt time.Duration
}

// AggregateRecord accumulates the result of one in-overlay
// aggregation.
type AggregateRecord struct {
	ID   MsgID
	Op   agg.Op
	Band Band
	// Eligible is the online in-band population at initiation (the
	// coverage denominator, experiment-supplied).
	Eligible int
	// Truth is the ground-truth aggregate at initiation
	// (experiment-supplied; NaN when no ground truth exists, e.g. a
	// live node initiating outside a harness).
	Truth float64
	// EnteredRange reports whether the entry anycast reached the band.
	EnteredRange bool
	// Done reports whether the origin resolved the operation;
	// Result and CompletedAt are meaningful only when set.
	Done        bool
	Result      agg.Partial
	SentAt      time.Duration
	CompletedAt time.Duration
	// Instances are the redundant tree slots (one at redundancy 1).
	Instances []AggInstance
	// Divergence is the fraction of returned instances that disagreed
	// with the cross-tree median at resolution (0 when at most one tree
	// returned).
	Divergence float64
}

// Value extracts the computed aggregate (NaN while pending or when no
// node contributed to a value operator).
func (r *AggregateRecord) Value() float64 {
	if !r.Done {
		return math.NaN()
	}
	return r.Result.Value(r.Op)
}

// Coverage returns contributors/eligible, capped at 1 for the same
// snapshot-vs-drift reason as RangecastRecord.Coverage.
func (r *AggregateRecord) Coverage() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return math.Min(1, float64(r.Result.N)/float64(r.Eligible))
}

// TreeDepth returns the aggregation tree's hop radius (the deepest
// contributor).
func (r *AggregateRecord) TreeDepth() int { return r.Result.Depth }

// Latency returns initiation-to-result time (zero while pending).
func (r *AggregateRecord) Latency() time.Duration {
	if !r.Done {
		return 0
	}
	return r.CompletedAt - r.SentAt
}

// Accuracy compares the computed aggregate against the ground truth in
// [0,1]: 1 is exact. Count and Sum compare as a min/max ratio (scale-
// free); Min, Max, and Avg — values in [0,1] — as 1−|Δ|, floored at 0.
// An undelivered result scores 0; an operation whose ground truth and
// result are both empty scores 1 (an empty band aggregated exactly).
// Meaningful only when the initiator recorded ground truth
// (AggregateOptions.Truth/Eligible — RunAggregates always does).
func (r *AggregateRecord) Accuracy() float64 {
	if !r.Done {
		return 0
	}
	v := r.Result.Value(r.Op)
	switch r.Op {
	case agg.Count, agg.Sum:
		return ratioAccuracy(v, r.Truth)
	default:
		if math.IsNaN(r.Truth) != math.IsNaN(v) {
			return 0
		}
		if math.IsNaN(v) {
			return 1
		}
		d := math.Abs(v - r.Truth)
		if d > 1 {
			return 0
		}
		return 1 - d
	}
}

// ratioAccuracy scores two non-negative magnitudes as min/max, with
// the both-zero case exact.
func ratioAccuracy(a, b float64) float64 {
	if a == b {
		return 1
	}
	if a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return a / b
}

// Collector aggregates operation outcomes across an experiment run.
// The Router reports into it; experiments read it after the run.
// A single mutex serializes every method: one collector is shared by
// the whole fleet, and in a thread-parallel world report calls arrive
// from concurrent shard workers. Operations are rare next to protocol
// traffic, so the lock is uncontended in practice.
type Collector struct {
	mu         sync.Mutex
	anycasts   map[MsgID]*AnycastRecord
	multicasts map[MsgID]*MulticastRecord
	rangecasts map[MsgID]*RangecastRecord
	aggregates map[MsgID]*AggregateRecord
	// aggOf maps every tree-instance id (including instance 0, which
	// reuses the logical id) to its logical aggregation record.
	aggOf map[MsgID]MsgID
	// sawEntry is set once any tree root records its entry here — i.e.
	// this collector is shared between origins and roots (both engines
	// deploy one collector fleet-wide). Only then is a result accepted
	// without a recorded root evidence of a race (see aggregateResult).
	sawEntry bool
	// Defense counters (see AggCounters).
	aggRejectedPartials int
	aggForgeryRejected  int
	aggForgeryAccepted  int
	// ins, when non-nil, mirrors record mutations into the obs metrics
	// registry (instrument.go).
	ins *collectorObs
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		anycasts:   make(map[MsgID]*AnycastRecord, 256),
		multicasts: make(map[MsgID]*MulticastRecord, 64),
		rangecasts: make(map[MsgID]*RangecastRecord, 64),
		aggregates: make(map[MsgID]*AggregateRecord, 64),
		aggOf:      make(map[MsgID]MsgID, 64),
	}
}

// StartAnycast registers an anycast before initiation.
func (c *Collector) StartAnycast(id MsgID, target Target) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.anycasts[id] = &AnycastRecord{ID: id, Target: target, Outcome: OutcomePending}
}

// StartMulticast registers a multicast before initiation. eligible is
// the online in-range population at initiation.
func (c *Collector) StartMulticast(id MsgID, target Target, eligible int, sentAt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.multicasts[id] = &MulticastRecord{
		ID:        id,
		Target:    target,
		Eligible:  eligible,
		Delivered: make(map[string]time.Duration, eligible),
		SentAt:    sentAt,
	}
}

// Anycast returns the record for id, if registered.
func (c *Collector) Anycast(id MsgID) (*AnycastRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.anycasts[id]
	return r, ok
}

// Multicast returns the record for id, if registered.
func (c *Collector) Multicast(id MsgID) (*MulticastRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.multicasts[id]
	return r, ok
}

// Anycasts returns all anycast records (map iteration order; callers
// aggregate, never enumerate positionally).
func (c *Collector) Anycasts() []*AnycastRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*AnycastRecord, 0, len(c.anycasts))
	for _, r := range c.anycasts {
		out = append(out, r)
	}
	return out
}

// Multicasts returns all multicast records.
func (c *Collector) Multicasts() []*MulticastRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*MulticastRecord, 0, len(c.multicasts))
	for _, r := range c.multicasts {
		out = append(out, r)
	}
	return out
}

// anycastDelivered records the terminal delivered state (first success
// wins; later duplicates are ignored).
func (c *Collector) anycastDelivered(id MsgID, hops int, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.anycasts[id]
	if !ok || r.Outcome != OutcomePending {
		return
	}
	r.Outcome = OutcomeDelivered
	r.Hops = hops
	r.Latency = latency
	if c.ins != nil {
		c.ins.anycastDelivered.Inc()
		c.ins.anycastHops.Observe(float64(hops))
		c.ins.anycastLatencyMs.Observe(obsAnycastLatencyMs(latency))
	}
}

// anycastFailed records a terminal failure if the operation is still
// pending. An anycast that already succeeded stays delivered.
func (c *Collector) anycastFailed(id MsgID, outcome AnycastOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.anycasts[id]
	if !ok || r.Outcome != OutcomePending {
		return
	}
	r.Outcome = outcome
	if c.ins != nil {
		switch outcome {
		case OutcomeTTLExpired:
			c.ins.anycastTTLExpired.Inc()
		case OutcomeRetryExpired:
			c.ins.anycastRetryExpired.Inc()
		}
	}
}

// multicastEntered flags stage-one success.
func (c *Collector) multicastEntered(id MsgID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.multicasts[id]; ok {
		r.EnteredRange = true
	}
}

// StartRangecast registers a range-cast before initiation. eligible is
// the online in-band population at initiation.
func (c *Collector) StartRangecast(id MsgID, band Band, eligible int, sentAt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rangecasts[id] = &RangecastRecord{
		ID:        id,
		Band:      band,
		Eligible:  eligible,
		Delivered: make(map[string]time.Duration, eligible),
		SentAt:    sentAt,
	}
}

// StartAggregate registers an aggregation before initiation. eligible
// and truth are the experiment-supplied ground truth (truth may be
// NaN).
func (c *Collector) StartAggregate(id MsgID, op agg.Op, band Band, eligible int, truth float64, sentAt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aggregates[id] = &AggregateRecord{
		ID:       id,
		Op:       op,
		Band:     band,
		Eligible: eligible,
		Truth:    truth,
		SentAt:   sentAt,
	}
}

// Rangecast returns the record for id, if registered.
func (c *Collector) Rangecast(id MsgID) (*RangecastRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rangecasts[id]
	return r, ok
}

// Aggregate returns the record for id, if registered.
func (c *Collector) Aggregate(id MsgID) (*AggregateRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.aggregates[id]
	return r, ok
}

// Rangecasts returns all range-cast records.
func (c *Collector) Rangecasts() []*RangecastRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*RangecastRecord, 0, len(c.rangecasts))
	for _, r := range c.rangecasts {
		out = append(out, r)
	}
	return out
}

// AggCounters returns the aggregation-defense counters:
// rejectedPartials — merged partials dropped by the PDF sanity checks;
// forgeryRejected — AggResultMsgs refused by token/sender binding;
// forgeryAccepted — results accepted without a verifiable binding
// (zero unless the binding regresses; scenario-asserted).
func (c *Collector) AggCounters() (rejectedPartials, forgeryRejected, forgeryAccepted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aggRejectedPartials, c.aggForgeryRejected, c.aggForgeryAccepted
}

// Aggregates returns all aggregation records.
func (c *Collector) Aggregates() []*AggregateRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*AggregateRecord, 0, len(c.aggregates))
	for _, r := range c.aggregates {
		out = append(out, r)
	}
	return out
}

// rangecastEntered flags stage-one success.
func (c *Collector) rangecastEntered(id MsgID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.rangecasts[id]; ok {
		r.EnteredRange = true
	}
}

// rangecastDelivered records a first delivery at node, in band or
// spam, at dissemination depth.
func (c *Collector) rangecastDelivered(id MsgID, node string, at time.Duration, inBand bool, depth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rangecasts[id]
	if !ok {
		return
	}
	if !inBand {
		r.Spam++
		if c.ins != nil {
			c.ins.rangecastSpam.Inc()
		}
		return
	}
	if _, seen := r.Delivered[node]; seen {
		return
	}
	r.Delivered[node] = at
	if at > r.LastDelivery {
		r.LastDelivery = at
	}
	if depth > r.MaxDepth {
		r.MaxDepth = depth
	}
	if c.ins != nil {
		c.ins.rangecastDelivered.Inc()
		c.ins.rangecastDepth.Observe(float64(depth))
	}
}

// addAggInstance registers one redundant tree instance under a logical
// aggregation (primary is the id StartAggregate was called with).
func (c *Collector) addAggInstance(primary, instance MsgID, token uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.aggregates[primary]
	if !ok {
		return
	}
	r.Instances = append(r.Instances, AggInstance{ID: instance, Token: token})
	c.aggOf[instance] = primary
}

// aggregateEntered flags stage-one success of one tree instance and
// records the entry node that became its root — the identity result
// binding checks senders against.
func (c *Collector) aggregateEntered(instance MsgID, by ids.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawEntry = true
	primary, ok := c.aggOf[instance]
	if !ok {
		return
	}
	r := c.aggregates[primary]
	r.EnteredRange = true
	for i := range r.Instances {
		if r.Instances[i].ID == instance && r.Instances[i].EnteredBy.IsNil() {
			r.Instances[i].EnteredBy = by
		}
	}
}

// aggregateResult accepts or rejects one tree instance's result.
// Acceptance requires the echoed token to match the origin-minted one
// and, when the instance's root is on record, the transport-level
// sender to be that root; anything else is a forgery (or a mangled
// echo) and only bumps the rejection counter. First result per
// instance wins; the logical operation resolves when every instance
// returned or the origin's deadline fires (aggregateFinalize).
func (c *Collector) aggregateResult(instance MsgID, from ids.NodeID, token uint64, p agg.Partial, at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	primary, ok := c.aggOf[instance]
	if !ok {
		return
	}
	r := c.aggregates[primary]
	var slot *AggInstance
	for i := range r.Instances {
		if r.Instances[i].ID == instance {
			slot = &r.Instances[i]
			break
		}
	}
	if slot == nil || slot.Done {
		return
	}
	if token != slot.Token {
		c.aggForgeryRejected++
		if c.ins != nil {
			c.ins.aggForgeryRejected.Inc()
		}
		return
	}
	if !slot.EnteredBy.IsNil() && !from.IsNil() && from != slot.EnteredBy {
		c.aggForgeryRejected++
		if c.ins != nil {
			c.ins.aggForgeryRejected.Inc()
		}
		return
	}
	// Tripwire: in a shared-collector deployment (sawEntry) a networked
	// result accepted before its root was on record means the sender
	// check could not run — the window a racer would exploit. Genuine
	// roots record entry synchronously before emitting a result, so
	// this stays zero; the byzantine scenario pins
	// agg_forgery_accepted == 0 on it.
	if c.sawEntry && slot.EnteredBy.IsNil() && !from.IsNil() {
		c.aggForgeryAccepted++
		if c.ins != nil {
			c.ins.aggForgeryAccepted.Inc()
		}
	}
	slot.Done = true
	slot.Result = p
	slot.CompletedAt = at
	if c.ins != nil {
		c.ins.aggResults.Inc()
	}
	for i := range r.Instances {
		if !r.Instances[i].Done {
			return
		}
	}
	c.finalizeLocked(primary, at)
}

// aggAgree reports whether an instance value agrees with the
// cross-tree median within tolerance: 10% relative, floored at an
// absolute 0.1 (availability-scale values live in [0,1]).
func aggAgree(v, median float64) bool {
	tol := math.Max(0.1, 0.1*math.Abs(median))
	return math.Abs(v-median) <= tol
}

// aggregateFinalize resolves a logical aggregation by cross-tree
// agreement: the accepted result is the returned instance whose value
// sits closest to the median of all returned values, and the fraction
// of returned instances outside the agreement tolerance is recorded as
// Divergence. With nothing returned the operation stays pending (the
// legacy timeout shape); idempotent once resolved.
func (c *Collector) aggregateFinalize(primary MsgID, at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finalizeLocked(primary, at)
}

// finalizeLocked is aggregateFinalize with the lock already held
// (aggregateResult resolves inline when the last instance returns).
func (c *Collector) finalizeLocked(primary MsgID, at time.Duration) {
	r, ok := c.aggregates[primary]
	if !ok || r.Done {
		return
	}
	done := make([]*AggInstance, 0, len(r.Instances))
	for i := range r.Instances {
		if r.Instances[i].Done {
			done = append(done, &r.Instances[i])
		}
	}
	if len(done) == 0 {
		return
	}
	vals := make([]float64, 0, len(done))
	for _, in := range done {
		if v := in.Result.Value(r.Op); !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	rep := done[0]
	if len(vals) > 0 {
		sort.Float64s(vals)
		median := vals[len(vals)/2]
		disagree := 0
		best := math.Inf(1)
		for _, in := range done {
			v := in.Result.Value(r.Op)
			if math.IsNaN(v) || !aggAgree(v, median) {
				disagree++
				continue
			}
			if d := math.Abs(v - median); d < best {
				best = d
				rep = in
			}
		}
		r.Divergence = float64(disagree) / float64(len(done))
	}
	r.Done = true
	r.Result = rep.Result
	r.CompletedAt = at
}

// aggregateDone resolves a logical aggregation directly, bypassing the
// instance slots — the empty-band short circuit, where no tree exists.
func (c *Collector) aggregateDone(id MsgID, p agg.Partial, at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.aggregates[id]
	if !ok || r.Done {
		return
	}
	r.Done = true
	r.Result = p
	r.CompletedAt = at
}

// aggregatePartialRejected counts a merged partial dropped by the PDF
// sanity checks somewhere in a tree (instance may belong to another
// origin's operation; the counter is collector-wide).
func (c *Collector) aggregatePartialRejected(instance MsgID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aggRejectedPartials++
	if c.ins != nil {
		c.ins.aggRejectedPartials.Inc()
	}
}

// multicastDelivered records a first delivery at node, inRange or spam.
func (c *Collector) multicastDelivered(id MsgID, node string, at time.Duration, inRange bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.multicasts[id]
	if !ok {
		return
	}
	if !inRange {
		r.Spam++
		if c.ins != nil {
			c.ins.multicastSpam.Inc()
		}
		return
	}
	if _, seen := r.Delivered[node]; seen {
		return
	}
	r.Delivered[node] = at
	if at > r.LastDelivery {
		r.LastDelivery = at
	}
	if c.ins != nil {
		c.ins.multicastDelivered.Inc()
	}
}
