package ops

import (
	"fmt"
	"strconv"
	"time"

	"avmem/internal/agg"
	"avmem/internal/core"
	"avmem/internal/ids"
)

// MsgID uniquely identifies one management operation instance.
type MsgID struct {
	Origin ids.NodeID
	Seq    uint64
}

// String implements fmt.Stringer. Built with strconv rather than
// fmt.Sprintf: the op tracer stringifies an ID per recorded span, and
// this path is ~4x cheaper.
func (m MsgID) String() string {
	return string(m.Origin) + "#" + strconv.FormatUint(m.Seq, 10)
}

// Policy selects the anycast forwarding algorithm (paper §3.2.I).
type Policy int

// Anycast forwarding policies.
const (
	// Greedy forwards to a neighbor inside the target, or failing that
	// the neighbor whose cached availability is closest to the target.
	Greedy Policy = iota + 1
	// RetriedGreedy is Greedy plus next-hop acknowledgments: an
	// unresponsive next hop is retried with the next-best neighbor,
	// spending one unit of the message's retry budget.
	RetriedGreedy
	// Annealing chooses a random next hop with probability
	// p = exp(−Δ/ttl) while traversing the neighbor list, falling back
	// to the greedy choice.
	Annealing
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case RetriedGreedy:
		return "retried-greedy"
	case Annealing:
		return "simulated-annealing"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Mode selects the multicast dissemination algorithm (paper §3.2.II).
type Mode int

// Multicast modes.
const (
	// Flood forwards to every in-range neighbor exactly once.
	Flood Mode = iota + 1
	// Gossip periodically forwards to up to fanout in-range neighbors
	// for Ng protocol periods.
	Gossip
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Flood:
		return "flood"
	case Gossip:
		return "gossip"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// AnycastMsg is the wire message for {threshold,range}-anycast. It is
// also the first stage of a multicast: when Multicast is non-nil, a
// node inside the target switches to dissemination instead of
// terminating the operation.
type AnycastMsg struct {
	ID     MsgID
	Target Target
	Policy Policy
	Flavor core.Flavor
	// TTL is the remaining time-to-live in virtual hops; decremented at
	// every forward.
	TTL int
	// Retry is the message's remaining retry budget (RetriedGreedy).
	Retry int
	// Hops counts virtual hops travelled so far.
	Hops int
	// SentAt is the operation's start time (for latency measurement).
	SentAt time.Duration
	// SenderAvail is the forwarding node's claimed availability,
	// restamped at every hop. Honest routers claim their cached own
	// availability; receivers' audit layers cross-check the claim
	// against the monitoring service (an unverifiable or inflated claim
	// is hard evidence of misbehavior).
	SenderAvail float64
	// Multicast carries stage-two parameters when this anycast fronts a
	// multicast operation.
	Multicast *MulticastSpec
	// Rangecast carries stage-two parameters when this anycast fronts a
	// range-cast: a node inside the band switches to band-filtered
	// payload dissemination.
	Rangecast *RangecastSpec
	// Aggregate carries stage-two parameters when this anycast fronts
	// an aggregation: the first node inside the band becomes the root
	// of the partial-combining tree.
	Aggregate *AggregateSpec
}

// MulticastSpec carries the dissemination parameters of a multicast.
type MulticastSpec struct {
	Mode   Mode
	Flavor core.Flavor
	// Fanout and Rounds (Ng) parameterize gossip; the paper selects
	// them so Fanout×Rounds ≈ log(N*).
	Fanout int
	Rounds int
	// Period is the gossip period (paper: 1 s).
	Period time.Duration
}

// MulticastMsg is the wire message of the dissemination stage.
type MulticastMsg struct {
	ID     MsgID
	Target Target
	Spec   MulticastSpec
	SentAt time.Duration
	// SenderAvail is the disseminating node's claimed availability (see
	// AnycastMsg.SenderAvail).
	SenderAvail float64
}

// RangecastSpec carries the dissemination parameters of a range-cast.
type RangecastSpec struct {
	// Band is the half-open availability interval the payload
	// addresses; dissemination forwards only to neighbors whose cached
	// availability lies inside it (no flooding outside the band).
	Band Band
	// Flavor selects the sliver lists used for dissemination.
	Flavor core.Flavor
	// Payload is the management payload delivered to every band member.
	Payload string
}

// RangecastMsg is the wire message of the range-cast dissemination
// stage: a band-filtered flood with per-node duplicate suppression.
type RangecastMsg struct {
	ID   MsgID
	Spec RangecastSpec
	// Depth counts dissemination hops from the entry node (the entry
	// delivery is depth 0).
	Depth  int
	SentAt time.Duration
	// SenderAvail is the forwarding node's claimed availability (see
	// AnycastMsg.SenderAvail).
	SenderAvail float64
}

// AggregateSpec carries the tree-building parameters of an in-overlay
// aggregation.
type AggregateSpec struct {
	// Op is the aggregate to compute over the band members' values.
	Op agg.Op
	// Band is the half-open availability interval aggregated over.
	Band Band
	// Flavor selects the sliver lists the tree grows along.
	Flavor core.Flavor
	// Token is the origin-chosen binding secret for this tree instance:
	// the root must echo it in its AggResultMsg for the origin to accept
	// the result. It travels only on the entry anycast path (origin →
	// root); forwardAgg zeroes it before the spec is copied into AggMsg
	// tree requests, so ordinary tree members never learn it and cannot
	// race a fabricated result past the origin.
	Token uint64
	// Salt perturbs the pair-hash ordering the tree grows along, so the
	// redundant instances of one logical aggregation build disjointly
	// shaped trees. Zero means the legacy (unsalted) ordering; unlike
	// Token it is not secret and stays on the AggMsg copies.
	Salt uint64
}

// AggMsg is the aggregation request: it disseminates through the band
// like a range-cast, and the sender of a node's first copy becomes
// that node's parent in the implicit spanning tree.
type AggMsg struct {
	ID   MsgID
	Spec AggregateSpec
	// Depth is the receiver's tree depth (the root opens at depth 0 and
	// forwards at depth 1).
	Depth  int
	SentAt time.Duration
	// SenderAvail is the forwarding node's claimed availability.
	SenderAvail float64
}

// AggReplyMsg flows one hop up the tree, from a child to the parent it
// first heard the request from. Either a combined partial (the child's
// whole subtree) or a decline: the receiver was already in the tree
// through another parent, or lies outside the band.
type AggReplyMsg struct {
	ID MsgID
	// Partial is the child subtree's combined aggregate (zero when
	// Decline is set).
	Partial agg.Partial
	// Decline marks a contribution-free accounting reply.
	Decline bool
	// SenderAvail is the replying node's claimed availability.
	SenderAvail float64
}

// AggResultMsg returns the root's combined aggregate to the operation
// origin. Like DeliveredMsg it is origin-addressed rather than
// neighbor-addressed. The origin's collector accepts it only when
// Token echoes the origin-minted binding token of the instance and the
// transport-level sender matches the recorded entry node — a result
// fabricated by a tree member (which never saw the token) is rejected
// and counted, not raced past the origin.
type AggResultMsg struct {
	ID MsgID
	// Result is the tree-wide combined partial.
	Result agg.Partial
	// Token echoes AggregateSpec.Token; the root learned it from the
	// entry anycast.
	Token uint64
	// SentAt echoes the operation's start time on the origin's clock.
	SentAt time.Duration
	// SenderAvail is the root's claimed availability.
	SenderAvail float64
}

// DeliveredMsg notifies an anycast's origin that the operation reached
// a node inside the target. In the simulation the shared collector
// already observed the delivery and the notice is a harmless duplicate;
// in a live deployment, where every node keeps its own collector, the
// notice is what materializes the outcome at the initiator.
type DeliveredMsg struct {
	ID   MsgID
	Hops int
	// SentAt echoes the operation's start time on the origin's clock,
	// so the origin can compute the delivery latency locally.
	SentAt time.Duration
}
