package ops

import (
	"math"
	"testing"
	"time"

	"avmem/internal/agg"
)

func TestBandSemantics(t *testing.T) {
	cases := []struct {
		band Band
		av   float64
		want bool
	}{
		{Band{0.2, 0.6}, 0.2, true},   // closed at Lo
		{Band{0.2, 0.6}, 0.6, false},  // open at Hi
		{Band{0.2, 0.6}, 0.59, true},  //
		{Band{0.2, 0.6}, 0.19, false}, //
		{Band{0.2, 1}, 1.0, true},     // Hi of 1 closes the top end
		{Band{0, 1}, 0, true},         // full range, bottom
		{Band{0, 1}, 1, true},         // full range, top
		{Band{0.5, 0.5}, 0.5, false},  // empty band contains nothing
		{Band{1, 1}, 1, true},         // degenerate top band = {1}
	}
	for _, tc := range cases {
		if got := tc.band.Contains(tc.av); got != tc.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", tc.band, tc.av, got, tc.want)
		}
	}
	if !(Band{0.5, 0.5}).Empty() {
		t.Error("[0.5,0.5) should be empty")
	}
	if (Band{1, 1}).Empty() {
		t.Error("[1,1) closes the top end and contains av=1")
	}
	if (Band{0, 1}).Empty() {
		t.Error("full band is not empty")
	}
	for _, bad := range []Band{{-0.1, 0.5}, {0.5, 1.1}, {0.6, 0.5}, {math.NaN(), 1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("band %v validated", bad)
		}
	}
}

// runLong drives the test cluster far enough for aggregation waves
// (seconds, not the anycast's milliseconds) to play out.
func (c *cluster) runLong() { c.world.Run(c.world.Now() + 2*time.Minute) }

// TestRangecastFullBandCoverage: a full-range rangecast from any node
// reaches every online node exactly once, spam-free.
func TestRangecastFullBandCoverage(t *testing.T) {
	avails := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultRangecastOptions()
	opts.Eligible = len(avails)
	id, err := c.routers[c.nodes[0]].Rangecast(0, 1, "config-v1", opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	rec, ok := c.col.Rangecast(id)
	if !ok {
		t.Fatal("no record")
	}
	if !rec.EnteredRange {
		t.Error("full-band rangecast did not enter")
	}
	if got := rec.Coverage(); got != 1 {
		t.Errorf("coverage = %v, want 1 (delivered %d/%d)", got, len(rec.Delivered), rec.Eligible)
	}
	if rec.Spam != 0 {
		t.Errorf("spam = %d, want 0", rec.Spam)
	}
}

// TestRangecastBandFiltering: only nodes inside [lo, hi) receive the
// payload; the boundary node at exactly hi stays clean.
func TestRangecastBandFiltering(t *testing.T) {
	avails := []float64{0.2, 0.4, 0.6, 0.8} // band [0.4, 0.8): nodes 1, 2
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultRangecastOptions()
	opts.Eligible = 2
	id, err := c.routers[c.nodes[0]].Rangecast(0.4, 0.8, "mid", opts)
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	rec, _ := c.col.Rangecast(id)
	if len(rec.Delivered) != 2 {
		t.Fatalf("delivered to %v, want the two in-band nodes", rec.Delivered)
	}
	for _, in := range []int{1, 2} {
		if _, ok := rec.Delivered[string(c.nodes[in])]; !ok {
			t.Errorf("in-band node %d missing from %v", in, rec.Delivered)
		}
	}
	if rec.Coverage() != 1 {
		t.Errorf("coverage = %v", rec.Coverage())
	}
}

// TestRangecastEmptyBand: lo == hi addresses nobody; the operation
// completes vacuously without entering the overlay.
func TestRangecastEmptyBand(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.3, 0.5, 0.7}, false)
	before := c.net.Stats().Sent
	id, err := c.routers[c.nodes[0]].Rangecast(0.5, 0.5, "noop", DefaultRangecastOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.run()
	rec, ok := c.col.Rangecast(id)
	if !ok {
		t.Fatal("no record")
	}
	if len(rec.Delivered) != 0 || rec.Spam != 0 || rec.EnteredRange {
		t.Errorf("empty band produced activity: %+v", rec)
	}
	if got := c.net.Stats().Sent; got != before {
		t.Errorf("empty band put %d messages on the wire", got-before)
	}
}

func TestRangecastValidation(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	r := c.routers[c.nodes[0]]
	if _, err := r.Rangecast(0.9, 0.5, "x", DefaultRangecastOptions()); err == nil {
		t.Error("want error for inverted band")
	}
	bad := DefaultRangecastOptions()
	bad.Anycast.TTL = 0
	if _, err := r.Rangecast(0.2, 0.8, "x", bad); err == nil {
		t.Error("want error for bad anycast options")
	}
}

// TestAggregateCountAndAvg: an end-to-end census over a band computes
// the exact count and average of the in-band values.
func TestAggregateCountAndAvg(t *testing.T) {
	avails := []float64{0.1, 0.3, 0.5, 0.7, 0.9} // band [0.4,1): 0.5, 0.7, 0.9
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 3, 3
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Count, 0.4, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, ok := c.col.Aggregate(id)
	if !ok || !rec.Done {
		t.Fatalf("count did not complete: %+v", rec)
	}
	if got := rec.Value(); got != 3 {
		t.Errorf("count = %v, want 3", got)
	}
	if got := rec.Accuracy(); got != 1 {
		t.Errorf("count accuracy = %v, want 1", got)
	}

	opts.Truth = (0.5 + 0.7 + 0.9) / 3
	id, err = c.routers[c.nodes[1]].Aggregate(agg.Avg, 0.4, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, _ = c.col.Aggregate(id)
	if !rec.Done {
		t.Fatal("avg did not complete")
	}
	if got := rec.Value(); math.Abs(got-opts.Truth) > 1e-12 {
		t.Errorf("avg = %v, want %v", got, opts.Truth)
	}
}

// TestAggregateMinMax: the order statistics survive the tree.
func TestAggregateMinMax(t *testing.T) {
	avails := []float64{0.15, 0.35, 0.55, 0.75, 0.95}
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 4, 0.35
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Min, 0.2, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, _ := c.col.Aggregate(id)
	if !rec.Done || rec.Value() != 0.35 {
		t.Fatalf("min = %+v, want 0.35", rec)
	}
	opts.Truth = 0.95
	id, err = c.routers[c.nodes[2]].Aggregate(agg.Max, 0.2, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, _ = c.col.Aggregate(id)
	if !rec.Done || rec.Value() != 0.95 {
		t.Fatalf("max = %+v, want 0.95", rec)
	}
}

// TestAggregateEmptyBand: lo == hi completes instantly with the empty
// aggregate, scoring exact accuracy against an empty ground truth.
func TestAggregateEmptyBand(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.3, 0.7}, false)
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 0, 0
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Count, 0.5, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := c.col.Aggregate(id)
	if !ok || !rec.Done {
		t.Fatalf("empty-band aggregate should complete at initiation: %+v", rec)
	}
	if rec.Value() != 0 || rec.Accuracy() != 1 {
		t.Errorf("empty census = %v (accuracy %v), want 0 (1)", rec.Value(), rec.Accuracy())
	}
}

// TestAggregateOutOfBandInitiator: the initiator sits outside the
// band; the entry anycast finds a root and the result travels back.
func TestAggregateOutOfBandInitiator(t *testing.T) {
	avails := []float64{0.1, 0.8, 0.85, 0.9}
	c := newCluster(t, fullPredicate(t), avails, false)
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 3, 3
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Count, 0.75, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, _ := c.col.Aggregate(id)
	if !rec.Done {
		t.Fatal("result never reached the out-of-band origin")
	}
	if !rec.EnteredRange {
		t.Error("entry not flagged")
	}
	if rec.Value() != 3 {
		t.Errorf("count = %v, want 3", rec.Value())
	}
	if rec.TreeDepth() < 1 {
		t.Errorf("tree depth = %d, want >= 1", rec.TreeDepth())
	}
}

// TestAggregateSurvivesOfflineChild: a child going dark mid-operation
// costs its value, not the whole aggregation — the transport nack and
// the deadline backstop keep the tree converging.
func TestAggregateSurvivesOfflineChild(t *testing.T) {
	avails := []float64{0.5, 0.6, 0.7}
	c := newCluster(t, fullPredicate(t), avails, false)
	c.online[c.nodes[2]] = false
	opts := DefaultAggregateOptions()
	opts.Eligible, opts.Truth = 3, 3
	id, err := c.routers[c.nodes[0]].Aggregate(agg.Count, 0.4, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.runLong()
	rec, _ := c.col.Aggregate(id)
	if !rec.Done {
		t.Fatal("aggregation hung on an offline child")
	}
	if rec.Value() != 2 {
		t.Errorf("count = %v, want 2 (the online members)", rec.Value())
	}
}

// TestAggregateValidation covers the option surface.
func TestAggregateValidation(t *testing.T) {
	c := newCluster(t, fullPredicate(t), []float64{0.5, 0.9}, false)
	r := c.routers[c.nodes[0]]
	if _, err := r.Aggregate(agg.Op(0), 0.2, 0.8, DefaultAggregateOptions()); err == nil {
		t.Error("want error for invalid op")
	}
	if _, err := r.Aggregate(agg.Count, 0.8, 0.2, DefaultAggregateOptions()); err == nil {
		t.Error("want error for inverted band")
	}
	bad := DefaultAggregateOptions()
	bad.Anycast.Policy = Policy(0)
	if _, err := r.Aggregate(agg.Count, 0.2, 0.8, bad); err == nil {
		t.Error("want error for bad anycast options")
	}
}

// TestAggregateRecordAccuracy pins the accuracy scale.
func TestAggregateRecordAccuracy(t *testing.T) {
	mk := func(op agg.Op, truth float64, done bool, obs ...float64) *AggregateRecord {
		r := &AggregateRecord{Op: op, Truth: truth, Done: done}
		for _, v := range obs {
			r.Result.Observe(v, 0)
		}
		return r
	}
	if got := mk(agg.Count, 10, true, 1, 1, 1, 1, 1, 1, 1, 1, 1).Accuracy(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("count 9/10 accuracy = %v, want 0.9", got)
	}
	if got := mk(agg.Count, 0, true).Accuracy(); got != 1 {
		t.Errorf("empty-vs-empty count accuracy = %v, want 1", got)
	}
	if got := mk(agg.Avg, 0.5, true, 0.4).Accuracy(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("avg accuracy = %v, want 0.9", got)
	}
	if got := mk(agg.Avg, math.NaN(), true).Accuracy(); got != 1 {
		t.Errorf("empty avg vs empty truth = %v, want 1", got)
	}
	if got := mk(agg.Avg, 0.5, true).Accuracy(); got != 0 {
		t.Errorf("empty result vs real truth = %v, want 0", got)
	}
	if got := mk(agg.Count, 5, false, 1, 1).Accuracy(); got != 0 {
		t.Errorf("pending accuracy = %v, want 0", got)
	}
}
