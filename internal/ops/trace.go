package ops

import (
	"avmem/internal/ids"
	"avmem/internal/obs"
)

// This file holds the router's causal-tracing seams. A traced router
// records one obs.Span per operation step — initiation, every inbound
// message that survives the audit gate, and terminal deliveries — all
// stamped with virtual time from the router's Env, so traces are
// deterministic per (trace, seed) and rendering them in Perfetto puts
// every op on the simulated clock's axis. An untraced router
// (otrace == nil) pays one nil check per message.

// span records one causal step of operation id at this node.
func (r *Router) span(kind, ev string, id MsgID, hop int, src ids.NodeID) {
	r.otrace.Record(obs.Span{
		At:   r.env.Now(),
		Op:   id.String(),
		Kind: kind,
		Ev:   ev,
		Hop:  hop,
		Src:  string(src),
		Dst:  string(r.mem.Self()),
	})
}

// traceInbound classifies an inbound message into a span. Called from
// HandleMessage after the audit gate: the trace shows the causal chain
// the node actually processed.
func (r *Router) traceInbound(from ids.NodeID, msg any) {
	switch m := msg.(type) {
	case DeliveredMsg:
		r.span("anycast", "result", m.ID, m.Hops, from)
	case AggResultMsg:
		r.span("aggregate", "result", m.ID, 0, from)
	case AnycastMsg:
		kind := "anycast"
		switch {
		case m.Multicast != nil:
			kind = "multicast"
		case m.Rangecast != nil:
			kind = "rangecast"
		case m.Aggregate != nil:
			kind = "aggregate"
		}
		r.span(kind, "hop", m.ID, m.Hops, from)
	case MulticastMsg:
		r.span("multicast", "deliver", m.ID, 0, from)
	case RangecastMsg:
		r.span("rangecast", "deliver", m.ID, m.Depth, from)
	case AggMsg:
		r.span("aggregate", "request", m.ID, m.Depth, from)
	case AggReplyMsg:
		ev := "reply"
		if m.Decline {
			ev = "decline"
		}
		r.span("aggregate", ev, m.ID, 0, from)
	}
}
