package ops

import (
	"fmt"
	"time"

	"avmem/internal/ids"
	"avmem/internal/sim"
)

// SimEnv adapts a simulation world + network into the Env a Router
// needs. One SimEnv exists per simulated node.
type SimEnv struct {
	world  *sim.World
	net    *sim.Network
	self   ids.NodeID
	online func() bool
}

var _ Env = (*SimEnv)(nil)

// NewSimEnv builds the adapter. online reports this node's liveness
// (nil means always online).
func NewSimEnv(world *sim.World, net *sim.Network, self ids.NodeID, online func() bool) (*SimEnv, error) {
	if world == nil || net == nil {
		return nil, fmt.Errorf("ops: SimEnv needs a world and a network")
	}
	if self.IsNil() {
		return nil, fmt.Errorf("ops: SimEnv needs a node identity")
	}
	if online == nil {
		online = func() bool { return true }
	}
	return &SimEnv{world: world, net: net, self: self, online: online}, nil
}

// Now implements Env.
func (e *SimEnv) Now() time.Duration { return e.world.Now() }

// After implements Env.
func (e *SimEnv) After(d time.Duration, fn func()) { e.world.After(d, fn) }

// RandFloat implements Env.
func (e *SimEnv) RandFloat() float64 { return e.world.Rand().Float64() }

// Send implements Env.
func (e *SimEnv) Send(to ids.NodeID, msg any) { e.net.Send(e.self, to, msg) }

// SendCall implements Env.
func (e *SimEnv) SendCall(to ids.NodeID, msg any, onResult func(ok bool)) {
	e.net.SendCall(e.self, to, msg, onResult)
}

// Online implements Env.
func (e *SimEnv) Online() bool { return e.online() }
