package ops

import (
	"fmt"
	"math"
	"sort"
	"time"

	"avmem/internal/agg"
	"avmem/internal/core"
	"avmem/internal/ids"
	"avmem/internal/obs"
)

// Env is the host environment a Router runs in. The simulator and the
// live runtime both implement it, so the operation logic is written
// once and executed in both worlds.
type Env interface {
	// Now returns the current (virtual or wall-clock) time.
	Now() time.Duration
	// After schedules fn after delay d.
	After(d time.Duration, fn func())
	// RandFloat returns a uniform float in [0,1) (simulated annealing).
	RandFloat() float64
	// Send delivers msg to the target with one hop latency, best effort.
	Send(to ids.NodeID, msg any)
	// SendCall is Send plus an acknowledgment: onResult(true) after the
	// target processed the message, onResult(false) when it could not
	// be reached (retried-greedy forwarding relies on this).
	SendCall(to ids.NodeID, msg any, onResult func(ok bool))
	// Online reports whether this node itself is currently online.
	Online() bool
}

// Auditor is the receiving-side audit seam (internal/audit implements
// it). The router consults it on every inbound operation message and
// excludes blacklisted peers from forwarding and dissemination, so
// audited-out nodes stop receiving management traffic.
type Auditor interface {
	// ObserveInbound audits one delivered message; false means the
	// sender is blacklisted and the message must be dropped.
	ObserveInbound(from ids.NodeID, msg any) bool
	// Blocked reports whether id has been audited out.
	Blocked(id ids.NodeID) bool
}

// maxSeen bounds the duplicate-suppression set; operations are
// short-lived so a full reset on overflow is harmless.
const maxSeen = 1 << 14

// Router executes management operations at one node: it initiates
// anycasts and multicasts, forwards in-flight messages according to
// their policy, and reports outcomes into a shared Collector.
type Router struct {
	mem *core.Membership
	env Env
	col *Collector
	// verifyInbound enables the §4.1 in-neighbor check on every
	// received operation message.
	verifyInbound bool
	// hashes memoizes dissemination-order pair hashes when non-nil.
	hashes *ids.HashCache
	// auditor, when non-nil, audits inbound messages and supplies the
	// blacklist that forwarding and dissemination honor.
	auditor Auditor
	// otrace, when non-nil, records causal op spans (trace.go).
	otrace     *obs.Tracer
	rejected   int
	seq        uint64
	seen       map[MsgID]bool
	gossipSent map[MsgID]map[ids.NodeID]bool
	// free recycles candidate buffers across anycast forwards. A buffer
	// is owned by one in-flight attempt chain until the operation hits a
	// terminal state or its SendCall acknowledges — the failure callback
	// fires asynchronously and re-reads the list, so the buffer cannot
	// be shared with concurrent forwards.
	free [][]core.Neighbor
	// byDist is kept on the Router so sort.Sort receives an existing
	// pointer and candidate ordering allocates nothing.
	byDist distanceSorter
	// rangeKeys/rangeNbs are the dissemination scratch: in-range
	// filtering and hash-ordering happen synchronously, so one buffer
	// pair per router suffices.
	rangeKeys []float64
	rangeNbs  []core.Neighbor
	byHash    hashSorter
	// claimVal/claimAt/claimSet memoize the availability claim stamped
	// on outbound messages: a fresh monitor self-query per claimCache
	// window instead of per forwarded message (monitor estimates move
	// at epoch granularity, far slower than the cache expires).
	claimVal float64
	claimAt  time.Duration
	claimSet bool
	// station is the in-overlay aggregation state machine (per-hop
	// partial combining, duplicate suppression, convergence detection);
	// aggValue supplies this node's contribution to aggregations.
	station  *agg.Station[MsgID]
	aggValue func() float64
	// bandCensus, when non-nil, enables the PDF sanity checks: merged
	// child partials whose contributor count exceeds the band's expected
	// census (with slack) — or, when valueChecks is set, whose value
	// moments leave the band hull (with tolerance) — are dropped and
	// reported to the auditor as soft evidence.
	bandCensus  func(lo, hi float64) float64
	valueChecks bool
	// aggChecks remembers the band of every aggregation this node is a
	// tree member of, so child replies can be sanity-checked (the reply
	// itself carries no band). Entries die with the station's pending op.
	aggChecks map[MsgID]Band
}

// AggPartialAuditor is the optional seam through which the router
// reports PDF-sanity violations on merged partials: when the
// configured Auditor also implements it (internal/audit does), each
// dropped partial becomes decaying soft evidence against its sender,
// feeding the suspicion/eviction state machine.
type AggPartialAuditor interface {
	SuspectAggPartial(from ids.NodeID, reason string)
}

// claimCache bounds the claim memo's staleness.
const claimCache = time.Minute

// selfClaim returns the availability claim for outbound stamps,
// re-querying the monitor at most once per claimCache window.
func (r *Router) selfClaim() float64 {
	now := r.env.Now()
	if !r.claimSet || now-r.claimAt > claimCache {
		r.claimVal = r.mem.SelfClaim()
		r.claimAt = now
		r.claimSet = true
	}
	return r.claimVal
}

// distanceSorter orders candidates by availability distance to the
// target, ties broken by ID (the greedy metric).
type distanceSorter struct {
	target Target
	nbs    []core.Neighbor
}

func (s *distanceSorter) Len() int      { return len(s.nbs) }
func (s *distanceSorter) Swap(i, j int) { s.nbs[i], s.nbs[j] = s.nbs[j], s.nbs[i] }
func (s *distanceSorter) Less(i, j int) bool {
	di := s.target.Distance(s.nbs[i].Availability)
	dj := s.target.Distance(s.nbs[j].Availability)
	if di != dj {
		return di < dj
	}
	return s.nbs[i].ID < s.nbs[j].ID
}

// hashSorter orders neighbors by a precomputed pair-hash key, keeping
// the parallel key slice in step.
type hashSorter struct {
	keys []float64
	nbs  []core.Neighbor
}

func (s *hashSorter) Len() int           { return len(s.nbs) }
func (s *hashSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *hashSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.nbs[i], s.nbs[j] = s.nbs[j], s.nbs[i]
}

// acquireCandidates pops a recycled candidate buffer, or allocates one
// sized for the current neighbor list.
func (r *Router) acquireCandidates(capHint int) []core.Neighbor {
	if n := len(r.free); n > 0 {
		buf := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return buf[:0]
	}
	return make([]core.Neighbor, 0, capHint)
}

// releaseCandidates returns a buffer to the pool once no in-flight
// callback can read it anymore.
func (r *Router) releaseCandidates(buf []core.Neighbor) {
	if cap(buf) == 0 {
		return
	}
	r.free = append(r.free, buf[:0])
}

// RouterConfig assembles a Router.
type RouterConfig struct {
	Membership *core.Membership
	Env        Env
	Collector  *Collector
	// VerifyInbound drops operation messages whose sender fails the
	// consistent in-neighbor predicate check.
	VerifyInbound bool
	// Hashes optionally memoizes the pair hashes dissemination ordering
	// uses; deployments share one cache across all routers.
	Hashes *ids.HashCache
	// Auditor optionally audits inbound messages and blacklists
	// misbehaving peers (internal/audit).
	Auditor Auditor
	// OpTrace, when non-nil, records a causal span per operation step
	// this router initiates or processes (trace.go). Deployments share
	// one tracer fleet-wide.
	OpTrace *obs.Tracer
	// Agg tunes the aggregation wave timing (zero fields take the agg
	// defaults: 1s waves, depth 8).
	Agg agg.Params
	// AggValue supplies this node's contribution to aggregation
	// operations. Nil aggregates the node's own availability claim —
	// the availability-census workload; deployments can bind any local
	// gauge (queue depth, free disk, version number) instead.
	AggValue func() float64
	// BandCensus, when non-nil, returns the deployment's expected
	// online population inside the half-open availability band [lo, hi)
	// — N* × the availability PDF's interval mass — and arms the PDF
	// sanity checks on merged aggregation partials. Value-moment checks
	// (min/max/avg inside the band hull) additionally require the
	// default AggValue, since only then are contributions availability
	// claims.
	BandCensus func(lo, hi float64) float64
}

// NewRouter validates and builds a Router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Membership == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Membership is required")
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Env is required")
	}
	if cfg.Collector == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Collector is required")
	}
	station, err := agg.NewStation[MsgID](cfg.Agg, cfg.Env.After)
	if err != nil {
		return nil, err
	}
	r := &Router{
		mem:           cfg.Membership,
		env:           cfg.Env,
		col:           cfg.Collector,
		verifyInbound: cfg.VerifyInbound,
		hashes:        cfg.Hashes,
		auditor:       cfg.Auditor,
		otrace:        cfg.OpTrace,
		station:       station,
		aggValue:      cfg.AggValue,
		bandCensus:    cfg.BandCensus,
		valueChecks:   cfg.AggValue == nil,
	}
	if r.aggValue == nil {
		r.aggValue = r.selfClaim
	}
	return r, nil
}

// Self returns the owning node's identifier.
func (r *Router) Self() ids.NodeID { return r.mem.Self() }

// Rejected returns how many inbound messages failed verification.
func (r *Router) Rejected() int { return r.rejected }

// nextID mints a fresh operation identifier.
func (r *Router) nextID() MsgID {
	r.seq++
	return MsgID{Origin: r.mem.Self(), Seq: r.seq}
}

// AnycastOptions parameterizes an anycast initiation.
type AnycastOptions struct {
	Policy Policy
	Flavor core.Flavor
	// TTL in virtual hops (paper default 6).
	TTL int
	// Retry is the retry budget k for RetriedGreedy (ignored otherwise).
	Retry int
}

// DefaultAnycastOptions returns the paper's defaults: greedy HS+VS,
// TTL 6.
func DefaultAnycastOptions() AnycastOptions {
	return AnycastOptions{Policy: Greedy, Flavor: core.HSVS, TTL: 6}
}

func (o AnycastOptions) validate() error {
	switch o.Policy {
	case Greedy, RetriedGreedy, Annealing:
	default:
		return fmt.Errorf("ops: invalid policy %v", o.Policy)
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
	default:
		return fmt.Errorf("ops: invalid flavor %v", o.Flavor)
	}
	if o.TTL <= 0 {
		return fmt.Errorf("ops: TTL must be positive, got %d", o.TTL)
	}
	if o.Policy == RetriedGreedy && o.Retry <= 0 {
		return fmt.Errorf("ops: RetriedGreedy needs a positive retry budget")
	}
	return nil
}

// Anycast initiates a {threshold,range}-anycast toward target and
// returns its operation ID; the outcome materializes in the Collector.
func (r *Router) Anycast(target Target, opts AnycastOptions) (MsgID, error) {
	if err := target.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	if r.otrace != nil {
		r.span("anycast", "init", id, 0, ids.Nil)
	}
	r.col.StartAnycast(id, target)
	msg := AnycastMsg{
		ID:          id,
		Target:      target,
		Policy:      opts.Policy,
		Flavor:      opts.Flavor,
		TTL:         opts.TTL,
		Retry:       opts.Retry,
		SentAt:      r.env.Now(),
		SenderAvail: r.selfClaim(),
	}
	r.handleAnycast(ids.Nil, msg)
	return id, nil
}

// MulticastOptions parameterizes a multicast initiation.
type MulticastOptions struct {
	// Anycast configures stage one (entering the range).
	Anycast AnycastOptions
	// Mode selects flooding or gossip for stage two.
	Mode Mode
	// Flavor selects the sliver lists used for dissemination.
	Flavor core.Flavor
	// Fanout and Rounds parameterize gossip (fanout×Ng ≈ log N*).
	Fanout int
	Rounds int
	// Period is the gossip period (paper: 1 s).
	Period time.Duration
	// Eligible is the online in-range population at initiation, the
	// denominator of reliability and spam (supplied by the caller,
	// which in experiments knows ground truth).
	Eligible int
}

// DefaultMulticastOptions returns the paper's defaults: greedy HS+VS
// entry, flooding dissemination over HS+VS.
func DefaultMulticastOptions() MulticastOptions {
	return MulticastOptions{
		Anycast: DefaultAnycastOptions(),
		Mode:    Flood,
		Flavor:  core.HSVS,
	}
}

func (o MulticastOptions) validate() error {
	if err := o.Anycast.validate(); err != nil {
		return err
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
	default:
		return fmt.Errorf("ops: invalid multicast flavor %v", o.Flavor)
	}
	switch o.Mode {
	case Flood:
	case Gossip:
		if o.Fanout <= 0 || o.Rounds <= 0 || o.Period <= 0 {
			return fmt.Errorf("ops: gossip needs positive fanout/rounds/period, got %d/%d/%v",
				o.Fanout, o.Rounds, o.Period)
		}
	default:
		return fmt.Errorf("ops: invalid mode %v", o.Mode)
	}
	return nil
}

// Multicast initiates a {threshold,range}-multicast toward target and
// returns its operation ID.
func (r *Router) Multicast(target Target, opts MulticastOptions) (MsgID, error) {
	if err := target.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	if r.otrace != nil {
		r.span("multicast", "init", id, 0, ids.Nil)
	}
	now := r.env.Now()
	r.col.StartMulticast(id, target, opts.Eligible, now)
	spec := MulticastSpec{
		Mode:   opts.Mode,
		Flavor: opts.Flavor,
		Fanout: opts.Fanout,
		Rounds: opts.Rounds,
		Period: opts.Period,
	}
	msg := AnycastMsg{
		ID:          id,
		Target:      target,
		Policy:      opts.Anycast.Policy,
		Flavor:      opts.Anycast.Flavor,
		TTL:         opts.Anycast.TTL,
		Retry:       opts.Anycast.Retry,
		SentAt:      now,
		SenderAvail: r.selfClaim(),
		Multicast:   &spec,
	}
	r.handleAnycast(ids.Nil, msg)
	return id, nil
}

// RangecastOptions parameterizes a range-cast initiation.
type RangecastOptions struct {
	// Anycast configures stage one (entering the band).
	Anycast AnycastOptions
	// Flavor selects the sliver lists used for dissemination.
	Flavor core.Flavor
	// Eligible is the online in-band population at initiation (the
	// coverage denominator, supplied by the experiment harness).
	Eligible int
}

// DefaultRangecastOptions returns greedy HS+VS entry and HS+VS
// dissemination.
func DefaultRangecastOptions() RangecastOptions {
	return RangecastOptions{Anycast: DefaultAnycastOptions(), Flavor: core.HSVS}
}

func (o RangecastOptions) validate() error {
	if err := o.Anycast.validate(); err != nil {
		return err
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
		return nil
	default:
		return fmt.Errorf("ops: invalid rangecast flavor %v", o.Flavor)
	}
}

// Rangecast initiates a range-cast: payload delivery to every node
// whose availability lies in the half-open band [lo, hi). Stage one is
// a plain anycast toward the band's closed hull; stage two floods the
// payload along band-filtered sliver lists with per-node duplicate
// suppression, so no message ever leaves the band's neighborhood.
func (r *Router) Rangecast(lo, hi float64, payload string, opts RangecastOptions) (MsgID, error) {
	band := Band{Lo: lo, Hi: hi}
	if err := band.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	if r.otrace != nil {
		r.span("rangecast", "init", id, 0, ids.Nil)
	}
	now := r.env.Now()
	r.col.StartRangecast(id, band, opts.Eligible, now)
	if band.Empty() {
		// Nothing is addressable: complete vacuously instead of walking
		// the overlay until the TTL dies.
		return id, nil
	}
	spec := RangecastSpec{Band: band, Flavor: opts.Flavor, Payload: payload}
	msg := AnycastMsg{
		ID:          id,
		Target:      band.Target(),
		Policy:      opts.Anycast.Policy,
		Flavor:      opts.Anycast.Flavor,
		TTL:         opts.Anycast.TTL,
		Retry:       opts.Anycast.Retry,
		SentAt:      now,
		SenderAvail: r.selfClaim(),
		Rangecast:   &spec,
	}
	r.handleAnycast(ids.Nil, msg)
	return id, nil
}

// AggregateOptions parameterizes an aggregation initiation.
type AggregateOptions struct {
	// Anycast configures stage one (entering the band).
	Anycast AnycastOptions
	// Flavor selects the sliver lists the tree grows along.
	Flavor core.Flavor
	// Eligible and Truth are the experiment-supplied ground truth: the
	// online in-band population and the true aggregate at initiation
	// (Truth may be NaN outside a harness).
	Eligible int
	Truth    float64
	// Redundancy launches this many independent tree instances (0 and 1
	// both mean a single tree). Each instance enters the band through a
	// distinct sub-interval of its hull and grows along a differently
	// salted sliver ordering; the origin resolves the operation by
	// cross-tree agreement (median within tolerance), recording
	// disagreement as the record's Divergence.
	Redundancy int
}

// maxAggRedundancy bounds the redundancy degree; beyond a handful of
// trees the band's hull slices thinner than the population supports.
const maxAggRedundancy = 8

// DefaultAggregateOptions returns greedy HS+VS entry and an HS+VS
// tree, with no ground truth recorded.
func DefaultAggregateOptions() AggregateOptions {
	return AggregateOptions{Anycast: DefaultAnycastOptions(), Flavor: core.HSVS, Truth: math.NaN()}
}

func (o AggregateOptions) validate() error {
	if err := o.Anycast.validate(); err != nil {
		return err
	}
	if o.Redundancy < 0 || o.Redundancy > maxAggRedundancy {
		return fmt.Errorf("ops: redundancy must be in [0,%d], got %d", maxAggRedundancy, o.Redundancy)
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
		return nil
	default:
		return fmt.Errorf("ops: invalid aggregate flavor %v", o.Flavor)
	}
}

// Aggregate initiates an in-overlay aggregation: op over the local
// values of every node whose availability lies in [lo, hi). The first
// in-band node becomes the root of an implicit spanning tree grown
// along band-filtered sliver lists; partials combine per hop on the
// way back up, and the root returns the result to this node, bound by
// an origin-minted token. With opts.Redundancy > 1 the origin grows
// that many independently rooted, differently salted trees and
// resolves by cross-tree agreement. The outcome materializes in the
// Collector's AggregateRecord.
func (r *Router) Aggregate(op agg.Op, lo, hi float64, opts AggregateOptions) (MsgID, error) {
	band := Band{Lo: lo, Hi: hi}
	if err := band.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := op.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	if r.otrace != nil {
		r.span("aggregate", "init", id, 0, ids.Nil)
	}
	now := r.env.Now()
	r.col.StartAggregate(id, op, band, opts.Eligible, opts.Truth, now)
	if band.Empty() {
		// The empty band aggregates to the empty aggregate, exactly.
		r.col.aggregateDone(id, agg.Partial{}, now)
		return id, nil
	}
	k := opts.Redundancy
	if k <= 0 {
		k = 1
	}
	hull := band.Target()
	insts := make([]MsgID, 0, k)
	for j := 0; j < k; j++ {
		inst := id
		if j > 0 {
			inst = r.nextID()
		}
		insts = append(insts, inst)
		token := r.mintToken()
		r.col.addAggInstance(id, inst, token)
		// Arm the origin-side PDF sanity check: a root's claimed result
		// is vetted against the band exactly like a child partial.
		r.trackAggCheck(inst, band)
		spec := AggregateSpec{Op: op, Band: band, Flavor: opts.Flavor, Token: token, Salt: aggSalt(j)}
		msg := AnycastMsg{
			ID:          inst,
			Target:      subTarget(hull, j, k),
			Policy:      opts.Anycast.Policy,
			Flavor:      opts.Anycast.Flavor,
			TTL:         opts.Anycast.TTL,
			Retry:       opts.Anycast.Retry,
			SentAt:      now,
			SenderAvail: r.selfClaim(),
			Aggregate:   &spec,
		}
		r.handleAnycast(ids.Nil, msg)
	}
	// The origin's resolution deadline: by then every tree has hit its
	// own wave backstop and returned or never will. Deterministic in
	// virtual time, so redundant runs stay bit-reproducible per seed.
	p := r.station.Params()
	r.env.After(time.Duration(p.MaxDepth+4)*p.Wave, func() {
		for _, inst := range insts {
			delete(r.aggChecks, inst)
		}
		r.col.aggregateFinalize(id, r.env.Now())
	})
	return id, nil
}

// mintToken draws a nonzero binding token from the node's RNG stream.
// Tree members never see it (forwardAgg strips it from AggMsg copies),
// so a fabricated AggResultMsg cannot echo it.
func (r *Router) mintToken() uint64 {
	return math.Float64bits(r.env.RandFloat()) | 1
}

// aggSalt derives the sliver-ordering salt of tree instance j.
// Instance 0 keeps the legacy unsalted ordering, so single-tree
// aggregations are unchanged.
func aggSalt(j int) uint64 { return uint64(j) * 0x9E3779B97F4A7C15 }

// subTarget slices the band hull into k equal entry sub-intervals so
// each redundant tree anycasts toward — and roots at — a different
// part of the band.
func subTarget(hull Target, j, k int) Target {
	w := (hull.Hi - hull.Lo) / float64(k)
	if k <= 1 || w <= 0 {
		return hull
	}
	lo := hull.Lo + float64(j)*w
	hi := lo + w
	if j == k-1 {
		hi = hull.Hi
	}
	return Target{Lo: lo, Hi: hi}
}

// HandleMessage is the network entry point: the simulator and live
// runtime register it as the node's message handler.
func (r *Router) HandleMessage(from ids.NodeID, msg any) {
	// The audit layer sees every message first: traffic from peers this
	// node has evicted is discarded, delivery notices included.
	if r.auditor != nil && !r.auditor.ObserveInbound(from, msg) {
		r.rejected++
		return
	}
	if r.otrace != nil {
		r.traceInbound(from, msg)
	}
	// Delivery notices bypass the in-neighbor check: the delivering
	// node is rarely the origin's neighbor. They are harmless to spoof —
	// the collector only accepts verdicts for operations this node
	// registered, and first-wins semantics keep them idempotent.
	if m, ok := msg.(DeliveredMsg); ok {
		r.col.anycastDelivered(m.ID, m.Hops, r.env.Now()-m.SentAt)
		return
	}
	// AggResultMsg is origin-addressed like DeliveredMsg and bypasses
	// the in-neighbor check for the same reason: the tree root is
	// rarely the origin's neighbor. Unlike DeliveredMsg it is NOT
	// harmless to spoof, so acceptance is bound: the collector takes a
	// result only when its token echoes the origin-minted binding token
	// of that tree instance and the transport-level sender matches the
	// recorded root — a fabricated result from a tree member (which
	// never saw the token) is rejected and counted (DESIGN.md §13).
	if m, ok := msg.(AggResultMsg); ok {
		// The origin vets the root's claimed result against the band's
		// availability distribution exactly as a parent vets a child
		// partial: a root that lies in its own result (rather than in a
		// relayed partial) leaves the band hull and is dropped here,
		// reported to the auditor, and its tree instance stays pending —
		// the cross-tree median then resolves from the honest trees.
		if band, tracked := r.aggChecks[m.ID]; tracked {
			if reason := r.partialSuspect(band, m.Result); reason != "" {
				r.col.aggregatePartialRejected(m.ID)
				if ap, ok := r.auditor.(AggPartialAuditor); ok {
					ap.SuspectAggPartial(from, reason)
				}
				return
			}
		}
		r.col.aggregateResult(m.ID, from, m.Token, m.Result, r.env.Now())
		return
	}
	if r.verifyInbound && !from.IsNil() && !r.mem.VerifyInbound(from) {
		r.rejected++
		return
	}
	switch m := msg.(type) {
	case AnycastMsg:
		r.handleAnycast(from, m)
	case MulticastMsg:
		r.handleMulticast(m)
	case RangecastMsg:
		r.spreadRangecast(m)
	case AggMsg:
		r.handleAggRequest(from, m)
	case AggReplyMsg:
		r.handleAggReply(from, m)
	default:
		// Unknown payloads are dropped; the overlay carries only
		// operation traffic.
	}
}

// handleAnycast processes an anycast hop at this node (paper §3.2.I):
// terminate if inside the target, otherwise forward by policy.
func (r *Router) handleAnycast(from ids.NodeID, m AnycastMsg) {
	self := r.mem.SelfInfo()
	if m.Target.Contains(self.Availability) {
		switch {
		case m.Multicast != nil:
			r.col.multicastEntered(m.ID)
			r.disseminate(MulticastMsg{ID: m.ID, Target: m.Target, Spec: *m.Multicast, SentAt: m.SentAt})
		case m.Rangecast != nil:
			r.col.rangecastEntered(m.ID)
			r.spreadRangecast(RangecastMsg{ID: m.ID, Spec: *m.Rangecast, SentAt: m.SentAt})
		case m.Aggregate != nil:
			r.rootAggregate(m)
		default:
			if r.otrace != nil {
				r.span("anycast", "deliver", m.ID, m.Hops, from)
			}
			r.col.anycastDelivered(m.ID, m.Hops, r.env.Now()-m.SentAt)
			if m.ID.Origin != self.ID {
				r.env.Send(m.ID.Origin, DeliveredMsg{ID: m.ID, Hops: m.Hops, SentAt: m.SentAt})
			}
		}
		return
	}
	r.forwardAnycast(from, m)
}

// unlimitedBudget marks policies without an explicit retry cap.
const unlimitedBudget = -1

// forwardAnycast picks the next hop by policy and sends with failure
// detection. Transport-level failure of a next hop (offline target) is
// observable — a connection attempt to a dead host fails — so every
// policy fails over to its next choice rather than losing the message.
// RetriedGreedy additionally caps the number of attempts with the
// message's retry budget (paper §3.2.I); Greedy and Annealing stop only
// when the candidate list is exhausted.
func (r *Router) forwardAnycast(from ids.NodeID, m AnycastMsg) {
	if m.TTL <= 0 {
		r.col.anycastFailed(m.ID, OutcomeTTLExpired)
		return
	}
	candidates := r.candidates(from, m.Flavor, m.Target)
	next := m
	next.TTL--
	next.Hops++
	next.SenderAvail = r.selfClaim()
	budget := unlimitedBudget
	if m.Policy == RetriedGreedy {
		budget = m.Retry
	}
	r.attempt(candidates, next, budget)
}

// attempt sends m to the policy's pick among candidates; on failure the
// pick is removed and the next is attempted, spending one unit of a
// bounded budget per failure. Exhausting either candidates or budget
// fails the operation with OutcomeRetryExpired.
func (r *Router) attempt(candidates []core.Neighbor, m AnycastMsg, budget int) {
	if len(candidates) == 0 || budget == 0 {
		r.col.anycastFailed(m.ID, OutcomeRetryExpired)
		r.releaseCandidates(candidates)
		return
	}
	idx := 0
	if m.Policy == Annealing {
		idx = r.annealIndex(candidates, m)
	}
	choice := candidates[idx]
	if m.Policy == RetriedGreedy {
		m.Retry = budget
	}
	r.env.SendCall(choice.ID, m, func(ok bool) {
		if ok {
			r.releaseCandidates(candidates)
			return
		}
		// Failed attempts remove the pick in place — the chain owns the
		// buffer, so compaction preserves greedy order without copying.
		rest := append(candidates[:idx], candidates[idx+1:]...)
		nextBudget := budget
		if budget > 0 {
			nextBudget = budget - 1
		}
		r.attempt(rest, m, nextBudget)
	})
}

// annealIndex implements simulated annealing (paper §3.2.I): traverse
// the neighbor list in greedy order; each candidate is chosen outright
// with probability p = exp(−Δ/ttl), where Δ is the candidate's
// availability distance to the target edge and ttl the remaining
// time-to-live; if no candidate wins its coin flip, fall back to the
// greedy choice.
//
// In-range candidates have Δ = 0, hence p = 1: they are taken as soon
// as the traversal reaches them. Early in a message's life (large ttl)
// even distant candidates have high p, so the walk is exploratory;
// as ttl runs down, p decays and the choice degenerates to greedy —
// the annealing schedule the paper describes.
func (r *Router) annealIndex(candidates []core.Neighbor, m AnycastMsg) int {
	ttl := float64(m.TTL)
	if ttl <= 0 {
		ttl = 1
	}
	for i, nb := range candidates {
		delta := m.Target.Distance(nb.Availability)
		p := math.Exp(-delta / ttl)
		if r.env.RandFloat() < p {
			return i
		}
	}
	return 0
}

// candidates returns the usable neighbors for forwarding, sorted by the
// greedy metric (availability distance to the target, ties by ID). The
// immediate sender is excluded when alternatives exist — a loop-avoidance
// refinement; with only the sender available we still use it rather
// than drop. The result is a pooled buffer filled from the membership's
// cached view; the caller (the attempt chain) owns it until release.
func (r *Router) candidates(from ids.NodeID, flavor core.Flavor, target Target) []core.Neighbor {
	all := r.mem.Neighbors(flavor)
	out := r.acquireCandidates(len(all))
	var sender core.Neighbor
	hasSender := false
	for i := range all {
		if r.auditor != nil && r.auditor.Blocked(all[i].ID) {
			continue
		}
		if all[i].ID == from {
			sender = all[i]
			hasSender = true
			continue
		}
		out = append(out, all[i])
	}
	if len(out) == 0 && hasSender {
		out = append(out, sender)
	}
	r.byDist.target = target
	r.byDist.nbs = out
	sort.Sort(&r.byDist)
	r.byDist.nbs = nil
	return out
}

// handleMulticast processes a dissemination-stage message.
func (r *Router) handleMulticast(m MulticastMsg) {
	r.disseminate(m)
}

// markSeen records id in the duplicate-suppression set, reporting
// whether it was already present. The set is lazily allocated — most
// routers in a large world never see a dissemination message — and
// reset wholesale (with the per-operation gossip ledger) when it hits
// maxSeen.
func (r *Router) markSeen(id MsgID) bool {
	if r.seen[id] {
		return true
	}
	if len(r.seen) >= maxSeen {
		r.seen = make(map[MsgID]bool, 256)
		r.gossipSent = nil
	} else if r.seen == nil {
		r.seen = make(map[MsgID]bool, 64)
	}
	r.seen[id] = true
	return false
}

// disseminate is the stage-two entry: record the local delivery once,
// then flood or gossip onward if this node lies inside the target.
func (r *Router) disseminate(m MulticastMsg) {
	if r.markSeen(m.ID) {
		return
	}

	self := r.mem.SelfInfo()
	inRange := m.Target.Contains(self.Availability)
	r.col.multicastDelivered(m.ID, string(self.ID), r.env.Now(), inRange)
	if !inRange {
		// A node outside the target consumed spam; it does not forward.
		return
	}
	// Onward copies carry this node's own availability claim.
	m.SenderAvail = r.selfClaim()
	switch m.Spec.Mode {
	case Gossip:
		r.gossipRounds(m, m.Spec.Rounds)
	default: // Flood
		// Box the message once: every recipient shares one read-only
		// interface value instead of re-boxing the struct per send.
		var boxed any = m
		for _, nb := range r.inRangeNeighbors(m) {
			r.env.Send(nb.ID, boxed)
		}
	}
}

// gossipRounds runs one gossip round now and schedules the remainder.
func (r *Router) gossipRounds(m MulticastMsg, remaining int) {
	if remaining <= 0 {
		return
	}
	if r.env.Online() {
		sent := r.gossipSent[m.ID]
		if sent == nil {
			sent = make(map[ids.NodeID]bool, m.Spec.Fanout*m.Spec.Rounds)
			if r.gossipSent == nil {
				r.gossipSent = make(map[MsgID]map[ids.NodeID]bool, 16)
			}
			r.gossipSent[m.ID] = sent
		}
		// Deterministic iteration through the in-range neighbor list,
		// skipping peers already gossiped to (paper §3.2.II).
		n := 0
		var boxed any = m
		for _, nb := range r.inRangeNeighbors(m) {
			if n >= m.Spec.Fanout {
				break
			}
			if sent[nb.ID] {
				continue
			}
			sent[nb.ID] = true
			r.env.Send(nb.ID, boxed)
			n++
		}
	}
	r.env.After(m.Spec.Period, func() { r.gossipRounds(m, remaining-1) })
}

// inRangeNeighbors returns this node's neighbors (dissemination flavor)
// whose cached availability lies inside the multicast target, ordered
// by the pair hash with this node. The order is deterministic per node
// (the paper's "deterministic iteration through the list") but
// uncorrelated across nodes — a globally shared order (say, sorted
// identifiers) would starve the nodes that sort last, since every
// gossiper would spend its fanout on the same prefix.
// The result lives in the router's dissemination scratch: it is only
// valid until the next inRangeNeighbors call, which is fine because
// flooding and gossip consume it synchronously.
func (r *Router) inRangeNeighbors(m MulticastMsg) []core.Neighbor {
	return r.scratchNeighbors(m.Spec.Flavor, m.Target.Contains, 0)
}

// scratchNeighbors fills the dissemination scratch with this node's
// unblocked neighbors (given flavor) whose cached availability passes
// contains, hash-ordered (see inRangeNeighbors for why the order must
// be deterministic per node but uncorrelated across nodes). All three
// dissemination families — multicast, range-cast, aggregation — share
// it; the result is valid until the next scratchNeighbors call. A
// nonzero salt remixes the ordering keys so the redundant trees of one
// aggregation grow along different sliver orderings; salt 0 is the
// legacy order.
func (r *Router) scratchNeighbors(flavor core.Flavor, contains func(float64) bool, salt uint64) []core.Neighbor {
	all := r.mem.Neighbors(flavor)
	r.rangeNbs = r.rangeNbs[:0]
	r.rangeKeys = r.rangeKeys[:0]
	self := r.mem.Self()
	for _, nb := range all {
		if r.auditor != nil && r.auditor.Blocked(nb.ID) {
			continue
		}
		if contains(nb.Availability) {
			r.rangeNbs = append(r.rangeNbs, nb)
			var key float64
			if r.hashes != nil {
				key = r.hashes.Pair(self, nb.ID)
			} else {
				key = ids.PairHash(self, nb.ID)
			}
			r.rangeKeys = append(r.rangeKeys, saltKey(key, salt))
		}
	}
	r.byHash.keys = r.rangeKeys
	r.byHash.nbs = r.rangeNbs
	sort.Sort(&r.byHash)
	r.byHash.keys = nil
	r.byHash.nbs = nil
	return r.rangeNbs
}

// saltKey remixes one ordering key with a per-tree salt (splitmix64
// finalizer over the xored bits, folded back to [0,1)). Salt 0 — every
// non-aggregation path — returns the key untouched.
func saltKey(key float64, salt uint64) float64 {
	if salt == 0 {
		return key
	}
	z := math.Float64bits(key) ^ salt
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// spreadRangecast is the range-cast stage-two entry: record the local
// delivery once (duplicate-suppressed by operation id), then flood
// onward to in-band neighbors if this node itself lies inside the
// band. Like multicast flooding, an out-of-band receiver — reachable
// only through a stale cached availability — consumes spam and does
// not forward, so the payload never propagates outside the band's
// overlay neighborhood.
func (r *Router) spreadRangecast(m RangecastMsg) {
	if r.markSeen(m.ID) {
		return
	}

	self := r.mem.SelfInfo()
	inBand := m.Spec.Band.Contains(self.Availability)
	r.col.rangecastDelivered(m.ID, string(self.ID), r.env.Now(), inBand, m.Depth)
	if !inBand && m.Depth > 0 {
		return
	}
	// The depth-0 exception: the entry node can sit exactly on the
	// band's closed hull (the anycast attractor), in which case it
	// relays into the band without being a member itself.
	next := m
	next.Depth++
	next.SenderAvail = r.selfClaim()
	var boxed any = next
	for _, nb := range r.scratchNeighbors(m.Spec.Flavor, m.Spec.Band.Contains, 0) {
		r.env.Send(nb.ID, boxed)
	}
}

// rootAggregate turns the entry node of an aggregation's anycast stage
// into the root of the partial-combining tree. The root contributes
// its own value only when it actually lies inside the half-open band
// (the anycast terminates on the band's closed hull, so a node exactly
// at Hi can become a contribution-free relay root); its finalized
// partial goes straight back to the origin.
func (r *Router) rootAggregate(m AnycastMsg) {
	spec := *m.Aggregate
	self := r.mem.SelfInfo()
	r.col.aggregateEntered(m.ID, self.ID)
	id, sentAt := m.ID, m.SentAt
	opened := r.station.Open(id, 0, r.aggValue(), spec.Band.Contains(self.Availability), func(p agg.Partial) {
		delete(r.aggChecks, id)
		if id.Origin == self.ID {
			r.col.aggregateResult(id, self.ID, spec.Token, p, r.env.Now())
			return
		}
		r.env.Send(id.Origin, AggResultMsg{ID: id, Result: p, Token: spec.Token, SentAt: sentAt, SenderAvail: r.selfClaim()})
	})
	if !opened {
		// A retried entry stage can deliver the same anycast to a second
		// in-band node after the first already rooted the tree.
		return
	}
	r.trackAggCheck(id, spec.Band)
	r.station.Expect(id, r.forwardAgg(id, spec, 0, sentAt, ids.Nil))
}

// handleAggRequest processes an aggregation request at this node: join
// the tree under the sender (first copy), or send an accounting
// decline (duplicate copy, or this node lies outside the band).
func (r *Router) handleAggRequest(from ids.NodeID, m AggMsg) {
	self := r.mem.SelfInfo()
	if r.station.Seen(m.ID) || !m.Spec.Band.Contains(self.Availability) {
		r.env.Send(from, AggReplyMsg{ID: m.ID, Decline: true, SenderAvail: r.selfClaim()})
		return
	}
	id, parent := m.ID, from
	r.station.Open(id, m.Depth, r.aggValue(), true, func(p agg.Partial) {
		delete(r.aggChecks, id)
		r.env.Send(parent, AggReplyMsg{ID: id, Partial: p, SenderAvail: r.selfClaim()})
	})
	r.trackAggCheck(id, m.Spec.Band)
	r.station.Expect(id, r.forwardAgg(id, m.Spec, m.Depth, m.SentAt, from))
}

// trackAggCheck remembers the band of a tree this node just joined,
// arming the PDF sanity checks on its child replies. The finalize
// closure removes the entry, so the map tracks only pending trees.
func (r *Router) trackAggCheck(id MsgID, band Band) {
	if r.bandCensus == nil {
		return
	}
	if r.aggChecks == nil {
		r.aggChecks = make(map[MsgID]Band, 8)
	}
	r.aggChecks[id] = band
}

// forwardAgg grows the tree one level: the request goes to every
// in-band neighbor except the parent, with delivery failures feeding
// straight into convergence accounting (an unreachable child declines
// by transport nack). Returns how many children were addressed.
func (r *Router) forwardAgg(id MsgID, spec AggregateSpec, depth int, sentAt time.Duration, parent ids.NodeID) int {
	if depth >= r.station.Params().MaxDepth {
		return 0
	}
	// The binding token stays between origin, entry path, and root:
	// tree members must never learn it, or any of them could race a
	// fabricated result past the origin's collector.
	next := AggMsg{ID: id, Spec: spec, Depth: depth + 1, SentAt: sentAt, SenderAvail: r.selfClaim()}
	next.Spec.Token = 0
	kids := 0
	for _, nb := range r.scratchNeighbors(spec.Flavor, spec.Band.Contains, spec.Salt) {
		if nb.ID == parent {
			continue
		}
		r.env.SendCall(nb.ID, next, func(ok bool) {
			if !ok {
				r.station.Decline(id)
			}
		})
		kids++
	}
	return kids
}

// PDF sanity-check tuning: a merged partial may claim at most
// aggCountSlack × the band's expected census contributors (floored, so
// sparse bands keep headroom), and — when contributions are
// availability claims — value moments may exceed the band hull by at
// most aggValueTol. Honest partials sit far inside both bounds; the
// slack absorbs churn-driven drift between the census estimate and the
// live population.
const (
	aggCountSlack = 3.0
	aggCountFloor = 8.0
	aggValueTol   = 0.1
)

// partialSuspect validates a merged child partial against the
// availability distribution; a non-empty reason means the partial
// claims something the deployment's PDF says cannot be true.
func (r *Router) partialSuspect(band Band, p agg.Partial) string {
	if p.N <= 0 {
		return ""
	}
	expected := r.bandCensus(band.Lo, band.Hi)
	if float64(p.N) > aggCountSlack*math.Max(expected, aggCountFloor) {
		return "agg-count-bounds"
	}
	if !r.valueChecks {
		return ""
	}
	lo := band.Lo - aggValueTol
	hi := math.Min(band.Hi, 1) + aggValueTol
	if p.Min < lo || p.Max > hi {
		return "agg-hull-bounds"
	}
	if avg := p.Sum / float64(p.N); avg < lo || avg > hi {
		return "agg-avg-bounds"
	}
	return ""
}

// handleAggReply folds a child's accounting reply into the pending
// aggregation: a partial carries the child's whole subtree, a decline
// carries nothing but still counts toward convergence. When the PDF
// sanity checks are armed, a partial that contradicts the availability
// distribution is dropped — it still counts as a (contribution-free)
// decline so convergence accounting stays exact — and reported to the
// auditor as decaying soft evidence against the sender.
func (r *Router) handleAggReply(from ids.NodeID, m AggReplyMsg) {
	if m.Decline {
		r.station.Decline(m.ID)
		return
	}
	if band, ok := r.aggChecks[m.ID]; ok {
		if reason := r.partialSuspect(band, m.Partial); reason != "" {
			r.col.aggregatePartialRejected(m.ID)
			if ap, ok := r.auditor.(AggPartialAuditor); ok {
				ap.SuspectAggPartial(from, reason)
			}
			r.station.Decline(m.ID)
			return
		}
	}
	r.station.Absorb(m.ID, m.Partial)
}
