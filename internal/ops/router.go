package ops

import (
	"fmt"
	"math"
	"sort"
	"time"

	"avmem/internal/core"
	"avmem/internal/ids"
)

// Env is the host environment a Router runs in. The simulator and the
// live runtime both implement it, so the operation logic is written
// once and executed in both worlds.
type Env interface {
	// Now returns the current (virtual or wall-clock) time.
	Now() time.Duration
	// After schedules fn after delay d.
	After(d time.Duration, fn func())
	// RandFloat returns a uniform float in [0,1) (simulated annealing).
	RandFloat() float64
	// Send delivers msg to the target with one hop latency, best effort.
	Send(to ids.NodeID, msg any)
	// SendCall is Send plus an acknowledgment: onResult(true) after the
	// target processed the message, onResult(false) when it could not
	// be reached (retried-greedy forwarding relies on this).
	SendCall(to ids.NodeID, msg any, onResult func(ok bool))
	// Online reports whether this node itself is currently online.
	Online() bool
}

// Auditor is the receiving-side audit seam (internal/audit implements
// it). The router consults it on every inbound operation message and
// excludes blacklisted peers from forwarding and dissemination, so
// audited-out nodes stop receiving management traffic.
type Auditor interface {
	// ObserveInbound audits one delivered message; false means the
	// sender is blacklisted and the message must be dropped.
	ObserveInbound(from ids.NodeID, msg any) bool
	// Blocked reports whether id has been audited out.
	Blocked(id ids.NodeID) bool
}

// maxSeen bounds the duplicate-suppression set; operations are
// short-lived so a full reset on overflow is harmless.
const maxSeen = 1 << 14

// Router executes management operations at one node: it initiates
// anycasts and multicasts, forwards in-flight messages according to
// their policy, and reports outcomes into a shared Collector.
type Router struct {
	mem *core.Membership
	env Env
	col *Collector
	// verifyInbound enables the §4.1 in-neighbor check on every
	// received operation message.
	verifyInbound bool
	// hashes memoizes dissemination-order pair hashes when non-nil.
	hashes *ids.HashCache
	// auditor, when non-nil, audits inbound messages and supplies the
	// blacklist that forwarding and dissemination honor.
	auditor    Auditor
	rejected   int
	seq        uint64
	seen       map[MsgID]bool
	gossipSent map[MsgID]map[ids.NodeID]bool
	// free recycles candidate buffers across anycast forwards. A buffer
	// is owned by one in-flight attempt chain until the operation hits a
	// terminal state or its SendCall acknowledges — the failure callback
	// fires asynchronously and re-reads the list, so the buffer cannot
	// be shared with concurrent forwards.
	free [][]core.Neighbor
	// byDist is kept on the Router so sort.Sort receives an existing
	// pointer and candidate ordering allocates nothing.
	byDist distanceSorter
	// rangeKeys/rangeNbs are the dissemination scratch: in-range
	// filtering and hash-ordering happen synchronously, so one buffer
	// pair per router suffices.
	rangeKeys []float64
	rangeNbs  []core.Neighbor
	byHash    hashSorter
	// claimVal/claimAt/claimSet memoize the availability claim stamped
	// on outbound messages: a fresh monitor self-query per claimCache
	// window instead of per forwarded message (monitor estimates move
	// at epoch granularity, far slower than the cache expires).
	claimVal float64
	claimAt  time.Duration
	claimSet bool
}

// claimCache bounds the claim memo's staleness.
const claimCache = time.Minute

// selfClaim returns the availability claim for outbound stamps,
// re-querying the monitor at most once per claimCache window.
func (r *Router) selfClaim() float64 {
	now := r.env.Now()
	if !r.claimSet || now-r.claimAt > claimCache {
		r.claimVal = r.mem.SelfClaim()
		r.claimAt = now
		r.claimSet = true
	}
	return r.claimVal
}

// distanceSorter orders candidates by availability distance to the
// target, ties broken by ID (the greedy metric).
type distanceSorter struct {
	target Target
	nbs    []core.Neighbor
}

func (s *distanceSorter) Len() int      { return len(s.nbs) }
func (s *distanceSorter) Swap(i, j int) { s.nbs[i], s.nbs[j] = s.nbs[j], s.nbs[i] }
func (s *distanceSorter) Less(i, j int) bool {
	di := s.target.Distance(s.nbs[i].Availability)
	dj := s.target.Distance(s.nbs[j].Availability)
	if di != dj {
		return di < dj
	}
	return s.nbs[i].ID < s.nbs[j].ID
}

// hashSorter orders neighbors by a precomputed pair-hash key, keeping
// the parallel key slice in step.
type hashSorter struct {
	keys []float64
	nbs  []core.Neighbor
}

func (s *hashSorter) Len() int           { return len(s.nbs) }
func (s *hashSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *hashSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.nbs[i], s.nbs[j] = s.nbs[j], s.nbs[i]
}

// acquireCandidates pops a recycled candidate buffer, or allocates one
// sized for the current neighbor list.
func (r *Router) acquireCandidates(capHint int) []core.Neighbor {
	if n := len(r.free); n > 0 {
		buf := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return buf[:0]
	}
	return make([]core.Neighbor, 0, capHint)
}

// releaseCandidates returns a buffer to the pool once no in-flight
// callback can read it anymore.
func (r *Router) releaseCandidates(buf []core.Neighbor) {
	if cap(buf) == 0 {
		return
	}
	r.free = append(r.free, buf[:0])
}

// RouterConfig assembles a Router.
type RouterConfig struct {
	Membership *core.Membership
	Env        Env
	Collector  *Collector
	// VerifyInbound drops operation messages whose sender fails the
	// consistent in-neighbor predicate check.
	VerifyInbound bool
	// Hashes optionally memoizes the pair hashes dissemination ordering
	// uses; deployments share one cache across all routers.
	Hashes *ids.HashCache
	// Auditor optionally audits inbound messages and blacklists
	// misbehaving peers (internal/audit).
	Auditor Auditor
}

// NewRouter validates and builds a Router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Membership == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Membership is required")
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Env is required")
	}
	if cfg.Collector == nil {
		return nil, fmt.Errorf("ops: RouterConfig.Collector is required")
	}
	return &Router{
		mem:           cfg.Membership,
		env:           cfg.Env,
		col:           cfg.Collector,
		verifyInbound: cfg.VerifyInbound,
		hashes:        cfg.Hashes,
		auditor:       cfg.Auditor,
		seen:          make(map[MsgID]bool, 256),
		gossipSent:    make(map[MsgID]map[ids.NodeID]bool, 16),
	}, nil
}

// Self returns the owning node's identifier.
func (r *Router) Self() ids.NodeID { return r.mem.Self() }

// Rejected returns how many inbound messages failed verification.
func (r *Router) Rejected() int { return r.rejected }

// nextID mints a fresh operation identifier.
func (r *Router) nextID() MsgID {
	r.seq++
	return MsgID{Origin: r.mem.Self(), Seq: r.seq}
}

// AnycastOptions parameterizes an anycast initiation.
type AnycastOptions struct {
	Policy Policy
	Flavor core.Flavor
	// TTL in virtual hops (paper default 6).
	TTL int
	// Retry is the retry budget k for RetriedGreedy (ignored otherwise).
	Retry int
}

// DefaultAnycastOptions returns the paper's defaults: greedy HS+VS,
// TTL 6.
func DefaultAnycastOptions() AnycastOptions {
	return AnycastOptions{Policy: Greedy, Flavor: core.HSVS, TTL: 6}
}

func (o AnycastOptions) validate() error {
	switch o.Policy {
	case Greedy, RetriedGreedy, Annealing:
	default:
		return fmt.Errorf("ops: invalid policy %v", o.Policy)
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
	default:
		return fmt.Errorf("ops: invalid flavor %v", o.Flavor)
	}
	if o.TTL <= 0 {
		return fmt.Errorf("ops: TTL must be positive, got %d", o.TTL)
	}
	if o.Policy == RetriedGreedy && o.Retry <= 0 {
		return fmt.Errorf("ops: RetriedGreedy needs a positive retry budget")
	}
	return nil
}

// Anycast initiates a {threshold,range}-anycast toward target and
// returns its operation ID; the outcome materializes in the Collector.
func (r *Router) Anycast(target Target, opts AnycastOptions) (MsgID, error) {
	if err := target.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	r.col.StartAnycast(id, target)
	msg := AnycastMsg{
		ID:          id,
		Target:      target,
		Policy:      opts.Policy,
		Flavor:      opts.Flavor,
		TTL:         opts.TTL,
		Retry:       opts.Retry,
		SentAt:      r.env.Now(),
		SenderAvail: r.selfClaim(),
	}
	r.handleAnycast(ids.Nil, msg)
	return id, nil
}

// MulticastOptions parameterizes a multicast initiation.
type MulticastOptions struct {
	// Anycast configures stage one (entering the range).
	Anycast AnycastOptions
	// Mode selects flooding or gossip for stage two.
	Mode Mode
	// Flavor selects the sliver lists used for dissemination.
	Flavor core.Flavor
	// Fanout and Rounds parameterize gossip (fanout×Ng ≈ log N*).
	Fanout int
	Rounds int
	// Period is the gossip period (paper: 1 s).
	Period time.Duration
	// Eligible is the online in-range population at initiation, the
	// denominator of reliability and spam (supplied by the caller,
	// which in experiments knows ground truth).
	Eligible int
}

// DefaultMulticastOptions returns the paper's defaults: greedy HS+VS
// entry, flooding dissemination over HS+VS.
func DefaultMulticastOptions() MulticastOptions {
	return MulticastOptions{
		Anycast: DefaultAnycastOptions(),
		Mode:    Flood,
		Flavor:  core.HSVS,
	}
}

func (o MulticastOptions) validate() error {
	if err := o.Anycast.validate(); err != nil {
		return err
	}
	switch o.Flavor {
	case core.HSOnly, core.VSOnly, core.HSVS:
	default:
		return fmt.Errorf("ops: invalid multicast flavor %v", o.Flavor)
	}
	switch o.Mode {
	case Flood:
	case Gossip:
		if o.Fanout <= 0 || o.Rounds <= 0 || o.Period <= 0 {
			return fmt.Errorf("ops: gossip needs positive fanout/rounds/period, got %d/%d/%v",
				o.Fanout, o.Rounds, o.Period)
		}
	default:
		return fmt.Errorf("ops: invalid mode %v", o.Mode)
	}
	return nil
}

// Multicast initiates a {threshold,range}-multicast toward target and
// returns its operation ID.
func (r *Router) Multicast(target Target, opts MulticastOptions) (MsgID, error) {
	if err := target.Validate(); err != nil {
		return MsgID{}, err
	}
	if err := opts.validate(); err != nil {
		return MsgID{}, err
	}
	id := r.nextID()
	now := r.env.Now()
	r.col.StartMulticast(id, target, opts.Eligible, now)
	spec := MulticastSpec{
		Mode:   opts.Mode,
		Flavor: opts.Flavor,
		Fanout: opts.Fanout,
		Rounds: opts.Rounds,
		Period: opts.Period,
	}
	msg := AnycastMsg{
		ID:          id,
		Target:      target,
		Policy:      opts.Anycast.Policy,
		Flavor:      opts.Anycast.Flavor,
		TTL:         opts.Anycast.TTL,
		Retry:       opts.Anycast.Retry,
		SentAt:      now,
		SenderAvail: r.selfClaim(),
		Multicast:   &spec,
	}
	r.handleAnycast(ids.Nil, msg)
	return id, nil
}

// HandleMessage is the network entry point: the simulator and live
// runtime register it as the node's message handler.
func (r *Router) HandleMessage(from ids.NodeID, msg any) {
	// The audit layer sees every message first: traffic from peers this
	// node has evicted is discarded, delivery notices included.
	if r.auditor != nil && !r.auditor.ObserveInbound(from, msg) {
		r.rejected++
		return
	}
	// Delivery notices bypass the in-neighbor check: the delivering
	// node is rarely the origin's neighbor. They are harmless to spoof —
	// the collector only accepts verdicts for operations this node
	// registered, and first-wins semantics keep them idempotent.
	if m, ok := msg.(DeliveredMsg); ok {
		r.col.anycastDelivered(m.ID, m.Hops, r.env.Now()-m.SentAt)
		return
	}
	if r.verifyInbound && !from.IsNil() && !r.mem.VerifyInbound(from) {
		r.rejected++
		return
	}
	switch m := msg.(type) {
	case AnycastMsg:
		r.handleAnycast(from, m)
	case MulticastMsg:
		r.handleMulticast(m)
	default:
		// Unknown payloads are dropped; the overlay carries only
		// operation traffic.
	}
}

// handleAnycast processes an anycast hop at this node (paper §3.2.I):
// terminate if inside the target, otherwise forward by policy.
func (r *Router) handleAnycast(from ids.NodeID, m AnycastMsg) {
	self := r.mem.SelfInfo()
	if m.Target.Contains(self.Availability) {
		if m.Multicast != nil {
			r.col.multicastEntered(m.ID)
			r.disseminate(MulticastMsg{ID: m.ID, Target: m.Target, Spec: *m.Multicast, SentAt: m.SentAt})
		} else {
			r.col.anycastDelivered(m.ID, m.Hops, r.env.Now()-m.SentAt)
			if m.ID.Origin != self.ID {
				r.env.Send(m.ID.Origin, DeliveredMsg{ID: m.ID, Hops: m.Hops, SentAt: m.SentAt})
			}
		}
		return
	}
	r.forwardAnycast(from, m)
}

// unlimitedBudget marks policies without an explicit retry cap.
const unlimitedBudget = -1

// forwardAnycast picks the next hop by policy and sends with failure
// detection. Transport-level failure of a next hop (offline target) is
// observable — a connection attempt to a dead host fails — so every
// policy fails over to its next choice rather than losing the message.
// RetriedGreedy additionally caps the number of attempts with the
// message's retry budget (paper §3.2.I); Greedy and Annealing stop only
// when the candidate list is exhausted.
func (r *Router) forwardAnycast(from ids.NodeID, m AnycastMsg) {
	if m.TTL <= 0 {
		r.col.anycastFailed(m.ID, OutcomeTTLExpired)
		return
	}
	candidates := r.candidates(from, m.Flavor, m.Target)
	next := m
	next.TTL--
	next.Hops++
	next.SenderAvail = r.selfClaim()
	budget := unlimitedBudget
	if m.Policy == RetriedGreedy {
		budget = m.Retry
	}
	r.attempt(candidates, next, budget)
}

// attempt sends m to the policy's pick among candidates; on failure the
// pick is removed and the next is attempted, spending one unit of a
// bounded budget per failure. Exhausting either candidates or budget
// fails the operation with OutcomeRetryExpired.
func (r *Router) attempt(candidates []core.Neighbor, m AnycastMsg, budget int) {
	if len(candidates) == 0 || budget == 0 {
		r.col.anycastFailed(m.ID, OutcomeRetryExpired)
		r.releaseCandidates(candidates)
		return
	}
	idx := 0
	if m.Policy == Annealing {
		idx = r.annealIndex(candidates, m)
	}
	choice := candidates[idx]
	if m.Policy == RetriedGreedy {
		m.Retry = budget
	}
	r.env.SendCall(choice.ID, m, func(ok bool) {
		if ok {
			r.releaseCandidates(candidates)
			return
		}
		// Failed attempts remove the pick in place — the chain owns the
		// buffer, so compaction preserves greedy order without copying.
		rest := append(candidates[:idx], candidates[idx+1:]...)
		nextBudget := budget
		if budget > 0 {
			nextBudget = budget - 1
		}
		r.attempt(rest, m, nextBudget)
	})
}

// annealIndex implements simulated annealing (paper §3.2.I): traverse
// the neighbor list in greedy order; each candidate is chosen outright
// with probability p = exp(−Δ/ttl), where Δ is the candidate's
// availability distance to the target edge and ttl the remaining
// time-to-live; if no candidate wins its coin flip, fall back to the
// greedy choice.
//
// In-range candidates have Δ = 0, hence p = 1: they are taken as soon
// as the traversal reaches them. Early in a message's life (large ttl)
// even distant candidates have high p, so the walk is exploratory;
// as ttl runs down, p decays and the choice degenerates to greedy —
// the annealing schedule the paper describes.
func (r *Router) annealIndex(candidates []core.Neighbor, m AnycastMsg) int {
	ttl := float64(m.TTL)
	if ttl <= 0 {
		ttl = 1
	}
	for i, nb := range candidates {
		delta := m.Target.Distance(nb.Availability)
		p := math.Exp(-delta / ttl)
		if r.env.RandFloat() < p {
			return i
		}
	}
	return 0
}

// candidates returns the usable neighbors for forwarding, sorted by the
// greedy metric (availability distance to the target, ties by ID). The
// immediate sender is excluded when alternatives exist — a loop-avoidance
// refinement; with only the sender available we still use it rather
// than drop. The result is a pooled buffer filled from the membership's
// cached view; the caller (the attempt chain) owns it until release.
func (r *Router) candidates(from ids.NodeID, flavor core.Flavor, target Target) []core.Neighbor {
	all := r.mem.Neighbors(flavor)
	out := r.acquireCandidates(len(all))
	var sender core.Neighbor
	hasSender := false
	for i := range all {
		if r.auditor != nil && r.auditor.Blocked(all[i].ID) {
			continue
		}
		if all[i].ID == from {
			sender = all[i]
			hasSender = true
			continue
		}
		out = append(out, all[i])
	}
	if len(out) == 0 && hasSender {
		out = append(out, sender)
	}
	r.byDist.target = target
	r.byDist.nbs = out
	sort.Sort(&r.byDist)
	r.byDist.nbs = nil
	return out
}

// handleMulticast processes a dissemination-stage message.
func (r *Router) handleMulticast(m MulticastMsg) {
	r.disseminate(m)
}

// disseminate is the stage-two entry: record the local delivery once,
// then flood or gossip onward if this node lies inside the target.
func (r *Router) disseminate(m MulticastMsg) {
	if r.seen[m.ID] {
		return
	}
	if len(r.seen) >= maxSeen {
		r.seen = make(map[MsgID]bool, 256)
		r.gossipSent = make(map[MsgID]map[ids.NodeID]bool, 16)
	}
	r.seen[m.ID] = true

	self := r.mem.SelfInfo()
	inRange := m.Target.Contains(self.Availability)
	r.col.multicastDelivered(m.ID, string(self.ID), r.env.Now(), inRange)
	if !inRange {
		// A node outside the target consumed spam; it does not forward.
		return
	}
	// Onward copies carry this node's own availability claim.
	m.SenderAvail = r.selfClaim()
	switch m.Spec.Mode {
	case Gossip:
		r.gossipRounds(m, m.Spec.Rounds)
	default: // Flood
		// Box the message once: every recipient shares one read-only
		// interface value instead of re-boxing the struct per send.
		var boxed any = m
		for _, nb := range r.inRangeNeighbors(m) {
			r.env.Send(nb.ID, boxed)
		}
	}
}

// gossipRounds runs one gossip round now and schedules the remainder.
func (r *Router) gossipRounds(m MulticastMsg, remaining int) {
	if remaining <= 0 {
		return
	}
	if r.env.Online() {
		sent := r.gossipSent[m.ID]
		if sent == nil {
			sent = make(map[ids.NodeID]bool, m.Spec.Fanout*m.Spec.Rounds)
			r.gossipSent[m.ID] = sent
		}
		// Deterministic iteration through the in-range neighbor list,
		// skipping peers already gossiped to (paper §3.2.II).
		n := 0
		var boxed any = m
		for _, nb := range r.inRangeNeighbors(m) {
			if n >= m.Spec.Fanout {
				break
			}
			if sent[nb.ID] {
				continue
			}
			sent[nb.ID] = true
			r.env.Send(nb.ID, boxed)
			n++
		}
	}
	r.env.After(m.Spec.Period, func() { r.gossipRounds(m, remaining-1) })
}

// inRangeNeighbors returns this node's neighbors (dissemination flavor)
// whose cached availability lies inside the multicast target, ordered
// by the pair hash with this node. The order is deterministic per node
// (the paper's "deterministic iteration through the list") but
// uncorrelated across nodes — a globally shared order (say, sorted
// identifiers) would starve the nodes that sort last, since every
// gossiper would spend its fanout on the same prefix.
// The result lives in the router's dissemination scratch: it is only
// valid until the next inRangeNeighbors call, which is fine because
// flooding and gossip consume it synchronously.
func (r *Router) inRangeNeighbors(m MulticastMsg) []core.Neighbor {
	all := r.mem.Neighbors(m.Spec.Flavor)
	r.rangeNbs = r.rangeNbs[:0]
	r.rangeKeys = r.rangeKeys[:0]
	self := r.mem.Self()
	for _, nb := range all {
		if r.auditor != nil && r.auditor.Blocked(nb.ID) {
			continue
		}
		if m.Target.Contains(nb.Availability) {
			r.rangeNbs = append(r.rangeNbs, nb)
			var key float64
			if r.hashes != nil {
				key = r.hashes.Pair(self, nb.ID)
			} else {
				key = ids.PairHash(self, nb.ID)
			}
			r.rangeKeys = append(r.rangeKeys, key)
		}
	}
	r.byHash.keys = r.rangeKeys
	r.byHash.nbs = r.rangeNbs
	sort.Sort(&r.byHash)
	r.byHash.keys = nil
	r.byHash.nbs = nil
	return r.rangeNbs
}
