package ops

import (
	"math"
	"testing"
)

func TestThreshold(t *testing.T) {
	tgt, err := Threshold(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Lo != 0.9 || tgt.Hi != 1 {
		t.Errorf("Threshold(0.9) = %+v", tgt)
	}
	if _, err := Threshold(-0.1); err == nil {
		t.Error("want error for negative threshold")
	}
	if _, err := Threshold(1); err == nil {
		t.Error("want error for threshold 1")
	}
}

func TestRange(t *testing.T) {
	tgt, err := Range(0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Lo != 0.2 || tgt.Hi != 0.3 {
		t.Errorf("Range = %+v", tgt)
	}
	for _, bad := range [][2]float64{{-0.1, 0.5}, {0.5, 1.1}, {0.6, 0.4}} {
		if _, err := Range(bad[0], bad[1]); err == nil {
			t.Errorf("Range(%v,%v): want error", bad[0], bad[1])
		}
	}
}

func TestContains(t *testing.T) {
	tgt, _ := Range(0.2, 0.3)
	tests := []struct {
		av   float64
		want bool
	}{
		{0.2, true},
		{0.25, true},
		{0.3, true},
		{0.19, false},
		{0.31, false},
		{0, false},
		{1, false},
	}
	for _, tc := range tests {
		if got := tgt.Contains(tc.av); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.av, got, tc.want)
		}
	}
}

func TestDistance(t *testing.T) {
	tgt, _ := Range(0.4, 0.6)
	tests := []struct {
		av   float64
		want float64
	}{
		{0.5, 0},
		{0.4, 0},
		{0.6, 0},
		{0.3, 0.1},
		{0.9, 0.3},
		{0, 0.4},
	}
	for _, tc := range tests {
		if got := tgt.Distance(tc.av); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Distance(%v) = %v, want %v", tc.av, got, tc.want)
		}
	}
}

func TestTargetString(t *testing.T) {
	thr, _ := Threshold(0.9)
	if thr.String() != "av>0.90" {
		t.Errorf("threshold String = %q", thr.String())
	}
	rng, _ := Range(0.85, 0.95)
	if rng.String() != "[0.85,0.95]" {
		t.Errorf("range String = %q", rng.String())
	}
}

func TestTargetValidate(t *testing.T) {
	if err := (Target{Lo: 0.2, Hi: 0.1}).Validate(); err == nil {
		t.Error("want error for inverted target")
	}
	if err := (Target{Lo: math.NaN(), Hi: 0.5}).Validate(); err == nil {
		t.Error("want error for NaN")
	}
	if err := (Target{Lo: 0.1, Hi: 0.5}).Validate(); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
}

func TestWidth(t *testing.T) {
	tgt, _ := Range(0.2, 0.35)
	if got := tgt.Width(); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("Width = %v", got)
	}
}

func TestPolicyModeStrings(t *testing.T) {
	if Greedy.String() != "greedy" || RetriedGreedy.String() != "retried-greedy" || Annealing.String() != "simulated-annealing" {
		t.Error("policy strings wrong")
	}
	if Flood.String() != "flood" || Gossip.String() != "gossip" {
		t.Error("mode strings wrong")
	}
	if Policy(0).String() != "Policy(0)" || Mode(0).String() != "Mode(0)" {
		t.Error("unknown enum strings wrong")
	}
}

func TestMsgIDString(t *testing.T) {
	id := MsgID{Origin: "10.0.0.1:4000", Seq: 7}
	if id.String() != "10.0.0.1:4000#7" {
		t.Errorf("MsgID String = %q", id.String())
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeDelivered.String() != "delivered" ||
		OutcomeTTLExpired.String() != "ttl-expired" ||
		OutcomeRetryExpired.String() != "retry-expired" ||
		OutcomePending.String() != "pending" {
		t.Error("outcome strings wrong")
	}
}
