package shuffle

import (
	"sync"
	"testing"

	"avmem/internal/ids"
)

// agentNet runs a set of agents with synchronous message delivery —
// the minimal harness for exercising the request/reply protocol.
type agentNet struct {
	agents map[ids.NodeID]*Agent
}

func newAgentNet(t *testing.T, n, viewSize int) (*agentNet, []ids.NodeID) {
	t.Helper()
	net := &agentNet{agents: make(map[ids.NodeID]*Agent, n)}
	nodes := make([]ids.NodeID, n)
	for i := range nodes {
		nodes[i] = ids.Synthetic(i)
	}
	for i, id := range nodes {
		a, err := NewAgent(id, viewSize, 3, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		// Ring bootstrap.
		a.Seed([]ids.NodeID{nodes[(i+1)%n], nodes[(i+2)%n]})
		net.agents[id] = a
	}
	return net, nodes
}

// tick runs one shuffle round for id, delivering request and reply
// synchronously.
func (n *agentNet) tick(id ids.NodeID) {
	a := n.agents[id]
	peer, req, ok := a.Tick()
	if !ok {
		return
	}
	b, exists := n.agents[peer]
	if !exists {
		return // peer gone; request lost
	}
	reply := b.HandleRequest(id, req)
	a.HandleReply(peer, reply)
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(ids.Nil, 8, 3, 1); err == nil {
		t.Error("want error for nil self")
	}
	if _, err := NewAgent("a", 0, 3, 1); err == nil {
		t.Error("want error for zero view")
	}
	if _, err := NewAgent("a", 8, 0, 1); err == nil {
		t.Error("want error for zero shuffle len")
	}
	if _, err := NewAgent("a", 8, 9, 1); err == nil {
		t.Error("want error for shuffleLen > viewSize")
	}
	a, err := NewAgent("a", 8, 3, 0) // zero seed derives from identity
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("nil agent")
	}
}

func TestAgentSeedAndView(t *testing.T) {
	a, err := NewAgent("self", 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Seed([]ids.NodeID{"p1", "p2", "self", "", "p1"})
	v := a.View()
	if len(v) != 2 {
		t.Fatalf("view = %v, want [p1 p2]", v)
	}
	for _, id := range v {
		if id == "self" || id.IsNil() {
			t.Errorf("view contains %q", id)
		}
	}
}

func TestAgentViewBounded(t *testing.T) {
	a, err := NewAgent("self", 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]ids.NodeID, 10)
	for i := range peers {
		peers[i] = ids.Synthetic(i + 1)
	}
	a.Seed(peers)
	if got := len(a.View()); got > 3 {
		t.Errorf("view size %d exceeds bound 3", got)
	}
}

func TestAgentTickEmptyView(t *testing.T) {
	a, err := NewAgent("self", 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.Tick(); ok {
		t.Error("Tick on empty view returned ok")
	}
}

func TestAgentExchangeSpreadsEntries(t *testing.T) {
	const n = 30
	net, nodes := newAgentNet(t, n, 8)
	for round := 0; round < 60; round++ {
		for _, id := range nodes {
			net.tick(id)
		}
	}
	// Node 0 should have met far more peers than its 2 bootstrap seeds.
	distinct := make(map[ids.NodeID]bool)
	for round := 0; round < 30; round++ {
		for _, id := range net.agents[nodes[0]].View() {
			distinct[id] = true
		}
		for _, id := range nodes {
			net.tick(id)
		}
	}
	if len(distinct) < 10 {
		t.Errorf("node 0 saw only %d distinct peers", len(distinct))
	}
	// Invariants: no self, no duplicates, bounded.
	for _, id := range nodes {
		v := net.agents[id].View()
		if len(v) > 8 {
			t.Fatalf("view overflow: %d", len(v))
		}
		seen := map[ids.NodeID]bool{}
		for _, peer := range v {
			if peer == id {
				t.Fatalf("node %v has itself in view", id)
			}
			if seen[peer] {
				t.Fatalf("duplicate %v in %v's view", peer, id)
			}
			seen[peer] = true
		}
	}
}

func TestAgentSelfEntryPropagates(t *testing.T) {
	// After an exchange, the responder must know the initiator (the
	// fresh self-entry is the mechanism that spreads knowledge of new
	// nodes).
	a, err := NewAgent("a", 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAgent("b", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Seed([]ids.NodeID{"b"})
	peer, req, ok := a.Tick()
	if !ok || peer != "b" {
		t.Fatalf("Tick = (%v, %v)", peer, ok)
	}
	reply := b.HandleRequest("a", req)
	a.HandleReply("b", reply)
	found := false
	for _, id := range b.View() {
		if id == "a" {
			found = true
		}
	}
	if !found {
		t.Error("responder never learned the initiator")
	}
}

func TestAgentConcurrentSafety(t *testing.T) {
	a, err := NewAgent("self", 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]ids.NodeID, 32)
	for i := range peers {
		peers[i] = ids.Synthetic(i + 1)
	}
	a.Seed(peers)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch g % 4 {
				case 0:
					a.Tick()
				case 1:
					a.HandleRequest("x", Request{Entries: []Entry{{ID: ids.Synthetic(i)}}})
				case 2:
					a.HandleReply("y", Reply{Entries: []Entry{{ID: ids.Synthetic(i + 500)}}})
				default:
					a.View()
				}
			}
		}(g)
	}
	wg.Wait()
}
