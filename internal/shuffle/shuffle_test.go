package shuffle

import (
	"math/rand"
	"testing"

	"avmem/internal/ids"
)

func newCyclonForTest(t *testing.T, n, viewSize int) (*Cyclon, []ids.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	c, err := NewCyclon(viewSize, 3, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]ids.NodeID, n)
	for i := range nodes {
		nodes[i] = ids.Synthetic(i)
	}
	// Bootstrap: each node seeds with a few ring neighbors — a weakly
	// connected start the shuffle must randomize.
	for i, id := range nodes {
		seeds := []ids.NodeID{
			nodes[(i+1)%n],
			nodes[(i+2)%n],
			nodes[(i+n-1)%n],
		}
		c.Join(id, seeds)
	}
	return c, nodes
}

func TestNewCyclonValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewCyclon(0, 1, nil, rng); err == nil {
		t.Error("want error for zero view size")
	}
	if _, err := NewCyclon(8, 0, nil, rng); err == nil {
		t.Error("want error for zero shuffle len")
	}
	if _, err := NewCyclon(8, 9, nil, rng); err == nil {
		t.Error("want error for shuffleLen > viewSize")
	}
	if _, err := NewCyclon(8, 3, nil, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestJoinAndView(t *testing.T) {
	c, nodes := newCyclonForTest(t, 10, 5)
	v := c.View(nodes[0])
	if len(v) != 3 {
		t.Fatalf("initial view size = %d, want 3", len(v))
	}
	for _, id := range v {
		if id == nodes[0] {
			t.Error("view contains self")
		}
	}
	if got := c.View("unknown"); got != nil {
		t.Errorf("View(unknown) = %v, want nil", got)
	}
}

func TestViewBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := NewCyclon(4, 2, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := ids.Synthetic(0)
	seeds := make([]ids.NodeID, 20)
	for i := range seeds {
		seeds[i] = ids.Synthetic(i + 1)
	}
	c.Join(x, seeds)
	if got := len(c.View(x)); got > 4 {
		t.Errorf("view size = %d exceeds capacity 4", got)
	}
}

func TestJoinIgnoresSelfAndNil(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := NewCyclon(4, 2, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := ids.Synthetic(0)
	c.Join(x, []ids.NodeID{x, ids.Nil, ids.Synthetic(1)})
	v := c.View(x)
	if len(v) != 1 || v[0] != ids.Synthetic(1) {
		t.Errorf("view = %v, want only synthetic 1", v)
	}
}

func TestShuffleSpreadsEntries(t *testing.T) {
	const n = 60
	c, nodes := newCyclonForTest(t, n, 8)
	// Run many shuffle rounds.
	for round := 0; round < 80; round++ {
		for _, id := range nodes {
			c.Tick(id)
		}
	}
	// Every node should still have a healthy view, and the union of
	// distinct peers seen in node 0's view over additional rounds should
	// far exceed the initial 3 ring neighbors — evidence of mixing.
	distinct := make(map[ids.NodeID]bool)
	for round := 0; round < 40; round++ {
		for _, id := range c.View(nodes[0]) {
			distinct[id] = true
		}
		for _, id := range nodes {
			c.Tick(id)
		}
	}
	if len(distinct) < 15 {
		t.Errorf("node 0 saw only %d distinct peers; shuffle not mixing", len(distinct))
	}
	for _, id := range nodes {
		if got := len(c.View(id)); got == 0 {
			t.Errorf("node %v has empty view after shuffling", id)
		}
	}
}

func TestShuffleNoSelfNoDuplicates(t *testing.T) {
	c, nodes := newCyclonForTest(t, 30, 6)
	for round := 0; round < 60; round++ {
		for _, id := range nodes {
			c.Tick(id)
		}
		for _, id := range nodes {
			seen := make(map[ids.NodeID]bool)
			for _, peer := range c.View(id) {
				if peer == id {
					t.Fatalf("round %d: node %v has itself in view", round, id)
				}
				if seen[peer] {
					t.Fatalf("round %d: node %v has duplicate %v", round, id, peer)
				}
				seen[peer] = true
			}
		}
	}
}

func TestOfflineEntriesPersistButDoNotBlock(t *testing.T) {
	// The coarse view is weakly consistent: entries for offline nodes
	// are kept (they are what lets AVMEM discover low-availability
	// neighbors) but must not stall shuffling among online nodes.
	online := make(map[ids.NodeID]bool)
	rng := rand.New(rand.NewSource(5))
	c, err := NewCyclon(6, 3, func(id ids.NodeID) bool { return online[id] }, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]ids.NodeID, 12)
	for i := range nodes {
		nodes[i] = ids.Synthetic(i)
		online[nodes[i]] = true
	}
	for i, id := range nodes {
		c.Join(id, []ids.NodeID{nodes[(i+1)%12], nodes[(i+2)%12], nodes[(i+3)%12]})
	}
	for round := 0; round < 30; round++ {
		for _, id := range nodes {
			c.Tick(id)
		}
	}
	// Take half the nodes offline. Shuffling among the online half must
	// continue: their views keep evolving.
	for i := 6; i < 12; i++ {
		online[nodes[i]] = false
	}
	distinct := make(map[ids.NodeID]bool)
	for round := 0; round < 60; round++ {
		for _, id := range nodes[:6] {
			c.Tick(id)
		}
		for _, peer := range c.View(nodes[0]) {
			distinct[peer] = true
		}
	}
	if len(distinct) < 4 {
		t.Errorf("shuffling stalled: node 0 saw only %d distinct peers", len(distinct))
	}
	// Views must not be empty, and online nodes remain reachable.
	for _, id := range nodes[:6] {
		if len(c.View(id)) == 0 {
			t.Errorf("node %v view emptied", id)
		}
	}
}

func TestDepartedNodesRemoved(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := NewCyclon(6, 3, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := ids.Synthetic(0), ids.Synthetic(1), ids.Synthetic(2)
	c.Join(a, []ids.NodeID{b, d})
	c.Join(b, []ids.NodeID{a, d})
	c.Join(d, []ids.NodeID{a, b})
	c.Leave(d) // permanent departure
	for round := 0; round < 10; round++ {
		c.Tick(a)
		c.Tick(b)
	}
	for _, id := range []ids.NodeID{a, b} {
		for _, peer := range c.View(id) {
			if peer == d {
				t.Errorf("departed node %v still referenced by %v", d, id)
			}
		}
	}
}

func TestOfflineNodeTickNoop(t *testing.T) {
	online := map[ids.NodeID]bool{}
	rng := rand.New(rand.NewSource(5))
	c, err := NewCyclon(6, 3, func(id ids.NodeID) bool { return online[id] }, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := ids.Synthetic(0), ids.Synthetic(1)
	online[x], online[y] = false, true
	c.Join(x, []ids.NodeID{y})
	before := c.View(x)
	c.Tick(x) // x offline: no-op
	after := c.View(x)
	if len(before) != len(after) {
		t.Errorf("offline tick changed view: %v -> %v", before, after)
	}
	c.Tick("ghost") // unregistered: no-op, no panic
}

func TestLeave(t *testing.T) {
	c, nodes := newCyclonForTest(t, 5, 4)
	c.Leave(nodes[0])
	if got := c.View(nodes[0]); got != nil {
		t.Errorf("view after leave = %v", got)
	}
	if got := len(c.Nodes()); got != 4 {
		t.Errorf("Nodes len = %d, want 4", got)
	}
}

func TestNodesSorted(t *testing.T) {
	c, _ := newCyclonForTest(t, 10, 4)
	ns := c.Nodes()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Nodes not sorted: %v", ns)
		}
	}
}

func TestEventualDiscovery(t *testing.T) {
	// The black-box property AVMEM relies on: given enough rounds, node
	// y appears in node x's view at least once.
	const n = 40
	c, nodes := newCyclonForTest(t, n, 6)
	target := nodes[n-1]
	seen := false
	for round := 0; round < 400 && !seen; round++ {
		for _, id := range nodes {
			c.Tick(id)
		}
		for _, peer := range c.View(nodes[0]) {
			if peer == target {
				seen = true
				break
			}
		}
	}
	if !seen {
		t.Error("target never appeared in initiator's coarse view")
	}
}

func TestUniformSampler(t *testing.T) {
	nodes := make([]ids.NodeID, 50)
	for i := range nodes {
		nodes[i] = ids.Synthetic(i)
	}
	online := func(id ids.NodeID) bool { return id != nodes[1] }
	rng := rand.New(rand.NewSource(9))
	u, err := NewUniformSampler(10, func() []ids.NodeID { return nodes }, online, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := u.View(nodes[0])
	if len(v) != 10 {
		t.Fatalf("sample size = %d, want 10", len(v))
	}
	for _, id := range v {
		if id == nodes[0] {
			t.Error("sample contains querier")
		}
		if id == nodes[1] {
			t.Error("sample contains offline node")
		}
	}
	// Two samples should differ (fresh randomness).
	v2 := u.View(nodes[0])
	same := len(v) == len(v2)
	if same {
		for i := range v {
			if v[i] != v2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("two uniform samples identical; not reshuffling")
	}
}

func TestUniformSamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := func() []ids.NodeID { return nil }
	if _, err := NewUniformSampler(0, pop, nil, rng); err == nil {
		t.Error("want error for zero view size")
	}
	if _, err := NewUniformSampler(5, nil, nil, rng); err == nil {
		t.Error("want error for nil population")
	}
	if _, err := NewUniformSampler(5, pop, nil, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestUniformSamplerSmallPopulation(t *testing.T) {
	nodes := []ids.NodeID{ids.Synthetic(0), ids.Synthetic(1)}
	rng := rand.New(rand.NewSource(2))
	u, err := NewUniformSampler(10, func() []ids.NodeID { return nodes }, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := u.View(nodes[0])
	if len(v) != 1 || v[0] != nodes[1] {
		t.Errorf("sample = %v, want just the other node", v)
	}
}

// indexedCyclon builds a Cyclon whose liveness runs through UseIndex,
// with Join called either before or after UseIndex.
func indexedCyclon(t *testing.T, n int, joinFirst bool) (*Cyclon, []ids.NodeID, func(ids.NodeID) int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	c, err := NewCyclon(6, 3, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]ids.NodeID, n)
	index := map[ids.NodeID]int{}
	for i := range nodes {
		nodes[i] = ids.Synthetic(i)
		index[nodes[i]] = i
	}
	indexOf := func(id ids.NodeID) int {
		if i, ok := index[id]; ok {
			return i
		}
		return -1
	}
	join := func() {
		for i, id := range nodes {
			c.Join(id, []ids.NodeID{nodes[(i+1)%n], nodes[(i+2)%n]})
		}
	}
	use := func() { c.UseIndex(indexOf, func(int) bool { return true }) }
	if joinFirst {
		join()
		use()
	} else {
		use()
		join()
	}
	return c, nodes, indexOf
}

// TestUseIndexBackfillsExistingViews: the *Idx entry points must work
// regardless of Join/UseIndex order.
func TestUseIndexBackfillsExistingViews(t *testing.T) {
	for _, joinFirst := range []bool{true, false} {
		c, nodes, indexOf := indexedCyclon(t, 10, joinFirst)
		for _, id := range nodes {
			i := indexOf(id)
			if got, want := c.ViewLenIdx(i), c.ViewLen(id); got != want {
				t.Fatalf("joinFirst=%v: ViewLenIdx(%d)=%d, ViewLen=%d", joinFirst, i, got, want)
			}
		}
		before := c.ViewLen(nodes[0])
		c.TickIdx(indexOf(nodes[0]))
		if before == 0 || c.ViewLen(nodes[0]) == 0 {
			t.Fatalf("joinFirst=%v: TickIdx was a no-op on a joined view", joinFirst)
		}
	}
}

// TestLeaveClearsIndexTable: a departed node must be invisible through
// the index entry points too, and its entries must wash out of peers.
func TestLeaveClearsIndexTable(t *testing.T) {
	c, nodes, indexOf := indexedCyclon(t, 10, true)
	gone := nodes[3]
	i := indexOf(gone)
	c.Leave(gone)
	if got := c.ViewLenIdx(i); got != 0 {
		t.Errorf("ViewLenIdx after Leave = %d, want 0", got)
	}
	c.TickIdx(i) // must be a no-op, not a shuffle by a departed node
	if got := c.View(gone); got != nil {
		t.Errorf("view resurrected by TickIdx: %v", got)
	}
}

// TestMergeRejectsNeverJoinedStrays: entries for nodes that were seeded
// but never joined must not replicate through exchanges.
func TestMergeRejectsNeverJoinedStrays(t *testing.T) {
	c, nodes, _ := indexedCyclon(t, 10, true)
	stray := ids.Synthetic(999) // outside the index and never joined
	c.Join(nodes[0], []ids.NodeID{stray})
	for round := 0; round < 50; round++ {
		for _, id := range nodes {
			c.Tick(id)
		}
	}
	holders := 0
	for _, id := range nodes {
		for _, peer := range c.View(id) {
			if peer == stray {
				holders++
			}
		}
	}
	// The stray may linger in the view it was seeded into until age
	// pressure evicts it, but it must never spread beyond it.
	if holders > 1 {
		t.Errorf("never-joined stray replicated into %d views", holders)
	}
}
