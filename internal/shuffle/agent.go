package shuffle

import (
	"fmt"
	"math/rand"
	"sync"

	"avmem/internal/ids"
)

// Request is the initiator half of one CYCLON exchange: the entries the
// initiator offers (including a fresh self-entry).
type Request struct {
	Entries []Entry
	// SenderAvail is the initiator's claimed availability, stamped by
	// the owning node. Receivers' audit layers cross-check it against
	// the monitoring service; the agent itself ignores it.
	SenderAvail float64
}

// Reply is the responder half: the entries the responder offers back.
// An honest responder samples only from its view, which never contains
// itself — a reply advertising its own sender is therefore standalone
// evidence of view poisoning, and the audit layer treats it as such.
type Reply struct {
	Entries []Entry
	// SenderAvail is the responder's claimed availability (see
	// Request.SenderAvail).
	SenderAvail float64
}

// Agent is the live, message-based counterpart of Cyclon: one Agent
// runs inside each node and performs the age-based shuffle over a real
// transport. The owner wires it up by:
//
//   - calling Tick once per protocol period, sending the returned
//     request to the returned peer;
//   - feeding inbound requests to HandleRequest and sending the
//     returned reply back to the requester;
//   - feeding inbound replies to HandleReply.
//
// Agent is safe for concurrent use.
type Agent struct {
	self       ids.NodeID
	shuffleLen int

	mu      sync.Mutex
	rng     *rand.Rand
	entries []Entry
	cap     int
	// pending holds the entries sent in the last outstanding request,
	// so HandleReply can merge with the same no-duplicates rules.
	pending []Entry
}

// NewAgent creates a live shuffle agent for self.
func NewAgent(self ids.NodeID, viewSize, shuffleLen int, seed int64) (*Agent, error) {
	if self.IsNil() {
		return nil, fmt.Errorf("shuffle: agent needs an identity")
	}
	if viewSize <= 0 {
		return nil, fmt.Errorf("shuffle: viewSize must be positive, got %d", viewSize)
	}
	if shuffleLen <= 0 || shuffleLen > viewSize {
		return nil, fmt.Errorf("shuffle: shuffleLen must be in [1,%d], got %d", viewSize, shuffleLen)
	}
	if seed == 0 {
		seed = int64(ids.SelfHash(self) * (1 << 62))
	}
	return &Agent{
		self:       self,
		shuffleLen: shuffleLen,
		rng:        rand.New(rand.NewSource(seed)),
		entries:    make([]Entry, 0, viewSize),
		cap:        viewSize,
	}, nil
}

// Seed adds bootstrap peers to the view.
func (a *Agent) Seed(peers []ids.NodeID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range peers {
		a.addLocked(Entry{ID: p})
	}
}

// View returns the current coarse-view identifiers.
func (a *Agent) View() []ids.NodeID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ids.NodeID, len(a.entries))
	for i, e := range a.entries {
		out[i] = e.ID
	}
	return out
}

// Tick starts one shuffle round: it ages the view, picks the oldest
// peer, and returns the request to send to it. ok is false when the
// view is empty (nothing to shuffle with — re-Seed).
func (a *Agent) Tick() (peer ids.NodeID, req Request, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.entries) == 0 {
		return ids.Nil, Request{}, false
	}
	for i := range a.entries {
		a.entries[i].Age++
	}
	oldest := oldestIndex(a.entries)
	peer = a.entries[oldest].ID
	// Remove the partner's entry; it is replaced by whatever comes back.
	a.entries = append(a.entries[:oldest], a.entries[oldest+1:]...)

	out := a.sampleLocked(a.shuffleLen - 1)
	out = append(out, Entry{ID: a.self, Age: 0})
	a.pending = out
	return peer, Request{Entries: out}, true
}

// HandleRequest processes an inbound shuffle request and returns the
// reply to send back.
func (a *Agent) HandleRequest(from ids.NodeID, req Request) Reply {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.sampleLocked(a.shuffleLen)
	a.mergeLocked(req.Entries)
	return Reply{Entries: out}
}

// HandleReply folds a shuffle reply into the view.
func (a *Agent) HandleReply(from ids.NodeID, reply Reply) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mergeLocked(reply.Entries)
	a.pending = nil
}

// sampleLocked picks up to n distinct random entries. Caller holds mu.
func (a *Agent) sampleLocked(n int) []Entry {
	if n <= 0 || len(a.entries) == 0 {
		return nil
	}
	idx := a.rng.Perm(len(a.entries))
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]Entry, 0, n)
	for _, i := range idx[:n] {
		out = append(out, a.entries[i])
	}
	return out
}

// mergeLocked folds received entries in, skipping self and duplicates,
// evicting oldest entries under capacity pressure. Caller holds mu.
func (a *Agent) mergeLocked(received []Entry) {
	for _, e := range received {
		a.addLocked(e)
	}
}

func (a *Agent) addLocked(e Entry) {
	if e.ID == a.self || e.ID.IsNil() {
		return
	}
	for _, have := range a.entries {
		if have.ID == e.ID {
			return
		}
	}
	if len(a.entries) < a.cap {
		a.entries = append(a.entries, e)
		return
	}
	oldest := oldestIndex(a.entries)
	if a.entries[oldest].Age >= e.Age {
		a.entries[oldest] = e
	}
}
