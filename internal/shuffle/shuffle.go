// Package shuffle implements the decentralized shuffling partial
// membership service AVMEM consumes as a black box (paper §3.1): each
// node maintains a small random "coarse view" of other nodes whose
// contents are continuously shuffled, so that any long-lived node
// eventually appears in any other node's view (expected discovery time
// O(N/v) protocol periods for view size v).
//
// Two implementations are provided:
//
//   - Cyclon: the CYCLON-style age-based shuffle (Voulgaris et al.),
//     the faithful protocol with bounded views and pairwise exchanges.
//   - UniformSampler: an idealized service that returns a fresh uniform
//     sample of online nodes on every query — an upper bound useful for
//     tests and ablations.
package shuffle

import (
	"fmt"
	"math/rand"
	"sort"

	"avmem/internal/ids"
)

// Service yields the current coarse view of a node. AVMEM's discovery
// sub-protocol iterates these entries every protocol period.
type Service interface {
	// View returns the identifiers currently in x's coarse view. The
	// returned slice is owned by the caller.
	View(x ids.NodeID) []ids.NodeID
}

// Entry is one coarse-view slot: a peer and its CYCLON age.
type Entry struct {
	ID  ids.NodeID
	Age int
}

// View is one node's bounded coarse view. The zero value is unusable;
// create views through Cyclon.
type view struct {
	self    ids.NodeID
	cap     int
	entries []Entry
}

func (v *view) contains(id ids.NodeID) bool {
	for _, e := range v.entries {
		if e.ID == id {
			return true
		}
	}
	return false
}

// add inserts id with age 0 if absent, evicting the oldest entry when
// the view is full.
func (v *view) add(id ids.NodeID) {
	if id == v.self || id.IsNil() || v.contains(id) {
		return
	}
	if len(v.entries) < v.cap {
		v.entries = append(v.entries, Entry{ID: id})
		return
	}
	v.entries[oldestIndex(v.entries)] = Entry{ID: id}
}

// oldestIndex returns the index of the entry with the greatest age.
func oldestIndex(entries []Entry) int {
	oldest := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].Age > entries[oldest].Age {
			oldest = i
		}
	}
	return oldest
}

// Cyclon runs the age-based shuffling protocol across a set of nodes.
// It is driven explicitly: the simulation calls Tick(x) once per
// protocol period per online node; the live runtime does the same from
// its timer loop. Cyclon is not safe for concurrent use; wrap it if the
// caller is concurrent.
type Cyclon struct {
	viewSize   int
	shuffleLen int
	rng        *rand.Rand
	online     func(ids.NodeID) bool
	views      map[ids.NodeID]*view
}

var _ Service = (*Cyclon)(nil)

// NewCyclon creates the shuffling service. viewSize is the per-node
// coarse view bound v (the paper derives v ≈ √N as the sweet spot);
// shuffleLen is the number of entries exchanged per shuffle (must be
// <= viewSize); online reports current liveness (nil means always
// online); rng drives peer and subset selection.
func NewCyclon(viewSize, shuffleLen int, online func(ids.NodeID) bool, rng *rand.Rand) (*Cyclon, error) {
	if viewSize <= 0 {
		return nil, fmt.Errorf("shuffle: viewSize must be positive, got %d", viewSize)
	}
	if shuffleLen <= 0 || shuffleLen > viewSize {
		return nil, fmt.Errorf("shuffle: shuffleLen must be in [1,%d], got %d", viewSize, shuffleLen)
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	if rng == nil {
		return nil, fmt.Errorf("shuffle: rng must not be nil")
	}
	return &Cyclon{
		viewSize:   viewSize,
		shuffleLen: shuffleLen,
		rng:        rng,
		online:     online,
		views:      make(map[ids.NodeID]*view, 2048),
	}, nil
}

// Join registers x with an initial view drawn from seeds (typically a
// handful of random online nodes, the bootstrap-server story). Calling
// Join for an existing node re-seeds without clearing what remains.
func (c *Cyclon) Join(x ids.NodeID, seeds []ids.NodeID) {
	v := c.views[x]
	if v == nil {
		v = &view{self: x, cap: c.viewSize, entries: make([]Entry, 0, c.viewSize)}
		c.views[x] = v
	}
	for _, s := range seeds {
		v.add(s)
	}
}

// Leave removes x entirely (a permanent departure; churned-offline nodes
// should simply fail the online check instead).
func (c *Cyclon) Leave(x ids.NodeID) { delete(c.views, x) }

// View implements Service.
func (c *Cyclon) View(x ids.NodeID) []ids.NodeID {
	v := c.views[x]
	if v == nil {
		return nil
	}
	out := make([]ids.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.ID
	}
	return out
}

// ViewSize returns the configured per-node view bound.
func (c *Cyclon) ViewSize() int { return c.viewSize }

// Tick performs one CYCLON shuffle initiated by x: ages x's entries,
// picks the oldest *online* neighbor q, and exchanges up to shuffleLen
// entries with it.
//
// Entries for currently-offline nodes are deliberately kept: the coarse
// view is weakly consistent (paper §3.1 — it "may even contain stale
// entries"), and AVMEM's discovery depends on that. In a churned system
// most of the population is offline at any instant; if their entries
// washed out, low-availability nodes would never be discovered as
// neighbors. Stale entries are skipped as shuffle partners, age
// normally, and get evicted by merge pressure from fresher entries.
// Entries for permanently departed nodes (Leave) are discarded.
func (c *Cyclon) Tick(x ids.NodeID) {
	vx := c.views[x]
	if vx == nil || !c.online(x) {
		return
	}
	for i := range vx.entries {
		vx.entries[i].Age++
	}
	// Partner = the oldest entry whose node is online and registered.
	// Departed (unregistered) nodes are dropped as encountered.
	for {
		partner := -1
		for i, e := range vx.entries {
			if c.views[e.ID] == nil {
				// Permanently gone: remove and rescan.
				vx.entries = append(vx.entries[:i], vx.entries[i+1:]...)
				partner = -2
				break
			}
			if !c.online(e.ID) {
				continue
			}
			if partner < 0 || e.Age > vx.entries[partner].Age {
				partner = i
			}
		}
		if partner == -2 {
			continue // rescan after removal
		}
		if partner < 0 {
			return // no online partner this round
		}
		c.exchange(vx, c.views[vx.entries[partner].ID], partner)
		return
	}
}

// exchange swaps subsets between initiator vx (whose oldest entry sits
// at index qIdx and belongs to responder vq).
func (c *Cyclon) exchange(vx, vq *view, qIdx int) {
	// The initiator discards its entry for the responder and sends a
	// fresh self-entry plus up to shuffleLen-1 random others.
	vx.entries = append(vx.entries[:qIdx], vx.entries[qIdx+1:]...)
	outX := c.sampleEntries(vx, c.shuffleLen-1)
	outX = append(outX, Entry{ID: vx.self, Age: 0})

	outQ := c.sampleEntries(vq, c.shuffleLen)

	c.merge(vq, outX)
	c.merge(vx, outQ)
}

// sampleEntries picks up to n distinct random entries from v.
func (c *Cyclon) sampleEntries(v *view, n int) []Entry {
	if n <= 0 || len(v.entries) == 0 {
		return nil
	}
	idx := c.rng.Perm(len(v.entries))
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]Entry, 0, n)
	for _, i := range idx[:n] {
		out = append(out, v.entries[i])
	}
	return out
}

// merge folds received entries into v, skipping self, duplicates, and
// permanently departed nodes (without the last check, two nodes could
// ping-pong a departed entry between their views forever), evicting the
// oldest entries when over capacity.
func (c *Cyclon) merge(v *view, received []Entry) {
	for _, e := range received {
		if e.ID == v.self || e.ID.IsNil() || v.contains(e.ID) || c.views[e.ID] == nil {
			continue
		}
		if len(v.entries) < v.cap {
			v.entries = append(v.entries, e)
			continue
		}
		oldest := oldestIndex(v.entries)
		if v.entries[oldest].Age >= e.Age {
			v.entries[oldest] = e
		}
	}
}

// Nodes returns all registered node ids in deterministic order.
func (c *Cyclon) Nodes() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(c.views))
	for id := range c.views {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UniformSampler is the idealized shuffling service: every View call
// returns a fresh uniform sample (without replacement) of size up to
// viewSize drawn from the currently online population. It models a
// perfect shuffle and upper-bounds discovery speed.
type UniformSampler struct {
	viewSize int
	rng      *rand.Rand
	// Population enumerates candidate node ids; online filters them.
	population func() []ids.NodeID
	online     func(ids.NodeID) bool
}

var _ Service = (*UniformSampler)(nil)

// NewUniformSampler constructs the idealized service. population must
// not be nil; online nil means always online.
func NewUniformSampler(viewSize int, population func() []ids.NodeID, online func(ids.NodeID) bool, rng *rand.Rand) (*UniformSampler, error) {
	if viewSize <= 0 {
		return nil, fmt.Errorf("shuffle: viewSize must be positive, got %d", viewSize)
	}
	if population == nil {
		return nil, fmt.Errorf("shuffle: population must not be nil")
	}
	if rng == nil {
		return nil, fmt.Errorf("shuffle: rng must not be nil")
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	return &UniformSampler{viewSize: viewSize, rng: rng, population: population, online: online}, nil
}

// View implements Service.
func (u *UniformSampler) View(x ids.NodeID) []ids.NodeID {
	all := u.population()
	candidates := make([]ids.NodeID, 0, len(all))
	for _, id := range all {
		if id != x && u.online(id) {
			candidates = append(candidates, id)
		}
	}
	u.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > u.viewSize {
		candidates = candidates[:u.viewSize]
	}
	return candidates
}
