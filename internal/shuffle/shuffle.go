// Package shuffle implements the decentralized shuffling partial
// membership service AVMEM consumes as a black box (paper §3.1): each
// node maintains a small random "coarse view" of other nodes whose
// contents are continuously shuffled, so that any long-lived node
// eventually appears in any other node's view (expected discovery time
// O(N/v) protocol periods for view size v).
//
// Two implementations are provided:
//
//   - Cyclon: the CYCLON-style age-based shuffle (Voulgaris et al.),
//     the faithful protocol with bounded views and pairwise exchanges.
//   - UniformSampler: an idealized service that returns a fresh uniform
//     sample of online nodes on every query — an upper bound useful for
//     tests and ablations.
//
// Architecture: DESIGN.md §7 (monitoring and shuffling services).
package shuffle

import (
	"fmt"
	"math/rand"
	"sort"

	"avmem/internal/ids"
)

// Service yields the current coarse view of a node. AVMEM's discovery
// sub-protocol iterates these entries every protocol period.
type Service interface {
	// View returns the identifiers currently in x's coarse view. The
	// returned slice is owned by the caller.
	View(x ids.NodeID) []ids.NodeID
}

// Entry is one coarse-view slot: a peer and its CYCLON age.
type Entry struct {
	ID  ids.NodeID
	Age int
	// idx1 memoizes the peer's liveness index plus one (0 = unresolved)
	// once UseIndex is configured, so per-tick liveness checks on view
	// entries are array probes instead of string-map lookups. The memo
	// travels with the entry through exchanges.
	idx1 int32
}

// View is one node's bounded coarse view. The zero value is unusable;
// create views through Cyclon.
type view struct {
	self    ids.NodeID
	cap     int
	entries []Entry
	// idx1 memoizes self's liveness index plus one (0 = unresolved).
	idx1 int32
}

// entriesEqual reports whether two entries name the same node: an int32
// compare when both indexes are resolved, a string compare otherwise.
func entriesEqual(a, b *Entry) bool {
	if a.idx1 > 0 && b.idx1 > 0 {
		return a.idx1 == b.idx1
	}
	return a.ID == b.ID
}

func (v *view) contains(e *Entry) bool {
	for i := range v.entries {
		if entriesEqual(&v.entries[i], e) {
			return true
		}
	}
	return false
}

// isSelf reports whether e names the view's owner.
func (v *view) isSelf(e *Entry) bool {
	if v.idx1 > 0 && e.idx1 > 0 {
		return v.idx1 == e.idx1
	}
	return e.ID == v.self
}

// oldestIndex returns the index of the entry with the greatest age.
func oldestIndex(entries []Entry) int {
	oldest := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].Age > entries[oldest].Age {
			oldest = i
		}
	}
	return oldest
}

// Cyclon runs the age-based shuffling protocol across a set of nodes.
// It is driven explicitly: the simulation calls Tick(x) once per
// protocol period per online node; the live runtime does the same from
// its timer loop. Cyclon is not safe for concurrent use; wrap it if the
// caller is concurrent.
type Cyclon struct {
	viewSize   int
	shuffleLen int
	rng        *rand.Rand
	online     func(ids.NodeID) bool
	views      map[ids.NodeID]*view

	// Index fast path (UseIndex): liveness by dense index instead of by
	// NodeID, with per-view and per-entry index memoization and an
	// index-keyed view table for the *Idx entry points.
	indexOf    func(ids.NodeID) int
	onlineAt   func(i int) bool
	viewsByIdx []*view
	// leaves counts Leave calls. While zero — the whole lifetime of a
	// simulated deployment — the per-entry departed-node scan in Tick is
	// skipped (the partner's view resolution still catches strays).
	leaves int
	// Exchange scratch, reused across ticks: an index permutation for
	// partial Fisher–Yates sampling and the two offered-entry buffers.
	// merge copies entries out, so nothing retains these between calls.
	permScratch []int
	outX, outQ  []Entry
	// tap, when set, intercepts every exchange (adversary injection and
	// audit observation); nil is the zero-cost honest path.
	tap *Tap
}

// Tap intercepts the centrally simulated CYCLON exchanges, giving the
// simulation engine the same adversary-injection and audit seams the
// live runtime gets from real shuffle messages: Outbound is where a
// misbehaving owner rewrites its offer (and lies about its
// availability), Inbound is where the receiving party audits what it
// got, and Refuse models a free-rider ignoring exchange requests. All
// fields are optional; a nil Tap (the default) leaves exchanges
// untouched.
type Tap struct {
	// Outbound lets owner rewrite the entries it contributes to an
	// exchange and attach its availability claim, or drop its half of
	// the exchange entirely (a dropped request aborts the exchange like
	// an unanswered live request; a dropped reply leaves the initiator
	// empty-handed); reply marks the responder side. The returned slice
	// may alias the input. Delaying is not expressible here — the
	// central exchange is instantaneous; behaviors that delay live
	// traffic degrade to passthrough on this engine.
	Outbound func(owner ids.NodeID, reply bool, entries []Entry) (out []Entry, claim float64, drop bool)
	// Inbound observes the entries receiver obtained from its exchange
	// partner; returning false drops them (the receiver has audited the
	// sender out), which also cancels the rest of the exchange.
	Inbound func(receiver, sender ids.NodeID, reply bool, entries []Entry, claim float64) bool
	// Refuse reports whether owner ignores inbound exchange requests (a
	// free-rider); the initiator's offer then goes unanswered, exactly
	// like an ignored live request.
	Refuse func(owner ids.NodeID) bool
}

var _ Service = (*Cyclon)(nil)

// NewCyclon creates the shuffling service. viewSize is the per-node
// coarse view bound v (the paper derives v ≈ √N as the sweet spot);
// shuffleLen is the number of entries exchanged per shuffle (must be
// <= viewSize); online reports current liveness (nil means always
// online); rng drives peer and subset selection.
func NewCyclon(viewSize, shuffleLen int, online func(ids.NodeID) bool, rng *rand.Rand) (*Cyclon, error) {
	if viewSize <= 0 {
		return nil, fmt.Errorf("shuffle: viewSize must be positive, got %d", viewSize)
	}
	if shuffleLen <= 0 || shuffleLen > viewSize {
		return nil, fmt.Errorf("shuffle: shuffleLen must be in [1,%d], got %d", viewSize, shuffleLen)
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	if rng == nil {
		return nil, fmt.Errorf("shuffle: rng must not be nil")
	}
	return &Cyclon{
		viewSize:   viewSize,
		shuffleLen: shuffleLen,
		rng:        rng,
		online:     online,
		views:      make(map[ids.NodeID]*view, 2048),
	}, nil
}

// Join registers x with an initial view drawn from seeds (typically a
// handful of random online nodes, the bootstrap-server story). Calling
// Join for an existing node re-seeds without clearing what remains.
func (c *Cyclon) Join(x ids.NodeID, seeds []ids.NodeID) {
	v := c.views[x]
	if v == nil {
		v = &view{self: x, cap: c.viewSize, entries: make([]Entry, 0, c.viewSize)}
		c.views[x] = v
		if c.indexOf != nil {
			if i := c.indexOf(x); i >= 0 {
				v.idx1 = int32(i) + 1
				for len(c.viewsByIdx) <= i {
					c.viewsByIdx = append(c.viewsByIdx, nil)
				}
				c.viewsByIdx[i] = v
			} else {
				v.idx1 = -1
			}
		}
	}
	for _, s := range seeds {
		c.addEntry(v, Entry{ID: s})
	}
}

// resolveEntry memoizes e's liveness index (sentinel -1 = unknown).
func (c *Cyclon) resolveEntry(e *Entry) {
	if c.indexOf == nil || e.idx1 != 0 {
		return
	}
	if i := c.indexOf(e.ID); i >= 0 {
		e.idx1 = int32(i) + 1
	} else {
		e.idx1 = -1
	}
}

// addEntry inserts e if absent, evicting the oldest entry when the view
// is full.
func (c *Cyclon) addEntry(v *view, e Entry) {
	if e.ID.IsNil() {
		return
	}
	c.resolveEntry(&e)
	if v.isSelf(&e) || v.contains(&e) {
		return
	}
	if len(v.entries) < v.cap {
		v.entries = append(v.entries, e)
		return
	}
	v.entries[oldestIndex(v.entries)] = e
}

// Leave removes x entirely (a permanent departure; churned-offline nodes
// should simply fail the online check instead).
func (c *Cyclon) Leave(x ids.NodeID) {
	if v := c.views[x]; v != nil && v.idx1 > 0 && int(v.idx1-1) < len(c.viewsByIdx) {
		c.viewsByIdx[v.idx1-1] = nil
	}
	delete(c.views, x)
	c.leaves++
}

// UseIndex switches liveness checks to a dense index: a node is online
// iff onlineAt(indexOf(id)). Entries memoize their index on first
// resolution, so steady-state per-tick liveness checks are array probes.
// indexOf must return a stable non-negative index for every node the
// service will see (negative means unknown → treated offline). Views
// joined before the call are backfilled into the index table, so the
// *Idx entry points work regardless of Join/UseIndex order.
func (c *Cyclon) UseIndex(indexOf func(ids.NodeID) int, onlineAt func(i int) bool) {
	if indexOf == nil || onlineAt == nil {
		return
	}
	c.indexOf = indexOf
	c.onlineAt = onlineAt
	for x, v := range c.views {
		if v.idx1 != 0 {
			continue
		}
		if i := indexOf(x); i >= 0 {
			v.idx1 = int32(i) + 1
			for len(c.viewsByIdx) <= i {
				c.viewsByIdx = append(c.viewsByIdx, nil)
			}
			c.viewsByIdx[i] = v
		} else {
			v.idx1 = -1
		}
	}
}

// entryOnline reports liveness for a view entry, memoizing its index.
func (c *Cyclon) entryOnline(e *Entry) bool {
	if c.onlineAt == nil {
		return c.online(e.ID)
	}
	c.resolveEntry(e)
	if e.idx1 < 0 {
		return false
	}
	return c.onlineAt(int(e.idx1 - 1))
}

// viewOnline reports liveness for a view's owner, memoizing its index.
func (c *Cyclon) viewOnline(v *view) bool {
	if c.onlineAt == nil {
		return c.online(v.self)
	}
	if v.idx1 == 0 {
		if i := c.indexOf(v.self); i >= 0 {
			v.idx1 = int32(i) + 1
		} else {
			v.idx1 = -1
		}
	}
	if v.idx1 < 0 {
		return false
	}
	return c.onlineAt(int(v.idx1 - 1))
}

// View implements Service.
func (c *Cyclon) View(x ids.NodeID) []ids.NodeID {
	v := c.views[x]
	if v == nil {
		return nil
	}
	out := make([]ids.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.ID
	}
	return out
}

// ViewLen returns the current number of entries in x's coarse view
// without copying it.
func (c *Cyclon) ViewLen(x ids.NodeID) int {
	v := c.views[x]
	if v == nil {
		return 0
	}
	return len(v.entries)
}

// AppendView appends x's current coarse-view identifiers to dst and
// returns it — the allocation-free variant of View for callers that
// reuse a scratch buffer across nodes. The result aliases dst.
func (c *Cyclon) AppendView(dst []ids.NodeID, x ids.NodeID) []ids.NodeID {
	v := c.views[x]
	if v == nil {
		return dst
	}
	for _, e := range v.entries {
		dst = append(dst, e.ID)
	}
	return dst
}

// viewByIdx resolves a view through the index table (UseIndex + Join).
func (c *Cyclon) viewByIdx(i int) *view {
	if i < 0 || i >= len(c.viewsByIdx) {
		return nil
	}
	return c.viewsByIdx[i]
}

// ViewLenIdx is ViewLen keyed by liveness index — no map lookup.
func (c *Cyclon) ViewLenIdx(i int) int {
	v := c.viewByIdx(i)
	if v == nil {
		return 0
	}
	return len(v.entries)
}

// AppendViewIdx is AppendView keyed by liveness index — no map lookup.
func (c *Cyclon) AppendViewIdx(dst []ids.NodeID, i int) []ids.NodeID {
	v := c.viewByIdx(i)
	if v == nil {
		return dst
	}
	for j := range v.entries {
		dst = append(dst, v.entries[j].ID)
	}
	return dst
}

// AppendViewCand appends node i's view entries with their memoized
// liveness indexes (−1 = unknown) to the parallel dst/dstIdx buffers —
// the zero-lookup feed for core.Membership.DiscoverIdx. Entries are
// index-resolved in place, so steady state appends are pure copies.
func (c *Cyclon) AppendViewCand(dst []ids.NodeID, dstIdx []int32, i int) ([]ids.NodeID, []int32) {
	v := c.viewByIdx(i)
	if v == nil {
		return dst, dstIdx
	}
	for j := range v.entries {
		e := &v.entries[j]
		c.resolveEntry(e)
		dst = append(dst, e.ID)
		dstIdx = append(dstIdx, e.idx1-1)
	}
	return dst, dstIdx
}

// TickIdx is Tick keyed by liveness index — no map lookup for the
// initiator's own view.
func (c *Cyclon) TickIdx(i int) {
	if v := c.viewByIdx(i); v != nil {
		c.tick(v)
	}
}

// ViewSize returns the configured per-node view bound.
func (c *Cyclon) ViewSize() int { return c.viewSize }

// Tick performs one CYCLON shuffle initiated by x: ages x's entries,
// picks the oldest *online* neighbor q, and exchanges up to shuffleLen
// entries with it.
//
// Entries for currently-offline nodes are deliberately kept: the coarse
// view is weakly consistent (paper §3.1 — it "may even contain stale
// entries"), and AVMEM's discovery depends on that. In a churned system
// most of the population is offline at any instant; if their entries
// washed out, low-availability nodes would never be discovered as
// neighbors. Stale entries are skipped as shuffle partners, age
// normally, and get evicted by merge pressure from fresher entries.
// Entries for permanently departed nodes (Leave) are discarded.
func (c *Cyclon) Tick(x ids.NodeID) {
	vx := c.views[x]
	if vx == nil {
		return
	}
	c.tick(vx)
}

// tick is the shared body of Tick and TickIdx.
func (c *Cyclon) tick(vx *view) {
	if !c.viewOnline(vx) {
		return
	}
	for i := range vx.entries {
		vx.entries[i].Age++
	}
	// Partner = the oldest entry whose node is online and registered.
	// Departed (unregistered) nodes are dropped as encountered; while no
	// node has ever left, that scan is pure liveness probes.
	checkDeparted := c.leaves > 0
	for {
		partner := -1
		for i := range vx.entries {
			e := &vx.entries[i]
			if checkDeparted && c.views[e.ID] == nil {
				// Permanently gone: remove and rescan.
				vx.entries = append(vx.entries[:i], vx.entries[i+1:]...)
				partner = -2
				break
			}
			if !c.entryOnline(e) {
				continue
			}
			if partner < 0 || e.Age > vx.entries[partner].Age {
				partner = i
			}
		}
		if partner == -2 {
			continue // rescan after removal
		}
		if partner < 0 {
			return // no online partner this round
		}
		vq := c.views[vx.entries[partner].ID]
		if vq == nil {
			// Unregistered stray (seeded but never joined): drop, rescan.
			vx.entries = append(vx.entries[:partner], vx.entries[partner+1:]...)
			continue
		}
		c.exchange(vx, vq, partner)
		return
	}
}

// SetTap installs (or, with nil, removes) the exchange interceptor.
func (c *Cyclon) SetTap(t *Tap) { c.tap = t }

// exchange swaps subsets between initiator vx (whose oldest entry sits
// at index qIdx and belongs to responder vq).
func (c *Cyclon) exchange(vx, vq *view, qIdx int) {
	// The initiator discards its entry for the responder and sends a
	// fresh self-entry plus up to shuffleLen-1 random others.
	vx.entries = append(vx.entries[:qIdx], vx.entries[qIdx+1:]...)
	c.outX = c.sampleEntries(c.outX[:0], vx, c.shuffleLen-1)
	c.outX = append(c.outX, Entry{ID: vx.self, Age: 0, idx1: vx.idx1})

	c.outQ = c.sampleEntries(c.outQ[:0], vq, c.shuffleLen)

	if c.tap == nil {
		c.merge(vq, c.outX)
		c.merge(vx, c.outQ)
		return
	}
	// Request half: the initiator's offer crosses the tap; a dropping
	// initiator, a refusing responder, or a rejecting responder ends
	// the exchange with the initiator's entry for it already spent —
	// the cost an unanswered live request has.
	offerX, claimX, dropX := c.tapOutbound(vx.self, false, c.outX)
	if dropX {
		return
	}
	if c.tap.Refuse != nil && c.tap.Refuse(vq.self) {
		return
	}
	if !c.tapInbound(vq.self, vx.self, false, offerX, claimX) {
		return
	}
	c.merge(vq, offerX)
	// Reply half: a dropped reply leaves the initiator empty-handed.
	offerQ, claimQ, dropQ := c.tapOutbound(vq.self, true, c.outQ)
	if dropQ {
		return
	}
	if !c.tapInbound(vx.self, vq.self, true, offerQ, claimQ) {
		return
	}
	c.merge(vx, offerQ)
}

// tapOutbound runs the Outbound hook, defaulting to the honest offer.
func (c *Cyclon) tapOutbound(owner ids.NodeID, reply bool, entries []Entry) ([]Entry, float64, bool) {
	if c.tap.Outbound == nil {
		return entries, 0, false
	}
	return c.tap.Outbound(owner, reply, entries)
}

// tapInbound runs the Inbound hook, defaulting to acceptance.
func (c *Cyclon) tapInbound(receiver, sender ids.NodeID, reply bool, entries []Entry, claim float64) bool {
	if c.tap.Inbound == nil {
		return true
	}
	return c.tap.Inbound(receiver, sender, reply, entries, claim)
}

// sampleEntries appends up to n distinct random entries from v to dst
// via a partial Fisher–Yates over a reusable index scratch.
func (c *Cyclon) sampleEntries(dst []Entry, v *view, n int) []Entry {
	m := len(v.entries)
	if n > m {
		n = m
	}
	if n <= 0 {
		return dst
	}
	if cap(c.permScratch) < m {
		c.permScratch = make([]int, m)
	}
	idx := c.permScratch[:m]
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + c.rng.Intn(m-i)
		idx[i], idx[j] = idx[j], idx[i]
		dst = append(dst, v.entries[idx[i]])
	}
	return dst
}

// merge folds received entries into v, skipping self, duplicates, and
// entries for unregistered (departed or never-joined) nodes — without
// that check, two nodes could ping-pong a departed entry between their
// views forever. The check stays unconditional here: merge sees at most
// shuffleLen entries per exchange, unlike tick's full-view scan.
func (c *Cyclon) merge(v *view, received []Entry) {
	for i := range received {
		e := received[i]
		if e.ID.IsNil() {
			continue
		}
		c.resolveEntry(&e)
		if v.isSelf(&e) || v.contains(&e) {
			continue
		}
		if c.views[e.ID] == nil {
			continue
		}
		if len(v.entries) < v.cap {
			v.entries = append(v.entries, e)
			continue
		}
		oldest := oldestIndex(v.entries)
		if v.entries[oldest].Age >= e.Age {
			v.entries[oldest] = e
		}
	}
}

// Nodes returns all registered node ids in deterministic order.
func (c *Cyclon) Nodes() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(c.views))
	for id := range c.views {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UniformSampler is the idealized shuffling service: every View call
// returns a fresh uniform sample (without replacement) of size up to
// viewSize drawn from the currently online population. It models a
// perfect shuffle and upper-bounds discovery speed.
type UniformSampler struct {
	viewSize int
	rng      *rand.Rand
	// Population enumerates candidate node ids; online filters them.
	population func() []ids.NodeID
	online     func(ids.NodeID) bool
}

var _ Service = (*UniformSampler)(nil)

// NewUniformSampler constructs the idealized service. population must
// not be nil; online nil means always online.
func NewUniformSampler(viewSize int, population func() []ids.NodeID, online func(ids.NodeID) bool, rng *rand.Rand) (*UniformSampler, error) {
	if viewSize <= 0 {
		return nil, fmt.Errorf("shuffle: viewSize must be positive, got %d", viewSize)
	}
	if population == nil {
		return nil, fmt.Errorf("shuffle: population must not be nil")
	}
	if rng == nil {
		return nil, fmt.Errorf("shuffle: rng must not be nil")
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	return &UniformSampler{viewSize: viewSize, rng: rng, population: population, online: online}, nil
}

// View implements Service.
func (u *UniformSampler) View(x ids.NodeID) []ids.NodeID {
	all := u.population()
	candidates := make([]ids.NodeID, 0, len(all))
	for _, id := range all {
		if id != x && u.online(id) {
			candidates = append(candidates, id)
		}
	}
	u.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > u.viewSize {
		candidates = candidates[:u.viewSize]
	}
	return candidates
}
