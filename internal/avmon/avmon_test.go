package avmon

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"avmem/internal/ids"
	"avmem/internal/trace"
)

func buildTrace(t *testing.T) *trace.Trace {
	t.Helper()
	hosts := []ids.NodeID{ids.Synthetic(0), ids.Synthetic(1), ids.Synthetic(2)}
	tr, err := trace.New(hosts, 10, trace.DefaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0: up half the time; host 1: always up; host 2: never up.
	for e := 0; e < 10; e++ {
		tr.SetUp(0, e, e%2 == 0)
		tr.SetUp(1, e, true)
	}
	return tr
}

func TestOracleValidation(t *testing.T) {
	tr := buildTrace(t)
	if _, err := NewOracle(nil, func() time.Duration { return 0 }); err == nil {
		t.Error("want error for nil trace")
	}
	if _, err := NewOracle(tr, nil); err == nil {
		t.Error("want error for nil clock")
	}
}

func TestOracleSmoothedEstimates(t *testing.T) {
	tr := buildTrace(t)
	now := 9 * trace.DefaultEpoch // epoch 9: all 10 epochs counted
	o, err := NewOracle(tr, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	// Add-one estimator: (up+1)/(n+2).
	if v, ok := o.Availability(ids.Synthetic(0)); !ok || v != 6.0/12.0 {
		t.Errorf("host0 availability = (%v,%v), want (0.5,true)", v, ok)
	}
	if v, ok := o.Availability(ids.Synthetic(1)); !ok || v != 11.0/12.0 {
		t.Errorf("host1 availability = (%v,%v), want 11/12", v, ok)
	}
	if v, ok := o.Availability(ids.Synthetic(2)); !ok || v != 1.0/12.0 {
		t.Errorf("host2 availability = (%v,%v), want 1/12", v, ok)
	}
	// Always-on hosts never report exactly 1.0, and always-off never 0.
	if v, _ := o.Availability(ids.Synthetic(1)); v >= 1.0 {
		t.Errorf("always-on host reported %v, want < 1", v)
	}
	if v, _ := o.Availability(ids.Synthetic(2)); v <= 0 {
		t.Errorf("always-off host reported %v, want > 0", v)
	}
	if _, ok := o.Availability("stranger"); ok {
		t.Error("unknown host reported as known")
	}
}

func TestOracleTracksClock(t *testing.T) {
	tr := buildTrace(t)
	now := time.Duration(0)
	o, err := NewOracle(tr, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	// At epoch 0, host 0 has been up 1/1 epochs: smoothed 2/3.
	if v, _ := o.Availability(ids.Synthetic(0)); v != 2.0/3.0 {
		t.Errorf("epoch0 availability = %v, want 2/3", v)
	}
	now = 3 * trace.DefaultEpoch // epoch 3: up 2/4 → smoothed 3/6
	if v, _ := o.Availability(ids.Synthetic(0)); v != 0.5 {
		t.Errorf("epoch3 availability = %v, want 0.5", v)
	}
}

func TestOracleMemoWithinEpoch(t *testing.T) {
	tr := buildTrace(t)
	calls := 0
	now := func() time.Duration { calls++; return 0 }
	o, err := NewOracle(tr, now)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := o.Availability(ids.Synthetic(1))
	a2, _ := o.Availability(ids.Synthetic(1))
	if a1 != a2 {
		t.Errorf("memoized answers differ: %v %v", a1, a2)
	}
}

func TestNoisyValidation(t *testing.T) {
	tr := buildTrace(t)
	o, _ := NewOracle(tr, func() time.Duration { return 0 })
	rng := rand.New(rand.NewSource(1))
	clock := func() time.Duration { return 0 }
	if _, err := NewNoisy(nil, 0.1, time.Minute, clock, rng); err == nil {
		t.Error("want error for nil inner")
	}
	if _, err := NewNoisy(o, -0.1, time.Minute, clock, rng); err == nil {
		t.Error("want error for negative maxErr")
	}
	if _, err := NewNoisy(o, 1.5, time.Minute, clock, rng); err == nil {
		t.Error("want error for maxErr > 1")
	}
	if _, err := NewNoisy(o, 0.1, -time.Minute, clock, rng); err == nil {
		t.Error("want error for negative staleness")
	}
	if _, err := NewNoisy(o, 0.1, time.Minute, nil, rng); err == nil {
		t.Error("want error for nil clock")
	}
	if _, err := NewNoisy(o, 0.1, time.Minute, clock, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestNoisyBoundedError(t *testing.T) {
	inner := Static{ids.Synthetic(0): 0.5}
	rng := rand.New(rand.NewSource(2))
	n, err := NewNoisy(inner, 0.1, 0, func() time.Duration { return 0 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, ok := n.Availability(ids.Synthetic(0))
		if !ok {
			t.Fatal("target unknown")
		}
		if math.Abs(v-0.5) > 0.1+1e-12 {
			t.Fatalf("error exceeds bound: %v", v)
		}
	}
}

func TestNoisyStaleness(t *testing.T) {
	now := time.Duration(0)
	truth := Static{ids.Synthetic(0): 0.2}
	rng := rand.New(rand.NewSource(3))
	n, err := NewNoisy(truth, 0, 20*time.Minute, func() time.Duration { return now }, rng)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := n.Availability(ids.Synthetic(0))
	truth[ids.Synthetic(0)] = 0.9 // world changed
	v2, _ := n.Availability(ids.Synthetic(0))
	if v2 != v1 {
		t.Errorf("stale snapshot not served: %v != %v", v2, v1)
	}
	now = 21 * time.Minute // snapshot expired
	v3, _ := n.Availability(ids.Synthetic(0))
	if v3 != 0.9 {
		t.Errorf("expired snapshot not refreshed: %v", v3)
	}
}

func TestNoisyUnknownTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, err := NewNoisy(Static{}, 0.1, time.Minute, func() time.Duration { return 0 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Availability("ghost"); ok {
		t.Error("unknown target reported as known")
	}
}

func TestNoisyClamps(t *testing.T) {
	inner := Static{ids.Synthetic(0): 0.99, ids.Synthetic(1): 0.01}
	rng := rand.New(rand.NewSource(4))
	n, err := NewNoisy(inner, 0.3, 0, func() time.Duration { return 0 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v, _ := n.Availability(ids.Synthetic(0)); v < 0 || v > 1 {
			t.Fatalf("unclamped value %v", v)
		}
		if v, _ := n.Availability(ids.Synthetic(1)); v < 0 || v > 1 {
			t.Fatalf("unclamped value %v", v)
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := NewDistributed(nil, 4, nil, 0); err == nil {
		t.Error("want error for no hosts")
	}
	if _, err := NewDistributed([]ids.NodeID{"a"}, 0, nil, 0); err == nil {
		t.Error("want error for zero monitors")
	}
}

func TestDistributedMonitorRelationConsistent(t *testing.T) {
	hosts := make([]ids.NodeID, 100)
	for i := range hosts {
		hosts[i] = ids.Synthetic(i)
	}
	d1, err := NewDistributed(hosts, 8, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDistributed(hosts, 8, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		m1, m2 := d1.Monitors(h), d2.Monitors(h)
		if len(m1) != len(m2) {
			t.Fatalf("monitor sets differ for %v", h)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("monitor sets differ for %v", h)
			}
		}
	}
	// Mean monitor count should be near the requested expectation.
	total := 0
	for _, h := range hosts {
		total += len(d1.Monitors(h))
	}
	mean := float64(total) / float64(len(hosts))
	if mean < 4 || mean > 13 {
		t.Errorf("mean monitors per target = %v, want ≈8", mean)
	}
}

func TestDistributedEstimatesConverge(t *testing.T) {
	hosts := make([]ids.NodeID, 60)
	for i := range hosts {
		hosts[i] = ids.Synthetic(i)
	}
	// Host i is online on tick t iff (t+i)%4 != 0 → availability 0.75,
	// except host 0 which is always online.
	tick := 0
	online := func(id ids.NodeID) bool {
		for i, h := range hosts {
			if h == id {
				if i == 0 {
					return true
				}
				return (tick+i)%4 != 0
			}
		}
		return false
	}
	d, err := NewDistributed(hosts, 10, online, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tick = 1; tick <= 60; tick++ {
		d.TickAll()
	}
	v, ok := d.Availability(hosts[0])
	if !ok {
		t.Fatal("no estimate for always-on host")
	}
	if v != 1.0 {
		t.Errorf("always-on estimate = %v, want 1", v)
	}
	// A churned host should estimate near 0.75 (monitors are also
	// churning, so tolerance is loose).
	v5, ok := d.Availability(hosts[5])
	if !ok {
		t.Fatal("no estimate for host 5")
	}
	if math.Abs(v5-0.75) > 0.2 {
		t.Errorf("churned estimate = %v, want ≈0.75", v5)
	}
}

func TestDistributedUnknownAndCold(t *testing.T) {
	hosts := []ids.NodeID{ids.Synthetic(0), ids.Synthetic(1)}
	d, err := NewDistributed(hosts, 1, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Availability("ghost"); ok {
		t.Error("unknown target known")
	}
	// Before any pings there must be no estimate.
	if _, ok := d.Availability(hosts[0]); ok {
		t.Error("cold service returned an estimate")
	}
}

func TestStatic(t *testing.T) {
	s := Static{"a": 0.4}
	if v, ok := s.Availability("a"); !ok || v != 0.4 {
		t.Errorf("Static = (%v,%v)", v, ok)
	}
	if _, ok := s.Availability("b"); ok {
		t.Error("missing key reported present")
	}
}

func TestAgedOracleValidation(t *testing.T) {
	tr := buildTrace(t)
	clock := func() time.Duration { return 0 }
	if _, err := NewAgedOracle(nil, clock, 0.1); err == nil {
		t.Error("want error for nil trace")
	}
	if _, err := NewAgedOracle(tr, nil, 0.1); err == nil {
		t.Error("want error for nil clock")
	}
	if _, err := NewAgedOracle(tr, clock, 0); err == nil {
		t.Error("want error for alpha 0")
	}
	if _, err := NewAgedOracle(tr, clock, 1.5); err == nil {
		t.Error("want error for alpha > 1")
	}
}

func TestAgedOracleWeighsRecency(t *testing.T) {
	// Host 0 alternates (up on even epochs); at epoch 9 (odd, down),
	// the aged estimate should sit below the long-term 0.5; right after
	// an up epoch it should sit above.
	tr := buildTrace(t)
	now := 9 * trace.DefaultEpoch
	aged, err := NewAgedOracle(tr, func() time.Duration { return now }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	vDown, ok := aged.Availability(ids.Synthetic(0))
	if !ok {
		t.Fatal("unknown host")
	}
	now = 8 * trace.DefaultEpoch // epoch 8 is up
	vUp, _ := aged.Availability(ids.Synthetic(0))
	if !(vUp > 0.5 && vDown < 0.5) {
		t.Errorf("aged estimates do not track recency: up=%v down=%v", vUp, vDown)
	}
	if _, ok := aged.Availability("stranger"); ok {
		t.Error("unknown host reported as known")
	}
}
