// Package avmon provides the availability monitoring service AVMEM
// consumes as a black box (paper §3.1): a service that can be queried
// for the long-term availability of any node, returning answers that
// are "reasonably accurate and reasonably consistent over time".
//
// Three implementations cover the accuracy spectrum:
//
//   - Oracle: exact trace-derived availability — the idealized monitor.
//   - Noisy: wraps any Service with bounded error and staleness, the
//     knob behind the paper's attack analysis (Figures 5–6 study how
//     inaccurate and cached availability information affects predicate
//     verification).
//   - Distributed: an AVMON-style monitoring overlay in which each node
//     is watched by a consistent, hash-selected set of monitors that
//     ping it periodically; queries aggregate the monitors' empirical
//     estimates. This is the deployable story (Morales & Gupta,
//     ICDCS 2007) and converges to the oracle as pings accumulate.
//
// Architecture: DESIGN.md §7 (monitoring and shuffling services).
package avmon

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"avmem/internal/ids"
	"avmem/internal/trace"
)

// Service answers availability queries. Implementations must be cheap
// to query: the discovery sub-protocol calls this once per coarse-view
// entry per protocol period.
type Service interface {
	// Availability returns the long-term availability of target in
	// [0,1], and whether the service knows the target at all.
	Availability(target ids.NodeID) (float64, bool)
}

// IndexedService is a Service that additionally answers by dense host
// index, skipping the identifier lookup — the fast path discovery uses
// when candidates already carry their index.
type IndexedService interface {
	Service
	// AvailabilityIdx is Availability for the host at index h in the
	// service's universe (the churn trace's host order).
	AvailabilityIdx(h int) (float64, bool)
}

// Oracle reports long-term availability computed from the churn trace
// at the current virtual time, using the add-one smoothed estimator
// (up+1)/(n+2): the value an ideal monitoring service would report. It
// converges to the raw uptime fraction as observations accumulate while
// avoiding the degenerate 0.0/1.0 reports of young histories.
type Oracle struct {
	tr  *trace.Trace
	now func() time.Duration
	// avail[h] memoizes per-host availability for the current epoch.
	epoch int
	memo  []float64
	valid []bool
}

var _ Service = (*Oracle)(nil)

// NewOracle builds an oracle over tr; now supplies the current virtual
// time (e.g. sim.World.Now).
func NewOracle(tr *trace.Trace, now func() time.Duration) (*Oracle, error) {
	if tr == nil {
		return nil, fmt.Errorf("avmon: nil trace")
	}
	if now == nil {
		return nil, fmt.Errorf("avmon: nil clock")
	}
	return &Oracle{
		tr:    tr,
		now:   now,
		epoch: -1,
		memo:  make([]float64, tr.Hosts()),
		valid: make([]bool, tr.Hosts()),
	}, nil
}

// Availability implements Service.
func (o *Oracle) Availability(target ids.NodeID) (float64, bool) {
	h := o.tr.HostIndex(target)
	if h < 0 {
		return 0, false
	}
	return o.AvailabilityIdx(h)
}

// AvailabilityIdx implements IndexedService: the oracle answer for the
// host at trace index h, with no identifier lookup.
func (o *Oracle) AvailabilityIdx(h int) (float64, bool) {
	if h < 0 || h >= len(o.valid) {
		return 0, false
	}
	e := o.tr.EpochAt(o.now())
	if e != o.epoch {
		o.epoch = e
		for i := range o.valid {
			o.valid[i] = false
		}
	}
	if !o.valid[h] {
		o.memo[h] = o.tr.SmoothedAvailability(h, e)
		o.valid[h] = true
	}
	return o.memo[h], true
}

var _ IndexedService = (*Oracle)(nil)

// Prefill materializes the oracle's memo for every host of the given
// epoch, so subsequent Availability/AvailabilityIdx calls for that
// epoch are pure reads. The thread-parallel deployment engine calls it
// from the window-start hook whenever the epoch changes: lanes then
// query the oracle concurrently without ever mutating it.
func (o *Oracle) Prefill(epoch int) {
	if epoch != o.epoch {
		o.epoch = epoch
		for i := range o.valid {
			o.valid[i] = false
		}
	}
	for h := range o.valid {
		if !o.valid[h] {
			o.memo[h] = o.tr.SmoothedAvailability(h, epoch)
			o.valid[h] = true
		}
	}
}

// Noisy wraps a Service with bounded symmetric error and snapshot
// staleness: a queried value is sampled from the inner service at most
// once per staleness window and perturbed by a uniform error in
// [−maxErr, +maxErr] that is fixed for the lifetime of the snapshot
// (consistently wrong, not white noise — matching how a monitoring
// overlay misestimates).
type Noisy struct {
	inner     Service
	maxErr    float64
	staleness time.Duration
	now       func() time.Duration
	rng       *rand.Rand
	snaps     map[ids.NodeID]noisySnap
}

type noisySnap struct {
	value float64
	taken time.Duration
}

var _ Service = (*Noisy)(nil)

// NewNoisy wraps inner. maxErr is the error half-width in availability
// units; staleness is how long a snapshot is served before resampling
// (0 means always fresh); now supplies virtual time; rng drives error
// draws.
func NewNoisy(inner Service, maxErr float64, staleness time.Duration, now func() time.Duration, rng *rand.Rand) (*Noisy, error) {
	if inner == nil {
		return nil, fmt.Errorf("avmon: nil inner service")
	}
	if maxErr < 0 || maxErr > 1 {
		return nil, fmt.Errorf("avmon: maxErr must be in [0,1], got %v", maxErr)
	}
	if staleness < 0 {
		return nil, fmt.Errorf("avmon: negative staleness %v", staleness)
	}
	if now == nil {
		return nil, fmt.Errorf("avmon: nil clock")
	}
	if rng == nil {
		return nil, fmt.Errorf("avmon: nil rng")
	}
	return &Noisy{
		inner:     inner,
		maxErr:    maxErr,
		staleness: staleness,
		now:       now,
		rng:       rng,
		snaps:     make(map[ids.NodeID]noisySnap, 2048),
	}, nil
}

// Availability implements Service.
func (n *Noisy) Availability(target ids.NodeID) (float64, bool) {
	t := n.now()
	if snap, ok := n.snaps[target]; ok && n.staleness > 0 && t-snap.taken < n.staleness {
		return snap.value, true
	}
	v, ok := n.inner.Availability(target)
	if !ok {
		return 0, false
	}
	if n.maxErr > 0 {
		v += (2*n.rng.Float64() - 1) * n.maxErr
	}
	v = ids.Clamp01(v)
	n.snaps[target] = noisySnap{value: v, taken: t}
	return v, true
}

// Distributed is the AVMON-style monitoring overlay. Each target t is
// monitored by every node m with PairHash(m, t) <= monitorFrac — a
// consistent, verifiable relation exactly analogous to the AVMEM
// predicate itself. Online monitors ping their targets every ping
// period; a target's availability estimate is the fraction of pings it
// answered, and queries return the median estimate across its monitors.
//
// State is index-based: the monitor relation and every (monitor, target)
// ping counter live in flat slices keyed by host index, so a ping round
// is a deterministic sweep of array reads — no map traffic, no
// per-edge allocation — and liveness can be probed through an
// index-based fast path (UseIndexedLiveness).
type Distributed struct {
	hosts    []ids.NodeID
	idx      map[ids.NodeID]int32
	online   func(ids.NodeID) bool
	onlineAt func(i int) bool // nil → fall back to online(hosts[i])
	// monitorsOf[t] lists the monitor indexes of target t; the ping
	// counters of target t's k-th monitor live at edgeOff[t]+k.
	monitorsOf [][]int32
	edgeOff    []int
	sent, acks []int32
	minPings   int
	scratch    []float64 // estimate buffer reused across queries
}

var _ Service = (*Distributed)(nil)

// NewDistributed builds the monitoring overlay over the given host
// population. expectedMonitors sets the mean number of monitors per
// target (the paper's AVMON uses a small constant); online reports
// liveness (nil means always online); minPings is how many pings a
// monitor needs before its estimate counts (<= 0 defaults to 3).
func NewDistributed(hosts []ids.NodeID, expectedMonitors float64, online func(ids.NodeID) bool, minPings int) (*Distributed, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("avmon: no hosts")
	}
	if expectedMonitors <= 0 {
		return nil, fmt.Errorf("avmon: expectedMonitors must be positive, got %v", expectedMonitors)
	}
	if online == nil {
		online = func(ids.NodeID) bool { return true }
	}
	if minPings <= 0 {
		minPings = 3
	}
	frac := expectedMonitors / float64(len(hosts))
	if frac > 1 {
		frac = 1
	}
	d := &Distributed{
		hosts:      append([]ids.NodeID(nil), hosts...),
		idx:        make(map[ids.NodeID]int32, len(hosts)),
		online:     online,
		monitorsOf: make([][]int32, len(hosts)),
		edgeOff:    make([]int, len(hosts)+1),
		minPings:   minPings,
	}
	for i, h := range d.hosts {
		d.idx[h] = int32(i)
	}
	// The monitor relation is consistent: it depends only on identifier
	// hashes, so any third party could verify who monitors whom.
	edges := 0
	for t, target := range d.hosts {
		d.edgeOff[t] = edges
		for m, monitor := range d.hosts {
			if m == t {
				continue
			}
			if ids.PairHash(monitor, target) <= frac {
				d.monitorsOf[t] = append(d.monitorsOf[t], int32(m))
				edges++
			}
		}
	}
	d.edgeOff[len(d.hosts)] = edges
	d.sent = make([]int32, edges)
	d.acks = make([]int32, edges)
	return d, nil
}

// UseIndexedLiveness switches liveness probes to host indexes: host i
// (in the order of the hosts slice given to NewDistributed) is online
// iff onlineAt(i). Ping rounds then run entirely on array reads.
func (d *Distributed) UseIndexedLiveness(onlineAt func(i int) bool) {
	d.onlineAt = onlineAt
}

// up reports liveness of host index i through the fast path when bound.
func (d *Distributed) up(i int32) bool {
	if d.onlineAt != nil {
		return d.onlineAt(int(i))
	}
	return d.online(d.hosts[i])
}

// Monitors returns the consistent monitor set of target in deterministic
// (host-index) order; nil for an unknown target.
func (d *Distributed) Monitors(target ids.NodeID) []ids.NodeID {
	t, ok := d.idx[target]
	if !ok {
		return nil
	}
	ms := d.monitorsOf[t]
	out := make([]ids.NodeID, len(ms))
	for i, m := range ms {
		out[i] = d.hosts[m]
	}
	return out
}

// TickAll performs one ping round: every online monitor pings each of
// its targets and records whether the target answered. Call this once
// per ping period from the simulation or runtime driver; one call
// covers the whole population (the monitoring overlay's cohort tick).
func (d *Distributed) TickAll() {
	for t := range d.hosts {
		monitors := d.monitorsOf[t]
		if len(monitors) == 0 {
			continue
		}
		targetUp := d.up(int32(t))
		off := d.edgeOff[t]
		for k, m := range monitors {
			if !d.up(m) {
				continue
			}
			e := off + k
			d.sent[e]++
			if targetUp {
				d.acks[e]++
			}
		}
	}
}

// Availability implements Service: the median of the per-monitor
// empirical estimates with at least minPings observations.
func (d *Distributed) Availability(target ids.NodeID) (float64, bool) {
	t, ok := d.idx[target]
	if !ok {
		return 0, false
	}
	ests := d.scratch[:0]
	off := d.edgeOff[t]
	for k := range d.monitorsOf[t] {
		e := off + k
		if int(d.sent[e]) < d.minPings {
			continue
		}
		ests = append(ests, float64(d.acks[e])/float64(d.sent[e]))
	}
	d.scratch = ests[:0]
	if len(ests) == 0 {
		return 0, false
	}
	sort.Float64s(ests)
	mid := len(ests) / 2
	if len(ests)%2 == 1 {
		return ests[mid], true
	}
	return (ests[mid-1] + ests[mid]) / 2, true
}

// Static is a fixed map-backed Service, convenient for unit tests and
// for bootstrapping live deployments from a crawler dump.
type Static map[ids.NodeID]float64

var _ Service = Static(nil)

// Availability implements Service.
func (s Static) Availability(target ids.NodeID) (float64, bool) {
	v, ok := s[target]
	return v, ok
}

// AgedOracle reports exponentially aged availability from the churn
// trace: recent behaviour weighs more than distant history (the "aged"
// variant of §3.1). Alpha in (0,1] is the per-epoch weight of the most
// recent observation; small alpha approaches the long-term estimator,
// large alpha tracks recent sessions.
type AgedOracle struct {
	tr    *trace.Trace
	now   func() time.Duration
	alpha float64
}

var _ Service = (*AgedOracle)(nil)

// NewAgedOracle builds the aged-availability oracle.
func NewAgedOracle(tr *trace.Trace, now func() time.Duration, alpha float64) (*AgedOracle, error) {
	if tr == nil {
		return nil, fmt.Errorf("avmon: nil trace")
	}
	if now == nil {
		return nil, fmt.Errorf("avmon: nil clock")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("avmon: alpha must be in (0,1], got %v", alpha)
	}
	return &AgedOracle{tr: tr, now: now, alpha: alpha}, nil
}

// Availability implements Service.
func (o *AgedOracle) Availability(target ids.NodeID) (float64, bool) {
	h := o.tr.HostIndex(target)
	if h < 0 {
		return 0, false
	}
	return o.tr.AgedAvailability(h, o.tr.EpochAt(o.now()), o.alpha), true
}
