// Package scenario is the declarative scenario engine: a JSON scenario
// spec describes a fleet (hosts, churn trace, predicate parameters), a
// timed event sequence (churn bursts, selfish-node attack probes,
// monitor-noise ramps, anycast/multicast workload batches), and a set
// of assertions over the metrics the run produces (delivery rate,
// multicast reliability, spam, sliver-size bounds). The engine builds a
// deployment with the internal/exp engine, fires the events in order on
// the virtual clock, and evaluates the assertions — turning the fixed
// figure-regeneration harness into "any scenario you can describe".
//
// cmd/avmemsim exposes it as `avmemsim run <scenario.json>` and
// `avmemsim validate <scenario.json>`; checked-in examples live under
// scenarios/.
//
// Architecture: DESIGN.md §9 (deployment engines and the scenario
// layer); the README carries a spec cheat sheet.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"avmem/internal/adversary"
	"avmem/internal/agg"
	"avmem/internal/audit"
	"avmem/internal/avdist"
	"avmem/internal/core"
	"avmem/internal/exp"
	"avmem/internal/ops"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("90s", "20m", "8h") so scenario files stay readable.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf(`durations are strings like "20m": %w`, err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Spec is one complete declarative scenario.
type Spec struct {
	// Name identifies the scenario in reports.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed drives all randomness (trace, latencies, initiator picks).
	Seed int64 `json:"seed"`
	// Fleet describes the deployment under test.
	Fleet Fleet `json:"fleet"`
	// Adversaries optionally makes a fraction of the fleet misbehave
	// (Byzantine behaviors injected under the Runtime/Env contract).
	Adversaries *AdversariesSpec `json:"adversaries,omitempty"`
	// Warmup runs before the first event (the paper warms up 24h).
	Warmup Duration `json:"warmup"`
	// Events fire in order at virtual times relative to warmup end.
	Events []Event `json:"events"`
	// Assertions are evaluated after the last event.
	Assertions []Assertion `json:"assertions"`
}

// Fleet describes the deployment: population, churn, predicate, and
// defense parameters. Zero values take the engine defaults.
type Fleet struct {
	// Hosts is the population size (default 1442, the Overnet trace).
	Hosts int `json:"hosts"`
	// Days is the churn-trace length (default 7).
	Days float64 `json:"days,omitempty"`
	// Trace optionally loads an archived avmem-trace file instead of
	// synthesizing one (Hosts/Days are then ignored).
	Trace string `json:"trace,omitempty"`
	// Availability selects the long-term availability distribution the
	// synthesized churn trace draws hosts from: "overnet" (default),
	// "uniform", or "bimodal" (a Grid-like two-population shape).
	// Ignored when Trace is set.
	Availability string `json:"availability,omitempty"`
	// Epsilon, C1, C2 are the predicate parameters (defaults 0.1, 3, 3).
	Epsilon float64 `json:"epsilon,omitempty"`
	C1      float64 `json:"c1,omitempty"`
	C2      float64 `json:"c2,omitempty"`
	// ViewSize is the coarse-view bound v (default √N).
	ViewSize int `json:"view_size,omitempty"`
	// ProtocolPeriod is the discovery/shuffle period (default 1m).
	ProtocolPeriod Duration `json:"protocol_period,omitempty"`
	// RefreshPeriod is the refresh sub-protocol period (default 20m).
	RefreshPeriod Duration `json:"refresh_period,omitempty"`
	// VerifyInbound makes every node verify message senders (§4.1).
	VerifyInbound bool `json:"verify_inbound,omitempty"`
	// Cushion is the verification cushion (paper: 0 or 0.1).
	Cushion float64 `json:"cushion,omitempty"`
	// MonitorError/MonitorStaleness start the run with a degraded
	// monitor (monitor_noise events can change it later).
	MonitorError     float64  `json:"monitor_error,omitempty"`
	MonitorStaleness Duration `json:"monitor_staleness,omitempty"`
	// DistributedMonitor swaps the oracle for the AVMON-style overlay.
	DistributedMonitor bool `json:"distributed_monitor,omitempty"`
	// Audit enables the receiving-side audit layer on every node
	// (suspicion scores, hysteresis, blacklist/eviction). An empty
	// object takes the defaults.
	Audit *AuditSpec `json:"audit,omitempty"`
}

// AuditSpec tunes the audit layer (internal/audit). Zero fields take
// the audit defaults.
type AuditSpec struct {
	// ClaimTolerance is the allowed claimed-over-monitored availability
	// excess (default 0.25).
	ClaimTolerance float64 `json:"claim_tolerance,omitempty"`
	// ClaimWarmup suppresses claim evidence before this virtual time
	// (default 1h).
	ClaimWarmup Duration `json:"claim_warmup,omitempty"`
	// EvictThreshold is the suspicion score that evicts (default 3).
	EvictThreshold float64 `json:"evict_threshold,omitempty"`
	// HardWeight scores a provable violation (default: EvictThreshold —
	// hard evidence evicts at once).
	HardWeight float64 `json:"hard_weight,omitempty"`
	// SoftWeight scores a failed predicate recheck (default 0.2).
	SoftWeight float64 `json:"soft_weight,omitempty"`
	// Decay is subtracted per clean observation (default 0.05).
	Decay float64 `json:"decay,omitempty"`
	// RecheckCushion widens the predicate recheck (default 0.1).
	RecheckCushion float64 `json:"recheck_cushion,omitempty"`
}

// params maps the spec block to audit parameters.
func (a *AuditSpec) params() *audit.Params {
	if a == nil {
		return nil
	}
	return &audit.Params{
		ClaimTolerance: a.ClaimTolerance,
		ClaimWarmup:    a.ClaimWarmup.D(),
		EvictThreshold: a.EvictThreshold,
		HardWeight:     a.HardWeight,
		SoftWeight:     a.SoftWeight,
		Decay:          a.Decay,
		RecheckCushion: a.RecheckCushion,
	}
}

// AdversaryBehaviors enumerates the behavior names an adversaries block
// may mix, with a short description of each.
var AdversaryBehaviors = map[string]string{
	"inflate":           "lie about own availability in every membership/operation exchange (inflate_to)",
	"eclipse":           "poison coarse-view exchanges with the adversary cohort and self-entries",
	"selective-forward": "black-hole relayed operations with probability drop_rate, acknowledging receipt",
	"free-ride":         "ignore inbound shuffle requests (shirk membership duties)",
	"agg-lie":           "rewrite own aggregation partials/results to claim availability 100 for every contributor",
	"agg-mangle":        "corrupt relayed aggregation partials (scale the running sum tenfold)",
	"agg-forge":         "race every observed aggregation tree with a plausible forged result sent straight to the origin",
}

// AdversariesSpec describes the Byzantine cohort: how much of the
// population misbehaves, which availability band it is drawn from, and
// the behavior mix every member runs. Onset/offset are driven by
// adversary events.
type AdversariesSpec struct {
	// Fraction of the population that misbehaves, (0, 0.5].
	Fraction float64 `json:"fraction"`
	// BandLo/BandHi restrict cohort selection by long-term availability
	// (zero band_hi = no upper bound).
	BandLo float64 `json:"band_lo,omitempty"`
	BandHi float64 `json:"band_hi,omitempty"`
	// Behaviors is the mix (see AdversaryBehaviors).
	Behaviors []string `json:"behaviors"`
	// InflateTo is the claimed availability of the inflate behavior
	// (default 0.98).
	InflateTo float64 `json:"inflate_to,omitempty"`
	// DropRate is the selective-forward drop probability (default 0.5).
	DropRate float64 `json:"drop_rate,omitempty"`
	// ActiveAtStart arms the behaviors from the beginning (including
	// warmup); otherwise an adversary onset event activates them.
	ActiveAtStart bool `json:"active_at_start,omitempty"`
}

// config maps the spec block to the deployment engines' adversary
// configuration.
func (a *AdversariesSpec) config() *exp.AdversaryConfig {
	if a == nil {
		return nil
	}
	prof := adversary.Profile{}
	for _, b := range a.Behaviors {
		switch b {
		case "inflate":
			prof.InflateTo = a.InflateTo
			if prof.InflateTo == 0 {
				prof.InflateTo = 0.98
			}
		case "eclipse":
			prof.Eclipse = true
		case "selective-forward":
			prof.DropRate = a.DropRate
			if prof.DropRate == 0 {
				prof.DropRate = 0.5
			}
		case "free-ride":
			prof.FreeRide = true
		case "agg-lie":
			prof.AggLie = true
		case "agg-mangle":
			prof.AggMangle = true
		case "agg-forge":
			prof.AggForge = true
		}
	}
	return &exp.AdversaryConfig{
		Fraction:      a.Fraction,
		BandLo:        a.BandLo,
		BandHi:        a.BandHi,
		Profile:       prof,
		ActiveAtStart: a.ActiveAtStart,
	}
}

// Event is one timed action. Exactly one of the action fields is set.
type Event struct {
	// At is the earliest firing time, relative to warmup end. Events
	// fire in list order; an event whose At has already passed (because
	// an earlier batch consumed virtual time) fires immediately.
	At             Duration        `json:"at"`
	ChurnBurst     *ChurnBurst     `json:"churn_burst,omitempty"`
	Attack         *Attack         `json:"attack,omitempty"`
	MonitorNoise   *MonitorNoise   `json:"monitor_noise,omitempty"`
	AnycastBatch   *AnycastBatch   `json:"anycast_batch,omitempty"`
	MulticastBatch *MulticastBatch `json:"multicast_batch,omitempty"`
	Rangecast      *RangecastBatch `json:"rangecast,omitempty"`
	Aggregate      *AggregateBatch `json:"aggregate,omitempty"`
	Adversary      *AdversaryEvent `json:"adversary,omitempty"`
	BiasProbe      *BiasProbe      `json:"bias_probe,omitempty"`
}

// AdversaryEvent arms (onset) or disarms (offset) the Byzantine
// cohort's behaviors; requires an adversaries block.
type AdversaryEvent struct {
	Active bool `json:"active"`
}

// BiasProbe snapshots the adversary cohort's over-representation in
// honest nodes' coarse views and membership lists (the eclipse-success
// measure); the last probe's values become the overlay_bias and
// overlay_adversary_share metrics.
type BiasProbe struct{}

// ChurnBurst forces a fraction of the online population offline for a
// fixed duration — a correlated failure (power event, partition) on top
// of the trace's organic churn.
type ChurnBurst struct {
	// Fraction of the (band-filtered) online nodes to take down, (0,1].
	Fraction float64 `json:"fraction"`
	// Duration of the outage.
	Duration Duration `json:"duration"`
	// BandLo/BandHi optionally restrict the burst to nodes in an
	// availability band (both zero means everyone).
	BandLo float64 `json:"band_lo,omitempty"`
	BandHi float64 `json:"band_hi,omitempty"`
}

// Attack probes the §4.1 defense at the current instant: every online
// node plays the selfish flooder against non-neighbors, and every
// legitimate neighbor pair is re-verified, yielding the
// attack_accept_rate and legit_reject_rate metrics.
type Attack struct {
	// Cushion is the verification cushion used by the probe.
	Cushion float64 `json:"cushion"`
}

// MonitorNoise rewraps the monitoring service with a new error
// half-width and staleness from this point on (zero both restores the
// clean service) — a monitor-degradation ramp when used in stages.
type MonitorNoise struct {
	Error     float64  `json:"error"`
	Staleness Duration `json:"staleness"`
}

// AnycastBatch initiates Count anycasts from initiators in an
// availability band toward a target interval.
type AnycastBatch struct {
	Count int `json:"count"`
	// BandLo/BandHi bound the initiator's true availability.
	BandLo float64 `json:"band_lo"`
	BandHi float64 `json:"band_hi"`
	// TargetLo/TargetHi is the addressed availability interval.
	TargetLo float64 `json:"target_lo"`
	TargetHi float64 `json:"target_hi"`
	// Policy is greedy (default), retried-greedy, or annealing.
	Policy string `json:"policy,omitempty"`
	// Flavor is hsvs (default), hs, or vs.
	Flavor string `json:"flavor,omitempty"`
	// TTL defaults to the paper's 6.
	TTL int `json:"ttl,omitempty"`
	// Retry is the retried-greedy budget (required for that policy).
	Retry int `json:"retry,omitempty"`
	// Gap spaces initiations (default 2s); Settle drains in-flight
	// messages after the batch (default 30s).
	Gap    Duration `json:"gap,omitempty"`
	Settle Duration `json:"settle,omitempty"`
}

// MulticastBatch initiates Count multicasts from initiators in an
// availability band toward a target interval.
type MulticastBatch struct {
	Count    int     `json:"count"`
	BandLo   float64 `json:"band_lo"`
	BandHi   float64 `json:"band_hi"`
	TargetLo float64 `json:"target_lo"`
	TargetHi float64 `json:"target_hi"`
	// Mode is flood (default) or gossip.
	Mode string `json:"mode,omitempty"`
	// Flavor is hsvs (default), hs, or vs.
	Flavor string `json:"flavor,omitempty"`
	// Fanout/Rounds/Period parameterize gossip (defaults 5/2/1s).
	Fanout int      `json:"fanout,omitempty"`
	Rounds int      `json:"rounds,omitempty"`
	Period Duration `json:"period,omitempty"`
	Gap    Duration `json:"gap,omitempty"`
	Settle Duration `json:"settle,omitempty"`
}

// RangecastBatch initiates Count range-casts from initiators in an
// availability band: each delivers Payload to every node whose
// availability lies in the half-open band [target_lo, target_hi) — a
// target_hi of 1 closes the top end. An empty band (target_lo ==
// target_hi below 1) is legal and completes with zero coverage.
type RangecastBatch struct {
	Count int `json:"count"`
	// BandLo/BandHi bound the initiator's true availability.
	BandLo float64 `json:"band_lo"`
	BandHi float64 `json:"band_hi"`
	// TargetLo/TargetHi is the addressed half-open availability band.
	TargetLo float64 `json:"target_lo"`
	TargetHi float64 `json:"target_hi"`
	// Payload is the management payload delivered to every band member.
	Payload string `json:"payload,omitempty"`
	// Flavor is hsvs (default), hs, or vs.
	Flavor string `json:"flavor,omitempty"`
	// Gap spaces initiations (default 5s); Settle drains in-flight
	// messages after the batch (default 30s).
	Gap    Duration `json:"gap,omitempty"`
	Settle Duration `json:"settle,omitempty"`
}

// AggregateBatch initiates Count in-overlay aggregations from
// initiators in an availability band: each computes Op over the
// node-local values (availability claims) of every node in the
// half-open band [target_lo, target_hi), with per-hop partial
// combining on the way back to the initiator.
type AggregateBatch struct {
	Count int `json:"count"`
	// Op is count (default), sum, min, max, or avg.
	Op string `json:"op,omitempty"`
	// BandLo/BandHi bound the initiator's true availability.
	BandLo float64 `json:"band_lo"`
	BandHi float64 `json:"band_hi"`
	// TargetLo/TargetHi is the aggregated half-open availability band.
	TargetLo float64 `json:"target_lo"`
	TargetHi float64 `json:"target_hi"`
	// Flavor is hsvs (default), hs, or vs.
	Flavor string `json:"flavor,omitempty"`
	// Redundancy is the number of independent disjoint aggregation
	// trees per operation (0 or 1 = single tree; max 8). The origin
	// accepts the cross-tree median and reports disagreement as
	// agg_divergence.
	Redundancy int `json:"redundancy,omitempty"`
	// Gap spaces initiations (default 10s — past tree convergence);
	// Settle drains stragglers after the batch (default 30s).
	Gap    Duration `json:"gap,omitempty"`
	Settle Duration `json:"settle,omitempty"`
}

// Assertion bounds one metric of the finished run. At least one of
// Min/Max is set.
type Assertion struct {
	// Metric names one of the Metrics the engine produces.
	Metric string   `json:"metric"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// Metrics enumerates every metric name an assertion may reference,
// with a short description of how it is computed.
var Metrics = map[string]string{
	"anycast_delivery_rate":   "delivered fraction across all anycast batches",
	"anycast_drop_rate":       "fraction of anycasts lost inside the overlay (retry exhaustion or silent drop)",
	"anycast_mean_hops":       "mean hop count of delivered anycasts",
	"anycast_mean_latency_ms": "mean delivery latency of delivered anycasts (ms)",
	"anycast_p90_latency_ms":  "90th-percentile delivery latency of delivered anycasts (ms, reservoir estimate)",
	"multicast_reliability":   "mean delivered/eligible across all multicasts",
	"multicast_spam_ratio":    "mean out-of-range receptions per eligible node",
	"attack_accept_rate":      "worst per-probe fraction of non-neighbors accepting a selfish flood",
	"legit_reject_rate":       "worst per-probe fraction of legitimate neighbor messages rejected",
	"mean_sliver_size":        "mean total membership-list size across online nodes at run end",
	"max_sliver_size":         "largest total membership-list size across online nodes at run end",
	"mean_degree":             "alias of mean_sliver_size (kept for symmetry with the figure harness)",
	"online_fraction":         "fraction of the population online at run end",

	"rangecast_coverage":    "mean delivered/eligible across all range-casts",
	"rangecast_spam_ratio":  "mean out-of-band receptions per eligible node across all range-casts",
	"agg_accuracy":          "mean result-vs-ground-truth accuracy across all aggregations (1 = exact)",
	"agg_coverage":          "mean contributing fraction of the eligible in-band population",
	"agg_completion_rate":   "fraction of aggregations whose result reached the initiator",
	"agg_mean_hops":         "mean tree depth (hop radius) of completed aggregations",
	"agg_divergence":        "mean fraction of redundant trees disagreeing with the accepted (median) result",
	"agg_rejected_partials": "aggregation partials dropped by the PDF sanity checks across all batches",
	"agg_forgery_rejected":  "aggregation results refused by token/sender binding across all batches",
	"agg_forgery_accepted":  "unbound aggregation results accepted past the binding tripwire (should be 0)",

	"adversary_fraction":        "configured adversary cohort as a fraction of the population",
	"audit_eviction_rate":       "fraction of engaged adversaries (sent traffic while armed) evicted by at least one honest node",
	"audit_false_positive_rate": "fraction of honest nodes evicted by at least one honest node at run end",
	"audit_mean_detection_s":    "mean seconds from adversary onset to first honest eviction, over detected adversaries",
	"overlay_bias":              "last bias probe: adversary coarse-view share over population share (1 = unbiased)",
	"overlay_adversary_share":   "last bias probe: adversary share of honest nodes' coarse views",
}

// Load parses and validates a scenario spec from r. Unknown fields are
// rejected — a typo'd key fails `avmemsim validate` with the offending
// key and its line instead of silently running a different experiment.
func Load(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading spec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", locate(data, dec, err))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// locate pins a JSON decoding failure to a line and column. Type and
// syntax errors carry their own offsets; unknown-field rejections (the
// DisallowUnknownFields errors) carry only the key name in the error
// text, so the key itself is looked up in the source.
func locate(data []byte, dec *json.Decoder, err error) error {
	offset := dec.InputOffset()
	var typeErr *json.UnmarshalTypeError
	var synErr *json.SyntaxError
	switch {
	case errors.As(err, &typeErr):
		offset = typeErr.Offset
	case errors.As(err, &synErr):
		offset = synErr.Offset
	default:
		if key, ok := unknownFieldKey(err); ok {
			// The decoder has consumed input at least up to the offending
			// key, so the right occurrence is the last one before offset.
			if i := keyOffset(data[:offset], key); i >= 0 {
				offset = int64(i) + 1
			} else if i := keyOffset(data, key); i >= 0 {
				offset = int64(i) + 1
			}
		}
	}
	if offset <= 0 || offset > int64(len(data)) {
		return err
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("line %d:%d: %w", line, col, err)
}

// keyOffset finds the byte offset of the last `"key"` in data used as
// an object key — the quoted text followed by a colon — so neither an
// identical string *value* nor an earlier legitimate key of the same
// name wins. Falls back to the last quoted occurrence, then -1.
func keyOffset(data []byte, key string) int {
	quoted := []byte(`"` + key + `"`)
	lastKey, lastAny := -1, -1
	for from := 0; from < len(data); {
		i := bytes.Index(data[from:], quoted)
		if i < 0 {
			break
		}
		i += from
		lastAny = i
		rest := bytes.TrimLeft(data[i+len(quoted):], " \t\r\n")
		if len(rest) > 0 && rest[0] == ':' {
			lastKey = i
		}
		from = i + len(quoted)
	}
	if lastKey >= 0 {
		return lastKey
	}
	return lastAny
}

// unknownFieldKey extracts the key name from an encoding/json
// DisallowUnknownFields error ("json: unknown field \"...\"").
func unknownFieldKey(err error) (string, bool) {
	const prefix = `json: unknown field "`
	msg := err.Error()
	i := strings.Index(msg, prefix)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(prefix):]
	j := strings.LastIndex(rest, `"`)
	if j <= 0 {
		return "", false
	}
	return rest[:j], true
}

// LoadFileAll parses the scenario at path and returns every validation
// problem at once, each annotated with the source line of its key —
// the all-errors mode behind `avmemsim validate`. A file that cannot
// be read or decoded yields a single problem (decoding stops at the
// first malformed construct by nature); the spec is non-nil only when
// the file decoded.
func LoadFileAll(path string) (*Spec, []Problem) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, []Problem{{Msg: err.Error()}}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, []Problem{{Msg: fmt.Sprintf("parsing spec: %v", locate(data, dec, err))}}
	}
	ps := s.Problems()
	lines := keyLines(data)
	for i := range ps {
		ps[i].Line = lineForPath(lines, ps[i].Path)
	}
	return &s, ps
}

// lineForPath resolves a problem path to a source line, walking up the
// path (dropping trailing segments) until a key that exists in the
// file is found — a problem about a *missing* key is pinned to its
// nearest present ancestor.
func lineForPath(lines map[string]int, path string) int {
	for path != "" {
		if l, ok := lines[path]; ok {
			return l
		}
		i := strings.LastIndexAny(path, ".[")
		if i < 0 {
			return 0
		}
		path = path[:i]
	}
	return 0
}

// keyLines maps every object key's dotted path — and every array
// element's bracketed path — to its 1-based source line, by streaming
// the tokens once. Malformed input yields whatever prefix decoded.
func keyLines(data []byte) map[string]int {
	type frame struct {
		array     bool
		prefix    string
		index     int
		expectKey bool
		keyPath   string
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	offsets := make(map[string]int64, 64)
	var stack []frame
	childPrefix := func(t json.Delim) {
		stack = append(stack, frame{array: t == '[', expectKey: t == '{'})
	}
	complete := func() {
		if len(stack) == 0 {
			return
		}
		top := &stack[len(stack)-1]
		if top.array {
			top.index++
		} else {
			top.expectKey = true
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if len(stack) == 0 {
			if t, ok := tok.(json.Delim); ok && (t == '{' || t == '[') {
				childPrefix(t)
			}
			continue
		}
		top := &stack[len(stack)-1]
		if t, ok := tok.(json.Delim); ok {
			if t == '}' || t == ']' {
				stack = stack[:len(stack)-1]
				complete()
				continue
			}
			// A nested container begins: name it after its slot.
			prefix := top.keyPath
			if top.array {
				prefix = fmt.Sprintf("%s[%d]", top.prefix, top.index)
				offsets[prefix] = dec.InputOffset()
			}
			childPrefix(t)
			stack[len(stack)-1].prefix = prefix
			stack[len(stack)-1].keyPath = prefix
			continue
		}
		if top.array {
			complete()
			continue
		}
		if top.expectKey {
			key, _ := tok.(string)
			path := key
			if top.prefix != "" {
				path = top.prefix + "." + key
			}
			offsets[path] = dec.InputOffset()
			top.keyPath = path
			top.expectKey = false
			continue
		}
		complete()
	}
	lines := make(map[string]int, len(offsets))
	for path, off := range offsets {
		if off > int64(len(data)) {
			off = int64(len(data))
		}
		lines[path] = 1 + bytes.Count(data[:off], []byte{'\n'})
	}
	return lines
}

// LoadFile parses and validates the scenario spec at path.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Problem is one validation failure, pinned to the offending key.
type Problem struct {
	// Path is the dotted key path, e.g. "events[2].churn_burst.fraction".
	Path string
	// Msg describes the failure.
	Msg string
	// Line is the key's 1-based source line when known (LoadFileAll),
	// zero otherwise (e.g. a missing required key).
	Line int
}

// String renders "path: msg", with a leading "line N: " when located.
func (p Problem) String() string {
	s := p.Msg
	if p.Path != "" {
		s = p.Path + ": " + s
	}
	if p.Line > 0 {
		s = fmt.Sprintf("line %d: %s", p.Line, s)
	}
	return s
}

// problems accumulates validation failures.
type problems struct{ list []Problem }

func (ps *problems) add(path, format string, args ...any) {
	ps.list = append(ps.list, Problem{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Validate checks the spec is well formed and every referenced enum,
// target, and metric exists; the first failure is returned as an error.
// It does not build the world. Problems returns all failures at once.
func (s *Spec) Validate() error {
	if ps := s.Problems(); len(ps) > 0 {
		return fmt.Errorf("scenario: %s", ps[0])
	}
	return nil
}

// Problems checks the whole spec and returns every validation failure,
// each pinned to its key path — `avmemsim validate` reports them all
// instead of stopping at the first.
func (s *Spec) Problems() []Problem {
	ps := &problems{}
	if s.Name == "" {
		ps.add("name", "name is required")
	}
	if s.Fleet.Hosts < 0 || (s.Fleet.Trace == "" && s.Fleet.Hosts > 0 && s.Fleet.Hosts < 10) {
		ps.add("fleet.hosts", "must be 0 (default) or >= 10, got %d", s.Fleet.Hosts)
	}
	if s.Fleet.Days < 0 {
		ps.add("fleet.days", "must be non-negative, got %v", s.Fleet.Days)
	}
	if _, err := availabilityPDF(s.Fleet.Availability); err != nil {
		ps.add("fleet.availability", "%v", err)
	}
	s.Fleet.Audit.problems(ps)
	s.Adversaries.problems(ps)
	if s.Warmup < 0 {
		ps.add("warmup", "must be non-negative, got %v", s.Warmup.D())
	}
	if len(s.Events) == 0 {
		ps.add("events", "at least one event is required")
	}
	prev := Duration(0)
	for i := range s.Events {
		path := fmt.Sprintf("events[%d]", i)
		s.Events[i].problems(ps, path, s.Adversaries != nil)
		if s.Events[i].At < prev {
			ps.add(path+".at", "%v is before event %d's %v (events must be time-ordered)",
				s.Events[i].At.D(), i-1, prev.D())
		}
		prev = s.Events[i].At
	}
	for i, a := range s.Assertions {
		path := fmt.Sprintf("assertions[%d]", i)
		if _, ok := Metrics[a.Metric]; !ok {
			ps.add(path+".metric", "unknown metric %q", a.Metric)
			continue
		}
		if a.Min == nil && a.Max == nil {
			ps.add(path, "%s: needs min and/or max", a.Metric)
		}
		if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
			ps.add(path, "%s: min %v > max %v", a.Metric, *a.Min, *a.Max)
		}
	}
	return ps.list
}

func (a *AuditSpec) problems(ps *problems) {
	if a == nil {
		return
	}
	const path = "fleet.audit"
	if a.ClaimTolerance < 0 || a.ClaimTolerance > 1 {
		ps.add(path+".claim_tolerance", "must be in [0,1], got %v", a.ClaimTolerance)
	}
	if a.EvictThreshold < 0 {
		ps.add(path+".evict_threshold", "must be non-negative, got %v", a.EvictThreshold)
	}
	if a.HardWeight < 0 || a.SoftWeight < 0 || a.Decay < 0 {
		ps.add(path, "weights must be non-negative, got hard %v soft %v decay %v",
			a.HardWeight, a.SoftWeight, a.Decay)
	}
	if a.RecheckCushion < 0 || a.RecheckCushion > 1 {
		ps.add(path+".recheck_cushion", "must be in [0,1], got %v", a.RecheckCushion)
	}
}

func (a *AdversariesSpec) problems(ps *problems) {
	if a == nil {
		return
	}
	const path = "adversaries"
	if a.Fraction <= 0 || a.Fraction > 0.5 {
		ps.add(path+".fraction", "must be in (0,0.5], got %v", a.Fraction)
	}
	if err := validateBand(a.BandLo, a.BandHi); err != nil {
		ps.add(path, "%v", err)
	}
	if len(a.Behaviors) == 0 {
		ps.add(path+".behaviors", "at least one behavior is required (inflate, eclipse, selective-forward, free-ride, agg-lie, agg-mangle, agg-forge)")
	}
	for i, b := range a.Behaviors {
		if _, ok := AdversaryBehaviors[b]; !ok {
			ps.add(fmt.Sprintf("%s.behaviors[%d]", path, i),
				"unknown behavior %q (inflate, eclipse, selective-forward, free-ride, agg-lie, agg-mangle, agg-forge)", b)
		}
	}
	if a.InflateTo < 0 || a.InflateTo > 1 {
		ps.add(path+".inflate_to", "must be in [0,1], got %v", a.InflateTo)
	}
	if a.DropRate < 0 || a.DropRate > 1 {
		ps.add(path+".drop_rate", "must be in [0,1], got %v", a.DropRate)
	}
}

func (e *Event) problems(ps *problems, path string, haveAdversaries bool) {
	if e.At < 0 {
		ps.add(path+".at", "must be non-negative, got %v", e.At.D())
	}
	n := 0
	if e.ChurnBurst != nil {
		n++
		if e.ChurnBurst.Fraction <= 0 || e.ChurnBurst.Fraction > 1 {
			ps.add(path+".churn_burst.fraction", "must be in (0,1], got %v", e.ChurnBurst.Fraction)
		}
		if e.ChurnBurst.Duration <= 0 {
			ps.add(path+".churn_burst.duration", "must be positive, got %v", e.ChurnBurst.Duration.D())
		}
	}
	if e.Attack != nil {
		n++
		if e.Attack.Cushion < 0 || e.Attack.Cushion > 1 {
			ps.add(path+".attack.cushion", "must be in [0,1], got %v", e.Attack.Cushion)
		}
	}
	if e.MonitorNoise != nil {
		n++
		if e.MonitorNoise.Error < 0 || e.MonitorNoise.Error > 1 {
			ps.add(path+".monitor_noise.error", "must be in [0,1], got %v", e.MonitorNoise.Error)
		}
		if e.MonitorNoise.Staleness < 0 {
			ps.add(path+".monitor_noise.staleness", "must be non-negative")
		}
	}
	if e.AnycastBatch != nil {
		n++
		if err := e.AnycastBatch.validate(); err != nil {
			ps.add(path+".anycast_batch", "%v", err)
		}
	}
	if e.MulticastBatch != nil {
		n++
		if err := e.MulticastBatch.validate(); err != nil {
			ps.add(path+".multicast_batch", "%v", err)
		}
	}
	if e.Rangecast != nil {
		n++
		if err := e.Rangecast.validate(); err != nil {
			ps.add(path+".rangecast", "%v", err)
		}
	}
	if e.Aggregate != nil {
		n++
		if err := e.Aggregate.validate(); err != nil {
			ps.add(path+".aggregate", "%v", err)
		}
	}
	if e.Adversary != nil {
		n++
		if !haveAdversaries {
			ps.add(path+".adversary", "requires an adversaries block")
		}
	}
	if e.BiasProbe != nil {
		n++
		if !haveAdversaries {
			ps.add(path+".bias_probe", "requires an adversaries block")
		}
	}
	if n != 1 {
		ps.add(path, "exactly one action per event (churn_burst, attack, monitor_noise, anycast_batch, multicast_batch, rangecast, aggregate, adversary, bias_probe), got %d", n)
	}
}

func (b *AnycastBatch) validate() error {
	if b.Count <= 0 {
		return fmt.Errorf("count must be positive, got %d", b.Count)
	}
	if err := validateBand(b.BandLo, b.BandHi); err != nil {
		return err
	}
	if err := b.target().Validate(); err != nil {
		return err
	}
	if _, err := parsePolicy(b.Policy); err != nil {
		return err
	}
	if _, err := parseFlavor(b.Flavor); err != nil {
		return err
	}
	if p, _ := parsePolicy(b.Policy); p == ops.RetriedGreedy && b.Retry <= 0 {
		return fmt.Errorf("retried-greedy needs a positive retry budget")
	}
	return nil
}

func (b *AnycastBatch) target() ops.Target {
	return ops.Target{Lo: b.TargetLo, Hi: b.TargetHi}
}

func (b *MulticastBatch) validate() error {
	if b.Count <= 0 {
		return fmt.Errorf("count must be positive, got %d", b.Count)
	}
	if err := validateBand(b.BandLo, b.BandHi); err != nil {
		return err
	}
	if err := b.target().Validate(); err != nil {
		return err
	}
	if _, err := parseMode(b.Mode); err != nil {
		return err
	}
	if _, err := parseFlavor(b.Flavor); err != nil {
		return err
	}
	return nil
}

func (b *MulticastBatch) target() ops.Target {
	return ops.Target{Lo: b.TargetLo, Hi: b.TargetHi}
}

func (b *RangecastBatch) validate() error {
	if b.Count <= 0 {
		return fmt.Errorf("count must be positive, got %d", b.Count)
	}
	if err := validateBand(b.BandLo, b.BandHi); err != nil {
		return err
	}
	if err := b.band().Validate(); err != nil {
		return err
	}
	if _, err := parseFlavor(b.Flavor); err != nil {
		return err
	}
	return nil
}

func (b *RangecastBatch) band() ops.Band {
	return ops.Band{Lo: b.TargetLo, Hi: b.TargetHi}
}

func (b *AggregateBatch) validate() error {
	if b.Count <= 0 {
		return fmt.Errorf("count must be positive, got %d", b.Count)
	}
	if _, err := parseOp(b.Op); err != nil {
		return err
	}
	if err := validateBand(b.BandLo, b.BandHi); err != nil {
		return err
	}
	if err := b.band().Validate(); err != nil {
		return err
	}
	if _, err := parseFlavor(b.Flavor); err != nil {
		return err
	}
	if b.Redundancy < 0 || b.Redundancy > 8 {
		return fmt.Errorf("redundancy must be in [0,8], got %d", b.Redundancy)
	}
	return nil
}

func (b *AggregateBatch) band() ops.Band {
	return ops.Band{Lo: b.TargetLo, Hi: b.TargetHi}
}

// validateBand checks an initiator availability band. A zero hi means
// "everyone at or above lo" (resolved to an inclusive upper bound at
// run time), mirroring churn_burst's band semantics; otherwise the band
// must be a non-empty sub-interval of [0, 1.01].
func validateBand(lo, hi float64) error {
	if lo < 0 || lo > 1 {
		return fmt.Errorf("band_lo must be in [0,1], got %v", lo)
	}
	if hi == 0 {
		return nil
	}
	if hi <= lo {
		return fmt.Errorf("band_hi %v must exceed band_lo %v (or be omitted for no upper bound)", hi, lo)
	}
	if hi > 1.01 {
		return fmt.Errorf("band_hi must be at most 1.01, got %v", hi)
	}
	return nil
}

// bandHi resolves a zero upper bound to 1.01, which includes every
// availability estimate (estimates are capped at 1).
func bandHi(hi float64) float64 {
	if hi == 0 {
		return 1.01
	}
	return hi
}

// availabilityPDF resolves a fleet.availability name to the trace
// generator's target distribution; nil means the generator default
// (Overnet). The bimodal shape fixes its modes at 0.2/0.9 with 40% of
// the mass in the high mode — a Grid-like population.
func availabilityPDF(name string) (*avdist.PDF, error) {
	switch name {
	case "", "overnet":
		return nil, nil
	case "uniform":
		return avdist.Uniform(avdist.DefaultBuckets), nil
	case "bimodal":
		return avdist.Bimodal(avdist.DefaultBuckets, 0.2, 0.9, 0.4)
	default:
		return nil, fmt.Errorf("unknown availability distribution %q (overnet, uniform, bimodal)", name)
	}
}

func parsePolicy(s string) (ops.Policy, error) {
	switch s {
	case "", "greedy":
		return ops.Greedy, nil
	case "retried-greedy":
		return ops.RetriedGreedy, nil
	case "annealing":
		return ops.Annealing, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (greedy, retried-greedy, annealing)", s)
	}
}

func parseFlavor(s string) (core.Flavor, error) {
	switch s {
	case "", "hsvs":
		return core.HSVS, nil
	case "hs":
		return core.HSOnly, nil
	case "vs":
		return core.VSOnly, nil
	default:
		return 0, fmt.Errorf("unknown flavor %q (hs, vs, hsvs)", s)
	}
}

func parseOp(s string) (agg.Op, error) {
	switch s {
	case "", "count":
		return agg.Count, nil
	case "sum":
		return agg.Sum, nil
	case "min":
		return agg.Min, nil
	case "max":
		return agg.Max, nil
	case "avg":
		return agg.Avg, nil
	default:
		return 0, fmt.Errorf("unknown op %q (count, sum, min, max, avg)", s)
	}
}

func parseMode(s string) (ops.Mode, error) {
	switch s {
	case "", "flood":
		return ops.Flood, nil
	case "gossip":
		return ops.Gossip, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (flood, gossip)", s)
	}
}
