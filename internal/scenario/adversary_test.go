package scenario

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// adversaryScenarioFiles are the checked-in Byzantine scenarios; the
// acceptance bar (≥90% eviction of engaged adversaries, <1% honest
// false positives, fraction ≥0.2) lives in their own assertion blocks.
var adversaryScenarioFiles = []string{
	filepath.Join("..", "..", "scenarios", "eclipse-attack.json"),
	filepath.Join("..", "..", "scenarios", "availability-inflation.json"),
}

// TestAdversaryScenariosPassOnBothBackends executes both checked-in
// adversary scenarios on the simulator and the live memnet runtime and
// requires every in-spec assertion — including the eviction-rate and
// false-positive bars — to hold on each.
func TestAdversaryScenariosPassOnBothBackends(t *testing.T) {
	for _, path := range adversaryScenarioFiles {
		for _, backend := range []string{BackendSim, BackendMemnet} {
			t.Run(filepath.Base(path)+"/"+backend, func(t *testing.T) {
				spec, err := LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(spec, Options{Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Passed() {
					t.Fatalf("assertions failed: %v", res.Failures)
				}
				for _, want := range []string{
					"adversary_fraction", "audit_eviction_rate", "audit_false_positive_rate",
				} {
					if _, ok := res.Metrics[want]; !ok {
						t.Errorf("metric %q missing: %v", want, res.Metrics)
					}
				}
				if res.Metrics["adversary_fraction"] < 0.2 {
					t.Errorf("adversary fraction %v below the 0.2 bar", res.Metrics["adversary_fraction"])
				}
			})
		}
	}
}

// TestAdversaryScenariosDeterministicPerSeed pins bit-determinism: the
// same spec and seed produce identical metrics and event logs on each
// backend, adversaries and audit included.
func TestAdversaryScenariosDeterministicPerSeed(t *testing.T) {
	for _, path := range adversaryScenarioFiles {
		for _, backend := range []string{BackendSim, BackendMemnet} {
			t.Run(filepath.Base(path)+"/"+backend, func(t *testing.T) {
				run := func() *Result {
					spec, err := LoadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(spec, Options{Backend: backend})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				a, b := run(), run()
				if !reflect.DeepEqual(a.Metrics, b.Metrics) {
					t.Errorf("metrics differ across identical runs:\n a: %v\n b: %v", a.Metrics, b.Metrics)
				}
				if !reflect.DeepEqual(a.EventLog, b.EventLog) {
					t.Errorf("event logs differ across identical runs:\n a: %v\n b: %v", a.EventLog, b.EventLog)
				}
			})
		}
	}
}

// TestAuditLayerDoesNotPerturbHonestRuns is the honest-run regression:
// enabling the audit layer on a deployment with zero adversaries must
// leave the produced figures byte-identical — same metrics, same event
// log, same rendered report — pinned on the checked-in mixed-workload
// scenario.
func TestAuditLayerDoesNotPerturbHonestRuns(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "mixed-workload.json")
	render := func(withAudit bool) (string, *Result) {
		spec, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if withAudit {
			spec.Fleet.Audit = &AuditSpec{}
		}
		res, err := Run(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.WriteReport(&buf)
		return buf.String() + "\n" + strings.Join(res.EventLog, "\n"), res
	}
	plain, plainRes := render(false)
	audited, auditedRes := render(true)
	if plain != audited {
		t.Fatalf("audit layer perturbed an honest run:\n--- audit off ---\n%s\n--- audit on ---\n%s", plain, audited)
	}
	if !plainRes.Passed() || !auditedRes.Passed() {
		t.Fatalf("mixed workload failed: %v / %v", plainRes.Failures, auditedRes.Failures)
	}
}

// TestAdversarySpecValidation covers the new spec blocks end to end.
func TestAdversarySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"fraction too large", `{"name":"x","adversaries":{"fraction":0.6,"behaviors":["eclipse"]},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"no behaviors", `{"name":"x","adversaries":{"fraction":0.2,"behaviors":[]},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"unknown behavior", `{"name":"x","adversaries":{"fraction":0.2,"behaviors":["psychic"]},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"adversary event without block", `{"name":"x","events":[{"at":"0s","adversary":{"active":true}}]}`},
		{"bias probe without block", `{"name":"x","events":[{"at":"0s","bias_probe":{}}]}`},
		{"bad audit tolerance", `{"name":"x","fleet":{"audit":{"claim_tolerance":2}},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
		{"bad drop rate", `{"name":"x","adversaries":{"fraction":0.2,"behaviors":["selective-forward"],"drop_rate":1.5},"events":[{"at":"0s","attack":{"cushion":0}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Errorf("accepted malformed scenario: %s", tc.json)
			}
		})
	}
}

// TestProblemsCollectsEverything asserts the all-errors mode: a spec
// with several independent mistakes reports each one, not just the
// first.
func TestProblemsCollectsEverything(t *testing.T) {
	spec := &Spec{
		Name: "",
		Fleet: Fleet{
			Hosts: 4,
			Days:  -1,
		},
		Adversaries: &AdversariesSpec{Fraction: 0.9, Behaviors: []string{"psychic"}},
		Events: []Event{
			{At: dur("0s"), ChurnBurst: &ChurnBurst{Fraction: 2, Duration: dur("5m")}},
		},
		Assertions: []Assertion{{Metric: "vibes"}},
	}
	ps := spec.Problems()
	if len(ps) < 5 {
		t.Fatalf("Problems() = %d entries, want at least 5: %v", len(ps), ps)
	}
	wantPaths := []string{"name", "fleet.hosts", "fleet.days", "adversaries.fraction",
		"adversaries.behaviors[0]", "events[0].churn_burst.fraction", "assertions[0].metric"}
	have := map[string]bool{}
	for _, p := range ps {
		have[p.Path] = true
	}
	for _, w := range wantPaths {
		if !have[w] {
			t.Errorf("missing problem for %s in %v", w, ps)
		}
	}
	// Validate surfaces the first problem as the error.
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("Validate() = %v, want first problem (name)", err)
	}
}
